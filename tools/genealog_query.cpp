// Command-line driver for the four evaluation queries: build any
// (query, provenance mode, deployment) configuration, run it over a
// generated workload, and report alerts, provenance, and run metrics.
//
//   genealog_query --query q2 --mode gl --print-provenance
//   genealog_query --query q3 --mode bl --distributed --tcp
//   genealog_query --query q1 --mode gl --provenance-file prov.bin --replays 5
//
// Flags:
//   --query q1|q2|q3|q4      (required)
//   --mode np|gl|bl          (default gl)
//   --distributed            3-instance deployment (Figures 7/9C/10C/11C)
//   --tcp                    TCP loopback channels (with --distributed)
//   --composed               Figure-5B/8 standard-operator unfolders
//   --replays N              stream the dataset N times (default 1)
//   --rate TPS               throttle the source (default: unthrottled)
//   --cars N / --meters N    workload size (defaults 80 / 60)
//   --duration S / --days D  workload span (defaults 3600 s / 14 days)
//   --seed S                 workload seed (default 42)
//   --provenance-file PATH   persist provenance records to disk
//   --print-alerts           print every sink tuple
//   --print-provenance       print every provenance record
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "queries/queries.h"

namespace {

using namespace genealog;

struct CliOptions {
  std::string query;
  ProvenanceMode mode = ProvenanceMode::kGenealog;
  bool distributed = false;
  bool tcp = false;
  bool composed = false;
  int replays = 1;
  double rate = 0;
  int cars = 80;
  int meters = 60;
  int64_t duration_s = 3600;
  int days = 14;
  uint64_t seed = 42;
  std::string provenance_file;
  bool print_alerts = false;
  bool print_provenance = false;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --query q1|q2|q3|q4 [--mode np|gl|bl] "
               "[--distributed] [--tcp] [--composed] [--replays N] "
               "[--rate TPS] [--cars N] [--meters N] [--duration S] "
               "[--days D] [--seed S] [--provenance-file PATH] "
               "[--print-alerts] [--print-provenance]\n",
               argv0);
  std::exit(2);
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) Usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--query") {
      options.query = next_value(i);
    } else if (arg == "--mode") {
      const std::string mode = next_value(i);
      if (mode == "np") {
        options.mode = ProvenanceMode::kNone;
      } else if (mode == "gl") {
        options.mode = ProvenanceMode::kGenealog;
      } else if (mode == "bl") {
        options.mode = ProvenanceMode::kBaseline;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--distributed") {
      options.distributed = true;
    } else if (arg == "--tcp") {
      options.tcp = true;
    } else if (arg == "--composed") {
      options.composed = true;
    } else if (arg == "--replays") {
      options.replays = std::atoi(next_value(i));
    } else if (arg == "--rate") {
      options.rate = std::atof(next_value(i));
    } else if (arg == "--cars") {
      options.cars = std::atoi(next_value(i));
    } else if (arg == "--meters") {
      options.meters = std::atoi(next_value(i));
    } else if (arg == "--duration") {
      options.duration_s = std::atol(next_value(i));
    } else if (arg == "--days") {
      options.days = std::atoi(next_value(i));
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--provenance-file") {
      options.provenance_file = next_value(i);
    } else if (arg == "--print-alerts") {
      options.print_alerts = true;
    } else if (arg == "--print-provenance") {
      options.print_provenance = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
    }
  }
  if (options.query != "q1" && options.query != "q2" && options.query != "q3" &&
      options.query != "q4") {
    Usage(argv[0]);
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = ParseArgs(argc, argv);
  const bool is_lr = cli.query == "q1" || cli.query == "q2";

  queries::QueryBuildOptions options;
  options.mode = cli.mode;
  options.distributed = cli.distributed;
  options.use_tcp = cli.tcp;
  options.composed_unfolders = cli.composed;
  options.provenance_file = cli.provenance_file;
  options.source.replays = cli.replays;
  options.source.max_rate_tps = cli.rate;
  if (cli.print_alerts) {
    options.sink_consumer = [](const TuplePtr& t) {
      std::printf("ALERT ts=%lld %s\n", static_cast<long long>(t->ts),
                  t->DebugPayload().c_str());
    };
  }
  if (cli.print_provenance) {
    options.provenance_consumer = [](const ProvenanceRecord& r) {
      std::printf("PROVENANCE of ts=%lld %s (%zu sources)\n",
                  static_cast<long long>(r.derived_ts),
                  r.derived->DebugPayload().c_str(), r.origins.size());
      for (const TuplePtr& origin : r.origins) {
        std::printf("  <- ts=%lld %s\n", static_cast<long long>(origin->ts),
                    origin->DebugPayload().c_str());
      }
    };
  }

  queries::BuiltQuery query = [&] {
    if (is_lr) {
      lr::LinearRoadConfig config;
      config.n_cars = cli.cars;
      config.duration_s = cli.duration_s;
      config.stop_probability = 0.01;
      config.accident_probability = 0.03;
      config.forced_accident_ticks = {10};
      config.seed = cli.seed;
      options.source.replay_ts_shift = config.duration_s;
      auto data = lr::GenerateLinearRoad(config);
      std::printf("workload: %zu position reports x%d replays\n",
                  data.reports.size(), cli.replays);
      return cli.query == "q1" ? queries::BuildQ1(data, std::move(options))
                               : queries::BuildQ2(data, std::move(options));
    }
    sg::SmartGridConfig config;
    config.n_meters = cli.meters;
    config.n_days = cli.days;
    config.blackout_probability = 0.1;
    config.forced_blackout_days = {cli.days / 2};
    config.blackout_meters = 8;
    config.anomaly_probability = 0.01;
    config.seed = cli.seed;
    options.source.replay_ts_shift = static_cast<int64_t>(config.n_days) * 24;
    auto data = sg::GenerateSmartGrid(config);
    std::printf("workload: %zu meter readings x%d replays\n",
                data.readings.size(), cli.replays);
    return cli.query == "q3" ? queries::BuildQ3(data, std::move(options))
                             : queries::BuildQ4(data, std::move(options));
  }();

  std::printf("running %s mode=%s deployment=%s...\n\n", cli.query.c_str(),
              ToString(cli.mode),
              cli.distributed ? (cli.tcp ? "distributed/tcp" : "distributed")
                              : "intra-process");
  query.Run();

  const double seconds =
      static_cast<double>(query.source->active_ns()) / 1e9;
  std::printf("\n--- run summary -------------------------------------------\n");
  std::printf("source tuples     %llu (%.2f s, %.0f t/s)\n",
              static_cast<unsigned long long>(query.source->tuples_processed()),
              seconds,
              seconds > 0
                  ? static_cast<double>(query.source->tuples_processed()) /
                        seconds
                  : 0.0);
  std::printf("sink tuples       %llu (mean latency %.2f ms)\n",
              static_cast<unsigned long long>(query.sink->count()),
              query.sink->mean_latency_ms());
  if (query.provenance_sink != nullptr) {
    std::printf("provenance        %llu records, %.1f sources each, %llu bytes\n",
                static_cast<unsigned long long>(query.provenance_sink->records()),
                query.provenance_sink->mean_origins_per_record(),
                static_cast<unsigned long long>(
                    query.provenance_sink->bytes_written()));
  }
  if (query.baseline_resolver != nullptr) {
    std::printf(
        "provenance (BL)   %llu records, %.1f sources each, %llu bytes, "
        "store peak %zu tuples\n",
        static_cast<unsigned long long>(query.baseline_resolver->records()),
        query.baseline_resolver->mean_origins_per_record(),
        static_cast<unsigned long long>(
            query.baseline_resolver->bytes_written()),
        query.baseline_resolver->store_peak_size());
  }
  if (!query.channels.empty()) {
    std::printf("network           %llu bytes across %d instances\n",
                static_cast<unsigned long long>(query.network_bytes()),
                query.n_instances);
  }
  for (SuNode* su : query.su_nodes) {
    std::printf("traversal (%s, instance %d): %.4f ms avg over %llu graphs\n",
                su->name().c_str(), su->instance_id(), su->mean_traversal_ms(),
                static_cast<unsigned long long>(su->traversal_count()));
  }
  return 0;
}
