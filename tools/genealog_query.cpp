// Command-line driver for the four evaluation queries: build any
// (query, provenance mode, deployment) configuration, run it over a
// generated workload, and report alerts, provenance, and run metrics.
// All lineage output is served through the library's LineageQuery API
// (genealog/lineage_query.h) — live runs query the store the topology
// maintains online, and --replay-provenance / --load-snapshot rebuild the
// same store offline, with no query run at all. With --serve the store is
// additionally published over TCP (genealog/lineage_service.h), and
// --connect turns the tool into the matching remote console: every lineage
// flag below works identically against a live handle or a LineageClient.
//
//   genealog_query --query q2 --mode gl --print-provenance
//   genealog_query --query q3 --mode bl --distributed --tcp
//   genealog_query --query q1 --mode gl --provenance-file prov.bin --replays 5
//   genealog_query --replay-provenance prov.bin --lineage-stats \
//       --contributors 0x1000000000a
//   genealog_query --query q1 --mode gl --serve 127.0.0.1:7841 --allow-shutdown
//   genealog_query --connect 127.0.0.1:7841 --lineage-stats --shutdown
//
// Flags:
//   --query q1|q2|q3|q4      (required unless offline/connect mode)
//   --mode np|gl|bl          (default gl)
//   --distributed            3-instance deployment (Figures 7/9C/10C/11C)
//   --tcp                    TCP loopback channels (with --distributed)
//   --composed               Figure-5B/8 standard-operator unfolders
//   --replays N              stream the dataset N times (default 1)
//   --rate TPS               throttle the source (default: unthrottled)
//   --cars N / --meters N    workload size (defaults 80 / 60)
//   --duration S / --days D  workload span (defaults 3600 s / 14 days)
//   --seed S                 workload seed (default 42)
//   --provenance-file PATH   persist provenance records to disk
//   --print-alerts           print every sink tuple
//   --print-provenance       print every retained record's lineage (GL)
//   --replay-provenance PATH offline: load PATH into a LineageStore and serve
//                            the lineage flags below without running a query
//   --load-snapshot PATH     offline: restore a LineageStore snapshot written
//                            by --save-snapshot and serve the lineage flags
//   --save-snapshot PATH     persist the store (live, replayed or restored)
//                            as an atomic, checksummed snapshot
//   --serve ADDR:PORT        publish the store over TCP while the query runs
//                            (live mode) or after the offline rebuild; blocks
//                            until Ctrl-C or a remote shutdown
//   --allow-shutdown         let a remote client stop the service (--serve)
//   --connect ADDR:PORT      remote console: serve the lineage flags through
//                            a LineageClient instead of a local store
//   --shutdown               after serving the flags, ask the remote service
//                            to stop (--connect; server needs --allow-shutdown)
//   --contributors ID        backward closure of tuple ID (repeatable)
//   --derived-from ID        forward closure of tuple ID (repeatable)
//   --expand ID:K            K-hop neighborhood of tuple ID (repeatable)
//   --select MIN:MAX         event-time-range scan (either side may be empty)
//   --node-uid UID           restrict --select to tuples of one node uid
//   --records-only           restrict --select to derived record heads
//   --limit N                cap --select results (0 = unlimited)
//   --lineage-stats          print LineageStore retention/eviction counters
//   --retain-records N       lineage retention bound (0 = unbounded)
//   --retain-span T          lineage event-time horizon (0 = none)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "genealog/lineage_query.h"
#include "genealog/lineage_service.h"
#include "genealog/lineage_store.h"
#include "metrics/report.h"
#include "queries/queries.h"

namespace {

using namespace genealog;

struct ExpandRequest {
  uint64_t id;
  int hops;
};

struct CliOptions {
  std::string query;
  ProvenanceMode mode = ProvenanceMode::kGenealog;
  bool distributed = false;
  bool tcp = false;
  bool composed = false;
  int replays = 1;
  double rate = 0;
  int cars = 80;
  int meters = 60;
  int64_t duration_s = 3600;
  int days = 14;
  uint64_t seed = 42;
  std::string provenance_file;
  bool print_alerts = false;
  bool print_provenance = false;
  std::string replay_provenance;
  std::string load_snapshot;
  std::string save_snapshot;
  std::string serve;
  bool allow_shutdown = false;
  std::string connect_addr;
  bool shutdown = false;
  std::vector<uint64_t> contributors;
  std::vector<uint64_t> derived_from;
  std::vector<ExpandRequest> expands;
  bool has_select = false;
  LineagePredicate predicate;
  bool lineage_stats = false;
  size_t retain_records = 0;  // 0 = library default
  int64_t retain_span = 0;

  bool WantsLineage() const {
    return print_provenance || lineage_stats || has_select ||
           !contributors.empty() || !derived_from.empty() || !expands.empty();
  }
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --query q1|q2|q3|q4 [--mode np|gl|bl] "
               "[--distributed] [--tcp] [--composed] [--replays N] "
               "[--rate TPS] [--cars N] [--meters N] [--duration S] "
               "[--days D] [--seed S] [--provenance-file PATH] "
               "[--print-alerts] [--print-provenance] "
               "[--serve ADDR:PORT [--allow-shutdown]] [lineage flags]\n"
               "       %s --replay-provenance PATH [--serve ...] "
               "[lineage flags]\n"
               "       %s --load-snapshot PATH [--serve ...] [lineage flags]\n"
               "       %s --connect ADDR:PORT [--shutdown] [lineage flags]\n"
               "lineage flags: [--contributors ID] [--derived-from ID] "
               "[--expand ID:K] [--select MIN:MAX] [--node-uid UID] "
               "[--records-only] [--limit N] [--lineage-stats] "
               "[--save-snapshot PATH] [--retain-records N] [--retain-span T]\n",
               argv0, argv0, argv0, argv0);
  std::exit(2);
}

uint64_t ParseId(const char* s, const char* argv0) {
  char* end = nullptr;
  const uint64_t id = std::strtoull(s, &end, 0);  // base 0: decimal or 0x...
  if (end == s || *end != '\0') Usage(argv0);
  return id;
}

int64_t ParseTsBound(const std::string& s, int64_t open_bound,
                     const char* argv0) {
  if (s.empty()) return open_bound;  // "100:" / ":200" leave one side open
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') Usage(argv0);
  return v;
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) Usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--query") {
      options.query = next_value(i);
    } else if (arg == "--mode") {
      const std::string mode = next_value(i);
      if (mode == "np") {
        options.mode = ProvenanceMode::kNone;
      } else if (mode == "gl") {
        options.mode = ProvenanceMode::kGenealog;
      } else if (mode == "bl") {
        options.mode = ProvenanceMode::kBaseline;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--distributed") {
      options.distributed = true;
    } else if (arg == "--tcp") {
      options.tcp = true;
    } else if (arg == "--composed") {
      options.composed = true;
    } else if (arg == "--replays") {
      options.replays = std::atoi(next_value(i));
    } else if (arg == "--rate") {
      options.rate = std::atof(next_value(i));
    } else if (arg == "--cars") {
      options.cars = std::atoi(next_value(i));
    } else if (arg == "--meters") {
      options.meters = std::atoi(next_value(i));
    } else if (arg == "--duration") {
      options.duration_s = std::atol(next_value(i));
    } else if (arg == "--days") {
      options.days = std::atoi(next_value(i));
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--provenance-file") {
      options.provenance_file = next_value(i);
    } else if (arg == "--print-alerts") {
      options.print_alerts = true;
    } else if (arg == "--print-provenance") {
      options.print_provenance = true;
    } else if (arg == "--replay-provenance") {
      options.replay_provenance = next_value(i);
    } else if (arg == "--load-snapshot") {
      options.load_snapshot = next_value(i);
    } else if (arg == "--save-snapshot") {
      options.save_snapshot = next_value(i);
    } else if (arg == "--serve") {
      options.serve = next_value(i);
    } else if (arg == "--allow-shutdown") {
      options.allow_shutdown = true;
    } else if (arg == "--connect") {
      options.connect_addr = next_value(i);
    } else if (arg == "--shutdown") {
      options.shutdown = true;
    } else if (arg == "--contributors") {
      options.contributors.push_back(ParseId(next_value(i), argv[0]));
    } else if (arg == "--derived-from") {
      options.derived_from.push_back(ParseId(next_value(i), argv[0]));
    } else if (arg == "--expand") {
      const std::string value = next_value(i);
      const size_t colon = value.find(':');
      if (colon == std::string::npos) Usage(argv[0]);
      options.expands.push_back(
          {ParseId(value.substr(0, colon).c_str(), argv[0]),
           std::atoi(value.c_str() + colon + 1)});
    } else if (arg == "--select") {
      const std::string value = next_value(i);
      const size_t colon = value.find(':');
      if (colon == std::string::npos) Usage(argv[0]);
      options.has_select = true;
      options.predicate.min_ts =
          ParseTsBound(value.substr(0, colon), INT64_MIN, argv[0]);
      options.predicate.max_ts =
          ParseTsBound(value.substr(colon + 1), INT64_MAX, argv[0]);
    } else if (arg == "--node-uid") {
      options.predicate.has_node_uid = true;
      options.predicate.node_uid = ParseId(next_value(i), argv[0]);
    } else if (arg == "--records-only") {
      options.predicate.records_only = true;
    } else if (arg == "--limit") {
      options.predicate.limit = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--lineage-stats") {
      options.lineage_stats = true;
    } else if (arg == "--retain-records") {
      options.retain_records = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--retain-span") {
      options.retain_span = std::atol(next_value(i));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
    }
  }
  if (!options.connect_addr.empty()) {
    // Remote console: every local-store mode is mutually exclusive.
    if (!options.query.empty() || !options.replay_provenance.empty() ||
        !options.load_snapshot.empty() || !options.serve.empty() ||
        !options.save_snapshot.empty()) {
      Usage(argv[0]);
    }
    return options;
  }
  if (options.shutdown) Usage(argv[0]);  // --shutdown needs --connect
  if (!options.replay_provenance.empty() || !options.load_snapshot.empty()) {
    if (!options.query.empty() ||
        (!options.replay_provenance.empty() &&
         !options.load_snapshot.empty())) {
      Usage(argv[0]);
    }
    return options;
  }
  if (options.query != "q1" && options.query != "q2" && options.query != "q3" &&
      options.query != "q4") {
    Usage(argv[0]);
  }
  return options;
}

void PrintEntry(const char* prefix, const LineageStore::Entry& entry) {
  std::printf("%sid=0x%llx ts=%lld %s %s\n", prefix,
              static_cast<unsigned long long>(entry.id),
              static_cast<long long>(entry.ts), entry.tuple->type_name(),
              entry.tuple->DebugPayload().c_str());
}

// Serves every requested lineage flag through a LineageQuery handle or a
// LineageClient — the two expose the same method surface, so the console
// behaves identically whether the store is local (live, replayed, restored)
// or behind --connect.
template <typename Lineage>
void ServeLineage(Lineage& lineage, const CliOptions& cli) {
  if (cli.print_provenance) {
    for (const uint64_t id : lineage.RetainedRecordIds()) {
      const auto derived = lineage.Lookup(id);
      if (!derived.has_value()) continue;  // evicted under our feet
      const auto origins = lineage.Contributors(id);
      std::printf("PROVENANCE of ts=%lld %s (%zu sources)\n",
                  static_cast<long long>(derived->ts),
                  derived->tuple->DebugPayload().c_str(), origins.size());
      for (const auto& origin : origins) PrintEntry("  <- ", origin);
    }
  }
  for (const uint64_t id : cli.contributors) {
    const auto entries = lineage.Contributors(id);
    std::printf("CONTRIBUTORS of 0x%llx (%zu)\n",
                static_cast<unsigned long long>(id), entries.size());
    for (const auto& e : entries) PrintEntry("  <- ", e);
  }
  for (const uint64_t id : cli.derived_from) {
    const auto entries = lineage.DerivedFrom(id);
    std::printf("DERIVED FROM 0x%llx (%zu)\n",
                static_cast<unsigned long long>(id), entries.size());
    for (const auto& e : entries) PrintEntry("  -> ", e);
  }
  for (const ExpandRequest& req : cli.expands) {
    const auto entries = lineage.Expand(req.id, req.hops);
    std::printf("EXPAND 0x%llx k=%d (%zu)\n",
                static_cast<unsigned long long>(req.id), req.hops,
                entries.size());
    for (const auto& e : entries) PrintEntry("  <-> ", e);
  }
  if (cli.has_select) {
    const auto entries = lineage.Select(cli.predicate);
    const LineagePredicate& p = cli.predicate;
    std::printf("SELECT ts=[%lld, %lld]%s%s (%zu)\n",
                static_cast<long long>(p.min_ts),
                static_cast<long long>(p.max_ts),
                p.has_node_uid ? " node-filtered" : "",
                p.records_only ? " records-only" : "", entries.size());
    for (const auto& e : entries) PrintEntry("  * ", e);
  }
  if (cli.lineage_stats) {
    std::fputs(metrics::RenderCounterTable("lineage store",
                                           metrics::LineageStatsRows(
                                               lineage.Stats()))
                   .c_str(),
               stdout);
  }
}

LineageOptions RetentionFromCli(const CliOptions& cli) {
  LineageOptions lo;
  if (cli.retain_records > 0) lo.retain_records = cli.retain_records;
  lo.retain_span = cli.retain_span;
  return lo;
}

std::shared_ptr<LineageService> StartService(
    std::shared_ptr<const LineageStore> store, const CliOptions& cli) {
  LineageServiceOptions so = ParseServeAddr(cli.serve);
  so.allow_remote_shutdown = cli.allow_shutdown;
  auto service = std::make_shared<LineageService>(std::move(store), so);
  service->Start();
  std::printf("lineage service listening on %s%s\n",
              service->address().c_str(),
              cli.allow_shutdown ? " (remote shutdown enabled)" : "");
  std::fflush(stdout);
  return service;
}

// Blocks until Ctrl-C or an honored remote shutdown, then prints the serve
// counters.
void WaitAndReport(LineageService& service) {
  service.Wait();
  service.Stop();
  std::fputs(metrics::RenderCounterTable("lineage service",
                                         metrics::ServeStatsRows(
                                             service.stats()))
                 .c_str(),
             stdout);
}

void MaybeSaveSnapshot(const LineageStore& store, const CliOptions& cli) {
  if (cli.save_snapshot.empty()) return;
  store.SaveSnapshot(cli.save_snapshot);
  std::printf("snapshot saved to %s\n", cli.save_snapshot.c_str());
}

// Remote console: serve the lineage flags through a LineageClient.
int ConnectAndServe(const CliOptions& cli) {
  LineageClient client(cli.connect_addr);
  std::printf("connected to %s (server generation %u)\n\n",
              cli.connect_addr.c_str(), client.server_generation());
  ServeLineage(client, cli);
  if (cli.shutdown) {
    client.Shutdown();
    std::printf("remote shutdown requested\n");
  }
  return 0;
}

// Offline modes: no query run — rebuild the store from a provenance file or
// a snapshot and serve the same lineage flags (and optionally the network
// endpoint) against it.
int RebuildAndServe(const CliOptions& cli) {
  auto store = std::make_shared<LineageStore>(RetentionFromCli(cli));
  if (!cli.load_snapshot.empty()) {
    const uint64_t n = store->LoadSnapshot(cli.load_snapshot);
    std::printf("restored %llu records from snapshot %s\n\n",
                static_cast<unsigned long long>(n), cli.load_snapshot.c_str());
  } else {
    const uint64_t n = ReplayProvenanceFile(cli.replay_provenance, *store);
    std::printf("replayed %llu records from %s\n\n",
                static_cast<unsigned long long>(n),
                cli.replay_provenance.c_str());
  }
  MaybeSaveSnapshot(*store, cli);
  LineageQuery lineage(store);
  ServeLineage(lineage, cli);
  if (!cli.serve.empty()) {
    auto service = StartService(store, cli);
    WaitAndReport(*service);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = ParseArgs(argc, argv);
  try {
    if (!cli.connect_addr.empty()) return ConnectAndServe(cli);
    if (!cli.replay_provenance.empty() || !cli.load_snapshot.empty()) {
      return RebuildAndServe(cli);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const bool is_lr = cli.query == "q1" || cli.query == "q2";

  queries::QueryBuildOptions options;
  options.mode = cli.mode;
  options.distributed = cli.distributed;
  options.use_tcp = cli.tcp;
  options.composed_unfolders = cli.composed;
  options.provenance_file = cli.provenance_file;
  options.source.replays = cli.replays;
  options.source.max_rate_tps = cli.rate;
  if (cli.WantsLineage() || !cli.serve.empty() || !cli.save_snapshot.empty()) {
    if (cli.mode != ProvenanceMode::kGenealog) {
      std::fprintf(stderr, "lineage flags require --mode gl\n");
      return 2;
    }
    options.lineage_store = true;
    const LineageOptions lo = RetentionFromCli(cli);
    options.lineage_retain_records = lo.retain_records;
    options.lineage_retain_span = lo.retain_span;
  }
  if (cli.print_alerts) {
    options.sink_consumer = [](const TuplePtr& t) {
      std::printf("ALERT ts=%lld %s\n", static_cast<long long>(t->ts),
                  t->DebugPayload().c_str());
    };
  }

  queries::BuiltQuery query = [&] {
    if (is_lr) {
      lr::LinearRoadConfig config;
      config.n_cars = cli.cars;
      config.duration_s = cli.duration_s;
      config.stop_probability = 0.01;
      config.accident_probability = 0.03;
      config.forced_accident_ticks = {10};
      config.seed = cli.seed;
      options.source.replay_ts_shift = config.duration_s;
      auto data = lr::GenerateLinearRoad(config);
      std::printf("workload: %zu position reports x%d replays\n",
                  data.reports.size(), cli.replays);
      return cli.query == "q1" ? queries::BuildQ1(data, std::move(options))
                               : queries::BuildQ2(data, std::move(options));
    }
    sg::SmartGridConfig config;
    config.n_meters = cli.meters;
    config.n_days = cli.days;
    config.blackout_probability = 0.1;
    config.forced_blackout_days = {cli.days / 2};
    config.blackout_meters = 8;
    config.anomaly_probability = 0.01;
    config.seed = cli.seed;
    options.source.replay_ts_shift = static_cast<int64_t>(config.n_days) * 24;
    auto data = sg::GenerateSmartGrid(config);
    std::printf("workload: %zu meter readings x%d replays\n",
                data.readings.size(), cli.replays);
    return cli.query == "q3" ? queries::BuildQ3(data, std::move(options))
                             : queries::BuildQ4(data, std::move(options));
  }();

  // Serving starts before Run(): a remote console can attach and query while
  // the topology executes (the normal GeneaLog live-query story).
  std::shared_ptr<LineageService> service;
  try {
    if (!cli.serve.empty()) service = StartService(query.lineage_store, cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("running %s mode=%s deployment=%s...\n\n", cli.query.c_str(),
              ToString(cli.mode),
              cli.distributed ? (cli.tcp ? "distributed/tcp" : "distributed")
                              : "intra-process");
  query.Run();

  if (cli.WantsLineage()) {
    LineageQuery lineage = query.lineage();
    ServeLineage(lineage, cli);
  }
  if (query.lineage_store != nullptr) {
    try {
      MaybeSaveSnapshot(*query.lineage_store, cli);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  const double seconds =
      static_cast<double>(query.source->active_ns()) / 1e9;
  std::printf("\n--- run summary -------------------------------------------\n");
  std::printf("source tuples     %llu (%.2f s, %.0f t/s)\n",
              static_cast<unsigned long long>(query.source->tuples_processed()),
              seconds,
              seconds > 0
                  ? static_cast<double>(query.source->tuples_processed()) /
                        seconds
                  : 0.0);
  std::printf("sink tuples       %llu (mean latency %.2f ms)\n",
              static_cast<unsigned long long>(query.sink->count()),
              query.sink->mean_latency_ms());
  if (query.provenance_sink != nullptr) {
    std::printf("provenance        %llu records, %.1f sources each, %llu bytes\n",
                static_cast<unsigned long long>(query.provenance_sink->records()),
                query.provenance_sink->mean_origins_per_record(),
                static_cast<unsigned long long>(
                    query.provenance_sink->bytes_written()));
  }
  if (query.baseline_resolver != nullptr) {
    std::printf(
        "provenance (BL)   %llu records, %.1f sources each, %llu bytes, "
        "store peak %zu tuples\n",
        static_cast<unsigned long long>(query.baseline_resolver->records()),
        query.baseline_resolver->mean_origins_per_record(),
        static_cast<unsigned long long>(
            query.baseline_resolver->bytes_written()),
        query.baseline_resolver->store_peak_size());
  }
  if (!query.channels.empty()) {
    std::printf("network           %llu bytes across %d instances\n",
                static_cast<unsigned long long>(query.network_bytes()),
                query.n_instances);
  }
  for (SuNode* su : query.su_nodes) {
    std::printf("traversal (%s, instance %d): %.4f ms avg over %llu graphs\n",
                su->name().c_str(), su->instance_id(), su->mean_traversal_ms(),
                static_cast<unsigned long long>(su->traversal_count()));
  }

  // Keep serving after the run drains: the store outlives the topology, so a
  // console can still walk the retained lineage.
  if (service != nullptr) {
    std::printf("\nquery drained; still serving lineage on %s\n",
                service->address().c_str());
    std::fflush(stdout);
    WaitAndReport(*service);
  }
  return 0;
}
