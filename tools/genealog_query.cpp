// Command-line driver for the four evaluation queries: build any
// (query, provenance mode, deployment) configuration, run it over a
// generated workload, and report alerts, provenance, and run metrics.
// All lineage output is served through the library's LineageQuery API
// (genealog/lineage_query.h) — live runs query the store the topology
// maintains online, and --replay-provenance rebuilds the same store from a
// provenance file written by an earlier run, with no query run at all.
//
//   genealog_query --query q2 --mode gl --print-provenance
//   genealog_query --query q3 --mode bl --distributed --tcp
//   genealog_query --query q1 --mode gl --provenance-file prov.bin --replays 5
//   genealog_query --replay-provenance prov.bin --lineage-stats \
//       --contributors 0x1000000000a
//
// Flags:
//   --query q1|q2|q3|q4      (required unless --replay-provenance)
//   --mode np|gl|bl          (default gl)
//   --distributed            3-instance deployment (Figures 7/9C/10C/11C)
//   --tcp                    TCP loopback channels (with --distributed)
//   --composed               Figure-5B/8 standard-operator unfolders
//   --replays N              stream the dataset N times (default 1)
//   --rate TPS               throttle the source (default: unthrottled)
//   --cars N / --meters N    workload size (defaults 80 / 60)
//   --duration S / --days D  workload span (defaults 3600 s / 14 days)
//   --seed S                 workload seed (default 42)
//   --provenance-file PATH   persist provenance records to disk
//   --print-alerts           print every sink tuple
//   --print-provenance       print every retained record's lineage (GL)
//   --replay-provenance PATH offline: load PATH into a LineageStore and serve
//                            the lineage flags below without running a query
//   --contributors ID        backward closure of tuple ID (repeatable)
//   --derived-from ID        forward closure of tuple ID (repeatable)
//   --expand ID:K            K-hop neighborhood of tuple ID (repeatable)
//   --lineage-stats          print LineageStore retention/eviction counters
//   --retain-records N       lineage retention bound (0 = unbounded)
//   --retain-span T          lineage event-time horizon (0 = none)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "genealog/lineage_query.h"
#include "genealog/lineage_store.h"
#include "queries/queries.h"

namespace {

using namespace genealog;

struct ExpandRequest {
  uint64_t id;
  int hops;
};

struct CliOptions {
  std::string query;
  ProvenanceMode mode = ProvenanceMode::kGenealog;
  bool distributed = false;
  bool tcp = false;
  bool composed = false;
  int replays = 1;
  double rate = 0;
  int cars = 80;
  int meters = 60;
  int64_t duration_s = 3600;
  int days = 14;
  uint64_t seed = 42;
  std::string provenance_file;
  bool print_alerts = false;
  bool print_provenance = false;
  std::string replay_provenance;
  std::vector<uint64_t> contributors;
  std::vector<uint64_t> derived_from;
  std::vector<ExpandRequest> expands;
  bool lineage_stats = false;
  size_t retain_records = 0;  // 0 = library default
  int64_t retain_span = 0;

  bool WantsLineage() const {
    return print_provenance || lineage_stats || !contributors.empty() ||
           !derived_from.empty() || !expands.empty();
  }
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --query q1|q2|q3|q4 [--mode np|gl|bl] "
               "[--distributed] [--tcp] [--composed] [--replays N] "
               "[--rate TPS] [--cars N] [--meters N] [--duration S] "
               "[--days D] [--seed S] [--provenance-file PATH] "
               "[--print-alerts] [--print-provenance]\n"
               "       %s --replay-provenance PATH [lineage flags]\n"
               "lineage flags: [--contributors ID] [--derived-from ID] "
               "[--expand ID:K] [--lineage-stats] [--retain-records N] "
               "[--retain-span T]\n",
               argv0, argv0);
  std::exit(2);
}

uint64_t ParseId(const char* s, const char* argv0) {
  char* end = nullptr;
  const uint64_t id = std::strtoull(s, &end, 0);  // base 0: decimal or 0x...
  if (end == s || *end != '\0') Usage(argv0);
  return id;
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) Usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--query") {
      options.query = next_value(i);
    } else if (arg == "--mode") {
      const std::string mode = next_value(i);
      if (mode == "np") {
        options.mode = ProvenanceMode::kNone;
      } else if (mode == "gl") {
        options.mode = ProvenanceMode::kGenealog;
      } else if (mode == "bl") {
        options.mode = ProvenanceMode::kBaseline;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--distributed") {
      options.distributed = true;
    } else if (arg == "--tcp") {
      options.tcp = true;
    } else if (arg == "--composed") {
      options.composed = true;
    } else if (arg == "--replays") {
      options.replays = std::atoi(next_value(i));
    } else if (arg == "--rate") {
      options.rate = std::atof(next_value(i));
    } else if (arg == "--cars") {
      options.cars = std::atoi(next_value(i));
    } else if (arg == "--meters") {
      options.meters = std::atoi(next_value(i));
    } else if (arg == "--duration") {
      options.duration_s = std::atol(next_value(i));
    } else if (arg == "--days") {
      options.days = std::atoi(next_value(i));
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--provenance-file") {
      options.provenance_file = next_value(i);
    } else if (arg == "--print-alerts") {
      options.print_alerts = true;
    } else if (arg == "--print-provenance") {
      options.print_provenance = true;
    } else if (arg == "--replay-provenance") {
      options.replay_provenance = next_value(i);
    } else if (arg == "--contributors") {
      options.contributors.push_back(ParseId(next_value(i), argv[0]));
    } else if (arg == "--derived-from") {
      options.derived_from.push_back(ParseId(next_value(i), argv[0]));
    } else if (arg == "--expand") {
      const std::string value = next_value(i);
      const size_t colon = value.find(':');
      if (colon == std::string::npos) Usage(argv[0]);
      options.expands.push_back(
          {ParseId(value.substr(0, colon).c_str(), argv[0]),
           std::atoi(value.c_str() + colon + 1)});
    } else if (arg == "--lineage-stats") {
      options.lineage_stats = true;
    } else if (arg == "--retain-records") {
      options.retain_records = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--retain-span") {
      options.retain_span = std::atol(next_value(i));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
    }
  }
  if (!options.replay_provenance.empty()) {
    if (!options.query.empty()) Usage(argv[0]);
    return options;
  }
  if (options.query != "q1" && options.query != "q2" && options.query != "q3" &&
      options.query != "q4") {
    Usage(argv[0]);
  }
  return options;
}

void PrintEntry(const char* prefix, const LineageQuery::Entry& entry) {
  std::printf("%sid=0x%llx ts=%lld %s %s\n", prefix,
              static_cast<unsigned long long>(entry.id),
              static_cast<long long>(entry.ts), entry.tuple->type_name(),
              entry.tuple->DebugPayload().c_str());
}

// Serves every requested lineage flag through the LineageQuery handle —
// identical behavior whether the store was fed live or replayed from a file.
void ServeLineage(const LineageQuery& lineage, const CliOptions& cli) {
  if (cli.print_provenance) {
    for (const uint64_t id : lineage.RetainedRecordIds()) {
      const auto derived = lineage.Lookup(id);
      if (!derived.has_value()) continue;  // evicted under our feet
      const auto origins = lineage.Contributors(id);
      std::printf("PROVENANCE of ts=%lld %s (%zu sources)\n",
                  static_cast<long long>(derived->ts),
                  derived->tuple->DebugPayload().c_str(), origins.size());
      for (const auto& origin : origins) PrintEntry("  <- ", origin);
    }
  }
  for (const uint64_t id : cli.contributors) {
    const auto entries = lineage.Contributors(id);
    std::printf("CONTRIBUTORS of 0x%llx (%zu)\n",
                static_cast<unsigned long long>(id), entries.size());
    for (const auto& e : entries) PrintEntry("  <- ", e);
  }
  for (const uint64_t id : cli.derived_from) {
    const auto entries = lineage.DerivedFrom(id);
    std::printf("DERIVED FROM 0x%llx (%zu)\n",
                static_cast<unsigned long long>(id), entries.size());
    for (const auto& e : entries) PrintEntry("  -> ", e);
  }
  for (const ExpandRequest& req : cli.expands) {
    const auto entries = lineage.Expand(req.id, req.hops);
    std::printf("EXPAND 0x%llx k=%d (%zu)\n",
                static_cast<unsigned long long>(req.id), req.hops,
                entries.size());
    for (const auto& e : entries) PrintEntry("  <-> ", e);
  }
  if (cli.lineage_stats) {
    const LineageStore::Stats s = lineage.Stats();
    std::printf(
        "lineage store     %llu/%llu records retained (%llu evicted in %llu "
        "epochs), %llu tuples, %llu edges, %llu bytes, %llu node uids, "
        "ts span [%lld, %lld]\n",
        static_cast<unsigned long long>(s.records_retained),
        static_cast<unsigned long long>(s.records_ingested),
        static_cast<unsigned long long>(s.records_evicted),
        static_cast<unsigned long long>(s.epochs_evicted),
        static_cast<unsigned long long>(s.tuples_retained),
        static_cast<unsigned long long>(s.edges_retained),
        static_cast<unsigned long long>(s.bytes_retained),
        static_cast<unsigned long long>(s.node_uids),
        static_cast<long long>(s.min_retained_ts),
        static_cast<long long>(s.max_retained_ts));
  }
}

LineageOptions RetentionFromCli(const CliOptions& cli) {
  LineageOptions lo;
  if (cli.retain_records > 0) lo.retain_records = cli.retain_records;
  lo.retain_span = cli.retain_span;
  return lo;
}

// Offline mode: no query run — rebuild the store from a provenance file an
// earlier run wrote and serve the same lineage flags against it.
int ReplayAndServe(const CliOptions& cli) {
  auto store = std::make_shared<LineageStore>(RetentionFromCli(cli));
  const uint64_t n = ReplayProvenanceFile(cli.replay_provenance, *store);
  std::printf("replayed %llu records from %s\n\n",
              static_cast<unsigned long long>(n),
              cli.replay_provenance.c_str());
  ServeLineage(LineageQuery(store), cli);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = ParseArgs(argc, argv);
  if (!cli.replay_provenance.empty()) return ReplayAndServe(cli);
  const bool is_lr = cli.query == "q1" || cli.query == "q2";

  queries::QueryBuildOptions options;
  options.mode = cli.mode;
  options.distributed = cli.distributed;
  options.use_tcp = cli.tcp;
  options.composed_unfolders = cli.composed;
  options.provenance_file = cli.provenance_file;
  options.source.replays = cli.replays;
  options.source.max_rate_tps = cli.rate;
  if (cli.WantsLineage()) {
    if (cli.mode != ProvenanceMode::kGenealog) {
      std::fprintf(stderr, "lineage flags require --mode gl\n");
      return 2;
    }
    options.lineage_store = true;
    const LineageOptions lo = RetentionFromCli(cli);
    options.lineage_retain_records = lo.retain_records;
    options.lineage_retain_span = lo.retain_span;
  }
  if (cli.print_alerts) {
    options.sink_consumer = [](const TuplePtr& t) {
      std::printf("ALERT ts=%lld %s\n", static_cast<long long>(t->ts),
                  t->DebugPayload().c_str());
    };
  }

  queries::BuiltQuery query = [&] {
    if (is_lr) {
      lr::LinearRoadConfig config;
      config.n_cars = cli.cars;
      config.duration_s = cli.duration_s;
      config.stop_probability = 0.01;
      config.accident_probability = 0.03;
      config.forced_accident_ticks = {10};
      config.seed = cli.seed;
      options.source.replay_ts_shift = config.duration_s;
      auto data = lr::GenerateLinearRoad(config);
      std::printf("workload: %zu position reports x%d replays\n",
                  data.reports.size(), cli.replays);
      return cli.query == "q1" ? queries::BuildQ1(data, std::move(options))
                               : queries::BuildQ2(data, std::move(options));
    }
    sg::SmartGridConfig config;
    config.n_meters = cli.meters;
    config.n_days = cli.days;
    config.blackout_probability = 0.1;
    config.forced_blackout_days = {cli.days / 2};
    config.blackout_meters = 8;
    config.anomaly_probability = 0.01;
    config.seed = cli.seed;
    options.source.replay_ts_shift = static_cast<int64_t>(config.n_days) * 24;
    auto data = sg::GenerateSmartGrid(config);
    std::printf("workload: %zu meter readings x%d replays\n",
                data.readings.size(), cli.replays);
    return cli.query == "q3" ? queries::BuildQ3(data, std::move(options))
                             : queries::BuildQ4(data, std::move(options));
  }();

  std::printf("running %s mode=%s deployment=%s...\n\n", cli.query.c_str(),
              ToString(cli.mode),
              cli.distributed ? (cli.tcp ? "distributed/tcp" : "distributed")
                              : "intra-process");
  query.Run();

  if (cli.WantsLineage()) {
    ServeLineage(query.lineage(), cli);
  }

  const double seconds =
      static_cast<double>(query.source->active_ns()) / 1e9;
  std::printf("\n--- run summary -------------------------------------------\n");
  std::printf("source tuples     %llu (%.2f s, %.0f t/s)\n",
              static_cast<unsigned long long>(query.source->tuples_processed()),
              seconds,
              seconds > 0
                  ? static_cast<double>(query.source->tuples_processed()) /
                        seconds
                  : 0.0);
  std::printf("sink tuples       %llu (mean latency %.2f ms)\n",
              static_cast<unsigned long long>(query.sink->count()),
              query.sink->mean_latency_ms());
  if (query.provenance_sink != nullptr) {
    std::printf("provenance        %llu records, %.1f sources each, %llu bytes\n",
                static_cast<unsigned long long>(query.provenance_sink->records()),
                query.provenance_sink->mean_origins_per_record(),
                static_cast<unsigned long long>(
                    query.provenance_sink->bytes_written()));
  }
  if (query.baseline_resolver != nullptr) {
    std::printf(
        "provenance (BL)   %llu records, %.1f sources each, %llu bytes, "
        "store peak %zu tuples\n",
        static_cast<unsigned long long>(query.baseline_resolver->records()),
        query.baseline_resolver->mean_origins_per_record(),
        static_cast<unsigned long long>(
            query.baseline_resolver->bytes_written()),
        query.baseline_resolver->store_peak_size());
  }
  if (!query.channels.empty()) {
    std::printf("network           %llu bytes across %d instances\n",
                static_cast<unsigned long long>(query.network_bytes()),
                query.n_instances);
  }
  for (SuNode* su : query.su_nodes) {
    std::printf("traversal (%s, instance %d): %.4f ms avg over %llu graphs\n",
                su->name().c_str(), su->instance_id(), su->mean_traversal_ms(),
                static_cast<unsigned long long>(su->traversal_count()));
  }
  return 0;
}
