// Theorem 6.5's induction, exercised end-to-end over THREE processing hops:
// provenance must resolve across a chain of SPE instances where the middle
// hop's originating tuples are themselves REMOTE, requiring chained MU
// operators (the output of one MU feeds the derived port of the next).
//
//   I1: Source -> Map(x2)        -> SU_a -> Send    (creates kMap tuples)
//   I2: Receive -> Aggregate#1   -> SU_b -> Send    (REMOTE inputs)
//   I3: Receive -> Aggregate#2   -> SU_c -> Sink
//   I4: MU_x(derived = U_c, upstream = U_b)
//       MU_y(derived = MU_x out, upstream = U_a) -> provenance sink
//
// Every final record must contain only SOURCE tuples — the original readings
// — even though the sink-side traversal at I3 can only see REMOTE tuples.
#include <gtest/gtest.h>

#include <set>

#include "genealog/mu.h"
#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "net/channel.h"
#include "net/send_receive.h"
#include "spe/aggregate.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

TEST(MultiHopProvenanceTest, ThreeHopChainResolvesToSources) {
  // 40 source tuples; agg1 sums pairs of doubled values over 2-tick windows;
  // agg2 sums those over 10-tick windows. Each final output's provenance is
  // the 10 source tuples of its 10-tick span.
  std::vector<IntrusivePtr<ValueTuple>> data;
  for (int i = 0; i < 40; ++i) data.push_back(V(i, i));

  InMemoryChannel ch_data1;
  InMemoryChannel ch_data2;
  InMemoryChannel ch_u_a;
  InMemoryChannel ch_u_b;
  InMemoryChannel ch_u_c;

  Topology i1(1, ProvenanceMode::kGenealog);
  Topology i2(2, ProvenanceMode::kGenealog);
  Topology i3(3, ProvenanceMode::kGenealog);
  Topology i4(4, ProvenanceMode::kGenealog);

  // --- I1: Source -> Map -> SU_a -> Send ------------------------------------
  auto* source = i1.Add<VectorSourceNode<ValueTuple>>("source", std::move(data));
  auto* map = i1.Add<MapNode<ValueTuple, ValueTuple>>(
      "double", [](const ValueTuple& in, MapCollector<ValueTuple>& out) {
        out.Emit(MakeTuple<ValueTuple>(0, in.value * 2));
      });
  auto* su_a = i1.Add<SuNode>("su_a");
  auto* send_data1 = i1.Add<SendNode>("send_data1", &ch_data1);
  auto* send_u_a = i1.Add<SendNode>("send_u_a", &ch_u_a);
  i1.Connect(source, map);
  i1.Connect(map, su_a);
  i1.Connect(su_a, send_data1);
  i1.Connect(su_a, send_u_a);

  // --- I2: Receive -> Aggregate#1 -> SU_b -> Send ---------------------------
  auto* recv_data1 = i2.Add<ReceiveNode>("recv_data1", &ch_data1);
  auto* agg1 = i2.Add<AggregateNode<ValueTuple, ValueTuple>>(
      "agg1", AggregateOptions{2, 2},
      [](const ValueTuple&) { return int64_t{0}; },
      [](const WindowView<ValueTuple, int64_t>& w) {
        int64_t sum = 0;
        for (const auto& t : w.tuples) sum += t->value;
        return MakeTuple<ValueTuple>(0, sum);
      });
  auto* su_b = i2.Add<SuNode>("su_b");
  auto* send_data2 = i2.Add<SendNode>("send_data2", &ch_data2);
  auto* send_u_b = i2.Add<SendNode>("send_u_b", &ch_u_b);
  i2.Connect(recv_data1, agg1);
  i2.Connect(agg1, su_b);
  i2.Connect(su_b, send_data2);
  i2.Connect(su_b, send_u_b);

  // --- I3: Receive -> Aggregate#2 -> SU_c -> Sink ---------------------------
  auto* recv_data2 = i3.Add<ReceiveNode>("recv_data2", &ch_data2);
  auto* agg2 = i3.Add<AggregateNode<ValueTuple, ValueTuple>>(
      "agg2", AggregateOptions{10, 10},
      [](const ValueTuple&) { return int64_t{0}; },
      [](const WindowView<ValueTuple, int64_t>& w) {
        int64_t sum = 0;
        for (const auto& t : w.tuples) sum += t->value;
        return MakeTuple<ValueTuple>(0, sum);
      });
  auto* su_c = i3.Add<SuNode>("su_c");
  std::vector<TuplePtr> alerts;
  auto* sink = i3.Add<SinkNode>(
      "sink", [&alerts](const TuplePtr& t) { alerts.push_back(t); });
  auto* send_u_c = i3.Add<SendNode>("send_u_c", &ch_u_c);
  i3.Connect(recv_data2, agg2);
  i3.Connect(agg2, su_c);
  i3.Connect(su_c, sink);
  i3.Connect(su_c, send_u_c);

  // --- I4: chained MUs -> provenance sink -----------------------------------
  auto* recv_u_a = i4.Add<ReceiveNode>("recv_u_a", &ch_u_a);
  auto* recv_u_b = i4.Add<ReceiveNode>("recv_u_b", &ch_u_b);
  auto* recv_u_c = i4.Add<ReceiveNode>("recv_u_c", &ch_u_c);
  auto* mu_x = i4.Add<MuNode>("mu_x", /*ws=*/16);
  auto* mu_y = i4.Add<MuNode>("mu_y", /*ws=*/16);
  std::vector<ProvenanceRecord> records;
  ProvenanceSinkSpec pso;
  pso.finalize_slack = 16;
  pso.consumer = [&records](const ProvenanceRecord& r) {
    records.push_back(r);
  };
  auto* k2 = i4.Add<ProvenanceSinkNode>("k2", pso);
  i4.Connect(recv_u_c, mu_x);  // MU_x port 0: derived
  i4.Connect(recv_u_b, mu_x);  // MU_x port 1: upstream (SU_b)
  i4.Connect(mu_x, mu_y);      // MU_y port 0: derived = MU_x output
  i4.Connect(recv_u_a, mu_y);  // MU_y port 1: upstream (SU_a)
  i4.Connect(mu_y, k2);

  Runner runner({&i1, &i2, &i3, &i4});
  runner.Start();
  runner.Join();

  // 40 ticks / 10-tick windows = 4 alerts; sum over window [10k,10k+10) of
  // doubled values = 2 * sum(10k..10k+9).
  ASSERT_EQ(alerts.size(), 4u);
  for (size_t k = 0; k < alerts.size(); ++k) {
    int64_t expected = 0;
    for (int64_t i = 0; i < 10; ++i) {
      expected += 2 * (static_cast<int64_t>(k) * 10 + i);
    }
    EXPECT_EQ(static_cast<ValueTuple&>(*alerts[k]).value, expected);
  }

  // Each record resolves to exactly the 10 ORIGINAL source tuples.
  ASSERT_EQ(records.size(), 4u);
  for (const ProvenanceRecord& record : records) {
    ASSERT_EQ(record.origins.size(), 10u) << "alert@" << record.derived_ts;
    std::set<int64_t> ts_seen;
    for (const TuplePtr& origin : record.origins) {
      EXPECT_EQ(origin->kind, TupleKind::kSource);
      // Source payloads are the *undoubled* values: value == ts.
      EXPECT_EQ(static_cast<ValueTuple&>(*origin).value, origin->ts);
      ts_seen.insert(origin->ts);
      EXPECT_GE(origin->ts, record.derived_ts);
      EXPECT_LT(origin->ts, record.derived_ts + 10);
    }
    EXPECT_EQ(ts_seen.size(), 10u);
  }
}

}  // namespace
}  // namespace genealog
