// MU operator semantics (Definition 6.4) — fused and composed (Figure 8).
#include "genealog/mu.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::V;
using testing::ValueTuple;

// Builds an unfolded tuple (derived value/id + origin value/id/kind).
IntrusivePtr<UnfoldedTuple> U(int64_t ts, int64_t derived_value,
                              uint64_t derived_id, int64_t origin_value,
                              uint64_t origin_id, TupleKind origin_kind,
                              int64_t origin_ts = 0) {
  auto u = MakeTuple<UnfoldedTuple>(ts);
  u->derived = V(ts, derived_value);
  u->derived_id = derived_id;
  u->derived_ts = ts;
  u->origin = V(origin_ts, origin_value);
  u->origin->kind = origin_kind;
  u->origin->id = origin_id;
  u->origin_id = origin_id;
  u->origin_ts = origin_ts;
  u->origin_kind = origin_kind;
  return u;
}

struct MuOut {
  int64_t derived_value;
  uint64_t derived_id;
  int64_t origin_value;
  uint64_t origin_id;
  TupleKind origin_kind;
  bool operator==(const MuOut&) const = default;
  auto operator<=>(const MuOut&) const = default;
};

std::vector<MuOut> Canonical(const Collector& c) {
  std::vector<MuOut> out;
  for (const auto& t : c.tuples()) {
    const auto& u = static_cast<const UnfoldedTuple&>(*t);
    out.push_back(MuOut{static_cast<const ValueTuple&>(*u.derived).value,
                        u.derived_id,
                        static_cast<const ValueTuple&>(*u.origin).value,
                        u.origin_id, u.origin_kind});
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<MuOut> RunMu(
    std::vector<IntrusivePtr<UnfoldedTuple>> derived,
    std::vector<std::vector<IntrusivePtr<UnfoldedTuple>>> upstreams,
    int64_t ws, bool composed) {
  Topology topo;
  auto* derived_src = topo.Add<VectorSourceNode<UnfoldedTuple>>(
      "derived", std::move(derived));
  std::vector<Node*> upstream_srcs;
  for (size_t i = 0; i < upstreams.size(); ++i) {
    upstream_srcs.push_back(topo.Add<VectorSourceNode<UnfoldedTuple>>(
        "up" + std::to_string(i), std::move(upstreams[i])));
  }
  Collector collector;
  auto* sink = collector.AttachSink(topo);

  if (composed) {
    ComposedMu mu = BuildComposedMu(topo, "mu", ws);
    topo.Connect(mu.output, sink);
    topo.Connect(derived_src, mu.derived_entry);
    for (Node* up : upstream_srcs) topo.Connect(up, mu.upstream_entry);
  } else {
    auto* mu = topo.Add<MuNode>("mu", ws);
    topo.Connect(mu, sink);
    topo.Connect(derived_src, mu);  // port 0 = derived
    for (Node* up : upstream_srcs) topo.Connect(up, mu);
  }
  RunToCompletion(topo);
  return Canonical(collector);
}

// A source-originating derived tuple passes through unchanged.
TEST(MuTest, SourceOriginPassesThrough) {
  for (bool composed : {false, true}) {
    auto out = RunMu({U(10, 100, 1, 7, 50, TupleKind::kSource)}, {{}}, 100,
                     composed);
    ASSERT_EQ(out.size(), 1u) << (composed ? "composed" : "fused");
    EXPECT_EQ(out[0],
              (MuOut{100, 1, 7, 50, TupleKind::kSource}));
  }
}

// A REMOTE-originating derived tuple is replaced by the matching upstream
// tuples' originating parts, keeping the derived (sink) attributes.
TEST(MuTest, RemoteOriginRewrittenFromUpstream) {
  for (bool composed : {false, true}) {
    auto out = RunMu(
        {U(10, 100, /*derived_id=*/1, /*origin_value=*/0, /*origin_id=*/77,
           TupleKind::kRemote)},
        {{
            // Upstream: delivering tuple 77 had two originating sources.
            U(5, 0, /*derived_id=*/77, 11, 501, TupleKind::kSource),
            U(5, 0, /*derived_id=*/77, 12, 502, TupleKind::kSource),
        }},
        100, composed);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (MuOut{100, 1, 11, 501, TupleKind::kSource}));
    EXPECT_EQ(out[1], (MuOut{100, 1, 12, 502, TupleKind::kSource}));
  }
}

TEST(MuTest, NonMatchingUpstreamIgnored) {
  for (bool composed : {false, true}) {
    auto out = RunMu(
        {U(10, 100, 1, 0, 77, TupleKind::kRemote)},
        {{U(5, 0, 88, 11, 501, TupleKind::kSource)}},  // id 88 != 77
        100, composed);
    EXPECT_TRUE(out.empty());
  }
}

TEST(MuTest, MatchWorksInBothArrivalOrders) {
  for (bool composed : {false, true}) {
    // Upstream tuple is *later* than the derived tuple (the usual case with
    // emit-at-window-start aggregates upstream).
    auto out = RunMu({U(10, 100, 1, 0, 77, TupleKind::kRemote)},
                     {{U(40, 0, 77, 11, 501, TupleKind::kSource)}}, 100,
                     composed);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].origin_value, 11);
  }
}

TEST(MuTest, WindowBoundsMatching) {
  for (bool composed : {false, true}) {
    // |40 - 10| = 30 <= ws=30 matches; |45 - 10| = 35 does not.
    auto out = RunMu({U(10, 100, 1, 0, 77, TupleKind::kRemote),
                      U(10, 200, 2, 0, 78, TupleKind::kRemote)},
                     {{U(40, 0, 77, 11, 501, TupleKind::kSource),
                       U(45, 0, 78, 12, 502, TupleKind::kSource)}},
                     30, composed);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].derived_value, 100);
  }
}

TEST(MuTest, MultipleUpstreamStreams) {
  // Q4's shape: two SUs at instance 1 feed two upstream ports.
  for (bool composed : {false, true}) {
    auto out = RunMu(
        {U(10, 100, 1, 0, 70, TupleKind::kRemote),
         U(12, 100, 1, 0, 80, TupleKind::kRemote)},
        {{U(8, 0, 70, 11, 501, TupleKind::kSource)},
         {U(9, 0, 80, 12, 601, TupleKind::kSource)}},
        100, composed);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].origin_id, 501u);
    EXPECT_EQ(out[1].origin_id, 601u);
  }
}

TEST(MuTest, MixedSourceAndRemoteDerived) {
  for (bool composed : {false, true}) {
    auto out = RunMu(
        {U(10, 100, 1, 7, 50, TupleKind::kSource),
         U(11, 100, 1, 0, 77, TupleKind::kRemote)},
        {{U(12, 0, 77, 11, 501, TupleKind::kSource)}}, 100, composed);
    ASSERT_EQ(out.size(), 2u);
    // One passthrough + one rewrite, both carrying the sink's attributes.
    EXPECT_EQ(out[0].origin_id, 50u);
    EXPECT_EQ(out[1].origin_id, 501u);
  }
}

// A multi-hop scenario: the upstream's origin is itself REMOTE (three
// instances chained); MU must preserve the REMOTE kind for the next MU.
TEST(MuTest, PreservesRemoteKindAcrossRewrite) {
  for (bool composed : {false, true}) {
    auto out = RunMu({U(10, 100, 1, 0, 77, TupleKind::kRemote)},
                     {{U(9, 0, 77, 21, 701, TupleKind::kRemote)}}, 100,
                     composed);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].origin_kind, TupleKind::kRemote);
    EXPECT_EQ(out[0].origin_id, 701u);
  }
}

TEST(MuTest, OneUpstreamTupleServesManyDerived) {
  for (bool composed : {false, true}) {
    auto out = RunMu({U(10, 100, 1, 0, 77, TupleKind::kRemote),
                      U(20, 200, 2, 0, 77, TupleKind::kRemote)},
                     {{U(15, 0, 77, 11, 501, TupleKind::kSource)}}, 100,
                     composed);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].derived_value, 100);
    EXPECT_EQ(out[1].derived_value, 200);
    EXPECT_EQ(out[0].origin_id, 501u);
    EXPECT_EQ(out[1].origin_id, 501u);
  }
}

TEST(MuTest, ComposedEqualsFusedOnRandomizedWorkload) {
  SplitMix64 rng(21);
  std::vector<IntrusivePtr<UnfoldedTuple>> derived;
  std::vector<IntrusivePtr<UnfoldedTuple>> up;
  int64_t dts = 0;
  int64_t uts = 0;
  for (int i = 0; i < 150; ++i) {
    dts += rng.UniformInt(0, 3);
    uts += rng.UniformInt(0, 3);
    const uint64_t shared_id = static_cast<uint64_t>(rng.UniformInt(1, 40));
    const bool is_source = rng.Bernoulli(0.3);
    derived.push_back(U(dts, 100 + i, static_cast<uint64_t>(i), i, shared_id,
                        is_source ? TupleKind::kSource : TupleKind::kRemote));
    up.push_back(U(uts, 0, static_cast<uint64_t>(rng.UniformInt(1, 40)),
                   1000 + i, static_cast<uint64_t>(2000 + i),
                   TupleKind::kSource));
  }
  auto Clone = [](const std::vector<IntrusivePtr<UnfoldedTuple>>& v) {
    std::vector<IntrusivePtr<UnfoldedTuple>> out;
    for (const auto& t : v) {
      out.push_back(StaticPointerCast<UnfoldedTuple>(t->CloneTuple()));
      out.back()->id = t->id;
    }
    return out;
  };
  auto fused = RunMu(Clone(derived), {Clone(up)}, 20, /*composed=*/false);
  auto composed = RunMu(Clone(derived), {Clone(up)}, 20, /*composed=*/true);
  EXPECT_EQ(fused, composed);
  EXPECT_FALSE(fused.empty());
}

}  // namespace
}  // namespace genealog
