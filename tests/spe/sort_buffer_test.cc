#include "spe/sort_buffer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "lr/linear_road.h"
#include "spe/aggregate.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::V;
using testing::ValueTuple;

// Shuffles a vector within consecutive blocks of `block` elements, bounding
// every element's displacement by the block size.
template <typename T>
void BlockShuffle(std::vector<T>& v, size_t block, uint64_t seed) {
  SplitMix64 rng(seed);
  for (size_t begin = 0; begin < v.size(); begin += block) {
    const size_t end = std::min(begin + block, v.size());
    for (size_t i = begin; i + 1 < end; ++i) {
      const size_t j = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(end - 1)));
      std::swap(v[i], v[j]);
    }
  }
}

std::vector<IntrusivePtr<ValueTuple>> Shuffled(int n, int block,
                                               uint64_t seed) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (int i = 0; i < n; ++i) out.push_back(V(i, i));
  BlockShuffle(out, static_cast<size_t>(block), seed);
  return out;
}

TEST(SortBufferTest, RestoresTimestampOrder) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src", Shuffled(500, 8, 7));
  auto* sorter = topo.Add<SortBufferNode>("sorter", /*slack=*/16);
  Collector c;
  auto* sink = c.AttachSink(topo);
  topo.Connect(source, sorter);
  topo.Connect(sorter, sink);
  RunToCompletion(topo);

  ASSERT_EQ(c.tuples().size(), 500u);
  EXPECT_EQ(sorter->late_drops(), 0u);
  const auto ts = c.Timestamps();
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  EXPECT_EQ(ts.front(), 0);
  EXPECT_EQ(ts.back(), 499);
}

TEST(SortBufferTest, AlreadySortedPassesThrough) {
  Topology topo;
  std::vector<IntrusivePtr<ValueTuple>> data;
  for (int i = 0; i < 50; ++i) data.push_back(V(i, i));
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
  auto* sorter = topo.Add<SortBufferNode>("sorter", 4);
  Collector c;
  auto* sink = c.AttachSink(topo);
  topo.Connect(source, sorter);
  topo.Connect(sorter, sink);
  RunToCompletion(topo);
  EXPECT_EQ(c.tuples().size(), 50u);
  EXPECT_EQ(sorter->late_drops(), 0u);
}

TEST(SortBufferTest, DropsAndCountsHopelesslyLateTuples) {
  Topology topo;
  std::vector<IntrusivePtr<ValueTuple>> data;
  data.push_back(V(100, 1));
  data.push_back(V(101, 2));
  data.push_back(V(10, 3));  // 90 ticks late, slack is 20: dropped
  data.push_back(V(102, 4));
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
  auto* sorter = topo.Add<SortBufferNode>("sorter", 20);
  Collector c;
  auto* sink = c.AttachSink(topo);
  topo.Connect(source, sorter);
  topo.Connect(sorter, sink);
  RunToCompletion(topo);
  EXPECT_EQ(c.tuples().size(), 3u);
  EXPECT_EQ(sorter->late_drops(), 1u);
  const auto ts = c.Timestamps();
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
}

TEST(SortBufferTest, EqualTimestampsKeepArrivalOrder) {
  Topology topo;
  std::vector<IntrusivePtr<ValueTuple>> data;
  data.push_back(V(5, 1));
  data.push_back(V(5, 2));
  data.push_back(V(5, 3));
  data.push_back(V(20, 4));
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
  auto* sorter = topo.Add<SortBufferNode>("sorter", 4);
  Collector c;
  auto* sink = c.AttachSink(topo);
  topo.Connect(source, sorter);
  topo.Connect(sorter, sink);
  RunToCompletion(topo);
  ASSERT_EQ(c.tuples().size(), 4u);
  EXPECT_EQ(c.at<ValueTuple>(0).value, 1);
  EXPECT_EQ(c.at<ValueTuple>(1).value, 2);
  EXPECT_EQ(c.at<ValueTuple>(2).value, 3);
}

TEST(SortBufferTest, EmitsWatermarksThatDriveWindows) {
  // An aggregate behind the sorter must fire from the sorter's watermarks
  // alone (the unsorted source's own watermarks are swallowed).
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src", Shuffled(200, 5, 11));
  auto* sorter = topo.Add<SortBufferNode>("sorter", 10);
  auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const ValueTuple&) { return int64_t{0}; },
      [](const WindowView<ValueTuple, int64_t>& w) {
        return MakeTuple<ValueTuple>(0, static_cast<int64_t>(w.tuples.size()));
      });
  Collector c;
  auto* sink = c.AttachSink(topo);
  topo.Connect(source, sorter);
  topo.Connect(sorter, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);
  // 200 tuples in 20 windows of 10.
  ASSERT_EQ(c.tuples().size(), 20u);
  for (size_t i = 0; i < c.tuples().size(); ++i) {
    EXPECT_EQ(c.at<ValueTuple>(i).value, 10);
  }
}

TEST(SortBufferTest, ShuffledLinearRoadMatchesSortedQ1Results) {
  // End-to-end: Q1's operator chain over a shuffled source behind a sort
  // buffer produces exactly the results of the sorted feed.
  lr::LinearRoadConfig config;
  config.n_cars = 25;
  config.duration_s = 1200;
  config.stop_probability = 0.03;
  config.seed = 55;
  auto data = lr::GenerateLinearRoad(config);

  auto run = [](std::vector<IntrusivePtr<lr::PositionReport>> reports,
                bool with_sorter) {
    Topology topo;
    auto* source = topo.Add<VectorSourceNode<lr::PositionReport>>(
        "src", std::move(reports));
    Node* head = source;
    if (with_sorter) {
      auto* sorter = topo.Add<SortBufferNode>("sorter", 120);
      topo.Connect(source, sorter);
      head = sorter;
    }
    auto* f = topo.Add<FilterNode<lr::PositionReport>>(
        "f", [](const lr::PositionReport& t) { return t.speed == 0.0; });
    auto* agg = topo.Add<AggregateNode<lr::PositionReport, lr::StoppedCarStats>>(
        "agg", AggregateOptions{120, 30},
        [](const lr::PositionReport& t) { return t.car_id; },
        [](const WindowView<lr::PositionReport, int64_t>& w) {
          return MakeTuple<lr::StoppedCarStats>(
              0, w.key, static_cast<int64_t>(w.tuples.size()), 1,
              w.tuples.back()->pos);
        });
    auto* f2 = topo.Add<FilterNode<lr::StoppedCarStats>>(
        "f2", [](const lr::StoppedCarStats& t) { return t.count == 4; });
    Collector c;
    auto* sink = c.AttachSink(topo);
    topo.Connect(head, f);
    topo.Connect(f, agg);
    topo.Connect(agg, f2);
    topo.Connect(f2, sink);
    RunToCompletion(topo);
    std::vector<std::pair<int64_t, std::string>> out;
    for (const auto& t : c.tuples()) out.emplace_back(t->ts, t->DebugPayload());
    return out;
  };

  auto sorted_results = run(data.reports, /*with_sorter=*/false);
  ASSERT_FALSE(sorted_results.empty());

  // Shuffle within 40-report blocks (~2 report periods at 25 cars).
  auto shuffled = data.reports;
  BlockShuffle(shuffled, 40, 66);
  auto shuffled_results = run(std::move(shuffled), /*with_sorter=*/true);
  EXPECT_EQ(shuffled_results, sorted_results);
}

}  // namespace
}  // namespace genealog
