// §2's determinism requirement: query output must be a pure function of the
// input data, unaffected by thread scheduling, queue interleavings, or the
// latency of individual operators. These tests run the same topologies many
// times and demand bit-identical output sequences.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "spe/aggregate.h"
#include "spe/join.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::KeyedTuple;
using testing::ValueTuple;

std::vector<IntrusivePtr<KeyedTuple>> RandomKeyed(uint64_t seed, int n) {
  SplitMix64 rng(seed);
  std::vector<IntrusivePtr<KeyedTuple>> out;
  int64_t ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += rng.UniformInt(0, 2);  // many timestamp ties
    out.push_back(MakeTuple<KeyedTuple>(ts, rng.UniformInt(0, 4),
                                        static_cast<double>(i)));
  }
  return out;
}

// The Q4 shape: Multiplex -> {Aggregate, Filter} -> Join. A diamond with a
// slow (windowed) branch and a fast branch is the hardest case for
// deterministic merging.
std::vector<std::tuple<int64_t, int64_t, double>> RunDiamond(uint64_t seed) {
  Topology topo;
  auto* source =
      topo.Add<VectorSourceNode<KeyedTuple>>("src", RandomKeyed(seed, 400));
  auto* mux = topo.Add<MultiplexNode>("mux");
  auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const KeyedTuple& t) { return t.key; },
      [](const WindowView<KeyedTuple, int64_t>& w) {
        double sum = 0;
        for (const auto& t : w.tuples) sum += t->value;
        return MakeTuple<KeyedTuple>(0, w.key, sum);
      });
  auto* filter = topo.Add<FilterNode<KeyedTuple>>(
      "f", [](const KeyedTuple& t) { return t.ts % 10 == 0; });
  auto* join = topo.Add<JoinNode<KeyedTuple, KeyedTuple, KeyedTuple>>(
      "join", JoinOptions{10},
      [](const KeyedTuple& l, const KeyedTuple& r) { return l.key == r.key; },
      [](const KeyedTuple& l, const KeyedTuple& r) {
        return MakeTuple<KeyedTuple>(0, l.key, l.value * 1000 + r.value);
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, mux);
  topo.Connect(mux, agg);
  topo.Connect(mux, filter);
  topo.Connect(agg, join);     // port 0
  topo.Connect(filter, join);  // port 1
  topo.Connect(join, sink);
  RunToCompletion(topo);

  std::vector<std::tuple<int64_t, int64_t, double>> out;
  for (const auto& t : collector.tuples()) {
    const auto& k = static_cast<const KeyedTuple&>(*t);
    out.emplace_back(t->ts, k.key, k.value);
  }
  return out;
}

TEST(DeterminismTest, DiamondTopologyIsRunInvariant) {
  const auto reference = RunDiamond(7);
  ASSERT_FALSE(reference.empty());
  for (int run = 0; run < 15; ++run) {
    EXPECT_EQ(RunDiamond(7), reference) << "run " << run;
  }
}

std::vector<std::pair<int64_t, double>> RunUnionChain(uint64_t seed) {
  Topology topo;
  auto* a = topo.Add<VectorSourceNode<KeyedTuple>>("a", RandomKeyed(seed, 300));
  auto* b =
      topo.Add<VectorSourceNode<KeyedTuple>>("b", RandomKeyed(seed + 1, 300));
  auto* c =
      topo.Add<VectorSourceNode<KeyedTuple>>("c", RandomKeyed(seed + 2, 300));
  auto* u1 = topo.Add<UnionNode>("u1");
  auto* u2 = topo.Add<UnionNode>("u2");
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(a, u1);
  topo.Connect(b, u1);
  topo.Connect(u1, u2);
  topo.Connect(c, u2);
  topo.Connect(u2, sink);
  RunToCompletion(topo);

  std::vector<std::pair<int64_t, double>> out;
  for (const auto& t : collector.tuples()) {
    out.emplace_back(t->ts, static_cast<const KeyedTuple&>(*t).value);
  }
  return out;
}

TEST(DeterminismTest, CascadedUnionsAreRunInvariant) {
  const auto reference = RunUnionChain(11);
  ASSERT_EQ(reference.size(), 900u);
  for (int run = 0; run < 10; ++run) {
    EXPECT_EQ(RunUnionChain(11), reference) << "run " << run;
  }
}

TEST(DeterminismTest, MergedStreamIsSorted) {
  const auto out = RunUnionChain(13);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].first, out[i].first);
  }
}

}  // namespace
}  // namespace genealog
