// SpscRing semantics and stress.
//
// Single-thread tests pin the BatchQueue-compatible contract (weight-based
// capacity, coalescing rules, oversized-batch admission, abort). The stress
// tests run the real two-thread shape — one producer, one consumer, with
// randomized stalls on both sides — over a million mixed batches and assert
// the stream invariants: no tuple lost, no tuple reordered or duplicated,
// watermarks nondecreasing, flush delivered last. They are the TSan gate for
// the ring's memory ordering (CI runs them under -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "spe/node.h"
#include "spe/spsc_ring.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;

TEST(SpscRingTest, PushPopRoundTrip) {
  SpscRing ring(64);
  EXPECT_EQ(ring.Size(), 0u);
  EXPECT_EQ(ring.Weight(), 0u);
  ring.Push(StreamBatch::MakeTuple(V(1, 10)), 1);
  ring.Push(StreamBatch::MakeTuple(V(2, 20)), 1);
  EXPECT_EQ(ring.Size(), 2u);
  EXPECT_EQ(ring.Weight(), 2u);
  auto a = ring.Pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->tuples[0]->ts, 1);
  auto b = ring.TryPop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->tuples[0]->ts, 2);
  EXPECT_EQ(ring.Size(), 0u);
  EXPECT_EQ(ring.Weight(), 0u);
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, WeightCountsTuplesAndControlBatches) {
  SpscRing ring(64);
  StreamBatch data;
  data.tuples.push_back(V(1, 1));
  data.tuples.push_back(V(2, 2));
  data.tuples.push_back(V(3, 3));
  ring.Push(std::move(data), 3);
  EXPECT_EQ(ring.Weight(), 3u);  // tuples are the unit
  StreamBatch control;
  control.port = 1;  // different port: no merge
  control.watermark = 9;
  ring.Push(std::move(control), 3);
  EXPECT_EQ(ring.Weight(), 4u);  // control-only batches weigh 1
  EXPECT_EQ(ring.Size(), 2u);
  ring.TryPop();
  EXPECT_EQ(ring.Weight(), 1u);
  ring.TryPop();
  EXPECT_EQ(ring.Weight(), 0u);
}

TEST(SpscRingTest, ConsecutiveWatermarksCoalesce) {
  SpscRing ring(64);
  ring.Push(StreamBatch::MakeWatermark(5), 4);
  ring.Push(StreamBatch::MakeWatermark(9), 4);
  ring.Push(StreamBatch::MakeWatermark(7), 4);  // lower: merged, keeps max
  EXPECT_EQ(ring.Size(), 1u);
  EXPECT_EQ(ring.Weight(), 1u);
  auto batch = ring.TryPop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_TRUE(batch->tuples.empty());
  EXPECT_EQ(batch->watermark, 9);
}

TEST(SpscRingTest, TuplesChunkUpToMaxCoalesce) {
  SpscRing ring(64);
  for (int i = 0; i < 10; ++i) {
    ring.Push(StreamBatch::MakeTuple(V(i, i)), 4);
  }
  EXPECT_EQ(ring.Weight(), 10u);
  EXPECT_LE(ring.Size(), 4u);  // chunks of <= 4, not 10 entries
  int64_t last_ts = -1;
  size_t total = 0;
  while (auto batch = ring.TryPop()) {
    ASSERT_LE(batch->tuples.size(), 4u);
    for (const TuplePtr& t : batch->tuples) {
      EXPECT_GT(t->ts, last_ts);  // stream order survives coalescing
      last_ts = t->ts;
      ++total;
    }
  }
  EXPECT_EQ(total, 10u);
}

TEST(SpscRingTest, DifferentPortsDoNotMerge) {
  SpscRing ring(64);
  StreamBatch a = StreamBatch::MakeWatermark(5);
  a.port = 0;
  StreamBatch b = StreamBatch::MakeWatermark(6);
  b.port = 1;
  ring.Push(std::move(a), 8);
  ring.Push(std::move(b), 8);
  EXPECT_EQ(ring.Size(), 2u);
}

TEST(SpscRingTest, FlushMergesIntoTailButSealsIt) {
  SpscRing ring(64);
  ring.Push(StreamBatch::MakeTuple(V(1, 1)), 8);
  ring.Push(StreamBatch::MakeFlush(), 8);
  EXPECT_EQ(ring.Size(), 1u);
  {
    auto batch = ring.TryPop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_TRUE(batch->flush);
    EXPECT_EQ(batch->tuples.size(), 1u);
  }
  // Nothing may merge into a flushed tail on the same port.
  ring.Push(StreamBatch::MakeFlush(), 8);
  ring.Push(StreamBatch::MakeWatermark(3), 8);
  EXPECT_EQ(ring.Size(), 2u);
}

TEST(SpscRingTest, ControlMergesIntoFullRingWithoutBlocking) {
  SpscRing ring(2);
  ring.Push(StreamBatch::MakeTuple(V(1, 1)), 1);
  ring.Push(StreamBatch::MakeTuple(V(2, 2)), 1);
  EXPECT_EQ(ring.Weight(), 2u);  // at weight capacity
  // The watermark merges into the tail without weight, so no block.
  ring.Push(StreamBatch::MakeWatermark(9), 1);
  EXPECT_EQ(ring.Weight(), 2u);
  ring.TryPop();
  auto tail = ring.TryPop();
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->watermark, 9);
}

TEST(SpscRingTest, MergeUpToWeightCapacity) {
  SpscRing ring(3);
  StreamBatch two;
  two.tuples.push_back(V(1, 1));
  two.tuples.push_back(V(2, 2));
  ring.Push(std::move(two), 8);
  ring.Push(StreamBatch::MakeTuple(V(3, 3)), 8);  // 2+1 = 3 <= 3: merges
  EXPECT_EQ(ring.Size(), 1u);
  EXPECT_EQ(ring.Weight(), 3u);
}

TEST(SpscRingTest, MergeRefusedByWeightLandsAsOwnBatch) {
  SpscRing ring(3);
  StreamBatch two;
  two.tuples.push_back(V(1, 1));
  two.tuples.push_back(V(2, 2));
  ring.Push(std::move(two), 8);
  // 2+2 tuples fit max_coalesce 8 but would exceed weight capacity 3: the
  // merge is refused and the push blocks until the consumer drains. The
  // producer role moves to a helper thread (sequentially — still SPSC).
  std::thread producer([&] {
    StreamBatch more;
    more.tuples.push_back(V(3, 3));
    more.tuples.push_back(V(4, 4));
    ASSERT_TRUE(ring.Push(std::move(more), 8));
  });
  auto first = ring.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tuples.size(), 2u);  // unmerged: capacity held
  EXPECT_EQ(first->tuples[0]->ts, 1);
  producer.join();
  auto second = ring.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tuples.size(), 2u);
  EXPECT_EQ(second->tuples[0]->ts, 3);
}

TEST(SpscRingTest, OversizedBatchEntersEmptyRing) {
  SpscRing ring(2);
  StreamBatch big;
  for (int i = 0; i < 8; ++i) big.tuples.push_back(V(i, i));
  ring.Push(std::move(big), 8);  // 8 > capacity 2, ring empty: admitted
  EXPECT_EQ(ring.Size(), 1u);
  EXPECT_EQ(ring.Weight(), 8u);
}

TEST(SpscRingTest, AbortRejectsPushAndDrainsPops) {
  SpscRing ring(8);
  ring.Push(StreamBatch::MakeTuple(V(1, 1)), 1);
  ring.Push(StreamBatch::MakeTuple(V(2, 2)), 1);
  ring.Abort();
  EXPECT_FALSE(ring.Push(StreamBatch::MakeTuple(V(3, 3)), 1));
  // Post-abort pushes must not have coalesced into the dead tail either.
  auto a = ring.Pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->tuples.size(), 1u);
  auto b = ring.Pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->tuples.size(), 1u);
  EXPECT_FALSE(ring.Pop().has_value());
  std::vector<StreamBatch> rest;
  EXPECT_FALSE(ring.PopMany(rest));
}

TEST(SpscRingTest, AbortUnblocksParkedProducer) {
  SpscRing ring(1);
  ring.Push(StreamBatch::MakeTuple(V(1, 1)), 1);  // full
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    StreamBatch b = StreamBatch::MakeTuple(V(2, 2));
    b.port = 1;  // different port: cannot coalesce, must wait for weight
    push_result.store(ring.Push(std::move(b), 1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ring.Abort();
  producer.join();
  EXPECT_FALSE(push_result.load());
  // The blocked batch was dropped, not queued: only the pre-abort batch
  // drains.
  auto batch = ring.Pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->tuples[0]->ts, 1);
  EXPECT_FALSE(ring.Pop().has_value());
}

TEST(SpscRingTest, AbortUnblocksParkedConsumer) {
  SpscRing ring(4);
  std::thread consumer([&] {
    EXPECT_FALSE(ring.Pop().has_value());  // blocks until abort, then empty
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ring.Abort();
  consumer.join();
}

// --- two-thread stress -------------------------------------------------------

struct StressConfig {
  uint64_t seed = 1;
  int batches = 1'000'000;
  size_t capacity = 256;
  size_t max_coalesce = 16;
  bool use_pop_many = true;
};

// Producer: `batches` randomized batches — ~70% data (1-3 tuples carrying a
// global sequence number in `value`), ~30% watermark advances — with
// occasional stalls, then a final flush. Consumer: Pop/PopMany with its own
// stalls. Asserts the full stream contract on the consumer side.
void RunStress(const StressConfig& config) {
  SpscRing ring(config.capacity);

  std::thread producer([&] {
    SplitMix64 rng(config.seed);
    int64_t seq = 0;
    int64_t ts = 0;
    for (int i = 0; i < config.batches; ++i) {
      if (rng.UniformInt(0, 9) < 7) {
        StreamBatch batch;
        const int n = static_cast<int>(rng.UniformInt(1, 3));
        for (int k = 0; k < n; ++k) {
          batch.tuples.push_back(V(ts, seq++));
          ts += rng.UniformInt(0, 1);
        }
        ASSERT_TRUE(ring.Push(std::move(batch), config.max_coalesce));
      } else {
        // Watermark at the highest emitted ts: nondecreasing by construction.
        ASSERT_TRUE(ring.Push(StreamBatch::MakeWatermark(ts),
                              config.max_coalesce));
      }
      if (rng.UniformInt(0, 999) == 0) std::this_thread::yield();
      if (rng.UniformInt(0, 9999) == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            rng.UniformInt(1, 50)));
      }
    }
    ASSERT_TRUE(ring.Push(StreamBatch::MakeFlush(), config.max_coalesce));
  });

  SplitMix64 rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  int64_t next_seq = 0;
  int64_t last_ts = 0;
  int64_t last_wm = kNoWatermark;
  bool flushed = false;
  std::vector<StreamBatch> burst;
  while (!flushed) {
    burst.clear();
    if (config.use_pop_many && rng.UniformInt(0, 1) == 0) {
      ASSERT_TRUE(ring.PopMany(burst));
    } else {
      auto batch = ring.Pop();
      ASSERT_TRUE(batch.has_value());
      burst.push_back(std::move(*batch));
    }
    for (StreamBatch& batch : burst) {
      ASSERT_FALSE(flushed) << "batch after flush";
      for (const TuplePtr& t : batch.tuples) {
        const auto& v = static_cast<const testing::ValueTuple&>(*t);
        ASSERT_EQ(v.value, next_seq) << "lost/reordered/duplicated tuple";
        ++next_seq;
        ASSERT_GE(t->ts, last_ts) << "timestamp order broken";
        last_ts = t->ts;
        if (last_wm != kNoWatermark) {
          ASSERT_GE(t->ts, last_wm) << "tuple below watermark";
        }
      }
      if (batch.has_watermark()) {
        ASSERT_GE(batch.watermark, last_wm) << "watermark regressed";
        last_wm = batch.watermark;
      }
      flushed = batch.flush;
    }
    if (rng.UniformInt(0, 999) == 0) std::this_thread::yield();
    if (rng.UniformInt(0, 9999) == 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.UniformInt(1, 50)));
    }
  }
  producer.join();
  // Everything the producer emitted arrived, in order, before the flush.
  EXPECT_FALSE(ring.TryPop().has_value());
  EXPECT_GT(next_seq, 0);
  EXPECT_EQ(ring.Weight(), 0u);
}

TEST(SpscRingStressTest, MillionMixedBatchesNoLossNoReorder) {
  StressConfig config;
  config.seed = 7;
  RunStress(config);
}

TEST(SpscRingStressTest, TinyCapacityMaximizesBlocking) {
  // Capacity 2 forces constant producer/consumer parking: the slow-path
  // eventcount handshake gets exercised thousands of times.
  StressConfig config;
  config.seed = 11;
  config.batches = 100'000;
  config.capacity = 2;
  config.max_coalesce = 4;
  RunStress(config);
}

TEST(SpscRingStressTest, PopOnlyConsumerKeepsOrder) {
  StressConfig config;
  config.seed = 13;
  config.batches = 200'000;
  config.use_pop_many = false;
  RunStress(config);
}

TEST(SpscRingStressTest, AbortMidStreamDrainsExactPrefix) {
  SpscRing ring(64);
  std::atomic<int64_t> pushed{0};
  std::thread producer([&] {
    int64_t seq = 0;
    for (;;) {
      if (!ring.Push(StreamBatch::MakeTuple(V(seq, seq)), 8)) break;
      pushed.store(++seq, std::memory_order_release);
    }
  });
  // Consume a while mid-flight, then tear the stream down and drain.
  int64_t next = 0;
  while (next < 10'000) {
    auto batch = ring.Pop();
    ASSERT_TRUE(batch.has_value());
    for (const TuplePtr& t : batch->tuples) {
      ASSERT_EQ(static_cast<const testing::ValueTuple&>(*t).value, next);
      ++next;
    }
  }
  ring.Abort();
  producer.join();
  // The drain must be an exact prefix of the pushed sequence: every batch
  // that entered the ring arrives, in order, nothing after — the batch whose
  // push failed never entered.
  while (auto batch = ring.Pop()) {
    for (const TuplePtr& t : batch->tuples) {
      ASSERT_EQ(static_cast<const testing::ValueTuple&>(*t).value, next);
      ++next;
    }
  }
  EXPECT_EQ(next, pushed.load());
  EXPECT_FALSE(ring.TryPop().has_value());
}

}  // namespace
}  // namespace genealog
