#include <gtest/gtest.h>

#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::V;
using testing::ValueTuple;

std::vector<IntrusivePtr<ValueTuple>> Numbers(int n) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (int i = 0; i < n; ++i) out.push_back(V(i, i));
  return out;
}

TEST(RouterNodeTest, RoutesByCondition) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Numbers(10));
  auto* router = topo.Add<RouterNode<ValueTuple>>(
      "router",
      std::vector<RouterNode<ValueTuple>::Condition>{
          [](const ValueTuple& t) { return t.value % 2 == 0; },
          [](const ValueTuple& t) { return t.value % 3 == 0; },
      });
  Collector even;
  Collector triple;
  auto* sink_even = even.AttachSink(topo, "even");
  auto* sink_triple = triple.AttachSink(topo, "triple");
  topo.Connect(source, router);
  topo.Connect(router, sink_even);
  topo.Connect(router, sink_triple);
  RunToCompletion(topo);

  EXPECT_EQ(even.tuples().size(), 5u);    // 0 2 4 6 8
  EXPECT_EQ(triple.tuples().size(), 4u);  // 0 3 6 9
  EXPECT_EQ(even.at<ValueTuple>(1).value, 2);
  EXPECT_EQ(triple.at<ValueTuple>(1).value, 3);
}

TEST(RouterNodeTest, OverlappingConditionsCopyToBoth) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Numbers(7));
  auto* router = topo.Add<RouterNode<ValueTuple>>(
      "router",
      std::vector<RouterNode<ValueTuple>::Condition>{
          [](const ValueTuple& t) { return t.value >= 0; },  // everything
          [](const ValueTuple& t) { return t.value >= 0; },  // everything
      });
  Collector a;
  Collector b;
  auto* sink_a = a.AttachSink(topo, "a");
  auto* sink_b = b.AttachSink(topo, "b");
  topo.Connect(source, router);
  topo.Connect(router, sink_a);
  topo.Connect(router, sink_b);
  RunToCompletion(topo);

  ASSERT_EQ(a.tuples().size(), 7u);
  ASSERT_EQ(b.tuples().size(), 7u);
  // Copies, not the same objects; ids preserved (multiplex-copy semantics).
  EXPECT_NE(a.tuples()[0].get(), b.tuples()[0].get());
  EXPECT_EQ(a.tuples()[0]->id, b.tuples()[0]->id);
}

TEST(RouterNodeTest, DroppedBranchStillGetsWatermarks) {
  // A router branch whose condition never fires must not stall a downstream
  // merge: watermarks flow regardless.
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Numbers(20));
  auto* router = topo.Add<RouterNode<ValueTuple>>(
      "router",
      std::vector<RouterNode<ValueTuple>::Condition>{
          [](const ValueTuple&) { return true; },
          [](const ValueTuple&) { return false; },  // never
      });
  auto* merge = topo.Add<UnionNode>("union");
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, router);
  topo.Connect(router, merge);
  topo.Connect(router, merge);
  topo.Connect(merge, sink);
  RunToCompletion(topo);
  EXPECT_EQ(collector.tuples().size(), 20u);
}

// §2's claim, verified: the router is semantically the composition of a
// Multiplex with one Filter per output — including under GL provenance.
TEST(RouterNodeTest, EquivalentToMultiplexPlusFilters) {
  auto run_router = [](ProvenanceMode mode) {
    Topology topo(0, mode);
    auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Numbers(30));
    auto* router = topo.Add<RouterNode<ValueTuple>>(
        "router",
        std::vector<RouterNode<ValueTuple>::Condition>{
            [](const ValueTuple& t) { return t.value % 2 == 0; },
            [](const ValueTuple& t) { return t.value % 5 == 0; },
        });
    Collector a;
    Collector b;
    auto* sink_a = a.AttachSink(topo, "a");
    auto* sink_b = b.AttachSink(topo, "b");
    topo.Connect(source, router);
    topo.Connect(router, sink_a);
    topo.Connect(router, sink_b);
    RunToCompletion(topo);
    std::vector<std::vector<int64_t>> out(2);
    for (const auto& t : a.tuples()) out[0].push_back(static_cast<const ValueTuple&>(*t).value);
    for (const auto& t : b.tuples()) out[1].push_back(static_cast<const ValueTuple&>(*t).value);
    return out;
  };

  auto run_composed = [](ProvenanceMode mode) {
    Topology topo(0, mode);
    auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Numbers(30));
    auto* mux = topo.Add<MultiplexNode>("mux");
    auto* f_even = topo.Add<FilterNode<ValueTuple>>(
        "f.even", [](const ValueTuple& t) { return t.value % 2 == 0; });
    auto* f_five = topo.Add<FilterNode<ValueTuple>>(
        "f.five", [](const ValueTuple& t) { return t.value % 5 == 0; });
    Collector a;
    Collector b;
    auto* sink_a = a.AttachSink(topo, "a");
    auto* sink_b = b.AttachSink(topo, "b");
    topo.Connect(source, mux);
    topo.Connect(mux, f_even);
    topo.Connect(mux, f_five);
    topo.Connect(f_even, sink_a);
    topo.Connect(f_five, sink_b);
    RunToCompletion(topo);
    std::vector<std::vector<int64_t>> out(2);
    for (const auto& t : a.tuples()) out[0].push_back(static_cast<const ValueTuple&>(*t).value);
    for (const auto& t : b.tuples()) out[1].push_back(static_cast<const ValueTuple&>(*t).value);
    return out;
  };

  for (ProvenanceMode mode :
       {ProvenanceMode::kNone, ProvenanceMode::kGenealog,
        ProvenanceMode::kBaseline}) {
    EXPECT_EQ(run_router(mode), run_composed(mode))
        << "mode " << ToString(mode);
  }
}

TEST(RouterNodeTest, GenealogCopiesLinkBackToInput) {
  Topology topo(0, ProvenanceMode::kGenealog);
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Numbers(3));
  auto* router = topo.Add<RouterNode<ValueTuple>>(
      "router", std::vector<RouterNode<ValueTuple>::Condition>{
                    [](const ValueTuple&) { return true; }});
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, router);
  topo.Connect(router, sink);
  RunToCompletion(topo);

  ASSERT_EQ(collector.tuples().size(), 3u);
  for (const auto& t : collector.tuples()) {
    EXPECT_EQ(t->kind, TupleKind::kMultiplex);
    ASSERT_NE(t->u1(), nullptr);
    EXPECT_EQ(t->u1()->kind, TupleKind::kSource);
  }
}

}  // namespace
}  // namespace genealog
