// Aggregate internal-state behaviours that the semantic sweeps don't pin
// down: group-state reclamation for idle keys, key re-initialization after
// gaps, scale (many keys), and empty-input robustness.
#include <gtest/gtest.h>

#include "common/memory_accounting.h"
#include "spe/aggregate.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::KeyedTuple;
using testing::V;
using testing::ValueTuple;

AggregateCombiner<KeyedTuple, KeyedTuple, int64_t> KeyedCount() {
  return [](const WindowView<KeyedTuple, int64_t>& w) {
    return MakeTuple<KeyedTuple>(0, w.key,
                                 static_cast<double>(w.tuples.size()));
  };
}

TEST(AggregateStateTest, IdleKeyStateDoesNotPinTuples) {
  // Key 7 appears once, then never again; other keys keep the stream going.
  // The key-7 window fires and its state (and tuple) must be dropped.
  const int64_t base = mem::LiveTupleCount();
  {
    Topology topo;
    std::vector<IntrusivePtr<KeyedTuple>> data;
    data.push_back(MakeTuple<KeyedTuple>(1, 7, 1.0));
    for (int64_t ts = 2; ts < 1000; ++ts) {
      data.push_back(MakeTuple<KeyedTuple>(ts, ts % 3, 1.0));
    }
    auto* source =
        topo.Add<VectorSourceNode<KeyedTuple>>("src", std::move(data));
    auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
        "agg", AggregateOptions{10, 10},
        [](const KeyedTuple& t) { return t.key; }, KeyedCount());
    int64_t live_late = 0;
    auto* sink = topo.Add<SinkNode>("sink", [&](const TuplePtr& t) {
      if (t->ts > 900) live_late = mem::LiveTupleCount() - base;
    });
    topo.Connect(source, agg);
    topo.Connect(agg, sink);
    RunToCompletion(topo);
    // Late in the run, live tuples are the data vector + in-flight windows,
    // NOT the whole stream: far below 2x data size.
    EXPECT_GT(live_late, 0);
    EXPECT_LT(live_late, 1400);
  }
  EXPECT_EQ(mem::LiveTupleCount() - base, 0);
}

TEST(AggregateStateTest, KeyReinitializesAfterLongGap) {
  // Key 1 appears at ts 5, then again at ts 1000: two windows, no artifacts
  // from the stale group state in between.
  Topology topo;
  std::vector<IntrusivePtr<KeyedTuple>> data;
  data.push_back(MakeTuple<KeyedTuple>(5, 1, 1.0));
  data.push_back(MakeTuple<KeyedTuple>(500, 2, 1.0));  // advances watermark
  data.push_back(MakeTuple<KeyedTuple>(1000, 1, 1.0));
  auto* source = topo.Add<VectorSourceNode<KeyedTuple>>("src", std::move(data));
  auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const KeyedTuple& t) { return t.key; }, KeyedCount());
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);

  ASSERT_EQ(collector.tuples().size(), 3u);
  EXPECT_EQ(collector.tuples()[0]->ts, 0);     // key 1, window [0,10)
  EXPECT_EQ(collector.tuples()[1]->ts, 500);   // key 2
  EXPECT_EQ(collector.tuples()[2]->ts, 1000);  // key 1 again
  EXPECT_DOUBLE_EQ(collector.at<KeyedTuple>(0).value, 1.0);
  EXPECT_DOUBLE_EQ(collector.at<KeyedTuple>(2).value, 1.0);
}

TEST(AggregateStateTest, ManyKeysAllFire) {
  constexpr int kKeys = 2000;
  Topology topo;
  std::vector<IntrusivePtr<KeyedTuple>> data;
  for (int k = 0; k < kKeys; ++k) {
    data.push_back(MakeTuple<KeyedTuple>(1, k, 1.0));
  }
  auto* source = topo.Add<VectorSourceNode<KeyedTuple>>("src", std::move(data));
  auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const KeyedTuple& t) { return t.key; }, KeyedCount());
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);

  ASSERT_EQ(collector.tuples().size(), static_cast<size_t>(kKeys));
  // Same-window firings are ordered by key.
  for (size_t i = 0; i < collector.tuples().size(); ++i) {
    EXPECT_EQ(collector.at<KeyedTuple>(i).key, static_cast<int64_t>(i));
  }
}

TEST(AggregateStateTest, EmptyInputJustFlushes) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<KeyedTuple>>(
      "src", std::vector<IntrusivePtr<KeyedTuple>>{});
  auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const KeyedTuple& t) { return t.key; }, KeyedCount());
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);
  EXPECT_TRUE(collector.tuples().empty());
}

TEST(AggregateStateTest, SingleTupleStream) {
  Topology topo;
  std::vector<IntrusivePtr<KeyedTuple>> data{MakeTuple<KeyedTuple>(42, 1, 5.0)};
  auto* source = topo.Add<VectorSourceNode<KeyedTuple>>("src", std::move(data));
  auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const KeyedTuple& t) { return t.key; }, KeyedCount());
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);
  ASSERT_EQ(collector.tuples().size(), 1u);
  EXPECT_EQ(collector.tuples()[0]->ts, 40);  // window [40,50)
}

TEST(AggregateStateTest, NegativeTimestampsSupported) {
  Topology topo;
  std::vector<IntrusivePtr<KeyedTuple>> data;
  data.push_back(MakeTuple<KeyedTuple>(-25, 1, 1.0));
  data.push_back(MakeTuple<KeyedTuple>(-22, 1, 1.0));
  data.push_back(MakeTuple<KeyedTuple>(-5, 1, 1.0));
  auto* source = topo.Add<VectorSourceNode<KeyedTuple>>("src", std::move(data));
  auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const KeyedTuple& t) { return t.key; }, KeyedCount());
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);
  ASSERT_EQ(collector.tuples().size(), 2u);
  EXPECT_EQ(collector.tuples()[0]->ts, -30);  // window [-30,-20)
  EXPECT_DOUBLE_EQ(collector.at<KeyedTuple>(0).value, 2.0);
  EXPECT_EQ(collector.tuples()[1]->ts, -10);  // window [-10,0)
}

}  // namespace
}  // namespace genealog
