#include "spe/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "genealog/traversal.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::KeyedTuple;

std::vector<IntrusivePtr<KeyedTuple>> RandomKeyed(uint64_t seed, int n,
                                                  int n_keys) {
  SplitMix64 rng(seed);
  std::vector<IntrusivePtr<KeyedTuple>> out;
  int64_t ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += rng.UniformInt(0, 2);
    out.push_back(MakeTuple<KeyedTuple>(ts, rng.UniformInt(0, n_keys - 1),
                                        1.0));
  }
  return out;
}

AggregateCombiner<KeyedTuple, KeyedTuple, int64_t> CountPerKey() {
  return [](const WindowView<KeyedTuple, int64_t>& w) {
    return MakeTuple<KeyedTuple>(0, w.key,
                                 static_cast<double>(w.tuples.size()));
  };
}

struct Row {
  int64_t ts;
  int64_t key;
  double value;
  bool operator==(const Row&) const = default;
  auto operator<=>(const Row&) const = default;
};

std::vector<Row> RunCountQuery(int parallelism, ProvenanceMode mode,
                               std::vector<TuplePtr>* raw = nullptr) {
  Topology topo(0, mode);
  auto* source =
      topo.Add<VectorSourceNode<KeyedTuple>>("src", RandomKeyed(3, 600, 16));
  Collector c;
  auto* sink = c.AttachSink(topo);
  if (parallelism == 0) {  // single dedicated aggregate, the reference
    auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
        "agg", AggregateOptions{10, 10},
        [](const KeyedTuple& t) { return t.key; }, CountPerKey());
    topo.Connect(source, agg);
    topo.Connect(agg, sink);
  } else {
    ParallelStage stage = AddParallelAggregate<KeyedTuple, KeyedTuple>(
        topo, "par", parallelism, AggregateOptions{10, 10},
        [](const KeyedTuple& t) { return t.key; }, CountPerKey());
    topo.Connect(source, stage.entry);
    topo.Connect(stage.exit, sink);
  }
  RunToCompletion(topo);
  std::vector<Row> rows;
  for (const auto& t : c.tuples()) {
    const auto& k = static_cast<const KeyedTuple&>(*t);
    rows.push_back(Row{t->ts, k.key, k.value});
    if (raw != nullptr) raw->push_back(t);
  }
  return rows;
}

class ParallelAggregateTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelAggregateTest, SameResultsAsSingleInstance) {
  auto reference = RunCountQuery(0, ProvenanceMode::kNone);
  auto parallel = RunCountQuery(GetParam(), ProvenanceMode::kNone);
  ASSERT_FALSE(reference.empty());
  // Emission-order identical, not just canonically equal: the KeyedMergeNode
  // re-sorts each watermark-complete slice by (ts, group key), which is
  // exactly the single instance's (fire_at, key) heap order.
  EXPECT_EQ(parallel, reference);
}

TEST_P(ParallelAggregateTest, RunsAreDeterministic) {
  auto first = RunCountQuery(GetParam(), ProvenanceMode::kNone);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(RunCountQuery(GetParam(), ProvenanceMode::kNone), first);
  }
}

TEST_P(ParallelAggregateTest, OutputIsTimestampSorted) {
  auto rows = RunCountQuery(GetParam(), ProvenanceMode::kNone);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].ts, rows[i].ts);
  }
}

TEST_P(ParallelAggregateTest, ProvenanceWorksInsidePartitions) {
  std::vector<TuplePtr> raw;
  RunCountQuery(GetParam(), ProvenanceMode::kGenealog, &raw);
  ASSERT_FALSE(raw.empty());
  for (const TuplePtr& out : raw) {
    const auto origins = FindProvenance(out.get());
    // Count aggregates: provenance size equals the counted value, and all
    // origins carry the output's key.
    EXPECT_EQ(static_cast<double>(origins.size()),
              static_cast<const KeyedTuple&>(*out).value);
    for (Tuple* origin : origins) {
      EXPECT_EQ(origin->kind, TupleKind::kSource);
      EXPECT_EQ(static_cast<KeyedTuple*>(origin)->key,
                static_cast<const KeyedTuple&>(*out).key);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Parallelism, ParallelAggregateTest,
                         ::testing::Values(1, 2, 3, 4, 8));

// The routing function is part of the determinism contract: a merged parallel
// stage only reproduces the single-instance emission order if every replica
// sees exactly the keys the plan says it sees, on every run, at every batch
// size. Pin the SplitMix64-finalized assignment to golden values so a silent
// change to the hash (or the modulo) fails loudly instead of as a reshuffle.
TEST(KeyPartitionTest, PartitionAssignmentIsPinned) {
  using P = KeyPartitionNode<KeyedTuple>;
  // shards=1 is the identity regardless of hash.
  for (uint64_t k = 0; k < 100; ++k) EXPECT_EQ(P::PartitionOf(k, 1), 0u);
  // Golden SplitMix64-finalizer assignments for keys 0..7.
  constexpr size_t kMod3[] = {0, 1, 1, 2, 2, 0, 1, 1};
  constexpr size_t kMod4[] = {0, 1, 2, 0, 0, 0, 0, 0};
  for (uint64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(P::PartitionOf(k, 3), kMod3[k]) << "key " << k;
    EXPECT_EQ(P::PartitionOf(k, 4), kMod4[k]) << "key " << k;
  }
  // Spot-check the finalized value itself (key 1) so the constants above
  // can't drift together with a changed mixer.
  constexpr uint64_t kMixOfOne = 6238072747940578789ULL;
  EXPECT_EQ(P::PartitionOf(1, kMixOfOne + 1), kMixOfOne);
}

// Routing must be invisible to the data-plane batch size: the whole-chunk
// OnBatch path and the per-tuple OnTuple path are the same function.
TEST(KeyPartitionTest, BatchSizeDoesNotChangeRouting) {
  auto run = [](size_t batch) {
    Topology topo;
    topo.set_default_batch_size(batch);
    auto* source =
        topo.Add<VectorSourceNode<KeyedTuple>>("src", RandomKeyed(9, 300, 12));
    auto* partition = topo.Add<KeyPartitionNode<KeyedTuple>>(
        "part",
        [](const KeyedTuple& t) { return static_cast<uint64_t>(t.key); });
    std::vector<Collector> sinks(3);
    topo.Connect(source, partition);
    for (int i = 0; i < 3; ++i) {
      topo.Connect(partition,
                   sinks[i].AttachSink(topo, "s" + std::to_string(i)));
    }
    RunToCompletion(topo);
    std::vector<std::vector<Row>> out(3);
    for (int i = 0; i < 3; ++i) {
      for (const auto& t : sinks[i].tuples()) {
        const auto& k = static_cast<const KeyedTuple&>(*t);
        out[i].push_back(Row{t->ts, k.key, k.value});
        // Every tuple sits exactly where PartitionOf says it must.
        EXPECT_EQ(KeyPartitionNode<KeyedTuple>::PartitionOf(
                      static_cast<uint64_t>(k.key), 3),
                  static_cast<size_t>(i));
      }
    }
    return out;
  };
  const auto reference = run(1);
  size_t total = 0;
  for (const auto& shard : reference) total += shard.size();
  EXPECT_EQ(total, 300u);
  EXPECT_EQ(run(64), reference);
  EXPECT_EQ(run(7), reference);  // ragged chunk boundaries
}

TEST(KeyPartitionTest, EachKeyStaysOnOnePartition) {
  Topology topo;
  auto* source =
      topo.Add<VectorSourceNode<KeyedTuple>>("src", RandomKeyed(9, 300, 12));
  auto* partition = topo.Add<KeyPartitionNode<KeyedTuple>>(
      "part", [](const KeyedTuple& t) { return static_cast<uint64_t>(t.key); });
  Collector c0;
  Collector c1;
  Collector c2;
  auto* s0 = c0.AttachSink(topo, "s0");
  auto* s1 = c1.AttachSink(topo, "s1");
  auto* s2 = c2.AttachSink(topo, "s2");
  topo.Connect(source, partition);
  topo.Connect(partition, s0);
  topo.Connect(partition, s1);
  topo.Connect(partition, s2);
  RunToCompletion(topo);

  std::map<int64_t, int> partition_of;
  size_t total = 0;
  int idx = 0;
  for (const Collector* c : {&c0, &c1, &c2}) {
    for (const auto& t : c->tuples()) {
      const int64_t key = static_cast<const KeyedTuple&>(*t).key;
      auto [it, inserted] = partition_of.emplace(key, idx);
      EXPECT_EQ(it->second, idx) << "key " << key << " crossed partitions";
      ++total;
    }
    ++idx;
  }
  EXPECT_EQ(total, 300u);
  // With 12 keys over 3 partitions, no partition should be empty.
  EXPECT_GT(c0.tuples().size(), 0u);
  EXPECT_GT(c1.tuples().size(), 0u);
  EXPECT_GT(c2.tuples().size(), 0u);
}

TEST(KeyPartitionTest, ForwardsWithoutCopying) {
  Topology topo;
  std::vector<IntrusivePtr<KeyedTuple>> data{MakeTuple<KeyedTuple>(1, 5, 1.0)};
  auto* source = topo.Add<VectorSourceNode<KeyedTuple>>("src", std::move(data));
  auto* partition = topo.Add<KeyPartitionNode<KeyedTuple>>(
      "part", [](const KeyedTuple& t) { return static_cast<uint64_t>(t.key); });
  Collector c;
  auto* sink = c.AttachSink(topo);
  topo.Connect(source, partition);
  topo.Connect(partition, sink);
  RunToCompletion(topo);
  ASSERT_EQ(c.tuples().size(), 1u);
  // Forwarded, not copied: still a SOURCE tuple with no meta.
  EXPECT_EQ(c.tuples()[0]->kind, TupleKind::kSource);
  EXPECT_EQ(c.tuples()[0]->u1(), nullptr);
}

}  // namespace
}  // namespace genealog
