// Watermark-propagation properties: every operator must forward a correct,
// monotone watermark even when it emits no tuples, or downstream merges and
// window firings would stall or misfire. These tests wire a WatermarkProbe
// (a pass-through recording node) behind each operator kind and check the
// invariant "every later tuple has ts >= every earlier watermark".
#include <gtest/gtest.h>

#include "common/rng.h"
#include "spe/aggregate.h"
#include "spe/join.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::KeyedTuple;
using testing::V;
using testing::ValueTuple;

// Records the interleaved sequence of tuples and watermarks it sees.
class WatermarkProbe final : public SingleInputNode {
 public:
  struct Event {
    bool is_tuple;
    int64_t value;  // tuple ts or watermark
  };

  explicit WatermarkProbe(std::string name)
      : SingleInputNode(std::move(name)) {}

  const std::vector<Event>& events() const { return events_; }

  // The invariant: no tuple may have ts < any previously seen watermark.
  void CheckInvariant() const {
    int64_t max_wm = kWatermarkMin;
    int64_t last_wm = kWatermarkMin;
    for (const Event& e : events_) {
      if (e.is_tuple) {
        EXPECT_GE(e.value, max_wm) << "tuple violates earlier watermark";
      } else {
        EXPECT_GT(e.value, last_wm) << "watermarks must strictly increase";
        last_wm = e.value;
        max_wm = std::max(max_wm, e.value);
      }
    }
  }

  bool saw_watermark() const {
    for (const Event& e : events_) {
      if (!e.is_tuple) return true;
    }
    return false;
  }

 protected:
  void OnTuple(TuplePtr t) override {
    events_.push_back({true, t->ts});
    EmitTupleAll(t);
  }
  void OnWatermark(int64_t wm) override {
    events_.push_back({false, wm});
    ForwardWatermark(wm);
  }

 private:
  std::vector<Event> events_;
};

std::vector<IntrusivePtr<ValueTuple>> Ramp(int n, int64_t step) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (int i = 0; i < n; ++i) out.push_back(V(i * step, i));
  return out;
}

TEST(WatermarkTest, SourceInterleavesWatermarks) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Ramp(50, 3));
  auto* probe = topo.Add<WatermarkProbe>("probe");
  auto* sink = topo.Add<SinkNode>("sink");
  topo.Connect(source, probe);
  topo.Connect(probe, sink);
  RunToCompletion(topo);
  probe->CheckInvariant();
  EXPECT_TRUE(probe->saw_watermark());
}

TEST(WatermarkTest, DroppingFilterStillForwards) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Ramp(50, 3));
  auto* filter = topo.Add<FilterNode<ValueTuple>>(
      "drop_all", [](const ValueTuple&) { return false; });
  auto* probe = topo.Add<WatermarkProbe>("probe");
  auto* sink = topo.Add<SinkNode>("sink");
  topo.Connect(source, filter);
  topo.Connect(filter, probe);
  topo.Connect(probe, sink);
  RunToCompletion(topo);
  probe->CheckInvariant();
  EXPECT_TRUE(probe->saw_watermark());  // despite zero tuples
}

TEST(WatermarkTest, AggregateBoundIsTightAndSafe) {
  // Sliding aggregate: forwarded watermarks must never contradict a later
  // output (safety), and must advance (liveness).
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Ramp(200, 7));
  auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
      "agg", AggregateOptions{40, 10},
      [](const ValueTuple&) { return int64_t{0}; },
      [](const WindowView<ValueTuple, int64_t>& w) {
        return MakeTuple<ValueTuple>(0, static_cast<int64_t>(w.tuples.size()));
      });
  auto* probe = topo.Add<WatermarkProbe>("probe");
  auto* sink = topo.Add<SinkNode>("sink");
  topo.Connect(source, agg);
  topo.Connect(agg, probe);
  topo.Connect(probe, sink);
  RunToCompletion(topo);
  probe->CheckInvariant();
  EXPECT_TRUE(probe->saw_watermark());
}

TEST(WatermarkTest, AggregateEmitAtEndBound) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Ramp(100, 5));
  auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
      "agg",
      AggregateOptions{24, 24, WindowBounds::kLeftClosedRightOpen,
                       EmitAt::kWindowEnd},
      [](const ValueTuple&) { return int64_t{0}; },
      [](const WindowView<ValueTuple, int64_t>& w) {
        return MakeTuple<ValueTuple>(0, static_cast<int64_t>(w.tuples.size()));
      });
  auto* probe = topo.Add<WatermarkProbe>("probe");
  auto* sink = topo.Add<SinkNode>("sink");
  topo.Connect(source, agg);
  topo.Connect(agg, probe);
  topo.Connect(probe, sink);
  RunToCompletion(topo);
  probe->CheckInvariant();
}

TEST(WatermarkTest, JoinForwardsMergedWatermark) {
  Topology topo;
  // This test asserts an intermediate (finite) merged watermark reaches the
  // probe. At the default batch size the whole 60-tuple input coalesces into
  // one batch per port whose flush rides along, so the merge jumps straight
  // to +inf (swallowed by design); per-tuple handover keeps the incremental
  // cadence the assertion is about.
  topo.set_default_batch_size(1);
  std::vector<IntrusivePtr<KeyedTuple>> left;
  std::vector<IntrusivePtr<KeyedTuple>> right;
  for (int i = 0; i < 60; ++i) {
    left.push_back(MakeTuple<KeyedTuple>(2 * i, i % 3, 1.0));
    right.push_back(MakeTuple<KeyedTuple>(2 * i + 1, i % 3, 2.0));
  }
  auto* l = topo.Add<VectorSourceNode<KeyedTuple>>("l", std::move(left));
  auto* r = topo.Add<VectorSourceNode<KeyedTuple>>("r", std::move(right));
  auto* join = topo.Add<JoinNode<KeyedTuple, KeyedTuple, KeyedTuple>>(
      "join", JoinOptions{5},
      [](const KeyedTuple& a, const KeyedTuple& b) { return a.key == b.key; },
      [](const KeyedTuple& a, const KeyedTuple& b) {
        return MakeTuple<KeyedTuple>(0, a.key, a.value + b.value);
      });
  auto* probe = topo.Add<WatermarkProbe>("probe");
  auto* sink = topo.Add<SinkNode>("sink");
  topo.Connect(l, join);
  topo.Connect(r, join);
  topo.Connect(join, probe);
  topo.Connect(probe, sink);
  RunToCompletion(topo);
  probe->CheckInvariant();
  EXPECT_TRUE(probe->saw_watermark());
}

TEST(WatermarkTest, UnionForwardsMinimum) {
  Topology topo;
  auto* fast = topo.Add<VectorSourceNode<ValueTuple>>("fast", Ramp(100, 1));
  auto* slow = topo.Add<VectorSourceNode<ValueTuple>>("slow", Ramp(10, 10));
  auto* merge = topo.Add<UnionNode>("union");
  auto* probe = topo.Add<WatermarkProbe>("probe");
  auto* sink = topo.Add<SinkNode>("sink");
  topo.Connect(fast, merge);
  topo.Connect(slow, merge);
  topo.Connect(merge, probe);
  topo.Connect(probe, sink);
  RunToCompletion(topo);
  probe->CheckInvariant();
}

TEST(WatermarkTest, TupleTimestampsRaisePortWatermarksImplicitly) {
  // A merge fed by tuple-only streams (watermarks stripped) still makes
  // progress because each tuple's own ts raises its port watermark; the
  // tail is drained at flush.
  class WatermarkStripper final : public SingleInputNode {
   public:
    explicit WatermarkStripper(std::string name)
        : SingleInputNode(std::move(name)) {}

   protected:
    void OnTuple(TuplePtr t) override { EmitTupleAll(t); }
    void OnWatermark(int64_t) override {}  // swallow
  };

  Topology topo;
  auto* a = topo.Add<VectorSourceNode<ValueTuple>>("a", Ramp(20, 2));
  auto* b = topo.Add<VectorSourceNode<ValueTuple>>("b", Ramp(20, 3));
  auto* strip_a = topo.Add<WatermarkStripper>("strip_a");
  auto* strip_b = topo.Add<WatermarkStripper>("strip_b");
  auto* merge = topo.Add<UnionNode>("union");
  testing::Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(a, strip_a);
  topo.Connect(b, strip_b);
  topo.Connect(strip_a, merge);
  topo.Connect(strip_b, merge);
  topo.Connect(merge, sink);
  RunToCompletion(topo);
  EXPECT_EQ(collector.tuples().size(), 40u);
  const auto ts = collector.Timestamps();
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
}

}  // namespace
}  // namespace genealog
