// Parameterized Join property sweep: for random two-stream workloads and a
// range of window sizes, the engine's join must produce exactly the pairs a
// brute-force evaluation finds — |l.ts - r.ts| <= WS and predicate — with
// sorted output and correct GL meta-attributes on every output tuple.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "spe/join.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::KeyedTuple;

struct JoinSweepParam {
  int64_t ws;
  int n_keys;
  int max_gap;  // max ts increment between consecutive tuples
  uint64_t seed;
};

class JoinSweepTest : public ::testing::TestWithParam<JoinSweepParam> {};

std::vector<IntrusivePtr<KeyedTuple>> RandomStream(uint64_t seed, int n,
                                                   int n_keys, int max_gap) {
  SplitMix64 rng(seed);
  std::vector<IntrusivePtr<KeyedTuple>> out;
  int64_t ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += rng.UniformInt(0, max_gap);
    out.push_back(MakeTuple<KeyedTuple>(ts, rng.UniformInt(0, n_keys - 1),
                                        static_cast<double>(i)));
  }
  return out;
}

TEST_P(JoinSweepTest, MatchesBruteForceExactly) {
  const JoinSweepParam p = GetParam();
  auto left = RandomStream(p.seed, 120, p.n_keys, p.max_gap);
  auto right = RandomStream(p.seed + 1, 120, p.n_keys, p.max_gap);

  // Brute force: multiset of (l.value, r.value) pairs.
  std::map<std::pair<double, double>, int> expected;
  for (const auto& l : left) {
    for (const auto& r : right) {
      if (l->key == r->key && std::abs(l->ts - r->ts) <= p.ws) {
        ++expected[{l->value, r->value}];
      }
    }
  }

  Topology topo(0, ProvenanceMode::kGenealog);
  auto* l = topo.Add<VectorSourceNode<KeyedTuple>>("l", std::move(left));
  auto* r = topo.Add<VectorSourceNode<KeyedTuple>>("r", std::move(right));
  auto* join = topo.Add<JoinNode<KeyedTuple, KeyedTuple, KeyedTuple>>(
      "join", JoinOptions{p.ws},
      [](const KeyedTuple& a, const KeyedTuple& b) { return a.key == b.key; },
      [](const KeyedTuple& a, const KeyedTuple& b) {
        return MakeTuple<KeyedTuple>(0, a.key, a.value * 1000 + b.value);
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(l, join);
  topo.Connect(r, join);
  topo.Connect(join, sink);
  RunToCompletion(topo);

  std::map<std::pair<double, double>, int> actual;
  int64_t last_ts = kWatermarkMin;
  for (const auto& t : collector.tuples()) {
    const auto& k = static_cast<const KeyedTuple&>(*t);
    const double l_value = std::floor(k.value / 1000);
    const double r_value = k.value - l_value * 1000;
    ++actual[{l_value, r_value}];
    // Sorted output.
    EXPECT_GE(t->ts, last_ts);
    last_ts = t->ts;
    // GL meta: u1 newer, u2 older, both set.
    ASSERT_NE(t->u1(), nullptr);
    ASSERT_NE(t->u2(), nullptr);
    EXPECT_GE(t->u1()->ts, t->u2()->ts);
    EXPECT_EQ(t->ts, t->u1()->ts);
  }
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndKeySpaces, JoinSweepTest,
    ::testing::Values(JoinSweepParam{0, 2, 2, 100},
                      JoinSweepParam{1, 2, 2, 101},
                      JoinSweepParam{5, 4, 3, 102},
                      JoinSweepParam{10, 1, 1, 103},
                      JoinSweepParam{24, 8, 5, 104},
                      JoinSweepParam{100, 3, 2, 105},
                      JoinSweepParam{3, 16, 4, 106},
                      JoinSweepParam{7, 2, 9, 107}));

}  // namespace
}  // namespace genealog
