// The fluent dataflow builder's plan lowering: port assignment (Join
// left/right, Union merge order, Multiplex taps), provenance weaving per
// ProvenanceMode (SU/MU/provenance sink for GL, taps + resolver for BL,
// nothing for NP), deployment cuts (Send/Receive over channels), edge
// policies (EngineOptions batch size / SPSC vs mutex edges), and plan
// validation errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "baseline/resolver.h"
#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "spe/dataflow.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::KeyedTuple;
using testing::V;
using testing::ValueTuple;

std::vector<IntrusivePtr<ValueTuple>> Values(int n) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (int i = 0; i < n; ++i) out.push_back(V(i, i * 10));
  return out;
}

std::vector<std::string> NodeNames(const Topology& topo) {
  std::vector<std::string> names;
  for (const auto& node : topo.nodes()) names.push_back(node->name());
  return names;
}

bool HasNode(const Topology& topo, const std::string& name) {
  const auto names = NodeNames(topo);
  return std::find(names.begin(), names.end(), name) != names.end();
}

// --- ports ------------------------------------------------------------------

// Join: the stream the combinator is invoked on must land on port 0 (left),
// the argument stream on port 1 (right). The combiner's argument order makes
// a swap visible in the data.
TEST(DataflowTest, JoinPortsFollowCallOrder) {
  Dataflow df;
  auto taps = df.Source<ValueTuple>("src", Values(8)).Multiplex("mux", 2);
  auto left = taps[0].Filter("keep.left",
                             [](const ValueTuple&) { return true; });
  std::vector<std::pair<int64_t, int64_t>> pairs;
  left.Join<KeyedTuple>(
          "join", taps[1], JoinOptions{0},
          [](const ValueTuple&, const ValueTuple&) { return true; },
          [](const ValueTuple& l, const ValueTuple& r) {
            return MakeTuple<KeyedTuple>(0, l.value * 1000,
                                         static_cast<double>(r.value));
          })
      .Sink("k", [&pairs](const TuplePtr& t) {
        const auto& k = static_cast<const KeyedTuple&>(*t);
        pairs.emplace_back(k.key, static_cast<int64_t>(k.value));
      });
  BuiltDataflow flow = df.Build();
  flow.Run();
  ASSERT_EQ(pairs.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    // left value rode through key*1000, right through value: a port swap
    // would flip the factor.
    EXPECT_EQ(pairs[i].first, i * 10 * 1000);
    EXPECT_EQ(pairs[i].second, i * 10);
  }
}

// Union input ports follow argument order; the deterministic merge releases
// timestamp ties by (ts, port), so putting stream B on port 1 is observable.
TEST(DataflowTest, UnionMergeOrderFollowsPortOrder) {
  std::vector<IntrusivePtr<ValueTuple>> a, b;
  for (int i = 0; i < 4; ++i) {
    a.push_back(V(i, 100 + i));  // port 0
    b.push_back(V(i, 200 + i));  // port 1, same timestamps
  }
  Dataflow df;
  auto sa = df.Source<ValueTuple>("a", a);
  auto sb = df.Source<ValueTuple>("b", b);
  std::vector<int64_t> order;
  sa.Union("u", sb).Sink("k", [&order](const TuplePtr& t) {
    order.push_back(static_cast<const ValueTuple&>(*t).value);
  });
  BuiltDataflow flow = df.Build();
  flow.Run();
  const std::vector<int64_t> want = {100, 200, 101, 201, 102, 202, 103, 203};
  EXPECT_EQ(order, want);
}

TEST(DataflowTest, MultiplexTapsAreIndependentCopies) {
  Dataflow df;
  auto taps = df.Source<ValueTuple>("src", Values(5)).Multiplex("mux", 2);
  std::vector<int64_t> evens, all;
  taps[0]
      .Filter("evens",
              [](const ValueTuple& t) { return t.value % 20 == 0; })
      .Sink("k0", [&evens](const TuplePtr& t) {
        evens.push_back(static_cast<const ValueTuple&>(*t).value);
      });
  taps[1].Sink("k1", [&all](const TuplePtr& t) {
    all.push_back(static_cast<const ValueTuple&>(*t).value);
  });
  BuiltDataflow flow = df.Build();
  flow.Run();
  EXPECT_EQ(evens, (std::vector<int64_t>{0, 20, 40}));
  EXPECT_EQ(all, (std::vector<int64_t>{0, 10, 20, 30, 40}));
}

// --- provenance weaving per mode --------------------------------------------

Dataflow MakeChain(DataflowOptions opts,
                   std::vector<IntrusivePtr<ValueTuple>> data) {
  Dataflow df(std::move(opts));
  df.Source<ValueTuple>("src", std::move(data))
      .Filter("keep", [](const ValueTuple&) { return true; })
      .Sink("k");
  return df;
}

TEST(DataflowTest, NoneModeAddsNoMachinery) {
  Dataflow df = MakeChain({}, Values(4));
  BuiltDataflow flow = df.Build();
  ASSERT_EQ(flow.topologies.size(), 1u);
  EXPECT_EQ(flow.topologies[0]->nodes().size(), 3u);  // src, keep, k
  EXPECT_EQ(flow.provenance_sink, nullptr);
  EXPECT_EQ(flow.baseline_resolver, nullptr);
  EXPECT_TRUE(flow.su_nodes.empty());
  EXPECT_EQ(flow.n_instances, 1);
  flow.Run();
  EXPECT_EQ(flow.sink()->count(), 4u);
}

TEST(DataflowTest, GenealogIntraWeavesSuBeforeSink) {
  DataflowOptions opts;
  opts.mode = ProvenanceMode::kGenealog;
  Dataflow df = MakeChain(std::move(opts), Values(4));
  BuiltDataflow flow = df.Build();
  ASSERT_EQ(flow.topologies.size(), 1u);
  ASSERT_NE(flow.provenance_sink, nullptr);
  ASSERT_EQ(flow.su_nodes.size(), 1u);  // the Theorem 5.3 SU
  EXPECT_TRUE(HasNode(*flow.topologies[0], "SU"));
  EXPECT_TRUE(HasNode(*flow.topologies[0], "K2"));
  // SU: output 0 = SO, output 1 = U.
  EXPECT_EQ(flow.su_nodes[0]->num_outputs(), 2u);
  flow.Run();
  EXPECT_EQ(flow.sink()->count(), 4u);
  EXPECT_EQ(flow.provenance_records(), 4u);
  EXPECT_DOUBLE_EQ(flow.mean_origins_per_record(), 1.0);
}

TEST(DataflowTest, GenealogDistributedWeavesSuPerCutAndMu) {
  DataflowOptions opts;
  opts.mode = ProvenanceMode::kGenealog;
  Dataflow df(std::move(opts));
  df.Source<ValueTuple>("src", Values(6))
      .Filter("stage1", [](const ValueTuple&) { return true; })
      .At(2)
      .Filter("stage2", [](const ValueTuple&) { return true; })
      .Sink("k");
  BuiltDataflow flow = df.Build();
  // Instances 1 and 2 plus the woven provenance instance 3.
  ASSERT_EQ(flow.topologies.size(), 3u);
  EXPECT_EQ(flow.n_instances, 3);
  EXPECT_EQ(flow.topologies[0]->instance_id(), 1);
  EXPECT_EQ(flow.topologies[1]->instance_id(), 2);
  EXPECT_EQ(flow.topologies[2]->instance_id(), 3);
  // One SU at the cut (instance 1), one before the sink (instance 2).
  ASSERT_EQ(flow.su_nodes.size(), 2u);
  EXPECT_TRUE(HasNode(*flow.topologies[1], "SU.sink"));
  EXPECT_TRUE(HasNode(*flow.topologies[0], "SU.send0"));
  // The provenance instance holds MU + K2 + the two unfolded receives.
  EXPECT_TRUE(HasNode(*flow.topologies[2], "MU"));
  EXPECT_TRUE(HasNode(*flow.topologies[2], "K2"));
  EXPECT_TRUE(HasNode(*flow.topologies[2], "recv.U_sink"));
  EXPECT_TRUE(HasNode(*flow.topologies[2], "recv.U0"));
  // Channels: data + U at the cut, derived U to the MU.
  EXPECT_EQ(flow.channels.size(), 3u);
  flow.Run();
  EXPECT_EQ(flow.sink()->count(), 6u);
  EXPECT_EQ(flow.provenance_records(), 6u);
}

TEST(DataflowTest, BaselineWeavesTapsAndResolver) {
  DataflowOptions opts;
  opts.mode = ProvenanceMode::kBaseline;
  Dataflow df = MakeChain(std::move(opts), Values(4));
  BuiltDataflow flow = df.Build();
  ASSERT_EQ(flow.topologies.size(), 1u);
  ASSERT_NE(flow.baseline_resolver, nullptr);
  EXPECT_EQ(flow.provenance_sink, nullptr);
  EXPECT_TRUE(HasNode(*flow.topologies[0], "bl.source_tap.src"));
  EXPECT_TRUE(HasNode(*flow.topologies[0], "bl.sink_tap"));
  EXPECT_TRUE(HasNode(*flow.topologies[0], "bl.resolver"));
  // Resolver ports: 0 = annotated sink stream, 1 = the source stream.
  EXPECT_EQ(flow.baseline_resolver->num_inputs(), 2u);
  flow.Run();
  EXPECT_EQ(flow.sink()->count(), 4u);
  EXPECT_EQ(flow.provenance_records(), 4u);
}

TEST(DataflowTest, BaselineDistributedShipsSourceStream) {
  DataflowOptions opts;
  opts.mode = ProvenanceMode::kBaseline;
  Dataflow df(std::move(opts));
  df.Source<ValueTuple>("src", Values(5))
      .At(2)
      .Filter("stage2", [](const ValueTuple&) { return true; })
      .Sink("k");
  BuiltDataflow flow = df.Build();
  ASSERT_EQ(flow.topologies.size(), 3u);
  EXPECT_TRUE(HasNode(*flow.topologies[2], "bl.resolver"));
  EXPECT_TRUE(HasNode(*flow.topologies[0], "send.source_copy0"));
  EXPECT_TRUE(HasNode(*flow.topologies[2], "recv.sink_ann"));
  flow.Run();
  EXPECT_EQ(flow.sink()->count(), 5u);
  EXPECT_EQ(flow.provenance_records(), 5u);
  EXPECT_GT(flow.network_bytes(), 0u);
}

// --- edge policies ----------------------------------------------------------

TEST(DataflowTest, EngineOptionsStampEveryTopology) {
  DataflowOptions opts;
  opts.engine.batch_size = 64;
  opts.engine.spsc_edges = false;
  opts.engine.adaptive_batch = false;
  Dataflow df(std::move(opts));
  df.Source<ValueTuple>("src", Values(4))
      .At(2)
      .Filter("f", [](const ValueTuple&) { return true; })
      .Sink("k");
  BuiltDataflow flow = df.Build();
  for (const auto& topo : flow.topologies) {
    EXPECT_EQ(topo->default_batch_size(), 64u);
    EXPECT_FALSE(topo->spsc_edges());
    EXPECT_FALSE(topo->adaptive_batch());
  }
  // With SPSC disabled, even single-producer edges use the mutex queue.
  for (const auto& topo : flow.topologies) {
    for (const auto& node : topo->nodes()) {
      if (node->input_queue() != nullptr) {
        EXPECT_EQ(node->input_queue()->kind(), StreamEdge::Kind::kMutex);
      }
    }
  }
  flow.Run();
  EXPECT_EQ(flow.sink()->count(), 4u);
}

TEST(DataflowTest, SingleProducerEdgesUpgradeToSpscRing) {
  DataflowOptions opts;
  opts.engine.spsc_edges = true;
  Dataflow df(std::move(opts));
  auto a = df.Source<ValueTuple>("a", Values(4));
  auto b = df.Source<ValueTuple>("b", Values(4));
  // The Union is fed by two *distinct* producer nodes (two threads) — it
  // must stay on the mutex queue; the single-producer sink edge rides the
  // ring. A Multiplex's taps both come from one node, so even a fan-out
  // into one consumer keeps the ring (covered by the mux flow below).
  a.Union("u", b).Sink("k");
  BuiltDataflow flow = df.Build();
  const Topology& topo = *flow.topologies[0];
  for (const auto& node : topo.nodes()) {
    if (node->input_queue() == nullptr) continue;
    const auto want = node->name() == "u" ? StreamEdge::Kind::kMutex
                                          : StreamEdge::Kind::kSpsc;
    EXPECT_EQ(node->input_queue()->kind(), want) << node->name();
  }
  flow.Run();
  EXPECT_EQ(flow.sink()->count(), 8u);

  // One producer node, two taps into one merging consumer: still SPSC.
  DataflowOptions opts2;
  opts2.engine.spsc_edges = true;  // pin against GENEALOG_SPSC_RING=0
  Dataflow df2(std::move(opts2));
  auto taps = df2.Source<ValueTuple>("src", Values(4)).Multiplex("mux", 2);
  taps[0].Union("u2", taps[1]).Sink("k2");
  BuiltDataflow flow2 = df2.Build();
  for (const auto& node : flow2.topologies[0]->nodes()) {
    if (node->input_queue() == nullptr) continue;
    EXPECT_EQ(node->input_queue()->kind(), StreamEdge::Kind::kSpsc)
        << node->name();
  }
  flow2.Run();
  EXPECT_EQ(flow2.sink()->count(), 8u);
}

// --- parallel stages --------------------------------------------------------

std::vector<IntrusivePtr<KeyedTuple>> Keyed(int n, int n_keys) {
  std::vector<IntrusivePtr<KeyedTuple>> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(MakeTuple<KeyedTuple>(i, i % n_keys, 1.0));
  }
  return out;
}

AggregateCombiner<KeyedTuple, KeyedTuple, int64_t> SumPerKey() {
  return [](const WindowView<KeyedTuple, int64_t>& w) {
    double sum = 0;
    for (const auto& t : w.tuples) sum += t->value;
    return MakeTuple<KeyedTuple>(0, w.key, sum);
  };
}

// When the merged stream feeds the sink directly (GL, intra, fused
// unfolders), each replica gets its own SU: the provenance traversal runs
// inside the shards and the single Theorem 5.3 SU disappears.
TEST(DataflowTest, GenealogWeavesPerReplicaSusWhenParallelStageFeedsSink) {
  DataflowOptions opts;
  opts.mode = ProvenanceMode::kGenealog;
  Dataflow df(std::move(opts));
  df.Source<KeyedTuple>("src", Keyed(12, 4))
      .KeyBy([](const KeyedTuple& t) { return t.key; })
      .Parallel(3)
      .Aggregate<KeyedTuple>("par", AggregateOptions{4, 4}, SumPerKey())
      .Sink("k");
  BuiltDataflow flow = df.Build();
  ASSERT_EQ(flow.topologies.size(), 1u);
  const Topology& topo = *flow.topologies[0];
  EXPECT_TRUE(HasNode(topo, "par.partition"));
  EXPECT_TRUE(HasNode(topo, "par.merge"));
  EXPECT_TRUE(HasNode(topo, "par.u_merge"));
  ASSERT_EQ(flow.su_nodes.size(), 3u);  // one per replica ...
  EXPECT_TRUE(HasNode(topo, "SU.par0"));
  EXPECT_TRUE(HasNode(topo, "SU.par2"));
  EXPECT_FALSE(HasNode(topo, "SU"));  // ... instead of one after the merge
  flow.Run();
  // 12 tuples, 4 keys, tumbling 4-wide windows: one output per key per
  // window, each derived from exactly one source tuple.
  EXPECT_EQ(flow.sink()->count(), 12u);
  EXPECT_EQ(flow.provenance_records(), 12u);
  EXPECT_DOUBLE_EQ(flow.mean_origins_per_record(), 1.0);
}

// Any consumer between the merge and the sink keeps the single woven SU: the
// per-replica placement is an optimization, not a semantic change.
TEST(DataflowTest, GenealogKeepsSingleSuWhenParallelStageIsNotLast) {
  DataflowOptions opts;
  opts.mode = ProvenanceMode::kGenealog;
  Dataflow df(std::move(opts));
  df.Source<KeyedTuple>("src", Keyed(12, 4))
      .KeyBy([](const KeyedTuple& t) { return t.key; })
      .Parallel(2)
      .Aggregate<KeyedTuple>("par", AggregateOptions{4, 4}, SumPerKey())
      .Filter("keep", [](const KeyedTuple&) { return true; })
      .Sink("k");
  BuiltDataflow flow = df.Build();
  ASSERT_EQ(flow.su_nodes.size(), 1u);
  EXPECT_TRUE(HasNode(*flow.topologies[0], "SU"));
  EXPECT_FALSE(HasNode(*flow.topologies[0], "SU.par0"));
  flow.Run();
  EXPECT_EQ(flow.sink()->count(), 12u);
  EXPECT_EQ(flow.provenance_records(), 12u);
}

// A parallel stage honors .At(n) deployment cuts like any other operator;
// distributed builds fall back to the merge-then-SU placement (the cut SU
// and the sink SU, exactly as in the single-instance plan).
TEST(DataflowTest, ParallelStageHonorsDeploymentCut) {
  DataflowOptions opts;
  opts.mode = ProvenanceMode::kGenealog;
  Dataflow df(std::move(opts));
  df.Source<KeyedTuple>("src", Keyed(12, 4))
      .At(2)
      .KeyBy([](const KeyedTuple& t) { return t.key; })
      .Parallel(2)
      .Aggregate<KeyedTuple>("par", AggregateOptions{4, 4}, SumPerKey())
      .Sink("k");
  BuiltDataflow flow = df.Build();
  ASSERT_EQ(flow.topologies.size(), 3u);  // 2 processing + provenance
  EXPECT_TRUE(HasNode(*flow.topologies[1], "par.partition"));
  EXPECT_TRUE(HasNode(*flow.topologies[1], "par.merge"));
  EXPECT_FALSE(HasNode(*flow.topologies[1], "SU.par0"));
  EXPECT_EQ(flow.su_nodes.size(), 2u);  // cut + sink
  flow.Run();
  EXPECT_EQ(flow.sink()->count(), 12u);
  EXPECT_EQ(flow.provenance_records(), 12u);
}

// --- validation -------------------------------------------------------------

TEST(DataflowTest, RejectsUnconsumedAndDoublyConsumedStreams) {
  {
    Dataflow df;
    df.Source<ValueTuple>("src", Values(1));  // never sinked
    EXPECT_THROW(df.Build(), std::logic_error);
  }
  {
    Dataflow df;
    auto s = df.Source<ValueTuple>("src", Values(1));
    s.Sink("k1");
    s.Sink("k2");  // same stream consumed twice
    EXPECT_THROW(df.Build(), std::logic_error);
  }
}

TEST(DataflowTest, RejectsMultipleSinksInProvenanceModes) {
  DataflowOptions opts;
  opts.mode = ProvenanceMode::kGenealog;
  Dataflow df(std::move(opts));
  auto taps = df.Source<ValueTuple>("src", Values(1)).Multiplex("mux", 2);
  taps[0].Sink("k1");
  taps[1].Sink("k2");
  EXPECT_THROW(df.Build(), std::logic_error);
}

TEST(DataflowTest, ParallelRejectsNonPositiveShardCounts) {
  Dataflow df;
  auto keyed = df.Source<KeyedTuple>("src", Keyed(4, 2))
                   .KeyBy([](const KeyedTuple& t) { return t.key; });
  EXPECT_THROW(keyed.Parallel(0), std::logic_error);
  EXPECT_THROW(keyed.Parallel(-3), std::logic_error);
  keyed.Parallel(2)
      .Aggregate<KeyedTuple>("par", AggregateOptions{4, 4}, SumPerKey())
      .Sink("k");
  df.Build().Run();
}

// The N-chain safety argument only covers a key-partitioned stage that is
// the last stateful step before the sink: a second stateful consumer after
// the merge would observe the interleaved stream, so validation rejects it.
TEST(DataflowTest, RejectsStatefulConsumerDownstreamOfParallelStage) {
  {
    Dataflow df;
    df.Source<KeyedTuple>("src", Keyed(8, 2))
        .KeyBy([](const KeyedTuple& t) { return t.key; })
        .Parallel(2)
        .Aggregate<KeyedTuple>("par", AggregateOptions{4, 4}, SumPerKey())
        .Aggregate<KeyedTuple>("agg2", AggregateOptions{8, 8},
                               [](const KeyedTuple& t) { return t.key; },
                               SumPerKey())
        .Sink("k");
    EXPECT_THROW(df.Build(), std::logic_error);
  }
  {
    // Also rejected through intervening stateless operators.
    Dataflow df;
    auto merged = df.Source<KeyedTuple>("src", Keyed(8, 2))
                      .KeyBy([](const KeyedTuple& t) { return t.key; })
                      .Parallel(2)
                      .Aggregate<KeyedTuple>("par", AggregateOptions{4, 4},
                                             SumPerKey())
                      .Filter("keep", [](const KeyedTuple&) { return true; });
    auto other = df.Source<KeyedTuple>("src2", Keyed(8, 2));
    merged
        .Join<KeyedTuple>("join", other, JoinOptions{4},
                          [](const KeyedTuple& l, const KeyedTuple& r) {
                            return l.key == r.key;
                          },
                          [](const KeyedTuple& l, const KeyedTuple& r) {
                            return MakeTuple<KeyedTuple>(0, l.key,
                                                         l.value + r.value);
                          })
        .Sink("k");
    EXPECT_THROW(df.Build(), std::logic_error);
  }
}

TEST(DataflowTest, RejectsEmptyPlanAndDoubleBuild) {
  {
    Dataflow df;
    EXPECT_THROW(df.Build(), std::logic_error);
  }
  {
    Dataflow df;
    df.Source<ValueTuple>("src", Values(1)).Sink("k");
    BuiltDataflow flow = df.Build();
    EXPECT_THROW(df.Build(), std::logic_error);
    flow.Run();
  }
}

}  // namespace
}  // namespace genealog
