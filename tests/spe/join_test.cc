#include "spe/join.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::KeyedTuple;
using testing::V;
using testing::ValueTuple;

std::vector<IntrusivePtr<KeyedTuple>> Keyed(
    std::initializer_list<std::tuple<int64_t, int64_t, double>> items) {
  std::vector<IntrusivePtr<KeyedTuple>> out;
  for (auto [ts, key, value] : items) {
    out.push_back(MakeTuple<KeyedTuple>(ts, key, value));
  }
  return out;
}

// Joins two KeyedTuple streams on key; output value = l.value + r.value.
struct JoinRun {
  Collector collector;
  std::vector<TuplePtr> outputs;
};

std::vector<std::tuple<int64_t, int64_t, double>> RunJoin(
    std::vector<IntrusivePtr<KeyedTuple>> left,
    std::vector<IntrusivePtr<KeyedTuple>> right, int64_t ws,
    ProvenanceMode mode = ProvenanceMode::kNone,
    std::vector<TuplePtr>* raw = nullptr) {
  Topology topo(0, mode);
  auto* l = topo.Add<VectorSourceNode<KeyedTuple>>("left", std::move(left));
  auto* r = topo.Add<VectorSourceNode<KeyedTuple>>("right", std::move(right));
  auto* join = topo.Add<JoinNode<KeyedTuple, KeyedTuple, KeyedTuple>>(
      "join", JoinOptions{ws},
      [](const KeyedTuple& a, const KeyedTuple& b) { return a.key == b.key; },
      [](const KeyedTuple& a, const KeyedTuple& b) {
        return MakeTuple<KeyedTuple>(0, a.key, a.value + b.value);
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(l, join);   // port 0 = left
  topo.Connect(r, join);   // port 1 = right
  topo.Connect(join, sink);
  RunToCompletion(topo);

  std::vector<std::tuple<int64_t, int64_t, double>> out;
  for (const auto& t : collector.tuples()) {
    const auto& k = static_cast<const KeyedTuple&>(*t);
    out.emplace_back(t->ts, k.key, k.value);
    if (raw != nullptr) raw->push_back(t);
  }
  return out;
}

TEST(JoinTest, MatchesPairsWithinWindow) {
  auto out = RunJoin(Keyed({{10, 1, 1.0}}), Keyed({{12, 1, 2.0}}), 5);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], std::make_tuple(int64_t{12}, int64_t{1}, 3.0));
}

TEST(JoinTest, RespectsWindowBoundInclusive) {
  // |10 - 15| = 5 = WS: inclusive per Def. 3.1 (|tL.ts - tR.ts| <= WS).
  auto out = RunJoin(Keyed({{10, 1, 1.0}}), Keyed({{15, 1, 2.0}}), 5);
  EXPECT_EQ(out.size(), 1u);
}

TEST(JoinTest, RejectsPairsBeyondWindow) {
  auto out = RunJoin(Keyed({{10, 1, 1.0}}), Keyed({{16, 1, 2.0}}), 5);
  EXPECT_TRUE(out.empty());
}

TEST(JoinTest, PredicateFilters) {
  auto out = RunJoin(Keyed({{10, 1, 1.0}}), Keyed({{11, 2, 2.0}}), 5);
  EXPECT_TRUE(out.empty());
}

TEST(JoinTest, MatchesInBothArrivalOrders) {
  // Left tuple older than right and vice versa.
  auto out = RunJoin(Keyed({{10, 1, 1.0}, {20, 2, 1.0}}),
                     Keyed({{12, 1, 2.0}, {18, 2, 2.0}}), 5);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(std::get<0>(out[0]), 12);  // ts = max of pair
  EXPECT_EQ(std::get<0>(out[1]), 20);
}

TEST(JoinTest, OneToManyMatches) {
  auto out = RunJoin(Keyed({{10, 1, 1.0}}),
                     Keyed({{8, 1, 2.0}, {11, 1, 4.0}, {14, 1, 8.0}}), 5);
  ASSERT_EQ(out.size(), 3u);
  // Output timestamps are the max of each pair and nondecreasing.
  EXPECT_EQ(std::get<0>(out[0]), 10);
  EXPECT_EQ(std::get<0>(out[1]), 11);
  EXPECT_EQ(std::get<0>(out[2]), 14);
}

TEST(JoinTest, OutputTimestampsSorted) {
  SplitMix64 rng(5);
  std::vector<IntrusivePtr<KeyedTuple>> left;
  std::vector<IntrusivePtr<KeyedTuple>> right;
  int64_t lts = 0;
  int64_t rts = 0;
  for (int i = 0; i < 200; ++i) {
    lts += rng.UniformInt(0, 3);
    rts += rng.UniformInt(0, 3);
    left.push_back(MakeTuple<KeyedTuple>(lts, rng.UniformInt(0, 3), 1.0));
    right.push_back(MakeTuple<KeyedTuple>(rts, rng.UniformInt(0, 3), 2.0));
  }
  auto out = RunJoin(std::move(left), std::move(right), 10);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(std::get<0>(out[i - 1]), std::get<0>(out[i]));
  }
}

TEST(JoinTest, MatchesBruteForce) {
  SplitMix64 rng(17);
  std::vector<IntrusivePtr<KeyedTuple>> left;
  std::vector<IntrusivePtr<KeyedTuple>> right;
  int64_t lts = 0;
  int64_t rts = 0;
  for (int i = 0; i < 150; ++i) {
    lts += rng.UniformInt(0, 4);
    rts += rng.UniformInt(0, 4);
    left.push_back(MakeTuple<KeyedTuple>(lts, rng.UniformInt(0, 2), 1.0));
    right.push_back(MakeTuple<KeyedTuple>(rts, rng.UniformInt(0, 2), 2.0));
  }
  size_t expected = 0;
  for (const auto& l : left) {
    for (const auto& r : right) {
      if (l->key == r->key && std::abs(l->ts - r->ts) <= 7) ++expected;
    }
  }
  auto out = RunJoin(std::move(left), std::move(right), 7);
  EXPECT_EQ(out.size(), expected);
}

TEST(JoinTest, GenealogOrientsU1ToNewerInput) {
  std::vector<TuplePtr> raw;
  RunJoin(Keyed({{10, 1, 1.0}}), Keyed({{12, 1, 2.0}}), 5,
          ProvenanceMode::kGenealog, &raw);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0]->kind, TupleKind::kJoin);
  ASSERT_NE(raw[0]->u1(), nullptr);
  ASSERT_NE(raw[0]->u2(), nullptr);
  EXPECT_EQ(raw[0]->u1()->ts, 12);  // newer
  EXPECT_EQ(raw[0]->u2()->ts, 10);  // older
}

TEST(JoinTest, BaselineMergesAnnotations) {
  std::vector<TuplePtr> raw;
  RunJoin(Keyed({{10, 1, 1.0}}), Keyed({{12, 1, 2.0}}), 5,
          ProvenanceMode::kBaseline, &raw);
  ASSERT_EQ(raw.size(), 1u);
  ASSERT_NE(raw[0]->baseline_annotation(), nullptr);
  EXPECT_EQ(raw[0]->baseline_annotation()->size(), 2u);
}

TEST(JoinTest, SelfPairsAcrossStreamsWithEqualTimestamps) {
  // Q4's pattern: both sides carry a tuple at the same ts and key.
  auto out = RunJoin(Keyed({{24, 7, 100.0}}), Keyed({{24, 7, 300.0}}), 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], std::make_tuple(int64_t{24}, int64_t{7}, 400.0));
}

TEST(JoinTest, StimulusIsMaxOfPair) {
  std::vector<TuplePtr> raw;
  RunJoin(Keyed({{10, 1, 1.0}}), Keyed({{12, 1, 2.0}}), 5,
          ProvenanceMode::kNone, &raw);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_GT(raw[0]->stimulus, 0);
}

// Purge correctness: a tuple must remain matchable exactly while the merged
// watermark allows a future partner within WS.
TEST(JoinTest, LateArrivingPartnerAtWindowEdgeStillMatches) {
  std::vector<IntrusivePtr<KeyedTuple>> left = Keyed({{0, 1, 1.0}});
  std::vector<IntrusivePtr<KeyedTuple>> right;
  // Many right tuples advance the watermark; the last one at ts=WS still
  // matches the left tuple at ts=0.
  for (int64_t ts = 1; ts <= 10; ++ts) {
    right.push_back(MakeTuple<KeyedTuple>(ts, 2, 0.0));  // non-matching key
  }
  right.push_back(MakeTuple<KeyedTuple>(10, 1, 2.0));  // |10-0| = WS
  auto out = RunJoin(std::move(left), std::move(right), 10);
  ASSERT_EQ(out.size(), 1u);
}

TEST(JoinTest, ZeroWindowJoinsEqualTimestampsOnly) {
  auto out = RunJoin(Keyed({{5, 1, 1.0}, {6, 1, 1.0}}),
                     Keyed({{5, 1, 2.0}, {7, 1, 2.0}}), 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<0>(out[0]), 5);
}

}  // namespace
}  // namespace genealog
