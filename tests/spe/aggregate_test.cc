#include "spe/aggregate.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/int_math.h"
#include "common/rng.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::KeyedTuple;
using testing::V;
using testing::ValueTuple;

// Sums `value` over the window into a ValueTuple.
AggregateCombiner<ValueTuple, ValueTuple, int64_t> SumCombiner() {
  return [](const WindowView<ValueTuple, int64_t>& w) {
    int64_t sum = 0;
    for (const auto& t : w.tuples) sum += t->value;
    return MakeTuple<ValueTuple>(0, sum);
  };
}

struct AggOutput {
  int64_t ts;
  int64_t value;
  bool operator==(const AggOutput&) const = default;
};

std::vector<AggOutput> RunAggregate(
    std::vector<IntrusivePtr<ValueTuple>> input, AggregateOptions options,
    std::function<int64_t(const ValueTuple&)> key_fn =
        [](const ValueTuple&) { return 0; },
    ProvenanceMode mode = ProvenanceMode::kNone,
    std::vector<TuplePtr>* raw_out = nullptr) {
  Topology topo(0, mode);
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(input));
  auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
      "agg", options, std::move(key_fn), SumCombiner());
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);

  std::vector<AggOutput> out;
  for (const auto& t : collector.tuples()) {
    out.push_back({t->ts, static_cast<const ValueTuple&>(*t).value});
    if (raw_out != nullptr) raw_out->push_back(t);
  }
  return out;
}

std::vector<IntrusivePtr<ValueTuple>> Values(
    std::initializer_list<std::pair<int64_t, int64_t>> items) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (auto [ts, v] : items) out.push_back(V(ts, v));
  return out;
}

TEST(AggregateTest, TumblingWindowSums) {
  // Windows [0,10), [10,20), [20,30).
  auto out = RunAggregate(Values({{1, 1}, {5, 2}, {11, 3}, {19, 4}, {25, 5}}),
                          {10, 10});
  EXPECT_EQ(out, (std::vector<AggOutput>{{0, 3}, {10, 7}, {20, 5}}));
}

TEST(AggregateTest, EmptyWindowsProduceNothing) {
  // Gap between ts 5 and ts 45: windows [10,20), [20,30), [30,40) are empty.
  auto out = RunAggregate(Values({{5, 1}, {45, 2}}), {10, 10});
  EXPECT_EQ(out, (std::vector<AggOutput>{{0, 1}, {40, 2}}));
}

TEST(AggregateTest, SlidingWindowOverlap) {
  // WS=120, WA=30 (Q1's parameters): a tuple at ts=65 belongs to windows
  // starting at -30, 0, 30, 60.
  auto out = RunAggregate(Values({{65, 1}}), {120, 30});
  EXPECT_EQ(out, (std::vector<AggOutput>{{-30, 1}, {0, 1}, {30, 1}, {60, 1}}));
}

TEST(AggregateTest, SlidingWindowPartialSums) {
  // WS=20, WA=10; tuples at 5,15,25 with values 1,2,4.
  // [-10,10): 1; [0,20): 3; [10,30): 6; [20,40): 4.
  auto out = RunAggregate(Values({{5, 1}, {15, 2}, {25, 4}}), {20, 10});
  EXPECT_EQ(out,
            (std::vector<AggOutput>{{-10, 1}, {0, 3}, {10, 6}, {20, 4}}));
}

TEST(AggregateTest, EmitAtWindowEnd) {
  auto out = RunAggregate(Values({{1, 1}, {5, 2}}),
                          {10, 10, WindowBounds::kLeftClosedRightOpen,
                           EmitAt::kWindowEnd});
  EXPECT_EQ(out, (std::vector<AggOutput>{{10, 3}}));
}

TEST(AggregateTest, LeftOpenRightClosedBounds) {
  // (0,10] contains ts 1..10; (10,20] contains 11..20. A tuple at exactly 10
  // belongs to the first window, a tuple at exactly 0 to the (-10,0] window.
  auto out = RunAggregate(Values({{0, 1}, {10, 2}, {11, 4}, {20, 8}}),
                          {10, 10, WindowBounds::kLeftOpenRightClosed,
                           EmitAt::kWindowEnd});
  EXPECT_EQ(out, (std::vector<AggOutput>{{0, 1}, {10, 2}, {20, 12}}));
}

TEST(AggregateTest, GroupByKeysFireInKeyOrder) {
  Topology topo;
  std::vector<IntrusivePtr<KeyedTuple>> input;
  input.push_back(MakeTuple<KeyedTuple>(1, 2, 10.0));  // key 2
  input.push_back(MakeTuple<KeyedTuple>(2, 1, 1.0));   // key 1
  input.push_back(MakeTuple<KeyedTuple>(3, 1, 2.0));
  input.push_back(MakeTuple<KeyedTuple>(12, 2, 5.0));  // next window
  auto* source =
      topo.Add<VectorSourceNode<KeyedTuple>>("src", std::move(input));
  auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const KeyedTuple& t) { return t.key; },
      [](const WindowView<KeyedTuple, int64_t>& w) {
        double sum = 0;
        for (const auto& t : w.tuples) sum += t->value;
        return MakeTuple<KeyedTuple>(0, w.key, sum);
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);

  ASSERT_EQ(collector.tuples().size(), 3u);
  // Window [0,10): key 1 before key 2; then window [10,20): key 2.
  EXPECT_EQ(collector.at<KeyedTuple>(0).key, 1);
  EXPECT_DOUBLE_EQ(collector.at<KeyedTuple>(0).value, 3.0);
  EXPECT_EQ(collector.at<KeyedTuple>(1).key, 2);
  EXPECT_DOUBLE_EQ(collector.at<KeyedTuple>(1).value, 10.0);
  EXPECT_EQ(collector.at<KeyedTuple>(2).key, 2);
  EXPECT_DOUBLE_EQ(collector.at<KeyedTuple>(2).value, 5.0);
}

TEST(AggregateTest, OutputIsTimestampSorted) {
  SplitMix64 rng(99);
  std::vector<IntrusivePtr<ValueTuple>> input;
  int64_t ts = 0;
  for (int i = 0; i < 500; ++i) {
    ts += rng.UniformInt(0, 7);
    input.push_back(V(ts, rng.UniformInt(0, 100)));
  }
  auto out = RunAggregate(std::move(input), {40, 10});
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].ts, out[i].ts);
  }
}

TEST(AggregateTest, GenealogMetaSpansWindow) {
  std::vector<TuplePtr> raw;
  RunAggregate(Values({{1, 1}, {2, 2}, {3, 3}, {15, 4}}), {10, 10},
               [](const ValueTuple&) { return 0; }, ProvenanceMode::kGenealog,
               &raw);
  ASSERT_EQ(raw.size(), 2u);
  const TuplePtr& first = raw[0];
  EXPECT_EQ(first->kind, TupleKind::kAggregate);
  ASSERT_NE(first->u1(), nullptr);
  ASSERT_NE(first->u2(), nullptr);
  EXPECT_EQ(static_cast<ValueTuple*>(first->u2())->value, 1);  // earliest
  EXPECT_EQ(static_cast<ValueTuple*>(first->u1())->value, 3);  // latest
  // N-chain: u2 -> .. -> u1.
  EXPECT_EQ(first->u2()->next()->next(), first->u1());
}

TEST(AggregateTest, BaselineAnnotationUnionsWindow) {
  std::vector<TuplePtr> raw;
  RunAggregate(Values({{1, 1}, {2, 2}, {3, 3}}), {10, 10},
               [](const ValueTuple&) { return 0; }, ProvenanceMode::kBaseline,
               &raw);
  ASSERT_EQ(raw.size(), 1u);
  ASSERT_NE(raw[0]->baseline_annotation(), nullptr);
  EXPECT_EQ(raw[0]->baseline_annotation()->size(), 3u);  // three source ids
}

TEST(AggregateTest, StimulusIsMaxOfWindow) {
  std::vector<TuplePtr> raw;
  RunAggregate(Values({{1, 1}, {2, 2}}), {10, 10},
               [](const ValueTuple&) { return 0; }, ProvenanceMode::kNone,
               &raw);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_GT(raw[0]->stimulus, 0);
}

TEST(AggregateTest, FlushFiresPendingWindows) {
  // Without a later tuple to advance the watermark, only flush can close the
  // last window.
  auto out = RunAggregate(Values({{5, 42}}), {10, 10});
  EXPECT_EQ(out, (std::vector<AggOutput>{{0, 42}}));
}

TEST(AggregateTest, CombinerReturningNullSuppressesOutput) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src", Values({{1, 1}, {11, 2}}));
  auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const ValueTuple&) { return int64_t{0}; },
      [](const WindowView<ValueTuple, int64_t>& w) -> IntrusivePtr<ValueTuple> {
        if (w.tuples.front()->value == 1) return nullptr;  // suppress first
        return MakeTuple<ValueTuple>(0, w.tuples.front()->value);
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);
  ASSERT_EQ(collector.tuples().size(), 1u);
  EXPECT_EQ(collector.at<ValueTuple>(0).value, 2);
}

// --- property sweep: engine output equals a brute-force window evaluation ---

struct SweepParam {
  int64_t ws;
  int64_t wa;
  WindowBounds bounds;
  EmitAt emit_at;
};

class AggregateSweepTest : public ::testing::TestWithParam<SweepParam> {};

std::vector<AggOutput> BruteForce(
    const std::vector<IntrusivePtr<ValueTuple>>& input,
    const SweepParam& p) {
  if (input.empty()) return {};
  const bool lcro = p.bounds == WindowBounds::kLeftClosedRightOpen;
  int64_t min_ts = input.front()->ts;
  int64_t max_ts = input.back()->ts;
  std::vector<AggOutput> out;
  for (int64_t start = FloorAlign(min_ts - p.ws - p.wa, p.wa);
       start <= max_ts + p.wa; start += p.wa) {
    int64_t sum = 0;
    bool any = false;
    for (const auto& t : input) {
      const bool in_window = lcro
                                 ? t->ts >= start && t->ts < start + p.ws
                                 : t->ts > start && t->ts <= start + p.ws;
      if (in_window) {
        sum += t->value;
        any = true;
      }
    }
    if (any) {
      out.push_back({p.emit_at == EmitAt::kWindowStart ? start : start + p.ws,
                     sum});
    }
  }
  return out;
}

TEST_P(AggregateSweepTest, MatchesBruteForce) {
  const SweepParam p = GetParam();
  SplitMix64 rng(p.ws * 1000003 + p.wa);
  std::vector<IntrusivePtr<ValueTuple>> input;
  int64_t ts = -17;  // exercise negative timestamps too
  for (int i = 0; i < 300; ++i) {
    ts += rng.UniformInt(0, 5);
    input.push_back(V(ts, rng.UniformInt(1, 9)));
  }
  auto expected = BruteForce(input, p);
  auto actual = RunAggregate(std::move(input),
                             {p.ws, p.wa, p.bounds, p.emit_at});
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    WindowShapes, AggregateSweepTest,
    ::testing::Values(
        SweepParam{10, 10, WindowBounds::kLeftClosedRightOpen, EmitAt::kWindowStart},
        SweepParam{10, 10, WindowBounds::kLeftOpenRightClosed, EmitAt::kWindowEnd},
        SweepParam{20, 5, WindowBounds::kLeftClosedRightOpen, EmitAt::kWindowStart},
        SweepParam{20, 5, WindowBounds::kLeftOpenRightClosed, EmitAt::kWindowStart},
        SweepParam{7, 3, WindowBounds::kLeftClosedRightOpen, EmitAt::kWindowEnd},
        SweepParam{1, 1, WindowBounds::kLeftClosedRightOpen, EmitAt::kWindowStart},
        SweepParam{120, 30, WindowBounds::kLeftClosedRightOpen, EmitAt::kWindowStart},
        SweepParam{24, 24, WindowBounds::kLeftClosedRightOpen, EmitAt::kWindowEnd},
        SweepParam{5, 8, WindowBounds::kLeftClosedRightOpen, EmitAt::kWindowStart},
        SweepParam{5, 8, WindowBounds::kLeftOpenRightClosed, EmitAt::kWindowEnd}));

}  // namespace
}  // namespace genealog
