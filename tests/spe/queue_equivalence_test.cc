// BatchQueue and SpscRing implement one contract behind StreamEdge; this
// property suite keeps them from silently diverging. Randomized push/pop/
// abort schedules are replayed, operation by operation, through a mutex edge
// and a ring edge, and every observable — Size, Weight, each popped batch's
// port/tuples/watermark/flush, push results after abort — must be identical.
// The schedules run on one thread (legal for SPSC and deterministic for the
// mutex queue), so the coalescing decisions of both implementations are
// forced to agree step for step; the concurrent behavior of the ring is
// covered by spsc_ring_test.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "spe/node.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;

// A StreamEdge forced to the requested implementation.
std::unique_ptr<StreamEdge> MakeEdge(StreamEdge::Kind kind, size_t capacity) {
  auto edge = std::make_unique<StreamEdge>(capacity);
  if (kind == StreamEdge::Kind::kSpsc) {
    edge->set_allow_spsc(true);
    edge->RegisterProducer(edge.get());  // one producer: upgrades to the ring
    EXPECT_EQ(edge->kind(), StreamEdge::Kind::kSpsc);
  } else {
    EXPECT_EQ(edge->kind(), StreamEdge::Kind::kMutex);
  }
  return edge;
}

std::string Describe(const StreamBatch& batch) {
  std::string s = "port=" + std::to_string(batch.port) + " tuples=[";
  for (const TuplePtr& t : batch.tuples) {
    s += std::to_string(t->ts) + "/" +
         static_cast<const testing::ValueTuple&>(*t).DebugPayload() + ",";
  }
  s += "]";
  if (batch.has_watermark()) s += " wm=" + std::to_string(batch.watermark);
  if (batch.flush) s += " flush";
  return s;
}

void ExpectSameBatch(const std::optional<StreamBatch>& a,
                     const std::optional<StreamBatch>& b, int step) {
  ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
  if (!a.has_value()) return;
  EXPECT_EQ(Describe(*a), Describe(*b)) << "step " << step;
}

// One randomized schedule: pushes (data batches of 0-4 tuples with optional
// trailing watermark, on two ports), pops, and possibly an abort, mirrored
// into both edges. The tuple budget is tracked so the single-threaded
// schedule never pushes a batch both implementations would block on.
void RunSchedule(uint64_t seed, size_t capacity, size_t max_coalesce,
                 bool with_abort) {
  SCOPED_TRACE("seed " + std::to_string(seed) + " cap " +
               std::to_string(capacity) + " coalesce " +
               std::to_string(max_coalesce) +
               (with_abort ? " abort" : ""));
  auto mutex_edge = MakeEdge(StreamEdge::Kind::kMutex, capacity);
  auto ring_edge = MakeEdge(StreamEdge::Kind::kSpsc, capacity);

  SplitMix64 rng(seed);
  int64_t seq = 0;
  int64_t ts = 0;
  bool aborted = false;
  // Shadow of the queue tail, used only to predict whether a push into a
  // full queue would block (control batches merge into a same-port unsealed
  // tail without weight; everything else would wait for the consumer, which
  // is this same thread). Valid while Size() > 0.
  std::optional<uint16_t> tail_port;
  bool tail_sealed = false;
  const int steps = 400;
  const int abort_step =
      with_abort ? static_cast<int>(rng.UniformInt(50, 350)) : -1;

  for (int step = 0; step < steps; ++step) {
    if (step == abort_step) {
      mutex_edge->Abort();
      ring_edge->Abort();
      aborted = true;
    }
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    if (op < 6) {
      // Push: build the same logical batch twice (fresh tuples each, since a
      // batch is consumed by the push).
      const uint16_t port = static_cast<uint16_t>(rng.UniformInt(0, 1));
      int n_tuples = static_cast<int>(rng.UniformInt(0, 4));
      bool flush = rng.UniformInt(0, 19) == 0;
      const bool wm = (n_tuples == 0 && !flush) || rng.Bernoulli(0.3);
      ts += rng.UniformInt(0, 2);
      const size_t size_before = mutex_edge->Size();
      const size_t w = n_tuples > 0 ? static_cast<size_t>(n_tuples) : 1;
      if (!aborted && size_before != 0 &&
          mutex_edge->Weight() + w > capacity) {
        // Full queue: only a control merge into a same-port unsealed tail is
        // guaranteed not to block this (single) thread.
        const bool control_merges = n_tuples == 0 && tail_port == port &&
                                    !tail_sealed;
        if (!control_merges) continue;
      }
      auto build = [&] {
        StreamBatch batch;
        batch.port = port;
        int64_t t = ts;
        for (int k = 0; k < n_tuples; ++k) {
          batch.tuples.push_back(V(t, seq + k));
          t += 1;
        }
        if (wm) batch.watermark = ts + n_tuples;
        batch.flush = flush;
        return batch;
      };
      ts += n_tuples;
      seq += n_tuples;
      const bool r1 = mutex_edge->Push(build(), max_coalesce);
      const bool r2 = ring_edge->Push(build(), max_coalesce);
      EXPECT_EQ(r1, r2) << "push result diverged at step " << step;
      EXPECT_EQ(r1, !aborted) << "push result vs abort at step " << step;
      if (!aborted) {
        if (mutex_edge->Size() > size_before) {
          tail_port = port;
          tail_sealed = flush;
        } else {
          tail_sealed = tail_sealed || flush;
        }
      }
    } else if (op < 9) {
      ExpectSameBatch(mutex_edge->TryPop(), ring_edge->TryPop(), step);
      if (mutex_edge->Size() == 0) tail_port.reset();
    }
    // op == 9: no-op tick (lets coalescing windows build up).
    EXPECT_EQ(mutex_edge->Size(), ring_edge->Size()) << "step " << step;
    EXPECT_EQ(mutex_edge->Weight(), ring_edge->Weight()) << "step " << step;
  }

  // Full drain must agree too (and terminate).
  for (;;) {
    auto a = mutex_edge->TryPop();
    auto b = ring_edge->TryPop();
    ExpectSameBatch(a, b, steps);
    if (!a.has_value()) break;
  }
  EXPECT_EQ(mutex_edge->Weight(), 0u);
  EXPECT_EQ(ring_edge->Weight(), 0u);
}

class QueueEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueueEquivalenceTest, IdenticalObservableSequences) {
  const uint64_t seed = GetParam();
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const size_t capacity = static_cast<size_t>(rng.UniformInt(4, 64));
  const size_t max_coalesce = static_cast<size_t>(rng.UniformInt(1, 8));
  RunSchedule(seed, capacity, max_coalesce, /*with_abort=*/false);
}

TEST_P(QueueEquivalenceTest, IdenticalAbortBehavior) {
  const uint64_t seed = GetParam();
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + 2);
  const size_t capacity = static_cast<size_t>(rng.UniformInt(4, 64));
  const size_t max_coalesce = static_cast<size_t>(rng.UniformInt(1, 8));
  RunSchedule(seed, capacity, max_coalesce, /*with_abort=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 41));

// The StreamEdge selection rules themselves: single producer and policy on
// -> ring; fan-in or policy off -> mutex; a second producer downgrades an
// already-upgraded edge.
TEST(StreamEdgeSelectionTest, SingleProducerUpgradesToRing) {
  StreamEdge edge(16);
  edge.set_allow_spsc(true);
  int producer_a = 0;
  edge.RegisterProducer(&producer_a);
  EXPECT_EQ(edge.kind(), StreamEdge::Kind::kSpsc);
  // The same producer wiring a second port keeps the ring.
  edge.RegisterProducer(&producer_a);
  EXPECT_EQ(edge.kind(), StreamEdge::Kind::kSpsc);
}

TEST(StreamEdgeSelectionTest, FanInDowngradesToMutex) {
  StreamEdge edge(16);
  edge.set_allow_spsc(true);
  int producer_a = 0;
  int producer_b = 0;
  edge.RegisterProducer(&producer_a);
  EXPECT_EQ(edge.kind(), StreamEdge::Kind::kSpsc);
  edge.RegisterProducer(&producer_b);
  EXPECT_EQ(edge.kind(), StreamEdge::Kind::kMutex);
}

TEST(StreamEdgeSelectionTest, PolicyOffPinsMutex) {
  StreamEdge edge(16);
  edge.set_allow_spsc(false);
  int producer_a = 0;
  edge.RegisterProducer(&producer_a);
  EXPECT_EQ(edge.kind(), StreamEdge::Kind::kMutex);
}

TEST(StreamEdgeSelectionTest, UndeclaredProducersStayMutex) {
  // Directly-constructed queues (tests, harnesses) never register producers
  // and must keep the multi-producer-safe default.
  StreamEdge edge(16);
  EXPECT_EQ(edge.kind(), StreamEdge::Kind::kMutex);
}

}  // namespace
}  // namespace genealog
