#include "spe/topology.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>

#include "common/memory_accounting.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::V;
using testing::ValueTuple;

std::vector<IntrusivePtr<ValueTuple>> Sequence(int n) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (int i = 0; i < n; ++i) out.push_back(V(i, i));
  return out;
}

TEST(TopologyTest, RunsLinearChainToCompletion) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Sequence(100));
  auto* filter = topo.Add<FilterNode<ValueTuple>>(
      "f", [](const ValueTuple& t) { return t.value % 2 == 0; });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, filter);
  topo.Connect(filter, sink);
  RunToCompletion(topo);
  EXPECT_EQ(collector.tuples().size(), 50u);
  EXPECT_EQ(sink->count(), 50u);
  EXPECT_EQ(filter->tuples_processed(), 100u);
}

TEST(TopologyTest, NodesInheritInstanceAndMode) {
  Topology topo(/*instance_id=*/5, ProvenanceMode::kGenealog);
  auto* node = topo.Add<MultiplexNode>("mux");
  EXPECT_EQ(node->instance_id(), 5);
  EXPECT_EQ(node->mode(), ProvenanceMode::kGenealog);
}

TEST(TopologyTest, NodeUidsAreUnique) {
  Topology topo;
  auto* a = topo.Add<MultiplexNode>("a");
  auto* b = topo.Add<MultiplexNode>("b");
  EXPECT_NE(a->uid(), b->uid());
}

TEST(TopologyTest, ExceptionInNodePropagatesFromJoin) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Sequence(10));
  auto* map = topo.Add<MapNode<ValueTuple, ValueTuple>>(
      "bomb", [](const ValueTuple& in, MapCollector<ValueTuple>&) {
        if (in.value == 5) throw std::runtime_error("boom");
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, map);
  topo.Connect(map, sink);
  Runner runner({&topo});
  runner.Start();
  EXPECT_THROW(runner.Join(), std::runtime_error);
}

TEST(TopologyTest, ExceptionUnblocksUpstreamProducers) {
  // A failing sink must not leave the (fast) source blocked forever on a
  // full queue: Runner::Abort tears all queues down.
  Topology topo;
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", Sequence(100000));
  auto* map = topo.Add<MapNode<ValueTuple, ValueTuple>>(
      "bomb", [](const ValueTuple& in, MapCollector<ValueTuple>& out) {
        if (in.value == 10) throw std::runtime_error("boom");
        out.Emit(MakeTuple<ValueTuple>(0, in.value));
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, map);
  topo.Connect(map, sink);
  Runner runner({&topo});
  runner.Start();
  EXPECT_THROW(runner.Join(), std::runtime_error);
}

TEST(TopologyTest, RunnerDestructorAbortsUnjoinedRun) {
  Topology topo;
  std::atomic<bool> stop{false};
  SourceOptions options;
  options.stop = &stop;
  options.replays = 1000000;
  options.replay_ts_shift = 100;
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", Sequence(10), options);
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, sink);
  {
    Runner runner({&topo});
    runner.Start();
    // Destructor must abort and join without deadlock.
  }
  SUCCEED();
}

TEST(TopologyTest, MultiTopologyRunnerJoinsAll) {
  Topology t1(1);
  Topology t2(2);
  auto* s1 = t1.Add<VectorSourceNode<ValueTuple>>("s1", Sequence(10));
  auto* s2 = t2.Add<VectorSourceNode<ValueTuple>>("s2", Sequence(20));
  Collector c1;
  Collector c2;
  auto* k1 = c1.AttachSink(t1);
  auto* k2 = c2.AttachSink(t2);
  t1.Connect(s1, k1);
  t2.Connect(s2, k2);
  Runner runner({&t1, &t2});
  runner.Start();
  runner.Join();
  EXPECT_EQ(c1.tuples().size(), 10u);
  EXPECT_EQ(c2.tuples().size(), 20u);
}

TEST(TopologyTest, TuplesAttributedToInstanceMemory) {
  mem::ResetAll();
  Topology topo(/*instance_id=*/6);
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Sequence(50));
  std::optional<Collector> collector;
  collector.emplace();
  auto* sink = collector->AttachSink(topo);
  topo.Connect(source, sink);
  RunToCompletion(topo);
  // The collector still holds the 50 emitted clones, attributed to instance 6
  // (the data vector itself was built on the test thread = instance 0).
  EXPECT_EQ(mem::LiveBytes(6),
            static_cast<int64_t>(50 * sizeof(ValueTuple)));
  collector.reset();  // releasing the sink tuples releases instance memory
  EXPECT_EQ(mem::LiveBytes(6), 0);
}

TEST(SinkTest, RecordsLatencyFromStimulus) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Sequence(100));
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, sink);
  RunToCompletion(topo);
  EXPECT_EQ(sink->latency_samples(), 100u);
  EXPECT_GE(sink->mean_latency_ms(), 0.0);
  EXPECT_LT(sink->mean_latency_ms(), 1000.0);
}

TEST(SinkTest, WarmupCutoffDiscardsEarlySamples) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Sequence(10));
  auto* sink = topo.Add<SinkNode>("sink");
  sink->set_record_after_ns(NowNanos() + 3'600'000'000'000LL);  // +1 h
  topo.Connect(source, sink);
  RunToCompletion(topo);
  EXPECT_EQ(sink->count(), 10u);
  EXPECT_EQ(sink->latency_samples(), 0u);
}

}  // namespace
}  // namespace genealog
