// Worker-pool scheduler (spe/scheduler.h) behavioral tests: readiness and
// wakeup across the pinned-node boundary, injector round-robin fairness,
// failure propagation while tasks are being stolen, and byte-identical
// output against thread-per-node across worker counts (including the fully
// serialized workers=1 case, which exposes any reliance on a second thread
// making progress).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "spe/aggregate.h"
#include "spe/join.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::KeyedTuple;
using testing::V;
using testing::ValueTuple;

std::vector<IntrusivePtr<ValueTuple>> Sequence(int n) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (int i = 0; i < n; ++i) out.push_back(V(i, i));
  return out;
}

std::vector<IntrusivePtr<KeyedTuple>> KeyedSequence(int n) {
  std::vector<IntrusivePtr<KeyedTuple>> data;
  for (int i = 0; i < n; ++i) {
    data.push_back(MakeTuple<KeyedTuple>(i / 2, i % 5,
                                         static_cast<double>(i % 9 + 1)));
  }
  return data;
}

// A pipeline that exercises every schedulable node class: a re-armable
// source, SingleInputNode stages (filter/map/aggregate), and a
// multiplex/join diamond whose join is a MergingNode (watermark-ordered
// multi-port merge). Returns the exact sink sequence.
std::vector<std::string> RunDiamondPipeline(SchedulerMode scheduler,
                                            size_t workers, bool spsc_edges) {
  Topology topo;
  topo.set_scheduler(scheduler);
  topo.set_workers(workers);
  topo.set_spsc_edges(spsc_edges);
  auto* source =
      topo.Add<VectorSourceNode<KeyedTuple>>("src", KeyedSequence(400));
  auto* filter = topo.Add<FilterNode<KeyedTuple>>(
      "f", [](const KeyedTuple& t) { return (t.key + t.ts) % 7 != 0; });
  auto* mux = topo.Add<MultiplexNode>("mux");
  auto* left = topo.Add<FilterNode<KeyedTuple>>(
      "l", [](const KeyedTuple& t) { return t.ts % 2 == 0; });
  auto* right = topo.Add<FilterNode<KeyedTuple>>(
      "r", [](const KeyedTuple& t) { return t.ts % 3 == 0; });
  auto* join = topo.Add<JoinNode<KeyedTuple, KeyedTuple, KeyedTuple>>(
      "join", JoinOptions{4},
      [](const KeyedTuple& l, const KeyedTuple& r) { return l.key == r.key; },
      [](const KeyedTuple& l, const KeyedTuple& r) {
        return MakeTuple<KeyedTuple>(0, l.key, l.value + 1000 * r.value);
      });
  auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
      "agg", AggregateOptions{8, 4},
      [](const KeyedTuple& t) { return t.key; },
      [](const WindowView<KeyedTuple, int64_t>& w) {
        double sum = 0;
        for (const auto& t : w.tuples) sum += t->value;
        return MakeTuple<KeyedTuple>(0, w.key, sum);
      });
  std::vector<std::string> out;
  auto* sink = topo.Add<SinkNode>("sink", [&out](const TuplePtr& t) {
    out.push_back(std::to_string(t->ts) + "/" + t->DebugPayload());
  });
  topo.Connect(source, filter);
  topo.Connect(filter, mux);
  topo.Connect(mux, left);
  topo.Connect(mux, right);
  topo.Connect(left, join);
  topo.Connect(right, join);
  topo.Connect(join, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);
  return out;
}

// The data plane must be invisible to the scheduler choice: pool output is
// byte-identical to thread-per-node at every worker count (1 = fully
// serialized round-robin, >tasks = more workers than work) and under both
// edge implementations.
TEST(SchedulerTest, PoolOutputMatchesThreadPerNodeAcrossWorkerCounts) {
  const auto reference =
      RunDiamondPipeline(SchedulerMode::kThreadPerNode, 0, true);
  ASSERT_FALSE(reference.empty());
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    for (bool spsc : {true, false}) {
      EXPECT_EQ(RunDiamondPipeline(SchedulerMode::kPool, workers, spsc),
                reference)
          << "workers " << workers << " spsc " << spsc;
    }
  }
}

// Readiness must cross the pinned-node boundary: a rate-limited source keeps
// a dedicated thread even in pool mode, and the pool workers park between
// its (slow, externally clocked) pushes. Every push must wake them — a lost
// wakeup hangs the run, a missed flush drops the tail.
TEST(SchedulerTest, PinnedSourceWakesParkedPoolWorkers) {
  Topology topo;
  topo.set_scheduler(SchedulerMode::kPool);
  topo.set_workers(2);
  topo.set_default_batch_size(4);  // many small pushes -> many park/wake cycles
  SourceOptions options;
  options.max_rate_tps = 20000;  // pinned: NeedsDedicatedThread() == true
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", Sequence(64), options);
  auto* filter = topo.Add<FilterNode<ValueTuple>>(
      "f", [](const ValueTuple&) { return true; });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, filter);
  topo.Connect(filter, sink);
  RunToCompletion(topo);
  EXPECT_EQ(collector.tuples().size(), 64u);
  EXPECT_EQ(sink->count(), 64u);
}

// Per-query round-robin fairness: with ONE worker and a hot tenant pushing
// six orders of magnitude more data, a tiny query sharing the pool must
// complete long before the hot one drains — the injector serves buckets
// round-robin, so the small query's tasks get a quantum every cycle.
TEST(SchedulerTest, InjectorRoundRobinKeepsSmallQueryResponsive) {
  Topology big(1);
  big.set_scheduler(SchedulerMode::kPool);
  big.set_workers(1);
  SourceOptions big_options;
  big_options.replays = 1000;
  big_options.replay_ts_shift = 200;
  auto* big_source =
      big.Add<VectorSourceNode<ValueTuple>>("big.src", Sequence(200),
                                            big_options);
  Collector big_collector;
  auto* big_sink = big_collector.AttachSink(big, "big.sink");
  big.Connect(big_source, big_sink);

  Topology small(2);
  small.set_scheduler(SchedulerMode::kPool);
  small.set_workers(1);
  auto* small_source =
      small.Add<VectorSourceNode<ValueTuple>>("small.src", Sequence(50));
  const uint64_t big_total = 200u * 1000u;
  std::atomic<uint64_t> big_progress_at_small_done{big_total};
  std::atomic<size_t> small_seen{0};
  auto* small_sink = small.Add<SinkNode>(
      "small.sink", [&](const TuplePtr&) {
        if (small_seen.fetch_add(1) + 1 == 50) {
          big_progress_at_small_done.store(big_source->tuples_processed());
        }
      });
  small.Connect(small_source, small_sink);

  Runner runner({&big, &small});
  runner.Start();
  runner.Join();
  EXPECT_EQ(runner.scheduler(), SchedulerMode::kPool);
  EXPECT_EQ(small_seen.load(), 50u);
  EXPECT_EQ(big_collector.tuples().size(), big_total);
  // The hot query must still have been mid-stream when the small one
  // finished; a FIFO (bucket-less) injector would have drained it first.
  EXPECT_LT(big_progress_at_small_done.load(), big_total);
}

// First failure propagates while the rest of a fleet is live: four queries
// on four workers (tasks migrate between deques via steals), one throws
// mid-stream. Join must rethrow, and the surviving queries' tasks must all
// retire through the abort protocol — a hang here is the bug.
TEST(SchedulerTest, ExceptionInPoolTaskAbortsFleet) {
  std::vector<std::unique_ptr<Topology>> fleet;
  std::vector<Topology*> ptrs;
  std::vector<std::unique_ptr<Collector>> collectors;
  for (int q = 0; q < 4; ++q) {
    auto topo = std::make_unique<Topology>(q + 1);
    topo->set_scheduler(SchedulerMode::kPool);
    topo->set_workers(4);
    auto* source = topo->Add<VectorSourceNode<ValueTuple>>(
        "src", Sequence(100000));
    auto* map = topo->Add<MapNode<ValueTuple, ValueTuple>>(
        "map", [q](const ValueTuple& in, MapCollector<ValueTuple>& out) {
          if (q == 2 && in.value == 10) throw std::runtime_error("boom");
          out.Emit(MakeTuple<ValueTuple>(0, in.value));
        });
    collectors.push_back(std::make_unique<Collector>());
    auto* sink = collectors.back()->AttachSink(*topo);
    topo->Connect(source, map);
    topo->Connect(map, sink);
    ptrs.push_back(topo.get());
    fleet.push_back(std::move(topo));
  }
  Runner runner(std::move(ptrs));
  runner.Start();
  EXPECT_THROW(runner.Join(), std::runtime_error);
}

// Pool variant of the upstream-unblock invariant: a failing consumer must
// not leave a producer stranded with spilled output. The abort drains the
// spill deques and retires the producer task.
TEST(SchedulerTest, ExceptionUnblocksSpilledProducerUnderPool) {
  Topology topo;
  topo.set_scheduler(SchedulerMode::kPool);
  topo.set_workers(1);
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", Sequence(100000));
  auto* map = topo.Add<MapNode<ValueTuple, ValueTuple>>(
      "bomb", [](const ValueTuple& in, MapCollector<ValueTuple>& out) {
        if (in.value == 10) throw std::runtime_error("boom");
        out.Emit(MakeTuple<ValueTuple>(0, in.value));
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, map);
  topo.Connect(map, sink);
  Runner runner({&topo});
  runner.Start();
  EXPECT_THROW(runner.Join(), std::runtime_error);
}

// Destroying a Runner mid-run in pool mode must abort and join cleanly, same
// contract as thread-per-node.
TEST(SchedulerTest, RunnerDestructorAbortsUnjoinedPoolRun) {
  Topology topo;
  topo.set_scheduler(SchedulerMode::kPool);
  topo.set_workers(2);
  SourceOptions options;
  options.replays = 1000000;
  options.replay_ts_shift = 100;
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", Sequence(10), options);
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, sink);
  {
    Runner runner({&topo});
    runner.Start();
    // Destructor must abort and join without deadlock.
  }
  SUCCEED();
}

// Mode resolution: the pool engages only when every topology opted in, and a
// RunnerOptions override beats the topologies either way.
TEST(SchedulerTest, RunnerResolvesSchedulerFromTopologiesAndOverride) {
  auto make = [](int id, SchedulerMode mode, Collector& c) {
    auto topo = std::make_unique<Topology>(id);
    topo->set_scheduler(mode);
    auto* source = topo->Add<VectorSourceNode<ValueTuple>>("src", Sequence(5));
    auto* sink = c.AttachSink(*topo);
    topo->Connect(source, sink);
    return topo;
  };

  {
    Collector c1, c2;
    auto t1 = make(1, SchedulerMode::kPool, c1);
    auto t2 = make(2, SchedulerMode::kPool, c2);
    Runner runner({t1.get(), t2.get()});
    runner.Start();
    runner.Join();
    EXPECT_EQ(runner.scheduler(), SchedulerMode::kPool);
    EXPECT_EQ(c1.tuples().size(), 5u);
    EXPECT_EQ(c2.tuples().size(), 5u);
  }
  {
    // One hold-out keeps the whole Runner on thread-per-node.
    Collector c1, c2;
    auto t1 = make(1, SchedulerMode::kPool, c1);
    auto t2 = make(2, SchedulerMode::kThreadPerNode, c2);
    Runner runner({t1.get(), t2.get()});
    runner.Start();
    runner.Join();
    EXPECT_EQ(runner.scheduler(), SchedulerMode::kThreadPerNode);
  }
  {
    Collector c1;
    auto t1 = make(1, SchedulerMode::kThreadPerNode, c1);
    RunnerOptions options;
    options.scheduler = SchedulerMode::kPool;
    Runner runner({t1.get()}, options);
    runner.Start();
    runner.Join();
    EXPECT_EQ(runner.scheduler(), SchedulerMode::kPool);
    EXPECT_EQ(c1.tuples().size(), 5u);
  }
}

}  // namespace
}  // namespace genealog
