#include "spe/stateless.h"

#include <gtest/gtest.h>

#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::V;
using testing::ValueTuple;

std::vector<IntrusivePtr<ValueTuple>> Values(
    std::initializer_list<std::pair<int64_t, int64_t>> items) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (auto [ts, v] : items) out.push_back(V(ts, v));
  return out;
}

TEST(MapNodeTest, OneToOneTransform) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src", Values({{1, 10}, {2, 20}, {3, 30}}));
  auto* map = topo.Add<MapNode<ValueTuple, ValueTuple>>(
      "double", [](const ValueTuple& in, MapCollector<ValueTuple>& out) {
        out.Emit(MakeTuple<ValueTuple>(0, in.value * 2));
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, map);
  topo.Connect(map, sink);
  RunToCompletion(topo);

  ASSERT_EQ(collector.tuples().size(), 3u);
  EXPECT_EQ(collector.at<ValueTuple>(0).value, 20);
  EXPECT_EQ(collector.at<ValueTuple>(2).value, 60);
}

TEST(MapNodeTest, EnforcesTimestampContract) {
  Topology topo;
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", Values({{7, 1}}));
  auto* map = topo.Add<MapNode<ValueTuple, ValueTuple>>(
      "map", [](const ValueTuple& in, MapCollector<ValueTuple>& out) {
        out.Emit(MakeTuple<ValueTuple>(9999, in.value));  // ts is overwritten
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, map);
  topo.Connect(map, sink);
  RunToCompletion(topo);
  ASSERT_EQ(collector.tuples().size(), 1u);
  EXPECT_EQ(collector.tuples()[0]->ts, 7);
}

TEST(MapNodeTest, OneToManyAndZero) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src", Values({{1, 2}, {2, 0}, {3, 3}}));
  // Emit `value` copies of each tuple.
  auto* map = topo.Add<MapNode<ValueTuple, ValueTuple>>(
      "fanout", [](const ValueTuple& in, MapCollector<ValueTuple>& out) {
        for (int64_t i = 0; i < in.value; ++i) {
          out.Emit(MakeTuple<ValueTuple>(0, in.value));
        }
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, map);
  topo.Connect(map, sink);
  RunToCompletion(topo);
  EXPECT_EQ(collector.tuples().size(), 5u);  // 2 + 0 + 3
}

TEST(MapNodeTest, GenealogModeLinksU1AndAssignsIds) {
  Topology topo(/*instance_id=*/0, ProvenanceMode::kGenealog);
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", Values({{1, 5}}));
  auto* map = topo.Add<MapNode<ValueTuple, ValueTuple>>(
      "map", [](const ValueTuple& in, MapCollector<ValueTuple>& out) {
        out.Emit(MakeTuple<ValueTuple>(0, in.value + 1));
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, map);
  topo.Connect(map, sink);
  RunToCompletion(topo);

  ASSERT_EQ(collector.tuples().size(), 1u);
  const TuplePtr& out = collector.tuples()[0];
  EXPECT_EQ(out->kind, TupleKind::kMap);
  ASSERT_NE(out->u1(), nullptr);
  EXPECT_EQ(out->u1()->kind, TupleKind::kSource);
  EXPECT_EQ(static_cast<ValueTuple*>(out->u1())->value, 5);
  EXPECT_NE(out->id, 0u);
  EXPECT_NE(out->id, out->u1()->id);
}

TEST(FilterNodeTest, ForwardsMatchingTuplesUnchanged) {
  Topology topo(0, ProvenanceMode::kGenealog);
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src", Values({{1, 1}, {2, 2}, {3, 3}, {4, 4}}));
  auto* filter = topo.Add<FilterNode<ValueTuple>>(
      "even", [](const ValueTuple& t) { return t.value % 2 == 0; });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, filter);
  topo.Connect(filter, sink);
  RunToCompletion(topo);

  ASSERT_EQ(collector.tuples().size(), 2u);
  EXPECT_EQ(collector.at<ValueTuple>(0).value, 2);
  EXPECT_EQ(collector.at<ValueTuple>(1).value, 4);
  // Filter forwards, it does not create: tuples are still SOURCE tuples with
  // no meta-attributes set (§4.1: no instrumentation for Filter).
  EXPECT_EQ(collector.tuples()[0]->kind, TupleKind::kSource);
  EXPECT_EQ(collector.tuples()[0]->u1(), nullptr);
}

TEST(FilterNodeTest, ForwardsWatermarksWhileDropping) {
  // A filter that drops everything must still let watermarks through,
  // otherwise downstream merges would stall. Verified via a Union that needs
  // the dropped branch's watermark to release the other branch's tuples.
  Topology topo;
  auto* left = topo.Add<VectorSourceNode<ValueTuple>>(
      "left", Values({{1, 1}, {5, 2}, {9, 3}}));
  auto* right = topo.Add<VectorSourceNode<ValueTuple>>(
      "right", Values({{2, 10}, {6, 20}, {10, 30}}));
  auto* drop_all = topo.Add<FilterNode<ValueTuple>>(
      "drop", [](const ValueTuple&) { return false; });
  auto* merge = topo.Add<UnionNode>("union");
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(left, merge);
  topo.Connect(right, drop_all);
  topo.Connect(drop_all, merge);
  topo.Connect(merge, sink);
  RunToCompletion(topo);
  EXPECT_EQ(collector.tuples().size(), 3u);
}

TEST(MultiplexNodeTest, CopiesToEveryOutput) {
  Topology topo;
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", Values({{1, 7}, {2, 8}}));
  auto* mux = topo.Add<MultiplexNode>("mux");
  Collector a;
  Collector b;
  auto* sink_a = a.AttachSink(topo, "a");
  auto* sink_b = b.AttachSink(topo, "b");
  topo.Connect(source, mux);
  topo.Connect(mux, sink_a);
  topo.Connect(mux, sink_b);
  RunToCompletion(topo);

  ASSERT_EQ(a.tuples().size(), 2u);
  ASSERT_EQ(b.tuples().size(), 2u);
  EXPECT_EQ(a.at<ValueTuple>(0).value, 7);
  EXPECT_EQ(b.at<ValueTuple>(0).value, 7);
  // Copies are distinct objects sharing the input's id.
  EXPECT_NE(a.tuples()[0].get(), b.tuples()[0].get());
  EXPECT_EQ(a.tuples()[0]->id, b.tuples()[0]->id);
}

TEST(MultiplexNodeTest, GenealogCopiesPointBackViaU1) {
  Topology topo(0, ProvenanceMode::kGenealog);
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", Values({{1, 7}}));
  auto* mux = topo.Add<MultiplexNode>("mux");
  Collector a;
  Collector b;
  auto* sink_a = a.AttachSink(topo, "a");
  auto* sink_b = b.AttachSink(topo, "b");
  topo.Connect(source, mux);
  topo.Connect(mux, sink_a);
  topo.Connect(mux, sink_b);
  RunToCompletion(topo);

  EXPECT_EQ(a.tuples()[0]->kind, TupleKind::kMultiplex);
  EXPECT_EQ(b.tuples()[0]->kind, TupleKind::kMultiplex);
  // Both copies point to the same input tuple.
  EXPECT_EQ(a.tuples()[0]->u1(), b.tuples()[0]->u1());
  EXPECT_EQ(a.tuples()[0]->u1()->kind, TupleKind::kSource);
}

TEST(MultiplexNodeTest, BaselineCopiesAnnotation) {
  Topology topo(0, ProvenanceMode::kBaseline);
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", Values({{1, 7}}));
  auto* mux = topo.Add<MultiplexNode>("mux");
  Collector a;
  auto* sink_a = a.AttachSink(topo, "a");
  topo.Connect(source, mux);
  topo.Connect(mux, sink_a);
  RunToCompletion(topo);

  ASSERT_NE(a.tuples()[0]->baseline_annotation(), nullptr);
  EXPECT_EQ(a.tuples()[0]->baseline_annotation()->size(), 1u);
}

TEST(UnionNodeTest, MergesSortedStreamsSorted) {
  Topology topo;
  auto* left = topo.Add<VectorSourceNode<ValueTuple>>(
      "left", Values({{1, 1}, {4, 2}, {7, 3}}));
  auto* right = topo.Add<VectorSourceNode<ValueTuple>>(
      "right", Values({{2, 10}, {3, 20}, {8, 30}}));
  auto* merge = topo.Add<UnionNode>("union");
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(left, merge);
  topo.Connect(right, merge);
  topo.Connect(merge, sink);
  RunToCompletion(topo);

  EXPECT_EQ(collector.Timestamps(), (std::vector<int64_t>{1, 2, 3, 4, 7, 8}));
}

TEST(UnionNodeTest, TieBreaksByPortIndex) {
  for (int run = 0; run < 10; ++run) {
    Topology topo;
    auto* left = topo.Add<VectorSourceNode<ValueTuple>>(
        "left", Values({{5, 1}, {10, 1}}));
    auto* right = topo.Add<VectorSourceNode<ValueTuple>>(
        "right", Values({{5, 2}, {10, 2}}));
    auto* merge = topo.Add<UnionNode>("union");
    Collector collector;
    auto* sink = collector.AttachSink(topo);
    topo.Connect(left, merge);   // port 0
    topo.Connect(right, merge);  // port 1
    topo.Connect(merge, sink);
    RunToCompletion(topo);

    ASSERT_EQ(collector.tuples().size(), 4u);
    // Equal timestamps: port 0 before port 1, on every run.
    EXPECT_EQ(collector.at<ValueTuple>(0).value, 1);
    EXPECT_EQ(collector.at<ValueTuple>(1).value, 2);
    EXPECT_EQ(collector.at<ValueTuple>(2).value, 1);
    EXPECT_EQ(collector.at<ValueTuple>(3).value, 2);
  }
}

TEST(UnionNodeTest, ThreeWayMerge) {
  Topology topo;
  auto* a = topo.Add<VectorSourceNode<ValueTuple>>("a", Values({{3, 1}}));
  auto* b = topo.Add<VectorSourceNode<ValueTuple>>("b", Values({{1, 2}}));
  auto* c = topo.Add<VectorSourceNode<ValueTuple>>("c", Values({{2, 3}}));
  auto* merge = topo.Add<UnionNode>("union");
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(a, merge);
  topo.Connect(b, merge);
  topo.Connect(c, merge);
  topo.Connect(merge, sink);
  RunToCompletion(topo);
  EXPECT_EQ(collector.Timestamps(), (std::vector<int64_t>{1, 2, 3}));
}

TEST(UnionNodeTest, EmptyInputStreamDoesNotStallOthers) {
  Topology topo;
  auto* a = topo.Add<VectorSourceNode<ValueTuple>>("a", Values({{1, 1}, {2, 2}}));
  auto* b = topo.Add<VectorSourceNode<ValueTuple>>(
      "b", std::vector<IntrusivePtr<ValueTuple>>{});
  auto* merge = topo.Add<UnionNode>("union");
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(a, merge);
  topo.Connect(b, merge);
  topo.Connect(merge, sink);
  RunToCompletion(topo);
  EXPECT_EQ(collector.tuples().size(), 2u);
}

TEST(SourceTest, AssignsUniqueIdsAndStimulus) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src", Values({{1, 1}, {2, 2}, {3, 3}}));
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, sink);
  RunToCompletion(topo);

  ASSERT_EQ(collector.tuples().size(), 3u);
  EXPECT_NE(collector.tuples()[0]->id, collector.tuples()[1]->id);
  EXPECT_GT(collector.tuples()[0]->stimulus, 0);
  EXPECT_EQ(collector.tuples()[0]->kind, TupleKind::kSource);
  EXPECT_GT(source->active_ns(), 0);
  EXPECT_EQ(source->tuples_processed(), 3u);
}

TEST(SourceTest, ReplaysWithTimestampShift) {
  Topology topo;
  SourceOptions options;
  options.replays = 3;
  options.replay_ts_shift = 100;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src", Values({{1, 1}, {2, 2}}), options);
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, sink);
  RunToCompletion(topo);

  EXPECT_EQ(collector.Timestamps(),
            (std::vector<int64_t>{1, 2, 101, 102, 201, 202}));
}

TEST(SourceTest, StopFlagEndsEmissionEarly) {
  Topology topo;
  std::atomic<bool> stop{false};
  SourceOptions options;
  options.stop = &stop;
  options.replays = 1000000;  // would run ~forever without the flag
  options.replay_ts_shift = 10;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src", Values({{1, 1}, {2, 2}}), options);
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, sink);

  Runner runner({&topo});
  runner.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  runner.Join();
  EXPECT_GT(collector.tuples().size(), 0u);
}

TEST(SourceTest, RateLimitThrottlesEmission) {
  Topology topo;
  SourceOptions options;
  options.max_rate_tps = 100;  // 10 tuples should take ~100 ms
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src",
      Values({{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1},
              {6, 1}, {7, 1}, {8, 1}, {9, 1}, {10, 1}}),
      options);
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, sink);
  RunToCompletion(topo);
  EXPECT_EQ(collector.tuples().size(), 10u);
  EXPECT_GT(source->active_ns(), 80'000'000);  // >= ~80 ms
}

}  // namespace
}  // namespace genealog
