// NextTupleId packs (node uid << 40) | sequence. The sequence must stay in
// its 40-bit field: silently overflowing into the uid bits would alias ids
// across nodes, corrupting provenance matching (MU joins on ids).
#include <gtest/gtest.h>

#include "spe/node.h"

namespace genealog {
namespace {

class IdProbe final : public Node {
 public:
  IdProbe() : Node("id_probe") {}
  void Run() override {}
  uint64_t Next() { return NextTupleId(); }
  static constexpr int kSeqBits = kTupleSeqBits;
  static constexpr uint64_t kSeqMask = kTupleSeqMask;
};

TEST(TupleIdTest, SequenceOccupiesLowBitsUidHighBits) {
  IdProbe a;
  IdProbe b;
  const uint64_t a0 = a.Next();
  const uint64_t a1 = a.Next();
  const uint64_t b0 = b.Next();
  // Same node: uid bits identical, sequence increments.
  EXPECT_EQ(a0 >> IdProbe::kSeqBits, a1 >> IdProbe::kSeqBits);
  EXPECT_EQ((a0 & IdProbe::kSeqMask) + 1, a1 & IdProbe::kSeqMask);
  // Different nodes: uid bits differ even at equal sequence numbers.
  EXPECT_EQ(b0 & IdProbe::kSeqMask, a0 & IdProbe::kSeqMask);
  EXPECT_NE(b0 >> IdProbe::kSeqBits, a0 >> IdProbe::kSeqBits);
}

TEST(TupleIdTest, FieldConstantsAreConsistent) {
  EXPECT_EQ(IdProbe::kSeqBits, 40);
  EXPECT_EQ(IdProbe::kSeqMask, (uint64_t{1} << 40) - 1);
}

}  // namespace
}  // namespace genealog
