#include "spe/chain.h"

#include <gtest/gtest.h>

#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::V;
using testing::ValueTuple;

std::vector<IntrusivePtr<ValueTuple>> Numbers(int n) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (int i = 0; i < n; ++i) out.push_back(V(i, i));
  return out;
}

std::vector<int64_t> ValuesOf(const Collector& c) {
  std::vector<int64_t> out;
  for (const auto& t : c.tuples()) {
    out.push_back(static_cast<const ValueTuple&>(*t).value);
  }
  return out;
}

// The paper's own example: three consecutive Filters in one thread.
TEST(ChainNodeTest, ThreeFiltersEquivalentToThreeNodes) {
  auto run_chained = [](ProvenanceMode mode) {
    Topology topo(0, mode);
    auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Numbers(120));
    auto* chain =
        ChainBuilder("filters")
            .Filter<ValueTuple>([](const ValueTuple& t) { return t.value % 2 == 0; })
            .Filter<ValueTuple>([](const ValueTuple& t) { return t.value % 3 == 0; })
            .Filter<ValueTuple>([](const ValueTuple& t) { return t.value % 5 == 0; })
            .AddTo(topo);
    Collector c;
    auto* sink = c.AttachSink(topo);
    topo.Connect(source, chain);
    topo.Connect(chain, sink);
    RunToCompletion(topo);
    return ValuesOf(c);
  };
  auto run_separate = [](ProvenanceMode mode) {
    Topology topo(0, mode);
    auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Numbers(120));
    auto* f1 = topo.Add<FilterNode<ValueTuple>>(
        "f1", [](const ValueTuple& t) { return t.value % 2 == 0; });
    auto* f2 = topo.Add<FilterNode<ValueTuple>>(
        "f2", [](const ValueTuple& t) { return t.value % 3 == 0; });
    auto* f3 = topo.Add<FilterNode<ValueTuple>>(
        "f3", [](const ValueTuple& t) { return t.value % 5 == 0; });
    Collector c;
    auto* sink = c.AttachSink(topo);
    topo.Connect(source, f1);
    topo.Connect(f1, f2);
    topo.Connect(f2, f3);
    topo.Connect(f3, sink);
    RunToCompletion(topo);
    return ValuesOf(c);
  };
  for (ProvenanceMode mode :
       {ProvenanceMode::kNone, ProvenanceMode::kGenealog,
        ProvenanceMode::kBaseline}) {
    auto chained = run_chained(mode);
    EXPECT_EQ(chained, run_separate(mode));
    EXPECT_EQ(chained, (std::vector<int64_t>{0, 30, 60, 90}));
  }
}

TEST(ChainNodeTest, MapStageInstrumentsLikeMapNode) {
  Topology topo(0, ProvenanceMode::kGenealog);
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Numbers(4));
  auto* chain =
      ChainBuilder("chain")
          .Map<ValueTuple, ValueTuple>(
              [](const ValueTuple& in, MapCollector<ValueTuple>& out) {
                out.Emit(MakeTuple<ValueTuple>(0, in.value * 10));
              })
          .Filter<ValueTuple>([](const ValueTuple& t) { return t.value >= 20; })
          .AddTo(topo);
  Collector c;
  auto* sink = c.AttachSink(topo);
  topo.Connect(source, chain);
  topo.Connect(chain, sink);
  RunToCompletion(topo);

  ASSERT_EQ(c.tuples().size(), 2u);  // values 20, 30
  for (const auto& t : c.tuples()) {
    EXPECT_EQ(t->kind, TupleKind::kMap);
    ASSERT_NE(t->u1(), nullptr);
    EXPECT_EQ(t->u1()->kind, TupleKind::kSource);
    EXPECT_NE(t->id, 0u);
  }
  EXPECT_EQ(c.tuples()[0]->ts, 2);  // ts contract preserved through the chain
}

TEST(ChainNodeTest, MapFanOutWithinChain) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Numbers(3));
  auto* chain =
      ChainBuilder("chain")
          .Map<ValueTuple, ValueTuple>(
              [](const ValueTuple& in, MapCollector<ValueTuple>& out) {
                for (int64_t k = 0; k < in.value; ++k) {
                  out.Emit(MakeTuple<ValueTuple>(0, in.value));
                }
              })
          .AddTo(topo);
  Collector c;
  auto* sink = c.AttachSink(topo);
  topo.Connect(source, chain);
  topo.Connect(chain, sink);
  RunToCompletion(topo);
  EXPECT_EQ(c.tuples().size(), 3u);  // 0 + 1 + 2
}

TEST(ChainNodeTest, EmptyChainForwards) {
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Numbers(5));
  auto* chain = ChainBuilder("empty").AddTo(topo);
  Collector c;
  auto* sink = c.AttachSink(topo);
  topo.Connect(source, chain);
  topo.Connect(chain, sink);
  RunToCompletion(topo);
  EXPECT_EQ(c.tuples().size(), 5u);
}

TEST(ChainNodeTest, WatermarksFlowThroughChain) {
  // A chain that drops everything must still forward watermarks (it is a
  // SingleInputNode, so the default OnWatermark applies).
  Topology topo;
  auto* a = topo.Add<VectorSourceNode<ValueTuple>>("a", Numbers(20));
  auto* b = topo.Add<VectorSourceNode<ValueTuple>>("b", Numbers(20));
  auto* chain = ChainBuilder("drop")
                    .Filter<ValueTuple>([](const ValueTuple&) { return false; })
                    .AddTo(topo);
  auto* merge = topo.Add<UnionNode>("union");
  Collector c;
  auto* sink = c.AttachSink(topo);
  topo.Connect(a, chain);
  topo.Connect(chain, merge);
  topo.Connect(b, merge);
  topo.Connect(merge, sink);
  RunToCompletion(topo);
  EXPECT_EQ(c.tuples().size(), 20u);
}

}  // namespace
}  // namespace genealog
