#include "baseline/resolver.h"

#include <gtest/gtest.h>

#include "baseline/source_store.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

TEST(SourceStoreTest, InsertAndLookup) {
  BaselineSourceStore store;
  auto t = V(5, 10);
  t->id = 42;
  store.Insert(t);
  EXPECT_EQ(store.Lookup(42).get(), t.get());
  EXPECT_EQ(store.Lookup(99), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(SourceStoreTest, EvictBeforeDropsOldTuples) {
  BaselineSourceStore store;
  for (int64_t ts = 0; ts < 10; ++ts) {
    auto t = V(ts, ts);
    t->id = static_cast<uint64_t>(ts);
    store.Insert(t);
  }
  store.EvictBefore(5);
  EXPECT_EQ(store.size(), 5u);
  EXPECT_EQ(store.Lookup(4), nullptr);
  EXPECT_NE(store.Lookup(5), nullptr);
  EXPECT_EQ(store.peak_size(), 10u);
}

TEST(SourceStoreTest, PeakTracksHighWater) {
  BaselineSourceStore store;
  for (int64_t ts = 0; ts < 4; ++ts) {
    auto t = V(ts, ts);
    t->id = static_cast<uint64_t>(ts);
    store.Insert(t);
    store.EvictBefore(ts);  // keep only the newest
  }
  EXPECT_LE(store.size(), 2u);
  EXPECT_GE(store.peak_size(), 2u);
}

// Direct resolver topology: source -> tap -> {filter -> sink_tap, resolver}.
struct ResolverRun {
  std::vector<ProvenanceRecord> records;
  uint64_t missing = 0;
  uint64_t resolved = 0;
  size_t store_peak = 0;
};

ResolverRun RunResolver(int n_tuples, int keep_every, int64_t slack,
                        bool evict) {
  ResolverRun run;
  Topology topo(1, ProvenanceMode::kBaseline);
  // The eviction-bound assertions measure the store peak under per-tuple
  // watermark cadence; batched handover coarsens eviction granularity (the
  // peak then tracks the batch size, not the slack), so pin batch size 1.
  topo.set_default_batch_size(1);
  std::vector<IntrusivePtr<ValueTuple>> data;
  for (int i = 0; i < n_tuples; ++i) data.push_back(V(i, i));
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
  auto* tap = topo.Add<MultiplexNode>("tap");
  auto* filter = topo.Add<FilterNode<ValueTuple>>(
      "f", [keep_every](const ValueTuple& t) {
        return t.value % keep_every == 0;
      });
  BaselineResolverOptions options;
  options.slack = slack;
  options.evict = evict;
  options.consumer = [&run](const ProvenanceRecord& r) {
    run.records.push_back(r);
  };
  auto* resolver = topo.Add<BaselineResolverNode>("resolver", options);
  topo.Connect(source, tap);
  topo.Connect(tap, filter);
  topo.Connect(filter, resolver);  // port 0: annotated "sink" stream
  topo.Connect(tap, resolver);     // port 1: source stream
  RunToCompletion(topo);
  run.missing = resolver->missing_ids();
  run.resolved = resolver->origin_tuples();
  run.store_peak = resolver->store_peak_size();
  return run;
}

TEST(BaselineResolverTest, ResolvesEveryAnnotatedSink) {
  ResolverRun run = RunResolver(100, 10, 0, false);
  EXPECT_EQ(run.records.size(), 10u);
  EXPECT_EQ(run.missing, 0u);
  EXPECT_EQ(run.resolved, 10u);
  for (const auto& record : run.records) {
    ASSERT_EQ(record.origins.size(), 1u);
    // The resolved origin is the source copy with the same payload.
    EXPECT_EQ(static_cast<const ValueTuple&>(*record.origins[0]).value,
              static_cast<const ValueTuple&>(*record.derived).value);
  }
}

TEST(BaselineResolverTest, RecordsArriveInTimestampOrder) {
  ResolverRun run = RunResolver(200, 7, 0, false);
  for (size_t i = 1; i < run.records.size(); ++i) {
    EXPECT_LE(run.records[i - 1].derived_ts, run.records[i].derived_ts);
  }
}

TEST(BaselineResolverTest, UnboundedStoreKeepsEverything) {
  ResolverRun run = RunResolver(500, 50, 0, false);
  EXPECT_EQ(run.store_peak, 500u);
}

TEST(BaselineResolverTest, EvictionBoundsStoreWithoutLosingRecords) {
  ResolverRun run = RunResolver(2000, 50, 20, true);
  EXPECT_LT(run.store_peak, 1000u);
  EXPECT_EQ(run.records.size(), 40u);
  EXPECT_EQ(run.missing, 0u);
}

TEST(BaselineResolverTest, MissingIdsCountedNotFatal) {
  // Aggressive eviction with a too-small horizon loses store entries for
  // sink tuples that resolve late; the resolver reports, not crashes.
  Topology topo(1, ProvenanceMode::kBaseline);
  std::vector<IntrusivePtr<ValueTuple>> data;
  for (int i = 0; i < 100; ++i) data.push_back(V(i, i));
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
  auto* tap = topo.Add<MultiplexNode>("tap");
  // An "aggregating" stage is simulated by a map that time-shifts the sink
  // stream annotation far from the source tuple's store lifetime: here we
  // simply delay resolution with a large slack while evicting eagerly.
  BaselineResolverOptions options;
  options.slack = 90;  // sinks resolve ~90 ticks late
  options.evict = true;
  auto* resolver = topo.Add<BaselineResolverNode>("resolver", options);
  auto* filter = topo.Add<FilterNode<ValueTuple>>(
      "f", [](const ValueTuple& t) { return t.value % 10 == 0; });
  topo.Connect(source, tap);
  topo.Connect(tap, filter);
  topo.Connect(filter, resolver);
  topo.Connect(tap, resolver);
  RunToCompletion(topo);
  // All sinks resolve (at flush), and no crash occurred; with slack 90 the
  // eviction horizon (wm - 180) never bites on a 100-tick stream.
  EXPECT_EQ(resolver->records(), 10u);
}

TEST(BaselineResolverTest, SinkTupleWithoutAnnotationYieldsEmptyRecord) {
  // NP-produced tuples reaching a resolver (misconfiguration) resolve to
  // zero origins instead of failing.
  Topology topo(1, ProvenanceMode::kNone);  // no annotations anywhere
  std::vector<IntrusivePtr<ValueTuple>> data{V(1, 1)};
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
  auto* tap = topo.Add<MultiplexNode>("tap");
  std::vector<ProvenanceRecord> records;
  BaselineResolverOptions options;
  options.consumer = [&records](const ProvenanceRecord& r) {
    records.push_back(r);
  };
  auto* resolver = topo.Add<BaselineResolverNode>("resolver", options);
  topo.Connect(source, tap);
  topo.Connect(tap, resolver);  // port 0
  auto* tap2 = topo.Add<MultiplexNode>("tap2");
  topo.Connect(tap, tap2);
  topo.Connect(tap2, resolver);  // port 1
  RunToCompletion(topo);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].origins.empty());
}

TEST(BaselineResolverTest, MultipleSourcePorts) {
  // Distributed Q4-style: two source streams feed the store.
  Topology topo(1, ProvenanceMode::kBaseline);
  std::vector<IntrusivePtr<ValueTuple>> a{V(1, 1), V(3, 3)};
  std::vector<IntrusivePtr<ValueTuple>> b{V(2, 2), V(4, 4)};
  auto* src_a = topo.Add<VectorSourceNode<ValueTuple>>("a", std::move(a));
  auto* src_b = topo.Add<VectorSourceNode<ValueTuple>>("b", std::move(b));
  auto* tap_a = topo.Add<MultiplexNode>("tap_a");
  auto* tap_b = topo.Add<MultiplexNode>("tap_b");
  auto* merge = topo.Add<UnionNode>("union");
  std::vector<ProvenanceRecord> records;
  BaselineResolverOptions options;
  options.consumer = [&records](const ProvenanceRecord& r) {
    records.push_back(r);
  };
  auto* resolver = topo.Add<BaselineResolverNode>("resolver", options);
  topo.Connect(src_a, tap_a);
  topo.Connect(src_b, tap_b);
  topo.Connect(tap_a, merge);
  topo.Connect(tap_b, merge);
  topo.Connect(merge, resolver);  // port 0: merged "sink" stream
  topo.Connect(tap_a, resolver);  // port 1: source stream a
  topo.Connect(tap_b, resolver);  // port 2: source stream b
  RunToCompletion(topo);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(resolver->missing_ids(), 0u);
}

}  // namespace
}  // namespace genealog
