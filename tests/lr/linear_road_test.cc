#include "lr/linear_road.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/type_registry.h"

namespace genealog::lr {
namespace {

LinearRoadConfig SmallConfig() {
  LinearRoadConfig config;
  config.n_cars = 40;
  config.duration_s = 1800;
  config.stop_probability = 0.02;
  config.accident_probability = 0.05;
  config.seed = 7;
  return config;
}

TEST(LinearRoadGeneratorTest, ReportsAreTimestampSorted) {
  auto data = GenerateLinearRoad(SmallConfig());
  ASSERT_FALSE(data.reports.empty());
  for (size_t i = 1; i < data.reports.size(); ++i) {
    EXPECT_LE(data.reports[i - 1]->ts, data.reports[i]->ts);
  }
}

TEST(LinearRoadGeneratorTest, EveryCarReportsEveryPeriod) {
  auto config = SmallConfig();
  auto data = GenerateLinearRoad(config);
  std::map<int64_t, std::vector<int64_t>> ts_by_car;
  for (const auto& r : data.reports) ts_by_car[r->car_id].push_back(r->ts);
  EXPECT_EQ(ts_by_car.size(), static_cast<size_t>(config.n_cars));
  for (const auto& [car, ts_list] : ts_by_car) {
    for (size_t i = 1; i < ts_list.size(); ++i) {
      EXPECT_EQ(ts_list[i] - ts_list[i - 1], config.report_period_s)
          << "car " << car;
    }
  }
}

TEST(LinearRoadGeneratorTest, DeterministicForSameSeed) {
  auto a = GenerateLinearRoad(SmallConfig());
  auto b = GenerateLinearRoad(SmallConfig());
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i]->ts, b.reports[i]->ts);
    EXPECT_EQ(a.reports[i]->car_id, b.reports[i]->car_id);
    EXPECT_EQ(a.reports[i]->speed, b.reports[i]->speed);
    EXPECT_EQ(a.reports[i]->pos, b.reports[i]->pos);
  }
  EXPECT_EQ(a.planted_stops.size(), b.planted_stops.size());
}

TEST(LinearRoadGeneratorTest, DifferentSeedsDiffer) {
  auto config = SmallConfig();
  auto a = GenerateLinearRoad(config);
  config.seed = 8;
  auto b = GenerateLinearRoad(config);
  bool differs = a.reports.size() != b.reports.size();
  for (size_t i = 0; !differs && i < a.reports.size(); ++i) {
    differs = a.reports[i]->speed != b.reports[i]->speed ||
              a.reports[i]->pos != b.reports[i]->pos;
  }
  EXPECT_TRUE(differs);
}

TEST(LinearRoadGeneratorTest, PlantedStopsProduceZeroSpeedRuns) {
  auto config = SmallConfig();
  auto data = GenerateLinearRoad(config);
  ASSERT_FALSE(data.planted_stops.empty());
  // Index reports by (car, ts).
  std::map<std::pair<int64_t, int64_t>, const PositionReport*> by_car_ts;
  for (const auto& r : data.reports) by_car_ts[{r->car_id, r->ts}] = r.get();
  for (const auto& stop : data.planted_stops) {
    for (int k = 0; k < stop.n_reports; ++k) {
      const int64_t ts = stop.first_report_ts + k * config.report_period_s;
      if (ts >= config.duration_s) break;  // stop truncated by trace end
      auto it = by_car_ts.find({stop.car_id, ts});
      ASSERT_NE(it, by_car_ts.end());
      EXPECT_EQ(it->second->speed, 0.0);
      EXPECT_EQ(it->second->pos, stop.pos);
    }
  }
}

TEST(LinearRoadGeneratorTest, MovingCarsAdvance) {
  auto data = GenerateLinearRoad(SmallConfig());
  // Pick a car's consecutive moving reports: position must change.
  int moving_transitions = 0;
  std::map<int64_t, const PositionReport*> last_by_car;
  for (const auto& r : data.reports) {
    auto it = last_by_car.find(r->car_id);
    if (it != last_by_car.end() && it->second->speed > 0 && r->speed > 0) {
      EXPECT_NE(it->second->pos, r->pos);
      ++moving_transitions;
    }
    last_by_car[r->car_id] = r.get();
  }
  EXPECT_GT(moving_transitions, 100);
}

TEST(LinearRoadGeneratorTest, SerializationRoundTrip) {
  auto data = GenerateLinearRoad(SmallConfig());
  const auto& r = data.reports.front();
  ByteWriter w;
  SerializeTuple(*r, w);
  ByteReader reader(w.bytes());
  TuplePtr back = DeserializeTuple(reader);
  const auto& pr = static_cast<const PositionReport&>(*back);
  EXPECT_EQ(pr.car_id, r->car_id);
  EXPECT_EQ(pr.speed, r->speed);
  EXPECT_EQ(pr.pos, r->pos);
}

TEST(ReferenceStoppedCarsTest, DetectsHandCraftedStop) {
  std::vector<IntrusivePtr<PositionReport>> reports;
  // Car 1 stopped at pos 5 for 4 reports starting ts=30.
  for (int k = 0; k < 4; ++k) {
    reports.push_back(MakeTuple<PositionReport>(30 + 30 * k, 1, 0.0, 5));
  }
  // Car 2 moving.
  for (int k = 0; k < 4; ++k) {
    reports.push_back(
        MakeTuple<PositionReport>(30 + 30 * k, 2, 20.0, 100 + k));
  }
  std::sort(reports.begin(), reports.end(),
            [](const auto& a, const auto& b) { return a->ts < b->ts; });
  auto events = ReferenceStoppedCars(reports, 120, 30, 4);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].window_start, 30);
  EXPECT_EQ(events[0].car_id, 1);
  EXPECT_EQ(events[0].pos, 5);
}

TEST(ReferenceStoppedCarsTest, RequiresSinglePosition) {
  std::vector<IntrusivePtr<PositionReport>> reports;
  // 4 zero-speed reports but at two positions: no event.
  reports.push_back(MakeTuple<PositionReport>(0, 1, 0.0, 5));
  reports.push_back(MakeTuple<PositionReport>(30, 1, 0.0, 5));
  reports.push_back(MakeTuple<PositionReport>(60, 1, 0.0, 6));
  reports.push_back(MakeTuple<PositionReport>(90, 1, 0.0, 6));
  EXPECT_TRUE(ReferenceStoppedCars(reports, 120, 30, 4).empty());
}

TEST(ReferenceStoppedCarsTest, LongerStopYieldsSlidingEvents) {
  std::vector<IntrusivePtr<PositionReport>> reports;
  // 6 consecutive zero reports -> windows with exactly 4 zeros: 3 events.
  for (int k = 0; k < 6; ++k) {
    reports.push_back(MakeTuple<PositionReport>(30 * k, 1, 0.0, 5));
  }
  auto events = ReferenceStoppedCars(reports, 120, 30, 4);
  EXPECT_EQ(events.size(), 3u);
}

TEST(ReferenceAccidentsTest, TwoCarsSamePositionSameWindow) {
  std::vector<ReferenceStoppedEvent> stopped{
      {30, 1, 5}, {30, 2, 5}, {30, 3, 9}, {60, 1, 5}};
  auto accidents = ReferenceAccidents(stopped);
  ASSERT_EQ(accidents.size(), 1u);
  EXPECT_EQ(accidents[0].window_start, 30);
  EXPECT_EQ(accidents[0].pos, 5);
  EXPECT_EQ(accidents[0].car_count, 2);
}

TEST(ReferenceAccidentsTest, GeneratorAccidentsAreDetected) {
  auto config = SmallConfig();
  config.accident_probability = 0.2;  // force several collisions
  auto data = GenerateLinearRoad(config);
  auto stopped = ReferenceStoppedCars(data.reports, 120, 30, 4);
  auto accidents = ReferenceAccidents(stopped);
  EXPECT_FALSE(accidents.empty());
}

}  // namespace
}  // namespace genealog::lr
