#include "common/memory_accounting.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace genealog::mem {
namespace {

class MemoryAccountingTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  void TearDown() override { ResetAll(); }
};

TEST_F(MemoryAccountingTest, AddSubTracksLiveBytes) {
  Add(1, 100);
  Add(1, 50);
  EXPECT_EQ(LiveBytes(1), 150);
  Sub(1, 30);
  EXPECT_EQ(LiveBytes(1), 120);
}

TEST_F(MemoryAccountingTest, InstancesAreIndependent) {
  Add(1, 100);
  Add(2, 10);
  EXPECT_EQ(LiveBytes(1), 100);
  EXPECT_EQ(LiveBytes(2), 10);
  EXPECT_EQ(LiveBytes(3), 0);
}

TEST_F(MemoryAccountingTest, PeakHoldsHighWater) {
  Add(1, 100);
  Sub(1, 90);
  Add(1, 20);
  EXPECT_EQ(LiveBytes(1), 30);
  EXPECT_EQ(PeakBytes(1), 100);
}

TEST_F(MemoryAccountingTest, TotalSumsInstances) {
  Add(1, 5);
  Add(2, 7);
  EXPECT_EQ(TotalLiveBytes(), 12);
}

TEST_F(MemoryAccountingTest, ThreadLocalInstanceId) {
  SetCurrentInstance(3);
  EXPECT_EQ(CurrentInstance(), 3);
  std::thread other([] {
    EXPECT_EQ(CurrentInstance(), 0);  // fresh thread gets the default pool
    SetCurrentInstance(5);
    EXPECT_EQ(CurrentInstance(), 5);
  });
  other.join();
  EXPECT_EQ(CurrentInstance(), 3);
  SetCurrentInstance(0);
}

TEST_F(MemoryAccountingTest, ConcurrentAddSubIsExact) {
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int j = 0; j < kIters; ++j) {
        Add(1, 8);
        Sub(1, 8);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(LiveBytes(1), 0);
  EXPECT_GE(PeakBytes(1), 8);
}

TEST_F(MemoryAccountingTest, RssIsPositive) {
  EXPECT_GT(ReadRssBytes(), 0);
}

TEST_F(MemoryAccountingTest, SamplerProducesSeries) {
  Add(1, 1000);
  MemorySampler sampler(/*n_instances=*/2, /*period_ms=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.Stop();
  const auto series = sampler.series(1);
  EXPECT_GT(series.samples, 0);
  EXPECT_EQ(series.max_bytes, 1000);
  EXPECT_DOUBLE_EQ(series.avg_bytes, 1000.0);
  const auto total = sampler.total();
  EXPECT_EQ(total.max_bytes, 1000);
}

}  // namespace
}  // namespace genealog::mem
