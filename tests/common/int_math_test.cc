#include "common/int_math.h"

#include <gtest/gtest.h>

namespace genealog {
namespace {

TEST(IntMathTest, FloorDivPositive) {
  EXPECT_EQ(FloorDiv(7, 3), 2);
  EXPECT_EQ(FloorDiv(6, 3), 2);
  EXPECT_EQ(FloorDiv(0, 5), 0);
}

TEST(IntMathTest, FloorDivNegativeRoundsDown) {
  EXPECT_EQ(FloorDiv(-1, 3), -1);
  EXPECT_EQ(FloorDiv(-3, 3), -1);
  EXPECT_EQ(FloorDiv(-4, 3), -2);
  EXPECT_EQ(FloorDiv(-7, 30), -1);
}

TEST(IntMathTest, FloorAlign) {
  EXPECT_EQ(FloorAlign(95, 30), 90);
  EXPECT_EQ(FloorAlign(90, 30), 90);
  EXPECT_EQ(FloorAlign(-5, 30), -30);
  EXPECT_EQ(FloorAlign(0, 30), 0);
}

TEST(IntMathTest, SatSubClampsAtMin) {
  EXPECT_EQ(SatSub(INT64_MIN, 1), INT64_MIN);
  EXPECT_EQ(SatSub(INT64_MIN + 5, 10), INT64_MIN);
  EXPECT_EQ(SatSub(10, 3), 7);
}

TEST(IntMathTest, SatSubClampsAtMax) {
  EXPECT_EQ(SatSub(INT64_MAX, -1), INT64_MAX);
  EXPECT_EQ(SatSub(5, -INT64_MAX), INT64_MAX);
}

TEST(IntMathTest, SatAddClamps) {
  EXPECT_EQ(SatAdd(INT64_MAX, 1), INT64_MAX);
  EXPECT_EQ(SatAdd(INT64_MIN, -1), INT64_MIN);
  EXPECT_EQ(SatAdd(2, 3), 5);
  EXPECT_EQ(SatAdd(-2, -3), -5);
}

}  // namespace
}  // namespace genealog
