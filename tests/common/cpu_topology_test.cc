// CountPhysicalCores against mocked sysfs layouts: an SMT box must resolve to
// physical cores, not hardware threads, and broken layouts must fall back.
#include "common/cpu_topology.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace genealog {
namespace {

namespace fs = std::filesystem;

class MockSysfs {
 public:
  MockSysfs() {
    root_ = fs::temp_directory_path() /
            ("genealog_cpu_topology_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~MockSysfs() { fs::remove_all(root_); }

  void AddCpu(int cpu, long package, long core) {
    const fs::path topo = root_ / ("cpu" + std::to_string(cpu)) / "topology";
    fs::create_directories(topo);
    Write(topo / "physical_package_id", std::to_string(package) + "\n");
    Write(topo / "core_id", std::to_string(core) + "\n");
  }

  void WriteRaw(int cpu, const std::string& file, const std::string& text) {
    const fs::path topo = root_ / ("cpu" + std::to_string(cpu)) / "topology";
    fs::create_directories(topo);
    Write(topo / file, text);
  }

  std::string path() const { return root_.string(); }

 private:
  static void Write(const fs::path& p, const std::string& text) {
    std::ofstream(p) << text;
  }

  fs::path root_;
  static inline int counter_ = 0;
};

TEST(CpuTopologyTest, SmtBoxCountsPhysicalCoresNotThreads) {
  // 2 sockets x 4 cores x 2 SMT threads = 16 logical CPUs, 8 physical cores.
  // Linux numbers the sibling threads after all the primaries.
  MockSysfs sysfs;
  int cpu = 0;
  for (int smt = 0; smt < 2; ++smt) {
    for (int pkg = 0; pkg < 2; ++pkg) {
      for (int core = 0; core < 4; ++core) {
        sysfs.AddCpu(cpu++, pkg, core);
      }
    }
  }
  EXPECT_EQ(CountPhysicalCores(sysfs.path()), 8u);
}

TEST(CpuTopologyTest, NonSmtBoxCountsEveryCpu) {
  MockSysfs sysfs;
  for (int cpu = 0; cpu < 6; ++cpu) sysfs.AddCpu(cpu, 0, cpu);
  EXPECT_EQ(CountPhysicalCores(sysfs.path()), 6u);
}

TEST(CpuTopologyTest, CoreIdsOnlyUniquePerPackage) {
  // core_id restarts at 0 on each package; the pair (package, core) is the
  // physical core identity.
  MockSysfs sysfs;
  sysfs.AddCpu(0, 0, 0);
  sysfs.AddCpu(1, 0, 1);
  sysfs.AddCpu(2, 1, 0);
  sysfs.AddCpu(3, 1, 1);
  EXPECT_EQ(CountPhysicalCores(sysfs.path()), 4u);
}

TEST(CpuTopologyTest, MissingLayoutYieldsZeroForFallback) {
  MockSysfs sysfs;  // no cpu* directories at all
  EXPECT_EQ(CountPhysicalCores(sysfs.path()), 0u);
  EXPECT_EQ(CountPhysicalCores(sysfs.path() + "/does_not_exist"), 0u);
}

TEST(CpuTopologyTest, StopsAtFirstGapInCpuNumbering) {
  // cpu0 and cpu2 but no cpu1: only the dense prefix is counted (Linux keeps
  // cpuN dense; a gap means we are no longer reading a real layout).
  MockSysfs sysfs;
  sysfs.AddCpu(0, 0, 0);
  sysfs.AddCpu(2, 0, 2);
  EXPECT_EQ(CountPhysicalCores(sysfs.path()), 1u);
}

TEST(CpuTopologyTest, UnparsableTopologyFilesStopTheWalk) {
  MockSysfs sysfs;
  sysfs.AddCpu(0, 0, 0);
  sysfs.AddCpu(1, 0, 1);
  sysfs.WriteRaw(2, "physical_package_id", "not-a-number");
  sysfs.WriteRaw(2, "core_id", "0\n");
  EXPECT_EQ(CountPhysicalCores(sysfs.path()), 2u);
}

TEST(CpuTopologyTest, DefaultWorkerCountIsPositive) {
  // On any machine this runs on: >= 1, and no larger than the thread count
  // when both probes work.
  EXPECT_GE(DefaultWorkerCount(), 1u);
}

}  // namespace
}  // namespace genealog
