#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genealog {
namespace {

TEST(RunStatsTest, EmptyIsZero) {
  RunStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.ci95(), 0.0);
}

TEST(RunStatsTest, SingleValue) {
  RunStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunStatsTest, MeanAndVariance) {
  RunStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
}

TEST(RunStatsTest, Ci95ShrinksWithSamples) {
  RunStats small;
  RunStats large;
  for (int i = 0; i < 10; ++i) small.Add(i % 2 == 0 ? 1.0 : 3.0);
  for (int i = 0; i < 1000; ++i) large.Add(i % 2 == 0 ? 1.0 : 3.0);
  EXPECT_GT(small.ci95(), large.ci95());
  EXPECT_GT(large.ci95(), 0.0);
}

TEST(RunStatsTest, TracksMinMax) {
  RunStats s;
  s.Add(-3);
  s.Add(10);
  s.Add(2);
  EXPECT_EQ(s.min(), -3);
  EXPECT_EQ(s.max(), 10);
}

TEST(RunStatsTest, ConstantSeriesHasZeroVariance) {
  RunStats s;
  for (int i = 0; i < 100; ++i) s.Add(7.5);
  EXPECT_NEAR(s.variance(), 0.0, 1e-12);
  EXPECT_NEAR(s.ci95(), 0.0, 1e-12);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

TEST(PercentileTest, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 50), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 25), 2.5);
}

TEST(PercentileTest, ExtremesAreMinMax) {
  std::vector<double> v{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 9.0);
}

TEST(SampleStatsTest, MeanOverAllSamplesNotJustReservoir) {
  SampleStats s(/*reservoir_capacity=*/10);
  for (int i = 0; i < 1000; ++i) s.Add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 999.0 / 2.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 999.0);
}

TEST(SampleStatsTest, PercentileFromReservoirIsPlausible) {
  SampleStats s(4096);
  for (int i = 0; i < 100000; ++i) s.Add(static_cast<double>(i % 1000));
  const double p50 = s.percentile(50);
  EXPECT_GT(p50, 350.0);
  EXPECT_LT(p50, 650.0);
}

TEST(SampleStatsTest, SmallSampleExactPercentiles) {
  SampleStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
}

}  // namespace
}  // namespace genealog
