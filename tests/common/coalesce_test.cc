// PushCoalesce and the stream-level watermark coalescing built on it.
#include <gtest/gtest.h>

#include <thread>

#include "common/bounded_queue.h"
#include "spe/node.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;

bool MergeInts(int& tail, const int& incoming) {
  if (tail < 0 && incoming < 0) {  // negative = "mergeable" marker
    tail = std::min(tail, incoming);
    return true;
  }
  return false;
}

TEST(PushCoalesceTest, MergesIntoTail) {
  BoundedQueue<int> q(8);
  q.PushCoalesce(-1, MergeInts);
  q.PushCoalesce(-5, MergeInts);
  q.PushCoalesce(-2, MergeInts);
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.Pop().value(), -5);
}

TEST(PushCoalesceTest, NonMergeableItemsAppend) {
  BoundedQueue<int> q(8);
  q.PushCoalesce(1, MergeInts);
  q.PushCoalesce(2, MergeInts);
  q.PushCoalesce(-1, MergeInts);
  q.PushCoalesce(3, MergeInts);
  EXPECT_EQ(q.Size(), 4u);
  EXPECT_EQ(q.Pop().value(), 1);
}

TEST(PushCoalesceTest, MergeIntoFullQueueDoesNotBlock) {
  BoundedQueue<int> q(2);
  q.PushCoalesce(7, MergeInts);
  q.PushCoalesce(-1, MergeInts);  // tail is mergeable, queue now full
  // Merging into the tail must succeed immediately despite the full queue.
  EXPECT_TRUE(q.PushCoalesce(-9, MergeInts));
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.Pop().value(), 7);
  EXPECT_EQ(q.Pop().value(), -9);
}

TEST(PushCoalesceTest, AbortedQueueRejects) {
  BoundedQueue<int> q(2);
  q.Abort();
  EXPECT_FALSE(q.PushCoalesce(-1, MergeInts));
}

TEST(EndpointCoalesceTest, ConsecutiveWatermarksCollapse) {
  auto queue = std::make_unique<StreamQueue>(64);
  Endpoint e{queue.get(), 0};
  e.Push(StreamItem::MakeWatermark(5));
  e.Push(StreamItem::MakeWatermark(9));
  e.Push(StreamItem::MakeWatermark(7));  // lower: still merged, keeps max
  EXPECT_EQ(queue->Size(), 1u);
  auto item = queue->Pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->kind, StreamItem::Kind::kWatermark);
  EXPECT_EQ(item->watermark, 9);
}

TEST(EndpointCoalesceTest, DifferentPortsDoNotMerge) {
  auto queue = std::make_unique<StreamQueue>(64);
  Endpoint a{queue.get(), 0};
  Endpoint b{queue.get(), 1};
  a.Push(StreamItem::MakeWatermark(5));
  b.Push(StreamItem::MakeWatermark(6));
  EXPECT_EQ(queue->Size(), 2u);
}

TEST(EndpointCoalesceTest, TuplesInterruptMerging) {
  auto queue = std::make_unique<StreamQueue>(64);
  Endpoint e{queue.get(), 0};
  e.Push(StreamItem::MakeWatermark(5));
  e.Push(StreamItem::MakeTuple(V(6, 1)));
  e.Push(StreamItem::MakeWatermark(7));
  EXPECT_EQ(queue->Size(), 3u);
  EXPECT_EQ(queue->Pop()->watermark, 5);
  EXPECT_EQ(queue->Pop()->kind, StreamItem::Kind::kTuple);
  EXPECT_EQ(queue->Pop()->watermark, 7);
}

TEST(EndpointCoalesceTest, FlushNeverMerges) {
  auto queue = std::make_unique<StreamQueue>(64);
  Endpoint e{queue.get(), 0};
  e.Push(StreamItem::MakeWatermark(5));
  e.Push(StreamItem::MakeFlush());
  EXPECT_EQ(queue->Size(), 2u);
}

TEST(EndpointCoalesceTest, ConcurrentProducersStayConsistent) {
  auto queue = std::make_unique<StreamQueue>(4096);
  constexpr int kPerProducer = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&queue, p] {
      Endpoint e{queue.get(), static_cast<uint16_t>(p)};
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(e.Push(StreamItem::MakeWatermark(i)));
      }
    });
  }
  // Concurrent consumer: per-port watermarks must arrive nondecreasing, and
  // the final watermark of every port must be delivered (a coalesced tail is
  // never lost). Pop() blocks, so the consumer simply reads until it has
  // seen every port's last value.
  int64_t last_wm[4] = {-1, -1, -1, -1};
  int ports_finished = 0;
  while (ports_finished < 4) {
    auto item = queue->Pop();
    ASSERT_TRUE(item.has_value());
    ASSERT_GE(item->watermark, last_wm[item->port]);
    last_wm[item->port] = item->watermark;
    if (item->watermark == kPerProducer - 1) ++ports_finished;
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(last_wm[p], kPerProducer - 1);
  }
}

}  // namespace
}  // namespace genealog
