// BatchQueue coalescing and the endpoint-level batching protocol built on it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "spe/batch_queue.h"
#include "spe/node.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;

TEST(BatchQueueCoalesceTest, ConsecutiveWatermarksCollapse) {
  auto queue = std::make_unique<StreamQueue>(64);
  Endpoint e{queue.get(), 0};
  e.PushWatermark(5);
  e.PushWatermark(9);
  e.PushWatermark(7);  // lower: still merged, keeps max
  EXPECT_EQ(queue->Size(), 1u);
  auto batch = queue->Pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_TRUE(batch->tuples.empty());
  EXPECT_EQ(batch->watermark, 9);
}

TEST(BatchQueueCoalesceTest, DifferentPortsDoNotMerge) {
  auto queue = std::make_unique<StreamQueue>(64);
  Endpoint a{queue.get(), 0};
  Endpoint b{queue.get(), 1};
  a.PushWatermark(5);
  b.PushWatermark(6);
  EXPECT_EQ(queue->Size(), 2u);
}

TEST(BatchQueueCoalesceTest, WatermarkJoinsTailTupleBatch) {
  // A watermark following a tuple lands in the same batch (it applies after
  // the tuples), so the pair costs one queue slot.
  auto queue = std::make_unique<StreamQueue>(64);
  Endpoint e{queue.get(), 0};
  e.PushTuple(V(6, 1));
  e.PushWatermark(7);
  EXPECT_EQ(queue->Size(), 1u);
  auto batch = queue->Pop();
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->tuples.size(), 1u);
  EXPECT_EQ(batch->tuples[0]->ts, 6);
  EXPECT_EQ(batch->watermark, 7);
  EXPECT_FALSE(batch->flush);
}

TEST(BatchQueueCoalesceTest, TuplesNeverMergeAtBatchSizeOne) {
  // Batch size 1 reproduces the unbatched engine: every tuple is its own
  // queue entry.
  auto queue = std::make_unique<StreamQueue>(64);
  Endpoint e{queue.get(), 0, /*batch_size=*/1};
  e.PushTuple(V(1, 1));
  e.PushTuple(V(2, 2));
  e.PushTuple(V(3, 3));
  EXPECT_EQ(queue->Size(), 3u);
  EXPECT_EQ(queue->Weight(), 3u);
}

TEST(BatchQueueCoalesceTest, TuplesChunkUpToBatchSize) {
  auto queue = std::make_unique<StreamQueue>(64);
  Endpoint e{queue.get(), 0, /*batch_size=*/4};
  for (int i = 0; i < 10; ++i) {
    // Alternate tuple + watermark advance: the watermark flushes the pending
    // batch, and the queue glues the flushed slivers back together up to the
    // batch size.
    e.PushTuple(V(i, i));
    e.PushWatermark(i);
  }
  EXPECT_EQ(queue->Weight(), 10u);
  // 10 tuples in chunks of <= 4: at least three batches, far fewer than 20
  // unbatched entries.
  EXPECT_LE(queue->Size(), 4u);
  int64_t last_ts = -1;
  size_t total = 0;
  while (auto batch = queue->TryPop()) {
    ASSERT_LE(batch->tuples.size(), 4u);
    for (const TuplePtr& t : batch->tuples) {
      EXPECT_GT(t->ts, last_ts);  // stream order survives coalescing
      last_ts = t->ts;
      ++total;
    }
  }
  EXPECT_EQ(total, 10u);
}

TEST(BatchQueueCoalesceTest, FlushMergesIntoTailButSealsIt) {
  auto queue = std::make_unique<StreamQueue>(64);
  Endpoint e{queue.get(), 0, /*batch_size=*/8};
  e.PushTuple(V(1, 1));
  e.PushFlush();
  EXPECT_EQ(queue->Size(), 1u);
  {
    auto batch = queue->Pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_TRUE(batch->flush);
  }
  // Nothing may merge into (or after) a flushed tail on the same port.
  Endpoint f{queue.get(), 0, /*batch_size=*/8};
  f.PushFlush();
  f.PushWatermark(3);
  EXPECT_EQ(queue->Size(), 2u);
}

TEST(BatchQueueCoalesceTest, WatermarkMergesIntoFullQueueWithoutBlocking) {
  auto queue = std::make_unique<StreamQueue>(2);
  Endpoint e{queue.get(), 0};
  e.PushTuple(V(1, 1));
  e.PushTuple(V(2, 2));  // queue now at weight capacity
  // The watermark adds no weight: it must land without blocking.
  EXPECT_TRUE(e.PushWatermark(9));
  EXPECT_EQ(queue->Weight(), 2u);
  // Drain: last batch carries the watermark.
  queue->Pop();
  auto tail = queue->Pop();
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->watermark, 9);
}

TEST(BatchQueueCoalesceTest, AbortedQueueRejects) {
  auto queue = std::make_unique<StreamQueue>(2);
  queue->Abort();
  Endpoint e{queue.get(), 0};
  EXPECT_FALSE(e.PushWatermark(1));
  EXPECT_FALSE(e.PushTuple(V(1, 1)));
}

TEST(BatchQueueCoalesceTest, OversizedBatchEntersEmptyQueue) {
  // A batch bigger than the queue capacity must not deadlock: it is admitted
  // once the queue is empty.
  auto queue = std::make_unique<StreamQueue>(2);
  Endpoint e{queue.get(), 0, /*batch_size=*/8};
  for (int i = 0; i < 8; ++i) e.PushTuple(V(i, i));  // flushes at 8 > cap 2
  EXPECT_EQ(queue->Size(), 1u);
  EXPECT_EQ(queue->Weight(), 8u);
}

// Contract regression: a Push that is parked in the producer wait when
// Abort() fires must fail *without mutating the queue* — in particular it
// must not coalesce its batch into the (now dead) tail once capacity frees
// up during teardown. The schedule arranges exactly that temptation: the
// blocked batch is coalescible with the tail, and a post-abort pop frees
// enough weight that a retry-coalesce would succeed if it were attempted.
// Runs against both edge implementations (the ring's producer is the helper
// thread; the main thread only pops — legal SPSC roles).
class AbortDuringProducerWaitTest
    : public ::testing::TestWithParam<StreamEdge::Kind> {};

TEST_P(AbortDuringProducerWaitTest, DoesNotCoalesceIntoDeadTail) {
  auto queue = std::make_unique<StreamQueue>(2);
  if (GetParam() == StreamEdge::Kind::kSpsc) {
    queue->set_allow_spsc(true);
    queue->RegisterProducer(queue.get());
    ASSERT_EQ(queue->kind(), StreamEdge::Kind::kSpsc);
  }
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    // Two weight-1 batches fill the queue; the third is coalescible with the
    // tail (same port) but the merged tail would exceed capacity, so the
    // push parks in the producer wait.
    StreamBatch head;
    head.port = 1;
    head.tuples.push_back(V(1, 1));
    ASSERT_TRUE(queue->Push(std::move(head), 8));
    StreamBatch tail;
    tail.port = 0;
    tail.tuples.push_back(V(2, 2));
    ASSERT_TRUE(queue->Push(std::move(tail), 8));
    StreamBatch blocked;
    blocked.port = 0;
    blocked.tuples.push_back(V(3, 3));
    push_result.store(queue->Push(std::move(blocked), 8));
  });
  // Wait (deterministically) until both fill batches are queued, then give
  // the third push a moment to park; then tear the queue down and free
  // capacity: after the pop, weight 1 + the blocked batch's 1 fits, and the
  // tail (port 0, one tuple) would accept the merge — were it not dead.
  // (If the abort still beats the third push, that push fails at entry —
  // the same contract, so the assertions below hold on either schedule.)
  while (queue->Weight() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue->Abort();
  auto head = queue->Pop();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->port, 1);
  producer.join();
  EXPECT_FALSE(push_result.load());
  auto tail = queue->Pop();
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->port, 0);
  EXPECT_EQ(tail->tuples.size(), 1u) << "post-abort push coalesced into the "
                                        "dead tail";
  EXPECT_EQ(tail->tuples[0]->ts, 2);
  EXPECT_FALSE(queue->Pop().has_value());
  // And a fresh push after the teardown must fail without queueing anything.
  Endpoint late{queue.get(), 0};
  EXPECT_FALSE(late.PushTuple(V(9, 9)));
  EXPECT_FALSE(queue->Pop().has_value());
}

INSTANTIATE_TEST_SUITE_P(EdgeKinds, AbortDuringProducerWaitTest,
                         ::testing::Values(StreamEdge::Kind::kMutex,
                                           StreamEdge::Kind::kSpsc));

TEST(BatchQueueCoalesceTest, ConcurrentProducersStayConsistent) {
  auto queue = std::make_unique<StreamQueue>(4096);
  constexpr int kPerProducer = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&queue, p] {
      Endpoint e{queue.get(), static_cast<uint16_t>(p)};
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(e.PushWatermark(i));
      }
    });
  }
  // Concurrent consumer: per-port watermarks must arrive nondecreasing, and
  // the final watermark of every port must be delivered (a coalesced tail is
  // never lost). Pop() blocks, so the consumer simply reads until it has
  // seen every port's last value.
  int64_t last_wm[4] = {-1, -1, -1, -1};
  int ports_finished = 0;
  while (ports_finished < 4) {
    auto batch = queue->Pop();
    ASSERT_TRUE(batch.has_value());
    ASSERT_TRUE(batch->has_watermark());
    ASSERT_GE(batch->watermark, last_wm[batch->port]);
    last_wm[batch->port] = batch->watermark;
    if (batch->watermark == kPerProducer - 1) ++ports_finished;
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(last_wm[p], kPerProducer - 1);
  }
}

}  // namespace
}  // namespace genealog
