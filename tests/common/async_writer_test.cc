// AsyncFileWriter semantics: append order is preserved across buffer
// handoffs (including records larger than the buffer cap), Flush makes every
// byte durable in the stdio stream, Abort unblocks and drops cleanly, and a
// tiny buffer cap forces the double-buffer swap protocol through thousands of
// handoffs.
#include "common/async_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace genealog {
namespace {

std::string ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(AsyncFileWriterTest, PreservesAppendOrderAcrossHandoffs) {
  const std::string path = TempPath("async_order.bin");
  std::string want;
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    {
      AsyncFileWriter writer(f, /*buffer_cap=*/64);
      for (int i = 0; i < 5000; ++i) {
        std::string rec = "rec" + std::to_string(i) + ";";
        want += rec;
        writer.Append(reinterpret_cast<const uint8_t*>(rec.data()),
                      rec.size());
      }
    }  // destructor flushes + joins
    std::fclose(f);
  }
  EXPECT_EQ(ReadAll(path), want);
  std::remove(path.c_str());
}

TEST(AsyncFileWriterTest, RecordLargerThanBufferSplitsInOrder) {
  const std::string path = TempPath("async_big.bin");
  std::string big(1000, 'x');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + i % 26);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  {
    AsyncFileWriter writer(f, /*buffer_cap=*/16);
    writer.Append(reinterpret_cast<const uint8_t*>(big.data()), big.size());
    writer.Flush();
  }
  std::fclose(f);
  EXPECT_EQ(ReadAll(path), big);
  std::remove(path.c_str());
}

TEST(AsyncFileWriterTest, FlushMakesBytesVisibleBeforeDestruction) {
  const std::string path = TempPath("async_flush.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  AsyncFileWriter writer(f, /*buffer_cap=*/1 << 20);  // never fills
  const char* msg = "hello";
  writer.Append(reinterpret_cast<const uint8_t*>(msg), 5);
  writer.Flush();
  // The writer is still alive; the bytes must already be in the file.
  EXPECT_EQ(ReadAll(path), "hello");
  writer.Append(reinterpret_cast<const uint8_t*>(msg), 5);
  writer.Flush();
  EXPECT_EQ(ReadAll(path), "hellohello");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(AsyncFileWriterTest, AbortDropsPendingAndUnblocks) {
  const std::string path = TempPath("async_abort.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  {
    AsyncFileWriter writer(f, /*buffer_cap=*/8);
    const char* msg = "0123456789abcdef";
    writer.Append(reinterpret_cast<const uint8_t*>(msg), 16);
    writer.Abort();
    // Appends after abort are dropped, and nothing deadlocks on teardown.
    writer.Append(reinterpret_cast<const uint8_t*>(msg), 16);
    writer.Flush();
  }
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(AsyncFileWriterTest, NoWriteErrorOnHealthyFile) {
  const std::string path = TempPath("async_ok.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  {
    AsyncFileWriter writer(f, 32);
    std::vector<uint8_t> data(10000, 0x5a);
    writer.Append(data.data(), data.size());
    writer.Flush();
    EXPECT_FALSE(writer.write_error());
  }
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace genealog
