#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace genealog {
namespace {

TEST(SerializeTest, RoundTripsScalars) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutDouble(3.14159);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU16(), 0x1234);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(r.GetDouble(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RoundTripsExtremeValues) {
  ByteWriter w;
  w.PutI64(std::numeric_limits<int64_t>::min());
  w.PutI64(std::numeric_limits<int64_t>::max());
  w.PutDouble(std::numeric_limits<double>::infinity());
  w.PutDouble(-0.0);
  w.PutDouble(std::numeric_limits<double>::quiet_NaN());

  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetI64(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(r.GetI64(), std::numeric_limits<int64_t>::max());
  EXPECT_TRUE(std::isinf(r.GetDouble()));
  EXPECT_EQ(std::signbit(r.GetDouble()), true);
  EXPECT_TRUE(std::isnan(r.GetDouble()));
}

TEST(SerializeTest, RoundTripsStrings) {
  ByteWriter w;
  w.PutString("");
  w.PutString("hello world");
  std::string binary("\x00\x01\xFF", 3);
  w.PutString(binary);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetString(), "");
  EXPECT_EQ(r.GetString(), "hello world");
  EXPECT_EQ(r.GetString(), binary);
}

TEST(SerializeTest, RoundTripsRawBytes) {
  ByteWriter w;
  const uint8_t data[4] = {1, 2, 3, 4};
  w.PutBytes(data, 4);
  ByteReader r(w.bytes());
  uint8_t out[4] = {};
  r.GetBytes(out, 4);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
}

TEST(SerializeTest, ReaderThrowsOnTruncatedScalar) {
  ByteWriter w;
  w.PutU16(7);
  ByteReader r(w.bytes());
  r.GetU8();
  EXPECT_THROW(r.GetU64(), std::out_of_range);
}

TEST(SerializeTest, ReaderThrowsOnTruncatedString) {
  ByteWriter w;
  w.PutU32(100);  // claims 100 bytes, delivers none
  ByteReader r(w.bytes());
  EXPECT_THROW(r.GetString(), std::out_of_range);
}

TEST(SerializeTest, ReaderTracksRemaining) {
  ByteWriter w;
  w.PutU32(1);
  w.PutU32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.GetU32();
  EXPECT_EQ(r.remaining(), 4u);
  r.GetU32();
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TakeBytesMovesBuffer) {
  ByteWriter w;
  w.PutU8(9);
  auto bytes = w.TakeBytes();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(SerializeTest, ClearResetsWriter) {
  ByteWriter w;
  w.PutU64(1);
  w.Clear();
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace genealog
