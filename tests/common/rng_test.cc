#include "common/rng.h"

#include <gtest/gtest.h>

namespace genealog {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, UniformIntInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformIntCoversRange) {
  SplitMix64 rng(9);
  bool seen[11] = {};
  for (int i = 0; i < 10000; ++i) seen[rng.UniformInt(0, 10)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  SplitMix64 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliApproximatesProbability) {
  SplitMix64 rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  SplitMix64 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace genealog
