#include "common/intrusive_ptr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <utility>

namespace genealog {
namespace {

struct Counted {
  explicit Counted(int* alive) : alive(alive) { ++*alive; }
  ~Counted() { --*alive; }
  void Ref() const { refs.fetch_add(1, std::memory_order_relaxed); }
  bool Unref() const {
    return refs.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }
  int* alive;
  mutable std::atomic<int> refs{0};
};

void intrusive_ref(const Counted* c) noexcept { c->Ref(); }
void intrusive_unref(const Counted* c) noexcept {
  if (c->Unref()) delete c;
}

struct Derived : Counted {
  using Counted::Counted;
};

TEST(IntrusivePtrTest, DefaultIsNull) {
  IntrusivePtr<Counted> p;
  EXPECT_EQ(p.get(), nullptr);
  EXPECT_FALSE(p);
}

TEST(IntrusivePtrTest, AcquiresAndReleases) {
  int alive = 0;
  {
    IntrusivePtr<Counted> p(new Counted(&alive));
    EXPECT_EQ(alive, 1);
    EXPECT_EQ(p->refs.load(), 1);
  }
  EXPECT_EQ(alive, 0);
}

TEST(IntrusivePtrTest, CopySharesOwnership) {
  int alive = 0;
  IntrusivePtr<Counted> a(new Counted(&alive));
  {
    IntrusivePtr<Counted> b = a;
    EXPECT_EQ(a->refs.load(), 2);
    EXPECT_EQ(a.get(), b.get());
  }
  EXPECT_EQ(a->refs.load(), 1);
  EXPECT_EQ(alive, 1);
}

TEST(IntrusivePtrTest, MoveTransfersWithoutRefTraffic) {
  int alive = 0;
  IntrusivePtr<Counted> a(new Counted(&alive));
  Counted* raw = a.get();
  IntrusivePtr<Counted> b = std::move(a);
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(a.get(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b->refs.load(), 1);
}

TEST(IntrusivePtrTest, CopyAssignReleasesPrevious) {
  int alive = 0;
  IntrusivePtr<Counted> a(new Counted(&alive));
  IntrusivePtr<Counted> b(new Counted(&alive));
  EXPECT_EQ(alive, 2);
  b = a;
  EXPECT_EQ(alive, 1);
  EXPECT_EQ(a->refs.load(), 2);
}

TEST(IntrusivePtrTest, SelfAssignIsSafe) {
  int alive = 0;
  IntrusivePtr<Counted> a(new Counted(&alive));
  a = *&a;
  EXPECT_EQ(alive, 1);
  EXPECT_EQ(a->refs.load(), 1);
}

TEST(IntrusivePtrTest, ResetReleases) {
  int alive = 0;
  IntrusivePtr<Counted> a(new Counted(&alive));
  a.reset();
  EXPECT_EQ(alive, 0);
  EXPECT_EQ(a.get(), nullptr);
}

TEST(IntrusivePtrTest, NullptrAssignmentReleases) {
  int alive = 0;
  IntrusivePtr<Counted> a(new Counted(&alive));
  a = nullptr;
  EXPECT_EQ(alive, 0);
}

TEST(IntrusivePtrTest, ReleaseRelinquishesOwnership) {
  int alive = 0;
  IntrusivePtr<Counted> a(new Counted(&alive));
  Counted* raw = a.release();
  EXPECT_EQ(a.get(), nullptr);
  EXPECT_EQ(alive, 1);
  EXPECT_EQ(raw->refs.load(), 1);
  intrusive_unref(raw);
  EXPECT_EQ(alive, 0);
}

TEST(IntrusivePtrTest, AdoptWithoutAddRef) {
  int alive = 0;
  Counted* raw = new Counted(&alive);
  intrusive_ref(raw);  // caller-owned reference
  {
    IntrusivePtr<Counted> p(raw, /*add_ref=*/false);
    EXPECT_EQ(p->refs.load(), 1);
  }
  EXPECT_EQ(alive, 0);
}

TEST(IntrusivePtrTest, ConvertingCopyFromDerived) {
  int alive = 0;
  IntrusivePtr<Derived> d(new Derived(&alive));
  IntrusivePtr<Counted> b = d;
  EXPECT_EQ(b.get(), d.get());
  EXPECT_EQ(d->refs.load(), 2);
}

TEST(IntrusivePtrTest, ComparisonOperators) {
  int alive = 0;
  IntrusivePtr<Counted> a(new Counted(&alive));
  IntrusivePtr<Counted> b = a;
  IntrusivePtr<Counted> c;
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(c == nullptr);
  EXPECT_FALSE(a == nullptr);
  EXPECT_TRUE(a == a.get());
}

TEST(IntrusivePtrTest, SwapExchangesPointees) {
  int alive = 0;
  IntrusivePtr<Counted> a(new Counted(&alive));
  IntrusivePtr<Counted> b;
  Counted* raw = a.get();
  a.swap(b);
  EXPECT_EQ(a.get(), nullptr);
  EXPECT_EQ(b.get(), raw);
}

TEST(IntrusivePtrTest, HashMatchesRawPointerHash) {
  int alive = 0;
  IntrusivePtr<Counted> a(new Counted(&alive));
  EXPECT_EQ(std::hash<IntrusivePtr<Counted>>()(a),
            std::hash<Counted*>()(a.get()));
}

}  // namespace
}  // namespace genealog
