#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace genealog {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, SizeTracksContents) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.Size(), 0u);
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.Size(), 2u);
  q.Pop();
  EXPECT_EQ(q.Size(), 1u);
}

TEST(BoundedQueueTest, TryPopOnEmptyReturnsNothing) {
  BoundedQueue<int> q(4);
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(7);
  auto v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPop) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(3);
    pushed.store(true);
  });
  // Give the producer a chance to (incorrectly) complete.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q(2);
  std::atomic<int> got{-1};
  std::thread consumer([&] { got.store(q.Pop().value_or(-2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), -1);
  q.Push(42);
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(BoundedQueueTest, AbortWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  std::thread consumer([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Abort();
  consumer.join();
}

TEST(BoundedQueueTest, AbortWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_FALSE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Abort();
  producer.join();
}

TEST(BoundedQueueTest, AbortedQueueDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Abort();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Push(3));
}

TEST(BoundedQueueTest, SpscStressPreservesOrderAndCount) {
  BoundedQueue<int> q(64);
  constexpr int kItems = 100000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(i));
  });
  int expected = 0;
  int64_t sum = 0;
  while (expected < kItems) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, expected);
    sum += *v;
    ++expected;
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<int64_t>(kItems) * (kItems - 1) / 2);
}

TEST(BoundedQueueTest, MpscStressDeliversAllItems) {
  BoundedQueue<int> q(128);
  constexpr int kPerProducer = 20000;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> last_seen(kProducers, -1);
  for (int n = 0; n < kPerProducer * kProducers; ++n) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    const int producer = *v / kPerProducer;
    const int seq = *v % kPerProducer;
    // Per-producer FIFO must hold even under MPSC interleaving.
    ASSERT_GT(seq, last_seen[producer]);
    last_seen[producer] = seq;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(4);
  q.Push(std::make_unique<int>(5));
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace genealog
