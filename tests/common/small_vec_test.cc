#include "common/small_vec.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

namespace genealog {
namespace {

TEST(SmallVecTest, StaysInlineUpToN) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

TEST(SmallVecTest, SpillsToHeapAndKeepsContents) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

TEST(SmallVecTest, MoveOnlyElements) {
  SmallVec<std::unique_ptr<int>, 2> v;
  for (int i = 0; i < 8; ++i) v.push_back(std::make_unique<int>(i));
  ASSERT_EQ(v.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(*v[static_cast<size_t>(i)], i);
}

TEST(SmallVecTest, MoveConstructInline) {
  SmallVec<std::string, 4> a;
  a.push_back("x");
  a.push_back("y");
  SmallVec<std::string, 4> b(std::move(a));
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], "x");
  EXPECT_EQ(b[1], "y");
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(SmallVecTest, MoveConstructHeapSteals) {
  SmallVec<std::string, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back(std::to_string(i));
  const std::string* heap = a.data();
  SmallVec<std::string, 2> b(std::move(a));
  EXPECT_EQ(b.data(), heap);  // heap buffer stolen, not copied
  ASSERT_EQ(b.size(), 10u);
  EXPECT_EQ(b[9], "9");
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  // The moved-from vector must be reusable.
  a.push_back("fresh");
  EXPECT_EQ(a[0], "fresh");
}

TEST(SmallVecTest, MoveAssignReleasesOldContents) {
  SmallVec<std::shared_ptr<int>, 2> a;
  auto tracked = std::make_shared<int>(7);
  a.push_back(tracked);
  SmallVec<std::shared_ptr<int>, 2> b;
  for (int i = 0; i < 5; ++i) b.push_back(std::make_shared<int>(i));
  a = std::move(b);
  EXPECT_EQ(tracked.use_count(), 1);  // old element destroyed
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(*a[4], 4);
}

TEST(SmallVecTest, ClearKeepsCapacity) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SmallVecTest, AppendMovedDrainsSource) {
  SmallVec<std::unique_ptr<int>, 4> a;
  SmallVec<std::unique_ptr<int>, 4> b;
  for (int i = 0; i < 3; ++i) a.push_back(std::make_unique<int>(i));
  for (int i = 3; i < 9; ++i) b.push_back(std::make_unique<int>(i));
  a.AppendMoved(b);
  EXPECT_TRUE(b.empty());
  ASSERT_EQ(a.size(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(*a[static_cast<size_t>(i)], i);
}

TEST(SmallVecTest, RangeForIteration) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 6; ++i) v.push_back(i);
  int expected = 0;
  for (int x : v) EXPECT_EQ(x, expected++);
  EXPECT_EQ(expected, 6);
}

}  // namespace
}  // namespace genealog
