// TuplePool unit tests: size-class selection, same-thread recycling,
// thread-cache overflow into the central free list, cross-thread release
// (the TSan-gated path: producer allocates, a downstream thread drops the
// last reference), recycled-memory reinitialization, and the heap fallback —
// including runtime toggling with blocks in flight.
#include "common/tuple_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/memory_accounting.h"
#include "core/tuple.h"
#include "core/tuple_crtp.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::ValueTuple;

// Larger than the biggest size class: must fall back to the heap even with
// the pool enabled.
struct OversizeTuple final : TupleCrtp<OversizeTuple, 0x7F01> {
  static constexpr const char* kTypeName = "test.Oversize";

  explicit OversizeTuple(int64_t ts) : TupleCrtp(ts) { payload[0] = 0; }

  char payload[600];

  const char* type_name() const override { return kTypeName; }
  void SerializePayload(ByteWriter&) const override {}
};
static_assert(sizeof(OversizeTuple) > pool::kMaxPooledBytes);

class TuplePoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = pool::Enabled();
    pool::SetEnabled(true);
    pool::ResetStats();
  }
  void TearDown() override {
    pool::FlushThreadCache();
    pool::SetEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = true;
};

TEST_F(TuplePoolTest, SizeClassSelection) {
  EXPECT_EQ(pool::SizeClassFor(1), 0);
  EXPECT_EQ(pool::SizeClassFor(64), 0);
  EXPECT_EQ(pool::SizeClassFor(65), 1);
  EXPECT_EQ(pool::SizeClassFor(128), 1);
  EXPECT_EQ(pool::SizeClassFor(129), 2);
  EXPECT_EQ(pool::SizeClassFor(512), 7);
  EXPECT_EQ(pool::SizeClassFor(513), pool::kHeapClass);
  EXPECT_EQ(pool::ClassBytes(0), 64u);
  EXPECT_EQ(pool::ClassBytes(7), 512u);
  for (size_t bytes : {1u, 63u, 64u, 65u, 100u, 200u, 511u, 512u}) {
    const uint8_t cls = pool::SizeClassFor(bytes);
    ASSERT_NE(cls, pool::kHeapClass) << bytes;
    EXPECT_GE(pool::ClassBytes(cls), bytes) << bytes;
  }
}

TEST_F(TuplePoolTest, SameThreadReleaseRecyclesTheBlock) {
  void* first = nullptr;
  {
    auto t = MakeTuple<ValueTuple>(1, 42);
    first = t.get();
  }
  // The thread cache is LIFO, so the very next same-class allocation reuses
  // the released block.
  auto t2 = MakeTuple<ValueTuple>(2, 43);
  EXPECT_EQ(static_cast<void*>(t2.get()), first);
  const pool::Stats s = pool::GetStats();
  EXPECT_GE(s.pool_allocs, 2u);
  EXPECT_GE(s.recycled_allocs, 1u);
  EXPECT_GT(s.recycle_hit_rate(), 0.0);
}

TEST_F(TuplePoolTest, RecycledBlockIsFullyReinitialized) {
  auto source = MakeTuple<ValueTuple>(1, 7);
  void* released = nullptr;
  {
    auto derived = MakeTuple<ValueTuple>(2, 8);
    derived->kind = TupleKind::kMap;
    derived->set_u1(source.get());
    derived->set_baseline_annotation({1, 2, 3});
    released = derived.get();
  }
  auto fresh = MakeTuple<ValueTuple>(3, 9);
  ASSERT_EQ(static_cast<void*>(fresh.get()), released);
  // Placement construction must leave no stale provenance state behind.
  EXPECT_EQ(fresh->u1(), nullptr);
  EXPECT_EQ(fresh->u2(), nullptr);
  EXPECT_EQ(fresh->next(), nullptr);
  EXPECT_EQ(fresh->baseline_annotation(), nullptr);
  EXPECT_EQ(fresh->kind, TupleKind::kSource);
  EXPECT_EQ(fresh->id, 0u);
  EXPECT_EQ(fresh->ts, 3);
  EXPECT_EQ(fresh->value, 9);
}

TEST_F(TuplePoolTest, CacheOverflowSpillsToCentralFreeList) {
  // Far more than the thread cache holds: the overflow must land on the
  // central free list, where another thread can pick it up with no fresh
  // slab carving at all.
  constexpr int kTuples = 1000;
  std::vector<TuplePtr> live;
  live.reserve(kTuples);
  for (int i = 0; i < kTuples; ++i) {
    live.push_back(MakeTuple<ValueTuple>(i, i));
  }
  live.clear();
  pool::ResetStats();

  std::thread other([] {
    std::vector<TuplePtr> mine;
    constexpr int kOther = 256;
    mine.reserve(kOther);
    for (int i = 0; i < kOther; ++i) {
      mine.push_back(MakeTuple<ValueTuple>(i, i));
    }
    mine.clear();
    pool::FlushThreadCache();
  });
  other.join();

  const pool::Stats s = pool::GetStats();
  EXPECT_EQ(s.pool_allocs, 256u);
  EXPECT_EQ(s.recycled_allocs, 256u);
  EXPECT_DOUBLE_EQ(s.recycle_hit_rate(), 1.0);
}

TEST_F(TuplePoolTest, CrossThreadReleaseIsSafeAndRecycles) {
  const int64_t live_before = mem::LiveTupleCount();
  // Producer (this thread) allocates; a consumer thread drops the last
  // reference — the block migrates to the consumer's cache and, via its
  // thread-exit flush, back to the central list for the producer to reuse.
  constexpr int kRounds = 50;
  constexpr int kPerRound = 64;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<TuplePtr> batch;
    batch.reserve(kPerRound);
    for (int i = 0; i < kPerRound; ++i) {
      auto t = MakeTuple<ValueTuple>(i, i);
      if (i > 0) t->set_u1(batch.front().get());  // a little graph structure
      batch.push_back(std::move(t));
    }
    std::thread consumer([batch = std::move(batch)]() mutable {
      batch.clear();
    });
    consumer.join();
  }
  EXPECT_EQ(mem::LiveTupleCount(), live_before);
  const pool::Stats s = pool::GetStats();
  EXPECT_GT(s.recycled_allocs, 0u);
}

TEST_F(TuplePoolTest, ManyThreadsChurnConcurrently) {
  // Allocation and release race across threads, with handoff: each worker
  // allocates a graph, passes it through a shared slot, and frees whatever
  // graph it picked up from another worker.
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<TuplePtr> slots(kThreads * kIters);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w, &slots] {
      for (int i = 0; i < kIters; ++i) {
        auto t = MakeTuple<ValueTuple>(i, w);
        auto u = MakeTuple<ValueTuple>(i, w + 100);
        u->set_u1(t.get());
        slots[static_cast<size_t>(w * kIters + i)] = std::move(u);
      }
    });
  }
  for (auto& t : workers) t.join();
  workers.clear();
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w, &slots] {
      // Free the slots another thread filled.
      const int victim = (w + 1) % kThreads;
      for (int i = 0; i < kIters; ++i) {
        slots[static_cast<size_t>(victim * kIters + i)].reset();
      }
      pool::FlushThreadCache();
    });
  }
  for (auto& t : workers) t.join();
}

TEST_F(TuplePoolTest, OversizeTuplesFallBackToHeap) {
  pool::ResetStats();
  {
    auto big = MakeTuple<OversizeTuple>(1);
    EXPECT_EQ(big->u1(), nullptr);
  }
  const pool::Stats s = pool::GetStats();
  EXPECT_EQ(s.pool_allocs, 0u);
  EXPECT_GE(s.heap_allocs, 1u);
}

TEST_F(TuplePoolTest, DisabledPoolFallsBackToHeap) {
  pool::SetEnabled(false);
  pool::ResetStats();
  {
    auto t = MakeTuple<ValueTuple>(1, 5);
    EXPECT_EQ(t->value, 5);
  }
  const pool::Stats s = pool::GetStats();
  EXPECT_EQ(s.pool_allocs, 0u);
  EXPECT_GE(s.heap_allocs, 1u);
}

TEST_F(TuplePoolTest, ToggleMidFlightReleasesToTheRecordedOwner) {
  // Release is keyed on the class recorded at allocation, never on the
  // current setting — so toggling with blocks in flight cannot mismatch
  // allocate/release (ASan would flag either direction).
  auto pooled = MakeTuple<ValueTuple>(1, 1);
  pool::SetEnabled(false);
  auto heaped = MakeTuple<ValueTuple>(2, 2);
  pooled.reset();  // pool block released while the pool is off
  pool::SetEnabled(true);
  heaped.reset();  // heap block released while the pool is on
  const pool::Stats s = pool::GetStats();
  EXPECT_GE(s.heap_allocs, 1u);
  EXPECT_GE(s.pool_allocs, 1u);
}

TEST_F(TuplePoolTest, SlabAccountingIsVisible) {
  // Warm the pool, then confirm both stats and the memory-accounting gauge
  // report reserved slab bytes.
  std::vector<TuplePtr> live;
  for (int i = 0; i < 64; ++i) live.push_back(MakeTuple<ValueTuple>(i, i));
  live.clear();
  const pool::Stats s = pool::GetStats();
  EXPECT_GE(s.slabs, 1u);
  EXPECT_GT(s.slab_bytes, 0u);
  EXPECT_GE(mem::PoolSlabBytes(), static_cast<int64_t>(s.slab_bytes));
}

}  // namespace
}  // namespace genealog
