#include "smartgrid/smartgrid.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/type_registry.h"

namespace genealog::sg {
namespace {

SmartGridConfig SmallConfig() {
  SmartGridConfig config;
  config.n_meters = 20;
  config.n_days = 10;
  config.blackout_probability = 0.3;
  config.blackout_meters = 9;
  config.anomaly_probability = 0.05;
  config.seed = 31;
  return config;
}

TEST(SmartGridGeneratorTest, ReadingsAreSortedAndComplete) {
  auto config = SmallConfig();
  auto data = GenerateSmartGrid(config);
  ASSERT_EQ(data.readings.size(),
            static_cast<size_t>(config.n_meters) * config.n_days * 24);
  for (size_t i = 1; i < data.readings.size(); ++i) {
    EXPECT_LE(data.readings[i - 1]->ts, data.readings[i]->ts);
  }
  // One reading per meter per hour.
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const auto& r : data.readings) {
    EXPECT_TRUE(seen.insert({r->ts, r->meter_id}).second);
  }
}

TEST(SmartGridGeneratorTest, DeterministicForSameSeed) {
  auto a = GenerateSmartGrid(SmallConfig());
  auto b = GenerateSmartGrid(SmallConfig());
  ASSERT_EQ(a.readings.size(), b.readings.size());
  for (size_t i = 0; i < a.readings.size(); ++i) {
    EXPECT_EQ(a.readings[i]->cons, b.readings[i]->cons);
  }
  EXPECT_EQ(a.blackout_days, b.blackout_days);
  EXPECT_EQ(a.planted_anomalies, b.planted_anomalies);
}

TEST(SmartGridGeneratorTest, BlackoutDaysZeroOutChosenMeters) {
  auto config = SmallConfig();
  auto data = GenerateSmartGrid(config);
  ASSERT_FALSE(data.blackout_days.empty());
  // (day, meter) -> sum.
  std::map<std::pair<int64_t, int64_t>, double> sums;
  for (const auto& r : data.readings) sums[{r->ts / 24, r->meter_id}] += r->cons;
  for (int64_t day : data.blackout_days) {
    int zero_meters = 0;
    for (int m = 0; m < config.blackout_meters; ++m) {
      if (sums[{day, m}] == 0.0) ++zero_meters;
    }
    // A pending anomaly spike at hour 0 can lift one meter's sum above zero;
    // the rest must read exactly zero.
    EXPECT_GE(zero_meters, config.blackout_meters - 2) << "day " << day;
  }
}

TEST(SmartGridGeneratorTest, HealthyMetersConsume) {
  auto config = SmallConfig();
  config.blackout_probability = 0;
  config.anomaly_probability = 0;
  auto data = GenerateSmartGrid(config);
  for (const auto& r : data.readings) {
    EXPECT_GT(r->cons, 0.0);
    EXPECT_LT(r->cons, config.base_consumption + config.consumption_jitter + 0.01);
  }
}

TEST(SmartGridGeneratorTest, AnomalySpikesAtNextMidnight) {
  auto config = SmallConfig();
  config.blackout_probability = 0;
  config.anomaly_probability = 0.1;
  auto data = GenerateSmartGrid(config);
  ASSERT_FALSE(data.planted_anomalies.empty());
  std::map<std::pair<int64_t, int64_t>, double> reading;  // (ts, meter)
  for (const auto& r : data.readings) reading[{r->ts, r->meter_id}] = r->cons;
  for (const auto& [meter, day] : data.planted_anomalies) {
    if ((day + 1) * 24 >= config.n_days * 24) continue;  // beyond trace
    EXPECT_EQ((reading[{(day + 1) * 24, meter}]), config.anomaly_spike)
        << "meter " << meter << " day " << day;
    // The zeroed day (excluding a possible hour-0 spike of a previous
    // anomaly) reads zero.
    double tail_sum = 0;
    for (int64_t h = 1; h < 24; ++h) tail_sum += reading[{day * 24 + h, meter}];
    EXPECT_EQ(tail_sum, 0.0);
  }
}

TEST(ReferenceBlackoutsTest, CountsMetersAboveThreshold) {
  std::vector<IntrusivePtr<MeterReading>> readings;
  // Day 0: meters 0..8 read zero all day, meter 9 consumes.
  for (int64_t h = 0; h < 24; ++h) {
    for (int64_t m = 0; m < 10; ++m) {
      readings.push_back(
          MakeTuple<MeterReading>(h, m, m == 9 ? 1.0 : 0.0));
    }
  }
  auto events = ReferenceBlackouts(readings, 7);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].day, 0);
  EXPECT_EQ(events[0].meter_count, 9);
}

TEST(ReferenceBlackoutsTest, BelowThresholdNoEvent) {
  std::vector<IntrusivePtr<MeterReading>> readings;
  for (int64_t h = 0; h < 24; ++h) {
    for (int64_t m = 0; m < 10; ++m) {
      readings.push_back(MakeTuple<MeterReading>(h, m, m < 7 ? 0.0 : 1.0));
    }
  }
  EXPECT_TRUE(ReferenceBlackouts(readings, 7).empty());
}

TEST(ReferenceAnomaliesTest, DetectsCompensationSpike) {
  std::vector<IntrusivePtr<MeterReading>> readings;
  // Meter 0: day 0 zero, midnight of day 1 = 300. Meter 1 healthy (cons 2).
  for (int64_t h = 0; h < 48; ++h) {
    const bool midnight_spike = h == 24;
    readings.push_back(MakeTuple<MeterReading>(
        h, 0, h < 24 ? 0.0 : (midnight_spike ? 300.0 : 2.0)));
    readings.push_back(MakeTuple<MeterReading>(h, 1, 2.0));
  }
  auto events = ReferenceAnomalies(readings, 200.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].day, 0);
  EXPECT_EQ(events[0].meter_id, 0);
  EXPECT_NEAR(events[0].diff, 300.0, 1e-9);
}

TEST(ReferenceAnomaliesTest, GeneratorAnomaliesAreDetected) {
  auto config = SmallConfig();
  config.blackout_probability = 0;  // isolate anomalies
  auto data = GenerateSmartGrid(config);
  auto events = ReferenceAnomalies(data.readings, 200.0);
  // Every planted anomaly whose next midnight is inside the trace must be
  // found (spike 300 vs zero-day sum <= spike-at-hour-0 edge cases aside,
  // diff >= 300 - 24*3 > 200).
  size_t in_range = 0;
  for (const auto& [meter, day] : data.planted_anomalies) {
    if ((day + 1) * 24 < config.n_days * 24) ++in_range;
  }
  EXPECT_GE(events.size(), in_range);
}

TEST(SmartGridSchemaTest, SerializationRoundTrips) {
  auto reading = MakeTuple<MeterReading>(7, 3, 1.25);
  auto daily = MakeTuple<DailyConsumption>(24, 3, 30.5);
  auto count = MakeTuple<ZeroDayCount>(24, 9);
  auto diff = MakeTuple<ConsumptionDiff>(24, 3, 299.75);
  for (const Tuple* t :
       {static_cast<const Tuple*>(reading.get()),
        static_cast<const Tuple*>(daily.get()),
        static_cast<const Tuple*>(count.get()),
        static_cast<const Tuple*>(diff.get())}) {
    ByteWriter w;
    SerializeTuple(*t, w);
    ByteReader r(w.bytes());
    TuplePtr back = DeserializeTuple(r);
    EXPECT_EQ(back->type_tag(), t->type_tag());
    EXPECT_EQ(back->ts, t->ts);
    EXPECT_EQ(back->DebugPayload(), t->DebugPayload());
  }
}

}  // namespace
}  // namespace genealog::sg
