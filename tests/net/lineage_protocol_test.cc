// Lineage protocol: every message kind must round-trip exactly (with and
// without body compression), and hostile bytes — truncated prefixes, random
// byte flips, oversized declared counts — must be rejected with named errors
// or decode to something valid, never crash or over-allocate (same contract
// and fuzz style as frame_codec_test).
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

#include "common/serialize.h"
#include "net/frame.h"
#include "net/lineage_protocol.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;

LineageStore::Entry MakeEntry(uint64_t id, int64_t ts, int64_t value) {
  LineageStore::Entry e;
  e.tuple = V(ts, value);
  e.tuple->id = id;
  e.id = id;
  e.ts = ts;
  e.type_tag = e.tuple->type_tag();
  return e;
}

// Canonical byte form of an entry list (ids/ts/type tags are recovered from
// the serialized tuples, so tuple bytes are the whole comparison).
std::vector<uint8_t> CanonicalEntries(
    const std::vector<LineageStore::Entry>& entries) {
  ByteWriter w;
  for (const auto& e : entries) SerializeTuple(*e.tuple, w);
  return w.TakeBytes();
}

TEST(LineageProtocolTest, HelloRoundTrips) {
  LineageHello hello;
  hello.generation = 42;
  const auto frame = EncodeLineageHello(hello);
  const LineageHello decoded = DecodeLineageHello(frame);
  EXPECT_EQ(decoded.version, kLineageProtocolVersion);
  EXPECT_EQ(decoded.generation, 42);
}

TEST(LineageProtocolTest, HelloRejectsWrongMagicAndVersion) {
  auto frame = EncodeLineageHello({});
  auto bad_magic = frame;
  bad_magic[1] ^= 0xFF;  // kind byte, then magic
  EXPECT_THROW(DecodeLineageHello(bad_magic), std::runtime_error);
  auto bad_version = frame;
  bad_version[5] ^= 0xFF;
  EXPECT_THROW(DecodeLineageHello(bad_version), std::runtime_error);
  auto wrong_kind = frame;
  wrong_kind[0] = static_cast<uint8_t>(LineageMsg::kRequest);
  EXPECT_ANY_THROW(DecodeLineageHello(wrong_kind));
}

TEST(LineageProtocolTest, RequestsRoundTripEveryOp) {
  for (const LineageOp op :
       {LineageOp::kContributors, LineageOp::kDerivedFrom, LineageOp::kExpand,
        LineageOp::kLookup, LineageOp::kRetainedRecordIds, LineageOp::kStats,
        LineageOp::kSelect, LineageOp::kShutdown}) {
    LineageRequest req;
    req.op = op;
    req.request_id = 0x1234567;
    req.tuple_id = 0xABCDEF0123ull;
    req.hops = 3;
    req.predicate.min_ts = -100;
    req.predicate.max_ts = 100;
    req.predicate.has_node_uid = true;
    req.predicate.node_uid = 9;
    req.predicate.records_only = true;
    req.predicate.limit = 17;

    const LineageRequest decoded =
        DecodeLineageRequest(EncodeLineageRequest(req));
    EXPECT_EQ(decoded.op, op);
    EXPECT_EQ(decoded.request_id, req.request_id);
    switch (op) {
      case LineageOp::kContributors:
      case LineageOp::kDerivedFrom:
      case LineageOp::kLookup:
        EXPECT_EQ(decoded.tuple_id, req.tuple_id);
        break;
      case LineageOp::kExpand:
        EXPECT_EQ(decoded.tuple_id, req.tuple_id);
        EXPECT_EQ(decoded.hops, 3);
        break;
      case LineageOp::kSelect:
        EXPECT_EQ(decoded.predicate.min_ts, -100);
        EXPECT_EQ(decoded.predicate.max_ts, 100);
        EXPECT_TRUE(decoded.predicate.has_node_uid);
        EXPECT_EQ(decoded.predicate.node_uid, 9u);
        EXPECT_TRUE(decoded.predicate.records_only);
        EXPECT_EQ(decoded.predicate.limit, 17u);
        break;
      default:
        break;  // no args
    }
  }
}

TEST(LineageProtocolTest, EntryListResponsesRoundTrip) {
  for (const bool compress : {false, true}) {
    LineageResponse resp;
    resp.op = LineageOp::kContributors;
    resp.request_id = 7;
    // Enough repetitive entries that the LZ path actually engages.
    for (int i = 0; i < 64; ++i) {
      resp.entries.push_back(
          MakeEntry((uint64_t{3} << 40) | static_cast<uint64_t>(i), 100 + i,
                    i % 4));
    }
    const LineageResponse decoded =
        DecodeLineageResponse(EncodeLineageResponse(resp, compress));
    EXPECT_EQ(decoded.op, LineageOp::kContributors);
    EXPECT_EQ(decoded.request_id, 7u);
    EXPECT_TRUE(decoded.ok);
    ASSERT_EQ(decoded.entries.size(), resp.entries.size());
    EXPECT_EQ(CanonicalEntries(decoded.entries),
              CanonicalEntries(resp.entries));
    for (size_t i = 0; i < decoded.entries.size(); ++i) {
      EXPECT_EQ(decoded.entries[i].id, resp.entries[i].id);
      EXPECT_EQ(decoded.entries[i].ts, resp.entries[i].ts);
      EXPECT_EQ(decoded.entries[i].type_tag, resp.entries[i].type_tag);
    }
  }
}

TEST(LineageProtocolTest, IdStatsAndErrorResponsesRoundTrip) {
  LineageResponse ids;
  ids.op = LineageOp::kRetainedRecordIds;
  ids.request_id = 1;
  // Deliberately unsorted: delta coding must not assume monotone ids.
  ids.ids = {500, 3, 0xFFFFFFFFFFull, 3, 7};
  const LineageResponse ids_decoded =
      DecodeLineageResponse(EncodeLineageResponse(ids, true));
  EXPECT_EQ(ids_decoded.ids, ids.ids);

  LineageResponse stats;
  stats.op = LineageOp::kStats;
  stats.request_id = 2;
  stats.stats.records_ingested = 1000;
  stats.stats.records_retained = 900;
  stats.stats.tuples_retained = 5000;
  stats.stats.edges_retained = 4100;
  stats.stats.records_evicted = 100;
  stats.stats.epochs_evicted = 3;
  stats.stats.bytes_retained = 123456;
  stats.stats.node_uids = 7;
  stats.stats.min_retained_ts = -5;
  stats.stats.max_retained_ts = 995;
  const LineageResponse stats_decoded =
      DecodeLineageResponse(EncodeLineageResponse(stats, false));
  EXPECT_EQ(stats_decoded.stats.records_ingested, 1000u);
  EXPECT_EQ(stats_decoded.stats.records_retained, 900u);
  EXPECT_EQ(stats_decoded.stats.tuples_retained, 5000u);
  EXPECT_EQ(stats_decoded.stats.edges_retained, 4100u);
  EXPECT_EQ(stats_decoded.stats.records_evicted, 100u);
  EXPECT_EQ(stats_decoded.stats.epochs_evicted, 3u);
  EXPECT_EQ(stats_decoded.stats.bytes_retained, 123456u);
  EXPECT_EQ(stats_decoded.stats.node_uids, 7u);
  EXPECT_EQ(stats_decoded.stats.min_retained_ts, -5);
  EXPECT_EQ(stats_decoded.stats.max_retained_ts, 995);

  LineageResponse err;
  err.op = LineageOp::kExpand;
  err.request_id = 3;
  err.ok = false;
  err.error = "store evicted the epoch";
  const LineageResponse err_decoded =
      DecodeLineageResponse(EncodeLineageResponse(err, true));
  EXPECT_FALSE(err_decoded.ok);
  EXPECT_EQ(err_decoded.error, "store evicted the epoch");
}

TEST(LineageProtocolTest, TruncatedFramesAreRejected) {
  // Each frame paired with the decoder that must reject every strict prefix.
  using Decode = void (*)(const std::vector<uint8_t>&);
  std::vector<std::pair<std::vector<uint8_t>, Decode>> cases;
  cases.emplace_back(EncodeLineageHello({}), +[](const std::vector<uint8_t>& f) {
    DecodeLineageHello(f);
  });
  LineageRequest req;
  req.op = LineageOp::kSelect;
  req.request_id = 99;
  req.predicate.has_node_uid = true;
  cases.emplace_back(EncodeLineageRequest(req),
                     +[](const std::vector<uint8_t>& f) {
                       DecodeLineageRequest(f);
                     });
  LineageResponse resp;
  resp.op = LineageOp::kLookup;
  resp.request_id = 99;
  resp.entries.push_back(MakeEntry(1, 2, 3));
  for (const bool compress : {false, true}) {
    cases.emplace_back(EncodeLineageResponse(resp, compress),
                       +[](const std::vector<uint8_t>& f) {
                         DecodeLineageResponse(f);
                       });
  }

  for (size_t c = 0; c < cases.size(); ++c) {
    const auto& [full, decode] = cases[c];
    for (size_t len = 0; len < full.size(); ++len) {
      const std::vector<uint8_t> cut(full.begin(), full.begin() + len);
      EXPECT_ANY_THROW(decode(cut)) << "case " << c << " prefix " << len;
    }
  }
}

TEST(LineageProtocolTest, RandomByteFlipsNeverCrash) {
  std::mt19937_64 rng(17);
  LineageResponse resp;
  resp.op = LineageOp::kContributors;
  resp.request_id = 1;
  for (int i = 0; i < 32; ++i) {
    resp.entries.push_back(MakeEntry(100 + i, i, i));
  }
  const std::vector<std::vector<uint8_t>> frames = {
      EncodeLineageHello({}),
      EncodeLineageRequest({LineageOp::kExpand, 5, 12, 2, {}}),
      EncodeLineageResponse(resp, /*block_compress=*/false),
      EncodeLineageResponse(resp, /*block_compress=*/true),
  };
  for (const auto& frame : frames) {
    for (int trial = 0; trial < 200; ++trial) {
      auto corrupt = frame;
      corrupt[rng() % corrupt.size()] ^=
          static_cast<uint8_t>(1 + rng() % 255);
      // Rejected with a named error or decoded to some valid message; never
      // a crash, hang, or unbounded allocation.
      try {
        DecodeLineageHello(corrupt);
      } catch (const std::exception&) {
      }
      try {
        DecodeLineageRequest(corrupt);
      } catch (const std::exception&) {
      }
      try {
        DecodeLineageResponse(corrupt);
      } catch (const std::exception&) {
      }
    }
  }
}

TEST(LineageProtocolTest, OversizedDeclaredCountsAreRejectedNotAllocated) {
  // A response claiming 2^40 entries in a tiny frame must fail the count
  // bound, not reserve terabytes.
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(LineageMsg::kResponse));
  w.PutU8(static_cast<uint8_t>(LineageOp::kContributors));
  PutVarint(w, 1);   // request id
  w.PutU8(0);        // status ok
  w.PutU8(0);        // flags: uncompressed
  PutVarint(w, uint64_t{1} << 40);  // entry count >> remaining bytes
  const std::vector<uint8_t> frame = w.TakeBytes();
  EXPECT_THROW(DecodeLineageResponse(frame), std::runtime_error);

  // Same for the id list and for a compressed body declaring > 64 MiB raw.
  ByteWriter w2;
  w2.PutU8(static_cast<uint8_t>(LineageMsg::kResponse));
  w2.PutU8(static_cast<uint8_t>(LineageOp::kRetainedRecordIds));
  PutVarint(w2, 1);
  w2.PutU8(0);
  w2.PutU8(0);
  PutVarint(w2, uint64_t{1} << 50);
  EXPECT_THROW(DecodeLineageResponse(w2.TakeBytes()), std::runtime_error);

  ByteWriter w3;
  w3.PutU8(static_cast<uint8_t>(LineageMsg::kResponse));
  w3.PutU8(static_cast<uint8_t>(LineageOp::kStats));
  PutVarint(w3, 1);
  w3.PutU8(0);
  w3.PutU8(1);                        // compressed
  PutVarint(w3, uint64_t{1} << 60);   // declared raw size: absurd
  w3.PutU8(0);
  EXPECT_THROW(DecodeLineageResponse(w3.TakeBytes()), std::runtime_error);
}

TEST(LineageProtocolTest, UnknownOpsAndTrailingBytesAreRejected) {
  LineageRequest req;
  req.op = LineageOp::kStats;
  req.request_id = 4;
  auto frame = EncodeLineageRequest(req);
  auto bad_op = frame;
  bad_op[1] = 200;  // op byte outside [1, 8]
  EXPECT_THROW(DecodeLineageRequest(bad_op), std::runtime_error);

  auto trailing = frame;
  trailing.push_back(0xEE);
  EXPECT_THROW(DecodeLineageRequest(trailing), std::runtime_error);

  LineageResponse resp;
  resp.op = LineageOp::kStats;
  resp.request_id = 4;
  auto rframe = EncodeLineageResponse(resp, false);
  auto bad_flags = rframe;
  // flags byte: offset 1 (op) is fixed; locate flags as the byte after
  // status. Layout: kind | op | varint id | status | flags | body.
  // request_id 4 is a 1-byte varint, so flags sits at offset 4.
  bad_flags[4] = 0x80;  // unknown flag bit
  EXPECT_THROW(DecodeLineageResponse(bad_flags), std::runtime_error);
}

}  // namespace
}  // namespace genealog
