#include "net/channel.h"

#include <gtest/gtest.h>

#include <thread>

#include "net/frame.h"
#include "net/send_receive.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::V;
using testing::ValueTuple;

TEST(FrameTest, TupleFrameRoundTrip) {
  auto t = V(5, 42);
  t->id = 99;
  t->kind = TupleKind::kAggregate;
  auto frame = EncodeTupleFrame(*t, /*remotify=*/false);
  DecodedFrame decoded = DecodeFrame(frame);
  ASSERT_EQ(decoded.kind, FrameKind::kTuple);
  EXPECT_EQ(decoded.tuple->ts, 5);
  EXPECT_EQ(decoded.tuple->id, 99u);
  EXPECT_EQ(decoded.tuple->kind, TupleKind::kAggregate);
  EXPECT_EQ(static_cast<ValueTuple&>(*decoded.tuple).value, 42);
}

TEST(FrameTest, RemotifiedTupleFrame) {
  auto t = V(5, 42);
  t->kind = TupleKind::kMap;
  DecodedFrame decoded = DecodeFrame(EncodeTupleFrame(*t, /*remotify=*/true));
  EXPECT_EQ(decoded.tuple->kind, TupleKind::kRemote);
  EXPECT_EQ(t->kind, TupleKind::kMap);  // local object untouched
}

TEST(FrameTest, WatermarkAndFlushFrames) {
  DecodedFrame wm = DecodeFrame(EncodeWatermarkFrame(-17));
  ASSERT_EQ(wm.kind, FrameKind::kWatermark);
  EXPECT_EQ(wm.watermark, -17);
  EXPECT_EQ(DecodeFrame(EncodeFlushFrame()).kind, FrameKind::kFlush);
}

TEST(FrameTest, MalformedFrameThrows) {
  EXPECT_THROW(DecodeFrame({0x77}), std::runtime_error);
}

TEST(InMemoryChannelTest, FramesArriveInOrder) {
  InMemoryChannel channel(16);
  channel.SendFrame({1, 2, 3});
  channel.SendFrame({4, 5});
  std::vector<uint8_t> frame;
  ASSERT_TRUE(channel.RecvFrame(frame));
  EXPECT_EQ(frame, (std::vector<uint8_t>{1, 2, 3}));
  ASSERT_TRUE(channel.RecvFrame(frame));
  EXPECT_EQ(frame, (std::vector<uint8_t>{4, 5}));
}

TEST(InMemoryChannelTest, CloseSendDrainsThenEnds) {
  InMemoryChannel channel(16);
  channel.SendFrame({9});
  channel.CloseSend();
  std::vector<uint8_t> frame;
  EXPECT_TRUE(channel.RecvFrame(frame));
  EXPECT_FALSE(channel.RecvFrame(frame));
}

TEST(InMemoryChannelTest, CountsBytesSent) {
  InMemoryChannel channel(16);
  channel.SendFrame({1, 2, 3});
  channel.SendFrame({4});
  EXPECT_EQ(channel.bytes_sent(), 4u);
}

TEST(InMemoryChannelTest, AbortUnblocksReceiver) {
  InMemoryChannel channel(4);
  std::thread receiver([&] {
    std::vector<uint8_t> frame;
    EXPECT_FALSE(channel.RecvFrame(frame));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  channel.Abort();
  receiver.join();
}

TEST(TcpChannelTest, FramesCrossLoopback) {
  auto [sender, receiver] = MakeTcpChannelPair();
  ASSERT_TRUE(sender->SendFrame({1, 2, 3, 4, 5}));
  std::vector<uint8_t> frame;
  ASSERT_TRUE(receiver->RecvFrame(frame));
  EXPECT_EQ(frame, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
}

TEST(TcpChannelTest, LargeFrame) {
  auto [sender, receiver] = MakeTcpChannelPair();
  std::vector<uint8_t> big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  std::thread tx([&, s = sender.get()] {
    EXPECT_TRUE(s->SendFrame(big));
  });
  std::vector<uint8_t> frame;
  ASSERT_TRUE(receiver->RecvFrame(frame));
  tx.join();
  EXPECT_EQ(frame, big);
}

TEST(TcpChannelTest, CloseSendSignalsEndOfStream) {
  auto [sender, receiver] = MakeTcpChannelPair();
  sender->SendFrame({7});
  sender->CloseSend();
  std::vector<uint8_t> frame;
  EXPECT_TRUE(receiver->RecvFrame(frame));
  EXPECT_FALSE(receiver->RecvFrame(frame));
}

// --- Send/Receive operators across two instances ----------------------------

struct BridgeRun {
  Collector collector;
  uint64_t bytes = 0;
};

BridgeRun RunAcrossBridge(ByteChannel* send_end, ByteChannel* recv_end,
                          ProvenanceMode mode) {
  BridgeRun run;
  Topology instance1(1, mode);
  Topology instance2(2, mode);
  std::vector<IntrusivePtr<ValueTuple>> data;
  for (int i = 0; i < 100; ++i) data.push_back(V(i, i * 2));
  auto* source =
      instance1.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
  auto* map = instance1.Add<MapNode<ValueTuple, ValueTuple>>(
      "map", [](const ValueTuple& in, MapCollector<ValueTuple>& out) {
        out.Emit(MakeTuple<ValueTuple>(0, in.value + 1));
      });
  auto* send = instance1.Add<SendNode>("send", send_end);
  auto* recv = instance2.Add<ReceiveNode>("recv", recv_end);
  auto* sink = run.collector.AttachSink(instance2);
  instance1.Connect(source, map);
  instance1.Connect(map, send);
  instance2.Connect(recv, sink);
  Runner runner({&instance1, &instance2});
  runner.Start();
  runner.Join();
  run.bytes = send_end->bytes_sent();
  return run;
}

TEST(SendReceiveTest, TuplesCrossInMemoryChannel) {
  InMemoryChannel channel;
  BridgeRun run = RunAcrossBridge(&channel, &channel, ProvenanceMode::kNone);
  ASSERT_EQ(run.collector.tuples().size(), 100u);
  EXPECT_EQ(run.collector.at<ValueTuple>(0).value, 1);
  EXPECT_EQ(run.collector.at<ValueTuple>(99).value, 199);
  EXPECT_GT(run.bytes, 0u);
}

TEST(SendReceiveTest, TuplesCrossTcpChannel) {
  auto [sender, receiver] = MakeTcpChannelPair();
  BridgeRun run =
      RunAcrossBridge(sender.get(), receiver.get(), ProvenanceMode::kNone);
  ASSERT_EQ(run.collector.tuples().size(), 100u);
  EXPECT_EQ(run.collector.at<ValueTuple>(99).value, 199);
}

TEST(SendReceiveTest, CreatedTuplesBecomeRemote) {
  InMemoryChannel channel;
  BridgeRun run =
      RunAcrossBridge(&channel, &channel, ProvenanceMode::kGenealog);
  ASSERT_EQ(run.collector.tuples().size(), 100u);
  // Map-created tuples arrive as REMOTE with no meta pointers.
  EXPECT_EQ(run.collector.tuples()[0]->kind, TupleKind::kRemote);
  EXPECT_EQ(run.collector.tuples()[0]->u1(), nullptr);
}

TEST(SendReceiveTest, IdsPreservedAcrossBoundary) {
  InMemoryChannel channel;
  Topology instance1(1);
  Topology instance2(2);
  auto* source = instance1.Add<VectorSourceNode<ValueTuple>>(
      "src", std::vector<IntrusivePtr<ValueTuple>>{V(1, 10), V(2, 20)});
  auto* send = instance1.Add<SendNode>("send", &channel);
  auto* recv = instance2.Add<ReceiveNode>("recv", &channel);
  Collector received;
  auto* sink = received.AttachSink(instance2);
  instance1.Connect(source, send);
  instance2.Connect(recv, sink);
  Runner runner({&instance1, &instance2});
  runner.Start();
  runner.Join();

  ASSERT_EQ(received.tuples().size(), 2u);
  EXPECT_NE(received.tuples()[0]->id, 0u);
  EXPECT_NE(received.tuples()[0]->id, received.tuples()[1]->id);
  // Source tuples keep their SOURCE kind across the boundary (§4.1).
  EXPECT_EQ(received.tuples()[0]->kind, TupleKind::kSource);
}

TEST(SendReceiveTest, AnnotationsCrossBoundary) {
  InMemoryChannel channel;
  Topology instance1(1, ProvenanceMode::kBaseline);
  Topology instance2(2, ProvenanceMode::kBaseline);
  auto* source = instance1.Add<VectorSourceNode<ValueTuple>>(
      "src", std::vector<IntrusivePtr<ValueTuple>>{V(1, 10)});
  auto* send = instance1.Add<SendNode>("send", &channel);
  auto* recv = instance2.Add<ReceiveNode>("recv", &channel);
  Collector received;
  auto* sink = received.AttachSink(instance2);
  instance1.Connect(source, send);
  instance2.Connect(recv, sink);
  Runner runner({&instance1, &instance2});
  runner.Start();
  runner.Join();

  ASSERT_EQ(received.tuples().size(), 1u);
  ASSERT_NE(received.tuples()[0]->baseline_annotation(), nullptr);
  EXPECT_EQ(received.tuples()[0]->baseline_annotation()->size(), 1u);
}

TEST(SendReceiveTest, WatermarksDriveDownstreamMerges) {
  // Two bridged streams merged by a Union at instance 2: the merge can only
  // progress if watermarks cross the channels.
  InMemoryChannel ch_a;
  InMemoryChannel ch_b;
  Topology instance1(1);
  Topology instance2(2);
  std::vector<IntrusivePtr<ValueTuple>> da;
  std::vector<IntrusivePtr<ValueTuple>> db;
  for (int i = 0; i < 50; ++i) {
    da.push_back(V(2 * i, i));
    db.push_back(V(2 * i + 1, 100 + i));
  }
  auto* sa = instance1.Add<VectorSourceNode<ValueTuple>>("sa", std::move(da));
  auto* sb = instance1.Add<VectorSourceNode<ValueTuple>>("sb", std::move(db));
  auto* send_a = instance1.Add<SendNode>("send_a", &ch_a);
  auto* send_b = instance1.Add<SendNode>("send_b", &ch_b);
  auto* recv_a = instance2.Add<ReceiveNode>("recv_a", &ch_a);
  auto* recv_b = instance2.Add<ReceiveNode>("recv_b", &ch_b);
  auto* merge = instance2.Add<UnionNode>("union");
  Collector collector;
  auto* sink = collector.AttachSink(instance2);
  instance1.Connect(sa, send_a);
  instance1.Connect(sb, send_b);
  instance2.Connect(recv_a, merge);
  instance2.Connect(recv_b, merge);
  instance2.Connect(merge, sink);
  Runner runner({&instance1, &instance2});
  runner.Start();
  runner.Join();

  ASSERT_EQ(collector.tuples().size(), 100u);
  const auto ts = collector.Timestamps();
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  EXPECT_EQ(ts.front(), 0);
  EXPECT_EQ(ts.back(), 99);
}

}  // namespace
}  // namespace genealog
