// Compact wire codec: the decoded stream must be byte-identical to the raw
// codec's for every batch shape, watermark placement, dictionary state and
// reset point — and malformed input must be rejected, never mis-decoded.
#include <gtest/gtest.h>

#include <random>

#include "common/serialize.h"
#include "net/frame.h"
#include "spe/stream_batch.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::KeyedTuple;
using testing::V;
using testing::ValueTuple;

// Serializes every decoded tuple (full header + payload) so two decode paths
// can be compared byte-for-byte.
std::vector<uint8_t> CanonicalBytes(const std::vector<TuplePtr>& tuples) {
  ByteWriter w;
  for (const TuplePtr& t : tuples) SerializeTuple(*t, w);
  return w.TakeBytes();
}

std::vector<TuplePtr> DecodeAll(FrameDecoder& decoder,
                                const std::vector<std::vector<uint8_t>>& frames,
                                std::vector<int64_t>* watermarks = nullptr) {
  std::vector<TuplePtr> out;
  for (const auto& frame : frames) {
    DecodedFrame d = decoder.Decode(frame);
    switch (d.kind) {
      case FrameKind::kTuple:
        out.push_back(d.tuple);
        break;
      case FrameKind::kBatch:
      case FrameKind::kCompactBatch:
        for (auto& t : d.tuples) out.push_back(std::move(t));
        if (watermarks != nullptr && d.watermark != kNoWatermark) {
          watermarks->push_back(d.watermark);
        }
        break;
      case FrameKind::kWatermark:
        if (watermarks != nullptr) watermarks->push_back(d.watermark);
        break;
      case FrameKind::kFlush:
        break;
    }
  }
  return out;
}

TuplePtr RandomTuple(std::mt19937_64& rng, int64_t i) {
  TuplePtr t;
  if (rng() % 2 == 0) {
    t = MakeTuple<ValueTuple>(static_cast<int64_t>(rng() % 1000), i);
  } else {
    t = MakeTuple<KeyedTuple>(static_cast<int64_t>(rng() % 1000), i,
                              static_cast<double>(rng() % 97) / 7.0);
  }
  // Ids as the instrumented engine makes them: uid high 24 bits, dense
  // per-uid sequence low 40.
  const uint64_t uid = rng() % 5;
  t->id = (uid << 40) | (static_cast<uint64_t>(i) + rng() % 3);
  t->kind = static_cast<TupleKind>(rng() % 6);
  t->stimulus = static_cast<int64_t>(rng() % 100000) - 50000;
  if (rng() % 4 == 0) {
    std::vector<uint64_t> ann;
    const size_t n = rng() % 5;
    uint64_t id = rng() % 1000;
    for (size_t j = 0; j < n; ++j) ann.push_back(id += rng() % 50);
    t->set_baseline_annotation(std::move(ann));
  }
  return t;
}

TEST(FrameCodecTest, CompactBatchRoundTripsAllFields) {
  std::vector<TuplePtr> batch;
  for (int i = 0; i < 10; ++i) {
    auto t = V(100 + i, i);
    t->id = (uint64_t{7} << 40) | static_cast<uint64_t>(i + 1);
    t->kind = TupleKind::kAggregate;
    t->stimulus = 1000000 + i;
    batch.push_back(t);
  }
  FrameEncoder encoder({WireCodec::kCompact, true});
  auto frames = encoder.EncodeBatch(batch, /*watermark=*/109, false);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0][0], static_cast<uint8_t>(FrameKind::kCompactBatch));

  FrameDecoder decoder;
  std::vector<int64_t> wms;
  auto decoded = DecodeAll(decoder, frames, &wms);
  ASSERT_EQ(decoded.size(), batch.size());
  EXPECT_EQ(CanonicalBytes(decoded), CanonicalBytes(batch));
  ASSERT_EQ(wms.size(), 1u);
  EXPECT_EQ(wms[0], 109);
}

TEST(FrameCodecTest, CompactEqualsRawAtEveryBatchSize) {
  std::mt19937_64 rng(42);
  for (size_t batch_size : {1u, 2u, 3u, 7u, 64u}) {
    std::vector<TuplePtr> stream;
    for (int64_t i = 0; i < 200; ++i) stream.push_back(RandomTuple(rng, i));

    for (bool remotify : {false, true}) {
      std::vector<TuplePtr> raw_decoded, compact_decoded;
      std::vector<int64_t> raw_wms, compact_wms;
      for (auto [codec, decoded, wms] :
           {std::tuple{WireCodec::kRaw, &raw_decoded, &raw_wms},
            std::tuple{WireCodec::kCompact, &compact_decoded, &compact_wms}}) {
        FrameEncoder encoder({codec, true});
        FrameDecoder decoder;
        for (size_t i = 0; i < stream.size(); i += batch_size) {
          const size_t n = std::min(batch_size, stream.size() - i);
          const int64_t wm =
              (i / batch_size) % 3 == 0 ? stream[i + n - 1]->ts : kNoWatermark;
          auto frames = encoder.EncodeBatch(
              std::span<const TuplePtr>(stream.data() + i, n), wm, remotify);
          auto part = DecodeAll(decoder, frames, wms);
          decoded->insert(decoded->end(), part.begin(), part.end());
        }
      }
      ASSERT_EQ(compact_decoded.size(), stream.size());
      EXPECT_EQ(CanonicalBytes(compact_decoded), CanonicalBytes(raw_decoded))
          << "batch_size=" << batch_size << " remotify=" << remotify;
      EXPECT_EQ(compact_wms, raw_wms);
    }
  }
}

TEST(FrameCodecTest, FuzzRandomBatchesWatermarksAndResets) {
  std::mt19937_64 rng(1234);
  for (int round = 0; round < 30; ++round) {
    FrameEncoder raw_enc({WireCodec::kRaw, false});
    FrameEncoder compact_enc(
        {WireCodec::kCompact, /*block_compress=*/round % 2 == 0});
    FrameDecoder raw_dec, compact_dec;
    std::vector<TuplePtr> raw_out, compact_out;
    std::vector<int64_t> raw_wms, compact_wms;

    int64_t seq = 0;
    const int n_batches = 1 + static_cast<int>(rng() % 20);
    for (int b = 0; b < n_batches; ++b) {
      if (rng() % 5 == 0) {
        // Mid-stream reconnect: both sides of the compact channel restart;
        // the raw stream is stateless so only the compact encoder resets.
        compact_enc.Reset();
      }
      std::vector<TuplePtr> batch;
      const size_t count = rng() % 8;  // including empty batches
      for (size_t i = 0; i < count; ++i) {
        batch.push_back(RandomTuple(rng, seq++));
      }
      const int64_t wm =
          rng() % 2 == 0 ? static_cast<int64_t>(rng() % 4096) - 48
                         : kNoWatermark;
      const bool remotify = rng() % 2 == 0;
      auto a = DecodeAll(raw_dec, raw_enc.EncodeBatch(batch, wm, remotify),
                         &raw_wms);
      auto c = DecodeAll(compact_dec,
                         compact_enc.EncodeBatch(batch, wm, remotify),
                         &compact_wms);
      raw_out.insert(raw_out.end(), a.begin(), a.end());
      compact_out.insert(compact_out.end(), c.begin(), c.end());
    }
    ASSERT_EQ(CanonicalBytes(compact_out), CanonicalBytes(raw_out))
        << "round " << round;
    EXPECT_EQ(compact_wms, raw_wms) << "round " << round;
  }
}

TEST(FrameCodecTest, EncoderResetIsDecoderSafe) {
  // A decoder that followed generation 0 must survive the sender resetting:
  // the first post-reset frame redefines every dictionary entry it uses.
  FrameEncoder encoder({WireCodec::kCompact, true});
  FrameDecoder decoder;
  std::vector<TuplePtr> batch = {V(10, 1), V(11, 2)};
  for (auto& t : batch) t->id = (uint64_t{3} << 40) | 1;
  DecodeAll(decoder, encoder.EncodeBatch(batch, kNoWatermark, false));

  encoder.Reset();
  auto decoded =
      DecodeAll(decoder, encoder.EncodeBatch(batch, kNoWatermark, false));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(CanonicalBytes(decoded), CanonicalBytes(batch));
}

TEST(FrameCodecTest, FreshDecoderRejectsDanglingDictionaryReferences) {
  // Joining a compact stream mid-generation (frame 2 references entries
  // defined in frame 1) must fail loudly, not fabricate tuples.
  FrameEncoder encoder({WireCodec::kCompact, false});
  std::vector<TuplePtr> batch = {V(1, 1)};
  auto first = encoder.EncodeBatch(batch, kNoWatermark, false);
  auto second = encoder.EncodeBatch(batch, kNoWatermark, false);
  FrameDecoder fresh;
  EXPECT_THROW(fresh.Decode(second[0]), std::runtime_error);
}

TEST(FrameCodecTest, TruncatedCompactFramesAreRejected) {
  std::mt19937_64 rng(7);
  for (bool compress : {false, true}) {
    FrameEncoder encoder({WireCodec::kCompact, compress});
    std::vector<TuplePtr> batch;
    for (int64_t i = 0; i < 32; ++i) batch.push_back(RandomTuple(rng, i));
    auto frames = encoder.EncodeBatch(batch, /*watermark=*/99, false);
    ASSERT_EQ(frames.size(), 1u);
    const auto& full = frames[0];
    for (size_t len = 0; len < full.size(); ++len) {
      std::vector<uint8_t> cut(full.begin(), full.begin() + len);
      FrameDecoder decoder;
      EXPECT_ANY_THROW(decoder.Decode(cut)) << "prefix length " << len;
    }
  }
}

TEST(FrameCodecTest, CorruptCompactBodyIsRejectedOrEquivalent) {
  // Flipping bytes must never crash; it either throws or yields a frame that
  // still parses (e.g. a flipped payload bit). Nothing should hang or UB.
  std::mt19937_64 rng(11);
  FrameEncoder encoder({WireCodec::kCompact, true});
  std::vector<TuplePtr> batch;
  for (int64_t i = 0; i < 16; ++i) batch.push_back(RandomTuple(rng, i));
  auto frames = encoder.EncodeBatch(batch, 5, false);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupt = frames[0];
    corrupt[rng() % corrupt.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
    FrameDecoder decoder;
    try {
      decoder.Decode(corrupt);
    } catch (const std::exception&) {
      // rejected: fine
    }
  }
}

TEST(FrameCodecTest, StatelessDecodeFrameRejectsCompactFrames) {
  FrameEncoder encoder({WireCodec::kCompact, false});
  std::vector<TuplePtr> batch = {V(1, 1)};
  auto frames = encoder.EncodeBatch(batch, kNoWatermark, false);
  EXPECT_THROW(DecodeFrame(frames[0]), std::runtime_error);
}

TEST(FrameCodecTest, WireStatsTrackRawEquivalentBytes) {
  std::vector<TuplePtr> batch;
  for (int64_t i = 0; i < 64; ++i) {
    auto t = V(i, i);
    t->id = (uint64_t{2} << 40) | static_cast<uint64_t>(i);
    batch.push_back(t);
  }
  // raw_bytes under kCompact must equal what the raw codec actually ships.
  FrameEncoder raw_enc({WireCodec::kRaw, false});
  FrameEncoder compact_enc({WireCodec::kCompact, true});
  raw_enc.EncodeBatch(batch, 63, true);
  compact_enc.EncodeBatch(batch, 63, true);
  EXPECT_EQ(compact_enc.stats().raw_bytes, raw_enc.stats().raw_bytes);
  EXPECT_LT(compact_enc.stats().encoded_bytes, compact_enc.stats().raw_bytes);
  EXPECT_GT(compact_enc.stats().ratio(), 1.0);
  EXPECT_EQ(compact_enc.stats().frames, 1u);

  // Degenerate batch-of-1 plus watermark: the raw path ships two frames.
  FrameEncoder raw1({WireCodec::kRaw, false});
  FrameEncoder compact1({WireCodec::kCompact, true});
  std::vector<TuplePtr> one = {batch[0]};
  raw1.EncodeBatch(one, 5, true);
  compact1.EncodeBatch(one, 5, true);
  EXPECT_EQ(raw1.stats().frames, 2u);
  EXPECT_EQ(compact1.stats().frames, 1u);
  EXPECT_EQ(compact1.stats().raw_bytes, raw1.stats().raw_bytes);
}

TEST(LzBlockTest, RoundTripsCompressibleAndRandomData) {
  std::mt19937_64 rng(3);
  std::vector<std::vector<uint8_t>> inputs;
  inputs.push_back({});                       // empty
  inputs.push_back({1, 2, 3});                // below min-match
  inputs.push_back(std::vector<uint8_t>(100, 7));  // one long run
  {
    std::vector<uint8_t> repeats;  // repeated 8-byte pattern
    for (int i = 0; i < 500; ++i) repeats.push_back(static_cast<uint8_t>(i % 8));
    inputs.push_back(std::move(repeats));
  }
  {
    std::vector<uint8_t> random(4096);  // incompressible
    for (auto& b : random) b = static_cast<uint8_t>(rng());
    inputs.push_back(std::move(random));
  }
  {
    std::vector<uint8_t> mixed;  // literals then a match ending at the end
    for (int i = 0; i < 64; ++i) mixed.push_back(static_cast<uint8_t>(rng()));
    mixed.insert(mixed.end(), mixed.begin(), mixed.begin() + 32);
    inputs.push_back(std::move(mixed));
  }
  for (const auto& in : inputs) {
    auto packed = LzBlockCompress(in);
    EXPECT_EQ(LzBlockDecompress(packed, in.size()), in) << in.size();
  }
  // The run-heavy inputs must actually shrink.
  EXPECT_LT(LzBlockCompress(std::vector<uint8_t>(100, 7)).size(), 20u);
}

TEST(LzBlockTest, MalformedBlocksAreRejected) {
  std::vector<uint8_t> data(64, 9);
  auto packed = LzBlockCompress(data);
  // Truncations.
  for (size_t len = 0; len < packed.size(); ++len) {
    std::vector<uint8_t> cut(packed.begin(), packed.begin() + len);
    EXPECT_THROW(LzBlockDecompress(cut, data.size()), std::runtime_error);
  }
  // Wrong declared size (too large wants more input; too small overflows).
  EXPECT_THROW(LzBlockDecompress(packed, data.size() + 100),
               std::runtime_error);
  EXPECT_THROW(LzBlockDecompress(packed, data.size() - 1), std::runtime_error);
  // A match offset pointing before the start of the output.
  const std::vector<uint8_t> bad_offset = {0x10, 0xAA, 0x05, 0x00};
  EXPECT_THROW(LzBlockDecompress(bad_offset, 6), std::runtime_error);
  // Offset zero is never valid.
  const std::vector<uint8_t> zero_offset = {0x10, 0xAA, 0x00, 0x00};
  EXPECT_THROW(LzBlockDecompress(zero_offset, 6), std::runtime_error);
}

}  // namespace
}  // namespace genealog
