// Failure injection: a production engine must unwind cleanly — no deadlocks,
// no leaks, errors surfaced to the caller — when channels break mid-stream,
// frames are corrupted, or a remote peer disappears.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "common/memory_accounting.h"
#include "net/channel.h"
#include "net/frame.h"
#include "net/send_receive.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::V;
using testing::ValueTuple;

std::vector<IntrusivePtr<ValueTuple>> Ramp(int n) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (int i = 0; i < n; ++i) out.push_back(V(i, i));
  return out;
}

TEST(FailureTest, ReceiverTreatsChannelCloseWithoutFlushAsEndOfStream) {
  // The sender dies (channel closed) before sending a flush frame: the
  // receiving instance must still unwind and flush downstream.
  InMemoryChannel channel;
  channel.SendFrame(EncodeTupleFrame(*V(1, 10), false));
  channel.CloseSend();  // no flush frame

  Topology topo(2);
  auto* recv = topo.Add<ReceiveNode>("recv", &channel);
  Collector c;
  auto* sink = c.AttachSink(topo);
  topo.Connect(recv, sink);
  RunToCompletion(topo);  // must terminate
  EXPECT_EQ(c.tuples().size(), 1u);
}

TEST(FailureTest, CorruptFrameFailsTheRunLoudly) {
  InMemoryChannel channel;
  channel.SendFrame({0x42, 0x13, 0x37});  // garbage
  channel.CloseSend();

  Topology topo(2);
  auto* recv = topo.Add<ReceiveNode>("recv", &channel);
  auto* sink = topo.Add<SinkNode>("sink");
  topo.Connect(recv, sink);
  Runner runner({&topo});
  runner.Start();
  EXPECT_THROW(runner.Join(), std::exception);
}

TEST(FailureTest, TruncatedTupleFrameFailsTheRunLoudly) {
  InMemoryChannel channel;
  auto frame = EncodeTupleFrame(*V(1, 10), false);
  frame.resize(frame.size() / 2);
  channel.SendFrame(std::move(frame));
  channel.CloseSend();

  Topology topo(2);
  auto* recv = topo.Add<ReceiveNode>("recv", &channel);
  auto* sink = topo.Add<SinkNode>("sink");
  topo.Connect(recv, sink);
  Runner runner({&topo});
  runner.Start();
  EXPECT_THROW(runner.Join(), std::exception);
}

TEST(FailureTest, MalformedFrameErrorNamesNodeAndFrameKind) {
  // A corrupt frame must produce a diagnosable error: which Receive endpoint
  // saw it and what kind of frame it claimed to be.
  InMemoryChannel channel;
  std::vector<uint8_t> bogus = {
      static_cast<uint8_t>(FrameKind::kBatch), 0xFF, 0xFF, 0xFF};  // truncated
  channel.SendFrame(std::move(bogus));
  channel.CloseSend();

  Topology topo(2);
  auto* recv = topo.Add<ReceiveNode>("recv.U", &channel);
  auto* sink = topo.Add<SinkNode>("sink");
  topo.Connect(recv, sink);
  Runner runner({&topo});
  runner.Start();
  try {
    runner.Join();
    FAIL() << "corrupt frame did not fail the run";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recv.U"), std::string::npos) << what;
    EXPECT_NE(what.find("batch"), std::string::npos) << what;
  }
}

TEST(FailureTest, CorruptCompactFrameErrorNamesTheCodec) {
  // A compact frame whose dictionary references dangle (mid-stream join)
  // must name the compact codec in the error, not decode garbage.
  FrameEncoder encoder({WireCodec::kCompact, false});
  std::vector<TuplePtr> batch = {V(1, 1)};
  encoder.EncodeBatch(batch, kNoWatermark, false);  // defines the dictionary
  auto frames = encoder.EncodeBatch(batch, kNoWatermark, false);  // references

  InMemoryChannel channel;
  channel.SendFrame(std::move(frames[0]));
  channel.CloseSend();
  Topology topo(2);
  auto* recv = topo.Add<ReceiveNode>("recv", &channel);
  auto* sink = topo.Add<SinkNode>("sink");
  topo.Connect(recv, sink);
  Runner runner({&topo});
  runner.Start();
  try {
    runner.Join();
    FAIL() << "dangling dictionary reference did not fail the run";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recv"), std::string::npos) << what;
    EXPECT_NE(what.find("compact-batch"), std::string::npos) << what;
  }
}

TEST(FailureTest, TcpMalformedLengthPrefixThrowsNamedError) {
  // A zero or absurd length prefix is stream corruption, not end-of-stream:
  // RecvFrame must throw (named), never silently drop the connection.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  TcpChannel receiver(fds[0]);

  const uint32_t zero = 0;
  ASSERT_EQ(::send(fds[1], &zero, 4, 0), 4);
  std::vector<uint8_t> frame;
  try {
    receiver.RecvFrame(frame);
    FAIL() << "zero-length prefix did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("malformed frame length"),
              std::string::npos);
  }
  ::close(fds[1]);
}

TEST(FailureTest, TcpPeerResetUnblocksBothSides) {
  auto [sender, receiver] = MakeTcpChannelPair();

  Topology sender_side(1);
  std::atomic<bool> stop{false};
  SourceOptions options;
  options.stop = &stop;
  options.replays = 1000000;
  options.replay_ts_shift = 100;
  auto* source =
      sender_side.Add<VectorSourceNode<ValueTuple>>("src", Ramp(100), options);
  auto* send = sender_side.Add<SendNode>("send", sender.get());
  sender_side.Connect(source, send);

  Topology receiver_side(2);
  auto* recv = receiver_side.Add<ReceiveNode>("recv", receiver.get());
  auto* sink = receiver_side.Add<SinkNode>("sink");
  receiver_side.Connect(recv, sink);

  Runner runner({&sender_side, &receiver_side});
  runner.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Kill the connection from the receiving end mid-stream.
  receiver->Abort();
  sender->Abort();
  stop.store(true);
  runner.Join();  // must terminate (no exception contract for remote resets
                  // on the send path; SendNode drops frames once broken)
  EXPECT_GT(sink->count(), 0u);
}

TEST(FailureTest, NoTupleLeaksAfterMidStreamAbort) {
  const int64_t base = mem::LiveTupleCount();
  {
    InMemoryChannel channel(8);
    Topology instance1(1);
    Topology instance2(2);
    std::atomic<bool> stop{false};
    SourceOptions options;
    options.stop = &stop;
    options.replays = 100000;
    options.replay_ts_shift = 1000;
    auto* source = instance1.Add<VectorSourceNode<ValueTuple>>(
        "src", Ramp(1000), options);
    auto* send = instance1.Add<SendNode>("send", &channel);
    auto* recv = instance2.Add<ReceiveNode>("recv", &channel);
    auto* sink = instance2.Add<SinkNode>("sink");
    instance1.Connect(source, send);
    instance2.Connect(recv, sink);
    Runner runner({&instance1, &instance2});
    runner.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    channel.Abort();
    stop.store(true);
    runner.Join();
  }
  EXPECT_EQ(mem::LiveTupleCount() - base, 0);
}

TEST(FailureTest, CrashInOneInstanceUnblocksChannelWaitersViaRegistration) {
  // Instance 2's operator throws mid-stream. Without channel registration the
  // Receive node (blocked on the channel) and hence Runner::Join would hang;
  // with it, the whole distributed run unwinds and rethrows.
  InMemoryChannel data_channel;
  InMemoryChannel idle_channel;  // nobody ever sends here

  Topology instance1(1);
  Topology instance2(2);
  std::atomic<bool> stop{false};
  SourceOptions options;
  options.stop = &stop;
  options.replays = 1000000;
  options.replay_ts_shift = 1000;
  auto* source =
      instance1.Add<VectorSourceNode<ValueTuple>>("src", Ramp(1000), options);
  auto* send = instance1.Add<SendNode>("send", &data_channel);
  instance1.Connect(source, send);

  auto* recv = instance2.Add<ReceiveNode>("recv", &data_channel);
  // A second receiver blocked forever on the idle channel: only the abort
  // registration can unblock it.
  auto* idle_recv = instance2.Add<ReceiveNode>("idle_recv", &idle_channel);
  auto* idle_sink = instance2.Add<SinkNode>("idle_sink");
  instance2.Connect(idle_recv, idle_sink);
  auto* bomb = instance2.Add<MapNode<ValueTuple, ValueTuple>>(
      "bomb", [](const ValueTuple& in, MapCollector<ValueTuple>& out) {
        if (in.value == 500) throw std::runtime_error("operator crash");
        out.Emit(MakeTuple<ValueTuple>(0, in.value));
      });
  auto* sink = instance2.Add<SinkNode>("sink");
  instance2.Connect(recv, bomb);
  instance2.Connect(bomb, sink);

  instance1.RegisterAbortable(&data_channel);
  instance1.RegisterAbortable(&idle_channel);

  Runner runner({&instance1, &instance2});
  runner.Start();
  EXPECT_THROW(runner.Join(), std::runtime_error);
  stop.store(true);
}

TEST(FailureTest, AbortedDownstreamQueueStopsUpstreamGracefully) {
  // Simulates an operator crash: its input queue aborts; upstream emitters
  // observe the failed push and unwind without blocking forever.
  Topology topo;
  std::atomic<bool> stop{false};
  SourceOptions options;
  options.stop = &stop;
  options.replays = 1000000;
  options.replay_ts_shift = 10;
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Ramp(10), options);
  auto* sink = topo.Add<SinkNode>("sink");
  topo.Connect(source, sink);
  Runner runner({&topo});
  runner.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  topo.AbortAll();
  runner.Join();
  SUCCEED();
}

}  // namespace
}  // namespace genealog
