#include "core/instrumentation.h"

#include <gtest/gtest.h>

#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

TEST(MergeAnnotationsTest, HandlesNullsAndEmpties) {
  std::vector<uint64_t> a{1, 2};
  EXPECT_EQ(MergeAnnotations(nullptr, nullptr), std::vector<uint64_t>{});
  EXPECT_EQ(MergeAnnotations(&a, nullptr), a);
  EXPECT_EQ(MergeAnnotations(nullptr, &a), a);
}

TEST(MergeAnnotationsTest, UnionIsSortedAndDeduplicated) {
  std::vector<uint64_t> a{1, 3, 5};
  std::vector<uint64_t> b{2, 3, 6};
  EXPECT_EQ(MergeAnnotations(&a, &b), (std::vector<uint64_t>{1, 2, 3, 5, 6}));
}

TEST(InstrumentSourceTest, GenealogSetsKindOnly) {
  auto t = V(1, 1);
  t->id = 10;
  InstrumentSource(ProvenanceMode::kGenealog, *t);
  EXPECT_EQ(t->kind, TupleKind::kSource);
  EXPECT_EQ(t->u1(), nullptr);
  EXPECT_EQ(t->baseline_annotation(), nullptr);
}

TEST(InstrumentSourceTest, BaselineSeedsAnnotationWithOwnId) {
  auto t = V(1, 1);
  t->id = 10;
  InstrumentSource(ProvenanceMode::kBaseline, *t);
  ASSERT_NE(t->baseline_annotation(), nullptr);
  EXPECT_EQ(*t->baseline_annotation(), std::vector<uint64_t>{10});
}

TEST(InstrumentUnaryTest, NoneLeavesMetaUntouched) {
  auto in = V(1, 1);
  auto out = V(1, 2);
  InstrumentUnary(ProvenanceMode::kNone, *out, TupleKind::kMap, *in);
  EXPECT_EQ(out->kind, TupleKind::kMap);
  EXPECT_EQ(out->u1(), nullptr);
}

TEST(InstrumentUnaryTest, GenealogLinksU1) {
  auto in = V(1, 1);
  auto out = V(1, 2);
  InstrumentUnary(ProvenanceMode::kGenealog, *out, TupleKind::kMultiplex, *in);
  EXPECT_EQ(out->kind, TupleKind::kMultiplex);
  EXPECT_EQ(out->u1(), in.get());
  EXPECT_EQ(out->u2(), nullptr);
}

TEST(InstrumentUnaryTest, BaselineCopiesAnnotation) {
  auto in = V(1, 1);
  in->set_baseline_annotation({4, 7});
  auto out = V(1, 2);
  InstrumentUnary(ProvenanceMode::kBaseline, *out, TupleKind::kMap, *in);
  ASSERT_NE(out->baseline_annotation(), nullptr);
  EXPECT_EQ(*out->baseline_annotation(), (std::vector<uint64_t>{4, 7}));
  EXPECT_EQ(out->u1(), nullptr);
}

TEST(InstrumentJoinTest, GenealogOrientsU1ToNewer) {
  auto older = V(1, 1);
  auto newer = V(5, 2);
  auto out = V(5, 3);
  InstrumentJoin(ProvenanceMode::kGenealog, *out, *newer, *older);
  EXPECT_EQ(out->kind, TupleKind::kJoin);
  EXPECT_EQ(out->u1(), newer.get());
  EXPECT_EQ(out->u2(), older.get());
}

TEST(InstrumentJoinTest, BaselineMergesBothAnnotations) {
  auto older = V(1, 1);
  older->set_baseline_annotation({1, 5});
  auto newer = V(5, 2);
  newer->set_baseline_annotation({2, 5});
  auto out = V(5, 3);
  InstrumentJoin(ProvenanceMode::kBaseline, *out, *newer, *older);
  EXPECT_EQ(*out->baseline_annotation(), (std::vector<uint64_t>{1, 2, 5}));
}

TEST(InstrumentAggregateTest, GenealogLinksWindowChain) {
  std::vector<IntrusivePtr<ValueTuple>> window{V(1, 1), V(2, 2), V(3, 3)};
  auto out = V(0, 9);
  InstrumentAggregate(ProvenanceMode::kGenealog, *out,
                      std::span<const IntrusivePtr<ValueTuple>>(window));
  EXPECT_EQ(out->kind, TupleKind::kAggregate);
  EXPECT_EQ(out->u2(), window.front().get());
  EXPECT_EQ(out->u1(), window.back().get());
  EXPECT_EQ(window[0]->next(), window[1].get());
  EXPECT_EQ(window[1]->next(), window[2].get());
  EXPECT_EQ(window[2]->next(), nullptr);
}

TEST(InstrumentAggregateTest, SingleTupleWindowHasU1EqualU2) {
  std::vector<IntrusivePtr<ValueTuple>> window{V(1, 1)};
  auto out = V(0, 9);
  InstrumentAggregate(ProvenanceMode::kGenealog, *out,
                      std::span<const IntrusivePtr<ValueTuple>>(window));
  EXPECT_EQ(out->u1(), out->u2());
  EXPECT_EQ(window[0]->next(), nullptr);
}

TEST(InstrumentAggregateTest, SlidingRefireRelinksIdempotently) {
  std::vector<IntrusivePtr<ValueTuple>> tuples{V(1, 1), V(2, 2), V(3, 3),
                                               V(4, 4)};
  auto w1 = V(0, 9);
  std::vector<IntrusivePtr<ValueTuple>> first(tuples.begin(),
                                              tuples.begin() + 3);
  InstrumentAggregate(ProvenanceMode::kGenealog, *w1,
                      std::span<const IntrusivePtr<ValueTuple>>(first));
  auto w2 = V(0, 10);
  std::vector<IntrusivePtr<ValueTuple>> second(tuples.begin() + 1,
                                               tuples.end());
  InstrumentAggregate(ProvenanceMode::kGenealog, *w2,
                      std::span<const IntrusivePtr<ValueTuple>>(second));
  EXPECT_EQ(tuples[0]->next(), tuples[1].get());
  EXPECT_EQ(tuples[1]->next(), tuples[2].get());
  EXPECT_EQ(tuples[2]->next(), tuples[3].get());
  EXPECT_EQ(w1->u2(), tuples[0].get());
  EXPECT_EQ(w1->u1(), tuples[2].get());
  EXPECT_EQ(w2->u2(), tuples[1].get());
  EXPECT_EQ(w2->u1(), tuples[3].get());
}

TEST(InstrumentAggregateTest, BaselineUnionsAllWindowAnnotations) {
  std::vector<IntrusivePtr<ValueTuple>> window{V(1, 1), V(2, 2), V(3, 3)};
  window[0]->set_baseline_annotation({10});
  window[1]->set_baseline_annotation({11, 12});
  window[2]->set_baseline_annotation({10, 13});
  auto out = V(0, 9);
  InstrumentAggregate(ProvenanceMode::kBaseline, *out,
                      std::span<const IntrusivePtr<ValueTuple>>(window));
  EXPECT_EQ(*out->baseline_annotation(),
            (std::vector<uint64_t>{10, 11, 12, 13}));
}

TEST(ProvenanceModeTest, Names) {
  EXPECT_STREQ(ToString(ProvenanceMode::kNone), "NP");
  EXPECT_STREQ(ToString(ProvenanceMode::kGenealog), "GL");
  EXPECT_STREQ(ToString(ProvenanceMode::kBaseline), "BL");
  EXPECT_STREQ(ToString(TupleKind::kAggregate), "AGGREGATE");
}

}  // namespace
}  // namespace genealog
