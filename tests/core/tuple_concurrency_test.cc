// Concurrency stress for the intrusive-refcounted tuple graph: tuples are
// created by one operator thread but referenced, traversed, and released
// from several (windows, SU, provenance sink, downstream consumers).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/memory_accounting.h"
#include "core/tuple.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

TEST(TupleConcurrencyTest, SharedGraphReleasedFromManyThreadsExactlyOnce) {
  const int64_t base = mem::LiveTupleCount();
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  for (int iter = 0; iter < kIters; ++iter) {
    // A chain of 50 tuples rooted at `head`, shared by kThreads handles.
    IntrusivePtr<ValueTuple> head = V(0, 0);
    {
      IntrusivePtr<ValueTuple> prev = head;
      for (int i = 1; i < 50; ++i) {
        auto t = V(i, i);
        prev->try_set_next(t.get());
        prev = t;
      }
    }
    std::vector<TuplePtr> handles(kThreads, head);
    head.reset();

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&handles, t] { handles[static_cast<size_t>(t)].reset(); });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(mem::LiveTupleCount() - base, 0) << "iteration " << iter;
  }
}

TEST(TupleConcurrencyTest, ConcurrentRefUnrefKeepsCountExact) {
  const int64_t base = mem::LiveTupleCount();
  auto shared = V(1, 1);
  constexpr int kThreads = 8;
  constexpr int kIters = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < kIters; ++i) {
        TuplePtr local = shared;  // ref
        local.reset();            // unref
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mem::LiveTupleCount() - base, 1);
  shared.reset();
  EXPECT_EQ(mem::LiveTupleCount() - base, 0);
}

TEST(TupleConcurrencyTest, RacingIdenticalNextLinksIsSafe) {
  // Sliding windows re-link the same successor; under a (hypothetical)
  // multi-threaded window implementation both CAS attempts must agree.
  const int64_t base = mem::LiveTupleCount();
  for (int iter = 0; iter < 500; ++iter) {
    auto a = V(1, 1);
    auto b = V(2, 2);
    std::atomic<int> successes{0};
    std::thread t1([&] {
      if (a->try_set_next(b.get())) successes.fetch_add(1);
    });
    std::thread t2([&] {
      if (a->try_set_next(b.get())) successes.fetch_add(1);
    });
    t1.join();
    t2.join();
    EXPECT_EQ(successes.load(), 2);  // both observe the link established
    EXPECT_EQ(a->next(), b.get());
    a.reset();
    b.reset();
    ASSERT_EQ(mem::LiveTupleCount() - base, 0) << "iteration " << iter;
  }
}

TEST(TupleConcurrencyTest, ReaderTraversesWhileChainExtends) {
  // An SU-like reader walks U2..U1 while the aggregate thread keeps
  // extending the chain beyond U1 — the walk must stay within its window.
  constexpr int kChain = 2000;
  std::vector<IntrusivePtr<ValueTuple>> tuples;
  for (int i = 0; i < kChain; ++i) tuples.push_back(V(i, i));

  std::atomic<int> linked{1};
  std::thread writer([&] {
    for (int i = 0; i + 1 < kChain; ++i) {
      tuples[static_cast<size_t>(i)]->try_set_next(
          tuples[static_cast<size_t>(i) + 1].get());
      linked.store(i + 2, std::memory_order_release);
    }
  });

  // Readers walk windows [j, j+16] that are already fully linked.
  std::thread reader([&] {
    for (int round = 0; round < 200; ++round) {
      const int avail = linked.load(std::memory_order_acquire);
      if (avail < 32) continue;
      const int start = (round * 7) % (avail - 17);
      Tuple* u2 = tuples[static_cast<size_t>(start)].get();
      Tuple* u1 = tuples[static_cast<size_t>(start) + 16].get();
      int steps = 0;
      Tuple* temp = u2;
      while (temp != nullptr && temp != u1) {
        temp = temp->next();
        ++steps;
        ASSERT_LE(steps, 16);
      }
      EXPECT_EQ(temp, u1);
    }
  });
  writer.join();
  reader.join();
}

}  // namespace
}  // namespace genealog
