#include "core/tuple.h"

#include <gtest/gtest.h>

#include "common/memory_accounting.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

class TupleTest : public ::testing::Test {
 protected:
  void SetUp() override { base_count_ = mem::LiveTupleCount(); }
  int64_t LiveDelta() const { return mem::LiveTupleCount() - base_count_; }
  int64_t base_count_ = 0;
};

TEST_F(TupleTest, MakeTupleSetsTimestampAndDefaults) {
  auto t = V(42, 7);
  EXPECT_EQ(t->ts, 42);
  EXPECT_EQ(t->value, 7);
  EXPECT_EQ(t->id, 0u);
  EXPECT_EQ(t->kind, TupleKind::kSource);
  EXPECT_EQ(t->u1(), nullptr);
  EXPECT_EQ(t->u2(), nullptr);
  EXPECT_EQ(t->next(), nullptr);
  EXPECT_EQ(t->baseline_annotation(), nullptr);
}

TEST_F(TupleTest, LiveTupleCountTracksLifetime) {
  {
    auto a = V(1, 1);
    auto b = V(2, 2);
    EXPECT_EQ(LiveDelta(), 2);
  }
  EXPECT_EQ(LiveDelta(), 0);
}

TEST_F(TupleTest, U1KeepsPointeeAlive) {
  auto child = V(1, 10);
  auto parent = V(2, 20);
  parent->set_u1(child.get());
  child.reset();
  EXPECT_EQ(LiveDelta(), 2);  // child kept alive through parent's U1
  ASSERT_NE(parent->u1(), nullptr);
  EXPECT_EQ(static_cast<ValueTuple*>(parent->u1())->value, 10);
  parent.reset();
  EXPECT_EQ(LiveDelta(), 0);
}

TEST_F(TupleTest, SetU1ReplacementReleasesOld) {
  auto a = V(1, 1);
  auto b = V(2, 2);
  auto parent = V(3, 3);
  parent->set_u1(a.get());
  parent->set_u1(b.get());
  a.reset();
  EXPECT_EQ(LiveDelta(), 2);  // a was released when replaced
  parent->set_u1(nullptr);
  b.reset();
  EXPECT_EQ(LiveDelta(), 1);
}

TEST_F(TupleTest, TrySetNextIsSetOnce) {
  auto a = V(1, 1);
  auto b = V(2, 2);
  auto c = V(3, 3);
  EXPECT_TRUE(a->try_set_next(b.get()));
  EXPECT_EQ(a->next(), b.get());
  // Re-linking the same successor (sliding window re-fire) is a no-op success.
  EXPECT_TRUE(a->try_set_next(b.get()));
  EXPECT_EQ(a->next(), b.get());
  (void)c;
}

TEST_F(TupleTest, NextChainKeepsChainAlive) {
  auto head = V(0, 0);
  {
    auto mid = V(1, 1);
    auto tail = V(2, 2);
    head->try_set_next(mid.get());
    mid->try_set_next(tail.get());
  }
  EXPECT_EQ(LiveDelta(), 3);
  EXPECT_EQ(static_cast<ValueTuple*>(head->next()->next())->value, 2);
  head.reset();
  EXPECT_EQ(LiveDelta(), 0);
}

TEST_F(TupleTest, LongChainReleaseDoesNotOverflowStack) {
  // 200k-element N-chain: recursive destruction would smash the stack.
  constexpr int kN = 200000;
  auto head = V(0, 0);
  IntrusivePtr<ValueTuple> prev = head;
  for (int i = 1; i < kN; ++i) {
    auto t = V(i, i);
    prev->try_set_next(t.get());
    prev = t;
  }
  prev.reset();
  EXPECT_EQ(LiveDelta(), kN);
  head.reset();
  EXPECT_EQ(LiveDelta(), 0);
}

TEST_F(TupleTest, DiamondGraphReleasesOnce) {
  // sink -> {left, right} -> shared source.
  auto source = V(0, 0);
  auto left = V(1, 1);
  auto right = V(1, 2);
  auto sink = V(2, 3);
  left->set_u1(source.get());
  right->set_u1(source.get());
  sink->set_u1(left.get());
  sink->set_u2(right.get());
  source.reset();
  left.reset();
  right.reset();
  EXPECT_EQ(LiveDelta(), 4);
  sink.reset();
  EXPECT_EQ(LiveDelta(), 0);
}

TEST_F(TupleTest, CloneCopiesPayloadNotMeta) {
  auto parent = V(1, 1);
  auto t = V(5, 99);
  t->id = 1234;
  t->stimulus = 777;
  t->kind = TupleKind::kAggregate;
  t->set_u1(parent.get());
  t->set_baseline_annotation({1, 2, 3});

  TuplePtr clone = t->CloneTuple();
  EXPECT_EQ(clone->ts, 5);
  EXPECT_EQ(static_cast<ValueTuple*>(clone.get())->value, 99);
  EXPECT_EQ(clone->stimulus, 777);
  // Identity and provenance are not part of the payload copy.
  EXPECT_EQ(clone->id, 0u);
  EXPECT_EQ(clone->kind, TupleKind::kSource);
  EXPECT_EQ(clone->u1(), nullptr);
  EXPECT_EQ(clone->baseline_annotation(), nullptr);
}

TEST_F(TupleTest, MemoryAccountingFollowsLifetime) {
  mem::SetCurrentInstance(7);
  const int64_t before = mem::LiveBytes(7);
  {
    auto t = V(1, 1);
    EXPECT_EQ(mem::LiveBytes(7) - before,
              static_cast<int64_t>(sizeof(ValueTuple)));
  }
  EXPECT_EQ(mem::LiveBytes(7), before);
  mem::SetCurrentInstance(0);
}

TEST_F(TupleTest, AnnotationBytesAreAccounted) {
  mem::SetCurrentInstance(8);
  const int64_t before = mem::LiveBytes(8);
  {
    auto t = V(1, 1);
    const int64_t with_tuple = mem::LiveBytes(8);
    t->set_baseline_annotation(std::vector<uint64_t>{1, 2, 3, 4});
    EXPECT_GT(mem::LiveBytes(8), with_tuple);
  }
  EXPECT_EQ(mem::LiveBytes(8), before);
  mem::SetCurrentInstance(0);
}

TEST_F(TupleTest, OwnerInstanceStampedAtCreation) {
  mem::SetCurrentInstance(4);
  auto t = V(1, 1);
  EXPECT_EQ(t->owner_instance(), 4);
  mem::SetCurrentInstance(0);
}

TEST_F(TupleTest, AggregateChainSharedByTwoOutputsSurvivesPartialRelease) {
  // Two sliding-window outputs share part of an N-chain:
  //   w1 covers t1..t3, w2 covers t2..t4.
  auto t1 = V(1, 1);
  auto t2 = V(2, 2);
  auto t3 = V(3, 3);
  auto t4 = V(4, 4);
  t1->try_set_next(t2.get());
  t2->try_set_next(t3.get());
  t3->try_set_next(t4.get());
  auto w1 = V(0, 100);
  w1->kind = TupleKind::kAggregate;
  w1->set_u2(t1.get());
  w1->set_u1(t3.get());
  auto w2 = V(2, 200);
  w2->kind = TupleKind::kAggregate;
  w2->set_u2(t2.get());
  w2->set_u1(t4.get());

  t1.reset();
  t2.reset();
  t3.reset();
  t4.reset();
  EXPECT_EQ(LiveDelta(), 6);
  w1.reset();
  // t1 freed (only w1 referenced it); t2..t4 still reachable from w2.
  EXPECT_EQ(LiveDelta(), 4);
  w2.reset();
  EXPECT_EQ(LiveDelta(), 0);
}

}  // namespace
}  // namespace genealog
