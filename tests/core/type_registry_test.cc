#include "core/type_registry.h"

#include <gtest/gtest.h>

#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::KeyedTuple;
using testing::V;
using testing::ValueTuple;

TEST(TypeRegistryTest, RoundTripsValueTuple) {
  auto t = V(123, -456);
  t->id = 0xABCDEF;
  t->stimulus = 999;
  t->kind = TupleKind::kAggregate;

  ByteWriter w;
  SerializeTuple(*t, w);
  ByteReader r(w.bytes());
  TuplePtr back = DeserializeTuple(r);

  ASSERT_EQ(back->type_tag(), ValueTuple::kTypeTag);
  EXPECT_EQ(back->ts, 123);
  EXPECT_EQ(back->id, 0xABCDEFu);
  EXPECT_EQ(back->stimulus, 999);
  EXPECT_EQ(back->kind, TupleKind::kAggregate);
  EXPECT_EQ(static_cast<ValueTuple*>(back.get())->value, -456);
  EXPECT_TRUE(r.AtEnd());
}

TEST(TypeRegistryTest, RoundTripsKeyedTuple) {
  auto t = MakeTuple<KeyedTuple>(7, 42, 2.718);
  ByteWriter w;
  SerializeTuple(*t, w);
  ByteReader r(w.bytes());
  TuplePtr back = DeserializeTuple(r);
  auto* k = static_cast<KeyedTuple*>(back.get());
  EXPECT_EQ(k->key, 42);
  EXPECT_DOUBLE_EQ(k->value, 2.718);
}

TEST(TypeRegistryTest, DeserializedTupleHasNoMetaPointers) {
  auto parent = V(1, 1);
  auto t = V(2, 2);
  t->set_u1(parent.get());
  t->try_set_next(parent.get());
  ByteWriter w;
  SerializeTuple(*t, w);
  ByteReader r(w.bytes());
  TuplePtr back = DeserializeTuple(r);
  // Pointers never cross a serialization boundary (§6).
  EXPECT_EQ(back->u1(), nullptr);
  EXPECT_EQ(back->u2(), nullptr);
  EXPECT_EQ(back->next(), nullptr);
}

TEST(TypeRegistryTest, SendKindRemotifiesNonSourceTuples) {
  auto t = V(1, 1);
  t->kind = TupleKind::kAggregate;
  ByteWriter w;
  SerializeTupleForSend(*t, w);
  ByteReader r(w.bytes());
  TuplePtr back = DeserializeTuple(r);
  EXPECT_EQ(back->kind, TupleKind::kRemote);
  // The local object is untouched — local provenance graphs still need it.
  EXPECT_EQ(t->kind, TupleKind::kAggregate);
}

TEST(TypeRegistryTest, SendKindPreservesSourceTuples) {
  auto t = V(1, 1);
  t->kind = TupleKind::kSource;
  ByteWriter w;
  SerializeTupleForSend(*t, w);
  ByteReader r(w.bytes());
  EXPECT_EQ(DeserializeTuple(r)->kind, TupleKind::kSource);
}

TEST(TypeRegistryTest, SendKindRemotifiesEveryCreatedKind) {
  for (TupleKind kind : {TupleKind::kMap, TupleKind::kMultiplex,
                         TupleKind::kJoin, TupleKind::kRemote}) {
    auto t = V(1, 1);
    t->kind = kind;
    ByteWriter w;
    SerializeTupleForSend(*t, w);
    ByteReader r(w.bytes());
    EXPECT_EQ(DeserializeTuple(r)->kind, TupleKind::kRemote);
  }
}

TEST(TypeRegistryTest, UnknownTagThrows) {
  ByteWriter w;
  w.PutU16(0x6FFF);  // unregistered tag
  w.PutU8(0);        // kind
  w.PutI64(0);       // ts
  w.PutU64(0);       // id
  w.PutI64(0);       // stimulus
  w.PutU8(0);        // no annotation
  ByteReader r(w.bytes());
  EXPECT_THROW(DeserializeTuple(r), std::runtime_error);
}

TEST(TypeRegistryTest, TruncatedPayloadThrows) {
  auto t = V(1, 99);
  ByteWriter w;
  SerializeTuple(*t, w);
  auto bytes = w.bytes();
  bytes.resize(bytes.size() - 4);  // cut into the payload
  ByteReader r(bytes.data(), bytes.size());
  EXPECT_THROW(DeserializeTuple(r), std::out_of_range);
}

TEST(TypeRegistryTest, ReregisteringSameTypeIsIdempotent) {
  EXPECT_TRUE(RegisterTupleType(ValueTuple::kTypeTag, ValueTuple::kTypeName,
                                &ValueTuple::Deserialize));
}

TEST(TypeRegistryTest, BackToBackTuplesShareOneBuffer) {
  ByteWriter w;
  SerializeTuple(*V(1, 10), w);
  SerializeTuple(*V(2, 20), w);
  ByteReader r(w.bytes());
  EXPECT_EQ(static_cast<ValueTuple*>(DeserializeTuple(r).get())->value, 10);
  EXPECT_EQ(static_cast<ValueTuple*>(DeserializeTuple(r).get())->value, 20);
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace genealog
