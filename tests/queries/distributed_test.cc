// Inter-process provenance (§6): the 3-instance deployments must produce
// exactly the sink outputs and provenance records of the intra-process runs,
// over fully serializing channels (in-memory and TCP loopback), with fused
// and composed (Figure 8) unfolders.
#include <gtest/gtest.h>

#include "queries/query_helpers.h"

namespace genealog::queries {
namespace {

lr::LinearRoadConfig LrConfig() {
  lr::LinearRoadConfig config;
  config.n_cars = 30;
  config.duration_s = 1800;
  config.stop_probability = 0.03;
  config.accident_probability = 0.1;
  config.seed = 3;
  return config;
}

sg::SmartGridConfig SgConfig() {
  sg::SmartGridConfig config;
  config.n_meters = 16;
  config.n_days = 6;
  config.blackout_probability = 0.5;
  config.forced_blackout_days = {2};
  config.blackout_meters = 8;
  config.anomaly_probability = 0.04;
  config.seed = 41;
  return config;
}

QueryBuildOptions Intra(ProvenanceMode mode) {
  QueryBuildOptions options;
  options.mode = mode;
  return options;
}

QueryBuildOptions Dist(ProvenanceMode mode, bool tcp = false,
                       bool composed = false) {
  QueryBuildOptions options;
  options.mode = mode;
  options.distributed = true;
  options.use_tcp = tcp;
  options.composed_unfolders = composed;
  return options;
}

TEST(DistributedNpTest, SinkOutputsEqualIntra) {
  auto lr_data = lr::GenerateLinearRoad(LrConfig());
  auto sg_data = sg::GenerateSmartGrid(SgConfig());
  auto Check = [](auto builder, const auto& data, const char* name) {
    auto intra = RunQuery(builder, data, Intra(ProvenanceMode::kNone));
    auto dist = RunQuery(builder, data, Dist(ProvenanceMode::kNone));
    ASSERT_FALSE(intra.sink_tuples.empty()) << name;
    EXPECT_EQ(intra.sink_tuples, dist.sink_tuples) << name;
  };
  Check(BuildQ1, lr_data, "Q1");
  Check(BuildQ2, lr_data, "Q2");
  Check(BuildQ3, sg_data, "Q3");
  Check(BuildQ4, sg_data, "Q4");
}

TEST(DistributedGlTest, ProvenanceEqualsIntraProvenance) {
  auto lr_data = lr::GenerateLinearRoad(LrConfig());
  auto sg_data = sg::GenerateSmartGrid(SgConfig());
  auto Check = [](auto builder, const auto& data, const char* name) {
    auto intra = RunQuery(builder, data, Intra(ProvenanceMode::kGenealog));
    auto dist = RunQuery(builder, data, Dist(ProvenanceMode::kGenealog));
    ASSERT_FALSE(intra.records.empty()) << name;
    EXPECT_EQ(intra.records, dist.records) << name;
    EXPECT_EQ(intra.sink_tuples, dist.sink_tuples) << name;
  };
  Check(BuildQ1, lr_data, "Q1");
  Check(BuildQ2, lr_data, "Q2");
  Check(BuildQ3, sg_data, "Q3");
  Check(BuildQ4, sg_data, "Q4");
}

TEST(DistributedBlTest, ProvenanceEqualsIntraProvenance) {
  auto lr_data = lr::GenerateLinearRoad(LrConfig());
  auto sg_data = sg::GenerateSmartGrid(SgConfig());
  auto Check = [](auto builder, const auto& data, const char* name) {
    auto intra = RunQuery(builder, data, Intra(ProvenanceMode::kBaseline));
    auto dist = RunQuery(builder, data, Dist(ProvenanceMode::kBaseline));
    ASSERT_FALSE(intra.records.empty()) << name;
    EXPECT_EQ(intra.records, dist.records) << name;
  };
  Check(BuildQ1, lr_data, "Q1");
  Check(BuildQ2, lr_data, "Q2");
  Check(BuildQ3, sg_data, "Q3");
  Check(BuildQ4, sg_data, "Q4");
}

TEST(DistributedGlTest, GlAndBlAgreeAcrossProcesses) {
  auto sg_data = sg::GenerateSmartGrid(SgConfig());
  auto gl = RunQuery(BuildQ3, sg_data, Dist(ProvenanceMode::kGenealog));
  auto bl = RunQuery(BuildQ3, sg_data, Dist(ProvenanceMode::kBaseline));
  ASSERT_FALSE(gl.records.empty());
  EXPECT_EQ(gl.records, bl.records);
}

TEST(DistributedGlTest, TcpTransportEqualsInMemoryTransport) {
  auto lr_data = lr::GenerateLinearRoad(LrConfig());
  auto inmem = RunQuery(BuildQ1, lr_data, Dist(ProvenanceMode::kGenealog));
  auto tcp =
      RunQuery(BuildQ1, lr_data, Dist(ProvenanceMode::kGenealog, /*tcp=*/true));
  ASSERT_FALSE(inmem.records.empty());
  EXPECT_EQ(inmem.records, tcp.records);
  EXPECT_EQ(inmem.sink_tuples, tcp.sink_tuples);
}

TEST(DistributedGlTest, ComposedMuEqualsFusedMu) {
  auto lr_data = lr::GenerateLinearRoad(LrConfig());
  auto sg_data = sg::GenerateSmartGrid(SgConfig());
  auto Check = [](auto builder, const auto& data, const char* name) {
    auto fused = RunQuery(builder, data, Dist(ProvenanceMode::kGenealog));
    auto composed = RunQuery(
        builder, data,
        Dist(ProvenanceMode::kGenealog, /*tcp=*/false, /*composed=*/true));
    ASSERT_FALSE(fused.records.empty()) << name;
    EXPECT_EQ(fused.records, composed.records) << name;
  };
  Check(BuildQ1, lr_data, "Q1");
  Check(BuildQ4, sg_data, "Q4");  // two upstream streams into the MU
}

TEST(DistributedGlTest, NetworkCarriesOnlyProvenanceNotSourceStream) {
  // §6/§7: GeneaLog ships provenance data, BL additionally ships the whole
  // source stream to the provenance node. With realistic (sparse) alert
  // rates the source stream dominates and BL's traffic is a multiple of
  // GL's.
  lr::LinearRoadConfig config;
  config.n_cars = 60;
  config.duration_s = 3600;
  config.stop_probability = 0.004;
  config.accident_probability = 0.01;
  config.seed = 9;
  auto lr_data = lr::GenerateLinearRoad(config);
  BuiltQuery gl_q = BuildQ1(lr_data, Dist(ProvenanceMode::kGenealog));
  gl_q.Run();
  BuiltQuery bl_q = BuildQ1(lr_data, Dist(ProvenanceMode::kBaseline));
  bl_q.Run();
  EXPECT_LT(gl_q.network_bytes(), bl_q.network_bytes());
}

TEST(DistributedTest, InstanceCountsMatchDeployment) {
  auto lr_data = lr::GenerateLinearRoad(LrConfig());
  BuiltQuery np = BuildQ1(lr_data, Dist(ProvenanceMode::kNone));
  EXPECT_EQ(np.n_instances, 2);
  EXPECT_EQ(np.topologies.size(), 2u);
  BuiltQuery gl = BuildQ1(lr_data, Dist(ProvenanceMode::kGenealog));
  EXPECT_EQ(gl.n_instances, 3);
  EXPECT_EQ(gl.topologies.size(), 3u);
  EXPECT_EQ(gl.su_nodes.size(), 2u);  // one per delivering stream (Q1)
  BuiltQuery q4 = BuildQ4(sg::GenerateSmartGrid(SgConfig()),
                          Dist(ProvenanceMode::kGenealog));
  EXPECT_EQ(q4.su_nodes.size(), 3u);  // two sends + one sink-side SU
}

}  // namespace
}  // namespace genealog::queries
