// Helpers shared by the Q1–Q4 integration tests: canonical forms of sink
// outputs and provenance records that are stable across runs and deployments
// (tuple ids differ between topology instantiations, payloads do not).
#ifndef GENEALOG_TESTS_QUERIES_QUERY_HELPERS_H_
#define GENEALOG_TESTS_QUERIES_QUERY_HELPERS_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/type_registry.h"
#include "genealog/provenance_record.h"
#include "queries/queries.h"

namespace genealog::queries {

// Canonical provenance-file bytes: each record re-serialized with id and
// stimulus zeroed, origins and records sorted canonically, then
// re-concatenated. Two runs of the same logical query yield identical bytes
// (raw files never can: tuple ids derive from node uids drawn off a global
// counter, stimuli are wall-clock reads, and record order follows watermark
// arrival granularity). Every remaining byte — type tags, kinds, timestamps,
// payloads, origin sets — must match exactly.
inline std::vector<uint8_t> CanonicalProvenanceBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  auto mask_and_serialize = [](const TuplePtr& t, ByteWriter& w) {
    t->id = 0;
    t->stimulus = 0;
    SerializeTuple(*t, w);
  };

  std::vector<std::vector<uint8_t>> records;
  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    TuplePtr derived = DeserializeTuple(reader);
    const uint32_t n = reader.GetU32();
    std::vector<std::vector<uint8_t>> origins;
    ByteWriter w;
    for (uint32_t i = 0; i < n; ++i) {
      w.Clear();
      mask_and_serialize(DeserializeTuple(reader), w);
      origins.emplace_back(w.bytes().begin(), w.bytes().end());
    }
    std::sort(origins.begin(), origins.end());
    w.Clear();
    mask_and_serialize(derived, w);
    w.PutU32(n);
    std::vector<uint8_t> record(w.bytes().begin(), w.bytes().end());
    for (const auto& o : origins) {
      record.insert(record.end(), o.begin(), o.end());
    }
    records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end());
  std::vector<uint8_t> canonical;
  for (const auto& r : records) {
    canonical.insert(canonical.end(), r.begin(), r.end());
  }
  return canonical;
}

struct CanonicalSinkTuple {
  int64_t ts;
  std::string payload;
  bool operator==(const CanonicalSinkTuple&) const = default;
  auto operator<=>(const CanonicalSinkTuple&) const = default;
};

struct CanonicalRecord {
  int64_t derived_ts;
  std::string derived_payload;
  std::vector<std::pair<int64_t, std::string>> origins;  // (ts, payload)
  bool operator==(const CanonicalRecord&) const = default;
  auto operator<=>(const CanonicalRecord&) const = default;
};

struct QueryRunResult {
  std::vector<CanonicalSinkTuple> sink_tuples;
  std::vector<CanonicalRecord> records;  // sorted canonically

  // Records sorted for order-insensitive comparison.
  void Canonicalize() {
    std::sort(records.begin(), records.end());
    std::sort(sink_tuples.begin(), sink_tuples.end());
  }
};

// Builds and runs one query configuration, capturing sink tuples and
// provenance records through the observer hooks.
template <typename Builder, typename Data>
QueryRunResult RunQuery(Builder&& builder, const Data& data,
                        QueryBuildOptions options) {
  auto result = std::make_shared<QueryRunResult>();
  options.sink_consumer = [result](const TuplePtr& t) {
    result->sink_tuples.push_back({t->ts, t->DebugPayload()});
  };
  options.provenance_consumer = [result](const ProvenanceRecord& r) {
    CanonicalRecord record;
    record.derived_ts = r.derived_ts;
    record.derived_payload = r.derived->DebugPayload();
    for (const TuplePtr& o : r.origins) {
      record.origins.emplace_back(o->ts, o->DebugPayload());
    }
    std::sort(record.origins.begin(), record.origins.end());
    result->records.push_back(std::move(record));
  };
  BuiltQuery q = builder(data, std::move(options));
  q.Run();
  result->Canonicalize();
  return *result;
}

}  // namespace genealog::queries

#endif  // GENEALOG_TESTS_QUERIES_QUERY_HELPERS_H_
