// Helpers shared by the Q1–Q4 integration tests: canonical forms of sink
// outputs and provenance records that are stable across runs and deployments
// (tuple ids differ between topology instantiations, payloads do not).
#ifndef GENEALOG_TESTS_QUERIES_QUERY_HELPERS_H_
#define GENEALOG_TESTS_QUERIES_QUERY_HELPERS_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "genealog/provenance_record.h"
#include "queries/queries.h"

namespace genealog::queries {

struct CanonicalSinkTuple {
  int64_t ts;
  std::string payload;
  bool operator==(const CanonicalSinkTuple&) const = default;
  auto operator<=>(const CanonicalSinkTuple&) const = default;
};

struct CanonicalRecord {
  int64_t derived_ts;
  std::string derived_payload;
  std::vector<std::pair<int64_t, std::string>> origins;  // (ts, payload)
  bool operator==(const CanonicalRecord&) const = default;
  auto operator<=>(const CanonicalRecord&) const = default;
};

struct QueryRunResult {
  std::vector<CanonicalSinkTuple> sink_tuples;
  std::vector<CanonicalRecord> records;  // sorted canonically

  // Records sorted for order-insensitive comparison.
  void Canonicalize() {
    std::sort(records.begin(), records.end());
    std::sort(sink_tuples.begin(), sink_tuples.end());
  }
};

// Builds and runs one query configuration, capturing sink tuples and
// provenance records through the observer hooks.
template <typename Builder, typename Data>
QueryRunResult RunQuery(Builder&& builder, const Data& data,
                        QueryBuildOptions options) {
  auto result = std::make_shared<QueryRunResult>();
  options.sink_consumer = [result](const TuplePtr& t) {
    result->sink_tuples.push_back({t->ts, t->DebugPayload()});
  };
  options.provenance_consumer = [result](const ProvenanceRecord& r) {
    CanonicalRecord record;
    record.derived_ts = r.derived_ts;
    record.derived_payload = r.derived->DebugPayload();
    for (const TuplePtr& o : r.origins) {
      record.origins.emplace_back(o->ts, o->DebugPayload());
    }
    std::sort(record.origins.begin(), record.origins.end());
    result->records.push_back(std::move(record));
  };
  BuiltQuery q = builder(data, std::move(options));
  q.Run();
  result->Canonicalize();
  return *result;
}

}  // namespace genealog::queries

#endif  // GENEALOG_TESTS_QUERIES_QUERY_HELPERS_H_
