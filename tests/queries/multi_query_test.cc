// §3 frames the discussion for a single query and notes it "is nonetheless
// trivial to extend ... to scenarios in which more queries are defined".
// This test deploys two queries over one source (split by a Multiplex) in a
// single SPE instance, each with its own SU and provenance sink, and checks
// that the two provenance pipelines are correct and fully isolated.
#include <gtest/gtest.h>

#include <set>

#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "lr/linear_road.h"
#include "spe/aggregate.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"

namespace genealog {
namespace {

using lr::PositionReport;
using lr::StoppedCarStats;

TEST(MultiQueryTest, TwoQueriesShareOneSourceWithIsolatedProvenance) {
  lr::LinearRoadConfig config;
  config.n_cars = 20;
  config.duration_s = 1200;
  config.stop_probability = 0.03;
  config.seed = 13;
  auto data = lr::GenerateLinearRoad(config);

  Topology topo(1, ProvenanceMode::kGenealog);
  auto* source =
      topo.Add<VectorSourceNode<PositionReport>>("source", data.reports);
  auto* split = topo.Add<MultiplexNode>("split");
  topo.Connect(source, split);

  // Query A: the broken-down-car query (Q1).
  auto* a_filter = topo.Add<FilterNode<PositionReport>>(
      "a.speed0", [](const PositionReport& t) { return t.speed == 0.0; });
  auto* a_agg = topo.Add<AggregateNode<PositionReport, StoppedCarStats>>(
      "a.agg", AggregateOptions{120, 30},
      [](const PositionReport& t) { return t.car_id; },
      [](const WindowView<PositionReport, int64_t>& w) {
        std::set<int64_t> positions;
        for (const auto& t : w.tuples) positions.insert(t->pos);
        return MakeTuple<StoppedCarStats>(
            0, w.key, static_cast<int64_t>(w.tuples.size()),
            static_cast<int64_t>(positions.size()), w.tuples.back()->pos);
      });
  auto* a_stopped = topo.Add<FilterNode<StoppedCarStats>>(
      "a.stopped", [](const StoppedCarStats& t) {
        return t.count == 4 && t.dist_pos == 1;
      });
  auto* a_su = topo.Add<SuNode>("a.su");
  auto* a_sink = topo.Add<SinkNode>("a.sink");
  std::vector<ProvenanceRecord> a_records;
  ProvenanceSinkOptions a_pso;
  a_pso.finalize_slack = 120;
  a_pso.consumer = [&a_records](const ProvenanceRecord& r) {
    a_records.push_back(r);
  };
  auto* a_prov = topo.Add<ProvenanceSinkNode>("a.k2", a_pso);
  topo.Connect(split, a_filter);
  topo.Connect(a_filter, a_agg);
  topo.Connect(a_agg, a_stopped);
  topo.Connect(a_stopped, a_su);
  topo.Connect(a_su, a_sink);
  topo.Connect(a_su, a_prov);

  // Query B: per-car tumbling count of *fast* reports (speed > 30), an
  // entirely different analysis over the same source.
  auto* b_filter = topo.Add<FilterNode<PositionReport>>(
      "b.fast", [](const PositionReport& t) { return t.speed > 30.0; });
  auto* b_agg = topo.Add<AggregateNode<PositionReport, StoppedCarStats>>(
      "b.agg", AggregateOptions{300, 300},
      [](const PositionReport& t) { return t.car_id; },
      [](const WindowView<PositionReport, int64_t>& w) {
        return MakeTuple<StoppedCarStats>(
            0, w.key, static_cast<int64_t>(w.tuples.size()), 1,
            w.tuples.back()->pos);
      });
  auto* b_su = topo.Add<SuNode>("b.su");
  auto* b_sink = topo.Add<SinkNode>("b.sink");
  std::vector<ProvenanceRecord> b_records;
  ProvenanceSinkOptions b_pso;
  b_pso.finalize_slack = 300;
  b_pso.consumer = [&b_records](const ProvenanceRecord& r) {
    b_records.push_back(r);
  };
  auto* b_prov = topo.Add<ProvenanceSinkNode>("b.k2", b_pso);
  topo.Connect(split, b_filter);
  topo.Connect(b_filter, b_agg);
  topo.Connect(b_agg, b_su);
  topo.Connect(b_su, b_sink);
  topo.Connect(b_su, b_prov);

  RunToCompletion(topo);

  // Query A's provenance: zero-speed reports only, 4 per record.
  ASSERT_FALSE(a_records.empty());
  for (const auto& record : a_records) {
    EXPECT_EQ(record.origins.size(), 4u);
    for (const auto& origin : record.origins) {
      EXPECT_EQ(static_cast<const PositionReport&>(*origin).speed, 0.0);
    }
  }
  // Query B's provenance: fast reports only.
  ASSERT_FALSE(b_records.empty());
  for (const auto& record : b_records) {
    EXPECT_FALSE(record.origins.empty());
    for (const auto& origin : record.origins) {
      EXPECT_GT(static_cast<const PositionReport&>(*origin).speed, 30.0);
    }
  }
  EXPECT_EQ(a_sink->count(), a_records.size());
  EXPECT_EQ(b_sink->count(), b_records.size());
}

}  // namespace
}  // namespace genealog
