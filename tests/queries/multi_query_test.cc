// §3 frames the discussion for a single query and notes it "is nonetheless
// trivial to extend ... to scenarios in which more queries are defined".
// This test deploys two queries over one source (split by a Multiplex) in a
// single SPE instance, each with its own SU and provenance sink, and checks
// that the two provenance pipelines are correct and fully isolated — under
// the thread-per-node scheduler AND the worker pool (the multi-query
// scenario the pool exists for), with byte-identical provenance between the
// two.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "lr/linear_road.h"
#include "spe/aggregate.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"

namespace genealog {
namespace {

using lr::PositionReport;
using lr::StoppedCarStats;

struct TwoQueryRun {
  std::vector<ProvenanceRecord> a_records;
  std::vector<ProvenanceRecord> b_records;
  size_t a_sink_count = 0;
  size_t b_sink_count = 0;
};

std::vector<std::string> Canonical(const std::vector<ProvenanceRecord>& recs) {
  std::vector<std::string> out;
  for (const auto& r : recs) {
    std::string line =
        std::to_string(r.derived_ts) + "|" + r.derived->DebugPayload() + "|";
    std::vector<std::string> origins;
    for (const auto& o : r.origins) {
      origins.push_back(std::to_string(o->ts) + "/" + o->DebugPayload());
    }
    std::sort(origins.begin(), origins.end());
    for (const auto& o : origins) line += o + ";";
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TwoQueryRun RunTwoQueries(const lr::LinearRoadData& data, SchedulerMode mode,
                          size_t workers) {
  TwoQueryRun run;
  Topology topo(1, ProvenanceMode::kGenealog);
  topo.set_scheduler(mode);
  topo.set_workers(workers);
  auto* source =
      topo.Add<VectorSourceNode<PositionReport>>("source", data.reports);
  auto* split = topo.Add<MultiplexNode>("split");
  topo.Connect(source, split);

  // Query A: the broken-down-car query (Q1).
  auto* a_filter = topo.Add<FilterNode<PositionReport>>(
      "a.speed0", [](const PositionReport& t) { return t.speed == 0.0; });
  auto* a_agg = topo.Add<AggregateNode<PositionReport, StoppedCarStats>>(
      "a.agg", AggregateOptions{120, 30},
      [](const PositionReport& t) { return t.car_id; },
      [](const WindowView<PositionReport, int64_t>& w) {
        std::set<int64_t> positions;
        for (const auto& t : w.tuples) positions.insert(t->pos);
        return MakeTuple<StoppedCarStats>(
            0, w.key, static_cast<int64_t>(w.tuples.size()),
            static_cast<int64_t>(positions.size()), w.tuples.back()->pos);
      });
  auto* a_stopped = topo.Add<FilterNode<StoppedCarStats>>(
      "a.stopped", [](const StoppedCarStats& t) {
        return t.count == 4 && t.dist_pos == 1;
      });
  auto* a_su = topo.Add<SuNode>("a.su");
  auto* a_sink = topo.Add<SinkNode>("a.sink");
  ProvenanceSinkSpec a_pso;
  a_pso.finalize_slack = 120;
  a_pso.consumer = [&run](const ProvenanceRecord& r) {
    run.a_records.push_back(r);
  };
  auto* a_prov = topo.Add<ProvenanceSinkNode>("a.k2", a_pso);
  topo.Connect(split, a_filter);
  topo.Connect(a_filter, a_agg);
  topo.Connect(a_agg, a_stopped);
  topo.Connect(a_stopped, a_su);
  topo.Connect(a_su, a_sink);
  topo.Connect(a_su, a_prov);

  // Query B: per-car tumbling count of *fast* reports (speed > 30), an
  // entirely different analysis over the same source.
  auto* b_filter = topo.Add<FilterNode<PositionReport>>(
      "b.fast", [](const PositionReport& t) { return t.speed > 30.0; });
  auto* b_agg = topo.Add<AggregateNode<PositionReport, StoppedCarStats>>(
      "b.agg", AggregateOptions{300, 300},
      [](const PositionReport& t) { return t.car_id; },
      [](const WindowView<PositionReport, int64_t>& w) {
        return MakeTuple<StoppedCarStats>(
            0, w.key, static_cast<int64_t>(w.tuples.size()), 1,
            w.tuples.back()->pos);
      });
  auto* b_su = topo.Add<SuNode>("b.su");
  auto* b_sink = topo.Add<SinkNode>("b.sink");
  ProvenanceSinkSpec b_pso;
  b_pso.finalize_slack = 300;
  b_pso.consumer = [&run](const ProvenanceRecord& r) {
    run.b_records.push_back(r);
  };
  auto* b_prov = topo.Add<ProvenanceSinkNode>("b.k2", b_pso);
  topo.Connect(split, b_filter);
  topo.Connect(b_filter, b_agg);
  topo.Connect(b_agg, b_su);
  topo.Connect(b_su, b_sink);
  topo.Connect(b_su, b_prov);

  RunToCompletion(topo);
  run.a_sink_count = a_sink->count();
  run.b_sink_count = b_sink->count();
  return run;
}

lr::LinearRoadData TestData() {
  lr::LinearRoadConfig config;
  config.n_cars = 20;
  config.duration_s = 1200;
  config.stop_probability = 0.03;
  config.seed = 13;
  return lr::GenerateLinearRoad(config);
}

void CheckIsolation(const TwoQueryRun& run) {
  // Query A's provenance: zero-speed reports only, 4 per record.
  ASSERT_FALSE(run.a_records.empty());
  for (const auto& record : run.a_records) {
    EXPECT_EQ(record.origins.size(), 4u);
    for (const auto& origin : record.origins) {
      EXPECT_EQ(static_cast<const PositionReport&>(*origin).speed, 0.0);
    }
  }
  // Query B's provenance: fast reports only.
  ASSERT_FALSE(run.b_records.empty());
  for (const auto& record : run.b_records) {
    EXPECT_FALSE(record.origins.empty());
    for (const auto& origin : record.origins) {
      EXPECT_GT(static_cast<const PositionReport&>(*origin).speed, 30.0);
    }
  }
  EXPECT_EQ(run.a_sink_count, run.a_records.size());
  EXPECT_EQ(run.b_sink_count, run.b_records.size());
}

TEST(MultiQueryTest, TwoQueriesShareOneSourceWithIsolatedProvenance) {
  const auto data = TestData();
  CheckIsolation(RunTwoQueries(data, SchedulerMode::kThreadPerNode, 0));
}

// The same two-query deployment on the worker pool, swept across worker
// counts (1 = fully serialized). The provenance of both queries must be
// byte-identical to the thread-per-node run: the scheduler is pure
// mechanism, invisible in every record.
TEST(MultiQueryTest, SchedulerChoiceIsInvisibleInProvenance) {
  const auto data = TestData();
  const TwoQueryRun reference =
      RunTwoQueries(data, SchedulerMode::kThreadPerNode, 0);
  CheckIsolation(reference);
  const auto ref_a = Canonical(reference.a_records);
  const auto ref_b = Canonical(reference.b_records);
  for (size_t workers : {1u, 2u, 4u}) {
    const TwoQueryRun pool =
        RunTwoQueries(data, SchedulerMode::kPool, workers);
    CheckIsolation(pool);
    EXPECT_EQ(Canonical(pool.a_records), ref_a) << "workers " << workers;
    EXPECT_EQ(Canonical(pool.b_records), ref_b) << "workers " << workers;
  }
}

}  // namespace
}  // namespace genealog
