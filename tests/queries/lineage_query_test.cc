// LineageQuery end-to-end: the store a live Q1 maintains online must answer
// exactly like a store rebuilt by replaying the provenance file the same run
// wrote (intra and distributed, hand-wired and fluent), the file bytes must
// be canonically identical with the store on or off (the store is off the
// emit path), and a query built without the store must hand out an invalid
// handle that throws.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "genealog/lineage_query.h"
#include "genealog/lineage_store.h"
#include "lr/linear_road.h"
#include "queries/query_helpers.h"

namespace genealog::queries {
namespace {

lr::LinearRoadData SmallLr() {
  lr::LinearRoadConfig config;
  config.n_cars = 30;
  config.duration_s = 1800;
  config.stop_probability = 0.03;
  config.seed = 17;
  return lr::GenerateLinearRoad(config);
}

std::vector<uint64_t> Ids(const std::vector<LineageQuery::Entry>& entries) {
  std::vector<uint64_t> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.id);
  return ids;
}

// Every record's backward closure, keyed by derived id — the full answer
// surface of one store, comparable across live and replayed instances of the
// same run (ids persist in the file, so they match exactly).
std::map<uint64_t, std::vector<uint64_t>> AllContributors(
    const LineageQuery& query) {
  std::map<uint64_t, std::vector<uint64_t>> out;
  for (const uint64_t id : query.RetainedRecordIds()) {
    out[id] = Ids(query.Contributors(id));
  }
  return out;
}

QueryBuildOptions LineageOptionsFor(bool distributed,
                                    const std::string& file) {
  QueryBuildOptions options;
  options.mode = ProvenanceMode::kGenealog;
  options.distributed = distributed;
  options.lineage_store = true;
  options.provenance_file = file;
  return options;
}

template <typename Built>
void CheckLiveMatchesReplay(Built& q, const std::string& file) {
  const LineageQuery live = q.lineage();
  ASSERT_TRUE(live.valid());

  LineageStore replayed;
  const uint64_t n = ReplayProvenanceFile(file, replayed);
  const LineageQuery offline(std::shared_ptr<const LineageStore>(
      &replayed, [](const LineageStore*) {}));

  const auto live_stats = live.Stats();
  EXPECT_GT(n, 0u);
  EXPECT_EQ(live_stats.records_ingested, n);
  EXPECT_EQ(live_stats.records_retained, offline.Stats().records_retained);
  EXPECT_EQ(live_stats.tuples_retained, offline.Stats().tuples_retained);
  EXPECT_EQ(live_stats.edges_retained, offline.Stats().edges_retained);

  const auto live_answers = AllContributors(live);
  EXPECT_EQ(live_answers.size(), live_stats.records_retained);
  EXPECT_EQ(live_answers, AllContributors(offline));

  // Spot-check the rest of the query surface against the replayed store.
  for (const auto& [id, contributors] : live_answers) {
    ASSERT_FALSE(contributors.empty());
    EXPECT_EQ(Ids(live.Expand(id, 1)), contributors);
    const uint64_t origin = contributors.front();
    const auto forward = Ids(live.DerivedFrom(origin));
    EXPECT_TRUE(std::binary_search(forward.begin(), forward.end(), id));
    EXPECT_EQ(forward, Ids(offline.DerivedFrom(origin)));
    ASSERT_TRUE(live.Lookup(id).has_value());
    EXPECT_EQ(live.Lookup(id)->ts, offline.Lookup(id)->ts);
    break;  // one record suffices; the closure map covered them all
  }
}

TEST(LineageQueryTest, LiveQ1MatchesReplayedFileIntra) {
  const std::string file = ::testing::TempDir() + "/lq_intra.bin";
  auto q = BuildQ1(SmallLr(), LineageOptionsFor(/*distributed=*/false, file));
  q.Run();
  CheckLiveMatchesReplay(q, file);
  std::remove(file.c_str());
}

TEST(LineageQueryTest, LiveQ1MatchesReplayedFileDistributed) {
  const std::string file = ::testing::TempDir() + "/lq_dist.bin";
  auto q = BuildQ1(SmallLr(), LineageOptionsFor(/*distributed=*/true, file));
  q.Run();
  CheckLiveMatchesReplay(q, file);
  std::remove(file.c_str());
}

TEST(LineageQueryTest, FluentDataflowHandsOutWorkingHandle) {
  const std::string file = ::testing::TempDir() + "/lq_fluent.bin";
  auto flow =
      BuildQ1Fluent(SmallLr(), LineageOptionsFor(/*distributed=*/false, file));
  flow.Run();
  CheckLiveMatchesReplay(flow, file);
  std::remove(file.c_str());
}

// The store must cost nothing when disabled: same canonical provenance
// bytes, no store allocated, throwing handle.
TEST(LineageQueryTest, FileBytesIdenticalWithStoreOnOrOff) {
  const std::string file_on = ::testing::TempDir() + "/lq_on.bin";
  const std::string file_off = ::testing::TempDir() + "/lq_off.bin";
  const lr::LinearRoadData data = SmallLr();

  auto on = BuildQ1(data, LineageOptionsFor(/*distributed=*/false, file_on));
  on.Run();
  QueryBuildOptions off_options =
      LineageOptionsFor(/*distributed=*/false, file_off);
  off_options.lineage_store = false;
  auto off = BuildQ1(data, off_options);
  off.Run();

  EXPECT_NE(on.lineage_store, nullptr);
  EXPECT_EQ(off.lineage_store, nullptr);
  EXPECT_EQ(CanonicalProvenanceBytes(file_on),
            CanonicalProvenanceBytes(file_off));
  std::remove(file_on.c_str());
  std::remove(file_off.c_str());
}

TEST(LineageQueryTest, DisabledStoreYieldsInvalidHandle) {
  QueryBuildOptions options;
  options.mode = ProvenanceMode::kGenealog;
  options.lineage_store = false;
  auto q = BuildQ1(SmallLr(), options);
  q.Run();
  const LineageQuery query = q.lineage();
  EXPECT_FALSE(query.valid());
  EXPECT_THROW(query.Contributors(1), std::logic_error);
  EXPECT_THROW(query.Stats(), std::logic_error);
}

}  // namespace
}  // namespace genealog::queries
