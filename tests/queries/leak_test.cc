// Whole-query memory hygiene: after a BuiltQuery (any query, any mode, any
// deployment) is run and destroyed, every tuple it allocated must have been
// reclaimed — the system-level version of the C2 reachability argument.
#include <gtest/gtest.h>

#include "common/memory_accounting.h"
#include "queries/query_helpers.h"

namespace genealog::queries {
namespace {

lr::LinearRoadConfig LrConfig() {
  lr::LinearRoadConfig config;
  config.n_cars = 25;
  config.duration_s = 1500;
  config.stop_probability = 0.03;
  config.accident_probability = 0.1;
  config.seed = 77;
  return config;
}

sg::SmartGridConfig SgConfig() {
  sg::SmartGridConfig config;
  config.n_meters = 12;
  config.n_days = 5;
  config.forced_blackout_days = {1};
  config.blackout_meters = 8;
  config.anomaly_probability = 0.05;
  config.seed = 78;
  return config;
}

class QueryLeakTest
    : public ::testing::TestWithParam<std::tuple<int, ProvenanceMode, bool>> {};

TEST_P(QueryLeakTest, NoTuplesSurviveTheQuery) {
  const auto [query_index, mode, distributed] = GetParam();
  const auto lr_data = lr::GenerateLinearRoad(LrConfig());
  const auto sg_data = sg::GenerateSmartGrid(SgConfig());
  const int64_t data_tuples = mem::LiveTupleCount();

  {
    QueryBuildOptions options;
    options.mode = mode;
    options.distributed = distributed;
    BuiltQuery q = [&] {
      switch (query_index) {
        case 1:
          return BuildQ1(lr_data, std::move(options));
        case 2:
          return BuildQ2(lr_data, std::move(options));
        case 3:
          return BuildQ3(sg_data, std::move(options));
        default:
          return BuildQ4(sg_data, std::move(options));
      }
    }();
    q.Run();
    EXPECT_GT(q.sink->count(), 0u);
  }
  // Only the generated datasets remain.
  EXPECT_EQ(mem::LiveTupleCount(), data_tuples);
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<int, ProvenanceMode, bool>>&
        info) {
  const auto [query_index, mode, distributed] = info.param;
  return "Q" + std::to_string(query_index) + ToString(mode) +
         (distributed ? "Dist" : "Intra");
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, QueryLeakTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(ProvenanceMode::kNone,
                                         ProvenanceMode::kGenealog,
                                         ProvenanceMode::kBaseline),
                       ::testing::Bool()),
    ParamName);

}  // namespace
}  // namespace genealog::queries
