// The provenance plane's fast paths must be invisible in the data: full Q1
// GL runs (intra-process and distributed) must record the same provenance
// and produce identical (exactly ordered) sink streams across
// GENEALOG_EPOCH_TRAVERSAL × GENEALOG_ASYNC_PROV_SINK. The epoch mark-word
// traversal and the double-buffered async writer can change only where time
// is spent, never what is recorded. Cross-run equality is checked on the
// parsed records in canonical order, like the repo's other determinism
// suites: raw file bytes embed per-run wall-clock stimuli and
// node-uid-derived ids, and record *file order* follows watermark arrival
// granularity, which is timing-dependent even between two identically
// configured runs. The byte-for-byte guarantees are pinned where they are
// well-defined: async on/off over a pinned input stream
// (genealog/async_sink_test) and epoch vs. pointer-set BFS sequences
// (genealog/traversal_fuzz_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/type_registry.h"
#include "genealog/traversal.h"
#include "lr/linear_road.h"
#include "queries/queries.h"
#include "queries/query_helpers.h"

namespace genealog::queries {
namespace {

// One record parsed back from the file, canonicalized to the run-independent
// fields (ts + payload; ids and stimuli differ run to run).
struct FileRecord {
  int64_t derived_ts;
  std::string derived;
  std::vector<std::string> origins;  // sorted
  bool operator==(const FileRecord&) const = default;
  auto operator<=>(const FileRecord&) const = default;
};

std::vector<FileRecord> ParseProvenanceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  std::vector<FileRecord> records;
  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    FileRecord record;
    TuplePtr derived = DeserializeTuple(reader);
    record.derived_ts = derived->ts;
    record.derived = derived->DebugPayload();
    const uint32_t n = reader.GetU32();
    for (uint32_t i = 0; i < n; ++i) {
      TuplePtr origin = DeserializeTuple(reader);
      record.origins.push_back(std::to_string(origin->ts) + "/" +
                               origin->DebugPayload());
    }
    std::sort(record.origins.begin(), record.origins.end());
    records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end());
  return records;
}

class ProvenancePlaneDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { epoch_was_ = EpochTraversalEnabled(); }
  void TearDown() override { SetEpochTraversal(epoch_was_); }

 private:
  bool epoch_was_ = true;
};

lr::LinearRoadData SmallLr() {
  lr::LinearRoadConfig config;
  config.n_cars = 30;
  config.duration_s = 1800;
  config.stop_probability = 0.03;
  config.seed = 23;
  return lr::GenerateLinearRoad(config);
}

struct Q1Artifacts {
  std::vector<FileRecord> records;          // provenance file, canonical order
  std::vector<std::string> ordered_sink;    // sink stream, in emission order
};

Q1Artifacts RunQ1(const lr::LinearRoadData& data, bool epoch, bool async,
                  bool distributed) {
  SetEpochTraversal(epoch);
  const std::string path = ::testing::TempDir() + "/prov_plane_sweep.bin";
  Q1Artifacts out;
  QueryBuildOptions options;
  options.mode = ProvenanceMode::kGenealog;
  options.distributed = distributed;
  options.provenance_file = path;
  options.async_prov_sink = async;
  options.sink_consumer = [&out](const TuplePtr& t) {
    out.ordered_sink.push_back(std::to_string(t->ts) + "|" +
                               t->DebugPayload());
  };
  BuiltQuery q = BuildQ1(data, options);
  q.Run();
  out.records = ParseProvenanceFile(path);
  std::remove(path.c_str());
  return out;
}

void SweepAgainstReference(const lr::LinearRoadData& data, bool distributed) {
  const Q1Artifacts reference =
      RunQ1(data, /*epoch=*/false, /*async=*/false, distributed);
  ASSERT_FALSE(reference.records.empty());
  for (const bool epoch : {false, true}) {
    for (const bool async : {false, true}) {
      if (!epoch && !async) continue;
      const Q1Artifacts got = RunQ1(data, epoch, async, distributed);
      EXPECT_EQ(got.records, reference.records)
          << "epoch=" << epoch << " async=" << async;
      EXPECT_EQ(got.ordered_sink, reference.ordered_sink)
          << "epoch=" << epoch << " async=" << async;
    }
  }
}

TEST_F(ProvenancePlaneDeterminismTest, IntraSweepRecordsIdentical) {
  SweepAgainstReference(SmallLr(), /*distributed=*/false);
}

TEST_F(ProvenancePlaneDeterminismTest,
       DistributedSweepRecordsIdentical) {
  SweepAgainstReference(SmallLr(), /*distributed=*/true);
}

}  // namespace
}  // namespace genealog::queries
