// Fine-grained provenance correctness for Q1–Q4 (intra-process):
//  * GeneaLog's records contain exactly the contributing source tuples
//    (checked against the workloads' reference semantics);
//  * the per-sink-tuple contribution-graph sizes match §7 (4 for Q1, 8 for
//    Q2, 192 for Q3 with the paper's parameters, 24+1 for Q4);
//  * GL and BL — two entirely different mechanisms — produce identical
//    provenance records.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "queries/query_helpers.h"

namespace genealog::queries {
namespace {

lr::LinearRoadConfig LrConfig() {
  lr::LinearRoadConfig config;
  config.n_cars = 40;
  config.duration_s = 2400;
  config.stop_probability = 0.02;
  config.accident_probability = 0.08;
  config.seed = 5;
  return config;
}

sg::SmartGridConfig PaperScaleSgConfig() {
  sg::SmartGridConfig config;
  config.n_meters = 20;
  config.n_days = 6;
  config.blackout_probability = 0.5;
  config.forced_blackout_days = {1, 3};
  config.blackout_meters = 8;  // exactly the paper's 8 meters -> 192 tuples
  config.anomaly_probability = 0.0;
  config.seed = 29;
  return config;
}

QueryBuildOptions Gl() {
  QueryBuildOptions options;
  options.mode = ProvenanceMode::kGenealog;
  return options;
}

QueryBuildOptions Bl() {
  QueryBuildOptions options;
  options.mode = ProvenanceMode::kBaseline;
  return options;
}

TEST(Q1ProvenanceTest, RecordsContainExactlyTheFourZeroSpeedReports) {
  auto data = lr::GenerateLinearRoad(LrConfig());
  auto run = RunQuery(BuildQ1, data, Gl());
  ASSERT_FALSE(run.records.empty());

  // Index the workload's zero-speed reports by (car, ts).
  std::map<std::pair<int64_t, int64_t>, const lr::PositionReport*> zeros;
  for (const auto& r : data.reports) {
    if (r->speed == 0.0) zeros[{r->car_id, r->ts}] = r.get();
  }

  for (const CanonicalRecord& record : run.records) {
    ASSERT_EQ(record.origins.size(), 4u) << record.derived_payload;
    for (const auto& [ts, payload] : record.origins) {
      // Each origin is a zero-speed report inside the sink tuple's window.
      EXPECT_GE(ts, record.derived_ts);
      EXPECT_LT(ts, record.derived_ts + kQ1WindowSize);
      EXPECT_NE(payload.find("speed=0.0"), std::string::npos) << payload;
    }
  }
}

TEST(Q2ProvenanceTest, AccidentRecordsHoldAllInvolvedCarsReports) {
  auto data = lr::GenerateLinearRoad(LrConfig());
  auto run = RunQuery(BuildQ2, data, Gl());
  ASSERT_FALSE(run.records.empty());
  for (const CanonicalRecord& record : run.records) {
    // >= 2 cars x 4 reports; count from the payload: "pos=<p> count=<n>".
    const size_t cars =
        std::stoul(record.derived_payload.substr(
            record.derived_payload.rfind('=') + 1));
    EXPECT_GE(cars, 2u);
    EXPECT_EQ(record.origins.size(), 4 * cars) << record.derived_payload;
  }
}

TEST(Q3ProvenanceTest, BlackoutRecordsHold192SourceReadings) {
  auto data = sg::GenerateSmartGrid(PaperScaleSgConfig());
  auto run = RunQuery(BuildQ3, data, Gl());
  ASSERT_FALSE(run.records.empty()) << "no blackouts planted";
  for (const CanonicalRecord& record : run.records) {
    // 8 meters x 24 hourly readings = 192 (§7's average).
    EXPECT_EQ(record.origins.size(), 192u);
    // Every origin is a zero reading from the alert's day.
    for (const auto& [ts, payload] : record.origins) {
      EXPECT_GE(ts, record.derived_ts - kDayHours);
      EXPECT_LT(ts, record.derived_ts);
      EXPECT_NE(payload.find("cons=0.0"), std::string::npos) << payload;
    }
  }
}

TEST(Q4ProvenanceTest, AnomalyRecordsHoldDayReadingsPlusMidnight) {
  auto config = PaperScaleSgConfig();
  config.anomaly_probability = 0.05;
  config.blackout_probability = 0.0;
  auto data = sg::GenerateSmartGrid(config);
  auto run = RunQuery(BuildQ4, data, Gl());
  ASSERT_FALSE(run.records.empty()) << "no anomalies planted";
  for (const CanonicalRecord& record : run.records) {
    // 24 readings of the summed day + the midnight reading (paper: 24; the
    // +1 is the boundary-inclusion choice documented in EXPERIMENTS.md).
    EXPECT_EQ(record.origins.size(), 25u);
    // Exactly one origin is the midnight reading at the alert timestamp.
    int midnights = 0;
    for (const auto& [ts, payload] : record.origins) {
      if (ts == record.derived_ts) ++midnights;
    }
    EXPECT_EQ(midnights, 1);
  }
}

TEST(ProvenanceEquivalenceTest, GlAndBlProduceIdenticalRecords) {
  auto lr_data = lr::GenerateLinearRoad(LrConfig());
  auto sg_data = sg::GenerateSmartGrid(PaperScaleSgConfig());
  auto sg_anomaly = [] {
    auto config = PaperScaleSgConfig();
    config.anomaly_probability = 0.05;
    return sg::GenerateSmartGrid(config);
  }();

  auto Check = [](auto builder, const auto& data, const char* name) {
    auto gl = RunQuery(builder, data, Gl());
    auto bl = RunQuery(builder, data, Bl());
    ASSERT_FALSE(gl.records.empty()) << name;
    EXPECT_EQ(gl.records, bl.records) << name;
  };
  Check(BuildQ1, lr_data, "Q1");
  Check(BuildQ2, lr_data, "Q2");
  Check(BuildQ3, sg_data, "Q3");
  Check(BuildQ4, sg_anomaly, "Q4");
}

TEST(ProvenanceEquivalenceTest, ComposedUnfoldersMatchFused) {
  auto data = lr::GenerateLinearRoad(LrConfig());
  auto fused = RunQuery(BuildQ1, data, Gl());
  QueryBuildOptions composed = Gl();
  composed.composed_unfolders = true;
  auto composed_run = RunQuery(BuildQ1, data, composed);
  ASSERT_FALSE(fused.records.empty());
  EXPECT_EQ(fused.records, composed_run.records);
  EXPECT_EQ(fused.sink_tuples, composed_run.sink_tuples);
}

TEST(ProvenanceEquivalenceTest, ProvenanceIsDeterministicAcrossRuns) {
  auto data = sg::GenerateSmartGrid(PaperScaleSgConfig());
  auto first = RunQuery(BuildQ3, data, Gl());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(RunQuery(BuildQ3, data, Gl()).records, first.records);
  }
}

}  // namespace
}  // namespace genealog::queries
