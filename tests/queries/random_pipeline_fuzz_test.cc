// Provenance fuzz test: GeneaLog (pointer graphs + traversal) and the
// Ariadne-style baseline (annotation sets + store join) are two entirely
// independent provenance mechanisms. For RANDOMLY generated operator
// pipelines — filters, maps, sliding/tumbling grouped aggregates, and
// multiplex/join diamonds, in random order — both must produce identical
// provenance records. Any disagreement exposes a bug in one of them.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "baseline/resolver.h"
#include "common/rng.h"
#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "spe/aggregate.h"
#include "spe/dataflow.h"
#include "spe/join.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::KeyedTuple;

struct StagePlan {
  enum Kind { kFilter, kMap, kAggregate, kDiamond } kind;
  int64_t a = 0;  // modulus / shift / ws
  int64_t b = 0;  // wa / join ws
  bool group_by_key = false;
};

struct PipelinePlan {
  std::vector<StagePlan> stages;
  int64_t total_window_span = 1;
};

PipelinePlan MakePlan(uint64_t seed) {
  SplitMix64 rng(seed);
  PipelinePlan plan;
  const int n_stages = static_cast<int>(rng.UniformInt(2, 4));
  int windowed_stages = 0;
  for (int i = 0; i < n_stages; ++i) {
    StagePlan stage;
    switch (rng.UniformInt(0, 3)) {
      case 0:
        stage.kind = StagePlan::kFilter;
        stage.a = rng.UniformInt(2, 4);  // drop 1-in-a
        break;
      case 1:
        stage.kind = StagePlan::kMap;
        stage.a = rng.UniformInt(1, 50);
        break;
      case 2: {
        stage.kind = StagePlan::kAggregate;
        stage.a = rng.UniformInt(2, 5) * 2;                    // ws
        stage.b = rng.Bernoulli(0.5) ? stage.a : stage.a / 2;  // wa
        stage.group_by_key = rng.Bernoulli(0.5);
        plan.total_window_span += stage.a;
        ++windowed_stages;
        break;
      }
      default:
        stage.kind = StagePlan::kDiamond;
        stage.a = rng.UniformInt(0, 4);  // join ws
        plan.total_window_span += stage.a;
        ++windowed_stages;
        break;
    }
    // Keep graphs from exploding: at most two windowed stages.
    if (windowed_stages > 2) {
      stage.kind = StagePlan::kFilter;
      stage.a = 3;
    }
    plan.stages.push_back(stage);
  }
  return plan;
}

// Builds the planned stages; returns the exit node.
Node* BuildStages(Topology& topo, Node* input, const PipelinePlan& plan) {
  Node* head = input;
  int idx = 0;
  for (const StagePlan& stage : plan.stages) {
    const std::string name = "stage" + std::to_string(idx++);
    switch (stage.kind) {
      case StagePlan::kFilter: {
        auto* f = topo.Add<FilterNode<KeyedTuple>>(
            name, [m = stage.a](const KeyedTuple& t) {
              return (t.key + t.ts) % m != 0;
            });
        topo.Connect(head, f);
        head = f;
        break;
      }
      case StagePlan::kMap: {
        auto* map = topo.Add<MapNode<KeyedTuple, KeyedTuple>>(
            name, [c = stage.a](const KeyedTuple& in,
                                MapCollector<KeyedTuple>& out) {
              out.Emit(MakeTuple<KeyedTuple>(0, in.key,
                                             in.value + static_cast<double>(c)));
            });
        topo.Connect(head, map);
        head = map;
        break;
      }
      case StagePlan::kAggregate: {
        auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
            name, AggregateOptions{stage.a, stage.b},
            [group = stage.group_by_key](const KeyedTuple& t) {
              return group ? t.key : int64_t{0};
            },
            [](const WindowView<KeyedTuple, int64_t>& w) {
              double sum = 0;
              for (const auto& t : w.tuples) sum += t->value;
              return MakeTuple<KeyedTuple>(0, w.key, sum);
            });
        topo.Connect(head, agg);
        head = agg;
        break;
      }
      case StagePlan::kDiamond: {
        auto* mux = topo.Add<MultiplexNode>(name + ".mux");
        auto* left = topo.Add<FilterNode<KeyedTuple>>(
            name + ".l", [](const KeyedTuple& t) { return t.ts % 2 == 0; });
        auto* right = topo.Add<FilterNode<KeyedTuple>>(
            name + ".r", [](const KeyedTuple& t) { return t.ts % 3 == 0; });
        auto* join = topo.Add<JoinNode<KeyedTuple, KeyedTuple, KeyedTuple>>(
            name + ".join", JoinOptions{stage.a},
            [](const KeyedTuple& l, const KeyedTuple& r) {
              return l.key == r.key;
            },
            [](const KeyedTuple& l, const KeyedTuple& r) {
              return MakeTuple<KeyedTuple>(0, l.key, l.value + 1000 * r.value);
            });
        topo.Connect(head, mux);
        topo.Connect(mux, left);
        topo.Connect(mux, right);
        topo.Connect(left, join);
        topo.Connect(right, join);
        head = join;
        break;
      }
    }
  }
  return head;
}

struct CanonicalRecord {
  int64_t derived_ts;
  std::string derived;
  std::vector<std::string> origins;
  bool operator==(const CanonicalRecord&) const = default;
  auto operator<=>(const CanonicalRecord&) const = default;
};

CanonicalRecord Canonicalize(const ProvenanceRecord& r) {
  CanonicalRecord out;
  out.derived_ts = r.derived_ts;
  out.derived = r.derived->DebugPayload();
  for (const TuplePtr& o : r.origins) {
    out.origins.push_back(std::to_string(o->ts) + "/" + o->DebugPayload());
  }
  std::sort(out.origins.begin(), out.origins.end());
  return out;
}

std::vector<IntrusivePtr<KeyedTuple>> MakeInput(uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<IntrusivePtr<KeyedTuple>> data;
  int64_t ts = 0;
  for (int i = 0; i < 250; ++i) {
    ts += rng.UniformInt(0, 2);
    data.push_back(MakeTuple<KeyedTuple>(
        ts, rng.UniformInt(0, 3), static_cast<double>(rng.UniformInt(1, 9))));
  }
  return data;
}

std::vector<CanonicalRecord> RunPlan(const PipelinePlan& plan, uint64_t seed,
                                     ProvenanceMode mode, size_t batch_size = 1,
                                     bool spsc_edges = true,
                                     bool adaptive_batch = true,
                                     std::optional<SchedulerMode> scheduler = {},
                                     size_t workers = 0) {
  Topology topo(1, mode);
  topo.set_default_batch_size(batch_size);
  topo.set_spsc_edges(spsc_edges);
  topo.set_adaptive_batch(adaptive_batch);
  // Scheduler left unset keeps the environment default, so the CI scheduler
  // sweeps (GENEALOG_SCHEDULER=pool) cover every test in this file.
  if (scheduler.has_value()) topo.set_scheduler(*scheduler);
  if (workers > 0) topo.set_workers(workers);
  auto* source =
      topo.Add<VectorSourceNode<KeyedTuple>>("source", MakeInput(seed));
  std::vector<CanonicalRecord> records;
  auto on_record = [&records](const ProvenanceRecord& r) {
    records.push_back(Canonicalize(r));
  };

  if (mode == ProvenanceMode::kGenealog) {
    Node* exit = BuildStages(topo, source, plan);
    auto* su = topo.Add<SuNode>("su");
    auto* sink = topo.Add<SinkNode>("sink");
    ProvenanceSinkSpec pso;
    pso.finalize_slack = plan.total_window_span;
    pso.consumer = on_record;
    auto* prov = topo.Add<ProvenanceSinkNode>("k2", pso);
    topo.Connect(exit, su);
    topo.Connect(su, sink);
    topo.Connect(su, prov);
  } else {
    auto* tap = topo.Add<MultiplexNode>("tap");
    topo.Connect(source, tap);
    Node* exit = BuildStages(topo, tap, plan);
    auto* sink_tap = topo.Add<MultiplexNode>("sink_tap");
    auto* sink = topo.Add<SinkNode>("sink");
    BaselineResolverOptions bro;
    bro.slack = plan.total_window_span;
    bro.consumer = on_record;
    auto* resolver = topo.Add<BaselineResolverNode>("resolver", bro);
    topo.Connect(exit, sink_tap);
    topo.Connect(sink_tap, sink);
    topo.Connect(sink_tap, resolver);  // port 0
    topo.Connect(tap, resolver);       // port 1
  }
  RunToCompletion(topo);
  std::sort(records.begin(), records.end());
  return records;
}

class RandomPipelineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPipelineFuzzTest, GenealogAndBaselineAgree) {
  const uint64_t seed = GetParam();
  const PipelinePlan plan = MakePlan(seed);
  auto gl = RunPlan(plan, seed, ProvenanceMode::kGenealog);
  auto bl = RunPlan(plan, seed, ProvenanceMode::kBaseline);
  EXPECT_EQ(gl, bl) << "seed " << seed;
  // Most plans should produce at least some provenance; all-empty results
  // would make the equivalence vacuous, so track it.
  if (gl.empty()) {
    GTEST_LOG_(INFO) << "seed " << seed << " produced no records";
  }
}

TEST_P(RandomPipelineFuzzTest, GenealogIsRunDeterministic) {
  const uint64_t seed = GetParam();
  const PipelinePlan plan = MakePlan(seed);
  auto first = RunPlan(plan, seed, ProvenanceMode::kGenealog);
  EXPECT_EQ(RunPlan(plan, seed, ProvenanceMode::kGenealog), first);
}

// The data-plane knobs — batch size, edge implementation (SPSC ring vs.
// mutex queue), adaptive batching — must be invisible in the provenance
// records of every randomly generated pipeline. The reference runs the seed
// configuration (batch 1, mutex edges, static batching).
TEST_P(RandomPipelineFuzzTest, GenealogIsDataPlaneInvariant) {
  const uint64_t seed = GetParam();
  const PipelinePlan plan = MakePlan(seed);
  const auto reference = RunPlan(plan, seed, ProvenanceMode::kGenealog,
                                 /*batch_size=*/1, /*spsc_edges=*/false,
                                 /*adaptive_batch=*/false);
  struct Config {
    size_t batch;
    bool spsc;
    bool adaptive;
  };
  constexpr Config kConfigs[] = {
      {1, true, false},   // ring at the seed batch size
      {16, false, false}, // batched mutex, static
      {16, true, false},  // batched ring, static
      {16, false, true},  // batched mutex, adaptive
      {16, true, true},   // batched ring, adaptive
      {64, true, true},   // the production default shape
  };
  for (const Config& config : kConfigs) {
    EXPECT_EQ(RunPlan(plan, seed, ProvenanceMode::kGenealog, config.batch,
                      config.spsc, config.adaptive),
              reference)
        << "seed " << seed << " batch " << config.batch << " spsc "
        << config.spsc << " adaptive " << config.adaptive;
  }
}

// Scheduler invariance: the worker pool — at any worker count, over either
// edge implementation — must reproduce the thread-per-node seed
// configuration's provenance byte for byte on every randomly generated
// pipeline. workers=1 is the fully serialized round-robin case; the larger
// counts migrate tasks between workers mid-stream.
TEST_P(RandomPipelineFuzzTest, GenealogIsSchedulerInvariant) {
  const uint64_t seed = GetParam();
  const PipelinePlan plan = MakePlan(seed);
  const auto reference = RunPlan(plan, seed, ProvenanceMode::kGenealog,
                                 /*batch_size=*/1, /*spsc_edges=*/false,
                                 /*adaptive_batch=*/false,
                                 SchedulerMode::kThreadPerNode);
  struct Config {
    size_t workers;
    size_t batch;
    bool spsc;
  };
  constexpr Config kConfigs[] = {
      {1, 1, false},  // serialized pool over the seed data plane
      {2, 16, true},  // two workers, batched rings
      {4, 64, true},  // production default shape on the pool
  };
  for (const Config& config : kConfigs) {
    EXPECT_EQ(RunPlan(plan, seed, ProvenanceMode::kGenealog, config.batch,
                      config.spsc, /*adaptive_batch=*/false,
                      SchedulerMode::kPool, config.workers),
              reference)
        << "seed " << seed << " workers " << config.workers << " batch "
        << config.batch << " spsc " << config.spsc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineFuzzTest,
                         ::testing::Range<uint64_t>(1, 21));

// --- fluent parallel stages -------------------------------------------------
// Random stateless prefix -> .KeyBy(key).Parallel(n).Aggregate -> random
// stateless suffix, built through the fluent API so the whole lowered stage
// (KeyPartitionNode, replicas, KeyedMergeNode, woven SUs) is under test. An
// empty suffix (about a third of seeds) puts the merge directly before the
// sink and exercises the per-replica SU placement; a non-empty one exercises
// the single-SU fallback.

struct ParallelFuzzPlan {
  std::vector<StagePlan> prefix;  // kFilter / kMap only
  std::vector<StagePlan> suffix;
  int64_t ws = 0;
  int64_t wa = 0;
};

ParallelFuzzPlan MakeParallelFuzzPlan(uint64_t seed) {
  SplitMix64 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  ParallelFuzzPlan plan;
  auto stateless = [&rng](std::vector<StagePlan>& stages, int max_n) {
    const int n = static_cast<int>(rng.UniformInt(0, max_n));
    for (int i = 0; i < n; ++i) {
      StagePlan stage;
      if (rng.Bernoulli(0.5)) {
        stage.kind = StagePlan::kFilter;
        stage.a = rng.UniformInt(2, 4);
      } else {
        stage.kind = StagePlan::kMap;
        stage.a = rng.UniformInt(1, 50);
      }
      stages.push_back(stage);
    }
  };
  stateless(plan.prefix, 2);
  stateless(plan.suffix, 2);
  plan.ws = rng.UniformInt(2, 5) * 2;
  plan.wa = rng.Bernoulli(0.5) ? plan.ws : plan.ws / 2;
  return plan;
}

struct ParallelFuzzResult {
  std::vector<std::string> sink;             // emission order
  std::vector<CanonicalRecord> records;      // sorted canonically
  bool operator==(const ParallelFuzzResult&) const = default;
};

// shards == 0 builds the single-instance reference (a plain Aggregate node);
// shards >= 1 routes the same aggregation through KeyBy/Parallel. `cut`
// places everything from the aggregate on instance 2 (`.At(2)`), lowering
// the crossing edge to Send/Receive — whose frames `codec` then encodes.
ParallelFuzzResult RunFluentParallel(const ParallelFuzzPlan& plan,
                                     uint64_t seed, int shards,
                                     size_t batch_size,
                                     SchedulerMode scheduler,
                                     size_t workers,
                                     WireCodec codec = WireCodec::kRaw,
                                     bool cut = false) {
  ParallelFuzzResult out;
  DataflowOptions opts;
  opts.mode = ProvenanceMode::kGenealog;
  opts.engine.batch_size = batch_size;
  opts.engine.scheduler = scheduler;
  opts.engine.wire_codec = codec;
  if (workers > 0) opts.engine.workers = workers;
  opts.provenance_consumer = [&out](const ProvenanceRecord& r) {
    out.records.push_back(Canonicalize(r));
  };
  Dataflow df(std::move(opts));
  Stream<KeyedTuple> head = df.Source<KeyedTuple>("source", MakeInput(seed));
  int idx = 0;
  auto apply = [&head, &idx](const std::vector<StagePlan>& stages) {
    for (const StagePlan& stage : stages) {
      const std::string name = "stage" + std::to_string(idx++);
      if (stage.kind == StagePlan::kFilter) {
        head = head.Filter(name, [m = stage.a](const KeyedTuple& t) {
          return (t.key + t.ts) % m != 0;
        });
      } else {
        head = head.Map<KeyedTuple>(
            name,
            [c = stage.a](const KeyedTuple& in, MapCollector<KeyedTuple>& emit) {
              const double value = in.value + static_cast<double>(c);
              emit.Emit(MakeTuple<KeyedTuple>(0, in.key, value));
            });
      }
    }
  };
  apply(plan.prefix);
  if (cut) head = head.At(2);
  const auto key_fn = [](const KeyedTuple& t) { return t.key; };
  const auto combiner = [](const WindowView<KeyedTuple, int64_t>& w) {
    double sum = 0;
    for (const auto& t : w.tuples) sum += t->value;
    return MakeTuple<KeyedTuple>(0, w.key, sum);
  };
  const AggregateOptions agg_options{plan.ws, plan.wa};
  if (shards == 0) {
    head = head.Aggregate<KeyedTuple>("agg", agg_options, key_fn, combiner);
  } else {
    head = head.KeyBy(key_fn).Parallel(shards).Aggregate<KeyedTuple>(
        "agg", agg_options, combiner);
  }
  apply(plan.suffix);
  head.Sink("sink", [&out](const TuplePtr& t) {
    out.sink.push_back(std::to_string(t->ts) + "|" + t->DebugPayload());
  });
  BuiltDataflow flow = df.Build();
  flow.Run();
  std::sort(out.records.begin(), out.records.end());
  return out;
}

// Every shard count, scheduler and batch size must reproduce the
// single-instance plan exactly: emission-order-identical sink stream,
// identical canonical provenance records.
TEST_P(RandomPipelineFuzzTest, FluentParallelStageMatchesSingleInstance) {
  const uint64_t seed = GetParam();
  const ParallelFuzzPlan plan = MakeParallelFuzzPlan(seed);
  const ParallelFuzzResult reference = RunFluentParallel(
      plan, seed, /*shards=*/0, /*batch_size=*/1,
      SchedulerMode::kThreadPerNode, /*workers=*/0);
  if (reference.sink.empty()) {
    GTEST_LOG_(INFO) << "seed " << seed << " produced no sink tuples";
  }
  for (const int shards : {1, 2, 4}) {
    for (const SchedulerMode scheduler :
         {SchedulerMode::kThreadPerNode, SchedulerMode::kPool}) {
      for (const size_t batch : {size_t{1}, size_t{64}}) {
        const ParallelFuzzResult got =
            RunFluentParallel(plan, seed, shards, batch, scheduler,
                              scheduler == SchedulerMode::kPool ? 3 : 0);
        EXPECT_EQ(got, reference)
            << "seed " << seed << " shards " << shards << " pool "
            << (scheduler == SchedulerMode::kPool) << " batch " << batch;
      }
    }
  }
}

// The wire codec must be invisible across a deployment cut on every random
// pipeline: the distributed build (stateless prefix on instance 1, the
// aggregate and suffix on instance 2, Send/Receive between them) must
// reproduce the intra-process reference under both codecs at every batch
// size, including composed with the key-partitioned parallel stage.
TEST_P(RandomPipelineFuzzTest, FluentDistributedIsWireCodecInvariant) {
  const uint64_t seed = GetParam();
  const ParallelFuzzPlan plan = MakeParallelFuzzPlan(seed);
  const ParallelFuzzResult reference = RunFluentParallel(
      plan, seed, /*shards=*/0, /*batch_size=*/1,
      SchedulerMode::kThreadPerNode, /*workers=*/0);
  for (const WireCodec codec : {WireCodec::kRaw, WireCodec::kCompact}) {
    for (const size_t batch : {size_t{1}, size_t{64}}) {
      for (const int shards : {0, 2}) {
        const ParallelFuzzResult got = RunFluentParallel(
            plan, seed, shards, batch, SchedulerMode::kThreadPerNode,
            /*workers=*/0, codec, /*cut=*/true);
        EXPECT_EQ(got, reference)
            << "seed " << seed << " codec "
            << (codec == WireCodec::kCompact ? "compact" : "raw") << " batch "
            << batch << " shards " << shards;
      }
    }
  }
}

}  // namespace
}  // namespace genealog
