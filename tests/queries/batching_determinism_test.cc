// The data-plane knobs must be invisible in the data: for every batch size,
// edge implementation (lock-free SPSC ring vs. mutex BatchQueue) and
// adaptive-batching setting, the engine must produce byte-identical sink
// output sequences and identical provenance traversals. These tests sweep
// batch {1, 4, 64, 1024} x edge {ring, mutex} x adaptive {on, off} over
// determinism_test-style topologies (the hostile diamond merge), a
// multi-source union chain, and full Q1 provenance runs (intra-process and
// distributed GL, which also exercises the batch wire frames), always
// comparing against the seed configuration (batch 1, mutex, static).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "queries/queries.h"
#include "queries/query_helpers.h"
#include "spe/aggregate.h"
#include "spe/join.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using queries::QueryBuildOptions;
using queries::QueryRunResult;
using queries::RunQuery;
using testing::Collector;
using testing::KeyedTuple;

constexpr size_t kSweep[] = {1, 4, 64, 1024};

// Edge implementation x adaptive batching. Every cell must match the seed
// configuration (mutex/static at batch 1) byte for byte.
struct EdgeConfig {
  bool spsc;
  bool adaptive;
  const char* name;
};
constexpr EdgeConfig kEdgeConfigs[] = {
    {false, false, "mutex/static"},
    {false, true, "mutex/adaptive"},
    {true, false, "ring/static"},
    {true, true, "ring/adaptive"},
};

std::vector<IntrusivePtr<KeyedTuple>> RandomKeyed(uint64_t seed, int n) {
  SplitMix64 rng(seed);
  std::vector<IntrusivePtr<KeyedTuple>> out;
  int64_t ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += rng.UniformInt(0, 2);  // many timestamp ties
    out.push_back(MakeTuple<KeyedTuple>(ts, rng.UniformInt(0, 4),
                                        static_cast<double>(i)));
  }
  return out;
}

// The Q4 shape: Multiplex -> {Aggregate, Filter} -> Join. A diamond with a
// slow (windowed) branch and a fast branch is the hardest case for
// deterministic merging — and for batching, since the branches chunk
// independently.
std::vector<std::tuple<int64_t, int64_t, double>> RunDiamond(
    uint64_t seed, size_t batch_size, const EdgeConfig& config) {
  Topology topo;
  topo.set_default_batch_size(batch_size);
  topo.set_spsc_edges(config.spsc);
  topo.set_adaptive_batch(config.adaptive);
  auto* source =
      topo.Add<VectorSourceNode<KeyedTuple>>("src", RandomKeyed(seed, 400));
  auto* mux = topo.Add<MultiplexNode>("mux");
  auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const KeyedTuple& t) { return t.key; },
      [](const WindowView<KeyedTuple, int64_t>& w) {
        double sum = 0;
        for (const auto& t : w.tuples) sum += t->value;
        return MakeTuple<KeyedTuple>(0, w.key, sum);
      });
  auto* filter = topo.Add<FilterNode<KeyedTuple>>(
      "f", [](const KeyedTuple& t) { return t.ts % 10 == 0; });
  auto* join = topo.Add<JoinNode<KeyedTuple, KeyedTuple, KeyedTuple>>(
      "join", JoinOptions{10},
      [](const KeyedTuple& l, const KeyedTuple& r) { return l.key == r.key; },
      [](const KeyedTuple& l, const KeyedTuple& r) {
        return MakeTuple<KeyedTuple>(0, l.key, l.value * 1000 + r.value);
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, mux);
  topo.Connect(mux, agg);
  topo.Connect(mux, filter);
  topo.Connect(agg, join);     // port 0
  topo.Connect(filter, join);  // port 1
  topo.Connect(join, sink);
  RunToCompletion(topo);

  std::vector<std::tuple<int64_t, int64_t, double>> out;
  for (const auto& t : collector.tuples()) {
    const auto& k = static_cast<const KeyedTuple&>(*t);
    out.emplace_back(t->ts, k.key, k.value);
  }
  return out;
}

TEST(BatchingDeterminismTest, DiamondOutputIsDataPlaneInvariant) {
  const auto reference = RunDiamond(7, 1, kEdgeConfigs[0]);
  ASSERT_FALSE(reference.empty());
  for (size_t batch_size : kSweep) {
    for (const EdgeConfig& config : kEdgeConfigs) {
      for (int run = 0; run < 2; ++run) {
        EXPECT_EQ(RunDiamond(7, batch_size, config), reference)
            << "batch_size " << batch_size << " config " << config.name
            << " run " << run;
      }
    }
  }
}

std::vector<std::pair<int64_t, double>> RunUnionChain(
    uint64_t seed, size_t batch_size, const EdgeConfig& config) {
  Topology topo;
  topo.set_default_batch_size(batch_size);
  topo.set_spsc_edges(config.spsc);
  topo.set_adaptive_batch(config.adaptive);
  auto* a = topo.Add<VectorSourceNode<KeyedTuple>>("a", RandomKeyed(seed, 300));
  auto* b =
      topo.Add<VectorSourceNode<KeyedTuple>>("b", RandomKeyed(seed + 1, 300));
  auto* c =
      topo.Add<VectorSourceNode<KeyedTuple>>("c", RandomKeyed(seed + 2, 300));
  auto* u1 = topo.Add<UnionNode>("u1");
  auto* u2 = topo.Add<UnionNode>("u2");
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(a, u1);
  topo.Connect(b, u1);
  topo.Connect(u1, u2);
  topo.Connect(c, u2);
  topo.Connect(u2, sink);
  RunToCompletion(topo);

  std::vector<std::pair<int64_t, double>> out;
  for (const auto& t : collector.tuples()) {
    out.emplace_back(t->ts, static_cast<const KeyedTuple&>(*t).value);
  }
  return out;
}

TEST(BatchingDeterminismTest, UnionChainIsDataPlaneInvariant) {
  const auto reference = RunUnionChain(11, 1, kEdgeConfigs[0]);
  ASSERT_FALSE(reference.empty());
  for (size_t batch_size : kSweep) {
    for (const EdgeConfig& config : kEdgeConfigs) {
      for (int run = 0; run < 2; ++run) {
        EXPECT_EQ(RunUnionChain(11, batch_size, config), reference)
            << "batch_size " << batch_size << " config " << config.name
            << " run " << run;
      }
    }
  }
}

lr::LinearRoadData SmallLr() {
  lr::LinearRoadConfig config;
  config.n_cars = 40;
  config.duration_s = 2400;
  config.stop_probability = 0.02;
  config.seed = 5;
  return lr::GenerateLinearRoad(config);
}

// Full Q1 with GeneaLog provenance: sink outputs and the provenance
// traversals recorded by K2 must be identical at every batch size. The sink
// sequence is compared in emission order (byte-identical stream), the
// records canonically (their finalize order legitimately depends on
// watermark granularity, their contents must not).
struct Q1Run {
  std::vector<std::string> ordered_sink;
  QueryRunResult canonical;
};

Q1Run RunQ1(const lr::LinearRoadData& data, size_t batch_size,
            bool distributed, const EdgeConfig& config) {
  Q1Run run;
  QueryBuildOptions options;
  options.mode = ProvenanceMode::kGenealog;
  options.distributed = distributed;
  options.batch_size = batch_size;
  options.spsc_edges = config.spsc;
  options.adaptive_batch = config.adaptive;
  options.sink_consumer = [&run](const TuplePtr& t) {
    run.ordered_sink.push_back(std::to_string(t->ts) + "|" + t->DebugPayload());
  };
  options.provenance_consumer = [&run](const ProvenanceRecord& r) {
    queries::CanonicalRecord record;
    record.derived_ts = r.derived_ts;
    record.derived_payload = r.derived->DebugPayload();
    for (const TuplePtr& o : r.origins) {
      record.origins.emplace_back(o->ts, o->DebugPayload());
    }
    std::sort(record.origins.begin(), record.origins.end());
    run.canonical.records.push_back(std::move(record));
  };
  queries::BuiltQuery q = queries::BuildQ1(data, std::move(options));
  q.Run();
  run.canonical.Canonicalize();
  return run;
}

void SweepQ1(bool distributed) {
  const lr::LinearRoadData data = SmallLr();
  const Q1Run reference = RunQ1(data, 1, distributed, kEdgeConfigs[0]);
  ASSERT_FALSE(reference.ordered_sink.empty());
  ASSERT_FALSE(reference.canonical.records.empty());
  auto check = [&](size_t batch_size, const EdgeConfig& config) {
    const Q1Run run = RunQ1(data, batch_size, distributed, config);
    EXPECT_EQ(run.ordered_sink, reference.ordered_sink)
        << "batch_size " << batch_size << " config " << config.name;
    EXPECT_EQ(run.canonical.records, reference.canonical.records)
        << "batch_size " << batch_size << " config " << config.name;
  };
  // The full batch sweep rides on the production default (ring + adaptive);
  // at batch 64 every edge/adaptive combination is crossed.
  for (size_t batch_size : kSweep) {
    check(batch_size, kEdgeConfigs[3]);
  }
  for (const EdgeConfig& config : kEdgeConfigs) {
    check(64, config);
  }
}

TEST(BatchingDeterminismTest, Q1ProvenanceIsDataPlaneInvariant) {
  SweepQ1(/*distributed=*/false);
}

TEST(BatchingDeterminismTest, Q1DistributedProvenanceIsDataPlaneInvariant) {
  SweepQ1(/*distributed=*/true);
}

}  // namespace
}  // namespace genealog
