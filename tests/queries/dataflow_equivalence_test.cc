// The fluent dataflow builder must be a pure re-spelling of the hand-wired
// deployments, for every evaluation query: BuildQ{1..4}Fluent
// (spe/dataflow.h + genealog/instrument weaving) and the hand-wired
// BuildQ{1..4} (queries/assemble.h) must produce identical sink streams (in
// emission order) and byte-identical canonical provenance files (see
// CanonicalProvenanceBytes in query_helpers.h for what must be masked and
// why). Q1 is swept across batch {1, 64} x edge {ring, mutex}; Q2–Q4 ride
// the ring at batch {1, 64} — their plans exercise what Q1 cannot (chained
// aggregates, window-end emission, Multiplex fan-out, Join), the edge
// implementation is already pinned by Q1. Everything runs intra and
// distributed.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "lr/linear_road.h"
#include "queries/query_helpers.h"
#include "smartgrid/smartgrid.h"

namespace genealog::queries {
namespace {

lr::LinearRoadData SmallLr() {
  lr::LinearRoadConfig config;
  config.n_cars = 30;
  config.duration_s = 1800;
  config.stop_probability = 0.03;
  config.seed = 17;
  return lr::GenerateLinearRoad(config);
}

lr::LinearRoadData AccidentLr() {
  lr::LinearRoadConfig config;
  config.n_cars = 50;
  config.duration_s = 2400;
  config.stop_probability = 0.02;
  config.accident_probability = 0.08;
  config.seed = 11;
  return lr::GenerateLinearRoad(config);
}

sg::SmartGridData SmallSg() {
  sg::SmartGridConfig config;
  config.n_meters = 25;
  config.n_days = 8;
  config.blackout_probability = 0.4;
  config.forced_blackout_days = {1, 4};
  config.blackout_meters = 9;
  config.anomaly_probability = 0.03;
  config.seed = 23;
  return sg::GenerateSmartGrid(config);
}

struct RunArtifacts {
  std::vector<std::string> ordered_sink;  // emission order
  std::vector<uint8_t> provenance;        // canonical file bytes
  uint64_t records = 0;
};

QueryBuildOptions MakeOptions(bool distributed, size_t batch, bool spsc,
                              const std::string& file,
                              std::vector<std::string>& sink_out,
                              WireCodec codec = WireCodec::kRaw) {
  QueryBuildOptions options;
  options.mode = ProvenanceMode::kGenealog;
  options.distributed = distributed;
  options.batch_size = batch;
  options.spsc_edges = spsc;
  options.wire_codec = codec;
  options.provenance_file = file;
  options.sink_consumer = [&sink_out](const TuplePtr& t) {
    sink_out.push_back(std::to_string(t->ts) + "|" + t->DebugPayload());
  };
  return options;
}

template <typename Builder, typename Data>
RunArtifacts RunOne(Builder&& builder, const Data& data, bool distributed,
                    size_t batch, bool spsc, const std::string& path,
                    WireCodec codec = WireCodec::kRaw) {
  RunArtifacts out;
  auto q = builder(data,
                   MakeOptions(distributed, batch, spsc, path,
                               out.ordered_sink, codec));
  q.Run();
  out.records = [&] {
    if constexpr (requires { q.provenance_records(); }) {
      return q.provenance_records();  // BuiltDataflow
    } else {
      return q.provenance_sink->records();  // BuiltQuery
    }
  }();
  out.provenance = CanonicalProvenanceBytes(path);
  std::remove(path.c_str());
  return out;
}

// The wire codec must be invisible: within each sweep point the hand-wired
// build runs raw and the fluent build runs each codec in `codecs`, so the
// compact rows are cross-codec comparisons — one side delta/dictionary
// encodes its channels, the other does not, and the sinks and canonical
// provenance bytes must still match exactly. Intra sweeps pass only raw
// (no channels to encode).
template <typename HandBuilder, typename FluentBuilder, typename Data>
void SweepEquivalence(const char* name, HandBuilder hand_builder,
                      FluentBuilder fluent_builder, const Data& data,
                      bool distributed, std::vector<bool> spsc_values,
                      std::vector<WireCodec> codecs = {WireCodec::kRaw}) {
  const std::string hand_path = ::testing::TempDir() + "/dfeq_hand.bin";
  const std::string fluent_path = ::testing::TempDir() + "/dfeq_fluent.bin";
  for (const size_t batch : {size_t{1}, size_t{64}}) {
    for (const bool spsc : spsc_values) {
      const RunArtifacts hand =
          RunOne(hand_builder, data, distributed, batch, spsc, hand_path);
      ASSERT_FALSE(hand.ordered_sink.empty());
      ASSERT_GT(hand.records, 0u);
      for (const WireCodec codec : codecs) {
        SCOPED_TRACE(std::string(name) + " batch " + std::to_string(batch) +
                     " spsc " + std::to_string(spsc) + " codec " +
                     (codec == WireCodec::kCompact ? "compact" : "raw"));
        const RunArtifacts fluent = RunOne(fluent_builder, data, distributed,
                                           batch, spsc, fluent_path, codec);
        EXPECT_EQ(fluent.ordered_sink, hand.ordered_sink);
        EXPECT_EQ(fluent.records, hand.records);
        EXPECT_EQ(fluent.provenance, hand.provenance)
            << "canonical provenance bytes diverged";
      }
    }
  }
}

TEST(DataflowEquivalenceTest, Q1GenealogIntra) {
  SweepEquivalence("Q1", BuildQ1, BuildQ1Fluent, SmallLr(),
                   /*distributed=*/false, {true, false});
}

TEST(DataflowEquivalenceTest, Q1GenealogDistributed) {
  SweepEquivalence("Q1", BuildQ1, BuildQ1Fluent, SmallLr(),
                   /*distributed=*/true, {true, false},
                   {WireCodec::kRaw, WireCodec::kCompact});
}

TEST(DataflowEquivalenceTest, Q2GenealogIntra) {
  SweepEquivalence("Q2", BuildQ2, BuildQ2Fluent, AccidentLr(),
                   /*distributed=*/false, {true});
}

TEST(DataflowEquivalenceTest, Q2GenealogDistributed) {
  SweepEquivalence("Q2", BuildQ2, BuildQ2Fluent, AccidentLr(),
                   /*distributed=*/true, {true},
                   {WireCodec::kRaw, WireCodec::kCompact});
}

TEST(DataflowEquivalenceTest, Q3GenealogIntra) {
  SweepEquivalence("Q3", BuildQ3, BuildQ3Fluent, SmallSg(),
                   /*distributed=*/false, {true});
}

TEST(DataflowEquivalenceTest, Q3GenealogDistributed) {
  SweepEquivalence("Q3", BuildQ3, BuildQ3Fluent, SmallSg(),
                   /*distributed=*/true, {true},
                   {WireCodec::kRaw, WireCodec::kCompact});
}

TEST(DataflowEquivalenceTest, Q4GenealogIntra) {
  SweepEquivalence("Q4", BuildQ4, BuildQ4Fluent, SmallSg(),
                   /*distributed=*/false, {true});
}

TEST(DataflowEquivalenceTest, Q4GenealogDistributed) {
  SweepEquivalence("Q4", BuildQ4, BuildQ4Fluent, SmallSg(),
                   /*distributed=*/true, {true},
                   {WireCodec::kRaw, WireCodec::kCompact});
}

// The key-partitioned lowering (`.KeyBy(car).Parallel(n)` inside
// BuildQ1Fluent when options.parallelism > 1) must be completely invisible
// at the sink and in the provenance file: for every shard count, scheduler
// and batch size, the emission-order sink stream and the canonical
// provenance bytes must equal the single-instance plan's. The reference runs
// the plain fluent build at the seed configuration (batch 1,
// thread-per-node), so this also re-checks batching/scheduler invariance
// through the partition -> replicas -> keyed-merge diamond.
TEST(DataflowEquivalenceTest, Q1ParallelMatchesSingleInstanceIntra) {
  const lr::LinearRoadData data = SmallLr();
  const std::string ref_path = ::testing::TempDir() + "/dfeq_par_ref.bin";
  const std::string par_path = ::testing::TempDir() + "/dfeq_par.bin";
  const RunArtifacts reference = RunOne(
      BuildQ1Fluent, data, /*distributed=*/false, 1, true, ref_path);
  ASSERT_FALSE(reference.ordered_sink.empty());
  ASSERT_GT(reference.records, 0u);
  for (const int shards : {1, 2, 4}) {
    for (const SchedulerMode scheduler :
         {SchedulerMode::kThreadPerNode, SchedulerMode::kPool}) {
      for (const size_t batch : {size_t{1}, size_t{64}}) {
        SCOPED_TRACE("shards " + std::to_string(shards) + " pool " +
                     std::to_string(scheduler == SchedulerMode::kPool) +
                     " batch " + std::to_string(batch));
        auto parallel_builder = [shards, scheduler](
                                    const lr::LinearRoadData& d,
                                    QueryBuildOptions options) {
          options.parallelism = shards;
          options.scheduler = scheduler;
          if (scheduler == SchedulerMode::kPool) options.workers = 3;
          return BuildQ1Fluent(d, std::move(options));
        };
        const RunArtifacts par = RunOne(parallel_builder, data,
                                        /*distributed=*/false, batch, true,
                                        par_path);
        EXPECT_EQ(par.ordered_sink, reference.ordered_sink);
        EXPECT_EQ(par.records, reference.records);
        EXPECT_EQ(par.provenance, reference.provenance)
            << "canonical provenance bytes diverged";
      }
    }
  }
}

// Same invariance across a deployment cut: the parallel stage lowers inside
// its instance and the distributed weaving (cut SUs, MU, provenance
// instance) composes with it unchanged.
TEST(DataflowEquivalenceTest, Q1ParallelMatchesSingleInstanceDistributed) {
  const lr::LinearRoadData data = SmallLr();
  const std::string ref_path = ::testing::TempDir() + "/dfeq_pard_ref.bin";
  const std::string par_path = ::testing::TempDir() + "/dfeq_pard.bin";
  const RunArtifacts reference = RunOne(
      BuildQ1Fluent, data, /*distributed=*/true, 1, true, ref_path);
  ASSERT_FALSE(reference.ordered_sink.empty());
  ASSERT_GT(reference.records, 0u);
  for (const int shards : {2, 4}) {
    for (const size_t batch : {size_t{1}, size_t{64}}) {
      for (const WireCodec codec : {WireCodec::kRaw, WireCodec::kCompact}) {
        SCOPED_TRACE("shards " + std::to_string(shards) + " batch " +
                     std::to_string(batch) + " codec " +
                     (codec == WireCodec::kCompact ? "compact" : "raw"));
        auto parallel_builder = [shards](const lr::LinearRoadData& d,
                                         QueryBuildOptions options) {
          options.parallelism = shards;
          return BuildQ1Fluent(d, std::move(options));
        };
        const RunArtifacts par = RunOne(parallel_builder, data,
                                        /*distributed=*/true, batch, true,
                                        par_path, codec);
        EXPECT_EQ(par.ordered_sink, reference.ordered_sink);
        EXPECT_EQ(par.records, reference.records);
        EXPECT_EQ(par.provenance, reference.provenance)
            << "canonical provenance bytes diverged";
      }
    }
  }
}

// The fluent lowering must mirror the hand-wired deployment structurally
// too: same instance count, same SU placement, same probe surface.
template <typename HandBuilder, typename FluentBuilder, typename Data>
void CheckStructure(HandBuilder hand_builder, FluentBuilder fluent_builder,
                    const Data& data) {
  {
    QueryBuildOptions options;
    options.mode = ProvenanceMode::kGenealog;
    auto hand = hand_builder(data, options);
    auto fluent = fluent_builder(data, options);
    EXPECT_EQ(fluent.n_instances, hand.n_instances);
    EXPECT_EQ(fluent.su_nodes.size(), hand.su_nodes.size());
    EXPECT_EQ(fluent.total_window_span, hand.total_window_span);
  }
  {
    QueryBuildOptions options;
    options.mode = ProvenanceMode::kGenealog;
    options.distributed = true;
    auto hand = hand_builder(data, options);
    auto fluent = fluent_builder(data, options);
    EXPECT_EQ(fluent.n_instances, hand.n_instances);  // 3
    EXPECT_EQ(fluent.su_nodes.size(), hand.su_nodes.size());
    EXPECT_EQ(fluent.channels.size(), hand.channels.size());
  }
}

TEST(DataflowEquivalenceTest, Q1StructureMatchesHandWired) {
  CheckStructure(BuildQ1, BuildQ1Fluent, SmallLr());
}

TEST(DataflowEquivalenceTest, Q2StructureMatchesHandWired) {
  CheckStructure(BuildQ2, BuildQ2Fluent, AccidentLr());
}

TEST(DataflowEquivalenceTest, Q3StructureMatchesHandWired) {
  CheckStructure(BuildQ3, BuildQ3Fluent, SmallSg());
}

TEST(DataflowEquivalenceTest, Q4StructureMatchesHandWired) {
  CheckStructure(BuildQ4, BuildQ4Fluent, SmallSg());
}

}  // namespace
}  // namespace genealog::queries
