// The fluent dataflow builder must be a pure re-spelling of the hand-wired
// deployments: BuildQ1Fluent (spe/dataflow.h + genealog/instrument weaving)
// and the hand-wired BuildQ1 (queries/assemble.h) must produce identical
// sink streams (in emission order) and byte-identical provenance files —
// compared after masking the run-dependent header fields (tuple ids derive
// from node uids drawn off a global counter, stimuli are wall-clock reads,
// and record file order follows watermark arrival granularity; see
// provenance_plane_determinism_test for why those can never match between
// two runs) and putting records in canonical order. Every remaining byte —
// type tags, kinds, timestamps, payloads, origin sets — must match exactly.
// Swept across batch {1, 64} x edge {ring, mutex}, intra and distributed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/type_registry.h"
#include "lr/linear_road.h"
#include "queries/queries.h"

namespace genealog::queries {
namespace {

// Canonical provenance-file bytes: each record re-serialized with id and
// stimulus zeroed, origins and records sorted canonically, then
// re-concatenated. Two runs of the same logical query yield identical bytes.
std::vector<uint8_t> CanonicalProvenanceBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  auto mask_and_serialize = [](const TuplePtr& t, ByteWriter& w) {
    t->id = 0;
    t->stimulus = 0;
    SerializeTuple(*t, w);
  };

  std::vector<std::vector<uint8_t>> records;
  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    TuplePtr derived = DeserializeTuple(reader);
    const uint32_t n = reader.GetU32();
    std::vector<std::vector<uint8_t>> origins;
    ByteWriter w;
    for (uint32_t i = 0; i < n; ++i) {
      w.Clear();
      mask_and_serialize(DeserializeTuple(reader), w);
      origins.emplace_back(w.bytes().begin(), w.bytes().end());
    }
    std::sort(origins.begin(), origins.end());
    w.Clear();
    mask_and_serialize(derived, w);
    w.PutU32(n);
    std::vector<uint8_t> record(w.bytes().begin(), w.bytes().end());
    for (const auto& o : origins) {
      record.insert(record.end(), o.begin(), o.end());
    }
    records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end());
  std::vector<uint8_t> canonical;
  for (const auto& r : records) {
    canonical.insert(canonical.end(), r.begin(), r.end());
  }
  return canonical;
}

lr::LinearRoadData SmallLr() {
  lr::LinearRoadConfig config;
  config.n_cars = 30;
  config.duration_s = 1800;
  config.stop_probability = 0.03;
  config.seed = 17;
  return lr::GenerateLinearRoad(config);
}

struct RunArtifacts {
  std::vector<std::string> ordered_sink;  // emission order
  std::vector<uint8_t> provenance;        // canonical file bytes
  uint64_t records = 0;
};

QueryBuildOptions MakeOptions(bool distributed, size_t batch, bool spsc,
                              const std::string& file,
                              std::vector<std::string>& sink_out) {
  QueryBuildOptions options;
  options.mode = ProvenanceMode::kGenealog;
  options.distributed = distributed;
  options.batch_size = batch;
  options.spsc_edges = spsc;
  options.provenance_file = file;
  options.sink_consumer = [&sink_out](const TuplePtr& t) {
    sink_out.push_back(std::to_string(t->ts) + "|" + t->DebugPayload());
  };
  return options;
}

RunArtifacts RunHandWired(const lr::LinearRoadData& data, bool distributed,
                          size_t batch, bool spsc) {
  const std::string path = ::testing::TempDir() + "/dfeq_hand.bin";
  RunArtifacts out;
  BuiltQuery q = BuildQ1(
      data, MakeOptions(distributed, batch, spsc, path, out.ordered_sink));
  q.Run();
  out.records = q.provenance_sink->records();
  out.provenance = CanonicalProvenanceBytes(path);
  std::remove(path.c_str());
  return out;
}

RunArtifacts RunFluent(const lr::LinearRoadData& data, bool distributed,
                       size_t batch, bool spsc) {
  const std::string path = ::testing::TempDir() + "/dfeq_fluent.bin";
  RunArtifacts out;
  BuiltDataflow flow = BuildQ1Fluent(
      data, MakeOptions(distributed, batch, spsc, path, out.ordered_sink));
  flow.Run();
  out.records = flow.provenance_records();
  out.provenance = CanonicalProvenanceBytes(path);
  std::remove(path.c_str());
  return out;
}

void SweepEquivalence(bool distributed) {
  const lr::LinearRoadData data = SmallLr();
  for (const size_t batch : {size_t{1}, size_t{64}}) {
    for (const bool spsc : {true, false}) {
      const RunArtifacts hand = RunHandWired(data, distributed, batch, spsc);
      const RunArtifacts fluent = RunFluent(data, distributed, batch, spsc);
      ASSERT_FALSE(hand.ordered_sink.empty());
      ASSERT_GT(hand.records, 0u);
      EXPECT_EQ(fluent.ordered_sink, hand.ordered_sink)
          << "batch " << batch << " spsc " << spsc;
      EXPECT_EQ(fluent.records, hand.records)
          << "batch " << batch << " spsc " << spsc;
      EXPECT_EQ(fluent.provenance, hand.provenance)
          << "provenance file bytes diverged at batch " << batch << " spsc "
          << spsc;
    }
  }
}

TEST(DataflowEquivalenceTest, Q1GenealogIntra) {
  SweepEquivalence(/*distributed=*/false);
}

TEST(DataflowEquivalenceTest, Q1GenealogDistributed) {
  SweepEquivalence(/*distributed=*/true);
}

// The fluent lowering must mirror the hand-wired deployment structurally
// too: same instance count, same SU placement, same probe surface.
TEST(DataflowEquivalenceTest, Q1StructureMatchesHandWired) {
  const lr::LinearRoadData data = SmallLr();
  {
    QueryBuildOptions options;
    options.mode = ProvenanceMode::kGenealog;
    BuiltQuery hand = BuildQ1(data, options);
    BuiltDataflow fluent = BuildQ1Fluent(data, options);
    EXPECT_EQ(fluent.n_instances, hand.n_instances);
    EXPECT_EQ(fluent.su_nodes.size(), hand.su_nodes.size());
    EXPECT_EQ(fluent.total_window_span, hand.total_window_span);
  }
  {
    QueryBuildOptions options;
    options.mode = ProvenanceMode::kGenealog;
    options.distributed = true;
    BuiltQuery hand = BuildQ1(data, options);
    BuiltDataflow fluent = BuildQ1Fluent(data, options);
    EXPECT_EQ(fluent.n_instances, hand.n_instances);      // 3
    EXPECT_EQ(fluent.su_nodes.size(), hand.su_nodes.size());
    EXPECT_EQ(fluent.channels.size(), hand.channels.size());
  }
}

}  // namespace
}  // namespace genealog::queries
