// The tuple pool must be invisible in the data: with the pool on or off
// (GENEALOG_TUPLE_POOL), at any batch size, the engine must produce
// byte-identical sink output sequences and identical provenance traversals —
// recycling storage can change only where tuples live, never what they say.
// Sweeps pool {off, on} × batch {1, 64} over full Q1 GL runs (intra-process
// and distributed) and checks the per-tuple live-byte accounting is
// pool-invariant too.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/memory_accounting.h"
#include "common/tuple_pool.h"
#include "lr/linear_road.h"
#include "queries/queries.h"
#include "queries/query_helpers.h"

namespace genealog {
namespace {

using queries::QueryBuildOptions;
using queries::QueryRunResult;

class PoolDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { was_enabled_ = pool::Enabled(); }
  void TearDown() override {
    pool::FlushThreadCache();
    pool::SetEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = true;
};

lr::LinearRoadData SmallLr() {
  lr::LinearRoadConfig config;
  config.n_cars = 40;
  config.duration_s = 2400;
  config.stop_probability = 0.02;
  config.seed = 5;
  return lr::GenerateLinearRoad(config);
}

struct Q1Run {
  std::vector<std::string> ordered_sink;  // emission order, byte-identical
  QueryRunResult canonical;               // records, canonically sorted
};

Q1Run RunQ1(const lr::LinearRoadData& data, size_t batch_size, bool pool_on,
            bool distributed) {
  pool::SetEnabled(pool_on);
  Q1Run run;
  QueryBuildOptions options;
  options.mode = ProvenanceMode::kGenealog;
  options.distributed = distributed;
  options.batch_size = batch_size;
  options.sink_consumer = [&run](const TuplePtr& t) {
    run.ordered_sink.push_back(std::to_string(t->ts) + "|" + t->DebugPayload());
  };
  options.provenance_consumer = [&run](const ProvenanceRecord& r) {
    queries::CanonicalRecord record;
    record.derived_ts = r.derived_ts;
    record.derived_payload = r.derived->DebugPayload();
    for (const TuplePtr& o : r.origins) {
      record.origins.emplace_back(o->ts, o->DebugPayload());
    }
    std::sort(record.origins.begin(), record.origins.end());
    run.canonical.records.push_back(std::move(record));
  };
  queries::BuiltQuery q = queries::BuildQ1(data, std::move(options));
  q.Run();
  run.canonical.Canonicalize();
  return run;
}

TEST_F(PoolDeterminismTest, Q1OutputAndProvenanceArePoolInvariant) {
  const lr::LinearRoadData data = SmallLr();
  for (size_t batch_size : {size_t{1}, size_t{64}}) {
    const Q1Run off = RunQ1(data, batch_size, /*pool_on=*/false,
                            /*distributed=*/false);
    ASSERT_FALSE(off.ordered_sink.empty());
    ASSERT_FALSE(off.canonical.records.empty());
    const Q1Run on = RunQ1(data, batch_size, /*pool_on=*/true,
                           /*distributed=*/false);
    EXPECT_EQ(on.ordered_sink, off.ordered_sink) << "batch " << batch_size;
    EXPECT_EQ(on.canonical.records, off.canonical.records)
        << "batch " << batch_size;
  }
}

TEST_F(PoolDeterminismTest, Q1DistributedIsPoolInvariant) {
  const lr::LinearRoadData data = SmallLr();
  for (size_t batch_size : {size_t{1}, size_t{64}}) {
    const Q1Run off = RunQ1(data, batch_size, /*pool_on=*/false,
                            /*distributed=*/true);
    ASSERT_FALSE(off.ordered_sink.empty());
    ASSERT_FALSE(off.canonical.records.empty());
    const Q1Run on = RunQ1(data, batch_size, /*pool_on=*/true,
                           /*distributed=*/true);
    EXPECT_EQ(on.ordered_sink, off.ordered_sink) << "batch " << batch_size;
    EXPECT_EQ(on.canonical.records, off.canonical.records)
        << "batch " << batch_size;
  }
}

TEST_F(PoolDeterminismTest, LiveTupleAccountingIsPoolInvariantAndLeakFree) {
  // The pool recycles storage without touching per-tuple accounting: after a
  // full run everything must be released either way, and recycling must
  // actually have happened in the pooled run.
  const lr::LinearRoadData data = SmallLr();
  const int64_t live_before = mem::LiveTupleCount();

  RunQ1(data, 64, /*pool_on=*/false, /*distributed=*/false);
  EXPECT_EQ(mem::LiveTupleCount(), live_before);

  pool::ResetStats();
  RunQ1(data, 64, /*pool_on=*/true, /*distributed=*/false);
  EXPECT_EQ(mem::LiveTupleCount(), live_before);
  const pool::Stats s = pool::GetStats();
  EXPECT_GT(s.pool_allocs, 0u);
  EXPECT_GT(s.recycled_allocs, 0u);
  EXPECT_GT(s.recycle_hit_rate(), 0.5);
}

}  // namespace
}  // namespace genealog
