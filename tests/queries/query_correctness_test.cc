// Q1–Q4 output correctness: the queries' sink tuples must match independent
// brute-force reference detectors over the same generated data.
#include <gtest/gtest.h>

#include <set>

#include "queries/query_helpers.h"

namespace genealog::queries {
namespace {

lr::LinearRoadConfig LrConfig() {
  lr::LinearRoadConfig config;
  config.n_cars = 50;
  config.duration_s = 2400;
  config.stop_probability = 0.02;
  config.accident_probability = 0.08;
  config.seed = 11;
  return config;
}

sg::SmartGridConfig SgConfig() {
  sg::SmartGridConfig config;
  config.n_meters = 25;
  config.n_days = 8;
  config.blackout_probability = 0.4;
  config.forced_blackout_days = {1, 4};
  config.blackout_meters = 9;
  config.anomaly_probability = 0.03;
  config.seed = 23;
  return config;
}

TEST(Q1CorrectnessTest, SinkTuplesMatchReferenceDetector) {
  auto data = lr::GenerateLinearRoad(LrConfig());
  auto reference =
      lr::ReferenceStoppedCars(data.reports, kQ1WindowSize, kQ1WindowAdvance,
                               kQ1StopCount);
  ASSERT_FALSE(reference.empty()) << "workload must plant stopped cars";

  auto run = RunQuery(BuildQ1, data, {});
  ASSERT_EQ(run.sink_tuples.size(), reference.size());
  std::vector<CanonicalSinkTuple> expected;
  for (const auto& e : reference) {
    expected.push_back(
        {e.window_start, "car=" + std::to_string(e.car_id) + " count=4" +
                             " dist_pos=1 last_pos=" + std::to_string(e.pos)});
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(run.sink_tuples, expected);
}

TEST(Q2CorrectnessTest, SinkTuplesMatchReferenceDetector) {
  auto data = lr::GenerateLinearRoad(LrConfig());
  auto stopped = lr::ReferenceStoppedCars(data.reports, kQ1WindowSize,
                                          kQ1WindowAdvance, kQ1StopCount);
  auto reference = lr::ReferenceAccidents(stopped);
  ASSERT_FALSE(reference.empty()) << "workload must plant accidents";

  auto run = RunQuery(BuildQ2, data, {});
  std::vector<CanonicalSinkTuple> expected;
  for (const auto& e : reference) {
    expected.push_back(
        {e.window_start, "pos=" + std::to_string(e.pos) +
                             " count=" + std::to_string(e.car_count)});
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(run.sink_tuples, expected);
}

TEST(Q3CorrectnessTest, SinkTuplesMatchReferenceDetector) {
  auto data = sg::GenerateSmartGrid(SgConfig());
  auto reference = sg::ReferenceBlackouts(data.readings, kQ3ZeroMeterThreshold);
  ASSERT_FALSE(reference.empty()) << "workload must plant blackouts";

  auto run = RunQuery(BuildQ3, data, {});
  std::vector<CanonicalSinkTuple> expected;
  for (const auto& e : reference) {
    // The daily sums of day d are emitted at ts = 24(d+1); the counting
    // window starting there is the alert's timestamp.
    expected.push_back({(e.day + 1) * kDayHours,
                        "count=" + std::to_string(e.meter_count)});
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(run.sink_tuples, expected);
}

TEST(Q4CorrectnessTest, SinkTuplesMatchReferenceDetector) {
  auto data = sg::GenerateSmartGrid(SgConfig());
  auto reference = sg::ReferenceAnomalies(data.readings, kQ4DiffThreshold);
  ASSERT_FALSE(reference.empty()) << "workload must plant anomalies";

  auto run = RunQuery(BuildQ4, data, {});
  std::vector<CanonicalSinkTuple> expected;
  for (const auto& e : reference) {
    expected.push_back({(e.day + 1) * kDayHours,
                        "meter=" + std::to_string(e.meter_id) +
                            " cons_diff=" + std::to_string(e.diff)});
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(run.sink_tuples, expected);
}

TEST(QueryCorrectnessTest, AllModesProduceIdenticalSinkOutputs) {
  // Provenance capture must never change the query's results: NP, GL and BL
  // produce the same sink stream.
  auto lr_data = lr::GenerateLinearRoad(LrConfig());
  auto sg_data = sg::GenerateSmartGrid(SgConfig());

  auto Check = [](auto builder, const auto& data, const char* name) {
    QueryBuildOptions np;
    np.mode = ProvenanceMode::kNone;
    QueryBuildOptions gl;
    gl.mode = ProvenanceMode::kGenealog;
    QueryBuildOptions bl;
    bl.mode = ProvenanceMode::kBaseline;
    auto np_run = RunQuery(builder, data, np);
    auto gl_run = RunQuery(builder, data, gl);
    auto bl_run = RunQuery(builder, data, bl);
    EXPECT_EQ(np_run.sink_tuples, gl_run.sink_tuples) << name << " GL";
    EXPECT_EQ(np_run.sink_tuples, bl_run.sink_tuples) << name << " BL";
    EXPECT_FALSE(np_run.sink_tuples.empty()) << name;
  };
  Check(BuildQ1, lr_data, "Q1");
  Check(BuildQ2, lr_data, "Q2");
  Check(BuildQ3, sg_data, "Q3");
  Check(BuildQ4, sg_data, "Q4");
}

TEST(QueryCorrectnessTest, RunsAreDeterministic) {
  auto data = lr::GenerateLinearRoad(LrConfig());
  auto first = RunQuery(BuildQ2, data, {});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(RunQuery(BuildQ2, data, {}).sink_tuples, first.sink_tuples);
  }
}

}  // namespace
}  // namespace genealog::queries
