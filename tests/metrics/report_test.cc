#include "metrics/report.h"

#include <gtest/gtest.h>

namespace genealog::metrics {
namespace {

QueryVariantResult Row(const std::string& query, const std::string& variant,
                       double tput, double latency, double avg_mem,
                       double max_mem) {
  QueryVariantResult row;
  row.query = query;
  row.variant = variant;
  row.throughput_tps = {tput, 0, 1};
  row.latency_ms = {latency, 0, 1};
  row.avg_mem_mb = {avg_mem, 0, 1};
  row.max_mem_mb = {max_mem, 0, 1};
  return row;
}

TEST(FormatDeltaTest, PositiveAndNegative) {
  EXPECT_EQ(FormatDelta(90, 100, false), "-10.0%");
  EXPECT_EQ(FormatDelta(110, 100, true), "+10.0%");
  EXPECT_EQ(FormatDelta(100, 100, true), "+0.0%");
}

TEST(FormatDeltaTest, NoReferenceYieldsEmpty) {
  EXPECT_EQ(FormatDelta(90, std::nullopt, false), "");
  EXPECT_EQ(FormatDelta(90, 0.0, false), "");
}

TEST(RenderOverheadTableTest, ComputesDeltasAgainstNpRow) {
  std::vector<QueryVariantResult> rows{
      Row("Q1", "NP", 1000, 10, 1.0, 2.0),
      Row("Q1", "GL", 950, 11, 1.1, 2.1),
  };
  const std::string table = RenderOverheadTable(rows, "T");
  EXPECT_NE(table.find("-5.0%"), std::string::npos);   // throughput delta
  EXPECT_NE(table.find("+10.0%"), std::string::npos);  // latency delta
  EXPECT_NE(table.find("Q1"), std::string::npos);
  EXPECT_NE(table.find("GL"), std::string::npos);
}

TEST(RenderOverheadTableTest, NpRowHasNoDelta) {
  std::vector<QueryVariantResult> rows{Row("Q1", "NP", 1000, 10, 1, 2)};
  const std::string table = RenderOverheadTable(rows, "T");
  EXPECT_EQ(table.find('%', table.find("Q1")), std::string::npos);
}

TEST(RenderOverheadTableTest, SeparateQueriesUseSeparateReferences) {
  std::vector<QueryVariantResult> rows{
      Row("Q1", "NP", 1000, 10, 1, 2), Row("Q1", "GL", 500, 10, 1, 2),
      Row("Q2", "NP", 2000, 10, 1, 2), Row("Q2", "GL", 1000, 10, 1, 2),
  };
  const std::string table = RenderOverheadTable(rows, "T");
  // Both GL rows are -50% against their own query's NP.
  size_t first = table.find("-50.0%");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(table.find("-50.0%", first + 1), std::string::npos);
}

TEST(RenderOverheadTableTest, ShowsConfidenceIntervalWithMultipleRuns) {
  QueryVariantResult row = Row("Q1", "NP", 1000, 10, 1, 2);
  row.throughput_tps = {1000, 25, 3};
  const std::string table = RenderOverheadTable({row}, "T");
  EXPECT_NE(table.find("±25"), std::string::npos);
}

TEST(RenderProvenanceVolumeTest, ComputesRatio) {
  QueryVariantResult row = Row("Q3", "GL", 1000, 10, 1, 2);
  row.provenance_bytes = {500, 0, 1};
  row.source_bytes = {1000000, 0, 1};
  const std::string table = RenderProvenanceVolumeTable({row});
  EXPECT_NE(table.find("0.0500%"), std::string::npos);
}

TEST(RenderProvenanceVolumeTest, SkipsRowsWithoutProvenance) {
  QueryVariantResult row = Row("Q1", "NP", 1000, 10, 1, 2);
  const std::string table = RenderProvenanceVolumeTable({row});
  EXPECT_EQ(table.find("Q1"), std::string::npos);
}

}  // namespace
}  // namespace genealog::metrics
