// Test harness helpers: run small topologies and collect their outputs.
#ifndef GENEALOG_TESTS_TESTING_HARNESS_H_
#define GENEALOG_TESTS_TESTING_HARNESS_H_

#include <string>
#include <vector>

#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"

namespace genealog::testing {

// Collects every tuple reaching the sink. The consumer runs on the single
// sink thread; read the vector only after Runner::Join().
class Collector {
 public:
  SinkNode* AttachSink(Topology& topology, const std::string& name = "sink") {
    return topology.Add<SinkNode>(
        name, [this](const TuplePtr& t) { tuples_.push_back(t); });
  }

  const std::vector<TuplePtr>& tuples() const { return tuples_; }

  template <typename T>
  const T& at(size_t i) const {
    return static_cast<const T&>(*tuples_[i]);
  }

  std::vector<int64_t> Timestamps() const {
    std::vector<int64_t> out;
    out.reserve(tuples_.size());
    for (const auto& t : tuples_) out.push_back(t->ts);
    return out;
  }

 private:
  std::vector<TuplePtr> tuples_;
};

}  // namespace genealog::testing

#endif  // GENEALOG_TESTS_TESTING_HARNESS_H_
