// Shared schema types for tests: a minimal value tuple and a two-field tuple.
#ifndef GENEALOG_TESTS_TESTING_TEST_TUPLES_H_
#define GENEALOG_TESTS_TESTING_TEST_TUPLES_H_

#include <string>

#include "core/tuple_crtp.h"

namespace genealog::testing {

struct ValueTuple final : TupleCrtp<ValueTuple, 0x7001> {
  static constexpr const char* kTypeName = "test.Value";

  ValueTuple(int64_t ts, int64_t value) : TupleCrtp(ts), value(value) {}

  int64_t value;

  const char* type_name() const override { return kTypeName; }
  void SerializePayload(ByteWriter& w) const override { w.PutI64(value); }
  static TuplePtr Deserialize(ByteReader& r, int64_t ts) {
    const int64_t value = r.GetI64();
    return MakeTuple<ValueTuple>(ts, value);
  }
  std::string DebugPayload() const override { return std::to_string(value); }
};

GENEALOG_REGISTER_TUPLE(ValueTuple);

struct KeyedTuple final : TupleCrtp<KeyedTuple, 0x7002> {
  static constexpr const char* kTypeName = "test.Keyed";

  KeyedTuple(int64_t ts, int64_t key, double value)
      : TupleCrtp(ts), key(key), value(value) {}

  int64_t key;
  double value;

  const char* type_name() const override { return kTypeName; }
  void SerializePayload(ByteWriter& w) const override {
    w.PutI64(key);
    w.PutDouble(value);
  }
  static TuplePtr Deserialize(ByteReader& r, int64_t ts) {
    const int64_t key = r.GetI64();
    const double value = r.GetDouble();
    return MakeTuple<KeyedTuple>(ts, key, value);
  }
  std::string DebugPayload() const override {
    return std::to_string(key) + ":" + std::to_string(value);
  }
};

GENEALOG_REGISTER_TUPLE(KeyedTuple);

inline IntrusivePtr<ValueTuple> V(int64_t ts, int64_t value) {
  return MakeTuple<ValueTuple>(ts, value);
}

}  // namespace genealog::testing

#endif  // GENEALOG_TESTS_TESTING_TEST_TUPLES_H_
