// C3's parallelization claim applied to the provenance pipeline itself: the
// SU is a per-tuple (stateless) operator, so the sink stream can be
// partitioned across N SU instances whose unfolded outputs merge back — the
// provenance records must be exactly those of a single SU.
#include <gtest/gtest.h>

#include <algorithm>

#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "spe/aggregate.h"
#include "spe/parallel.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::KeyedTuple;

struct CanonicalRecord {
  int64_t ts;
  std::string derived;
  std::vector<std::string> origins;
  bool operator==(const CanonicalRecord&) const = default;
  auto operator<=>(const CanonicalRecord&) const = default;
};

std::vector<CanonicalRecord> RunWithParallelSu(int su_parallelism) {
  Topology topo(1, ProvenanceMode::kGenealog);
  std::vector<IntrusivePtr<KeyedTuple>> data;
  for (int i = 0; i < 400; ++i) {
    data.push_back(MakeTuple<KeyedTuple>(i, i % 5, 1.0));
  }
  auto* source = topo.Add<VectorSourceNode<KeyedTuple>>("src", std::move(data));
  auto* agg = topo.Add<AggregateNode<KeyedTuple, KeyedTuple>>(
      "agg", AggregateOptions{20, 20},
      [](const KeyedTuple& t) { return t.key; },
      [](const WindowView<KeyedTuple, int64_t>& w) {
        return MakeTuple<KeyedTuple>(0, w.key,
                                     static_cast<double>(w.tuples.size()));
      });
  topo.Connect(source, agg);

  std::vector<CanonicalRecord> records;
  ProvenanceSinkSpec pso;
  pso.finalize_slack = 20;
  pso.consumer = [&records](const ProvenanceRecord& r) {
    CanonicalRecord rec;
    rec.ts = r.derived_ts;
    rec.derived = r.derived->DebugPayload();
    for (const auto& o : r.origins) rec.origins.push_back(o->DebugPayload());
    std::sort(rec.origins.begin(), rec.origins.end());
    records.push_back(std::move(rec));
  };
  auto* prov = topo.Add<ProvenanceSinkNode>("k2", pso);
  auto* sink = topo.Add<SinkNode>("sink");

  if (su_parallelism == 0) {
    auto* su = topo.Add<SuNode>("su");
    topo.Connect(agg, su);
    topo.Connect(su, sink);
    topo.Connect(su, prov);
  } else {
    // Partition the sink stream by key; each partition gets its own SU; the
    // SO streams merge into the sink, the U streams into the provenance sink.
    auto* partition = topo.Add<KeyPartitionNode<KeyedTuple>>(
        "part",
        [](const KeyedTuple& t) { return static_cast<uint64_t>(t.key); });
    auto* so_merge = topo.Add<UnionNode>("so_merge");
    auto* u_merge = topo.Add<UnionNode>("u_merge");
    topo.Connect(agg, partition);
    for (int i = 0; i < su_parallelism; ++i) {
      auto* su = topo.Add<SuNode>("su" + std::to_string(i));
      topo.Connect(partition, su);
      topo.Connect(su, so_merge);
      topo.Connect(su, u_merge);
    }
    topo.Connect(so_merge, sink);
    topo.Connect(u_merge, prov);
  }
  RunToCompletion(topo);
  std::sort(records.begin(), records.end());
  return records;
}

class ParallelSuTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSuTest, RecordsMatchSingleSu) {
  auto reference = RunWithParallelSu(0);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(RunWithParallelSu(GetParam()), reference);
}

INSTANTIATE_TEST_SUITE_P(Parallelism, ParallelSuTest,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace genealog
