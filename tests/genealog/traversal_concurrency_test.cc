// Concurrent-traversal stress: several threads walk overlapping contribution
// graphs at once. The epoch fast path hands mark-word ownership to at most
// one traversal at a time (the rest fall back to their private pointer sets),
// so every call must return the exact reference BFS sequence no matter how
// the threads interleave. Run under TSan in CI (repeated until-fail) to gate
// the counter handoff and the relaxed mark-word protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "genealog/traversal.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

// A shared N-chained source run with a layer of aggregates whose windows
// overlap heavily, plus join diamonds on top — every thread's walk visits
// mostly the *same* tuples, maximizing mark-word contention.
struct SharedGraphs {
  std::vector<IntrusivePtr<ValueTuple>> all;
  std::vector<Tuple*> roots;
};

SharedGraphs MakeSharedGraphs(int n_sources, int n_roots) {
  SharedGraphs g;
  for (int i = 0; i < n_sources; ++i) {
    auto t = V(i, i);
    t->kind = TupleKind::kSource;
    g.all.push_back(std::move(t));
  }
  for (int i = 0; i + 1 < n_sources; ++i) {
    g.all[static_cast<size_t>(i)]->try_set_next(
        g.all[static_cast<size_t>(i) + 1].get());
  }
  const size_t chain = static_cast<size_t>(n_sources);
  for (int r = 0; r < n_roots; ++r) {
    // Aggregate over an overlapping window of the shared source chain.
    auto agg = V(1000 + r, 1000 + r);
    agg->kind = TupleKind::kAggregate;
    const size_t lo = static_cast<size_t>(r) % (chain / 2);
    const size_t hi = chain - 1 - (static_cast<size_t>(r) % 3);
    agg->set_u2(g.all[lo].get());
    agg->set_u1(g.all[hi].get());
    // A join of this aggregate with a map over a shared source.
    auto map = V(2000 + r, 2000 + r);
    map->kind = TupleKind::kMap;
    map->set_u1(g.all[static_cast<size_t>(r) % chain].get());
    auto join = V(3000 + r, 3000 + r);
    join->kind = TupleKind::kJoin;
    join->set_u1(agg.get());
    join->set_u2(map.get());
    g.all.push_back(std::move(agg));
    g.all.push_back(std::move(map));
    g.roots.push_back(join.get());
    g.all.push_back(std::move(join));
  }
  return g;
}

TEST(TraversalConcurrencyTest, OverlappingWalksReturnExactSequences) {
  const bool epoch_was = EpochTraversalEnabled();
  SetEpochTraversal(true);
  SharedGraphs g = MakeSharedGraphs(/*n_sources=*/96, /*n_roots=*/8);

  // Single-threaded reference per root, on the pointer-set path.
  std::vector<std::vector<Tuple*>> want;
  {
    TraversalScratch scratch;
    for (Tuple* root : g.roots) {
      std::vector<Tuple*> result;
      FindProvenance(root, result, scratch, TraversalPath::kHashSet);
      want.push_back(std::move(result));
    }
  }

  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TraversalScratch scratch;
      std::vector<Tuple*> result;
      for (int i = 0; i < kIters; ++i) {
        const size_t r = static_cast<size_t>(t + i) % g.roots.size();
        result.clear();
        FindProvenance(g.roots[r], result, scratch);
        if (result != want[r]) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  SetEpochTraversal(epoch_was);
}

// Same stress with two SUs' worth of threads pinned to *the same root* — the
// worst case for ticket claiming, since every node of both walks collides.
TEST(TraversalConcurrencyTest, TwoWalkersOneGraph) {
  const bool epoch_was = EpochTraversalEnabled();
  SetEpochTraversal(true);
  SharedGraphs g = MakeSharedGraphs(/*n_sources=*/192, /*n_roots=*/1);
  std::vector<Tuple*> want;
  {
    TraversalScratch scratch;
    FindProvenance(g.roots[0], want, scratch, TraversalPath::kHashSet);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      TraversalScratch scratch;
      std::vector<Tuple*> result;
      for (int i = 0; i < 3000; ++i) {
        result.clear();
        FindProvenance(g.roots[0], result, scratch);
        if (result != want) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  SetEpochTraversal(epoch_was);
}

}  // namespace
}  // namespace genealog
