// Challenge C2 (§3, §5): GeneaLog must not retain the source streams.
// Reachability does the work — a source tuple lives exactly as long as some
// downstream tuple references it, and is reclaimed the moment the last sink
// tuple it contributed to is dropped. The baseline, by contrast, retains
// every source tuple in its store.
#include <gtest/gtest.h>

#include "baseline/resolver.h"
#include "common/memory_accounting.h"
#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "spe/aggregate.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

std::vector<IntrusivePtr<ValueTuple>> Ramp(int n, int64_t step = 1) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (int i = 0; i < n; ++i) out.push_back(V(i * step, i));
  return out;
}

class ReclamationTest : public ::testing::Test {
 protected:
  void SetUp() override { base_ = mem::LiveTupleCount(); }
  int64_t LiveDelta() const { return mem::LiveTupleCount() - base_; }
  int64_t base_ = 0;
};

TEST_F(ReclamationTest, AllTuplesReclaimedAfterNpRun) {
  {
    Topology topo(1, ProvenanceMode::kNone);
    auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Ramp(1000));
    auto* filter = topo.Add<FilterNode<ValueTuple>>(
        "f", [](const ValueTuple& t) { return t.value % 10 == 0; });
    auto* sink = topo.Add<SinkNode>("sink");
    topo.Connect(source, filter);
    topo.Connect(filter, sink);
    RunToCompletion(topo);
    // The data vector still lives inside the topology's source node.
    EXPECT_EQ(LiveDelta(), 1000);
  }
  EXPECT_EQ(LiveDelta(), 0);
}

TEST_F(ReclamationTest, GenealogGraphsReclaimedOnceSinkTuplesDropped) {
  {
    Topology topo(1, ProvenanceMode::kGenealog);
    auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Ramp(1000));
    auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
        "agg", AggregateOptions{10, 10},
        [](const ValueTuple&) { return int64_t{0}; },
        [](const WindowView<ValueTuple, int64_t>& w) {
          return MakeTuple<ValueTuple>(0,
                                       static_cast<int64_t>(w.tuples.size()));
        });
    auto* su = topo.Add<SuNode>("su");
    auto* sink = topo.Add<SinkNode>("sink");  // drops tuples on consumption
    ProvenanceSinkSpec pso;
    auto* k2 = topo.Add<ProvenanceSinkNode>("k2", pso);
    topo.Connect(source, agg);
    topo.Connect(agg, su);
    topo.Connect(su, sink);
    topo.Connect(su, k2);
    RunToCompletion(topo);
    EXPECT_EQ(LiveDelta(), 1000);  // only the source's own data vector
  }
  EXPECT_EQ(LiveDelta(), 0);
}

TEST_F(ReclamationTest, NonContributingTuplesReclaimedDuringRun) {
  // A filter drops 90% of tuples before the instrumented aggregate; dropped
  // tuples must be reclaimed during the run, not retained by provenance.
  // We probe live counts mid-run via a map stage after the filter.
  int64_t max_live = 0;
  const int64_t base = base_;
  {
    Topology topo(1, ProvenanceMode::kGenealog);
    auto* source =
        topo.Add<VectorSourceNode<ValueTuple>>("src", Ramp(20000));
    auto* filter = topo.Add<FilterNode<ValueTuple>>(
        "f", [](const ValueTuple& t) { return t.value % 10 == 0; });
    auto* probe = topo.Add<MapNode<ValueTuple, ValueTuple>>(
        "probe",
        [&max_live, base](const ValueTuple& in, MapCollector<ValueTuple>& out) {
          max_live = std::max(max_live, mem::LiveTupleCount() - base);
          out.Emit(MakeTuple<ValueTuple>(0, in.value));
        });
    auto* sink = topo.Add<SinkNode>("sink");
    topo.Connect(source, filter);
    topo.Connect(filter, probe);
    topo.Connect(probe, sink);
    RunToCompletion(topo);
  }
  // The replayed data vector holds 20000; in-flight tuples are bounded by
  // queue capacities, not by the stream length: well below 2x the data size.
  EXPECT_LT(max_live, 20000 + 3 * static_cast<int64_t>(kDefaultQueueCapacity));
  EXPECT_EQ(LiveDelta(), 0);
}

TEST_F(ReclamationTest, SinkTupleKeepsExactlyItsContributionGraphAlive) {
  // Hold the sink tuples; 1000 sources in 100-tuple windows -> each sink
  // tuple pins its 100 sources (plus itself) until released.
  std::vector<TuplePtr> held;
  {
    Topology topo(1, ProvenanceMode::kGenealog);
    auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Ramp(1000));
    auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
        "agg", AggregateOptions{100, 100},
        [](const ValueTuple&) { return int64_t{0}; },
        [](const WindowView<ValueTuple, int64_t>& w) {
          return MakeTuple<ValueTuple>(0,
                                       static_cast<int64_t>(w.tuples.size()));
        });
    auto* sink = topo.Add<SinkNode>(
        "sink", [&held](const TuplePtr& t) { held.push_back(t); });
    topo.Connect(source, agg);
    topo.Connect(agg, sink);
    RunToCompletion(topo);
  }
  // Topology gone; the held sink tuples pin all 1000 sources + 10 outputs.
  EXPECT_EQ(LiveDelta(), 1010);
  held.resize(5);  // release half the alerts -> half the graphs reclaim
  EXPECT_EQ(LiveDelta(), 505);
  held.clear();
  EXPECT_EQ(LiveDelta(), 0);
}

TEST_F(ReclamationTest, BaselineStoreRetainsAllSourceTuples) {
  // The contrast case: BL's store holds every source tuple copy at end of
  // run (the paper's storage blow-up), even though only 10% contribute.
  Topology topo(1, ProvenanceMode::kBaseline);
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Ramp(1000));
  auto* tap = topo.Add<MultiplexNode>("tap");
  auto* filter = topo.Add<FilterNode<ValueTuple>>(
      "f", [](const ValueTuple& t) { return t.value % 10 == 0; });
  auto* sink_tap = topo.Add<MultiplexNode>("sink_tap");
  auto* sink = topo.Add<SinkNode>("sink");
  BaselineResolverOptions bro;
  bro.slack = 0;
  auto* resolver = topo.Add<BaselineResolverNode>("resolver", bro);
  topo.Connect(source, tap);
  topo.Connect(tap, filter);
  topo.Connect(filter, sink_tap);
  topo.Connect(sink_tap, sink);
  topo.Connect(sink_tap, resolver);  // port 0: annotated sink stream
  topo.Connect(tap, resolver);       // port 1: source store feed
  RunToCompletion(topo);

  EXPECT_EQ(resolver->store_peak_size(), 1000u);
  EXPECT_EQ(resolver->records(), 100u);
  EXPECT_EQ(resolver->missing_ids(), 0u);
}

TEST_F(ReclamationTest, BaselineOracleEvictionBoundsStore) {
  // The ablation: with the (generous) oracle eviction horizon the store
  // stays bounded by the window span instead of the stream length.
  Topology topo(1, ProvenanceMode::kBaseline);
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", Ramp(5000));
  auto* tap = topo.Add<MultiplexNode>("tap");
  auto* filter = topo.Add<FilterNode<ValueTuple>>(
      "f", [](const ValueTuple& t) { return t.value % 10 == 0; });
  auto* sink_tap = topo.Add<MultiplexNode>("sink_tap");
  auto* sink = topo.Add<SinkNode>("sink");
  BaselineResolverOptions bro;
  bro.slack = 50;
  bro.evict = true;
  auto* resolver = topo.Add<BaselineResolverNode>("resolver", bro);
  topo.Connect(source, tap);
  topo.Connect(tap, filter);
  topo.Connect(filter, sink_tap);
  topo.Connect(sink_tap, sink);
  topo.Connect(sink_tap, resolver);
  topo.Connect(tap, resolver);
  RunToCompletion(topo);

  EXPECT_LT(resolver->store_peak_size(), 1000u);
  EXPECT_EQ(resolver->records(), 500u);
  EXPECT_EQ(resolver->missing_ids(), 0u);
}

}  // namespace
}  // namespace genealog
