#include "genealog/traversal.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

std::vector<int64_t> ValuesOf(const std::vector<Tuple*>& tuples) {
  std::vector<int64_t> out;
  for (Tuple* t : tuples) {
    out.push_back(static_cast<ValueTuple*>(t)->value);
  }
  return out;
}

TEST(TraversalTest, SourceTupleIsItsOwnProvenance) {
  auto t = V(1, 42);
  t->kind = TupleKind::kSource;
  auto result = FindProvenance(t.get());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], t.get());
}

TEST(TraversalTest, RemoteTupleIsTerminal) {
  auto t = V(1, 42);
  t->kind = TupleKind::kRemote;
  auto result = FindProvenance(t.get());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], t.get());
}

TEST(TraversalTest, NullRootYieldsNothing) {
  EXPECT_TRUE(FindProvenance(nullptr).empty());
}

TEST(TraversalTest, MapChainFollowsU1) {
  auto source = V(0, 1);
  auto m1 = V(0, 2);
  m1->kind = TupleKind::kMap;
  m1->set_u1(source.get());
  auto m2 = V(0, 3);
  m2->kind = TupleKind::kMap;
  m2->set_u1(m1.get());
  auto result = FindProvenance(m2.get());
  EXPECT_EQ(ValuesOf(result), (std::vector<int64_t>{1}));
}

TEST(TraversalTest, MultiplexFollowsU1) {
  auto source = V(0, 1);
  auto copy = V(0, 2);
  copy->kind = TupleKind::kMultiplex;
  copy->set_u1(source.get());
  auto result = FindProvenance(copy.get());
  EXPECT_EQ(ValuesOf(result), (std::vector<int64_t>{1}));
}

TEST(TraversalTest, JoinFollowsBothBranches) {
  auto s1 = V(0, 1);
  auto s2 = V(5, 2);
  auto j = V(5, 3);
  j->kind = TupleKind::kJoin;
  j->set_u1(s2.get());  // newer
  j->set_u2(s1.get());  // older
  auto result = FindProvenance(j.get());
  // BFS order: U1 enqueued before U2.
  EXPECT_EQ(ValuesOf(result), (std::vector<int64_t>{2, 1}));
}

TEST(TraversalTest, AggregateWalksNChainFromU2ToU1) {
  std::vector<IntrusivePtr<ValueTuple>> window{V(1, 1), V(2, 2), V(3, 3),
                                               V(4, 4)};
  for (size_t i = 0; i + 1 < window.size(); ++i) {
    window[i]->try_set_next(window[i + 1].get());
  }
  auto agg = V(0, 100);
  agg->kind = TupleKind::kAggregate;
  agg->set_u2(window.front().get());
  agg->set_u1(window.back().get());
  auto result = FindProvenance(agg.get());
  EXPECT_EQ(ValuesOf(result), (std::vector<int64_t>{1, 2, 3, 4}));
}

TEST(TraversalTest, AggregateSingleTupleWindow) {
  auto only = V(1, 7);
  auto agg = V(0, 100);
  agg->kind = TupleKind::kAggregate;
  agg->set_u2(only.get());
  agg->set_u1(only.get());
  auto result = FindProvenance(agg.get());
  EXPECT_EQ(ValuesOf(result), (std::vector<int64_t>{7}));
}

TEST(TraversalTest, SingleTupleWindowWithExtendedChainStopsAtU1) {
  // Regression for a bug in the paper's Listing 1 (found by fuzzing): an
  // aggregate output over a single-tuple window (U1 == U2) whose tuple later
  // had N set by an overlapping window must NOT walk past U1 into the rest
  // of the chain.
  auto only = V(1, 7);
  auto later1 = V(2, 8);
  auto later2 = V(3, 9);
  only->try_set_next(later1.get());    // set by a later overlapping window
  later1->try_set_next(later2.get());
  auto agg = V(0, 100);
  agg->kind = TupleKind::kAggregate;
  agg->set_u2(only.get());
  agg->set_u1(only.get());  // single-tuple window
  auto result = FindProvenance(agg.get());
  EXPECT_EQ(ValuesOf(result), (std::vector<int64_t>{7}));
}

TEST(TraversalTest, AggregateChainStopsAtU1NotChainEnd) {
  // The chain continues past U1 (a later window linked further), but this
  // output's window ends at U1.
  std::vector<IntrusivePtr<ValueTuple>> chain{V(1, 1), V(2, 2), V(3, 3),
                                              V(4, 4), V(5, 5)};
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    chain[i]->try_set_next(chain[i + 1].get());
  }
  auto agg = V(0, 100);
  agg->kind = TupleKind::kAggregate;
  agg->set_u2(chain[0].get());
  agg->set_u1(chain[2].get());  // window = 1..3 only
  auto result = FindProvenance(agg.get());
  EXPECT_EQ(ValuesOf(result), (std::vector<int64_t>{1, 2, 3}));
}

TEST(TraversalTest, DiamondIsDeduplicated) {
  // Two joins sharing a source: the source appears once.
  auto shared = V(0, 1);
  auto other1 = V(1, 2);
  auto other2 = V(2, 3);
  auto j1 = V(1, 10);
  j1->kind = TupleKind::kJoin;
  j1->set_u1(other1.get());
  j1->set_u2(shared.get());
  auto j2 = V(2, 20);
  j2->kind = TupleKind::kJoin;
  j2->set_u1(other2.get());
  j2->set_u2(shared.get());
  auto top = V(2, 30);
  top->kind = TupleKind::kJoin;
  top->set_u1(j2.get());
  top->set_u2(j1.get());
  auto result = FindProvenance(top.get());
  auto values = ValuesOf(result);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int64_t>{1, 2, 3}));
}

TEST(TraversalTest, MixedOperatorGraph) {
  // source -> map -> \
  //                   join -> aggregate-of-one
  // source2 --------> /
  auto s1 = V(0, 1);
  auto s2 = V(1, 2);
  auto m = V(0, 3);
  m->kind = TupleKind::kMap;
  m->set_u1(s1.get());
  auto j = V(1, 4);
  j->kind = TupleKind::kJoin;
  j->set_u1(s2.get());
  j->set_u2(m.get());
  auto a = V(0, 5);
  a->kind = TupleKind::kAggregate;
  a->set_u2(j.get());
  a->set_u1(j.get());
  auto values = ValuesOf(FindProvenance(a.get()));
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int64_t>{1, 2}));
}

TEST(TraversalTest, RemoteCutsTraversalAtInstanceBoundary) {
  // An aggregate over REMOTE tuples (received from another instance) stops
  // at those tuples; their upstream graphs live in the other process.
  auto r1 = V(1, 1);
  r1->kind = TupleKind::kRemote;
  auto r2 = V(2, 2);
  r2->kind = TupleKind::kRemote;
  r1->try_set_next(r2.get());
  auto agg = V(0, 10);
  agg->kind = TupleKind::kAggregate;
  agg->set_u2(r1.get());
  agg->set_u1(r2.get());
  auto result = FindProvenance(agg.get());
  EXPECT_EQ(ValuesOf(result), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(result[0]->kind, TupleKind::kRemote);
}

TEST(TraversalTest, BfsVisitsEachNodeOnce) {
  // A deep ladder of joins over shared nodes: without the visited set this
  // would be exponential.
  constexpr int kDepth = 40;
  std::vector<IntrusivePtr<ValueTuple>> layer;
  auto a = V(0, 0);
  auto b = V(0, 1);
  IntrusivePtr<ValueTuple> left = a;
  IntrusivePtr<ValueTuple> right = b;
  for (int i = 0; i < kDepth; ++i) {
    auto join = V(i, 100 + i);
    join->kind = TupleKind::kJoin;
    join->set_u1(left.get());
    join->set_u2(right.get());
    left = right;
    right = join;
  }
  auto result = FindProvenance(right.get());
  auto values = ValuesOf(result);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int64_t>{0, 1}));
}

TEST(TraversalTest, ScratchReuseAcrossCalls) {
  TraversalScratch scratch;
  std::vector<Tuple*> result;
  auto s = V(0, 1);
  auto m = V(0, 2);
  m->kind = TupleKind::kMap;
  m->set_u1(s.get());
  FindProvenance(m.get(), result, scratch);
  EXPECT_EQ(result.size(), 1u);
  result.clear();
  // Second call must not be polluted by the first's visited set.
  FindProvenance(m.get(), result, scratch);
  EXPECT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], s.get());
}

TEST(TraversalTest, LargeAggregateGraphIsLinear) {
  // Q3-scale: 192 contributing tuples, one AGGREGATE level above.
  constexpr int kN = 192;
  std::vector<IntrusivePtr<ValueTuple>> window;
  for (int i = 0; i < kN; ++i) window.push_back(V(i, i));
  for (int i = 0; i + 1 < kN; ++i) {
    window[i]->try_set_next(window[i + 1].get());
  }
  auto agg = V(0, 999);
  agg->kind = TupleKind::kAggregate;
  agg->set_u2(window.front().get());
  agg->set_u1(window.back().get());
  auto result = FindProvenance(agg.get());
  EXPECT_EQ(result.size(), static_cast<size_t>(kN));
}

}  // namespace
}  // namespace genealog
