// ProvenanceSinkNode behaviour beyond the happy path covered in su_test:
// watermark-driven finalization (records must not wait for flush), slack
// handling, cross-path deduplication, and group interleaving.
#include "genealog/provenance_sink.h"

#include <gtest/gtest.h>

#include "genealog/unfolded.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

IntrusivePtr<UnfoldedTuple> U(int64_t ts, uint64_t derived_id,
                              uint64_t origin_id, int64_t derived_ts = -1) {
  auto u = MakeTuple<UnfoldedTuple>(ts);
  u->derived = V(ts, static_cast<int64_t>(derived_id));
  u->derived_id = derived_id;
  u->derived_ts = derived_ts >= 0 ? derived_ts : ts;
  u->origin = V(0, static_cast<int64_t>(origin_id));
  u->origin->id = origin_id;
  u->origin_id = origin_id;
  u->origin_kind = TupleKind::kSource;
  return u;
}

struct SinkRun {
  std::vector<ProvenanceRecord> records;
  // Wall-clock order marker: number of records finalized before flush.
  size_t finalized_by_watermark = 0;
};

TEST(ProvenanceSinkDetailTest, WatermarkFinalizesBeforeFlush) {
  // Two groups; a watermark far past the first group must finalize it while
  // the stream is still open. We detect this by interleaving a probe tuple:
  // the consumer records how many records existed when the probe passed.
  ProvenanceSinkSpec options;
  SinkRun run;
  options.finalize_slack = 10;
  options.consumer = [&run](const ProvenanceRecord& r) {
    run.records.push_back(r);
  };
  Topology topo;
  std::vector<IntrusivePtr<UnfoldedTuple>> data;
  data.push_back(U(1, 100, 1));
  data.push_back(U(1, 100, 2));
  data.push_back(U(50, 200, 3));  // advances the watermark past 1+10
  auto* source =
      topo.Add<VectorSourceNode<UnfoldedTuple>>("src", std::move(data));
  auto* sink = topo.Add<ProvenanceSinkNode>("k2", options);
  topo.Connect(source, sink);

  // Snapshot the record count when the ts=50 tuple is processed: group 100
  // must already be finalized by then... finalization happens on watermark
  // *after* the tuple, so check after the run instead that both groups exist
  // and group 100 came first.
  RunToCompletion(topo);
  ASSERT_EQ(run.records.size(), 2u);
  EXPECT_EQ(run.records[0].derived_id, 100u);
  EXPECT_EQ(run.records[0].origins.size(), 2u);
  EXPECT_EQ(run.records[1].derived_id, 200u);
}

TEST(ProvenanceSinkDetailTest, SlackDelaysFinalization) {
  // With slack larger than the stream span, only flush finalizes; all
  // records still appear exactly once.
  ProvenanceSinkSpec options;
  std::vector<uint64_t> finalized;
  options.finalize_slack = 1000000;
  options.consumer = [&finalized](const ProvenanceRecord& r) {
    finalized.push_back(r.derived_id);
  };
  Topology topo;
  std::vector<IntrusivePtr<UnfoldedTuple>> data;
  data.push_back(U(1, 100, 1));
  data.push_back(U(50, 200, 2));
  auto* source =
      topo.Add<VectorSourceNode<UnfoldedTuple>>("src", std::move(data));
  auto* sink = topo.Add<ProvenanceSinkNode>("k2", options);
  topo.Connect(source, sink);
  RunToCompletion(topo);
  EXPECT_EQ(finalized, (std::vector<uint64_t>{100, 200}));
}

TEST(ProvenanceSinkDetailTest, InterleavedGroupsRegroupById) {
  // MU outputs can interleave unfolded tuples of different sink tuples, with
  // unfolded ts trailing derived_ts by up to the MU window — the reason the
  // deployments pass the query's window span as finalize_slack.
  ProvenanceSinkSpec options;
  options.finalize_slack = 10;
  std::vector<ProvenanceRecord> records;
  options.consumer = [&records](const ProvenanceRecord& r) {
    records.push_back(r);
  };
  Topology topo;
  std::vector<IntrusivePtr<UnfoldedTuple>> data;
  data.push_back(U(10, 100, 1, /*derived_ts=*/10));
  data.push_back(U(10, 200, 2, /*derived_ts=*/10));
  data.push_back(U(11, 100, 3, /*derived_ts=*/10));
  data.push_back(U(11, 200, 4, /*derived_ts=*/10));
  auto* source =
      topo.Add<VectorSourceNode<UnfoldedTuple>>("src", std::move(data));
  auto* sink = topo.Add<ProvenanceSinkNode>("k2", options);
  topo.Connect(source, sink);
  RunToCompletion(topo);

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].origins.size(), 2u);
  EXPECT_EQ(records[1].origins.size(), 2u);
}

TEST(ProvenanceSinkDetailTest, DuplicateOriginIdsDeduplicated) {
  // The same source can reach a sink tuple over two MU paths; the record
  // keeps it once.
  ProvenanceSinkSpec options;
  std::vector<ProvenanceRecord> records;
  options.consumer = [&records](const ProvenanceRecord& r) {
    records.push_back(r);
  };
  Topology topo;
  std::vector<IntrusivePtr<UnfoldedTuple>> data;
  data.push_back(U(10, 100, 7));
  data.push_back(U(10, 100, 7));  // duplicate
  data.push_back(U(10, 100, 8));
  auto* source =
      topo.Add<VectorSourceNode<UnfoldedTuple>>("src", std::move(data));
  auto* sink = topo.Add<ProvenanceSinkNode>("k2", options);
  topo.Connect(source, sink);
  RunToCompletion(topo);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].origins.size(), 2u);
}

TEST(ProvenanceSinkDetailTest, CountsAndBytesAccumulate) {
  ProvenanceSinkSpec options;
  Topology topo;
  std::vector<IntrusivePtr<UnfoldedTuple>> data;
  data.push_back(U(1, 100, 1));
  data.push_back(U(1, 100, 2));
  data.push_back(U(2, 200, 3));
  auto* source =
      topo.Add<VectorSourceNode<UnfoldedTuple>>("src", std::move(data));
  auto* sink = topo.Add<ProvenanceSinkNode>("k2", options);
  topo.Connect(source, sink);
  RunToCompletion(topo);
  EXPECT_EQ(sink->records(), 2u);
  EXPECT_EQ(sink->origin_tuples(), 3u);
  EXPECT_DOUBLE_EQ(sink->mean_origins_per_record(), 1.5);
  EXPECT_GT(sink->bytes_written(), 0u);
}

TEST(ProvenanceSinkDetailTest, EmptyStreamProducesNoRecords) {
  ProvenanceSinkSpec options;
  Topology topo;
  auto* source = topo.Add<VectorSourceNode<UnfoldedTuple>>(
      "src", std::vector<IntrusivePtr<UnfoldedTuple>>{});
  auto* sink = topo.Add<ProvenanceSinkNode>("k2", options);
  topo.Connect(source, sink);
  RunToCompletion(topo);
  EXPECT_EQ(sink->records(), 0u);
  EXPECT_EQ(sink->bytes_written(), 0u);
}

TEST(ProvenanceSinkDetailTest, UnfoldedSerializationRoundTrip) {
  auto u = U(5, 100, 7);
  u->origin_ts = 3;
  u->origin_kind = TupleKind::kRemote;
  ByteWriter w;
  SerializeTuple(*u, w);
  ByteReader r(w.bytes());
  TuplePtr back = DeserializeTuple(r);
  const auto& ub = static_cast<const UnfoldedTuple&>(*back);
  EXPECT_EQ(ub.derived_id, 100u);
  EXPECT_EQ(ub.origin_id, 7u);
  EXPECT_EQ(ub.origin_ts, 3);
  EXPECT_EQ(ub.origin_kind, TupleKind::kRemote);
  ASSERT_NE(ub.derived, nullptr);
  ASSERT_NE(ub.origin, nullptr);
  // Nested tuples are fresh objects with no meta pointers.
  EXPECT_EQ(ub.derived->u1(), nullptr);
  EXPECT_NE(ub.derived.get(), u->derived.get());
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace genealog
