// Lineage service end-to-end: a LineageClient against a served store must
// answer element-identically to the in-process LineageQuery — on a synthetic
// store and on a live Q1 (intra and distributed, querying *while* the
// topology runs) — and a hostile peer feeding the server malformed frames
// must get errors/disconnects, never a crash. Also covers Select over the
// wire, generation bumps across restarts, remote shutdown gating, and the
// bounded-connection accept loop.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "genealog/lineage_query.h"
#include "genealog/lineage_service.h"
#include "genealog/lineage_store.h"
#include "queries/query_helpers.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;

uint64_t MakeId(uint64_t node_uid, uint64_t seq) {
  return (node_uid << 40) | seq;
}

// A small diamond-shaped store: sources (uid 1/2) -> mid (uid 5) -> sink
// (uid 9), with event times spread for predicate tests.
std::shared_ptr<LineageStore> DiamondStore() {
  auto store = std::make_shared<LineageStore>();
  auto ingest = [&](uint64_t id, int64_t ts,
                    std::vector<std::pair<uint64_t, int64_t>> origins) {
    ProvenanceRecord rec;
    auto d = V(ts, static_cast<int64_t>(id & 0xffff));
    d->id = id;
    rec.derived = TuplePtr(d.get());
    rec.derived_id = id;
    rec.derived_ts = ts;
    for (const auto& [oid, ots] : origins) {
      auto o = V(ots, static_cast<int64_t>(oid & 0xffff));
      o->id = oid;
      rec.origins.push_back(TuplePtr(o.get()));
    }
    store->Ingest(rec);
  };
  ingest(MakeId(5, 1), 10, {{MakeId(1, 1), 1}, {MakeId(2, 1), 2}});
  ingest(MakeId(5, 2), 20, {{MakeId(1, 2), 11}, {MakeId(2, 2), 12}});
  ingest(MakeId(9, 1), 30, {{MakeId(5, 1), 10}, {MakeId(5, 2), 20}});
  return store;
}

std::vector<uint64_t> Ids(const std::vector<LineageStore::Entry>& entries) {
  std::vector<uint64_t> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.id);
  return ids;
}

// Element-identical comparison of one id's full remote vs local answer
// surface: same ids, timestamps, type tags and payload bytes in the same
// order.
void ExpectSameEntries(const std::vector<LineageStore::Entry>& remote,
                       const std::vector<LineageStore::Entry>& local) {
  ASSERT_EQ(remote.size(), local.size());
  for (size_t i = 0; i < remote.size(); ++i) {
    EXPECT_EQ(remote[i].id, local[i].id);
    EXPECT_EQ(remote[i].ts, local[i].ts);
    EXPECT_EQ(remote[i].type_tag, local[i].type_tag);
    EXPECT_EQ(remote[i].tuple->DebugPayload(), local[i].tuple->DebugPayload());
  }
}

void ExpectSameStats(const LineageStore::Stats& remote,
                     const LineageStore::Stats& local) {
  EXPECT_EQ(remote.records_ingested, local.records_ingested);
  EXPECT_EQ(remote.records_retained, local.records_retained);
  EXPECT_EQ(remote.tuples_retained, local.tuples_retained);
  EXPECT_EQ(remote.edges_retained, local.edges_retained);
  EXPECT_EQ(remote.records_evicted, local.records_evicted);
  EXPECT_EQ(remote.epochs_evicted, local.epochs_evicted);
  EXPECT_EQ(remote.bytes_retained, local.bytes_retained);
  EXPECT_EQ(remote.node_uids, local.node_uids);
  EXPECT_EQ(remote.min_retained_ts, local.min_retained_ts);
  EXPECT_EQ(remote.max_retained_ts, local.max_retained_ts);
}

// The whole LineageQuery surface, remote vs in-process, for every id the
// store has ever seen plus a miss.
void ExpectRemoteMatchesLocal(LineageClient& client, const LineageQuery& local,
                              const std::vector<uint64_t>& probe_ids) {
  EXPECT_EQ(client.RetainedRecordIds(), local.RetainedRecordIds());
  ExpectSameStats(client.Stats(), local.Stats());
  for (const uint64_t id : probe_ids) {
    ExpectSameEntries(client.Contributors(id), local.Contributors(id));
    ExpectSameEntries(client.DerivedFrom(id), local.DerivedFrom(id));
    for (const int hops : {0, 1, 3}) {
      ExpectSameEntries(client.Expand(id, hops), local.Expand(id, hops));
    }
    const auto remote_hit = client.Lookup(id);
    const auto local_hit = local.Lookup(id);
    ASSERT_EQ(remote_hit.has_value(), local_hit.has_value()) << id;
    if (local_hit.has_value()) {
      EXPECT_EQ(remote_hit->id, local_hit->id);
      EXPECT_EQ(remote_hit->ts, local_hit->ts);
      EXPECT_EQ(remote_hit->tuple->DebugPayload(),
                local_hit->tuple->DebugPayload());
    }
  }
  EXPECT_FALSE(client.Lookup(0xdeadbeef).has_value());
}

TEST(LineageServiceTest, RemoteMatchesInProcessOnSyntheticStore) {
  auto store = DiamondStore();
  LineageService service(store);
  service.Start();
  EXPECT_TRUE(service.running());
  EXPECT_GT(service.port(), 0);

  LineageClient client(service.address());
  const LineageQuery local(store);
  std::vector<uint64_t> probes;
  for (uint64_t uid : {1, 2, 5, 9}) {
    probes.push_back(MakeId(uid, 1));
    probes.push_back(MakeId(uid, 2));
  }
  ExpectRemoteMatchesLocal(client, local, probes);

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_GT(stats.requests, 10u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.bytes_received, 0u);
  service.Stop();
  EXPECT_FALSE(service.running());
}

TEST(LineageServiceTest, SelectOverTheWireMatchesInProcess) {
  auto store = DiamondStore();
  LineageService service(store);
  service.Start();
  LineageClient client(service.address());
  const LineageQuery local(store);

  std::vector<LineagePredicate> predicates;
  predicates.push_back({});  // everything
  LineagePredicate span;
  span.min_ts = 5;
  span.max_ts = 20;
  predicates.push_back(span);
  LineagePredicate node;
  node.has_node_uid = true;
  node.node_uid = 5;
  predicates.push_back(node);
  LineagePredicate records;
  records.records_only = true;
  predicates.push_back(records);
  LineagePredicate limited;
  limited.limit = 2;
  predicates.push_back(limited);
  LineagePredicate empty;
  empty.min_ts = 1000;
  predicates.push_back(empty);

  for (const auto& p : predicates) {
    ExpectSameEntries(client.Select(p), local.Select(p));
  }
  // Semantics spot checks (the store-side unit test covers them in depth).
  // (ts, id) order: (5,1)@10, (1,2)@11, (2,2)@12, (5,2)@20.
  EXPECT_EQ(Ids(client.Select(span)),
            (std::vector<uint64_t>{MakeId(5, 1), MakeId(1, 2), MakeId(2, 2),
                                   MakeId(5, 2)}));
  EXPECT_EQ(Ids(client.Select(records)),
            (std::vector<uint64_t>{MakeId(5, 1), MakeId(5, 2), MakeId(9, 1)}));
  service.Stop();
}

TEST(LineageServiceTest, LiveQ1RemoteEqualsInProcess) {
  for (const bool distributed : {false, true}) {
    SCOPED_TRACE(distributed ? "distributed" : "intra");
    lr::LinearRoadConfig config;
    config.n_cars = 30;
    config.duration_s = 1800;
    config.stop_probability = 0.03;
    config.seed = 17;

    queries::QueryBuildOptions options;
    options.mode = ProvenanceMode::kGenealog;
    options.distributed = distributed;
    options.lineage_store = true;
    options.lineage_serve_addr = "127.0.0.1:0";  // ephemeral; engine-started
    auto q = queries::BuildQ1(lr::GenerateLinearRoad(config),
                              std::move(options));
    ASSERT_NE(q.lineage_service, nullptr);
    ASSERT_TRUE(q.lineage_service->running());

    // Query *while* the topology runs: a console thread hammering the
    // service concurrently with ingest (answers are snapshots, so only
    // liveness and sanity are checked here).
    std::thread console([&] {
      LineageClient during(q.lineage_service->address());
      for (int i = 0; i < 50; ++i) {
        const auto ids = during.RetainedRecordIds();
        for (const uint64_t id : ids) {
          during.Contributors(id);
          break;  // one per round trip keeps the loop fast
        }
        during.Stats();
      }
    });
    q.Run();
    console.join();

    // Drained: remote must now be element-identical to in-process across the
    // full surface.
    const LineageQuery local = q.lineage();
    LineageClient client(q.lineage_service->address());
    std::vector<uint64_t> probes = local.RetainedRecordIds();
    ASSERT_FALSE(probes.empty());
    for (const uint64_t id : local.RetainedRecordIds()) {
      const std::vector<uint64_t> src_ids = Ids(local.Contributors(id));
      probes.insert(probes.end(), src_ids.begin(), src_ids.end());
    }
    ExpectRemoteMatchesLocal(client, local, probes);
    ExpectSameEntries(client.Select({}), local.Select({}));
    EXPECT_EQ(q.lineage_service->stats().errors, 0u);
  }
}

TEST(LineageServiceTest, GenerationBumpsAcrossRestarts) {
  auto store = DiamondStore();
  uint8_t first_generation;
  std::string addr;
  {
    LineageService service(store);
    service.Start();
    addr = service.address();
    LineageClient client(service.address());
    first_generation = client.server_generation();
    service.Stop();
  }
  LineageService restarted(store);
  restarted.Start();
  LineageClient client(restarted.address());
  // A fresh incarnation: the console can tell it is not the server it first
  // attached to.
  EXPECT_NE(client.server_generation(), first_generation);
  restarted.Stop();
}

TEST(LineageServiceTest, RemoteShutdownIsGated) {
  auto store = DiamondStore();
  {
    LineageService service(store);  // default: shutdown disabled
    service.Start();
    LineageClient client(service.address());
    EXPECT_THROW(client.Shutdown(), std::runtime_error);
    client.Stats();  // connection still serves after the refused shutdown
    service.Stop();
  }
  LineageServiceOptions options;
  options.allow_remote_shutdown = true;
  LineageService service(store, options);
  service.Start();
  LineageClient client(service.address());
  client.Shutdown();
  service.Wait();  // returns because the shutdown was honored
  service.Stop();
  EXPECT_FALSE(service.running());
}

TEST(LineageServiceTest, ParseServeAddrForms) {
  EXPECT_EQ(ParseServeAddr("10.1.2.3:7841").host, "10.1.2.3");
  EXPECT_EQ(ParseServeAddr("10.1.2.3:7841").port, 7841);
  EXPECT_EQ(ParseServeAddr(":7841").host, "127.0.0.1");
  EXPECT_EQ(ParseServeAddr(":7841").port, 7841);
  EXPECT_EQ(ParseServeAddr("7841").port, 7841);
  EXPECT_EQ(ParseServeAddr("127.0.0.1:0").port, 0);
  EXPECT_THROW(ParseServeAddr(""), std::runtime_error);
  EXPECT_THROW(ParseServeAddr("host:notaport"), std::runtime_error);
  EXPECT_THROW(ParseServeAddr("host:99999"), std::runtime_error);
}

// Raw-socket hostile peer: sends bytes that are framed correctly (u32
// length prefix) but garbage inside, then bytes that violate the framing
// itself. The server must answer errors or drop the connection — and keep
// serving well-formed clients afterwards.
TEST(LineageServiceTest, HostileFramesGetErrorsNotCrashes) {
  auto store = DiamondStore();
  LineageService service(store);
  service.Start();

  auto connect = [&]() -> int {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(service.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  };
  auto send_framed = [](int fd, const std::vector<uint8_t>& body) {
    uint32_t len = static_cast<uint32_t>(body.size());
    uint8_t prefix[4];
    std::memcpy(prefix, &len, 4);
    EXPECT_EQ(::send(fd, prefix, 4, 0), 4);
    if (!body.empty()) {
      EXPECT_EQ(::send(fd, body.data(), body.size(), 0),
                static_cast<ssize_t>(body.size()));
    }
  };
  // Half-close after sending: a corrupted frame may still decode to a valid
  // request (a flipped id bit is just a different id), in which case the
  // server rightly answers and keeps serving — the write-side shutdown makes
  // it see EOF after the answer, so draining terminates either way.
  auto drain_until_close = [](int fd) {
    ::shutdown(fd, SHUT_WR);
    uint8_t buf[4096];
    while (::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
  };

  std::mt19937_64 rng(23);
  // Garbage request bodies (valid framing): an error response (or decode
  // disconnect), with the service alive throughout.
  for (int trial = 0; trial < 50; ++trial) {
    const int fd = connect();
    std::vector<uint8_t> junk(1 + rng() % 64);
    for (auto& b : junk) b = static_cast<uint8_t>(rng());
    send_framed(fd, junk);
    drain_until_close(fd);
    ::close(fd);
  }
  // Truncated/corrupted well-formed requests.
  const std::vector<uint8_t> good =
      EncodeLineageRequest({LineageOp::kContributors, 1, MakeId(9, 1), 0, {}});
  for (size_t len = 0; len < good.size(); ++len) {
    const int fd = connect();
    send_framed(fd, std::vector<uint8_t>(good.begin(), good.begin() + len));
    drain_until_close(fd);
    ::close(fd);
  }
  for (int trial = 0; trial < 200; ++trial) {
    const int fd = connect();
    auto corrupt = good;
    corrupt[rng() % corrupt.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
    send_framed(fd, corrupt);
    drain_until_close(fd);
    ::close(fd);
  }
  // Framing violation: a length prefix over the 64 MiB bound. The channel
  // rejects it before any allocation; connection drops.
  {
    const int fd = connect();
    uint32_t len = 0x7FFFFFFF;
    uint8_t prefix[4];
    std::memcpy(prefix, &len, 4);
    EXPECT_EQ(::send(fd, prefix, 4, 0), 4);
    drain_until_close(fd);
    ::close(fd);
  }

  // The service survived it all and still answers a well-formed client.
  LineageClient client(service.address());
  EXPECT_EQ(client.Stats().records_ingested, 3u);
  const ServeStats stats = service.stats();
  EXPECT_GT(stats.errors, 0u);
  service.Stop();
}

// More clients than connection slots: every client must still be answered
// (the accept loop parks rather than rejecting), across sequential waves.
TEST(LineageServiceTest, BoundedConnectionsServeAllClients) {
  auto store = DiamondStore();
  LineageServiceOptions options;
  options.max_connections = 2;
  LineageService service(store, options);
  service.Start();

  std::vector<std::thread> clients;
  std::atomic<int> answered{0};
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      LineageClient client(service.address());
      for (int i = 0; i < 10; ++i) {
        if (client.Stats().records_ingested == 3u) ++answered;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(answered.load(), 80);
  EXPECT_EQ(service.stats().connections, 8u);
  service.Stop();
}

}  // namespace
}  // namespace genealog
