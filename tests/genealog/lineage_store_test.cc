// LineageStore correctness: fuzzed random DAG record streams checked against
// a naive adjacency-map reference (same idea as traversal_fuzz_test's DAG
// generator), whole-epoch eviction under tight count and event-time
// retention (truncated-but-correct answers, accurate Stats), and a
// concurrent ingest + query stress for the TSan job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "genealog/lineage_query.h"
#include "genealog/lineage_store.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

// Deterministic PRNG (same generator the fuzz suites use).
struct SplitMix64 {
  uint64_t state;
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
};

// Ids carry a fake node uid in the high bits, exercising the uid dictionary
// the same way Node::NextTupleId-produced ids do.
uint64_t MakeId(uint64_t node_uid, uint64_t seq) {
  return (node_uid << 40) | seq;
}

struct Workload {
  // Every tuple ever created, by id (records need real TuplePtrs).
  std::unordered_map<uint64_t, TuplePtr> tuples;
  // Naive reference adjacency: derived -> origins and its mirror.
  std::unordered_map<uint64_t, std::vector<uint64_t>> parents;
  std::unordered_map<uint64_t, std::vector<uint64_t>> children;
  std::vector<uint64_t> derived_ids;  // ingest order
  std::vector<uint64_t> all_ids;

  TuplePtr Make(uint64_t id, int64_t ts) {
    auto t = V(ts, static_cast<int64_t>(id & 0xffff));
    t->id = id;
    tuples.emplace(id, t);
    all_ids.push_back(id);
    return TuplePtr(t.get());
  }
};

// Streams `n` random records into the store and the reference. Origins mix
// fresh source tuples with previously derived tuples, so backward closures
// go multiple levels deep.
Workload FuzzIngest(LineageStore& store, uint64_t seed, int n_records) {
  SplitMix64 rng{seed};
  Workload w;
  uint64_t seq = 1;
  for (int i = 0; i < n_records; ++i) {
    const int64_t ts = i;
    const uint64_t derived_id = MakeId(/*node_uid=*/9, seq++);
    ProvenanceRecord rec;
    rec.derived = w.Make(derived_id, ts);
    rec.derived_id = derived_id;
    rec.derived_ts = ts;

    const int n_origins = 1 + static_cast<int>(rng.Below(5));
    std::unordered_set<uint64_t> used;
    for (int o = 0; o < n_origins; ++o) {
      uint64_t origin_id;
      if (!w.derived_ids.empty() && rng.Below(10) < 3) {
        origin_id = w.derived_ids[rng.Below(w.derived_ids.size())];
      } else {
        origin_id = MakeId(/*node_uid=*/1 + rng.Below(4), seq++);
        w.Make(origin_id, ts - 1 - static_cast<int64_t>(rng.Below(3)));
      }
      if (!used.insert(origin_id).second) continue;
      rec.origins.push_back(TuplePtr(w.tuples.at(origin_id).get()));
      w.parents[derived_id].push_back(origin_id);
      w.children[origin_id].push_back(derived_id);
    }
    store.Ingest(rec);
    w.derived_ids.push_back(derived_id);
  }
  return w;
}

// Naive BFS closure over an adjacency map, excluding the root.
std::vector<uint64_t> NaiveClosure(
    const std::unordered_map<uint64_t, std::vector<uint64_t>>& adj,
    uint64_t root) {
  std::unordered_set<uint64_t> visited{root};
  std::vector<uint64_t> frontier{root};
  std::vector<uint64_t> out;
  while (!frontier.empty()) {
    std::vector<uint64_t> next;
    for (uint64_t id : frontier) {
      auto it = adj.find(id);
      if (it == adj.end()) continue;
      for (uint64_t n : it->second) {
        if (visited.insert(n).second) {
          next.push_back(n);
          out.push_back(n);
        }
      }
    }
    frontier.swap(next);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> Ids(const std::vector<LineageStore::Entry>& entries) {
  std::vector<uint64_t> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.id);
  return ids;
}

TEST(LineageStoreTest, FuzzedClosuresMatchNaiveReference) {
  for (const uint64_t seed : {1ull, 42ull, 1337ull}) {
    LineageStore store(LineageOptions{/*retain_records=*/0, 0, 1024});
    const Workload w = FuzzIngest(store, seed, 300);
    SCOPED_TRACE("seed " + std::to_string(seed));

    const LineageStore::Stats stats = store.stats();
    EXPECT_EQ(stats.records_ingested, 300u);
    EXPECT_EQ(stats.records_retained, 300u);
    EXPECT_EQ(stats.records_evicted, 0u);
    EXPECT_EQ(stats.tuples_retained, w.all_ids.size());
    EXPECT_EQ(stats.node_uids, 5u);  // uids 9 and 1..4

    for (uint64_t id : w.all_ids) {
      EXPECT_EQ(Ids(store.Contributors(id)), NaiveClosure(w.parents, id))
          << "backward closure of " << id;
      EXPECT_EQ(Ids(store.DerivedFrom(id)), NaiveClosure(w.children, id))
          << "forward closure of " << id;
    }
  }
}

TEST(LineageStoreTest, ExpandIsTheKHopNeighborhood) {
  LineageStore store;
  const Workload w = FuzzIngest(store, /*seed=*/7, 120);

  // Union adjacency for the naive k-hop reference.
  std::unordered_map<uint64_t, std::vector<uint64_t>> both;
  for (const auto& [id, v] : w.parents) {
    both[id].insert(both[id].end(), v.begin(), v.end());
  }
  for (const auto& [id, v] : w.children) {
    both[id].insert(both[id].end(), v.begin(), v.end());
  }

  SplitMix64 rng{99};
  for (int i = 0; i < 40; ++i) {
    const uint64_t root = w.all_ids[rng.Below(w.all_ids.size())];
    for (const int k : {0, 1, 2, 3}) {
      std::unordered_set<uint64_t> visited{root};
      std::vector<uint64_t> frontier{root};
      std::vector<uint64_t> expect;
      for (int hop = 0; hop < k; ++hop) {
        std::vector<uint64_t> next;
        for (uint64_t id : frontier) {
          for (uint64_t n : both[id]) {
            if (visited.insert(n).second) {
              next.push_back(n);
              expect.push_back(n);
            }
          }
        }
        frontier.swap(next);
      }
      std::sort(expect.begin(), expect.end());
      EXPECT_EQ(Ids(store.Expand(root, k)), expect)
          << "k=" << k << " root=" << root;
    }
  }
}

TEST(LineageStoreTest, LookupMaterializesStoredTuples) {
  LineageStore store;
  auto t = V(5, 123);
  t->id = MakeId(3, 1);
  ProvenanceRecord rec;
  rec.derived = TuplePtr(t.get());
  rec.derived_id = t->id;
  rec.derived_ts = 5;
  auto o = V(4, 77);
  o->id = MakeId(1, 1);
  rec.origins.push_back(TuplePtr(o.get()));
  store.Ingest(rec);

  const auto entry = store.Lookup(t->id);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->id, t->id);
  EXPECT_EQ(entry->ts, 5);
  EXPECT_EQ(entry->type_tag, ValueTuple::kTypeTag);
  // A fresh materialized object, not the ingested pointer.
  EXPECT_NE(entry->tuple.get(), t.get());
  EXPECT_EQ(entry->tuple->DebugPayload(), "123");
  const auto contributors = store.Contributors(t->id);
  ASSERT_EQ(contributors.size(), 1u);
  EXPECT_EQ(contributors[0].tuple->DebugPayload(), "77");
  EXPECT_FALSE(store.Lookup(0xdead).has_value());
}

// Each record i gets 3 private origins, ts = i; tight count retention must
// keep memory flat, answer retained records exactly, and answer evicted ones
// with truncated-but-correct emptiness.
TEST(LineageStoreTest, CountRetentionEvictsWholeEpochs) {
  LineageOptions lo;
  lo.retain_records = 8;
  lo.epoch_records = 4;
  LineageStore store(lo);

  std::vector<uint64_t> derived_ids;
  std::vector<std::vector<uint64_t>> origin_ids;
  uint64_t seq = 1;
  for (int i = 0; i < 20; ++i) {
    ProvenanceRecord rec;
    const uint64_t id = MakeId(9, seq++);
    auto d = V(i, i);
    d->id = id;
    rec.derived = TuplePtr(d.get());
    rec.derived_id = id;
    rec.derived_ts = i;
    origin_ids.emplace_back();
    for (int o = 0; o < 3; ++o) {
      auto src = V(i - 1, 100 * i + o);
      src->id = MakeId(1, seq++);
      origin_ids.back().push_back(src->id);
      rec.origins.push_back(TuplePtr(src.get()));
    }
    store.Ingest(rec);
    derived_ids.push_back(id);
    EXPECT_LE(store.stats().records_retained, lo.retain_records);
  }

  const LineageStore::Stats stats = store.stats();
  EXPECT_EQ(stats.records_ingested, 20u);
  EXPECT_EQ(stats.records_retained + stats.records_evicted, 20u);
  EXPECT_LE(stats.records_retained, 8u);
  EXPECT_GE(stats.records_retained, 5u);  // whole-epoch granularity
  EXPECT_EQ(stats.epochs_evicted,
            (stats.records_evicted / lo.epoch_records));
  // Origins are private per record: slots track records exactly.
  EXPECT_EQ(stats.tuples_retained, stats.records_retained * 4);
  EXPECT_EQ(stats.edges_retained, stats.records_retained * 3);
  const size_t evicted = static_cast<size_t>(stats.records_evicted);
  EXPECT_EQ(stats.min_retained_ts, static_cast<int64_t>(evicted));
  EXPECT_EQ(stats.max_retained_ts, 19);

  const auto retained = store.RetainedRecordIds();
  EXPECT_EQ(retained.size(), stats.records_retained);
  for (size_t i = 0; i < derived_ids.size(); ++i) {
    const auto contributors = store.Contributors(derived_ids[i]);
    if (i < evicted) {
      // Truncated-but-correct: the record is gone, not misanswered.
      EXPECT_TRUE(contributors.empty());
      EXPECT_FALSE(store.Lookup(derived_ids[i]).has_value());
      EXPECT_FALSE(store.Lookup(origin_ids[i][0]).has_value());
    } else {
      std::vector<uint64_t> expect = origin_ids[i];
      std::sort(expect.begin(), expect.end());
      EXPECT_EQ(Ids(contributors), expect);
    }
  }
}

TEST(LineageStoreTest, SpanRetentionFollowsEventTimeHorizon) {
  LineageOptions lo;
  lo.retain_records = 0;  // unbounded by count
  lo.retain_span = 10;
  lo.epoch_records = 2;
  LineageStore store(lo);

  uint64_t seq = 1;
  for (int i = 0; i < 50; ++i) {
    ProvenanceRecord rec;
    auto d = V(i, i);
    d->id = MakeId(9, seq++);
    rec.derived = TuplePtr(d.get());
    rec.derived_id = d->id;
    rec.derived_ts = i;
    auto o = V(i - 1, i);
    o->id = MakeId(1, seq++);
    rec.origins.push_back(TuplePtr(o.get()));
    store.Ingest(rec);
  }

  const LineageStore::Stats stats = store.stats();
  EXPECT_GT(stats.records_evicted, 0u);
  // Everything older than the horizon is gone up to epoch granularity: an
  // epoch survives only if its newest record is within the span.
  EXPECT_GE(stats.min_retained_ts, 49 - 10 - 1);
  EXPECT_EQ(stats.max_retained_ts, 49);
}

// A shared origin must survive until its *last* referencing record is
// evicted, and a derived tuple referenced by a later record must outlive the
// eviction of its own record (losing only its record edges).
TEST(LineageStoreTest, SharedSlotsSurviveUntilLastReference) {
  LineageOptions lo;
  lo.retain_records = 1;
  lo.epoch_records = 1;
  LineageStore store(lo);

  auto shared = V(0, 7);
  shared->id = MakeId(1, 1);

  auto d1 = V(1, 1);
  d1->id = MakeId(9, 1);
  ProvenanceRecord r1;
  r1.derived = TuplePtr(d1.get());
  r1.derived_id = d1->id;
  r1.derived_ts = 1;
  r1.origins.push_back(TuplePtr(shared.get()));
  store.Ingest(r1);

  // Record 2's origins: the shared source AND record 1's derived tuple.
  auto d2 = V(2, 2);
  d2->id = MakeId(9, 2);
  ProvenanceRecord r2;
  r2.derived = TuplePtr(d2.get());
  r2.derived_id = d2->id;
  r2.derived_ts = 2;
  r2.origins.push_back(TuplePtr(shared.get()));
  r2.origins.push_back(TuplePtr(d1.get()));
  store.Ingest(r2);

  // Record 1 was evicted (retain 1), but d1 lives on as r2's origin — with
  // its own origin edges truncated away.
  EXPECT_EQ(store.stats().records_retained, 1u);
  EXPECT_TRUE(store.Lookup(d1->id).has_value());
  EXPECT_TRUE(store.Contributors(d1->id).empty());
  std::vector<uint64_t> expect{shared->id, d1->id};
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(Ids(store.Contributors(d2->id)), expect);
  // Evicting record 1 dropped its shared->d1 edge: the shared origin's
  // forward closure only reaches the retained record.
  EXPECT_EQ(Ids(store.DerivedFrom(shared->id)),
            (std::vector<uint64_t>{d2->id}));

  // Evict record 2 too: every slot must unwind.
  auto d3 = V(3, 3);
  d3->id = MakeId(9, 3);
  ProvenanceRecord r3;
  r3.derived = TuplePtr(d3.get());
  r3.derived_id = d3->id;
  r3.derived_ts = 3;
  store.Ingest(r3);
  EXPECT_FALSE(store.Lookup(shared->id).has_value());
  EXPECT_FALSE(store.Lookup(d1->id).has_value());
  EXPECT_EQ(store.stats().tuples_retained, 1u);
  EXPECT_EQ(store.stats().edges_retained, 0u);
}

// Lock contract under TSan: one ingester, concurrent readers issuing the
// whole query surface against a store that is evicting under them.
TEST(LineageStoreTest, ConcurrentIngestAndQuery) {
  LineageOptions lo;
  lo.retain_records = 256;
  lo.epoch_records = 32;
  LineageStore store(lo);
  LineageQuery query(
      std::shared_ptr<const LineageStore>(&store, [](const LineageStore*) {}));

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      SplitMix64 rng{static_cast<uint64_t>(r) + 1};
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t id = MakeId(9, 1 + rng.Below(2000));
        reads += query.Contributors(id).size();
        reads += query.DerivedFrom(MakeId(1, 1 + rng.Below(4000))).size();
        reads += query.Expand(id, 2).size();
        const auto stats = query.Stats();
        EXPECT_LE(stats.records_retained, 256u + 32u);
        reads += query.RetainedRecordIds().size();
      }
    });
  }

  SplitMix64 rng{12345};
  uint64_t seq = 1;
  for (int i = 0; i < 2000; ++i) {
    ProvenanceRecord rec;
    auto d = V(i, i);
    d->id = MakeId(9, static_cast<uint64_t>(i) + 1);
    rec.derived = TuplePtr(d.get());
    rec.derived_id = d->id;
    rec.derived_ts = i;
    const int n = 1 + static_cast<int>(rng.Below(3));
    for (int o = 0; o < n; ++o) {
      auto src = V(i - 1, o);
      src->id = MakeId(1, seq++);
      rec.origins.push_back(TuplePtr(src.get()));
    }
    store.Ingest(rec);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(store.stats().records_ingested, 2000u);
}

TEST(LineageQueryTest, InvalidHandleThrows) {
  LineageQuery query;
  EXPECT_FALSE(query.valid());
  EXPECT_FALSE(static_cast<bool>(query));
  EXPECT_THROW(query.Contributors(1), std::logic_error);
  EXPECT_THROW(query.Stats(), std::logic_error);
}

}  // namespace
}  // namespace genealog
