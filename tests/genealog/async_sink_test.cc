// The asynchronous provenance sink must be invisible in the data: for the
// same unfolded stream, the on-disk provenance file must be *byte-identical*
// with the async writer on or off — also when a tiny buffer cap forces the
// double-buffer swap through many background handoffs mid-run. The input
// stream is built once and shared across configurations, so the comparison
// really is byte-for-byte (ids and stimuli of the recorded tuples are pinned
// by construction). Runs under TSan in CI (repeated until-fail) to gate the
// producer/writer protocol.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

std::string ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// A pinned unfolded stream: per "sink tuple" ts, one derived tuple with a
// fan of origins, every id/stimulus fixed at construction. Shared across
// runs, so the serialized records cannot differ by construction.
struct PinnedStream {
  std::vector<IntrusivePtr<ValueTuple>> keep_alive;
  std::vector<IntrusivePtr<UnfoldedTuple>> unfolded;
};

PinnedStream MakePinnedStream(int n_records, int origins_per_record) {
  PinnedStream s;
  uint64_t next_id = 1;
  for (int r = 0; r < n_records; ++r) {
    auto derived = V(r, 1000 + r);
    derived->id = next_id++;
    derived->stimulus = 7;  // pinned: wall clock must not leak into the file
    s.keep_alive.push_back(derived);
    for (int o = 0; o < origins_per_record; ++o) {
      auto origin = V(r, 100 * r + o);
      origin->kind = TupleKind::kSource;
      origin->id = next_id++;
      origin->stimulus = 7;
      s.keep_alive.push_back(origin);
      auto u = MakeTuple<UnfoldedTuple>(derived->ts);
      u->derived = derived;
      u->derived_id = derived->id;
      u->derived_ts = derived->ts;
      u->origin = TuplePtr(origin.get());
      u->origin_id = origin->id;
      u->origin_ts = origin->ts;
      u->origin_kind = origin->kind;
      s.unfolded.push_back(std::move(u));
    }
  }
  return s;
}

// Streams the pinned unfolded tuples through a ProvenanceSinkNode and
// returns the file contents.
std::string RunToFile(const PinnedStream& stream, const std::string& path,
                      bool async, size_t buffer_bytes) {
  Topology topo(1, ProvenanceMode::kGenealog);
  auto* source =
      topo.Add<VectorSourceNode<UnfoldedTuple>>("src", stream.unfolded);
  ProvenanceSinkSpec pso;
  pso.file_path = path;
  pso.engine.async_prov_sink = async;
  pso.engine.prov_buffer_bytes = buffer_bytes;
  auto* prov = topo.Add<ProvenanceSinkNode>("k2", pso);
  EXPECT_EQ(prov->async(), async);
  topo.Connect(source, prov);
  RunToCompletion(topo);
  EXPECT_GT(prov->records(), 0u);
  EXPECT_FALSE(prov->write_error());
  const std::string bytes = ReadAll(path);
  EXPECT_EQ(prov->bytes_written(), bytes.size());
  std::remove(path.c_str());
  return bytes;
}

TEST(AsyncProvenanceSinkTest, FileBytesIdenticalToSynchronousPath) {
  const PinnedStream stream = MakePinnedStream(400, 5);
  const std::string path = ::testing::TempDir() + "/prov_async_a.bin";
  const std::string sync_bytes =
      RunToFile(stream, path, /*async=*/false, /*buffer_bytes=*/256 * 1024);
  const std::string async_bytes =
      RunToFile(stream, path, /*async=*/true, /*buffer_bytes=*/256 * 1024);
  ASSERT_FALSE(sync_bytes.empty());
  EXPECT_EQ(async_bytes, sync_bytes);
}

TEST(AsyncProvenanceSinkTest, TinyBufferForcesHandoffsAndStaysIdentical) {
  const PinnedStream stream = MakePinnedStream(600, 3);
  const std::string path = ::testing::TempDir() + "/prov_async_b.bin";
  const std::string sync_bytes =
      RunToFile(stream, path, /*async=*/false, /*buffer_bytes=*/256 * 1024);
  // 48-byte buffers: every record spans multiple background handoffs.
  const std::string async_bytes =
      RunToFile(stream, path, /*async=*/true, /*buffer_bytes=*/48);
  ASSERT_FALSE(sync_bytes.empty());
  EXPECT_EQ(async_bytes, sync_bytes);
}

TEST(AsyncProvenanceSinkTest, EnvDefaultIsHonoredWhenUnset) {
  // Options left unset follow the process default (GENEALOG_ASYNC_PROV_SINK;
  // on when the test environment does not override it).
  const std::string path = ::testing::TempDir() + "/prov_async_c.bin";
  Topology topo(1, ProvenanceMode::kGenealog);
  std::vector<IntrusivePtr<ValueTuple>> data;
  data.push_back(V(1, 1));
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
  auto* su = topo.Add<SuNode>("su");
  auto* sink = topo.Add<SinkNode>("sink");
  ProvenanceSinkSpec pso;
  pso.file_path = path;
  auto* prov = topo.Add<ProvenanceSinkNode>("k2", pso);
  EXPECT_EQ(prov->async(), DefaultAsyncProvSink());
  topo.Connect(source, su);
  topo.Connect(su, sink);
  topo.Connect(su, prov);
  RunToCompletion(topo);
  EXPECT_FALSE(ReadAll(path).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace genealog
