// The paper's future-work item (i), implemented as
// ProvenanceScope::kContributorsOnly: combiners declare the subset of window
// tuples that explains the output (e.g. only the maximum for max()), so
// contribution graphs shrink and non-contributing tuples are reclaimed as
// soon as the window is evicted.
#include <gtest/gtest.h>

#include "common/memory_accounting.h"
#include "genealog/su.h"
#include "genealog/traversal.h"
#include "spe/aggregate.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::V;
using testing::ValueTuple;

// A max() aggregate: with kContributorsOnly it declares only the maximal
// tuple as contributing.
AggregateCombiner<ValueTuple, ValueTuple, int64_t> MaxCombiner() {
  return [](const WindowView<ValueTuple, int64_t>& w) {
    size_t best = 0;
    for (size_t i = 1; i < w.tuples.size(); ++i) {
      if (w.tuples[i]->value > w.tuples[best]->value) best = i;
    }
    if (w.contributors != nullptr) w.contributors->push_back(best);
    return MakeTuple<ValueTuple>(0, w.tuples[best]->value);
  };
}

std::vector<TuplePtr> RunMaxQuery(ProvenanceScope scope, ProvenanceMode mode) {
  Topology topo(1, mode);
  std::vector<IntrusivePtr<ValueTuple>> data;
  // Window [0,10): values 3,9,5 -> max 9 at ts 4; window [10,20): 7,2 -> 7.
  data.push_back(V(1, 3));
  data.push_back(V(4, 9));
  data.push_back(V(6, 5));
  data.push_back(V(12, 7));
  data.push_back(V(15, 2));
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
  AggregateOptions options{10, 10};
  options.provenance_scope = scope;
  auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
      "max", options, [](const ValueTuple&) { return int64_t{0}; },
      MaxCombiner());
  std::vector<TuplePtr> outputs;
  auto* sink = topo.Add<SinkNode>(
      "sink", [&outputs](const TuplePtr& t) { outputs.push_back(t); });
  topo.Connect(source, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);
  return outputs;
}

TEST(SelectiveProvenanceTest, ContributorsOnlyLinksJustTheMax) {
  auto outputs =
      RunMaxQuery(ProvenanceScope::kContributorsOnly, ProvenanceMode::kGenealog);
  ASSERT_EQ(outputs.size(), 2u);
  auto origins = FindProvenance(outputs[0].get());
  ASSERT_EQ(origins.size(), 1u);
  EXPECT_EQ(static_cast<ValueTuple*>(origins[0])->value, 9);
  EXPECT_EQ(origins[0]->ts, 4);
  origins = FindProvenance(outputs[1].get());
  ASSERT_EQ(origins.size(), 1u);
  EXPECT_EQ(static_cast<ValueTuple*>(origins[0])->value, 7);
}

TEST(SelectiveProvenanceTest, DefaultScopeLinksWholeWindow) {
  auto outputs =
      RunMaxQuery(ProvenanceScope::kAllWindowTuples, ProvenanceMode::kGenealog);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(FindProvenance(outputs[0].get()).size(), 3u);
  EXPECT_EQ(FindProvenance(outputs[1].get()).size(), 2u);
}

TEST(SelectiveProvenanceTest, BaselineRespectsContributorSelection) {
  auto outputs = RunMaxQuery(ProvenanceScope::kContributorsOnly,
                             ProvenanceMode::kBaseline);
  ASSERT_EQ(outputs.size(), 2u);
  ASSERT_NE(outputs[0]->baseline_annotation(), nullptr);
  EXPECT_EQ(outputs[0]->baseline_annotation()->size(), 1u);
}

TEST(SelectiveProvenanceTest, QueryResultsUnchangedBySelection) {
  auto all = RunMaxQuery(ProvenanceScope::kAllWindowTuples,
                         ProvenanceMode::kGenealog);
  auto sel = RunMaxQuery(ProvenanceScope::kContributorsOnly,
                         ProvenanceMode::kGenealog);
  ASSERT_EQ(all.size(), sel.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(static_cast<ValueTuple&>(*all[i]).value,
              static_cast<ValueTuple&>(*sel[i]).value);
    EXPECT_EQ(all[i]->ts, sel[i]->ts);
  }
}

TEST(SelectiveProvenanceTest, NonContributingTuplesReclaimedWhileOutputLives) {
  const int64_t base = mem::LiveTupleCount();
  std::vector<TuplePtr> held;
  {
    Topology topo(1, ProvenanceMode::kGenealog);
    std::vector<IntrusivePtr<ValueTuple>> data;
    for (int i = 0; i < 100; ++i) data.push_back(V(i, i % 97));
    auto* source =
        topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
    AggregateOptions options{100, 100};
    options.provenance_scope = ProvenanceScope::kContributorsOnly;
    auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
        "max", options, [](const ValueTuple&) { return int64_t{0}; },
        MaxCombiner());
    auto* sink = topo.Add<SinkNode>(
        "sink", [&held](const TuplePtr& t) { held.push_back(t); });
    topo.Connect(source, agg);
    topo.Connect(agg, sink);
    RunToCompletion(topo);
  }
  // One window of 100 tuples, one output: with contributors-only provenance
  // the output pins exactly 1 source tuple; the other 99 are gone.
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(mem::LiveTupleCount() - base, 2);  // output + the max tuple
  held.clear();
  EXPECT_EQ(mem::LiveTupleCount() - base, 0);
}

TEST(SelectiveProvenanceTest, WholeWindowScopePinsEverything) {
  const int64_t base = mem::LiveTupleCount();
  std::vector<TuplePtr> held;
  {
    Topology topo(1, ProvenanceMode::kGenealog);
    std::vector<IntrusivePtr<ValueTuple>> data;
    for (int i = 0; i < 100; ++i) data.push_back(V(i, i % 97));
    auto* source =
        topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
    auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
        "max", AggregateOptions{100, 100},
        [](const ValueTuple&) { return int64_t{0}; }, MaxCombiner());
    auto* sink = topo.Add<SinkNode>(
        "sink", [&held](const TuplePtr& t) { held.push_back(t); });
    topo.Connect(source, agg);
    topo.Connect(agg, sink);
    RunToCompletion(topo);
  }
  EXPECT_EQ(mem::LiveTupleCount() - base, 101);  // output + all 100 sources
  held.clear();
  EXPECT_EQ(mem::LiveTupleCount() - base, 0);
}

TEST(SelectiveProvenanceTest, SlidingWindowsRejected) {
  Topology topo(1, ProvenanceMode::kGenealog);
  AggregateOptions options{20, 10};  // sliding
  options.provenance_scope = ProvenanceScope::kContributorsOnly;
  auto add_node = [&] {
    topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
        "max", options, [](const ValueTuple&) { return int64_t{0}; },
        MaxCombiner());
  };
  EXPECT_THROW(add_node(), std::invalid_argument);
}

TEST(SelectiveProvenanceTest, EmptySelectionFallsBackToWholeWindow) {
  // A combiner that never fills `contributors` keeps Def. 3.1 semantics.
  Topology topo(1, ProvenanceMode::kGenealog);
  std::vector<IntrusivePtr<ValueTuple>> data{V(1, 3), V(4, 9)};
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(data));
  AggregateOptions options{10, 10};
  options.provenance_scope = ProvenanceScope::kContributorsOnly;
  auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
      "sum", options, [](const ValueTuple&) { return int64_t{0}; },
      [](const WindowView<ValueTuple, int64_t>& w) {
        int64_t sum = 0;
        for (const auto& t : w.tuples) sum += t->value;
        return MakeTuple<ValueTuple>(0, sum);  // no contributor selection
      });
  std::vector<TuplePtr> outputs;
  auto* sink = topo.Add<SinkNode>(
      "sink", [&outputs](const TuplePtr& t) { outputs.push_back(t); });
  topo.Connect(source, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(FindProvenance(outputs[0].get()).size(), 2u);
}

}  // namespace
}  // namespace genealog
