// End-to-end reproduction of the paper's running example (Figures 1, 2, 4):
// the broken-down-car query over the six hand-written position reports.
//
//   ts        car speed pos          Expected sink tuple: (08:00:00, a, 4, 1)
//   08:00:01   a    0    X           Expected provenance: the four zero-speed
//   08:00:02   b   55    Y           reports of car a (08:00:01, 08:00:31,
//   08:00:31   a    0    X           08:01:01, 08:01:31).
//   08:00:32   c    0    Z
//   08:01:01   a    0    X
//   08:01:31   a    0    X
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "genealog/traversal.h"
#include "lr/linear_road.h"
#include "spe/aggregate.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"
#include "testing/harness.h"

namespace genealog {
namespace {

using lr::PositionReport;
using lr::StoppedCarStats;
using testing::Collector;

constexpr int64_t kBase = 8 * 3600;  // 08:00:00
constexpr int64_t kCarA = 'a';
constexpr int64_t kCarB = 'b';
constexpr int64_t kCarC = 'c';
constexpr int64_t kPosX = 1;
constexpr int64_t kPosY = 2;
constexpr int64_t kPosZ = 3;

std::vector<IntrusivePtr<PositionReport>> Figure1Input() {
  std::vector<IntrusivePtr<PositionReport>> reports;
  reports.push_back(MakeTuple<PositionReport>(kBase + 1, kCarA, 0.0, kPosX));
  reports.push_back(MakeTuple<PositionReport>(kBase + 2, kCarB, 55.0, kPosY));
  reports.push_back(MakeTuple<PositionReport>(kBase + 31, kCarA, 0.0, kPosX));
  reports.push_back(MakeTuple<PositionReport>(kBase + 32, kCarC, 0.0, kPosZ));
  reports.push_back(MakeTuple<PositionReport>(kBase + 61, kCarA, 0.0, kPosX));
  reports.push_back(MakeTuple<PositionReport>(kBase + 91, kCarA, 0.0, kPosX));
  return reports;
}

struct Figure1Run {
  Collector sink_tuples;
  std::vector<ProvenanceRecord> records;
};

Figure1Run RunFigure1Query(ProvenanceMode mode) {
  Figure1Run run;
  Topology topo(1, mode);
  auto* source =
      topo.Add<VectorSourceNode<PositionReport>>("source", Figure1Input());
  auto* f_zero = topo.Add<FilterNode<PositionReport>>(
      "filter.speed0",
      [](const PositionReport& t) { return t.speed == 0.0; });
  auto* agg = topo.Add<AggregateNode<PositionReport, StoppedCarStats>>(
      "agg",
      AggregateOptions{120, 30, WindowBounds::kLeftClosedRightOpen,
                       EmitAt::kWindowStart},
      [](const PositionReport& t) { return t.car_id; },
      [](const WindowView<PositionReport, int64_t>& w) {
        std::set<int64_t> positions;
        for (const auto& t : w.tuples) positions.insert(t->pos);
        return MakeTuple<StoppedCarStats>(
            0, w.key, static_cast<int64_t>(w.tuples.size()),
            static_cast<int64_t>(positions.size()), w.tuples.back()->pos);
      });
  auto* f_stopped = topo.Add<FilterNode<StoppedCarStats>>(
      "filter.stopped", [](const StoppedCarStats& t) {
        return t.count == 4 && t.dist_pos == 1;
      });
  auto* sink = run.sink_tuples.AttachSink(topo, "K");

  topo.Connect(source, f_zero);
  topo.Connect(f_zero, agg);

  if (mode == ProvenanceMode::kGenealog) {
    ProvenanceSinkSpec pso;
    pso.consumer = [&run](const ProvenanceRecord& r) {
      run.records.push_back(r);
    };
    auto* k2 = topo.Add<ProvenanceSinkNode>("K2", pso);
    auto* su = topo.Add<SuNode>("SU");
    topo.Connect(agg, f_stopped);
    topo.Connect(f_stopped, su);
    topo.Connect(su, sink);  // SO
    topo.Connect(su, k2);    // U
  } else {
    topo.Connect(agg, f_stopped);
    topo.Connect(f_stopped, sink);
  }
  RunToCompletion(topo);
  return run;
}

TEST(PaperExampleTest, SinkTupleMatchesFigure1) {
  Figure1Run run = RunFigure1Query(ProvenanceMode::kNone);
  ASSERT_EQ(run.sink_tuples.tuples().size(), 1u);
  const auto& alert = run.sink_tuples.at<StoppedCarStats>(0);
  EXPECT_EQ(run.sink_tuples.tuples()[0]->ts, kBase);  // 08:00:00
  EXPECT_EQ(alert.car_id, kCarA);
  EXPECT_EQ(alert.count, 4);
  EXPECT_EQ(alert.dist_pos, 1);
}

TEST(PaperExampleTest, AggregateOutputsMatchFigure1MiddleTable) {
  // Figure 1 also shows the aggregate's other output (08:00:00, c, 1, 1),
  // which the final filter drops.
  Topology topo(1, ProvenanceMode::kNone);
  auto* source =
      topo.Add<VectorSourceNode<PositionReport>>("source", Figure1Input());
  auto* f_zero = topo.Add<FilterNode<PositionReport>>(
      "f", [](const PositionReport& t) { return t.speed == 0.0; });
  auto* agg = topo.Add<AggregateNode<PositionReport, StoppedCarStats>>(
      "agg",
      AggregateOptions{120, 30, WindowBounds::kLeftClosedRightOpen,
                       EmitAt::kWindowStart},
      [](const PositionReport& t) { return t.car_id; },
      [](const WindowView<PositionReport, int64_t>& w) {
        std::set<int64_t> positions;
        for (const auto& t : w.tuples) positions.insert(t->pos);
        return MakeTuple<StoppedCarStats>(
            0, w.key, static_cast<int64_t>(w.tuples.size()),
            static_cast<int64_t>(positions.size()), w.tuples.back()->pos);
      });
  Collector collector;
  auto* sink = collector.AttachSink(topo);
  topo.Connect(source, f_zero);
  topo.Connect(f_zero, agg);
  topo.Connect(agg, sink);
  RunToCompletion(topo);

  // Figure 1's middle table shows the [08:00:00, 08:02:00) window rows
  // (a, 4, 1) and (c, 1, 1); sliding windows also produce partial counts
  // around them (which the final filter drops). Check the two figure rows
  // appear, in deterministic (window, car) order relative to each other.
  std::vector<std::tuple<int64_t, int64_t, int64_t, int64_t>> rows;
  for (size_t i = 0; i < collector.tuples().size(); ++i) {
    const auto& s = collector.at<StoppedCarStats>(i);
    rows.emplace_back(collector.tuples()[i]->ts, s.car_id, s.count,
                      s.dist_pos);
  }
  const auto row_a = std::make_tuple(kBase, kCarA, int64_t{4}, int64_t{1});
  const auto row_c = std::make_tuple(kBase, kCarC, int64_t{1}, int64_t{1});
  auto it_a = std::find(rows.begin(), rows.end(), row_a);
  auto it_c = std::find(rows.begin(), rows.end(), row_c);
  ASSERT_NE(it_a, rows.end());
  ASSERT_NE(it_c, rows.end());
  EXPECT_LT(it_a - rows.begin(), it_c - rows.begin());  // key a before c
}

TEST(PaperExampleTest, ProvenanceIsExactlyTheFourZeroSpeedReportsOfCarA) {
  Figure1Run run = RunFigure1Query(ProvenanceMode::kGenealog);
  ASSERT_EQ(run.records.size(), 1u);
  const ProvenanceRecord& record = run.records[0];
  EXPECT_EQ(record.derived_ts, kBase);

  std::vector<std::pair<int64_t, int64_t>> got;  // (ts, car)
  for (const TuplePtr& origin : record.origins) {
    const auto& report = static_cast<const PositionReport&>(*origin);
    EXPECT_EQ(origin->kind, TupleKind::kSource);
    EXPECT_EQ(report.pos, kPosX);
    EXPECT_EQ(report.speed, 0.0);
    got.emplace_back(origin->ts, report.car_id);
  }
  std::sort(got.begin(), got.end());
  const std::vector<std::pair<int64_t, int64_t>> expected{
      {kBase + 1, kCarA}, {kBase + 31, kCarA}, {kBase + 61, kCarA},
      {kBase + 91, kCarA}};
  EXPECT_EQ(got, expected);
}

TEST(PaperExampleTest, Figure4MetaAttributes) {
  // Drive the instrumented query and inspect the contribution graph of the
  // sink tuple directly, as drawn in Figure 4: the sink tuple is the
  // aggregate output whose U2 chain covers car a's four reports.
  Figure1Run run = RunFigure1Query(ProvenanceMode::kGenealog);
  ASSERT_EQ(run.sink_tuples.tuples().size(), 1u);
  const TuplePtr& sink_tuple = run.sink_tuples.tuples()[0];

  EXPECT_EQ(sink_tuple->kind, TupleKind::kAggregate);
  ASSERT_NE(sink_tuple->u1(), nullptr);
  ASSERT_NE(sink_tuple->u2(), nullptr);
  EXPECT_EQ(sink_tuple->u2()->ts, kBase + 1);   // earliest report
  EXPECT_EQ(sink_tuple->u1()->ts, kBase + 91);  // latest report
  // N-chain: 08:00:01 -> 08:00:31 -> 08:01:01 -> 08:01:31.
  Tuple* second = sink_tuple->u2()->next();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->ts, kBase + 31);
  Tuple* third = second->next();
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(third->ts, kBase + 61);
  EXPECT_EQ(third->next(), sink_tuple->u1());
}

TEST(PaperExampleTest, TraversalOfFigure2GraphFindsFourSources) {
  Figure1Run run = RunFigure1Query(ProvenanceMode::kGenealog);
  ASSERT_EQ(run.sink_tuples.tuples().size(), 1u);
  auto origins = FindProvenance(run.sink_tuples.tuples()[0].get());
  EXPECT_EQ(origins.size(), 4u);
}

}  // namespace
}  // namespace genealog
