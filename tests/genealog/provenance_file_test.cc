// The on-disk provenance format must be readable back: each record is the
// serialized sink tuple, a u32 origin count, then the serialized origins —
// the "stored on disk" artifact of §7, consumable by external tooling.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "core/type_registry.h"
#include "queries/query_helpers.h"

namespace genealog::queries {
namespace {

struct FileRecord {
  TuplePtr derived;
  std::vector<TuplePtr> origins;
};

std::vector<FileRecord> ReadProvenanceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  std::vector<FileRecord> records;
  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    FileRecord record;
    record.derived = DeserializeTuple(reader);
    const uint32_t n = reader.GetU32();
    for (uint32_t i = 0; i < n; ++i) {
      record.origins.push_back(DeserializeTuple(reader));
    }
    records.push_back(std::move(record));
  }
  return records;
}

TEST(ProvenanceFileTest, GlFileRoundTripsThroughDeserializer) {
  lr::LinearRoadConfig config;
  config.n_cars = 20;
  config.duration_s = 1200;
  config.stop_probability = 0.03;
  config.seed = 17;
  auto data = lr::GenerateLinearRoad(config);

  const std::string path = ::testing::TempDir() + "/gl_prov.bin";
  QueryBuildOptions options;
  options.mode = ProvenanceMode::kGenealog;
  options.provenance_file = path;
  auto run = RunQuery(BuildQ1, data, options);
  ASSERT_FALSE(run.records.empty());

  auto file_records = ReadProvenanceFile(path);
  ASSERT_EQ(file_records.size(), run.records.size());
  for (const FileRecord& record : file_records) {
    EXPECT_EQ(record.derived->type_tag(), lr::StoppedCarStats::kTypeTag);
    EXPECT_EQ(record.origins.size(), 4u);
    for (const TuplePtr& origin : record.origins) {
      EXPECT_EQ(origin->type_tag(), lr::PositionReport::kTypeTag);
      EXPECT_EQ(origin->kind, TupleKind::kSource);
      EXPECT_EQ(static_cast<const lr::PositionReport&>(*origin).speed, 0.0);
    }
  }
  std::remove(path.c_str());
}

TEST(ProvenanceFileTest, BlFileHasIdenticalFormat) {
  lr::LinearRoadConfig config;
  config.n_cars = 20;
  config.duration_s = 1200;
  config.stop_probability = 0.03;
  config.seed = 17;
  auto data = lr::GenerateLinearRoad(config);

  const std::string gl_path = ::testing::TempDir() + "/gl_prov2.bin";
  const std::string bl_path = ::testing::TempDir() + "/bl_prov2.bin";
  QueryBuildOptions gl;
  gl.mode = ProvenanceMode::kGenealog;
  gl.provenance_file = gl_path;
  RunQuery(BuildQ1, data, gl);
  QueryBuildOptions bl;
  bl.mode = ProvenanceMode::kBaseline;
  bl.provenance_file = bl_path;
  RunQuery(BuildQ1, data, bl);

  auto gl_records = ReadProvenanceFile(gl_path);
  auto bl_records = ReadProvenanceFile(bl_path);
  ASSERT_EQ(gl_records.size(), bl_records.size());
  // Same records (payload-wise), either order within equal timestamps.
  auto Canon = [](const std::vector<FileRecord>& records) {
    std::vector<std::string> out;
    for (const auto& record : records) {
      std::string s = std::to_string(record.derived->ts) + "|" +
                      record.derived->DebugPayload();
      std::vector<std::string> origins;
      for (const auto& o : record.origins) {
        origins.push_back(std::to_string(o->ts) + "/" + o->DebugPayload());
      }
      std::sort(origins.begin(), origins.end());
      for (const auto& o : origins) s += ";" + o;
      out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(Canon(gl_records), Canon(bl_records));
  std::remove(gl_path.c_str());
  std::remove(bl_path.c_str());
}

TEST(ProvenanceFileTest, DistributedRunWritesSameRecordsAsIntra) {
  lr::LinearRoadConfig config;
  config.n_cars = 15;
  config.duration_s = 900;
  config.stop_probability = 0.04;
  config.seed = 19;
  auto data = lr::GenerateLinearRoad(config);

  const std::string intra_path = ::testing::TempDir() + "/intra_prov.bin";
  const std::string dist_path = ::testing::TempDir() + "/dist_prov.bin";
  QueryBuildOptions intra;
  intra.mode = ProvenanceMode::kGenealog;
  intra.provenance_file = intra_path;
  RunQuery(BuildQ1, data, intra);
  QueryBuildOptions dist;
  dist.mode = ProvenanceMode::kGenealog;
  dist.distributed = true;
  dist.provenance_file = dist_path;
  RunQuery(BuildQ1, data, dist);

  auto intra_records = ReadProvenanceFile(intra_path);
  auto dist_records = ReadProvenanceFile(dist_path);
  EXPECT_EQ(intra_records.size(), dist_records.size());
  ASSERT_FALSE(intra_records.empty());
  std::remove(intra_path.c_str());
  std::remove(dist_path.c_str());
}

}  // namespace
}  // namespace genealog::queries
