// LineageStore snapshots: a snapshot saved under concurrent ingest must
// restore to identical Stats and identical closures; corrupt, truncated and
// byte-flipped snapshot files must be rejected with named errors (never a
// crash or a silently wrong store); saving is atomic (tmp + rename, no
// partial file at the target path). Select predicate semantics ride along
// here since the snapshot fixtures exercise the same store shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "genealog/lineage_query.h"
#include "genealog/lineage_store.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;

uint64_t MakeId(uint64_t node_uid, uint64_t seq) {
  return (node_uid << 40) | seq;
}

void IngestChain(LineageStore& store, int n_records, uint64_t* seq,
                 int64_t ts_base = 0) {
  for (int i = 0; i < n_records; ++i) {
    ProvenanceRecord rec;
    const int64_t ts = ts_base + i;
    auto d = V(ts, i);
    d->id = MakeId(9, (*seq)++);
    rec.derived = TuplePtr(d.get());
    rec.derived_id = d->id;
    rec.derived_ts = ts;
    const int n_origins = 1 + i % 3;
    for (int o = 0; o < n_origins; ++o) {
      auto src = V(ts - 1, 100 * i + o);
      src->id = MakeId(1 + static_cast<uint64_t>(o), (*seq)++);
      rec.origins.push_back(TuplePtr(src.get()));
    }
    store.Ingest(rec);
  }
}

void ExpectSameStats(const LineageStore::Stats& a,
                     const LineageStore::Stats& b) {
  EXPECT_EQ(a.records_ingested, b.records_ingested);
  EXPECT_EQ(a.records_retained, b.records_retained);
  EXPECT_EQ(a.tuples_retained, b.tuples_retained);
  EXPECT_EQ(a.edges_retained, b.edges_retained);
  EXPECT_EQ(a.records_evicted, b.records_evicted);
  EXPECT_EQ(a.epochs_evicted, b.epochs_evicted);
  EXPECT_EQ(a.bytes_retained, b.bytes_retained);
  EXPECT_EQ(a.node_uids, b.node_uids);
  EXPECT_EQ(a.min_retained_ts, b.min_retained_ts);
  EXPECT_EQ(a.max_retained_ts, b.max_retained_ts);
}

std::vector<uint64_t> Ids(const std::vector<LineageStore::Entry>& entries) {
  std::vector<uint64_t> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.id);
  return ids;
}

// Full answer surface: every retained record's backward closure plus every
// entry the default Select sees.
void ExpectSameClosures(const LineageStore& a, const LineageStore& b) {
  const auto ids_a = a.RetainedRecordIds();
  ASSERT_EQ(ids_a, b.RetainedRecordIds());
  for (const uint64_t id : ids_a) {
    EXPECT_EQ(Ids(a.Contributors(id)), Ids(b.Contributors(id))) << id;
    EXPECT_EQ(Ids(a.Expand(id, 2)), Ids(b.Expand(id, 2))) << id;
  }
  const auto all_a = a.Select({});
  const auto all_b = b.Select({});
  ASSERT_EQ(all_a.size(), all_b.size());
  for (size_t i = 0; i < all_a.size(); ++i) {
    EXPECT_EQ(all_a[i].id, all_b[i].id);
    EXPECT_EQ(all_a[i].ts, all_b[i].ts);
    EXPECT_EQ(all_a[i].tuple->DebugPayload(), all_b[i].tuple->DebugPayload());
    EXPECT_EQ(Ids(a.DerivedFrom(all_a[i].id)), Ids(b.DerivedFrom(all_b[i].id)));
  }
}

TEST(LineageSnapshotTest, SaveRestoreRoundTripsStatsAndClosures) {
  const std::string path = ::testing::TempDir() + "/snap_roundtrip.bin";
  LineageOptions lo;
  lo.epoch_records = 16;
  lo.retain_records = 200;  // forces evictions: sealed + partial epochs
  LineageStore store(lo);
  uint64_t seq = 1;
  IngestChain(store, 500, &seq);
  ASSERT_GT(store.stats().records_evicted, 0u);
  store.SaveSnapshot(path);

  LineageStore restored(lo);
  const uint64_t n = restored.LoadSnapshot(path);
  EXPECT_EQ(n, store.stats().records_retained);
  ExpectSameStats(restored.stats(), store.stats());
  ExpectSameClosures(restored, store);

  // The restored store keeps working: further ingest and eviction behave.
  IngestChain(restored, 100, &seq, /*ts_base=*/500);
  EXPECT_EQ(restored.stats().records_ingested,
            store.stats().records_ingested + 100);
  std::remove(path.c_str());
}

TEST(LineageSnapshotTest, EmptyStoreRoundTrips) {
  const std::string path = ::testing::TempDir() + "/snap_empty.bin";
  LineageStore store;
  store.SaveSnapshot(path);
  LineageStore restored;
  EXPECT_EQ(restored.LoadSnapshot(path), 0u);
  ExpectSameStats(restored.stats(), store.stats());
  std::remove(path.c_str());
}

TEST(LineageSnapshotTest, LoadRequiresEmptyStore) {
  const std::string path = ::testing::TempDir() + "/snap_nonempty.bin";
  LineageStore store;
  uint64_t seq = 1;
  IngestChain(store, 5, &seq);
  store.SaveSnapshot(path);
  EXPECT_THROW(store.LoadSnapshot(path), std::logic_error);
  std::remove(path.c_str());
}

// The acceptance scenario: a console snapshots the store *while* the
// topology is still ingesting. The snapshot is a consistent point-in-time
// image — restoring it yields a store whose Stats and closures are exactly
// those of some prefix of the ingest stream.
TEST(LineageSnapshotTest, SnapshotUnderLoadRestoresConsistentImage) {
  const std::string dir = ::testing::TempDir();
  LineageOptions lo;
  lo.epoch_records = 8;
  LineageStore store(lo);

  std::atomic<bool> done{false};
  std::vector<std::string> paths;
  std::thread snapshotter([&] {
    int i = 0;
    // The first snapshot runs unconditionally: if ingest outruns thread
    // startup, a post-ingest snapshot is still a valid consistent image.
    while (i < 20 && (i == 0 || !done.load(std::memory_order_acquire))) {
      const std::string path =
          dir + "/snap_load_" + std::to_string(i++) + ".bin";
      store.SaveSnapshot(path);
      paths.push_back(path);
    }
  });
  uint64_t seq = 1;
  IngestChain(store, 1000, &seq);
  done.store(true, std::memory_order_release);
  snapshotter.join();

  ASSERT_FALSE(paths.empty());
  for (const auto& path : paths) {
    LineageStore restored(lo);
    const uint64_t n = restored.LoadSnapshot(path);
    const auto stats = restored.stats();
    EXPECT_EQ(stats.records_retained, n);
    EXPECT_LE(stats.records_ingested, 1000u);
    // Closures of the image agree with the live store for records the live
    // store still answers identically (prefix property: the live store only
    // ever adds records; with no retention bound nothing was evicted).
    for (const uint64_t id : restored.RetainedRecordIds()) {
      EXPECT_EQ(Ids(restored.Contributors(id)), Ids(store.Contributors(id)));
    }
    std::remove(path.c_str());
  }
}

TEST(LineageSnapshotTest, SaveIsAtomicNoPartialTargetFile) {
  // Unwritable tmp location: SaveSnapshot must throw and leave no file at
  // the target path (the tmp + rename protocol never exposes partials).
  LineageStore store;
  uint64_t seq = 1;
  IngestChain(store, 5, &seq);
  const std::string path = "/nonexistent-dir/snap.bin";
  EXPECT_THROW(store.SaveSnapshot(path), std::runtime_error);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);

  // Overwrite: an existing snapshot is replaced wholesale.
  const std::string target = ::testing::TempDir() + "/snap_atomic.bin";
  store.SaveSnapshot(target);
  IngestChain(store, 5, &seq);
  store.SaveSnapshot(target);
  LineageStore restored;
  EXPECT_EQ(restored.LoadSnapshot(target), store.stats().records_retained);
  std::remove(target.c_str());
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

TEST(LineageSnapshotTest, CorruptSnapshotsAreRejected) {
  const std::string path = ::testing::TempDir() + "/snap_corrupt.bin";
  const std::string bad = ::testing::TempDir() + "/snap_corrupt_bad.bin";
  LineageStore store(LineageOptions{0, 0, 16});
  uint64_t seq = 1;
  IngestChain(store, 64, &seq);
  store.SaveSnapshot(path);
  const std::vector<uint8_t> good = ReadAll(path);

  {  // missing file
    LineageStore s;
    EXPECT_THROW(s.LoadSnapshot(::testing::TempDir() + "/no_such_snap.bin"),
                 std::runtime_error);
  }
  // Every strict prefix must be rejected: header cuts fail the header checks,
  // payload cuts fail the declared-size or checksum checks.
  for (size_t len = 0; len < good.size();
       len += 1 + len / 16) {  // dense at the front, sparser later
    WriteAll(bad, std::vector<uint8_t>(good.begin(), good.begin() + len));
    LineageStore s;
    EXPECT_THROW(s.LoadSnapshot(bad), std::runtime_error) << "prefix " << len;
  }
  {  // trailing junk after the payload
    auto padded = good;
    padded.push_back(0xAB);
    WriteAll(bad, padded);
    LineageStore s;
    EXPECT_THROW(s.LoadSnapshot(bad), std::runtime_error);
  }

  // 200 random byte flips: the checksum (or a header check) must catch every
  // flip — a flipped snapshot must never load into a silently wrong store.
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupt = good;
    corrupt[rng() % corrupt.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
    WriteAll(bad, corrupt);
    LineageStore s;
    EXPECT_THROW(s.LoadSnapshot(bad), std::runtime_error) << "trial " << trial;
  }
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

// --- Select semantics (in-process; the service test covers the wire) -------

TEST(LineageSelectTest, PredicatesNarrowTheScan) {
  LineageStore store;
  uint64_t seq = 1;
  // Records at ts 0..19, each with 1..3 origins at ts-1 (uids 1..3, derived
  // uid 9).
  IngestChain(store, 20, &seq);

  const auto all = store.Select({});
  const auto stats = store.stats();
  EXPECT_EQ(all.size(), stats.tuples_retained);
  // Sorted by (ts, id).
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(all[i - 1].ts < all[i].ts ||
                (all[i - 1].ts == all[i].ts && all[i - 1].id < all[i].id));
  }

  LineagePredicate span;
  span.min_ts = 5;
  span.max_ts = 9;
  for (const auto& e : store.Select(span)) {
    EXPECT_GE(e.ts, 5);
    EXPECT_LE(e.ts, 9);
  }
  // Inclusive bounds: a degenerate range hits exactly one event time.
  LineagePredicate point;
  point.min_ts = 7;
  point.max_ts = 7;
  const auto at7 = store.Select(point);
  ASSERT_FALSE(at7.empty());
  for (const auto& e : at7) EXPECT_EQ(e.ts, 7);

  LineagePredicate records;
  records.records_only = true;
  const auto roots = store.Select(records);
  EXPECT_EQ(roots.size(), stats.records_retained);
  for (const auto& e : roots) EXPECT_EQ(e.id >> 40, 9u);

  LineagePredicate node;
  node.has_node_uid = true;
  node.node_uid = 9;
  EXPECT_EQ(Ids(store.Select(node)), Ids(roots));
  node.node_uid = 12345;  // never interned
  EXPECT_TRUE(store.Select(node).empty());

  LineagePredicate limited;
  limited.limit = 3;
  const auto first3 = store.Select(limited);
  ASSERT_EQ(first3.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(first3[i].id, all[i].id);

  // Composition: span + records_only + limit.
  LineagePredicate combo;
  combo.min_ts = 5;
  combo.max_ts = 15;
  combo.records_only = true;
  combo.limit = 4;
  const auto combined = store.Select(combo);
  ASSERT_EQ(combined.size(), 4u);
  for (const auto& e : combined) {
    EXPECT_GE(e.ts, 5);
    EXPECT_LE(e.ts, 15);
    EXPECT_EQ(e.id >> 40, 9u);
  }
}

TEST(LineageSelectTest, QueryHandleExposesSelect) {
  auto store = std::make_shared<LineageStore>();
  uint64_t seq = 1;
  IngestChain(*store, 10, &seq);
  const LineageQuery query(store);
  LineagePredicate p;
  p.records_only = true;
  EXPECT_EQ(query.Select(p).size(), 10u);
}

}  // namespace
}  // namespace genealog
