// Traversal-path equivalence fuzz: the epoch fast path, the open-addressing
// pointer-set path, and a naive reference BFS (std::deque +
// std::unordered_set — the pre-optimization implementation, kept here as the
// executable spec of Listing 1) must produce identical result *sequences* on
// randomized contribution DAGs — shared subgraphs, join diamonds, and the
// stacked sliding-window N-chains (including single-tuple windows with
// extended chains) that broke the paper's Listing 1 as printed.
#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "genealog/traversal.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

// --- naive reference BFS (the executable spec) -------------------------------

void RefEnqueue(Tuple* t, std::deque<Tuple*>& queue,
                std::unordered_set<const Tuple*>& visited) {
  if (t == nullptr) return;
  if (visited.insert(t).second) queue.push_back(t);
}

std::vector<Tuple*> ReferenceFindProvenance(Tuple* root) {
  std::vector<Tuple*> result;
  if (root == nullptr) return result;
  std::deque<Tuple*> queue;
  std::unordered_set<const Tuple*> visited;
  visited.insert(root);
  queue.push_back(root);
  while (!queue.empty()) {
    Tuple* t = queue.front();
    queue.pop_front();
    switch (t->kind) {
      case TupleKind::kSource:
      case TupleKind::kRemote:
        result.push_back(t);
        break;
      case TupleKind::kMap:
      case TupleKind::kMultiplex:
        RefEnqueue(t->u1(), queue, visited);
        break;
      case TupleKind::kJoin:
        RefEnqueue(t->u1(), queue, visited);
        RefEnqueue(t->u2(), queue, visited);
        break;
      case TupleKind::kAggregate: {
        Tuple* temp = t->u2();
        while (temp != nullptr && temp != t->u1()) {
          RefEnqueue(temp, queue, visited);
          temp = temp->next();
        }
        RefEnqueue(t->u1(), queue, visited);
        break;
      }
    }
  }
  return result;
}

// --- random contribution-graph generator -------------------------------------

// Builds a random DAG bottom-up: a pool of source tuples, then layers of
// operator tuples drawing U1/U2 from anything below them (sharing is the
// norm, so diamonds and cross-layer shortcuts abound). Aggregates consume a
// window from an N-chained run of an existing layer — chains are built once
// per layer and *shared* between overlapping windows, reproducing stacked
// sliding windows (including U1 == U2 single-tuple windows whose chain
// continues past U1).
struct RandomGraph {
  std::vector<IntrusivePtr<ValueTuple>> all;  // keeps everything alive
  Tuple* root = nullptr;
};

RandomGraph MakeRandomGraph(SplitMix64& rng) {
  RandomGraph g;
  const int n_sources = static_cast<int>(rng.UniformInt(1, 24));
  for (int i = 0; i < n_sources; ++i) {
    auto t = V(i, i);
    t->kind = TupleKind::kSource;
    if (rng.Bernoulli(0.1)) t->kind = TupleKind::kRemote;
    g.all.push_back(std::move(t));
  }
  // Chain the sources so aggregates can window over them. Built once,
  // shared by every window drawn below.
  for (int i = 0; i + 1 < n_sources; ++i) {
    g.all[static_cast<size_t>(i)]->try_set_next(
        g.all[static_cast<size_t>(i) + 1].get());
  }
  const size_t chain_len = g.all.size();

  const int n_ops = static_cast<int>(rng.UniformInt(1, 40));
  for (int i = 0; i < n_ops; ++i) {
    const size_t below = g.all.size();
    auto pick = [&] { return g.all[static_cast<size_t>(rng.UniformInt(
                          0, static_cast<int64_t>(below) - 1))].get(); };
    auto t = V(100 + i, 100 + i);
    switch (rng.UniformInt(0, 3)) {
      case 0:
        t->kind = TupleKind::kMap;
        t->set_u1(pick());
        break;
      case 1:
        t->kind = TupleKind::kMultiplex;
        t->set_u1(pick());
        break;
      case 2:
        t->kind = TupleKind::kJoin;
        t->set_u1(pick());
        t->set_u2(pick());
        break;
      default: {
        // A window [lo, hi] over the N-chained source run; windows overlap
        // freely and lo == hi makes a single-tuple window whose N continues
        // past U1 — the Listing 1 regression shape.
        t->kind = TupleKind::kAggregate;
        const int64_t lo =
            rng.UniformInt(0, static_cast<int64_t>(chain_len) - 1);
        const int64_t hi =
            rng.UniformInt(lo, static_cast<int64_t>(chain_len) - 1);
        t->set_u2(g.all[static_cast<size_t>(lo)].get());
        t->set_u1(g.all[static_cast<size_t>(hi)].get());
        break;
      }
    }
    g.all.push_back(std::move(t));
  }
  g.root = g.all.back().get();
  return g;
}

// --- the equivalence property ------------------------------------------------

TEST(TraversalFuzzTest, AllPathsMatchReferenceBfsSequence) {
  const bool epoch_was = EpochTraversalEnabled();
  SplitMix64 rng(20260729);
  TraversalScratch scratch;  // shared across all graphs: also fuzzes reuse
  std::vector<Tuple*> got;
  constexpr int kGraphs = 10000;
  for (int i = 0; i < kGraphs; ++i) {
    RandomGraph g = MakeRandomGraph(rng);
    const std::vector<Tuple*> want = ReferenceFindProvenance(g.root);

    // Epoch fast path (single-threaded here, so kAuto always takes it).
    SetEpochTraversal(true);
    got.clear();
    FindProvenance(g.root, got, scratch);
    ASSERT_EQ(got, want) << "epoch path diverged on graph " << i;

    // Pointer-set path, forced two ways: explicitly and via the knob.
    got.clear();
    FindProvenance(g.root, got, scratch, TraversalPath::kHashSet);
    ASSERT_EQ(got, want) << "pointer-set path diverged on graph " << i;

    SetEpochTraversal(false);
    got.clear();
    FindProvenance(g.root, got, scratch);
    ASSERT_EQ(got, want) << "disabled-epoch path diverged on graph " << i;
  }
  SetEpochTraversal(epoch_was);
}

// Re-traversing the same graph must be idempotent on both paths (epoch marks
// persist on tuples between calls; a fresh ticket must not be confused by
// them).
TEST(TraversalFuzzTest, RepeatedTraversalsOfOneGraphAreIdempotent) {
  const bool epoch_was = EpochTraversalEnabled();
  SetEpochTraversal(true);
  SplitMix64 rng(7);
  RandomGraph g = MakeRandomGraph(rng);
  const std::vector<Tuple*> want = ReferenceFindProvenance(g.root);
  TraversalScratch scratch;
  std::vector<Tuple*> got;
  for (int i = 0; i < 100; ++i) {
    got.clear();
    FindProvenance(g.root, got, scratch);
    ASSERT_EQ(got, want);
    got.clear();
    FindProvenance(g.root, got, scratch, TraversalPath::kHashSet);
    ASSERT_EQ(got, want);
  }
  SetEpochTraversal(epoch_was);
}

}  // namespace
}  // namespace genealog
