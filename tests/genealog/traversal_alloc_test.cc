// Steady-state allocation regression for the traversal scratch: after one
// warm-up traversal of the workload's largest graph, repeated traversals —
// same size or smaller, either path — must perform zero heap growths. The
// old std::unordered_set scratch rehashed every node on every call after
// clear(); the generation-tagged pointer set and the recycled work ring are
// pinned here via the scratch's grow counters and the process-wide
// mem::TraversalScratchBytes gauge.
#include <gtest/gtest.h>

#include <vector>

#include "common/memory_accounting.h"
#include "genealog/traversal.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::V;
using testing::ValueTuple;

struct Graph {
  std::vector<IntrusivePtr<ValueTuple>> all;
  Tuple* root = nullptr;
};

// An aggregate window over an n-tuple N-chain: the paper's largest graphs
// (Q3's hundreds of contributing tuples) are this shape.
Graph AggregateChain(int n) {
  Graph g;
  for (int i = 0; i < n; ++i) {
    auto t = V(i, i);
    t->kind = TupleKind::kSource;
    g.all.push_back(std::move(t));
  }
  for (int i = 0; i + 1 < n; ++i) {
    g.all[static_cast<size_t>(i)]->try_set_next(
        g.all[static_cast<size_t>(i) + 1].get());
  }
  auto agg = V(0, 999);
  agg->kind = TupleKind::kAggregate;
  agg->set_u2(g.all.front().get());
  agg->set_u1(g.all.back().get());
  g.root = agg.get();
  g.all.push_back(std::move(agg));
  return g;
}

class TraversalAllocTest : public ::testing::TestWithParam<TraversalPath> {};

TEST_P(TraversalAllocTest, ZeroGrowthsAfterWarmUp) {
  Graph big = AggregateChain(512);
  Graph small = AggregateChain(24);
  TraversalScratch scratch;
  std::vector<Tuple*> result;
  result.reserve(1024);

  // Warm-up: grows the ring and (on the pointer-set path) the table.
  result.clear();
  FindProvenance(big.root, result, scratch, GetParam());
  ASSERT_EQ(result.size(), 512u);

  const uint64_t grows = scratch.grows();
  const int64_t scratch_bytes = mem::TraversalScratchBytes();
  for (int i = 0; i < 1000; ++i) {
    result.clear();
    FindProvenance(big.root, result, scratch, GetParam());
    ASSERT_EQ(result.size(), 512u);
    result.clear();
    FindProvenance(small.root, result, scratch, GetParam());
    ASSERT_EQ(result.size(), 24u);
  }
  EXPECT_EQ(scratch.grows(), grows)
      << "traversal scratch grew after warm-up";
  EXPECT_EQ(mem::TraversalScratchBytes(), scratch_bytes)
      << "process-wide scratch gauge moved after warm-up";
}

INSTANTIATE_TEST_SUITE_P(Paths, TraversalAllocTest,
                         ::testing::Values(TraversalPath::kAuto,
                                           TraversalPath::kHashSet));

// The small-buffer case: a ≤32-node graph must never touch the heap at all.
TEST(TraversalAllocTest, SmallGraphStaysInline) {
  Graph g = AggregateChain(30);
  TraversalScratch scratch;
  std::vector<Tuple*> result;
  result.reserve(64);
  const int64_t before = mem::TraversalScratchBytes();
  for (int i = 0; i < 100; ++i) {
    result.clear();
    FindProvenance(g.root, result, scratch, TraversalPath::kHashSet);
    ASSERT_EQ(result.size(), 30u);
  }
  EXPECT_EQ(scratch.grows(), 0u);
  EXPECT_EQ(mem::TraversalScratchBytes(), before);
  EXPECT_EQ(scratch.visited_capacity(),
            traversal_internal::PointerSet::kInlineSlots);
  EXPECT_EQ(scratch.ring_capacity(), traversal_internal::WorkRing::kInlineCap);
}

}  // namespace
}  // namespace genealog
