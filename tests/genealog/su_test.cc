#include "genealog/su.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "genealog/provenance_sink.h"
#include "spe/aggregate.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/topology.h"
#include "testing/harness.h"
#include "testing/test_tuples.h"

namespace genealog {
namespace {

using testing::Collector;
using testing::V;
using testing::ValueTuple;

std::vector<IntrusivePtr<ValueTuple>> Values(
    std::initializer_list<std::pair<int64_t, int64_t>> items) {
  std::vector<IntrusivePtr<ValueTuple>> out;
  for (auto [ts, v] : items) out.push_back(V(ts, v));
  return out;
}

// Runs source -> aggregate(sum, tumbling 10) -> SU -> {SO sink, U sink}.
struct SuRun {
  Collector so;
  Collector u;
  double mean_traversal_ms = 0;
  double mean_graph_size = 0;
};

SuRun RunWithSu(std::vector<IntrusivePtr<ValueTuple>> input, bool composed) {
  SuRun run;
  Topology topo(1, ProvenanceMode::kGenealog);
  auto* source =
      topo.Add<VectorSourceNode<ValueTuple>>("src", std::move(input));
  auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const ValueTuple&) { return int64_t{0}; },
      [](const WindowView<ValueTuple, int64_t>& w) {
        int64_t sum = 0;
        for (const auto& t : w.tuples) sum += t->value;
        return MakeTuple<ValueTuple>(0, sum);
      });
  auto* so_sink = run.so.AttachSink(topo, "so");
  auto* u_sink = run.u.AttachSink(topo, "u");
  topo.Connect(source, agg);
  if (composed) {
    ComposedSu su = BuildComposedSu(topo, "su");
    topo.Connect(agg, su.entry);
    topo.Connect(su.so_node, so_sink);
    topo.Connect(su.u_node, u_sink);
    RunToCompletion(topo);
  } else {
    auto* su = topo.Add<SuNode>("su");
    topo.Connect(agg, su);
    topo.Connect(su, so_sink);
    topo.Connect(su, u_sink);
    RunToCompletion(topo);
    run.mean_traversal_ms = su->mean_traversal_ms();
    run.mean_graph_size = su->mean_graph_size();
  }
  return run;
}

TEST(SuNodeTest, SoIsExactCopyOfInputStream) {
  auto run = RunWithSu(Values({{1, 1}, {2, 2}, {11, 4}}), /*composed=*/false);
  ASSERT_EQ(run.so.tuples().size(), 2u);  // two windows
  EXPECT_EQ(run.so.at<ValueTuple>(0).value, 3);
  EXPECT_EQ(run.so.at<ValueTuple>(1).value, 4);
}

TEST(SuNodeTest, UnfoldsEachDerivedTupleToItsOrigins) {
  auto run = RunWithSu(Values({{1, 1}, {2, 2}, {11, 4}}), /*composed=*/false);
  ASSERT_EQ(run.u.tuples().size(), 3u);  // 2 + 1 originating tuples

  // First window's unfolded pair: derived sum=3, origins values {1,2}.
  const auto& u0 = static_cast<const UnfoldedTuple&>(*run.u.tuples()[0]);
  const auto& u1 = static_cast<const UnfoldedTuple&>(*run.u.tuples()[1]);
  EXPECT_EQ(static_cast<const ValueTuple&>(*u0.derived).value, 3);
  EXPECT_EQ(u0.derived_id, u1.derived_id);
  std::vector<int64_t> origin_values{
      static_cast<const ValueTuple&>(*u0.origin).value,
      static_cast<const ValueTuple&>(*u1.origin).value};
  std::sort(origin_values.begin(), origin_values.end());
  EXPECT_EQ(origin_values, (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(u0.origin_kind, TupleKind::kSource);
  EXPECT_EQ(u0.origin_ts, u0.origin->ts);
  EXPECT_EQ(u0.origin_id, u0.origin->id);
}

TEST(SuNodeTest, UnfoldedStreamIsTimestampSorted) {
  auto run = RunWithSu(
      Values({{1, 1}, {2, 2}, {11, 4}, {15, 5}, {21, 6}}), false);
  const auto ts = run.u.Timestamps();
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
}

TEST(SuNodeTest, RecordsTraversalMetrics) {
  auto run = RunWithSu(Values({{1, 1}, {2, 2}, {11, 4}}), false);
  EXPECT_GT(run.mean_graph_size, 0);
  EXPECT_GE(run.mean_traversal_ms, 0);
  EXPECT_LT(run.mean_traversal_ms, 100.0);
}

TEST(SuNodeTest, SourceTupleUnfoldsToItself) {
  // SU directly on the source stream: every tuple is its own provenance.
  Topology topo(1, ProvenanceMode::kGenealog);
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src", Values({{1, 1}, {2, 2}}));
  auto* su = topo.Add<SuNode>("su");
  Collector so;
  Collector u;
  auto* so_sink = so.AttachSink(topo, "so");
  auto* u_sink = u.AttachSink(topo, "u");
  topo.Connect(source, su);
  topo.Connect(su, so_sink);
  topo.Connect(su, u_sink);
  RunToCompletion(topo);

  ASSERT_EQ(u.tuples().size(), 2u);
  const auto& u0 = static_cast<const UnfoldedTuple&>(*u.tuples()[0]);
  EXPECT_EQ(u0.derived.get(), u0.origin.get());
  EXPECT_EQ(u0.derived_id, u0.origin_id);
}

struct RecordKey {
  int64_t derived_ts;
  int64_t derived_value;
  std::vector<int64_t> origin_values;
  bool operator==(const RecordKey&) const = default;
  auto operator<=>(const RecordKey&) const = default;
};

std::vector<RecordKey> CanonicalRecords(const Collector& u_tuples) {
  std::map<uint64_t, RecordKey> by_id;
  for (const auto& t : u_tuples.tuples()) {
    const auto& u = static_cast<const UnfoldedTuple&>(*t);
    auto& r = by_id[u.derived_id];
    r.derived_ts = u.derived_ts;
    r.derived_value = static_cast<const ValueTuple&>(*u.derived).value;
    r.origin_values.push_back(
        static_cast<const ValueTuple&>(*u.origin).value);
  }
  std::vector<RecordKey> out;
  for (auto& [id, r] : by_id) {
    std::sort(r.origin_values.begin(), r.origin_values.end());
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ComposedSuTest, EquivalentToFusedSu) {
  auto fused =
      RunWithSu(Values({{1, 1}, {2, 2}, {11, 4}, {15, 5}, {21, 6}}), false);
  auto composed =
      RunWithSu(Values({{1, 1}, {2, 2}, {11, 4}, {15, 5}, {21, 6}}), true);

  // SO streams carry the same payloads in the same order.
  ASSERT_EQ(fused.so.tuples().size(), composed.so.tuples().size());
  for (size_t i = 0; i < fused.so.tuples().size(); ++i) {
    EXPECT_EQ(fused.so.at<ValueTuple>(i).value,
              composed.so.at<ValueTuple>(i).value);
    EXPECT_EQ(fused.so.tuples()[i]->ts, composed.so.tuples()[i]->ts);
  }
  // U streams carry the same provenance records.
  EXPECT_EQ(CanonicalRecords(fused.u), CanonicalRecords(composed.u));
}

TEST(ComposedSuTest, ComposedCarriesDeliveringIdsOnUnfoldedStream) {
  // The Multiplex copies preserve ids, so the unfolded stream's derived_id
  // matches the id seen by the SO consumer — required for MU joins (§6).
  auto composed = RunWithSu(Values({{1, 1}, {11, 2}}), true);
  ASSERT_EQ(composed.so.tuples().size(), 2u);
  ASSERT_EQ(composed.u.tuples().size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    const auto& u = static_cast<const UnfoldedTuple&>(*composed.u.tuples()[i]);
    EXPECT_EQ(u.derived_id, composed.so.tuples()[i]->id);
  }
}

TEST(ProvenanceSinkTest, GroupsUnfoldedStreamIntoRecords) {
  Topology topo(1, ProvenanceMode::kGenealog);
  auto* source = topo.Add<VectorSourceNode<ValueTuple>>(
      "src", Values({{1, 1}, {2, 2}, {11, 4}}));
  auto* agg = topo.Add<AggregateNode<ValueTuple, ValueTuple>>(
      "agg", AggregateOptions{10, 10},
      [](const ValueTuple&) { return int64_t{0}; },
      [](const WindowView<ValueTuple, int64_t>& w) {
        int64_t sum = 0;
        for (const auto& t : w.tuples) sum += t->value;
        return MakeTuple<ValueTuple>(0, sum);
      });
  auto* su = topo.Add<SuNode>("su");
  auto* so_sink = topo.Add<SinkNode>("so");
  std::vector<ProvenanceRecord> records;
  ProvenanceSinkSpec pso;
  pso.consumer = [&records](const ProvenanceRecord& r) {
    records.push_back(r);
  };
  auto* k2 = topo.Add<ProvenanceSinkNode>("k2", pso);
  topo.Connect(source, agg);
  topo.Connect(agg, su);
  topo.Connect(su, so_sink);
  topo.Connect(su, k2);
  RunToCompletion(topo);

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].origins.size(), 2u);
  EXPECT_EQ(records[1].origins.size(), 1u);
  EXPECT_EQ(k2->records(), 2u);
  EXPECT_EQ(k2->origin_tuples(), 3u);
  EXPECT_DOUBLE_EQ(k2->mean_origins_per_record(), 1.5);
  EXPECT_GT(k2->bytes_written(), 0u);
}

TEST(ProvenanceSinkTest, WritesRecordsToDisk) {
  const std::string path = ::testing::TempDir() + "/prov_sink_test.bin";
  {
    Topology topo(1, ProvenanceMode::kGenealog);
    auto* source =
        topo.Add<VectorSourceNode<ValueTuple>>("src", Values({{1, 1}}));
    auto* su = topo.Add<SuNode>("su");
    auto* so_sink = topo.Add<SinkNode>("so");
    ProvenanceSinkSpec pso;
    pso.file_path = path;
    auto* k2 = topo.Add<ProvenanceSinkNode>("k2", pso);
    topo.Connect(source, su);
    topo.Connect(su, so_sink);
    topo.Connect(su, k2);
    RunToCompletion(topo);
    EXPECT_GT(k2->bytes_written(), 0u);
  }
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_GT(std::ftell(f), 0);
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace genealog
