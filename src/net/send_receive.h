// Send and Receive operators (§2): transmit tuples between SPE instances.
//
// Semantically they forward tuples; in implementation they create new memory
// objects on the receiving side. The instrumented Send writes kind = REMOTE
// on the wire unless the tuple is a SOURCE tuple (§4.1), which is how each
// process can locally distinguish tuples produced at other instances.
//
// The batched data plane crosses the wire batch-at-a-time: Send serializes
// each input StreamBatch through its FrameEncoder — under the raw codec a
// single frame per batch (legacy per-item frames when the batch degenerates
// to one event, so a batch-size-1 deployment is byte-identical to the
// unbatched engine), under the compact codec one kCompactBatch frame — and
// Receive replays a decoded batch tuple-by-tuple into its outputs, where the
// endpoint re-chunks to the receiving instance's batch knob. The codec knob
// lives on the Send side only; Receive decodes whatever each frame announces.
#ifndef GENEALOG_NET_SEND_RECEIVE_H_
#define GENEALOG_NET_SEND_RECEIVE_H_

#include <stdexcept>
#include <string>
#include <utility>

#include "net/channel.h"
#include "net/frame.h"
#include "spe/node.h"

namespace genealog {

class SendNode final : public SingleInputNode {
 public:
  // `channel` must outlive the node.
  SendNode(std::string name, ByteChannel* channel, WireCodecOptions codec = {})
      : SingleInputNode(std::move(name)), channel_(channel), encoder_(codec) {}

  // Channel sends can block on the transport (TCP back-pressure), which a
  // pool task must never do; Send keeps a dedicated thread under the pool.
  bool NeedsDedicatedThread() const override { return true; }

  // Wire accounting for this node's channel: frames sent, the raw-codec
  // bytes the same input would have cost, and the bytes actually shipped.
  const WireStats& wire_stats() const { return encoder_.stats(); }

 protected:
  void OnBatch(StreamBatch& batch) override {
    for (std::vector<uint8_t>& frame : encoder_.EncodeBatch(
             std::span<const TuplePtr>(batch.tuples.data(),
                                       batch.tuples.size()),
             batch.watermark, /*remotify=*/true)) {
      channel_->SendFrame(std::move(frame));
    }
  }

  void OnTuple(TuplePtr t) override {
    channel_->SendFrame(encoder_.EncodeTuple(*t, /*remotify=*/true));
  }

  void OnWatermark(int64_t wm) override {
    channel_->SendFrame(encoder_.EncodeWatermark(wm));
  }

  void OnFlush() override {
    channel_->SendFrame(encoder_.EncodeFlush());
    channel_->CloseSend();
  }

 private:
  ByteChannel* channel_;
  FrameEncoder encoder_;
};

class ReceiveNode final : public Node {
 public:
  ReceiveNode(std::string name, ByteChannel* channel)
      : Node(std::move(name)), channel_(channel) {}

  void Run() override {
    std::vector<uint8_t> frame;
    while (channel_->RecvFrame(frame)) {
      DecodedFrame decoded;
      try {
        decoded = decoder_.Decode(frame);
      } catch (const std::exception& e) {
        // Name the channel endpoint and the claimed frame kind: a corrupt
        // frame must fail the run loudly, not read as a clean end-of-stream.
        throw std::runtime_error(
            name() + ": malformed " +
            FrameKindName(frame.empty() ? 0 : frame[0]) + " frame (" +
            std::to_string(frame.size()) + " bytes): " + e.what());
      }
      switch (decoded.kind) {
        case FrameKind::kTuple:
          CountProcessed();
          if (!EmitTupleAll(decoded.tuple)) return;
          break;
        case FrameKind::kBatch:
        case FrameKind::kCompactBatch:
          CountProcessed(decoded.tuples.size());
          for (TuplePtr& t : decoded.tuples) {
            if (!EmitTupleAll(t)) return;
          }
          if (decoded.watermark != kNoWatermark &&
              !ForwardWatermark(decoded.watermark)) {
            return;
          }
          break;
        case FrameKind::kWatermark:
          if (!ForwardWatermark(decoded.watermark)) return;
          break;
        case FrameKind::kFlush:
          EmitFlushAll();
          return;
      }
    }
    // Channel closed without an explicit flush (sender aborted): still
    // propagate end-of-stream so the rest of the instance can unwind.
    EmitFlushAll();
  }

 private:
  ByteChannel* channel_;
  FrameDecoder decoder_;
};

}  // namespace genealog

#endif  // GENEALOG_NET_SEND_RECEIVE_H_
