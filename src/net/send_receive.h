// Send and Receive operators (§2): transmit tuples between SPE instances.
//
// Semantically they forward tuples; in implementation they create new memory
// objects on the receiving side. The instrumented Send writes kind = REMOTE
// on the wire unless the tuple is a SOURCE tuple (§4.1), which is how each
// process can locally distinguish tuples produced at other instances.
//
// The batched data plane crosses the wire batch-at-a-time: Send serializes
// each input StreamBatch as a single frame (legacy per-item frames when the
// batch degenerates to one event, so a batch-size-1 deployment is
// byte-identical to the unbatched engine), and Receive replays a decoded
// batch tuple-by-tuple into its outputs, where the endpoint re-chunks to the
// receiving instance's batch knob.
#ifndef GENEALOG_NET_SEND_RECEIVE_H_
#define GENEALOG_NET_SEND_RECEIVE_H_

#include <string>
#include <utility>

#include "net/channel.h"
#include "net/frame.h"
#include "spe/node.h"

namespace genealog {

class SendNode final : public SingleInputNode {
 public:
  // `channel` must outlive the node.
  SendNode(std::string name, ByteChannel* channel)
      : SingleInputNode(std::move(name)), channel_(channel) {}

  // Channel sends can block on the transport (TCP back-pressure), which a
  // pool task must never do; Send keeps a dedicated thread under the pool.
  bool NeedsDedicatedThread() const override { return true; }

 protected:
  void OnBatch(StreamBatch& batch) override {
    if (batch.tuples.size() > 1) {
      channel_->SendFrame(EncodeBatchFrame(
          std::span<const TuplePtr>(batch.tuples.data(), batch.tuples.size()),
          batch.watermark, /*remotify=*/true));
      return;
    }
    // Degenerate batches travel as the legacy per-event frames, so a
    // batch-size-1 deployment puts the seed's exact frame sequence on the
    // wire.
    if (batch.tuples.size() == 1) {
      channel_->SendFrame(EncodeTupleFrame(*batch.tuples[0], /*remotify=*/true));
    }
    if (batch.has_watermark()) {
      channel_->SendFrame(EncodeWatermarkFrame(batch.watermark));
    }
  }

  void OnTuple(TuplePtr t) override {
    channel_->SendFrame(EncodeTupleFrame(*t, /*remotify=*/true));
  }

  void OnWatermark(int64_t wm) override {
    channel_->SendFrame(EncodeWatermarkFrame(wm));
  }

  void OnFlush() override {
    channel_->SendFrame(EncodeFlushFrame());
    channel_->CloseSend();
  }

 private:
  ByteChannel* channel_;
};

class ReceiveNode final : public Node {
 public:
  ReceiveNode(std::string name, ByteChannel* channel)
      : Node(std::move(name)), channel_(channel) {}

  void Run() override {
    std::vector<uint8_t> frame;
    while (channel_->RecvFrame(frame)) {
      DecodedFrame decoded = DecodeFrame(frame);
      switch (decoded.kind) {
        case FrameKind::kTuple:
          CountProcessed();
          if (!EmitTupleAll(decoded.tuple)) return;
          break;
        case FrameKind::kBatch:
          CountProcessed(decoded.tuples.size());
          for (TuplePtr& t : decoded.tuples) {
            if (!EmitTupleAll(t)) return;
          }
          if (decoded.watermark != kNoWatermark &&
              !ForwardWatermark(decoded.watermark)) {
            return;
          }
          break;
        case FrameKind::kWatermark:
          if (!ForwardWatermark(decoded.watermark)) return;
          break;
        case FrameKind::kFlush:
          EmitFlushAll();
          return;
      }
    }
    // Channel closed without an explicit flush (sender aborted): still
    // propagate end-of-stream so the rest of the instance can unwind.
    EmitFlushAll();
  }

 private:
  ByteChannel* channel_;
};

}  // namespace genealog

#endif  // GENEALOG_NET_SEND_RECEIVE_H_
