// Typed request/response frames for serving LineageQuery over a ByteChannel.
//
// The lineage service (genealog/lineage_service.h) speaks a small
// length-prefixed protocol on top of the same frame/channel layer the data
// plane uses (TcpChannel adds the u32 length prefix and the 64 MiB frame
// bound). Three message kinds:
//
//   hello     u8 kHello | u32 magic | u8 version | u8 generation
//   request   u8 kRequest | u8 op | varint request_id | op-specific args
//   response  u8 kResponse | u8 op | varint request_id | u8 status | u8 flags
//             | [varint raw_body_size] | body
//
// The server sends one hello per connection; magic and version reject
// cross-protocol and cross-release connects, and the generation byte (bumped
// per service incarnation, like the compact codec's per-reset generation)
// lets a reconnecting client detect that it is talking to a restarted server
// rather than the one it first attached to. Requests and responses are
// self-contained — no cross-frame dictionaries or delta state — so a
// reconnect mid-conversation can never desynchronize decoding.
//
// Encodings reuse the compact codec's varint/zigzag primitives (net/frame.h).
// Entry lists ship each tuple through SerializeTuple (self-delimiting; id,
// ts and type_tag are recovered from the tuple itself), record-id lists are
// zigzag-delta coded, and response bodies optionally run through the LZ
// block compressor exactly like compact batch frames (flags bit 0, declared
// raw size bounds-checked before allocation). Every decoder rejects unknown
// message kinds/ops/flags, oversized declared counts and trailing bytes with
// named std::runtime_error / std::out_of_range — hostile frames must never
// crash or over-allocate either side.
#ifndef GENEALOG_NET_LINEAGE_PROTOCOL_H_
#define GENEALOG_NET_LINEAGE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "genealog/lineage_store.h"

namespace genealog {

inline constexpr uint32_t kLineageProtocolMagic = 0x31514C47;  // "GLQ1"
inline constexpr uint8_t kLineageProtocolVersion = 1;

enum class LineageMsg : uint8_t {
  kHello = 1,
  kRequest = 2,
  kResponse = 3,
};

// One opcode per LineageQuery method, plus the opt-in remote shutdown the
// CLI serve/connect pair uses for deterministic teardown.
enum class LineageOp : uint8_t {
  kContributors = 1,
  kDerivedFrom = 2,
  kExpand = 3,
  kLookup = 4,
  kRetainedRecordIds = 5,
  kStats = 6,
  kSelect = 7,
  kShutdown = 8,
};

// Human-readable op name for error messages; unknown values name themselves
// "unknown".
const char* LineageOpName(uint8_t op);

struct LineageHello {
  uint8_t version = kLineageProtocolVersion;
  uint8_t generation = 0;
};

struct LineageRequest {
  LineageOp op = LineageOp::kStats;
  uint64_t request_id = 0;
  uint64_t tuple_id = 0;        // Contributors / DerivedFrom / Expand / Lookup
  int32_t hops = 0;             // Expand (negative clamps to 0 on encode)
  LineagePredicate predicate;   // Select
};

struct LineageResponse {
  LineageOp op = LineageOp::kStats;
  uint64_t request_id = 0;
  bool ok = true;
  std::string error;  // set when !ok
  // Entry-list ops (Contributors/DerivedFrom/Expand/Select; Lookup uses 0 or
  // 1 entries for miss/hit).
  std::vector<LineageStore::Entry> entries;
  std::vector<uint64_t> ids;   // RetainedRecordIds
  LineageStore::Stats stats;   // Stats
};

std::vector<uint8_t> EncodeLineageHello(const LineageHello& hello);
LineageHello DecodeLineageHello(const std::vector<uint8_t>& frame);

std::vector<uint8_t> EncodeLineageRequest(const LineageRequest& req);
LineageRequest DecodeLineageRequest(const std::vector<uint8_t>& frame);

// With `block_compress`, the encoded body additionally runs through
// LzBlockCompress and ships compressed when that wins (mirroring compact
// batch frames); the decoder handles either form regardless.
std::vector<uint8_t> EncodeLineageResponse(const LineageResponse& resp,
                                           bool block_compress);
LineageResponse DecodeLineageResponse(const std::vector<uint8_t>& frame);

}  // namespace genealog

#endif  // GENEALOG_NET_LINEAGE_PROTOCOL_H_
