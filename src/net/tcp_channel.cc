#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "net/channel.h"

namespace genealog {
namespace {

bool WriteAll(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool ReadAll(int fd, uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, data, n, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;  // 0 = orderly shutdown
    }
    data += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

TcpChannel::TcpChannel(int fd) : fd_(fd) {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

bool TcpChannel::SendFrame(std::vector<uint8_t> frame) {
  if (frame.empty()) return false;
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  uint32_t len = static_cast<uint32_t>(frame.size());
  uint8_t header[4];
  std::memcpy(header, &len, 4);
  return WriteAll(fd_, header, 4) && WriteAll(fd_, frame.data(), frame.size());
}

bool TcpChannel::RecvFrame(std::vector<uint8_t>& frame) {
  uint8_t header[4];
  if (!ReadAll(fd_, header, 4)) return false;
  uint32_t len = 0;
  std::memcpy(&len, header, 4);
  if (len == 0 || len > (64u << 20)) {  // sanity bound: 64 MiB
    // A malformed length prefix means the stream is corrupt, not closed:
    // fail loudly so the Receive node reports it instead of reading the
    // truncation as a clean end-of-stream.
    throw std::runtime_error("TcpChannel: malformed frame length " +
                             std::to_string(len));
  }
  frame.resize(len);
  return ReadAll(fd_, frame.data(), len);
}

void TcpChannel::CloseSend() { ::shutdown(fd_, SHUT_WR); }

void TcpChannel::Abort() { ::shutdown(fd_, SHUT_RDWR); }

uint64_t TcpChannel::bytes_sent() const {
  return bytes_sent_.load(std::memory_order_relaxed);
}

uint64_t TcpChannel::frames_sent() const {
  return frames_sent_.load(std::memory_order_relaxed);
}

std::pair<std::unique_ptr<TcpChannel>, std::unique_ptr<TcpChannel>>
MakeTcpChannelPair() {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener, 1) != 0) {
    ::close(listener);
    throw std::runtime_error("bind/listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len) !=
      0) {
    ::close(listener);
    throw std::runtime_error("getsockname failed");
  }

  const int sender = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sender < 0) {
    ::close(listener);
    throw std::runtime_error("socket() failed");
  }
  if (::connect(sender, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listener);
    ::close(sender);
    throw std::runtime_error("connect failed");
  }
  const int receiver = ::accept(listener, nullptr, nullptr);
  ::close(listener);
  if (receiver < 0) {
    ::close(sender);
    throw std::runtime_error("accept failed");
  }
  return {std::make_unique<TcpChannel>(sender),
          std::make_unique<TcpChannel>(receiver)};
}

}  // namespace genealog
