// Wire frames for Send/Receive channels.
//
// A frame is one self-contained message: a serialized tuple, a chunk of
// tuples plus an optional trailing watermark (the batched data plane's
// unit), a watermark, or a flush (end-of-stream). Channels transport frames
// as opaque byte blobs; the TCP transport adds a u32 length prefix per
// frame.
#ifndef GENEALOG_NET_FRAME_H_
#define GENEALOG_NET_FRAME_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/type_registry.h"

namespace genealog {

enum class FrameKind : uint8_t {
  kTuple = 1,
  kWatermark = 2,
  kFlush = 3,
  // A StreamBatch: u32 tuple count, the tuples, and an i64 high-watermark
  // (INT64_MIN when the batch carries none). One frame per batch keeps the
  // per-message framing and syscall costs amortized across the chunk.
  kBatch = 4,
};

// Serializes a tuple frame. With `remotify` set (the instrumented Send, §4.1)
// the wire kind becomes REMOTE unless the tuple is a SOURCE tuple; the local
// object is never modified.
std::vector<uint8_t> EncodeTupleFrame(const Tuple& t, bool remotify);
std::vector<uint8_t> EncodeWatermarkFrame(int64_t wm);
std::vector<uint8_t> EncodeFlushFrame();
// Serializes `tuples` plus the batch watermark (pass kNoWatermark for none)
// as one frame. Remotification is applied per tuple as in EncodeTupleFrame.
std::vector<uint8_t> EncodeBatchFrame(std::span<const TuplePtr> tuples,
                                      int64_t watermark, bool remotify);

struct DecodedFrame {
  FrameKind kind = FrameKind::kFlush;
  TuplePtr tuple;                // kTuple
  std::vector<TuplePtr> tuples;  // kBatch
  int64_t watermark = 0;         // kWatermark / kBatch (kNoWatermark = none)
};

// Throws std::runtime_error / std::out_of_range on malformed input.
DecodedFrame DecodeFrame(const std::vector<uint8_t>& frame);

}  // namespace genealog

#endif  // GENEALOG_NET_FRAME_H_
