// Wire frames for Send/Receive channels.
//
// A frame is one self-contained message: a serialized tuple, a chunk of
// tuples plus an optional trailing watermark (the batched data plane's
// unit), a watermark, or a flush (end-of-stream). Channels transport frames
// as opaque byte blobs; the TCP transport adds a u32 length prefix per
// frame.
//
// Two codecs put batches on the wire (common/engine_options.h, WireCodec):
//
//  * raw — the seed format: one fixed-width serialized tuple after another
//    (EncodeBatchFrame below). Stateless; DecodeFrame handles it.
//
//  * compact (FrameKind::kCompactBatch) — the edge-to-cloud format. Within a
//    frame, tuple ids split into node uid (high 24 bits) and sequence (low
//    40 bits); uids and (type_tag, kind, has-annotation) descriptors are
//    dictionary-coded per channel, sequences are delta-encoded against the
//    per-uid previous value, and timestamps/stimuli against a running
//    previous, all as zigzag varints. Payload bytes are the registered
//    SerializePayload encoding, unchanged. Optionally the whole encoded body
//    runs through the dependency-free LZ block compressor and ships
//    compressed when that wins.
//
//    Dictionaries are sender-driven and build incrementally: every entry is
//    defined inline ((index << 1) | 1 followed by the definition) the first
//    time it is used, and referenced ((index << 1) | 0) afterwards, so the
//    receiver needs no out-of-band negotiation. Each compact frame leads
//    with a generation byte; FrameEncoder::Reset() bumps it (reconnect, new
//    stream incarnation), and a decoder seeing an unexpected generation
//    drops its dictionaries and delta state before decoding — reset-safe
//    because the first post-reset frame redefines every entry it uses.
//
// The compact path is stateful on both sides, hence the FrameEncoder /
// FrameDecoder classes; the stateless free functions below remain the raw
// codec and the compatibility surface for existing callers.
#ifndef GENEALOG_NET_FRAME_H_
#define GENEALOG_NET_FRAME_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/engine_options.h"
#include "common/serialize.h"
#include "core/type_registry.h"

namespace genealog {

// --- varint primitives ------------------------------------------------------

// The LEB128-style varint/zigzag encoders the compact codec is built on,
// shared with the lineage request/response protocol (net/lineage_protocol.h).
// GetVarint throws std::runtime_error on encodings longer than 10 bytes or
// overflowing 64 bits; truncation surfaces as ByteReader's std::out_of_range.
void PutVarint(ByteWriter& w, uint64_t v);
size_t VarintSize(uint64_t v);
uint64_t GetVarint(ByteReader& r);
void PutZigzag(ByteWriter& w, int64_t v);
int64_t GetZigzag(ByteReader& r);

enum class FrameKind : uint8_t {
  kTuple = 1,
  kWatermark = 2,
  kFlush = 3,
  // A StreamBatch: u32 tuple count, the tuples, and an i64 high-watermark
  // (INT64_MIN when the batch carries none). One frame per batch keeps the
  // per-message framing and syscall costs amortized across the chunk.
  kBatch = 4,
  // A StreamBatch under the compact codec:
  //   u8 kind | u8 generation | u8 flags | [varint raw_body_size] | body
  // flags bit 0 = body is LZ-block-compressed (raw_body_size present),
  // flags bit 1 = the batch carries a watermark. The body is the dictionary/
  // delta encoding described in the header comment.
  kCompactBatch = 5,
};

// Human-readable frame kind, for error messages ("corrupt batch frame").
// Unknown values name themselves "unknown".
const char* FrameKindName(uint8_t kind);

// --- raw codec (stateless) --------------------------------------------------

// Serializes a tuple frame. With `remotify` set (the instrumented Send, §4.1)
// the wire kind becomes REMOTE unless the tuple is a SOURCE tuple; the local
// object is never modified.
std::vector<uint8_t> EncodeTupleFrame(const Tuple& t, bool remotify);
std::vector<uint8_t> EncodeWatermarkFrame(int64_t wm);
std::vector<uint8_t> EncodeFlushFrame();
// Serializes `tuples` plus the batch watermark (pass kNoWatermark for none)
// as one frame. Remotification is applied per tuple as in EncodeTupleFrame.
std::vector<uint8_t> EncodeBatchFrame(std::span<const TuplePtr> tuples,
                                      int64_t watermark, bool remotify);

struct DecodedFrame {
  FrameKind kind = FrameKind::kFlush;
  TuplePtr tuple;                // kTuple
  std::vector<TuplePtr> tuples;  // kBatch / kCompactBatch
  int64_t watermark = 0;         // kWatermark / batches (kNoWatermark = none)
};

// Decodes the stateless frame kinds. Throws std::runtime_error /
// std::out_of_range on malformed input, and on a kCompactBatch frame, which
// needs the per-channel state a FrameDecoder carries.
DecodedFrame DecodeFrame(const std::vector<uint8_t>& frame);

// --- LZ block compressor ----------------------------------------------------

// Dependency-free byte-oriented LZ with an LZ4-flavored block layout: per
// sequence a token byte (literal-length nibble, match-length nibble, 15 =
// continue in 255-steps), the literals, a little-endian u16 match offset and
// any match-length continuation bytes; the final sequence is literals only.
// Minimum match 4, window 64 KiB. Decompression needs the exact raw size and
// bounds-checks every copy, throwing std::runtime_error on malformed input.
std::vector<uint8_t> LzBlockCompress(std::span<const uint8_t> in);
std::vector<uint8_t> LzBlockDecompress(std::span<const uint8_t> in,
                                       size_t raw_size);

// --- compact codec (stateful) -----------------------------------------------

// The Send-side knobs, lowered from EngineOptions by the deployment
// assemblers. Sender-driven: the receiver decodes whatever codec each frame
// announces, so no receive-side configuration exists.
struct WireCodecOptions {
  WireCodec codec = WireCodec::kRaw;
  // Under kCompact, additionally LZ-compress each encoded body and keep the
  // compressed form when smaller. Ignored under kRaw.
  bool block_compress = true;
};

// The wire slice of the unified knob struct, for the deployment assemblers.
inline WireCodecOptions WireCodecFrom(const EngineOptions& o) {
  return {o.wire_codec, o.wire_block_compress};
}

// Per-channel wire accounting. raw_bytes is what the raw codec would have
// put on the wire for the same input (for kRaw the two columns are equal),
// so ratio() is the bytes-on-wire win of the configured codec.
struct WireStats {
  uint64_t frames = 0;
  uint64_t raw_bytes = 0;
  uint64_t encoded_bytes = 0;

  double ratio() const {
    return encoded_bytes == 0
               ? 1.0
               : static_cast<double>(raw_bytes) /
                     static_cast<double>(encoded_bytes);
  }
  WireStats& operator+=(const WireStats& o) {
    frames += o.frames;
    raw_bytes += o.raw_bytes;
    encoded_bytes += o.encoded_bytes;
    return *this;
  }
};

// One per Send node (channels are single-writer, like their operator).
// EncodeBatch returns the frame sequence the raw Send path would have
// produced for the same StreamBatch under kRaw (batch frame, or per-event
// frames for a degenerate batch), and a single kCompactBatch frame under
// kCompact; watermark and flush frames are raw under either codec.
class FrameEncoder {
 public:
  explicit FrameEncoder(WireCodecOptions opts = {}) : opts_(opts) {}

  std::vector<std::vector<uint8_t>> EncodeBatch(
      std::span<const TuplePtr> tuples, int64_t watermark, bool remotify);
  std::vector<uint8_t> EncodeTuple(const Tuple& t, bool remotify);
  std::vector<uint8_t> EncodeWatermark(int64_t wm);
  std::vector<uint8_t> EncodeFlush();

  // Drops the dictionaries and delta state and bumps the generation byte, so
  // the stream can resume against a decoder in any state (reconnect).
  void Reset();

  const WireCodecOptions& options() const { return opts_; }
  const WireStats& stats() const { return stats_; }

 private:
  std::vector<uint8_t> EncodeCompactBatch(std::span<const Tuple* const> tuples,
                                          int64_t watermark, bool remotify);

  WireCodecOptions opts_;
  WireStats stats_;

  // Compact-codec state. Descriptor keys pack (type_tag << 16 | wire kind
  // << 8 | has-annotation); uid keys are the high 24 id bits.
  uint8_t generation_ = 0;
  std::unordered_map<uint32_t, uint32_t> desc_index_;
  std::unordered_map<uint32_t, uint32_t> uid_index_;
  std::vector<uint64_t> uid_last_seq_;
  int64_t last_ts_ = 0;
  int64_t last_stimulus_ = 0;
};

// The receive-side mirror: decodes every frame kind, carrying the compact
// dictionaries across frames and resetting them whenever the generation byte
// moves. Throws std::runtime_error / std::out_of_range on malformed input
// (truncated bodies, dangling dictionary references, unregistered tags,
// oversized declared sizes).
class FrameDecoder {
 public:
  DecodedFrame Decode(const std::vector<uint8_t>& frame);

 private:
  DecodedFrame DecodeCompactBatch(const std::vector<uint8_t>& frame);

  struct Descriptor {
    uint16_t tag = 0;
    uint8_t kind = 0;
    bool has_annotation = false;
    PayloadDeserializer fn = nullptr;
  };

  bool have_generation_ = false;
  uint8_t generation_ = 0;
  std::vector<Descriptor> descs_;
  std::vector<uint64_t> uids_;
  std::vector<uint64_t> uid_last_seq_;
  int64_t last_ts_ = 0;
  int64_t last_stimulus_ = 0;
};

}  // namespace genealog

#endif  // GENEALOG_NET_FRAME_H_
