#include "net/channel.h"

namespace genealog {

// A zero-length frame is the end-of-stream sentinel: real frames always carry
// at least the FrameKind byte.

InMemoryChannel::InMemoryChannel(size_t capacity_frames)
    : queue_(capacity_frames) {}

bool InMemoryChannel::SendFrame(std::vector<uint8_t> frame) {
  if (frame.empty()) return false;
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  return queue_.Push(std::move(frame));
}

bool InMemoryChannel::RecvFrame(std::vector<uint8_t>& frame) {
  std::optional<std::vector<uint8_t>> item = queue_.Pop();
  if (!item.has_value() || item->empty()) return false;
  frame = std::move(*item);
  return true;
}

void InMemoryChannel::CloseSend() { queue_.Push({}); }

void InMemoryChannel::Abort() { queue_.Abort(); }

uint64_t InMemoryChannel::bytes_sent() const {
  return bytes_sent_.load(std::memory_order_relaxed);
}

}  // namespace genealog
