#include "net/channel.h"

namespace genealog {

// A zero-length frame is the end-of-stream sentinel: real frames always carry
// at least the FrameKind byte.

InMemoryChannel::InMemoryChannel(size_t capacity_frames)
    : queue_(capacity_frames) {}

bool InMemoryChannel::SendFrame(std::vector<uint8_t> frame) {
  if (frame.empty()) return false;
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  return queue_.Push(std::move(frame));
}

bool InMemoryChannel::RecvFrame(std::vector<uint8_t>& frame) {
  std::optional<std::vector<uint8_t>> item = queue_.Pop();
  if (!item.has_value() || item->empty()) return false;
  frame = std::move(*item);
  return true;
}

void InMemoryChannel::CloseSend() { queue_.Push({}); }

void InMemoryChannel::Abort() { queue_.Abort(); }

uint64_t InMemoryChannel::bytes_sent() const {
  return bytes_sent_.load(std::memory_order_relaxed);
}

uint64_t InMemoryChannel::frames_sent() const {
  return frames_sent_.load(std::memory_order_relaxed);
}

ChannelEnds AddChannelTo(std::vector<std::unique_ptr<ByteChannel>>& channels,
                         bool use_tcp) {
  if (use_tcp) {
    auto [sender, receiver] = MakeTcpChannelPair();
    ByteChannel* s = sender.get();
    ByteChannel* r = receiver.get();
    channels.push_back(std::move(sender));
    channels.push_back(std::move(receiver));
    return {s, r};
  }
  auto channel = std::make_unique<InMemoryChannel>();
  ByteChannel* c = channel.get();
  channels.push_back(std::move(channel));
  return {c, c};
}

void RunTopologies(const std::vector<std::unique_ptr<Topology>>& topologies,
                   const std::vector<std::unique_ptr<ByteChannel>>& channels) {
  if (!topologies.empty()) {
    for (const auto& channel : channels) {
      topologies.front()->RegisterAbortable(channel.get());
    }
  }
  std::vector<Topology*> raw;
  raw.reserve(topologies.size());
  for (const auto& t : topologies) raw.push_back(t.get());
  Runner runner(std::move(raw));
  runner.Start();
  runner.Join();
}

}  // namespace genealog
