// Byte channels between SPE instances.
//
// A channel is unidirectional and fully serializing: tuples are flattened to
// frames on the sending side and rebuilt as fresh objects on the receiving
// side, so pointers can never leak across the instance boundary — the
// property GeneaLog's inter-process design (§6) builds on.
//
// Two transports:
//  * InMemoryChannel — a bounded frame queue; same serialization work as the
//    network path without the kernel, for tests and deterministic benches;
//  * TcpChannel — real sockets over loopback (length-prefixed frames),
//    standing in for the paper's 3-node Ethernet testbed.
#ifndef GENEALOG_NET_CHANNEL_H_
#define GENEALOG_NET_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "spe/topology.h"

namespace genealog {

class ByteChannel : public Abortable {
 public:
  ~ByteChannel() override = default;

  // Blocking; returns false if the channel is closed or broken.
  virtual bool SendFrame(std::vector<uint8_t> frame) = 0;
  // Blocking; returns false on end-of-stream (sender closed) or error.
  virtual bool RecvFrame(std::vector<uint8_t>& frame) = 0;
  // Signals end-of-stream to the receiver; further sends fail.
  virtual void CloseSend() = 0;
  // Tears the channel down from either side (error paths).
  virtual void Abort() = 0;

  // Total payload bytes accepted by SendFrame, for network-volume metrics.
  virtual uint64_t bytes_sent() const = 0;
  // Frames accepted by SendFrame — together with bytes_sent this gives the
  // mean frame size, the denominator the wire-codec metrics report against.
  virtual uint64_t frames_sent() const = 0;
};

class InMemoryChannel final : public ByteChannel {
 public:
  explicit InMemoryChannel(size_t capacity_frames = 4096);

  bool SendFrame(std::vector<uint8_t> frame) override;
  bool RecvFrame(std::vector<uint8_t>& frame) override;
  void CloseSend() override;
  void Abort() override;
  uint64_t bytes_sent() const override;
  uint64_t frames_sent() const override;

 private:
  BoundedQueue<std::vector<uint8_t>> queue_;
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> frames_sent_{0};
};

class TcpChannel final : public ByteChannel {
 public:
  // Takes ownership of a connected socket.
  explicit TcpChannel(int fd);
  ~TcpChannel() override;

  bool SendFrame(std::vector<uint8_t> frame) override;
  // Throws std::runtime_error on a malformed length prefix (zero or above
  // the 64 MiB frame bound) — a corrupt stream must not read as a clean
  // end-of-stream.
  bool RecvFrame(std::vector<uint8_t>& frame) override;
  void CloseSend() override;
  void Abort() override;
  uint64_t bytes_sent() const override;
  uint64_t frames_sent() const override;

 private:
  int fd_;
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> frames_sent_{0};
};

// Creates a connected (sender, receiver) TCP pair over loopback.
std::pair<std::unique_ptr<TcpChannel>, std::unique_ptr<TcpChannel>>
MakeTcpChannelPair();

// The two ends of one logical inter-instance stream. For in-memory channels
// both handles are the same object; a TCP loopback pair has distinct
// sender/receiver objects.
struct ChannelEnds {
  ByteChannel* send;
  ByteChannel* recv;
};

// Allocates a channel into `channels` (owner) and returns its ends — the one
// helper behind both the hand-wired deployment assembly (queries::AddChannel)
// and the dataflow lowering (genealog/instrument.cc).
ChannelEnds AddChannelTo(std::vector<std::unique_ptr<ByteChannel>>& channels,
                         bool use_tcp);

// Runs `topologies` to completion after registering every channel as an
// abortable resource, so a failing node tears down socket/frame-queue waits
// along with the stream queues; rethrows the first node failure. The shared
// body of queries::BuiltQuery::Run and BuiltDataflow::Run.
void RunTopologies(const std::vector<std::unique_ptr<Topology>>& topologies,
                   const std::vector<std::unique_ptr<ByteChannel>>& channels);

}  // namespace genealog

#endif  // GENEALOG_NET_CHANNEL_H_
