#include "net/lineage_protocol.h"

#include <stdexcept>
#include <utility>

#include "net/frame.h"

namespace genealog {
namespace {

// Same hostile-size guard the frame codec and the TCP transport apply before
// allocating for a declared size.
constexpr uint64_t kMaxDeclaredBytes = 64ull << 20;

// Response header flags.
constexpr uint8_t kFlagCompressed = 0x1;

constexpr uint8_t kStatusOk = 0;
constexpr uint8_t kStatusError = 1;

bool IsEntryListOp(LineageOp op) {
  switch (op) {
    case LineageOp::kContributors:
    case LineageOp::kDerivedFrom:
    case LineageOp::kExpand:
    case LineageOp::kLookup:
    case LineageOp::kSelect:
      return true;
    default:
      return false;
  }
}

LineageOp CheckedOp(uint8_t op) {
  if (op < static_cast<uint8_t>(LineageOp::kContributors) ||
      op > static_cast<uint8_t>(LineageOp::kShutdown)) {
    throw std::runtime_error("lineage protocol: unknown op " +
                             std::to_string(op));
  }
  return static_cast<LineageOp>(op);
}

void CheckMsg(ByteReader& r, LineageMsg expected, const char* what) {
  const uint8_t msg = r.GetU8();
  if (msg != static_cast<uint8_t>(expected)) {
    throw std::runtime_error(std::string("lineage protocol: expected ") +
                             what + " frame, got message kind " +
                             std::to_string(msg));
  }
}

void CheckAtEnd(const ByteReader& r, const char* what) {
  if (!r.AtEnd()) {
    throw std::runtime_error(std::string("lineage protocol: trailing bytes "
                                         "after ") +
                             what);
  }
}

void PutEntries(ByteWriter& w,
                const std::vector<LineageStore::Entry>& entries) {
  PutVarint(w, entries.size());
  for (const LineageStore::Entry& e : entries) {
    SerializeTuple(*e.tuple, w);
  }
}

std::vector<LineageStore::Entry> GetEntries(ByteReader& r) {
  const uint64_t count = GetVarint(r);
  if (count > r.remaining()) {
    // Every serialized tuple costs at least one byte, so a count above the
    // remaining byte budget is hostile — reject before reserving.
    throw std::runtime_error("lineage protocol: entry count " +
                             std::to_string(count) + " exceeds frame");
  }
  std::vector<LineageStore::Entry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LineageStore::Entry e;
    e.tuple = DeserializeTuple(r);
    e.id = e.tuple->id;
    e.ts = e.tuple->ts;
    e.type_tag = e.tuple->type_tag();
    entries.push_back(std::move(e));
  }
  return entries;
}

void PutStats(ByteWriter& w, const LineageStore::Stats& s) {
  PutVarint(w, s.records_ingested);
  PutVarint(w, s.records_retained);
  PutVarint(w, s.tuples_retained);
  PutVarint(w, s.edges_retained);
  PutVarint(w, s.records_evicted);
  PutVarint(w, s.epochs_evicted);
  PutVarint(w, s.bytes_retained);
  PutVarint(w, s.node_uids);
  PutZigzag(w, s.min_retained_ts);
  PutZigzag(w, s.max_retained_ts);
}

LineageStore::Stats GetStats(ByteReader& r) {
  LineageStore::Stats s;
  s.records_ingested = GetVarint(r);
  s.records_retained = GetVarint(r);
  s.tuples_retained = GetVarint(r);
  s.edges_retained = GetVarint(r);
  s.records_evicted = GetVarint(r);
  s.epochs_evicted = GetVarint(r);
  s.bytes_retained = GetVarint(r);
  s.node_uids = GetVarint(r);
  s.min_retained_ts = GetZigzag(r);
  s.max_retained_ts = GetZigzag(r);
  return s;
}

}  // namespace

const char* LineageOpName(uint8_t op) {
  switch (static_cast<LineageOp>(op)) {
    case LineageOp::kContributors:
      return "contributors";
    case LineageOp::kDerivedFrom:
      return "derived-from";
    case LineageOp::kExpand:
      return "expand";
    case LineageOp::kLookup:
      return "lookup";
    case LineageOp::kRetainedRecordIds:
      return "retained-record-ids";
    case LineageOp::kStats:
      return "stats";
    case LineageOp::kSelect:
      return "select";
    case LineageOp::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeLineageHello(const LineageHello& hello) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(LineageMsg::kHello));
  w.PutU32(kLineageProtocolMagic);
  w.PutU8(hello.version);
  w.PutU8(hello.generation);
  return w.TakeBytes();
}

LineageHello DecodeLineageHello(const std::vector<uint8_t>& frame) {
  ByteReader r(frame);
  CheckMsg(r, LineageMsg::kHello, "hello");
  const uint32_t magic = r.GetU32();
  if (magic != kLineageProtocolMagic) {
    throw std::runtime_error(
        "lineage protocol: bad hello magic (not a lineage service?)");
  }
  LineageHello hello;
  hello.version = r.GetU8();
  if (hello.version != kLineageProtocolVersion) {
    throw std::runtime_error("lineage protocol: unsupported version " +
                             std::to_string(hello.version));
  }
  hello.generation = r.GetU8();
  CheckAtEnd(r, "hello");
  return hello;
}

std::vector<uint8_t> EncodeLineageRequest(const LineageRequest& req) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(LineageMsg::kRequest));
  w.PutU8(static_cast<uint8_t>(req.op));
  PutVarint(w, req.request_id);
  switch (req.op) {
    case LineageOp::kContributors:
    case LineageOp::kDerivedFrom:
    case LineageOp::kLookup:
      PutVarint(w, req.tuple_id);
      break;
    case LineageOp::kExpand:
      PutVarint(w, req.tuple_id);
      PutVarint(w, req.hops < 0 ? 0 : static_cast<uint64_t>(req.hops));
      break;
    case LineageOp::kSelect:
      PutZigzag(w, req.predicate.min_ts);
      PutZigzag(w, req.predicate.max_ts);
      w.PutU8(req.predicate.has_node_uid ? 1 : 0);
      if (req.predicate.has_node_uid) PutVarint(w, req.predicate.node_uid);
      w.PutU8(req.predicate.records_only ? 1 : 0);
      PutVarint(w, req.predicate.limit);
      break;
    case LineageOp::kRetainedRecordIds:
    case LineageOp::kStats:
    case LineageOp::kShutdown:
      break;
  }
  return w.TakeBytes();
}

LineageRequest DecodeLineageRequest(const std::vector<uint8_t>& frame) {
  ByteReader r(frame);
  CheckMsg(r, LineageMsg::kRequest, "request");
  LineageRequest req;
  req.op = CheckedOp(r.GetU8());
  req.request_id = GetVarint(r);
  switch (req.op) {
    case LineageOp::kContributors:
    case LineageOp::kDerivedFrom:
    case LineageOp::kLookup:
      req.tuple_id = GetVarint(r);
      break;
    case LineageOp::kExpand: {
      req.tuple_id = GetVarint(r);
      const uint64_t hops = GetVarint(r);
      if (hops > INT32_MAX) {
        throw std::runtime_error("lineage protocol: expand hop count " +
                                 std::to_string(hops) + " out of range");
      }
      req.hops = static_cast<int32_t>(hops);
      break;
    }
    case LineageOp::kSelect:
      req.predicate.min_ts = GetZigzag(r);
      req.predicate.max_ts = GetZigzag(r);
      req.predicate.has_node_uid = r.GetU8() != 0;
      if (req.predicate.has_node_uid) req.predicate.node_uid = GetVarint(r);
      req.predicate.records_only = r.GetU8() != 0;
      req.predicate.limit = GetVarint(r);
      break;
    case LineageOp::kRetainedRecordIds:
    case LineageOp::kStats:
    case LineageOp::kShutdown:
      break;
  }
  CheckAtEnd(r, "request");
  return req;
}

std::vector<uint8_t> EncodeLineageResponse(const LineageResponse& resp,
                                           bool block_compress) {
  ByteWriter body;
  if (!resp.ok) {
    body.PutString(resp.error);
  } else if (IsEntryListOp(resp.op)) {
    PutEntries(body, resp.entries);
  } else if (resp.op == LineageOp::kRetainedRecordIds) {
    PutVarint(body, resp.ids.size());
    uint64_t prev = 0;
    for (const uint64_t id : resp.ids) {
      PutZigzag(body, static_cast<int64_t>(id - prev));
      prev = id;
    }
  } else if (resp.op == LineageOp::kStats) {
    PutStats(body, resp.stats);
  }
  // kShutdown: empty body.

  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(LineageMsg::kResponse));
  w.PutU8(static_cast<uint8_t>(resp.op));
  PutVarint(w, resp.request_id);
  w.PutU8(resp.ok ? kStatusOk : kStatusError);
  if (block_compress && body.size() > 64) {
    const std::vector<uint8_t> compressed =
        LzBlockCompress({body.bytes().data(), body.size()});
    if (compressed.size() + VarintSize(body.size()) < body.size()) {
      w.PutU8(kFlagCompressed);
      PutVarint(w, body.size());
      w.PutBytes(compressed.data(), compressed.size());
      return w.TakeBytes();
    }
  }
  w.PutU8(0);
  w.PutBytes(body.bytes().data(), body.size());
  return w.TakeBytes();
}

LineageResponse DecodeLineageResponse(const std::vector<uint8_t>& frame) {
  ByteReader r(frame);
  CheckMsg(r, LineageMsg::kResponse, "response");
  LineageResponse resp;
  resp.op = CheckedOp(r.GetU8());
  resp.request_id = GetVarint(r);
  const uint8_t status = r.GetU8();
  if (status != kStatusOk && status != kStatusError) {
    throw std::runtime_error("lineage protocol: unknown response status " +
                             std::to_string(status));
  }
  resp.ok = status == kStatusOk;
  const uint8_t flags = r.GetU8();
  if ((flags & ~kFlagCompressed) != 0) {
    throw std::runtime_error("lineage protocol: unknown response flags " +
                             std::to_string(flags));
  }

  std::vector<uint8_t> body;
  if ((flags & kFlagCompressed) != 0) {
    const uint64_t raw_size = GetVarint(r);
    if (raw_size > kMaxDeclaredBytes) {
      throw std::runtime_error("lineage protocol: declared body size " +
                               std::to_string(raw_size) + " exceeds bound");
    }
    std::vector<uint8_t> compressed(r.remaining());
    r.GetBytes(compressed.data(), compressed.size());
    body = LzBlockDecompress(compressed, raw_size);
  } else {
    body.resize(r.remaining());
    r.GetBytes(body.data(), body.size());
  }

  ByteReader br(body);
  if (!resp.ok) {
    resp.error = br.GetString();
  } else if (IsEntryListOp(resp.op)) {
    resp.entries = GetEntries(br);
  } else if (resp.op == LineageOp::kRetainedRecordIds) {
    const uint64_t count = GetVarint(br);
    if (count > br.remaining()) {
      throw std::runtime_error("lineage protocol: id count " +
                               std::to_string(count) + " exceeds frame");
    }
    resp.ids.reserve(count);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < count; ++i) {
      prev += static_cast<uint64_t>(GetZigzag(br));
      resp.ids.push_back(prev);
    }
  } else if (resp.op == LineageOp::kStats) {
    resp.stats = GetStats(br);
  }
  CheckAtEnd(br, "response body");
  return resp;
}

}  // namespace genealog
