#include "net/frame.h"

#include <stdexcept>

#include "spe/stream_batch.h"

namespace genealog {

std::vector<uint8_t> EncodeTupleFrame(const Tuple& t, bool remotify) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(FrameKind::kTuple));
  if (remotify) {
    SerializeTupleForSend(t, w);
  } else {
    SerializeTuple(t, w);
  }
  return w.TakeBytes();
}

std::vector<uint8_t> EncodeWatermarkFrame(int64_t wm) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(FrameKind::kWatermark));
  w.PutI64(wm);
  return w.TakeBytes();
}

std::vector<uint8_t> EncodeFlushFrame() {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(FrameKind::kFlush));
  return w.TakeBytes();
}

std::vector<uint8_t> EncodeBatchFrame(std::span<const TuplePtr> tuples,
                                      int64_t watermark, bool remotify) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(FrameKind::kBatch));
  w.PutU32(static_cast<uint32_t>(tuples.size()));
  for (const TuplePtr& t : tuples) {
    if (remotify) {
      SerializeTupleForSend(*t, w);
    } else {
      SerializeTuple(*t, w);
    }
  }
  w.PutI64(watermark);
  return w.TakeBytes();
}

DecodedFrame DecodeFrame(const std::vector<uint8_t>& frame) {
  ByteReader r(frame);
  DecodedFrame out;
  out.kind = static_cast<FrameKind>(r.GetU8());
  switch (out.kind) {
    case FrameKind::kTuple:
      out.tuple = DeserializeTuple(r);
      break;
    case FrameKind::kWatermark:
      out.watermark = r.GetI64();
      break;
    case FrameKind::kFlush:
      break;
    case FrameKind::kBatch: {
      const uint32_t count = r.GetU32();
      out.tuples.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        out.tuples.push_back(DeserializeTuple(r));
      }
      out.watermark = r.GetI64();
      break;
    }
    default:
      throw std::runtime_error("unknown frame kind");
  }
  return out;
}

}  // namespace genealog
