#include "net/frame.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>

#include "spe/stream_batch.h"

namespace genealog {
namespace {

// Tuple ids are node uid (high 24 bits) | per-node sequence (low 40 bits);
// see core/instrumentation.h. The compact codec dictionary-codes the uid and
// delta-codes the sequence per uid.
constexpr int kSeqBits = 40;
constexpr uint64_t kSeqMask = (uint64_t{1} << kSeqBits) - 1;

// Raw-codec cost model, for WireStats::raw_bytes under kCompact. Mirrors
// SerializeHeaderAndPayload (type_registry.cc): u16 tag + u8 kind + i64 ts +
// u64 id + i64 stimulus + u8 annotation flag.
constexpr uint64_t kRawTupleHeaderBytes = 28;
constexpr uint64_t kRawWatermarkFrameBytes = 9;  // kind byte + i64

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

TupleKind WireKind(const Tuple& t, bool remotify) {
  if (!remotify) return t.kind;
  return t.kind == TupleKind::kSource ? TupleKind::kSource : TupleKind::kRemote;
}

// Compact frame header flags.
constexpr uint8_t kFlagCompressed = 0x1;
constexpr uint8_t kFlagHasWatermark = 0x2;

// Guard against hostile declared sizes before allocating (matches the TCP
// transport's frame bound).
constexpr uint64_t kMaxDeclaredBytes = 64ull << 20;

}  // namespace

void PutVarint(ByteWriter& w, uint64_t v) {
  while (v >= 0x80) {
    w.PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.PutU8(static_cast<uint8_t>(v));
}

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

uint64_t GetVarint(ByteReader& r) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const uint8_t b = r.GetU8();
    if (shift == 63 && (b & 0xFE) != 0) {
      throw std::runtime_error("varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  throw std::runtime_error("varint longer than 10 bytes");
}

void PutZigzag(ByteWriter& w, int64_t v) { PutVarint(w, ZigzagEncode(v)); }

int64_t GetZigzag(ByteReader& r) { return ZigzagDecode(GetVarint(r)); }

const char* FrameKindName(uint8_t kind) {
  switch (static_cast<FrameKind>(kind)) {
    case FrameKind::kTuple:
      return "tuple";
    case FrameKind::kWatermark:
      return "watermark";
    case FrameKind::kFlush:
      return "flush";
    case FrameKind::kBatch:
      return "batch";
    case FrameKind::kCompactBatch:
      return "compact-batch";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeTupleFrame(const Tuple& t, bool remotify) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(FrameKind::kTuple));
  if (remotify) {
    SerializeTupleForSend(t, w);
  } else {
    SerializeTuple(t, w);
  }
  return w.TakeBytes();
}

std::vector<uint8_t> EncodeWatermarkFrame(int64_t wm) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(FrameKind::kWatermark));
  w.PutI64(wm);
  return w.TakeBytes();
}

std::vector<uint8_t> EncodeFlushFrame() {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(FrameKind::kFlush));
  return w.TakeBytes();
}

std::vector<uint8_t> EncodeBatchFrame(std::span<const TuplePtr> tuples,
                                      int64_t watermark, bool remotify) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(FrameKind::kBatch));
  w.PutU32(static_cast<uint32_t>(tuples.size()));
  for (const TuplePtr& t : tuples) {
    if (remotify) {
      SerializeTupleForSend(*t, w);
    } else {
      SerializeTuple(*t, w);
    }
  }
  w.PutI64(watermark);
  return w.TakeBytes();
}

DecodedFrame DecodeFrame(const std::vector<uint8_t>& frame) {
  ByteReader r(frame);
  DecodedFrame out;
  out.kind = static_cast<FrameKind>(r.GetU8());
  switch (out.kind) {
    case FrameKind::kTuple:
      out.tuple = DeserializeTuple(r);
      break;
    case FrameKind::kWatermark:
      out.watermark = r.GetI64();
      break;
    case FrameKind::kFlush:
      break;
    case FrameKind::kBatch: {
      const uint32_t count = r.GetU32();
      out.tuples.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        out.tuples.push_back(DeserializeTuple(r));
      }
      out.watermark = r.GetI64();
      break;
    }
    case FrameKind::kCompactBatch:
      throw std::runtime_error(
          "compact-batch frame needs a stateful FrameDecoder");
    default:
      throw std::runtime_error("unknown frame kind");
  }
  return out;
}

// --- LZ block compressor ----------------------------------------------------

std::vector<uint8_t> LzBlockCompress(std::span<const uint8_t> in) {
  const size_t n = in.size();
  std::vector<uint8_t> out;
  out.reserve(n / 2 + 16);

  const auto emit = [&](size_t lit_start, size_t lit_len, size_t match_len,
                        size_t offset) {
    const size_t ml = match_len >= 4 ? match_len - 4 : 0;
    out.push_back(static_cast<uint8_t>(
        (std::min<size_t>(lit_len, 15) << 4) | std::min<size_t>(ml, 15)));
    if (lit_len >= 15) {
      size_t rest = lit_len - 15;
      for (; rest >= 255; rest -= 255) out.push_back(255);
      out.push_back(static_cast<uint8_t>(rest));
    }
    out.insert(out.end(), in.begin() + lit_start,
               in.begin() + lit_start + lit_len);
    if (match_len == 0) return;  // final literals carry no match
    out.push_back(static_cast<uint8_t>(offset & 0xFF));
    out.push_back(static_cast<uint8_t>(offset >> 8));
    if (ml >= 15) {
      size_t rest = ml - 15;
      for (; rest >= 255; rest -= 255) out.push_back(255);
      out.push_back(static_cast<uint8_t>(rest));
    }
  };

  size_t anchor = 0;
  if (n >= 5) {
    constexpr int kHashBits = 13;
    std::vector<uint32_t> table(size_t{1} << kHashBits, 0);  // position + 1
    const auto hash4 = [&](size_t p) {
      uint32_t v;
      std::memcpy(&v, in.data() + p, 4);
      return (v * 2654435761u) >> (32 - kHashBits);
    };
    size_t pos = 0;
    const size_t last_start = n - 4;  // last position a 4-byte probe fits
    while (pos <= last_start) {
      const uint32_t h = hash4(pos);
      const uint32_t cand = table[h];
      table[h] = static_cast<uint32_t>(pos + 1);
      if (cand != 0) {
        const size_t mstart = cand - 1;
        if (pos - mstart <= 0xFFFF &&
            std::memcmp(in.data() + mstart, in.data() + pos, 4) == 0) {
          size_t len = 4;
          while (pos + len < n && in[mstart + len] == in[pos + len]) ++len;
          emit(anchor, pos - anchor, len, pos - mstart);
          pos += len;
          anchor = pos;
          continue;
        }
      }
      ++pos;
    }
  }
  // Final literals-only sequence. When a match consumed the input to its very
  // end there is nothing left to flush — the decompressor stops at raw_size,
  // so an empty trailing token would be unread garbage. The empty input still
  // emits its single zero token so the block is never zero bytes.
  if (anchor < n || n == 0) emit(anchor, n - anchor, 0, 0);
  return out;
}

std::vector<uint8_t> LzBlockDecompress(std::span<const uint8_t> in,
                                       size_t raw_size) {
  if (raw_size == 0) {
    // LzBlockCompress({}) emits the single zero token.
    if (!in.empty() && !(in.size() == 1 && in[0] == 0)) {
      throw std::runtime_error("LzBlockDecompress: trailing bytes");
    }
    return {};
  }
  std::vector<uint8_t> out;
  out.reserve(raw_size);
  size_t pos = 0;
  const auto need = [&](size_t k) {
    if (in.size() - pos < k) {
      throw std::runtime_error("LzBlockDecompress: truncated input");
    }
  };
  const auto extend = [&](size_t base) {
    if (base != 15) return base;
    uint8_t b;
    do {
      need(1);
      b = in[pos++];
      base += b;
    } while (b == 255);
    return base;
  };
  while (out.size() < raw_size) {
    need(1);
    const uint8_t token = in[pos++];
    const size_t lit = extend(token >> 4);
    need(lit);
    if (out.size() + lit > raw_size) {
      throw std::runtime_error("LzBlockDecompress: literals overflow size");
    }
    out.insert(out.end(), in.begin() + pos, in.begin() + pos + lit);
    pos += lit;
    if (out.size() == raw_size) break;
    need(2);
    const size_t offset =
        static_cast<size_t>(in[pos]) | (static_cast<size_t>(in[pos + 1]) << 8);
    pos += 2;
    if (offset == 0 || offset > out.size()) {
      throw std::runtime_error("LzBlockDecompress: bad match offset");
    }
    const size_t match_len = extend(token & 0xF) + 4;
    if (out.size() + match_len > raw_size) {
      throw std::runtime_error("LzBlockDecompress: match overflows size");
    }
    // Byte-wise copy: overlapping matches (offset < length) replicate runs.
    size_t src = out.size() - offset;
    for (size_t i = 0; i < match_len; ++i) out.push_back(out[src + i]);
  }
  if (pos != in.size()) {
    throw std::runtime_error("LzBlockDecompress: trailing bytes");
  }
  return out;
}

// --- compact codec ----------------------------------------------------------

std::vector<uint8_t> FrameEncoder::EncodeCompactBatch(
    std::span<const Tuple* const> tuples, int64_t watermark, bool remotify) {
  const bool has_wm = watermark != kNoWatermark;
  ByteWriter body;
  PutVarint(body, tuples.size());
  if (has_wm) PutZigzag(body, watermark);

  uint64_t raw_tuple_bytes = 0;
  for (const Tuple* t : tuples) {
    const TupleKind kind = WireKind(*t, remotify);
    const auto* ann = t->baseline_annotation();

    const uint32_t desc_key = (static_cast<uint32_t>(t->type_tag()) << 16) |
                              (static_cast<uint32_t>(kind) << 8) |
                              (ann != nullptr ? 1u : 0u);
    auto [desc_it, desc_new] =
        desc_index_.try_emplace(desc_key, static_cast<uint32_t>(desc_index_.size()));
    PutVarint(body, (static_cast<uint64_t>(desc_it->second) << 1) |
                        (desc_new ? 1 : 0));
    if (desc_new) {
      body.PutU16(t->type_tag());
      body.PutU8(static_cast<uint8_t>(kind));
      body.PutU8(ann != nullptr ? 1 : 0);
    }

    const uint32_t uid = static_cast<uint32_t>(t->id >> kSeqBits);
    const uint64_t seq = t->id & kSeqMask;
    auto [uid_it, uid_new] =
        uid_index_.try_emplace(uid, static_cast<uint32_t>(uid_index_.size()));
    PutVarint(body,
              (static_cast<uint64_t>(uid_it->second) << 1) | (uid_new ? 1 : 0));
    if (uid_new) {
      PutVarint(body, uid);
      uid_last_seq_.push_back(0);
    }
    uint64_t& last_seq = uid_last_seq_[uid_it->second];
    PutZigzag(body, static_cast<int64_t>(seq) - static_cast<int64_t>(last_seq));
    last_seq = seq;

    PutZigzag(body, t->ts - last_ts_);
    last_ts_ = t->ts;
    PutZigzag(body, t->stimulus - last_stimulus_);
    last_stimulus_ = t->stimulus;

    uint64_t raw_ann_bytes = 0;
    if (ann != nullptr) {
      PutVarint(body, ann->size());
      uint64_t prev = 0;
      for (uint64_t id : *ann) {
        PutZigzag(body, static_cast<int64_t>(id - prev));
        prev = id;
      }
      raw_ann_bytes = 4 + 8 * ann->size();
    }

    const size_t before = body.size();
    t->SerializePayload(body);
    raw_tuple_bytes +=
        kRawTupleHeaderBytes + raw_ann_bytes + (body.size() - before);
  }

  // What the raw Send path would have shipped for this StreamBatch: one batch
  // frame, or per-event frames when the batch degenerates.
  uint64_t raw_equiv;
  if (tuples.size() > 1) {
    raw_equiv = 1 + 4 + raw_tuple_bytes + 8;
  } else {
    raw_equiv = (tuples.size() == 1 ? 1 + raw_tuple_bytes : 0) +
                (has_wm ? kRawWatermarkFrameBytes : 0);
  }

  std::vector<uint8_t> body_bytes = body.TakeBytes();
  ByteWriter frame;
  frame.PutU8(static_cast<uint8_t>(FrameKind::kCompactBatch));
  frame.PutU8(generation_);
  uint8_t flags = has_wm ? kFlagHasWatermark : 0;
  std::vector<uint8_t> compressed;
  if (opts_.block_compress) {
    compressed = LzBlockCompress(body_bytes);
    if (compressed.size() + VarintSize(body_bytes.size()) <
        body_bytes.size()) {
      flags |= kFlagCompressed;
    }
  }
  frame.PutU8(flags);
  if ((flags & kFlagCompressed) != 0) {
    PutVarint(frame, body_bytes.size());
    frame.PutBytes(compressed.data(), compressed.size());
  } else {
    frame.PutBytes(body_bytes.data(), body_bytes.size());
  }

  std::vector<uint8_t> out = frame.TakeBytes();
  stats_.frames += 1;
  stats_.raw_bytes += raw_equiv;
  stats_.encoded_bytes += out.size();
  return out;
}

std::vector<std::vector<uint8_t>> FrameEncoder::EncodeBatch(
    std::span<const TuplePtr> tuples, int64_t watermark, bool remotify) {
  const bool has_wm = watermark != kNoWatermark;
  std::vector<std::vector<uint8_t>> frames;
  if (opts_.codec == WireCodec::kCompact) {
    if (tuples.empty() && !has_wm) return frames;
    std::vector<const Tuple*> ptrs;
    ptrs.reserve(tuples.size());
    for (const TuplePtr& t : tuples) ptrs.push_back(t.get());
    frames.push_back(EncodeCompactBatch(ptrs, watermark, remotify));
    return frames;
  }
  if (tuples.size() > 1) {
    frames.push_back(EncodeBatchFrame(tuples, watermark, remotify));
  } else {
    // Degenerate batches travel as the legacy per-event frames, so a
    // batch-size-1 deployment puts the seed's exact frame sequence on the
    // wire.
    if (tuples.size() == 1) {
      frames.push_back(EncodeTupleFrame(*tuples[0], remotify));
    }
    if (has_wm) frames.push_back(EncodeWatermarkFrame(watermark));
  }
  for (const auto& f : frames) {
    stats_.frames += 1;
    stats_.raw_bytes += f.size();
    stats_.encoded_bytes += f.size();
  }
  return frames;
}

std::vector<uint8_t> FrameEncoder::EncodeTuple(const Tuple& t, bool remotify) {
  if (opts_.codec == WireCodec::kCompact) {
    const Tuple* ptr = &t;
    return EncodeCompactBatch(std::span<const Tuple* const>(&ptr, 1),
                              kNoWatermark, remotify);
  }
  std::vector<uint8_t> frame = EncodeTupleFrame(t, remotify);
  stats_.frames += 1;
  stats_.raw_bytes += frame.size();
  stats_.encoded_bytes += frame.size();
  return frame;
}

std::vector<uint8_t> FrameEncoder::EncodeWatermark(int64_t wm) {
  // Watermark and flush frames are tiny and stateless; they stay raw under
  // either codec so a decoder can always interpret them.
  std::vector<uint8_t> frame = EncodeWatermarkFrame(wm);
  stats_.frames += 1;
  stats_.raw_bytes += frame.size();
  stats_.encoded_bytes += frame.size();
  return frame;
}

std::vector<uint8_t> FrameEncoder::EncodeFlush() {
  std::vector<uint8_t> frame = EncodeFlushFrame();
  stats_.frames += 1;
  stats_.raw_bytes += frame.size();
  stats_.encoded_bytes += frame.size();
  return frame;
}

void FrameEncoder::Reset() {
  ++generation_;
  desc_index_.clear();
  uid_index_.clear();
  uid_last_seq_.clear();
  last_ts_ = 0;
  last_stimulus_ = 0;
}

DecodedFrame FrameDecoder::Decode(const std::vector<uint8_t>& frame) {
  if (frame.empty()) throw std::runtime_error("empty frame");
  if (static_cast<FrameKind>(frame[0]) == FrameKind::kCompactBatch) {
    return DecodeCompactBatch(frame);
  }
  return DecodeFrame(frame);
}

DecodedFrame FrameDecoder::DecodeCompactBatch(
    const std::vector<uint8_t>& frame) {
  ByteReader r(frame);
  r.GetU8();  // kind, already dispatched on
  const uint8_t generation = r.GetU8();
  if (!have_generation_ || generation != generation_) {
    // New stream incarnation: the sender redefines every dictionary entry it
    // uses after a Reset, so dropping state here is always safe.
    have_generation_ = true;
    generation_ = generation;
    descs_.clear();
    uids_.clear();
    uid_last_seq_.clear();
    last_ts_ = 0;
    last_stimulus_ = 0;
  }
  const uint8_t flags = r.GetU8();
  if ((flags & ~(kFlagCompressed | kFlagHasWatermark)) != 0) {
    throw std::runtime_error("compact frame: unknown flags");
  }

  std::vector<uint8_t> decompressed;
  std::optional<ByteReader> storage;
  ByteReader* body = &r;
  if ((flags & kFlagCompressed) != 0) {
    const uint64_t raw_size = GetVarint(r);
    if (raw_size > kMaxDeclaredBytes) {
      throw std::runtime_error("compact frame: declared body too large");
    }
    std::vector<uint8_t> rest(r.remaining());
    r.GetBytes(rest.data(), rest.size());
    decompressed =
        LzBlockDecompress(rest, static_cast<size_t>(raw_size));
    storage.emplace(decompressed);
    body = &*storage;
  }

  const uint64_t count = GetVarint(*body);
  // Every encoded tuple costs at least one body byte, so a count beyond the
  // remaining bytes is malformed — reject before reserving for it.
  if (count > body->remaining()) {
    throw std::runtime_error("compact frame: declared count too large");
  }
  DecodedFrame out;
  out.kind = FrameKind::kCompactBatch;
  out.watermark =
      (flags & kFlagHasWatermark) != 0 ? GetZigzag(*body) : kNoWatermark;
  out.tuples.reserve(static_cast<size_t>(count));

  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t desc_code = GetVarint(*body);
    const uint64_t desc_idx = desc_code >> 1;
    if ((desc_code & 1) != 0) {
      if (desc_idx != descs_.size()) {
        throw std::runtime_error("compact frame: non-contiguous descriptor");
      }
      Descriptor d;
      d.tag = body->GetU16();
      d.kind = body->GetU8();
      d.has_annotation = body->GetU8() != 0;
      d.fn = DeserializerForTag(d.tag);
      if (d.fn == nullptr) {
        throw std::runtime_error("unregistered tuple type tag " +
                                 std::to_string(d.tag));
      }
      descs_.push_back(d);
    } else if (desc_idx >= descs_.size()) {
      throw std::runtime_error("compact frame: dangling descriptor reference");
    }
    const Descriptor& desc = descs_[static_cast<size_t>(desc_idx)];

    const uint64_t uid_code = GetVarint(*body);
    const uint64_t uid_idx = uid_code >> 1;
    if ((uid_code & 1) != 0) {
      if (uid_idx != uids_.size()) {
        throw std::runtime_error("compact frame: non-contiguous uid entry");
      }
      uids_.push_back(GetVarint(*body));
      uid_last_seq_.push_back(0);
    } else if (uid_idx >= uids_.size()) {
      throw std::runtime_error("compact frame: dangling uid reference");
    }
    uint64_t& last_seq = uid_last_seq_[static_cast<size_t>(uid_idx)];
    const uint64_t seq =
        static_cast<uint64_t>(static_cast<int64_t>(last_seq) + GetZigzag(*body));
    last_seq = seq;
    last_ts_ += GetZigzag(*body);
    last_stimulus_ += GetZigzag(*body);

    std::vector<uint64_t> annotation;
    if (desc.has_annotation) {
      const uint64_t n = GetVarint(*body);
      if (n > body->remaining()) {  // each entry is >= 1 byte
        throw std::runtime_error("compact frame: annotation count too large");
      }
      annotation.reserve(static_cast<size_t>(n));
      uint64_t prev = 0;
      for (uint64_t j = 0; j < n; ++j) {
        prev += static_cast<uint64_t>(GetZigzag(*body));
        annotation.push_back(prev);
      }
    }

    TuplePtr t = desc.fn(*body, last_ts_);
    t->kind = static_cast<TupleKind>(desc.kind);
    t->id = (uids_[static_cast<size_t>(uid_idx)] << kSeqBits) | seq;
    t->stimulus = last_stimulus_;
    if (desc.has_annotation) t->set_baseline_annotation(std::move(annotation));
    out.tuples.push_back(std::move(t));
  }
  if (!body->AtEnd()) {
    throw std::runtime_error("compact frame: trailing bytes");
  }
  return out;
}

}  // namespace genealog
