#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace genealog {

void RunStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

double RunStats::mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }

double RunStats::variance() const {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? var : 0.0;
}

double RunStats::stddev() const { return std::sqrt(variance()); }

double RunStats::ci95() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double Percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = pct / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

SampleStats::SampleStats(size_t reservoir_capacity)
    : capacity_(reservoir_capacity), rng_state_(0x9e3779b97f4a7c15ULL) {
  reservoir_.reserve(std::min<size_t>(capacity_, 4096));
}

void SampleStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(x);
  } else {
    // Algorithm R: replace a random slot with probability capacity/n.
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    const uint64_t slot = rng_state_ % n_;
    if (slot < capacity_) reservoir_[slot] = x;
  }
}

double SampleStats::mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }

double SampleStats::percentile(double pct) const {
  return Percentile(reservoir_, pct);
}

}  // namespace genealog
