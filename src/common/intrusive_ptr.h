// Minimal intrusive smart pointer.
//
// A type T opts in by providing two free functions, found by ADL:
//   void intrusive_ref(T* p) noexcept;    // increment reference count
//   void intrusive_unref(T* p) noexcept;  // decrement; reclaim at zero
//
// Tuples use this (see core/tuple.h) so that reclamation of a contribution
// graph can be routed through an iterative cascade instead of recursive
// destructor chains — and so that intrusive_unref, not operator delete, owns
// the release path: at refcount zero the tuple's storage is recycled into
// the tuple pool (common/tuple_pool.h) on whichever thread dropped the last
// reference.
#ifndef GENEALOG_COMMON_INTRUSIVE_PTR_H_
#define GENEALOG_COMMON_INTRUSIVE_PTR_H_

#include <cstddef>
#include <functional>
#include <utility>

namespace genealog {

template <typename T>
class IntrusivePtr {
 public:
  constexpr IntrusivePtr() noexcept = default;
  // NOLINTNEXTLINE(runtime/explicit)
  constexpr IntrusivePtr(std::nullptr_t) noexcept {}

  // Adopts `p`, incrementing its reference count unless `add_ref` is false
  // (used to take over a reference already owned by the caller).
  explicit IntrusivePtr(T* p, bool add_ref = true) noexcept : ptr_(p) {
    if (ptr_ != nullptr && add_ref) intrusive_ref(ptr_);
  }

  IntrusivePtr(const IntrusivePtr& other) noexcept : ptr_(other.ptr_) {
    if (ptr_ != nullptr) intrusive_ref(ptr_);
  }

  template <typename U>
    requires std::convertible_to<U*, T*>
  IntrusivePtr(const IntrusivePtr<U>& other) noexcept  // NOLINT
      : ptr_(other.get()) {
    if (ptr_ != nullptr) intrusive_ref(ptr_);
  }

  IntrusivePtr(IntrusivePtr&& other) noexcept : ptr_(other.ptr_) {
    other.ptr_ = nullptr;
  }

  template <typename U>
    requires std::convertible_to<U*, T*>
  IntrusivePtr(IntrusivePtr<U>&& other) noexcept  // NOLINT
      : ptr_(other.release()) {}

  ~IntrusivePtr() {
    if (ptr_ != nullptr) intrusive_unref(ptr_);
  }

  IntrusivePtr& operator=(const IntrusivePtr& other) noexcept {
    IntrusivePtr(other).swap(*this);
    return *this;
  }

  IntrusivePtr& operator=(IntrusivePtr&& other) noexcept {
    IntrusivePtr(std::move(other)).swap(*this);
    return *this;
  }

  IntrusivePtr& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  void reset() noexcept {
    if (ptr_ != nullptr) {
      intrusive_unref(ptr_);
      ptr_ = nullptr;
    }
  }

  // Relinquishes ownership without touching the reference count.
  T* release() noexcept {
    T* p = ptr_;
    ptr_ = nullptr;
    return p;
  }

  void swap(IntrusivePtr& other) noexcept { std::swap(ptr_, other.ptr_); }

  T* get() const noexcept { return ptr_; }
  T& operator*() const noexcept { return *ptr_; }
  T* operator->() const noexcept { return ptr_; }
  explicit operator bool() const noexcept { return ptr_ != nullptr; }

  friend bool operator==(const IntrusivePtr& a, const IntrusivePtr& b) {
    return a.ptr_ == b.ptr_;
  }
  friend bool operator==(const IntrusivePtr& a, const T* b) {
    return a.ptr_ == b;
  }
  friend bool operator==(const IntrusivePtr& a, std::nullptr_t) {
    return a.ptr_ == nullptr;
  }

 private:
  T* ptr_ = nullptr;
};

template <typename T, typename... Args>
IntrusivePtr<T> MakeIntrusive(Args&&... args) {
  return IntrusivePtr<T>(new T(std::forward<Args>(args)...));
}

// Casts the pointee statically; both trees share the reference count.
template <typename To, typename From>
IntrusivePtr<To> StaticPointerCast(const IntrusivePtr<From>& p) {
  return IntrusivePtr<To>(static_cast<To*>(p.get()));
}

template <typename To, typename From>
IntrusivePtr<To> DynamicPointerCast(const IntrusivePtr<From>& p) {
  return IntrusivePtr<To>(dynamic_cast<To*>(p.get()));
}

}  // namespace genealog

template <typename T>
struct std::hash<genealog::IntrusivePtr<T>> {
  size_t operator()(const genealog::IntrusivePtr<T>& p) const noexcept {
    return std::hash<T*>()(p.get());
  }
};

#endif  // GENEALOG_COMMON_INTRUSIVE_PTR_H_
