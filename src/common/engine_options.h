// The engine's data-plane and provenance-plane knobs, collected in one
// struct so every layer spells them the same way.
//
// One knob, three spellings used to exist (environment variable, Topology
// setter, QueryBuildOptions field); EngineOptions is now the single source of
// truth: a default-constructed instance carries the process-wide defaults
// (each boolean policy honoring its GENEALOG_* environment variable via
// env_knob.h), Topology::Configure stamps the data-plane subset on a
// topology, QueryBuildOptions embeds the struct as a base, the dataflow
// builder forwards it to every topology it lowers, and the bench harness
// records the same instance in BENCH_*.json.
//
// | Field            | Env var                  | Default         |
// |------------------|--------------------------|-----------------|
// | batch_size       | GENEALOG_BATCH_SIZE      | 64              |
// | spsc_edges       | GENEALOG_SPSC_RING       | on              |
// | adaptive_batch   | GENEALOG_ADAPTIVE_BATCH  | on              |
// | tuple_pool       | GENEALOG_TUPLE_POOL      | on              |
// | epoch_traversal  | GENEALOG_EPOCH_TRAVERSAL | on              |
// | async_prov_sink  | GENEALOG_ASYNC_PROV_SINK | on              |
// | prov_buffer_bytes | —                       | 256 KiB         |
// | scheduler        | GENEALOG_SCHEDULER       | thread-per-node |
// | workers          | GENEALOG_WORKERS         | 0 (= all cores) |
// | lineage_store    | GENEALOG_LINEAGE_STORE   | off             |
// | lineage_retain_records | GENEALOG_LINEAGE_RETAIN_RECORDS | 1M (0 = unbounded) |
// | lineage_retain_span    | GENEALOG_LINEAGE_RETAIN_SPAN    | 0 (= no horizon)   |
// | lineage_serve_addr | GENEALOG_LINEAGE_SERVE_ADDR | "" (= no serving) |
// | wire_codec       | GENEALOG_WIRE_CODEC      | compact         |
// | wire_block_compress | GENEALOG_WIRE_BLOCK_COMPRESS | on (compact only) |
// | use_tcp          | —                        | off             |
// | composed_unfolders | —                      | off             |
//
// batch_size is deliberately *not* read from the environment by the default
// constructor: a plain `EngineOptions{}` is the engine default (batch 64,
// with adaptive batching holding idle latency at the batch-1 seed level).
// FromEnv() additionally honors GENEALOG_BATCH_SIZE — the bench harness and
// ad-hoc tools use it so one exported variable sweeps a whole binary.
//
// tuple_pool and epoch_traversal are process-wide switches (the allocator and
// the traversal fast path are globals, not per-topology state); they ride
// here so option plumbing and BENCH_*.json reporting see one struct, but
// flipping them on a copy does not reconfigure a running process — use
// pool::SetEnabled / SetEpochTraversal for that.
#ifndef GENEALOG_COMMON_ENGINE_OPTIONS_H_
#define GENEALOG_COMMON_ENGINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/env_knob.h"

namespace genealog {

// How a Runner executes the nodes of its topologies:
//  * kThreadPerNode — one dedicated std::thread per operator node (the Liebre
//    model the paper inherits; the seed behavior and the fallback mode);
//  * kPool — a shared morsel-driven worker pool: nodes become re-armable
//    tasks woken by batch arrival, executed by GENEALOG_WORKERS threads with
//    work stealing and per-query round-robin fairness (spe/scheduler.h).
enum class SchedulerMode : uint8_t { kThreadPerNode, kPool };

// Frame encoding for inter-instance byte channels (net/frame.h):
//  * kRaw — the seed wire format, one fixed-width serialized tuple after
//    another (a batch-size-1 deployment puts the seed's exact frame sequence
//    on the wire);
//  * kCompact — delta/zigzag/varint tuple ids and timestamps, per-channel
//    dictionaries for node uids and tuple type descriptors, and (with
//    wire_block_compress) an LZ block compressor over the encoded body when
//    it wins. Sender-driven: the receiver decodes whatever codec each frame
//    announces, so the knob only needs to reach the Send side.
enum class WireCodec : uint8_t { kRaw = 0, kCompact = 1 };

namespace engine_defaults {

// Each helper reads its environment variable once per process and caches the
// result, so defaults cannot drift mid-run when a test mutates the
// environment. These are the definitions the per-subsystem Default*()
// functions (node.cc, provenance_sink.cc, tuple_pool.cc, traversal.cc)
// delegate to.
inline bool SpscEdges() {
  static const bool v = EnvKnobEnabled("GENEALOG_SPSC_RING");
  return v;
}
inline bool AdaptiveBatch() {
  static const bool v = EnvKnobEnabled("GENEALOG_ADAPTIVE_BATCH");
  return v;
}
inline bool TuplePool() {
  static const bool v = EnvKnobEnabled("GENEALOG_TUPLE_POOL");
  return v;
}
inline bool EpochTraversal() {
  static const bool v = EnvKnobEnabled("GENEALOG_EPOCH_TRAVERSAL");
  return v;
}
inline bool AsyncProvSink() {
  static const bool v = EnvKnobEnabled("GENEALOG_ASYNC_PROV_SINK");
  return v;
}
inline size_t BatchSize() {
  static const size_t v = [] {
    const char* s = std::getenv("GENEALOG_BATCH_SIZE");
    const int n = s != nullptr ? std::atoi(s) : 64;
    return static_cast<size_t>(n < 1 ? 1 : n);
  }();
  return v;
}
inline SchedulerMode Scheduler() {
  static const SchedulerMode v = [] {
    const char* s = std::getenv("GENEALOG_SCHEDULER");
    if (s != nullptr && std::strcmp(s, "pool") == 0) {
      return SchedulerMode::kPool;
    }
    // Anything else (unset, "thread-per-node", typos) keeps the safe
    // thread-per-node fallback.
    return SchedulerMode::kThreadPerNode;
  }();
  return v;
}
inline size_t Workers() {
  static const size_t v = [] {
    const char* s = std::getenv("GENEALOG_WORKERS");
    const int n = s != nullptr ? std::atoi(s) : 0;
    return static_cast<size_t>(n < 0 ? 0 : n);
  }();
  return v;
}
// The lineage store is the one opt-in knob: it buys a live query surface at
// the price of retaining records in memory, so it must cost nothing unless
// asked for (GENEALOG_LINEAGE_STORE unset/0 == off).
inline bool LineageStore() {
  static const bool v = EnvKnobOptIn("GENEALOG_LINEAGE_STORE");
  return v;
}
inline size_t LineageRetainRecords() {
  static const size_t v = [] {
    const char* s = std::getenv("GENEALOG_LINEAGE_RETAIN_RECORDS");
    const long long n = s != nullptr ? std::atoll(s) : (1ll << 20);
    return static_cast<size_t>(n < 0 ? 0 : n);
  }();
  return v;
}
inline int64_t LineageRetainSpan() {
  static const int64_t v = [] {
    const char* s = std::getenv("GENEALOG_LINEAGE_RETAIN_SPAN");
    const long long n = s != nullptr ? std::atoll(s) : 0;
    return static_cast<int64_t>(n < 0 ? 0 : n);
  }();
  return v;
}
inline std::string LineageServeAddr() {
  static const std::string v = [] {
    const char* s = std::getenv("GENEALOG_LINEAGE_SERVE_ADDR");
    return std::string(s != nullptr ? s : "");
  }();
  return v;
}
inline WireCodec WireCodecDefault() {
  static const WireCodec v = [] {
    const char* s = std::getenv("GENEALOG_WIRE_CODEC");
    if (s != nullptr && std::strcmp(s, "raw") == 0) {
      return WireCodec::kRaw;
    }
    // Compact is the default since its one-release soak (PR 9 shipped it,
    // equivalence suites pin decoded streams byte-identical); "raw" keeps
    // the seed wire format as the fallback.
    return WireCodec::kCompact;
  }();
  return v;
}
inline bool WireBlockCompress() {
  static const bool v = EnvKnobEnabled("GENEALOG_WIRE_BLOCK_COMPRESS");
  return v;
}

}  // namespace engine_defaults

struct EngineOptions {
  // Stream batch size for every edge (1 = item-at-a-time handover, the seed
  // data plane; 64 = the production default, >2x throughput with adaptive
  // batching keeping idle latency at the seed level).
  size_t batch_size = 64;
  // Lock-free SPSC ring on single-producer edges (mutex BatchQueue everywhere
  // when false).
  bool spsc_edges = engine_defaults::SpscEdges();
  // Endpoints steer their flush threshold within [1, batch_size] from
  // consumer queue depth (static threshold when false).
  bool adaptive_batch = engine_defaults::AdaptiveBatch();
  // Recycling slab allocator under MakeTuple. Process-wide; informational in
  // per-query options (see header comment).
  bool tuple_pool = engine_defaults::TuplePool();
  // Mark-word epoch fast path in FindProvenance. Process-wide; informational
  // in per-query options (see header comment).
  bool epoch_traversal = engine_defaults::EpochTraversal();
  // Double-buffered background provenance-file writer (sync fwrite when
  // false). File bytes are identical either way.
  bool async_prov_sink = engine_defaults::AsyncProvSink();
  // Swap threshold of the async writer's buffers; tests shrink it to force
  // many background handoffs.
  size_t prov_buffer_bytes = 256 * 1024;
  // Execution model for the Runner: thread-per-node (the seed fallback) or
  // the shared morsel-driven worker pool. Sink/provenance output is byte
  // identical across modes (the scheduler sweeps in the determinism suites
  // pin this); the pool is what lets thousands of queries share a few cores.
  SchedulerMode scheduler = engine_defaults::Scheduler();
  // Worker threads for the pool scheduler; 0 = one per hardware thread
  // (capped by the task count). Ignored under thread-per-node.
  size_t workers = engine_defaults::Workers();
  // Maintain a live in-memory lineage index (genealog/lineage_store.h) fed by
  // the provenance consumer, queryable through LineageQuery while the
  // topology runs. Off by default: when false no store exists and the emit
  // path pays only a null-pointer check.
  bool lineage_store = engine_defaults::LineageStore();
  // Lineage retention: evict whole epochs once more than this many records
  // are retained (0 = unbounded) ...
  size_t lineage_retain_records = engine_defaults::LineageRetainRecords();
  // ... and/or once an epoch's newest derived event-time falls more than this
  // many time units behind the newest ingested record (0 = no horizon).
  int64_t lineage_retain_span = engine_defaults::LineageRetainSpan();
  // When non-empty ("host:port"; port 0 = ephemeral) and the lineage store
  // is on, the built query additionally starts a LineageService
  // (genealog/lineage_service.h) answering LineageQuery over TCP while (and
  // after) the topology runs. Empty = no serving endpoint.
  std::string lineage_serve_addr = engine_defaults::LineageServeAddr();
  // Frame encoding for inter-instance streams (net/frame.h). kCompact (the
  // default since its one-release soak) delta/dictionary-encodes batch
  // frames and is decoded back to the exact raw tuple stream;
  // GENEALOG_WIRE_CODEC=raw keeps the seed wire format.
  WireCodec wire_codec = engine_defaults::WireCodecDefault();
  // Under kCompact, additionally run the dependency-free LZ block compressor
  // over each encoded frame body and keep the compressed form when smaller.
  // Ignored under kRaw.
  bool wire_block_compress = engine_defaults::WireBlockCompress();
  // Distributed deployments: TCP loopback channels when true, in-memory
  // serializing channels otherwise.
  bool use_tcp = false;
  // Use the composed (Figure 5B / Figure 8) SU/MU constructions instead of
  // the fused operators — the C3 demonstration and fusion ablation.
  bool composed_unfolders = false;

  // The full environment snapshot: the defaults above plus
  // GENEALOG_BATCH_SIZE applied to batch_size.
  static EngineOptions FromEnv() {
    EngineOptions o;
    o.batch_size = engine_defaults::BatchSize();
    return o;
  }
};

}  // namespace genealog

#endif  // GENEALOG_COMMON_ENGINE_OPTIONS_H_
