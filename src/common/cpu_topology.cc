#include "common/cpu_topology.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>
#include <utility>

namespace genealog {
namespace {

// Reads a small integer file ("3\n"); returns false when the file is absent
// or not a number.
bool ReadIntFile(const std::string& path, long& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char buf[64];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  char* end = nullptr;
  out = std::strtol(buf, &end, 10);
  return end != buf;
}

}  // namespace

size_t CountPhysicalCores(const std::string& sysfs_cpu_root) {
  // cpuN directories are dense from 0 on Linux; walk until the first gap
  // rather than reading the directory, which keeps the probe dependency-free
  // and makes the mocked-layout test trivial.
  std::set<std::pair<long, long>> cores;
  for (int cpu = 0;; ++cpu) {
    const std::string topo =
        sysfs_cpu_root + "/cpu" + std::to_string(cpu) + "/topology";
    long package = 0;
    long core = 0;
    if (!ReadIntFile(topo + "/physical_package_id", package) ||
        !ReadIntFile(topo + "/core_id", core)) {
      break;
    }
    cores.emplace(package, core);
  }
  return cores.size();
}

size_t DefaultWorkerCount() {
  size_t n = CountPhysicalCores();
  if (n == 0) n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace genealog
