// CPU-topology probe for the worker-count default.
//
// `GENEALOG_WORKERS=0` means "one worker per core" — but on SMT machines
// std::thread::hardware_concurrency() counts hardware *threads*, so the pool
// would oversubscribe the physical cores with compute-bound workers. The
// probe reads the Linux sysfs topology (cpu*/topology/{physical_package_id,
// core_id}) and counts distinct physical cores; platforms without sysfs fall
// back to hardware_concurrency(). The sysfs root is a parameter so tests can
// run the parser against a mocked layout.
#ifndef GENEALOG_COMMON_CPU_TOPOLOGY_H_
#define GENEALOG_COMMON_CPU_TOPOLOGY_H_

#include <cstddef>
#include <string>

namespace genealog {

// Distinct (physical_package_id, core_id) pairs among the online CPUs listed
// under `sysfs_cpu_root` (default: the live machine). Returns 0 when the
// layout is missing or unreadable — callers fall back then.
size_t CountPhysicalCores(
    const std::string& sysfs_cpu_root = "/sys/devices/system/cpu");

// The worker count `workers == 0` resolves to: physical cores when the
// topology is readable, hardware_concurrency() otherwise, and at least 1.
size_t DefaultWorkerCount();

}  // namespace genealog

#endif  // GENEALOG_COMMON_CPU_TOPOLOGY_H_
