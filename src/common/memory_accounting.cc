#include "common/memory_accounting.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>

namespace genealog::mem {
namespace {

struct Counters {
  std::atomic<int64_t> live{0};
  std::atomic<int64_t> peak{0};
};

std::array<Counters, kMaxInstances>& counters() {
  static std::array<Counters, kMaxInstances> c;
  return c;
}

std::atomic<int64_t> g_tuple_count{0};
std::atomic<int64_t> g_pool_slab_bytes{0};
std::atomic<int64_t> g_traversal_scratch_bytes{0};

thread_local int tl_instance = 0;

}  // namespace

void SetCurrentInstance(int instance_id) { tl_instance = instance_id; }
int CurrentInstance() { return tl_instance; }

void Add(int instance_id, int64_t bytes) {
  Counters& c = counters()[static_cast<size_t>(instance_id)];
  const int64_t now =
      c.live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Lossy peak update is fine: sampling races can only under-report peaks by
  // a few tuples' worth of bytes.
  int64_t prev = c.peak.load(std::memory_order_relaxed);
  while (now > prev &&
         !c.peak.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void Sub(int instance_id, int64_t bytes) {
  counters()[static_cast<size_t>(instance_id)].live.fetch_sub(
      bytes, std::memory_order_relaxed);
}

int64_t LiveBytes(int instance_id) {
  return counters()[static_cast<size_t>(instance_id)].live.load(
      std::memory_order_relaxed);
}

int64_t PeakBytes(int instance_id) {
  return counters()[static_cast<size_t>(instance_id)].peak.load(
      std::memory_order_relaxed);
}

int64_t TotalLiveBytes() {
  int64_t total = 0;
  for (int i = 0; i < kMaxInstances; ++i) total += LiveBytes(i);
  return total;
}

void ResetAll() {
  for (Counters& c : counters()) {
    c.live.store(0, std::memory_order_relaxed);
    c.peak.store(0, std::memory_order_relaxed);
  }
}

int64_t LiveTupleCount() {
  return g_tuple_count.load(std::memory_order_relaxed);
}
void AddTupleCount(int64_t delta) {
  g_tuple_count.fetch_add(delta, std::memory_order_relaxed);
}

int64_t PoolSlabBytes() {
  return g_pool_slab_bytes.load(std::memory_order_relaxed);
}
void AddPoolSlabBytes(int64_t bytes) {
  g_pool_slab_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

int64_t TraversalScratchBytes() {
  return g_traversal_scratch_bytes.load(std::memory_order_relaxed);
}
void AddTraversalScratchBytes(int64_t bytes) {
  g_traversal_scratch_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

int64_t ReadRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long size = 0;
  long resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<int64_t>(resident) * sysconf(_SC_PAGESIZE);
}

MemorySampler::MemorySampler(int n_instances, int period_ms)
    : n_instances_(n_instances),
      period_ms_(period_ms),
      sum_(static_cast<size_t>(n_instances), 0),
      max_(static_cast<size_t>(n_instances), 0),
      thread_([this] { Run(); }) {}

MemorySampler::~MemorySampler() { Stop(); }

void MemorySampler::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void MemorySampler::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    int64_t total = 0;
    for (int i = 0; i < n_instances_; ++i) {
      const int64_t live = LiveBytes(i);
      sum_[static_cast<size_t>(i)] += live;
      max_[static_cast<size_t>(i)] =
          std::max(max_[static_cast<size_t>(i)], live);
      total += live;
    }
    total_sum_ += total;
    total_max_ = std::max(total_max_, total);
    ++samples_;
    std::this_thread::sleep_for(std::chrono::milliseconds(period_ms_));
  }
  done_.store(true, std::memory_order_release);
}

MemorySampler::Series MemorySampler::series(int instance_id) const {
  Series s;
  s.samples = samples_;
  if (samples_ > 0) {
    s.avg_bytes = static_cast<double>(sum_[static_cast<size_t>(instance_id)]) /
                  static_cast<double>(samples_);
    s.max_bytes = max_[static_cast<size_t>(instance_id)];
  }
  return s;
}

MemorySampler::Series MemorySampler::total() const {
  Series s;
  s.samples = samples_;
  if (samples_ > 0) {
    s.avg_bytes =
        static_cast<double>(total_sum_) / static_cast<double>(samples_);
    s.max_bytes = total_max_;
  }
  return s;
}

}  // namespace genealog::mem
