// Per-SPE-instance accounting of live tuple bytes.
//
// The paper measures JVM heap usage per process. Here each SPE instance runs
// inside one host process, so we account the quantity the paper actually
// reasons about — bytes of tuples (and provenance annotations) that are still
// reachable — exactly, at allocation/release time. A sampling helper turns the
// instantaneous counters into the avg/max series shown in Figures 12–13, and
// ReadRssBytes() provides the OS-level sanity check.
#ifndef GENEALOG_COMMON_MEMORY_ACCOUNTING_H_
#define GENEALOG_COMMON_MEMORY_ACCOUNTING_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace genealog::mem {

inline constexpr int kMaxInstances = 16;

// The instance id new tuples are attributed to; worker threads of an SPE
// instance set this once at startup. Id 0 is the default "unattributed" pool.
void SetCurrentInstance(int instance_id);
int CurrentInstance();

void Add(int instance_id, int64_t bytes);
void Sub(int instance_id, int64_t bytes);

int64_t LiveBytes(int instance_id);
int64_t PeakBytes(int instance_id);
int64_t TotalLiveBytes();

// Zeroes all counters (between benchmark repetitions). Not thread-safe with
// respect to concurrent Add/Sub; call only while no query is running.
void ResetAll();

// Count of live Tuple objects (all instances), for leak assertions in tests.
int64_t LiveTupleCount();
void AddTupleCount(int64_t delta);

// Bytes the tuple pool has reserved from the OS in slabs (process-wide,
// monotonic — slabs are never returned). Tracked separately from LiveBytes:
// per-tuple accounting stays identical with the pool on or off, so the
// paper's memory figures remain comparable, while the slab gauge exposes the
// pool's actual OS footprint.
int64_t PoolSlabBytes();
void AddPoolSlabBytes(int64_t bytes);

// Heap bytes currently held by recycled traversal scratch structures (the
// BFS work ring and visited pointer set of genealog/traversal.h),
// process-wide. The structures grow geometrically to the workload's largest
// contribution graph and then stop: the traversal allocation-regression test
// asserts this gauge is flat after warm-up.
int64_t TraversalScratchBytes();
void AddTraversalScratchBytes(int64_t bytes);

// Resident set size of the host process, in bytes (Linux /proc/self/statm).
int64_t ReadRssBytes();

// Periodically samples LiveBytes for a set of instances; used by benches to
// produce average/maximum memory per instance over a run.
class MemorySampler {
 public:
  struct Series {
    double avg_bytes = 0;
    int64_t max_bytes = 0;
    int64_t samples = 0;
  };

  // Samples every `period_ms` until Stop(). Instance ids are 0..n_instances-1.
  MemorySampler(int n_instances, int period_ms);
  ~MemorySampler();
  MemorySampler(const MemorySampler&) = delete;
  MemorySampler& operator=(const MemorySampler&) = delete;

  void Stop();
  Series series(int instance_id) const;
  Series total() const;

 private:
  void Run();

  int n_instances_;
  int period_ms_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> done_{false};
  std::vector<int64_t> sum_;
  std::vector<int64_t> max_;
  int64_t total_max_ = 0;
  int64_t total_sum_ = 0;
  int64_t samples_ = 0;
  std::thread thread_;  // started last, after all state is initialized
};

}  // namespace genealog::mem

#endif  // GENEALOG_COMMON_MEMORY_ACCOUNTING_H_
