// A move-only vector with inline storage for the first N elements.
//
// Stream batches are usually short (a handful of tuples between flush
// triggers), so the common case must not touch the heap: elements live in an
// inline buffer until the N+1st push spills to a heap allocation. Unlike
// std::vector, moving a SmallVec whose elements are inline moves the elements
// (pointers into the buffer are not stable across moves).
#ifndef GENEALOG_COMMON_SMALL_VEC_H_
#define GENEALOG_COMMON_SMALL_VEC_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace genealog {

template <typename T, size_t N>
class SmallVec {
 public:
  SmallVec() = default;

  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  SmallVec(SmallVec&& other) noexcept { MoveFrom(other); }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  ~SmallVec() { Reset(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  T& front() { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(T value) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    new (data_ + size_) T(std::move(value));
    ++size_;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    T* slot = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  // Destroys the elements; keeps the current (possibly heap) buffer.
  void clear() {
    std::destroy_n(data_, size_);
    size_ = 0;
  }

  // Destroys every element past the first n (n must not exceed size()).
  void truncate(size_t n) {
    assert(n <= size_);
    std::destroy(data_ + n, data_ + size_);
    size_ = n;
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  // Appends by moving every element out of `other`; `other` is left empty.
  void AppendMoved(SmallVec& other) {
    reserve(size_ + other.size_);
    for (size_t i = 0; i < other.size_; ++i) {
      new (data_ + size_ + i) T(std::move(other.data_[i]));
    }
    size_ += other.size_;
    other.clear();
  }

 private:
  T* InlineData() { return std::launder(reinterpret_cast<T*>(inline_)); }
  bool IsInline() const {
    return data_ == const_cast<SmallVec*>(this)->InlineData();
  }

  // Heap buffers honour alignof(T), which plain ::operator new(size) only
  // guarantees up to the default new-alignment.
  static T* Allocate(size_t n) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t(alignof(T))));
    } else {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
  }
  static void Deallocate(T* p) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      ::operator delete(p, std::align_val_t(alignof(T)));
    } else {
      ::operator delete(p);
    }
  }

  void Grow(size_t new_capacity) {
    if (new_capacity < size_ + 1) new_capacity = size_ + 1;
    T* heap = Allocate(new_capacity);
    for (size_t i = 0; i < size_; ++i) {
      new (heap + i) T(std::move(data_[i]));
    }
    std::destroy_n(data_, size_);
    if (!IsInline()) Deallocate(data_);
    data_ = heap;
    capacity_ = new_capacity;
  }

  // Destroys elements and releases any heap buffer, returning to the empty
  // inline state.
  void Reset() {
    clear();
    if (!IsInline()) {
      Deallocate(data_);
      data_ = InlineData();
      capacity_ = N;
    }
  }

  void MoveFrom(SmallVec& other) noexcept {
    if (other.IsInline()) {
      for (size_t i = 0; i < other.size_; ++i) {
        new (data_ + i) T(std::move(other.data_[i]));
      }
      size_ = other.size_;
      other.clear();
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlineData();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = InlineData();
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace genealog

#endif  // GENEALOG_COMMON_SMALL_VEC_H_
