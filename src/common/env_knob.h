// Shared parse for boolean environment knobs (GENEALOG_TUPLE_POOL,
// GENEALOG_SPSC_RING, GENEALOG_ADAPTIVE_BATCH, GENEALOG_EPOCH_TRAVERSAL,
// GENEALOG_ASYNC_PROV_SINK): unset, empty, or any non-zero value means
// enabled — an empty var passed through by a wrapper script keeps the
// default. One definition so the knobs can never drift apart.
#ifndef GENEALOG_COMMON_ENV_KNOB_H_
#define GENEALOG_COMMON_ENV_KNOB_H_

#include <cstdlib>

namespace genealog {

inline bool EnvKnobEnabled(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr || v[0] == '\0' || std::atoi(v) != 0;
}

// Opt-in variant for features that default *off* (GENEALOG_LINEAGE_STORE):
// enabled only when the variable is set to a non-zero value. Unset or empty
// keeps the feature disabled, so an idle knob costs nothing.
inline bool EnvKnobOptIn(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::atoi(v) != 0;
}

}  // namespace genealog

#endif  // GENEALOG_COMMON_ENV_KNOB_H_
