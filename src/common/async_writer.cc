#include "common/async_writer.h"

#include <algorithm>
#include <cstring>

namespace genealog {

AsyncFileWriter::AsyncFileWriter(std::FILE* file, size_t buffer_cap)
    : file_(file), buffer_cap_(buffer_cap == 0 ? 1 : buffer_cap) {
  active_.reserve(buffer_cap_);
  inflight_.reserve(buffer_cap_);
  writer_ = std::thread([this] { RunWriter(); });
}

AsyncFileWriter::~AsyncFileWriter() {
  Flush();
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  writer_cv_.notify_one();
  writer_.join();
}

void AsyncFileWriter::Append(const uint8_t* data, size_t n) {
  while (n > 0) {
    if (active_.size() >= buffer_cap_ && !SwapBuffers()) return;
    // A record larger than the buffer cap splits across handoffs; order is
    // preserved because handoffs drain strictly in sequence.
    const size_t take = std::min(n, buffer_cap_ - active_.size());
    active_.insert(active_.end(), data, data + take);
    data += take;
    n -= take;
  }
}

bool AsyncFileWriter::SwapBuffers() {
  std::unique_lock lock(mu_);
  producer_cv_.wait(lock, [this] { return !inflight_full_ || aborted_; });
  if (aborted_) {
    active_.clear();
    return false;
  }
  std::swap(active_, inflight_);
  inflight_full_ = true;
  writer_cv_.notify_one();
  return true;
}

void AsyncFileWriter::Flush() {
  if (!active_.empty()) SwapBuffers();
  std::unique_lock lock(mu_);
  producer_cv_.wait(lock, [this] { return !inflight_full_ || aborted_; });
  // inflight_full_ drops only after the handoff's fwrite returned
  // (RunWriter), so every appended byte is in the stdio stream by now.
  if (!aborted_ && file_ != nullptr) std::fflush(file_);
}

void AsyncFileWriter::Abort() {
  {
    std::lock_guard lock(mu_);
    aborted_ = true;
  }
  producer_cv_.notify_all();
  writer_cv_.notify_one();
}

bool AsyncFileWriter::write_error() const {
  std::lock_guard lock(mu_);
  return write_error_;
}

void AsyncFileWriter::RunWriter() {
  std::unique_lock lock(mu_);
  for (;;) {
    writer_cv_.wait(lock, [this] { return inflight_full_ || stop_; });
    if (inflight_full_) {
      // The buffer moves to a local and the fwrite runs unlocked, so a
      // stalled disk (hung NFS mount) cannot hold mu_ against Abort() or
      // write_error() probes. inflight_full_ stays true for the duration,
      // which keeps the producer's bounded-buffering wait intact; once it
      // drops (under mu_ again), the write has completed — that ordering is
      // what lets Flush() conclude every byte reached the stdio stream.
      std::vector<uint8_t> batch = std::move(inflight_);
      const bool skip = aborted_ || batch.empty() || file_ == nullptr;
      lock.unlock();
      const bool short_write =
          !skip &&
          std::fwrite(batch.data(), 1, batch.size(), file_) != batch.size();
      batch.clear();
      lock.lock();
      if (short_write) write_error_ = true;
      inflight_ = std::move(batch);  // recycle the buffer's capacity
      inflight_full_ = false;
      producer_cv_.notify_all();
      continue;  // drain any pending handoff before honoring stop_
    }
    if (stop_) return;
  }
}

}  // namespace genealog
