// Byte-level serialization primitives used by the network layer.
//
// Little-endian fixed-width encodings; explicit and portable enough for the
// loopback transports this repository ships. Readers bounds-check every access
// and throw std::out_of_range on malformed input.
#ifndef GENEALOG_COMMON_SERIALIZE_H_
#define GENEALOG_COMMON_SERIALIZE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace genealog {

class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU16(uint16_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutDouble(double v) {
    static_assert(sizeof(double) == 8);
    PutU64(std::bit_cast<uint64_t>(v));
  }

  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  void PutBytes(const uint8_t* data, size_t n) { PutRaw(data, n); }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  uint8_t GetU8() {
    Require(1);
    return data_[pos_++];
  }

  uint16_t GetU16() { return GetRaw<uint16_t>(); }
  uint32_t GetU32() { return GetRaw<uint32_t>(); }
  uint64_t GetU64() { return GetRaw<uint64_t>(); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetDouble() { return std::bit_cast<double>(GetU64()); }

  std::string GetString() {
    const uint32_t n = GetU32();
    Require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  void GetBytes(uint8_t* out, size_t n) {
    Require(n);
    // n == 0 with a null out (an empty vector's data()) is UB for memcpy.
    if (n > 0) std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  T GetRaw() {
    Require(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void Require(size_t n) const {
    if (size_ - pos_ < n) {
      throw std::out_of_range("ByteReader: truncated input");
    }
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace genealog

#endif  // GENEALOG_COMMON_SERIALIZE_H_
