// Deterministic, seedable random number generation for workload synthesis.
//
// All workload generators must be reproducible run-to-run (the determinism
// tests compare distributed vs. intra-process outputs tuple-by-tuple), so we
// use an explicit SplitMix64 engine instead of std::random_device-seeded
// facilities, and define our own distributions to be independent of the
// standard library implementation.
#ifndef GENEALOG_COMMON_RNG_H_
#define GENEALOG_COMMON_RNG_H_

#include <cstdint>

namespace genealog {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace genealog

#endif  // GENEALOG_COMMON_RNG_H_
