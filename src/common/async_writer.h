// Double-buffered asynchronous appender over a stdio FILE*.
//
// The producer serializes into an in-memory buffer; a background thread
// fwrites full buffers while the producer keeps filling the other one.
// Buffering is bounded: once the producer has filled its buffer and the
// previous one is still being written, Append blocks — at most
// ~2 × buffer_cap bytes (plus one oversized record) are ever in flight, so a
// slow disk back-pressures the operator thread instead of growing the heap.
//
// Bytes reach the file in exactly the order they were appended, so the file
// contents are byte-identical to calling fwrite synchronously — the async
// provenance-sink determinism suite pins this against the synchronous path.
//
// Threading contract: Append/Flush are producer-thread-only (the owning
// operator's processing thread); Abort may be called from any thread; the
// destructor runs after the producer is done with Append/Flush.
#ifndef GENEALOG_COMMON_ASYNC_WRITER_H_
#define GENEALOG_COMMON_ASYNC_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

namespace genealog {

class AsyncFileWriter {
 public:
  // Does not take ownership of `file`; the caller closes it after destroying
  // the writer. `buffer_cap` is the swap threshold per buffer (tests shrink
  // it to force many handoffs).
  explicit AsyncFileWriter(std::FILE* file, size_t buffer_cap = 256 * 1024);
  ~AsyncFileWriter();  // Flush(), then joins the writer thread
  AsyncFileWriter(const AsyncFileWriter&) = delete;
  AsyncFileWriter& operator=(const AsyncFileWriter&) = delete;

  // Appends `n` bytes after everything appended so far. May block on the
  // writer thread when both buffers are full (bounded buffering).
  void Append(const uint8_t* data, size_t n);

  // Blocks until every appended byte has reached the FILE* and fflush
  // returned — the clean end-of-stream semantics (ProvenanceSink OnFlush).
  void Flush();

  // Abandons buffered-but-unwritten data and releases any blocked producer;
  // further Appends are dropped. Used on teardown after a failed run, where
  // a partial file is expected anyway and nothing may block.
  void Abort();

  // True once an fwrite reported a short write (disk full, I/O error).
  bool write_error() const;

 private:
  void RunWriter();
  // Hands the active buffer to the writer thread, waiting for the previous
  // handoff to drain first. Returns false when the writer was aborted (the
  // buffered data is dropped).
  bool SwapBuffers();

  std::FILE* const file_;
  const size_t buffer_cap_;

  // active_ is filled by the producer without holding mu_; it changes hands
  // only inside SwapBuffers. inflight_ belongs to the writer thread while
  // inflight_full_ is true, to the protocol otherwise.
  std::vector<uint8_t> active_;
  std::vector<uint8_t> inflight_;

  mutable std::mutex mu_;
  std::condition_variable producer_cv_;
  std::condition_variable writer_cv_;
  bool inflight_full_ = false;
  bool stop_ = false;
  bool aborted_ = false;
  bool write_error_ = false;

  std::thread writer_;  // started last, after all state is initialized
};

}  // namespace genealog

#endif  // GENEALOG_COMMON_ASYNC_WRITER_H_
