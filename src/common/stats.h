// Descriptive statistics for experiment reporting: mean, stddev, 95% CI,
// percentiles. The benches average over repeated runs and report the 95%
// confidence interval like the paper does.
#ifndef GENEALOG_COMMON_STATS_H_
#define GENEALOG_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace genealog {

class RunStats {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // sample variance (n-1)
  double stddev() const;
  // Half-width of the 95% confidence interval (normal approximation).
  double ci95() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Percentile over an explicit sample set (nearest-rank).
double Percentile(std::vector<double> samples, double pct);

// Welford-style online accumulator for high-volume per-tuple measurements
// (latency, traversal time) where we keep a bounded reservoir for percentiles.
class SampleStats {
 public:
  explicit SampleStats(size_t reservoir_capacity = 65536);

  void Add(double x);
  size_t count() const { return n_; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double percentile(double pct) const;

 private:
  size_t n_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  size_t capacity_;
  uint64_t rng_state_;
  std::vector<double> reservoir_;
};

}  // namespace genealog

#endif  // GENEALOG_COMMON_STATS_H_
