// Bounded blocking queue used as the stream between two operator threads.
//
// Streams in the topology are single-producer/single-consumer; a plain
// mutex+condvar queue is simple, safe, and fast enough (the reproduced system,
// Liebre, also uses simple blocking queues between operator threads).
// Back-pressure is provided by the capacity bound: producers block when a
// downstream operator is slower.
#ifndef GENEALOG_COMMON_BOUNDED_QUEUE_H_
#define GENEALOG_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace genealog {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false if the queue was aborted.
  bool Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || aborted_; });
    if (aborted_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Push with coalescing: if `try_merge(tail, item)` absorbs the new item
  // into the current tail, no slot is consumed (and a full queue does not
  // block). Streams use this to collapse consecutive watermarks, which
  // otherwise dominate queue traffic at high fan-out.
  template <typename Merge>
  bool PushCoalesce(T item, Merge&& try_merge) {
    std::unique_lock lock(mu_);
    if (aborted_) return false;
    if (!items_.empty() && try_merge(items_.back(), item)) {
      lock.unlock();
      not_empty_.notify_one();
      return true;
    }
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || aborted_; });
    if (aborted_) return false;
    if (!items_.empty() && try_merge(items_.back(), item)) {
      lock.unlock();
      not_empty_.notify_one();
      return true;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt once aborted and drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || aborted_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop, for draining in tests.
  std::optional<T> TryPop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Wakes all waiters; subsequent Push fails, Pop drains remaining items then
  // reports end. Used to tear a topology down on error.
  void Abort() {
    {
      std::lock_guard lock(mu_);
      aborted_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t Size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool aborted_ = false;
};

}  // namespace genealog

#endif  // GENEALOG_COMMON_BOUNDED_QUEUE_H_
