// Bounded blocking queue — the generic building block behind the in-memory
// byte channels (frame queues) and anything else that needs a simple
// mutex+condvar stream between two threads. The operator-to-operator streams
// of the SPE use the batch-aware BatchQueue (spe/batch_queue.h) instead.
//
// Back-pressure is provided by the capacity bound: producers block when the
// consumer is slower. The busy-path cost is kept low the same way as in
// BatchQueue: waiter counts let the active side skip condvar notifies
// entirely when nobody sleeps, so an uncontended push or pop is one lock
// round-trip and no syscalls.
#ifndef GENEALOG_COMMON_BOUNDED_QUEUE_H_
#define GENEALOG_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace genealog {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false if the queue was aborted.
  bool Push(T item) {
    std::unique_lock lock(mu_);
    WaitNotFull(lock);
    if (aborted_) return false;
    items_.push_back(std::move(item));
    NotifyConsumers(lock);
    return true;
  }

  // Push with coalescing: if `try_merge(tail, item)` absorbs the new item
  // into the current tail, no slot is consumed (and a full queue does not
  // block). Streams use this to collapse consecutive watermarks, which
  // otherwise dominate queue traffic at high fan-out.
  template <typename Merge>
  bool PushCoalesce(T item, Merge&& try_merge) {
    std::unique_lock lock(mu_);
    if (aborted_) return false;
    if (!items_.empty() && try_merge(items_.back(), item)) {
      NotifyConsumers(lock);
      return true;
    }
    WaitNotFull(lock);
    if (aborted_) return false;
    if (!items_.empty() && try_merge(items_.back(), item)) {
      NotifyConsumers(lock);
      return true;
    }
    items_.push_back(std::move(item));
    NotifyConsumers(lock);
    return true;
  }

  // Blocks while empty. Returns nullopt once aborted and drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    if (items_.empty() && !aborted_) {
      ++waiting_consumers_;
      not_empty_.wait(lock, [&] { return !items_.empty() || aborted_; });
      --waiting_consumers_;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    NotifyProducers(lock);
    return item;
  }

  // Non-blocking pop, for draining in tests.
  std::optional<T> TryPop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    NotifyProducers(lock);
    return item;
  }

  // Wakes all waiters; subsequent Push fails, Pop drains remaining items then
  // reports end. Used to tear a topology down on error.
  void Abort() {
    {
      std::lock_guard lock(mu_);
      aborted_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t Size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  void WaitNotFull(std::unique_lock<std::mutex>& lock) {
    if (items_.size() < capacity_ || aborted_) return;
    ++waiting_producers_;
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || aborted_; });
    --waiting_producers_;
  }

  // Notify-if-waiting: waiter counts are maintained under mu_, so a thread
  // between its predicate check and its wait is always observed here.
  void NotifyConsumers(std::unique_lock<std::mutex>& lock) {
    const bool wake = waiting_consumers_ > 0;
    lock.unlock();
    if (wake) not_empty_.notify_one();
  }
  void NotifyProducers(std::unique_lock<std::mutex>& lock) {
    const bool wake = waiting_producers_ > 0;
    lock.unlock();
    if (wake) not_full_.notify_one();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  size_t waiting_producers_ = 0;
  size_t waiting_consumers_ = 0;
  bool aborted_ = false;
};

}  // namespace genealog

#endif  // GENEALOG_COMMON_BOUNDED_QUEUE_H_
