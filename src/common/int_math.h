// Integer helpers for window arithmetic with negative-safe semantics.
#ifndef GENEALOG_COMMON_INT_MATH_H_
#define GENEALOG_COMMON_INT_MATH_H_

#include <cstdint>

namespace genealog {

// Floor division (rounds toward negative infinity). Requires d > 0.
constexpr int64_t FloorDiv(int64_t n, int64_t d) {
  int64_t q = n / d;
  if ((n % d != 0) && ((n < 0) != (d < 0))) --q;
  return q;
}

// Largest multiple of `step` that is <= x. Requires step > 0.
constexpr int64_t FloorAlign(int64_t x, int64_t step) {
  return FloorDiv(x, step) * step;
}

// Saturating subtraction for watermark arithmetic around INT64_MIN/MAX.
constexpr int64_t SatSub(int64_t a, int64_t b) {
  if (b > 0 && a < INT64_MIN + b) return INT64_MIN;
  if (b < 0 && a > INT64_MAX + b) return INT64_MAX;
  return a - b;
}

constexpr int64_t SatAdd(int64_t a, int64_t b) {
  if (b > 0 && a > INT64_MAX - b) return INT64_MAX;
  if (b < 0 && a < INT64_MIN - b) return INT64_MIN;
  return a + b;
}

}  // namespace genealog

#endif  // GENEALOG_COMMON_INT_MATH_H_
