// Monotonic wall-clock helpers used for latency stimuli and timing.
#ifndef GENEALOG_COMMON_WALL_CLOCK_H_
#define GENEALOG_COMMON_WALL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace genealog {

// Nanoseconds on a monotonic clock. Used as the "stimulus" attached to source
// tuples so that sink-side latency equals (now - latest contributing stimulus),
// matching the paper's latency definition (production of sink tuple vs.
// reception of the latest contributing source tuple).
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline double NanosToMillis(int64_t ns) {
  return static_cast<double>(ns) / 1e6;
}

// Simple scope timer accumulating into a caller-owned nanosecond counter.
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* sink_ns) : sink_ns_(sink_ns), start_(NowNanos()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { *sink_ns_ += NowNanos() - start_; }

 private:
  int64_t* sink_ns_;
  int64_t start_;
};

}  // namespace genealog

#endif  // GENEALOG_COMMON_WALL_CLOCK_H_
