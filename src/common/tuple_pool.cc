#include "common/tuple_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "common/engine_options.h"
#include "common/memory_accounting.h"

namespace genealog::pool {
namespace {

// Blocks per refill batch between a thread cache and the central list; a
// thread cache holds at most kCacheCapacity blocks per class and spills half
// when full, so blocks keep circulating under producer/consumer imbalance
// (e.g. a sink thread that frees everything the source threads allocate).
constexpr size_t kRefillBatch = 64;
constexpr size_t kCacheCapacity = 256;

// Blocks carved per slab.
constexpr size_t kBlocksPerSlab = 256;

// The central free list is an array of block pointers, not an intrusive
// linked list: spill and refill are memcpys over the array's own storage, so
// the lock hold time never includes chasing next-pointers through block
// memory that was last written by another core.
struct CentralClass {
  std::mutex mu;
  std::vector<void*> free_blocks;  // guarded by mu
  char* bump = nullptr;            // unallocated region of the newest slab
  char* bump_end = nullptr;        // guarded by mu
  std::vector<void*> slabs;        // guarded by mu; freed never
};

struct alignas(64) FlowCounters {
  std::atomic<uint64_t> pool_allocs{0};
  std::atomic<uint64_t> fresh_carves{0};
  std::atomic<uint64_t> heap_allocs{0};
};

struct Central {
  CentralClass classes[kNumClasses];
  FlowCounters flow;
  std::atomic<uint64_t> slabs{0};
  std::atomic<uint64_t> slab_bytes{0};
};

// Leaked on purpose: thread caches flush into it from thread_local
// destructors, which may run after static destructors on the main thread.
Central& central() {
  static Central* c = new Central;
  return *c;
}

std::atomic<int> g_enabled{-1};  // -1 unread, 0 off, 1 on

bool ReadEnabledFromEnv() { return engine_defaults::TuplePool(); }

// Carves a fresh slab for `cls` and points the bump region at it. Caller
// holds cls.mu.
void AddSlab(CentralClass& cls, uint8_t size_class) {
  const size_t block = ClassBytes(size_class);
  const size_t bytes = block * kBlocksPerSlab;
  char* slab = static_cast<char*>(::operator new(bytes));
  cls.slabs.push_back(slab);
  cls.bump = slab;
  cls.bump_end = slab + bytes;
  // Every block this slab adds could end up on the free array at once; grow
  // it outside the hot path so spills never reallocate mid-lock.
  cls.free_blocks.reserve(cls.slabs.size() * kBlocksPerSlab);
  Central& c = central();
  c.slabs.fetch_add(1, std::memory_order_relaxed);
  c.slab_bytes.fetch_add(bytes, std::memory_order_relaxed);
  mem::AddPoolSlabBytes(static_cast<int64_t>(bytes));
}

// Per-thread cache: a bounded LIFO of free blocks per class. The destructor
// flushes everything back to the central lists so short-lived threads (bench
// repetitions spawn one thread per operator) don't strand blocks.
class ThreadCache {
 public:
  ~ThreadCache() {
    for (int c = 0; c < kNumClasses; ++c) {
      Spill(static_cast<uint8_t>(c), counts_[c]);
    }
  }

  void* Pop(uint8_t size_class) {
    size_t& n = counts_[size_class];
    if (n == 0 && !Refill(size_class)) return nullptr;
    return blocks_[size_class][--n];
  }

  void Push(uint8_t size_class, void* p) {
    size_t& n = counts_[size_class];
    if (n == kCacheCapacity) Spill(size_class, kCacheCapacity / 2);
    blocks_[size_class][n++] = p;
  }

  void SpillAll() {
    for (int c = 0; c < kNumClasses; ++c) {
      Spill(static_cast<uint8_t>(c), counts_[c]);
    }
  }

 private:
  // Pulls blocks from the central class: a batch of recycled blocks off the
  // free array, or — only when it is empty — exactly one fresh block of
  // slab space. Carving one at a time keeps recycled_allocs exact
  // (pool_allocs - fresh_carves) and only costs an extra lock round-trip
  // during warm-up, the one phase the pool does not claim to optimize.
  bool Refill(uint8_t size_class) {
    CentralClass& cls = central().classes[size_class];
    size_t got = 0;
    bool fresh = false;
    {
      std::lock_guard lock(cls.mu);
      const size_t take = std::min(kRefillBatch, cls.free_blocks.size());
      if (take > 0) {
        void* const* from =
            cls.free_blocks.data() + cls.free_blocks.size() - take;
        std::copy(from, from + take, blocks_[size_class]);
        cls.free_blocks.resize(cls.free_blocks.size() - take);
        got = take;
      } else {
        if (cls.bump == cls.bump_end) AddSlab(cls, size_class);
        blocks_[size_class][got++] = cls.bump;
        cls.bump += ClassBytes(size_class);
        fresh = true;
      }
    }
    if (fresh) {
      central().flow.fresh_carves.fetch_add(1, std::memory_order_relaxed);
    }
    counts_[size_class] = got;
    return got > 0;
  }

  void Spill(uint8_t size_class, size_t n_spill) {
    size_t& n = counts_[size_class];
    if (n_spill == 0 || n == 0) return;
    if (n_spill > n) n_spill = n;
    CentralClass& cls = central().classes[size_class];
    std::lock_guard lock(cls.mu);
    cls.free_blocks.insert(cls.free_blocks.end(),
                           blocks_[size_class] + n - n_spill,
                           blocks_[size_class] + n);
    n -= n_spill;
  }

  void* blocks_[kNumClasses][kCacheCapacity];
  size_t counts_[kNumClasses] = {};
};

ThreadCache& thread_cache() {
  // Touch the central pool first so its (leaked) storage outlives every
  // thread cache, including the main thread's.
  central();
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace

bool Enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = ReadEnabledFromEnv() ? 1 : 0;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetEnabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void* Allocate(size_t bytes, uint8_t& size_class) {
  const uint8_t cls = SizeClassFor(bytes);
  if (cls == kHeapClass || !Enabled()) {
    size_class = kHeapClass;
    central().flow.heap_allocs.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(bytes);
  }
  size_class = cls;
  central().flow.pool_allocs.fetch_add(1, std::memory_order_relaxed);
  return thread_cache().Pop(cls);
}

void Deallocate(void* p, uint8_t size_class) noexcept {
  if (p == nullptr) return;
  if (size_class == kHeapClass) {
    ::operator delete(p);
    return;
  }
  thread_cache().Push(size_class, p);
}

void FlushThreadCache() { thread_cache().SpillAll(); }

Stats GetStats() {
  Central& c = central();
  Stats s;
  s.slabs = c.slabs.load(std::memory_order_relaxed);
  s.slab_bytes = c.slab_bytes.load(std::memory_order_relaxed);
  s.pool_allocs = c.flow.pool_allocs.load(std::memory_order_relaxed);
  const uint64_t fresh = c.flow.fresh_carves.load(std::memory_order_relaxed);
  s.recycled_allocs = s.pool_allocs > fresh ? s.pool_allocs - fresh : 0;
  s.heap_allocs = c.flow.heap_allocs.load(std::memory_order_relaxed);
  return s;
}

void ResetStats() {
  FlowCounters& f = central().flow;
  f.pool_allocs.store(0, std::memory_order_relaxed);
  f.fresh_carves.store(0, std::memory_order_relaxed);
  f.heap_allocs.store(0, std::memory_order_relaxed);
}

}  // namespace genealog::pool
