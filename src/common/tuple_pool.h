// Recycling slab allocator for tuple storage.
//
// GeneaLog's overhead argument (§4, §7) rests on tuple handling costing a
// small constant per tuple; once the data plane is batched, the global
// new/delete pair inside MakeTuple is the dominant remaining per-tuple cost.
// The pool replaces it with size-class slab allocation:
//
//  * sizes are rounded up to one of a few fixed size classes; each class
//    carves blocks out of large slabs obtained from the OS;
//  * every thread keeps a small per-class cache of free blocks, so the
//    steady-state allocate/release pair is two thread-local pointer pushes;
//  * the caches overflow into (and refill from) a mutex-protected central
//    free list per class, which also makes cross-thread release correct: a
//    producer thread may allocate a tuple whose last reference is dropped on
//    a downstream thread, in which case the block simply migrates to the
//    releasing thread's cache (and eventually to the central list);
//  * once warmed up, query execution allocates from the OS only when the
//    live-tuple high-water mark grows — slabs are never returned.
//
// Callers record the size class a block came from (tuples stash it in their
// header, see core/tuple.h) and hand it back to Deallocate, so toggling the
// pool at runtime can never mismatch allocate/release paths. Blocks larger
// than the biggest class, and every allocation when the pool is disabled
// (GENEALOG_TUPLE_POOL=0), fall back to the heap under kHeapClass.
#ifndef GENEALOG_COMMON_TUPLE_POOL_H_
#define GENEALOG_COMMON_TUPLE_POOL_H_

#include <cstddef>
#include <cstdint>

namespace genealog::pool {

// Block alignment every class guarantees (slabs come from operator new and
// class strides are multiples of it).
inline constexpr size_t kBlockAlign = alignof(std::max_align_t);

// Size classes are multiples of 64 bytes: 64, 128, ..., 512. Tuples cluster
// tightly here — the Tuple header is ~96 bytes and payloads add a few words —
// so a linear stride wastes less than a geometric one would.
inline constexpr size_t kClassStride = 64;
inline constexpr int kNumClasses = 8;
inline constexpr size_t kMaxPooledBytes = kNumClasses * kClassStride;

// Sentinel class for blocks owned by the heap, not the pool.
inline constexpr uint8_t kHeapClass = 0xFF;

// Class serving `bytes`, or kHeapClass when bytes > kMaxPooledBytes.
constexpr uint8_t SizeClassFor(size_t bytes) {
  if (bytes > kMaxPooledBytes) return kHeapClass;
  const size_t rounded = bytes == 0 ? 1 : bytes;
  return static_cast<uint8_t>((rounded - 1) / kClassStride);
}

// Block size of a pooled class.
constexpr size_t ClassBytes(uint8_t size_class) {
  return (static_cast<size_t>(size_class) + 1) * kClassStride;
}

// Whether allocations go through the pool. Reads GENEALOG_TUPLE_POOL once at
// first use (unset or any value but "0" means enabled).
bool Enabled();
// Overrides the env-derived setting; in-flight blocks are unaffected because
// release is keyed on the block's recorded class, not the current setting.
void SetEnabled(bool on);

// Allocates storage for `bytes`, writing the class the block belongs to into
// `size_class` (kHeapClass for heap fallback). Never returns null (throws
// std::bad_alloc like operator new).
void* Allocate(size_t bytes, uint8_t& size_class);

// Returns a block to the class it was allocated from.
void Deallocate(void* p, uint8_t size_class) noexcept;

// Drains the calling thread's caches into the central free lists, making
// every block it released visible to other threads (tests; also useful for
// short-lived worker threads, though thread exit flushes automatically).
void FlushThreadCache();

// --- observability -----------------------------------------------------------
struct Stats {
  uint64_t slabs = 0;            // slabs carved from the OS
  uint64_t slab_bytes = 0;       // total bytes reserved in slabs
  uint64_t pool_allocs = 0;      // allocations served by the pool
  uint64_t recycled_allocs = 0;  // ...of which reused a released block
  uint64_t heap_allocs = 0;      // fallback allocations (disabled / oversize)

  // Fraction of pooled allocations served by recycling rather than carving
  // fresh slab space — ~1.0 in steady state.
  double recycle_hit_rate() const {
    return pool_allocs == 0
               ? 0.0
               : static_cast<double>(recycled_allocs) /
                     static_cast<double>(pool_allocs);
  }
};

Stats GetStats();
// Zeroes the flow counters (between benchmark repetitions / tests). Slabs and
// free lists are untouched, so slabs/slab_bytes — gauges of reserved memory —
// keep their values.
void ResetStats();

}  // namespace genealog::pool

#endif  // GENEALOG_COMMON_TUPLE_POOL_H_
