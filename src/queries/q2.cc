// Q2 — Detecting accidents (Linear Road, Figure 9).
//
// Extends Q1: the stopped-car events (carrying each car's last position) are
// aggregated by position over a tumbling 30 s window counting distinct cars;
// two or more stopped cars at the same position is an accident. Eight source
// tuples contribute to each sink tuple (two cars × four reports).
//
// Distributed split (Figure 9C): instance 1 = Source + Filter + Aggregate +
// Filter (all of Q1), instance 2 = Aggregate + Filter + Sink.
#include <set>

#include "queries/assemble.h"
#include "queries/queries.h"

namespace genealog::queries {

Node* BuildStoppedCarChain(Topology& topo, Node* input,
                           const std::string& prefix);  // defined in q1.cc
AggregateCombiner<lr::PositionReport, lr::StoppedCarStats, int64_t>
StoppedCarCombiner();  // defined in q1.cc

namespace {

using lr::AccidentStats;
using lr::PositionReport;
using lr::StoppedCarStats;

AggregateCombiner<StoppedCarStats, AccidentStats, int64_t> AccidentCombiner() {
  return [](const WindowView<StoppedCarStats, int64_t>& w) {
    std::set<int64_t> cars;
    for (const auto& t : w.tuples) cars.insert(t->car_id);
    return MakeTuple<AccidentStats>(/*ts=*/0, /*pos=*/w.key,
                                    static_cast<int64_t>(cars.size()));
  };
}

}  // namespace

BuiltQuery BuildQ2(const lr::LinearRoadData& data, QueryBuildOptions options) {
  QuerySpec spec;
  spec.name = "Q2";
  spec.total_window_span = kQ1WindowSize + kQ2WindowSize;
  spec.mu_ws = kQ2WindowSize;  // instance 2 holds the 30 s Aggregate
  spec.make_source = [&data](Topology& topo, const SourceOptions& so) {
    return topo.Add<VectorSourceNode<lr::PositionReport>>("source",
                                                          data.reports, so);
  };
  spec.build_stage1 = [](Topology& topo, Node* input) {
    return std::vector<Node*>{BuildStoppedCarChain(topo, input, "q1.")};
  };
  spec.build_stage2 = [](Topology& topo) {
    auto* agg = topo.Add<AggregateNode<StoppedCarStats, AccidentStats>>(
        "agg.accidents",
        AggregateOptions{kQ2WindowSize, kQ2WindowAdvance,
                         WindowBounds::kLeftClosedRightOpen,
                         EmitAt::kWindowStart},
        [](const StoppedCarStats& t) { return t.last_pos; },
        AccidentCombiner());
    auto* f_accident = topo.Add<FilterNode<AccidentStats>>(
        "filter.accident",
        [](const AccidentStats& t) { return t.count > 1; });
    topo.Connect(agg, f_accident);
    return Stage2{{agg}, f_accident};
  };
  return Assemble(spec, std::move(options));
}

// Q2 on the fluent builder: the whole Q1 chain, then the accident aggregate.
// Figure 9C's split puts everything up to the stopped-car filter on instance
// 1 and the accident stage on instance 2 — one At(2) cut.
BuiltDataflow BuildQ2Fluent(const lr::LinearRoadData& data,
                            QueryBuildOptions options) {
  Dataflow df(ToDataflowOptions(options));

  Stream<StoppedCarStats> stopped =
      df.Source<PositionReport>("source", data.reports, options.source)
          .Filter("q1.filter.speed0",
                  [](const PositionReport& t) { return t.speed == 0.0; })
          .Aggregate<StoppedCarStats>(
              "q1.agg.stopped",
              AggregateOptions{kQ1WindowSize, kQ1WindowAdvance,
                               WindowBounds::kLeftClosedRightOpen,
                               EmitAt::kWindowStart},
              [](const PositionReport& t) { return t.car_id; },
              StoppedCarCombiner())
          .Filter("q1.filter.stopped", [](const StoppedCarStats& t) {
            return t.count == kQ1StopCount && t.dist_pos == 1;
          });
  if (options.distributed) stopped = stopped.At(2);
  stopped
      .Aggregate<AccidentStats>(
          "agg.accidents",
          AggregateOptions{kQ2WindowSize, kQ2WindowAdvance,
                           WindowBounds::kLeftClosedRightOpen,
                           EmitAt::kWindowStart},
          [](const StoppedCarStats& t) { return t.last_pos; },
          AccidentCombiner())
      .Filter("filter.accident",
              [](const AccidentStats& t) { return t.count > 1; })
      .Sink("K", options.sink_consumer);
  return df.Build();
}

}  // namespace genealog::queries
