// Q2 — Detecting accidents (Linear Road, Figure 9).
//
// Extends Q1: the stopped-car events (carrying each car's last position) are
// aggregated by position over a tumbling 30 s window counting distinct cars;
// two or more stopped cars at the same position is an accident. Eight source
// tuples contribute to each sink tuple (two cars × four reports).
//
// Distributed split (Figure 9C): instance 1 = Source + Filter + Aggregate +
// Filter (all of Q1), instance 2 = Aggregate + Filter + Sink.
#include <set>

#include "queries/assemble.h"
#include "queries/queries.h"

namespace genealog::queries {

Node* BuildStoppedCarChain(Topology& topo, Node* input,
                           const std::string& prefix);  // defined in q1.cc

namespace {

using lr::AccidentStats;
using lr::StoppedCarStats;

AggregateCombiner<StoppedCarStats, AccidentStats, int64_t> AccidentCombiner() {
  return [](const WindowView<StoppedCarStats, int64_t>& w) {
    std::set<int64_t> cars;
    for (const auto& t : w.tuples) cars.insert(t->car_id);
    return MakeTuple<AccidentStats>(/*ts=*/0, /*pos=*/w.key,
                                    static_cast<int64_t>(cars.size()));
  };
}

}  // namespace

BuiltQuery BuildQ2(const lr::LinearRoadData& data, QueryBuildOptions options) {
  QuerySpec spec;
  spec.name = "Q2";
  spec.total_window_span = kQ1WindowSize + kQ2WindowSize;
  spec.mu_ws = kQ2WindowSize;  // instance 2 holds the 30 s Aggregate
  spec.make_source = [&data](Topology& topo, const SourceOptions& so) {
    return topo.Add<VectorSourceNode<lr::PositionReport>>("source",
                                                          data.reports, so);
  };
  spec.build_stage1 = [](Topology& topo, Node* input) {
    return std::vector<Node*>{BuildStoppedCarChain(topo, input, "q1.")};
  };
  spec.build_stage2 = [](Topology& topo) {
    auto* agg = topo.Add<AggregateNode<StoppedCarStats, AccidentStats>>(
        "agg.accidents",
        AggregateOptions{kQ2WindowSize, kQ2WindowAdvance,
                         WindowBounds::kLeftClosedRightOpen,
                         EmitAt::kWindowStart},
        [](const StoppedCarStats& t) { return t.last_pos; },
        AccidentCombiner());
    auto* f_accident = topo.Add<FilterNode<AccidentStats>>(
        "filter.accident",
        [](const AccidentStats& t) { return t.count > 1; });
    topo.Connect(agg, f_accident);
    return Stage2{{agg}, f_accident};
  };
  return Assemble(spec, std::move(options));
}

}  // namespace genealog::queries
