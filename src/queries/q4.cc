// Q4 — Anomaly (faulty meter) detection (smart grid, Figure 11).
//
//   Source -> Multiplex -> { Aggregate(sum(cons); WS = WA = 1 day,
//                                      group-by meter_id, emit at window end),
//                            Filter(ts % 24 == 0) }
//          -> Join(L.meter_id == R.meter_id, WS = 1 hour,
//                  cons_diff = |L.cons_sum - R.cons|)
//          -> Filter(cons_diff > 200) -> Sink
//
// A faulty meter under-reports a day and compensates with a spike at the
// following midnight; the daily sum of day d (emitted at ts = 24(d+1)) joins
// the midnight reading at ts = 24(d+1), and a large absolute difference
// raises the alert. 25 source tuples contribute to each sink tuple: the 24
// readings of the summed day plus the midnight reading (the paper counts 24;
// the off-by-one is a window-boundary-inclusion choice, see EXPERIMENTS.md).
//
// Distributed split (Figure 11C): instance 1 = Source + Multiplex +
// Aggregate + Filter (two delivering streams, so two SUs feed the MU's two
// upstream ports); instance 2 = Join + Filter + Sink.
#include <cmath>

#include "queries/assemble.h"
#include "queries/queries.h"

namespace genealog::queries {
namespace {

using sg::ConsumptionDiff;
using sg::DailyConsumption;
using sg::MeterReading;

}  // namespace

AggregateNode<MeterReading, DailyConsumption>* AddDailySumAggregate(
    Topology& topo, const std::string& name);  // defined in q3.cc
AggregateCombiner<MeterReading, DailyConsumption, int64_t>
DailySumCombiner();  // defined in q3.cc

BuiltQuery BuildQ4(const sg::SmartGridData& data, QueryBuildOptions options) {
  QuerySpec spec;
  spec.name = "Q4";
  spec.total_window_span = kDayHours + kQ4JoinWindowHours;
  spec.mu_ws = kQ4JoinWindowHours;  // instance 2 holds the 1 h Join
  spec.make_source = [&data](Topology& topo, const SourceOptions& so) {
    return topo.Add<VectorSourceNode<MeterReading>>("source", data.readings,
                                                    so);
  };
  spec.build_stage1 = [](Topology& topo, Node* input) {
    auto* mux = topo.Add<MultiplexNode>("multiplex");
    auto* agg = AddDailySumAggregate(topo, "agg.daily_sum");
    auto* f_midnight = topo.Add<FilterNode<MeterReading>>(
        "filter.midnight",
        [](const MeterReading& t) { return t.ts % kDayHours == 0; });
    topo.Connect(input, mux);
    topo.Connect(mux, agg);
    topo.Connect(mux, f_midnight);
    return std::vector<Node*>{agg, f_midnight};
  };
  spec.build_stage2 = [](Topology& topo) {
    auto* join =
        topo.Add<JoinNode<DailyConsumption, MeterReading, ConsumptionDiff>>(
            "join.meter", JoinOptions{kQ4JoinWindowHours},
            [](const DailyConsumption& l, const MeterReading& r) {
              return l.meter_id == r.meter_id;
            },
            [](const DailyConsumption& l, const MeterReading& r) {
              return MakeTuple<ConsumptionDiff>(
                  /*ts=*/0, l.meter_id, std::abs(l.cons_sum - r.cons));
            });
    auto* f_alert = topo.Add<FilterNode<ConsumptionDiff>>(
        "filter.anomaly", [](const ConsumptionDiff& t) {
          return t.cons_diff > kQ4DiffThreshold;
        });
    topo.Connect(join, f_alert);
    // The Join appears twice: entry 0 = left (daily sums), entry 1 = right
    // (midnight readings), matching stage 1's exit order.
    return Stage2{{join, join}, f_alert};
  };
  return Assemble(spec, std::move(options));
}

// Q4 on the fluent builder: the only query with fan-out and a Join. Figure
// 11C's split keeps Multiplex/Aggregate/Filter on instance 1 and runs the
// Join on instance 2 — rebinding the Join's left input with At(2) places the
// operator there, and both delivering streams get their SU + MU upstream
// port automatically.
BuiltDataflow BuildQ4Fluent(const sg::SmartGridData& data,
                            QueryBuildOptions options) {
  Dataflow df(ToDataflowOptions(options));

  std::vector<Stream<MeterReading>> taps =
      df.Source<MeterReading>("source", data.readings, options.source)
          .Multiplex("multiplex", 2);
  Stream<DailyConsumption> daily = taps[0].Aggregate<DailyConsumption>(
      "agg.daily_sum",
      AggregateOptions{kDayHours, kDayHours, WindowBounds::kLeftClosedRightOpen,
                       EmitAt::kWindowEnd},
      [](const MeterReading& t) { return t.meter_id; }, DailySumCombiner());
  Stream<MeterReading> midnight = taps[1].Filter(
      "filter.midnight",
      [](const MeterReading& t) { return t.ts % kDayHours == 0; });
  if (options.distributed) daily = daily.At(2);
  daily
      .Join<ConsumptionDiff>(
          "join.meter", midnight, JoinOptions{kQ4JoinWindowHours},
          [](const DailyConsumption& l, const MeterReading& r) {
            return l.meter_id == r.meter_id;
          },
          [](const DailyConsumption& l, const MeterReading& r) {
            return MakeTuple<ConsumptionDiff>(
                /*ts=*/0, l.meter_id, std::abs(l.cons_sum - r.cons));
          })
      .Filter("filter.anomaly",
              [](const ConsumptionDiff& t) {
                return t.cons_diff > kQ4DiffThreshold;
              })
      .Sink("K", options.sink_consumer);
  return df.Build();
}

}  // namespace genealog::queries
