// Generic deployment assembly shared by the four query builders.
//
// A query is described by two operator fragments around the paper's
// distribution split (Figures 7/9C/10C/11C):
//   * stage1 — operators co-located with the Source (instance 1);
//   * stage2 — operators co-located with the data Sink (instance 2).
// stage1 can expose several delivering streams (Q4 has two); they map, in
// order, onto stage2's input entries.
//
// Assemble() then produces any of the six configurations:
//   * intra-process NP / GL / BL (everything in instance 1);
//   * distributed NP (instances 1+2), GL and BL (instances 1+2 plus the
//     provenance instance 3), with SU/MU (GL) or full source-stream shipping
//     into the baseline resolver (BL) across serializing channels.
#ifndef GENEALOG_QUERIES_ASSEMBLE_H_
#define GENEALOG_QUERIES_ASSEMBLE_H_

#include <functional>
#include <string>
#include <vector>

#include "queries/common.h"

namespace genealog::queries {

struct Stage2 {
  // Input nodes, one per stage-1 delivering stream, in order. The same node
  // may appear twice (a Join taking both streams).
  std::vector<Node*> entries;
  // The node producing the sink stream.
  Node* exit = nullptr;
};

struct QuerySpec {
  std::string name;
  // Sum of all stateful window sizes (resolver slack / provenance-sink
  // finalize slack).
  int64_t total_window_span = 0;
  // MU join window: the stateful window span of instance 2 (§6.1).
  int64_t mu_ws = 0;
  // Creates the source node inside the given topology.
  std::function<SourceNodeBase*(Topology&, const SourceOptions&)> make_source;
  // Builds stage 1, connecting `input` to its first operator; returns the
  // delivering nodes.
  std::function<std::vector<Node*>(Topology&, Node* input)> build_stage1;
  std::function<Stage2(Topology&)> build_stage2;
};

BuiltQuery Assemble(const QuerySpec& spec, QueryBuildOptions options);

}  // namespace genealog::queries

#endif  // GENEALOG_QUERIES_ASSEMBLE_H_
