// The four evaluation queries of §7.
//
//  Q1 — Linear Road, broken-down car detection (Figure 1).
//  Q2 — Linear Road, accident detection (Figure 9).
//  Q3 — Smart grid, long-term blackout detection (Figure 10).
//  Q4 — Smart grid, midnight-anomaly detection (Figure 11).
//
// Each builder assembles the query per the paper's figures in the requested
// provenance mode and deployment (see queries/common.h).
#ifndef GENEALOG_QUERIES_QUERIES_H_
#define GENEALOG_QUERIES_QUERIES_H_

#include "lr/linear_road.h"
#include "queries/common.h"
#include "smartgrid/smartgrid.h"
#include "spe/dataflow.h"

namespace genealog::queries {

// Fixed query parameters from §7.
inline constexpr int64_t kQ1WindowSize = 120;  // seconds
inline constexpr int64_t kQ1WindowAdvance = 30;
inline constexpr int64_t kQ1StopCount = 4;
inline constexpr int64_t kQ2WindowSize = 30;
inline constexpr int64_t kQ2WindowAdvance = 30;
inline constexpr int64_t kDayHours = 24;
inline constexpr int64_t kQ3ZeroMeterThreshold = 7;   // alert if count > 7
inline constexpr int64_t kQ4JoinWindowHours = 1;
inline constexpr double kQ4DiffThreshold = 200.0;

BuiltQuery BuildQ1(const lr::LinearRoadData& data, QueryBuildOptions options);
BuiltQuery BuildQ2(const lr::LinearRoadData& data, QueryBuildOptions options);
// Q1 on the fluent dataflow builder (spe/dataflow.h): the same logical query
// in ~20 lines, with the SU/MU/provenance-sink machinery woven automatically
// from `options.mode`. dataflow_equivalence_test pins its output — sink
// stream and provenance records — to the hand-wired BuildQ1 above.
BuiltDataflow BuildQ1Fluent(const lr::LinearRoadData& data,
                            QueryBuildOptions options);
BuiltQuery BuildQ3(const sg::SmartGridData& data, QueryBuildOptions options);
BuiltQuery BuildQ4(const sg::SmartGridData& data, QueryBuildOptions options);

}  // namespace genealog::queries

#endif  // GENEALOG_QUERIES_QUERIES_H_
