// The four evaluation queries of §7.
//
//  Q1 — Linear Road, broken-down car detection (Figure 1).
//  Q2 — Linear Road, accident detection (Figure 9).
//  Q3 — Smart grid, long-term blackout detection (Figure 10).
//  Q4 — Smart grid, midnight-anomaly detection (Figure 11).
//
// Each builder assembles the query per the paper's figures in the requested
// provenance mode and deployment (see queries/common.h).
#ifndef GENEALOG_QUERIES_QUERIES_H_
#define GENEALOG_QUERIES_QUERIES_H_

#include "lr/linear_road.h"
#include "queries/common.h"
#include "smartgrid/smartgrid.h"
#include "spe/dataflow.h"

namespace genealog::queries {

// Fixed query parameters from §7.
inline constexpr int64_t kQ1WindowSize = 120;  // seconds
inline constexpr int64_t kQ1WindowAdvance = 30;
inline constexpr int64_t kQ1StopCount = 4;
inline constexpr int64_t kQ2WindowSize = 30;
inline constexpr int64_t kQ2WindowAdvance = 30;
inline constexpr int64_t kDayHours = 24;
inline constexpr int64_t kQ3ZeroMeterThreshold = 7;   // alert if count > 7
inline constexpr int64_t kQ4JoinWindowHours = 1;
inline constexpr double kQ4DiffThreshold = 200.0;

BuiltQuery BuildQ1(const lr::LinearRoadData& data, QueryBuildOptions options);
BuiltQuery BuildQ2(const lr::LinearRoadData& data, QueryBuildOptions options);
BuiltQuery BuildQ3(const sg::SmartGridData& data, QueryBuildOptions options);
BuiltQuery BuildQ4(const sg::SmartGridData& data, QueryBuildOptions options);

// The same four queries on the fluent dataflow builder (spe/dataflow.h):
// each logical plan in ~20 lines, with the SU/MU/provenance-sink machinery
// woven automatically from `options.mode` and the paper's distributed split
// expressed as a single At(2) deployment cut. dataflow_equivalence_test pins
// their output — sink stream and canonical provenance — to the hand-wired
// builders above.
BuiltDataflow BuildQ1Fluent(const lr::LinearRoadData& data,
                            QueryBuildOptions options);
BuiltDataflow BuildQ2Fluent(const lr::LinearRoadData& data,
                            QueryBuildOptions options);
BuiltDataflow BuildQ3Fluent(const sg::SmartGridData& data,
                            QueryBuildOptions options);
BuiltDataflow BuildQ4Fluent(const sg::SmartGridData& data,
                            QueryBuildOptions options);

// Translates the hand-wired build options into the fluent builder's options;
// deployment cuts and sink consumers stay per-query.
inline DataflowOptions ToDataflowOptions(const QueryBuildOptions& options) {
  DataflowOptions opts;
  opts.mode = options.mode;
  opts.engine = options.engine();
  opts.provenance_file = options.provenance_file;
  opts.provenance_consumer = options.provenance_consumer;
  opts.baseline_oracle_eviction = options.baseline_oracle_eviction;
  return opts;
}

}  // namespace genealog::queries

#endif  // GENEALOG_QUERIES_QUERIES_H_
