// Shared scaffolding for the four evaluation queries (§7).
//
// Every query builds in any combination of
//   * provenance mode: NP (none) / GL (GeneaLog) / BL (Ariadne baseline),
//   * deployment: intra-process (one SPE instance) or the paper's 3-instance
//     layout (2 processing instances + 1 provenance instance, Figs. 7/9C/10C/
//     11C), connected by serializing channels (in-memory or TCP loopback).
//
// The returned BuiltQuery owns the topologies and channels and exposes the
// probe nodes the benches read: source (throughput), sink (latency), SU nodes
// (Figure 14 traversal cost), provenance sink / baseline resolver (records,
// graph sizes, on-disk volume).
#ifndef GENEALOG_QUERIES_COMMON_H_
#define GENEALOG_QUERIES_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/resolver.h"
#include "common/engine_options.h"
#include "genealog/lineage_query.h"
#include "genealog/lineage_service.h"
#include "genealog/lineage_store.h"
#include "genealog/mu.h"
#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "net/channel.h"
#include "net/send_receive.h"
#include "spe/aggregate.h"
#include "spe/join.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"

namespace genealog::queries {

// Per-query build options. The engine knobs (batch_size, spsc_edges,
// adaptive_batch, async_prov_sink, use_tcp, composed_unfolders, ...) live in
// the EngineOptions base — `options.batch_size = 64` and friends keep working
// as before, but are now the one unified knob struct every layer shares
// (common/engine_options.h). Each knob defaults to its process-wide
// GENEALOG_* environment default, so an untouched field still follows the
// environment exactly as the old optional<bool> fields did. `engine()`
// exposes the base slice for code that forwards the whole bundle.
struct QueryBuildOptions : EngineOptions {
  ProvenanceMode mode = ProvenanceMode::kNone;
  bool distributed = false;
  // Shard count for the query's key-partitioned aggregate (fluent builders
  // only; > 1 lowers the stage to KeyPartitionNode -> N replicas -> keyed
  // merge via `.KeyBy(...).Parallel(n)`). Output is emission-order-identical
  // to the single-instance build at any value.
  int parallelism = 1;
  // BL only: let the source store evict tuples that can no longer contribute
  // (an oracle the paper's baseline does not have) — the eviction ablation.
  bool baseline_oracle_eviction = false;
  // If non-empty, provenance records are persisted here (paper: on disk).
  std::string provenance_file;
  SourceOptions source;
  // Optional observers (tests, examples): called on the sink thread for each
  // sink tuple / finalized provenance record.
  SinkNode::Consumer sink_consumer;
  std::function<void(const ProvenanceRecord&)> provenance_consumer;

  const EngineOptions& engine() const { return *this; }
  EngineOptions& engine() { return *this; }
};

struct BuiltQuery {
  QueryBuildOptions options;
  std::string name;

  std::vector<std::unique_ptr<Topology>> topologies;
  std::vector<std::unique_ptr<ByteChannel>> channels;

  // Probes (non-owning; valid while topologies live).
  SourceNodeBase* source = nullptr;
  SinkNode* sink = nullptr;
  ProvenanceSinkNode* provenance_sink = nullptr;      // GL only
  BaselineResolverNode* baseline_resolver = nullptr;  // BL only
  std::vector<SuNode*> su_nodes;  // fused SU per instance (instance order)
  std::vector<SendNode*> send_nodes;  // one per inter-instance channel

  // Live lineage index (GL with EngineOptions::lineage_store only); fed by
  // the provenance sink, shared with LineageQuery handles.
  std::shared_ptr<LineageStore> lineage_store;

  // Remote serving endpoint over the store (lineage_serve_addr non-empty):
  // started before Run() and kept alive with the query, so a remote console
  // can ask while the topology executes and after it drains.
  std::shared_ptr<LineageService> lineage_service;

  // Sum of the stateful window sizes (the MU join window / resolver slack).
  int64_t total_window_span = 0;
  int n_instances = 1;

  // Handle for querying lineage while (or after) the query runs. Throws on
  // use unless the query was built with mode GL and
  // EngineOptions::lineage_store (GENEALOG_LINEAGE_STORE=1).
  LineageQuery lineage() const { return LineageQuery(lineage_store); }

  uint64_t network_bytes() const {
    uint64_t total = 0;
    for (const auto& c : channels) total += c->bytes_sent();
    return total;
  }

  // Aggregated wire-codec accounting across every Send node (frames, raw vs
  // encoded bytes; see WireStats).
  WireStats wire_stats() const {
    WireStats total;
    for (const SendNode* s : send_nodes) total += s->wire_stats();
    return total;
  }

  // Runs all topologies to completion (blocking); a failing node aborts
  // queues *and* channels, so Receive nodes blocked on a socket or frame
  // queue unwind too.
  void Run() { RunTopologies(topologies, channels); }
};

// Allocates a channel on the query (see AddChannelTo in net/channel.h).
inline ChannelEnds AddChannel(BuiltQuery& q) {
  return AddChannelTo(q.channels, q.options.use_tcp);
}

// Adds a Send node carrying the query's wire-codec knobs and registers it
// for wire_stats() aggregation.
inline SendNode* AddSend(BuiltQuery& q, Topology& topology,
                         const std::string& name, ByteChannel* channel) {
  auto* send =
      topology.Add<SendNode>(name, channel, WireCodecFrom(q.options.engine()));
  q.send_nodes.push_back(send);
  return send;
}

// Inserts an SU (fused, or composed per Figure 5B when the ablation option is
// set) between a delivering stream and its consumers. Returns the node the
// delivering stream must be connected to. SO feeds `so_consumer`, U feeds
// `u_consumer`.
inline Node* AddSu(BuiltQuery& q, Topology& topology, const std::string& name,
                   Node* so_consumer, Node* u_consumer) {
  if (q.options.composed_unfolders) {
    ComposedSu composed = BuildComposedSu(topology, name);
    topology.Connect(composed.so_node, so_consumer);
    topology.Connect(composed.u_node, u_consumer);
    return composed.entry;
  }
  auto* su = topology.Add<SuNode>(name);
  topology.Connect(su, so_consumer);  // output 0 = SO
  topology.Connect(su, u_consumer);   // output 1 = U
  q.su_nodes.push_back(su);
  return su;
}

// Inserts an MU (fused or composed per Figure 8). Returns {derived input
// node, upstream input node}; the MU output feeds `consumer`.
struct MuHandles {
  Node* derived_entry;
  Node* upstream_entry;
};
inline MuHandles AddMu(BuiltQuery& q, Topology& topology,
                       const std::string& name, int64_t ws, Node* consumer) {
  if (q.options.composed_unfolders) {
    ComposedMu composed = BuildComposedMu(topology, name, ws);
    topology.Connect(composed.output, consumer);
    return {composed.derived_entry, composed.upstream_entry};
  }
  auto* mu = topology.Add<MuNode>(name, ws);
  topology.Connect(mu, consumer);
  return {mu, mu};
}

}  // namespace genealog::queries

#endif  // GENEALOG_QUERIES_COMMON_H_
