// Shared scaffolding for the four evaluation queries (§7).
//
// Every query builds in any combination of
//   * provenance mode: NP (none) / GL (GeneaLog) / BL (Ariadne baseline),
//   * deployment: intra-process (one SPE instance) or the paper's 3-instance
//     layout (2 processing instances + 1 provenance instance, Figs. 7/9C/10C/
//     11C), connected by serializing channels (in-memory or TCP loopback).
//
// The returned BuiltQuery owns the topologies and channels and exposes the
// probe nodes the benches read: source (throughput), sink (latency), SU nodes
// (Figure 14 traversal cost), provenance sink / baseline resolver (records,
// graph sizes, on-disk volume).
#ifndef GENEALOG_QUERIES_COMMON_H_
#define GENEALOG_QUERIES_COMMON_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baseline/resolver.h"
#include "genealog/mu.h"
#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "net/channel.h"
#include "net/send_receive.h"
#include "spe/aggregate.h"
#include "spe/join.h"
#include "spe/sink.h"
#include "spe/source.h"
#include "spe/stateless.h"
#include "spe/topology.h"

namespace genealog::queries {

struct QueryBuildOptions {
  ProvenanceMode mode = ProvenanceMode::kNone;
  bool distributed = false;
  // Stream batch size for every edge of every instance (1 = unbatched
  // item-at-a-time handover, the seed data plane).
  size_t batch_size = 1;
  // Edge implementation: lock-free SPSC ring on single-producer edges when
  // true, mutex BatchQueue everywhere when false. Unset follows the process
  // default (on unless GENEALOG_SPSC_RING=0).
  std::optional<bool> spsc_edges;
  // Adaptive batch sizing (flush threshold steered within [1, batch_size]
  // by consumer queue depth). Unset follows the process default (on unless
  // GENEALOG_ADAPTIVE_BATCH=0).
  std::optional<bool> adaptive_batch;
  // Double-buffered asynchronous provenance-file writing. Unset follows the
  // process default (on unless GENEALOG_ASYNC_PROV_SINK=0); file bytes are
  // identical either way. Only meaningful with a provenance_file.
  std::optional<bool> async_prov_sink;
  // Transport for distributed deployments: TCP loopback when true, in-memory
  // serializing channels otherwise.
  bool use_tcp = false;
  // Use the composed (Figure 5B / Figure 8) SU/MU implementations instead of
  // the fused operators — the C3 demonstration and fusion ablation.
  bool composed_unfolders = false;
  // BL only: let the source store evict tuples that can no longer contribute
  // (an oracle the paper's baseline does not have) — the eviction ablation.
  bool baseline_oracle_eviction = false;
  // If non-empty, provenance records are persisted here (paper: on disk).
  std::string provenance_file;
  SourceOptions source;
  // Optional observers (tests, examples): called on the sink thread for each
  // sink tuple / finalized provenance record.
  SinkNode::Consumer sink_consumer;
  std::function<void(const ProvenanceRecord&)> provenance_consumer;
};

struct BuiltQuery {
  QueryBuildOptions options;
  std::string name;

  std::vector<std::unique_ptr<Topology>> topologies;
  std::vector<std::unique_ptr<ByteChannel>> channels;

  // Probes (non-owning; valid while topologies live).
  SourceNodeBase* source = nullptr;
  SinkNode* sink = nullptr;
  ProvenanceSinkNode* provenance_sink = nullptr;      // GL only
  BaselineResolverNode* baseline_resolver = nullptr;  // BL only
  std::vector<SuNode*> su_nodes;  // fused SU per instance (instance order)

  // Sum of the stateful window sizes (the MU join window / resolver slack).
  int64_t total_window_span = 0;
  int n_instances = 1;

  uint64_t network_bytes() const {
    uint64_t total = 0;
    for (const auto& c : channels) total += c->bytes_sent();
    return total;
  }

  // Runs all topologies to completion (blocking).
  void Run() {
    // A failing node aborts queues *and* channels, so Receive nodes blocked
    // on a socket or frame queue unwind too.
    if (!topologies.empty()) {
      for (auto& channel : channels) {
        topologies.front()->RegisterAbortable(channel.get());
      }
    }
    std::vector<Topology*> raw;
    raw.reserve(topologies.size());
    for (auto& t : topologies) raw.push_back(t.get());
    Runner runner(std::move(raw));
    runner.Start();
    runner.Join();
  }
};

// Allocates a channel on the query (TCP loopback pair collapses to one
// ByteChannel per direction; the sender handle is what Send/Receive share for
// in-memory channels).
struct ChannelEnds {
  ByteChannel* send;
  ByteChannel* recv;
};
inline ChannelEnds AddChannel(BuiltQuery& q) {
  if (q.options.use_tcp) {
    auto [sender, receiver] = MakeTcpChannelPair();
    ByteChannel* s = sender.get();
    ByteChannel* r = receiver.get();
    q.channels.push_back(std::move(sender));
    q.channels.push_back(std::move(receiver));
    return {s, r};
  }
  auto channel = std::make_unique<InMemoryChannel>();
  ByteChannel* c = channel.get();
  q.channels.push_back(std::move(channel));
  return {c, c};
}

// Inserts an SU (fused, or composed per Figure 5B when the ablation option is
// set) between a delivering stream and its consumers. Returns the node the
// delivering stream must be connected to. SO feeds `so_consumer`, U feeds
// `u_consumer`.
inline Node* AddSu(BuiltQuery& q, Topology& topology, const std::string& name,
                   Node* so_consumer, Node* u_consumer) {
  if (q.options.composed_unfolders) {
    ComposedSu composed = BuildComposedSu(topology, name);
    topology.Connect(composed.so_node, so_consumer);
    topology.Connect(composed.u_node, u_consumer);
    return composed.entry;
  }
  auto* su = topology.Add<SuNode>(name);
  topology.Connect(su, so_consumer);  // output 0 = SO
  topology.Connect(su, u_consumer);   // output 1 = U
  q.su_nodes.push_back(su);
  return su;
}

// Inserts an MU (fused or composed per Figure 8). Returns {derived input
// node, upstream input node}; the MU output feeds `consumer`.
struct MuHandles {
  Node* derived_entry;
  Node* upstream_entry;
};
inline MuHandles AddMu(BuiltQuery& q, Topology& topology,
                       const std::string& name, int64_t ws, Node* consumer) {
  if (q.options.composed_unfolders) {
    ComposedMu composed = BuildComposedMu(topology, name, ws);
    topology.Connect(composed.output, consumer);
    return {composed.derived_entry, composed.upstream_entry};
  }
  auto* mu = topology.Add<MuNode>(name, ws);
  topology.Connect(mu, consumer);
  return {mu, mu};
}

}  // namespace genealog::queries

#endif  // GENEALOG_QUERIES_COMMON_H_
