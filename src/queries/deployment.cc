#include "queries/assemble.h"

namespace genealog::queries {
namespace {

ProvenanceSinkSpec MakeProvenanceSinkSpec(const QuerySpec& spec,
                                          const BuiltQuery& q) {
  ProvenanceSinkSpec pso;
  pso.finalize_slack = spec.total_window_span;
  pso.file_path = q.options.provenance_file;
  pso.consumer = q.options.provenance_consumer;
  pso.lineage = q.lineage_store.get();
  pso.engine = q.options.engine();
  return pso;
}

BaselineResolverOptions MakeResolverOptions(const QuerySpec& spec,
                                            const QueryBuildOptions& options) {
  BaselineResolverOptions bro;
  bro.slack = spec.total_window_span;
  bro.evict = options.baseline_oracle_eviction;
  bro.file_path = options.provenance_file;
  bro.consumer = options.provenance_consumer;
  return bro;
}

// Stamps the data-plane knobs (batch size, edge kind, adaptive batching) on
// a topology. Every knob — including use_tcp and composed_unfolders read by
// the assembly below — flows through the one EngineOptions slice of the
// build options; fields left untouched carry the process-wide env defaults.
void ApplyDataPlane(Topology& topo, const QueryBuildOptions& options) {
  topo.Configure(options.engine());
}

// Intra-process deployment: everything in SPE instance 1 (Figures 1/9A/10A/11A
// plus Theorem 5.3's SU-before-Sink for GL).
void AssembleIntra(const QuerySpec& spec, BuiltQuery& q) {
  auto topology =
      std::make_unique<Topology>(/*instance_id=*/1, q.options.mode);
  ApplyDataPlane(*topology, q.options);
  Topology& topo = *topology;

  SourceNodeBase* source = spec.make_source(topo, q.options.source);
  q.source = source;
  auto* sink = topo.Add<SinkNode>("K", q.options.sink_consumer);
  q.sink = sink;

  Node* stage1_input = source;
  MultiplexNode* source_tap = nullptr;  // BL: source stream copy to resolver
  if (q.options.mode == ProvenanceMode::kBaseline) {
    source_tap = topo.Add<MultiplexNode>("bl.source_tap");
    topo.Connect(source, source_tap);
    stage1_input = source_tap;
  }

  std::vector<Node*> exits = spec.build_stage1(topo, stage1_input);
  Stage2 stage2 = spec.build_stage2(topo);
  for (size_t i = 0; i < exits.size(); ++i) {
    topo.Connect(exits[i], stage2.entries[i]);
  }

  switch (q.options.mode) {
    case ProvenanceMode::kNone:
      topo.Connect(stage2.exit, sink);
      break;
    case ProvenanceMode::kGenealog: {
      auto* psink = topo.Add<ProvenanceSinkNode>(
          "K2", MakeProvenanceSinkSpec(spec, q));
      q.provenance_sink = psink;
      Node* su = AddSu(q, topo, "SU", sink, psink);
      topo.Connect(stage2.exit, su);
      break;
    }
    case ProvenanceMode::kBaseline: {
      auto* resolver = topo.Add<BaselineResolverNode>(
          "bl.resolver", MakeResolverOptions(spec, q.options));
      q.baseline_resolver = resolver;
      auto* sink_tap = topo.Add<MultiplexNode>("bl.sink_tap");
      topo.Connect(stage2.exit, sink_tap);
      topo.Connect(sink_tap, sink);
      // Resolver port order matters: 0 = annotated sink stream, 1.. = source
      // streams.
      topo.Connect(sink_tap, resolver);
      topo.Connect(source_tap, resolver);
      break;
    }
  }

  q.n_instances = 1;
  q.topologies.push_back(std::move(topology));
}

// The paper's distributed deployment: instance 1 (source side), instance 2
// (sink side), and — for GL/BL — instance 3 recording provenance.
void AssembleDistributed(const QuerySpec& spec, BuiltQuery& q) {
  auto topo1 = std::make_unique<Topology>(1, q.options.mode);
  auto topo2 = std::make_unique<Topology>(2, q.options.mode);
  ApplyDataPlane(*topo1, q.options);
  ApplyDataPlane(*topo2, q.options);
  std::unique_ptr<Topology> topo3;

  SourceNodeBase* source = spec.make_source(*topo1, q.options.source);
  q.source = source;
  auto* sink = topo2->Add<SinkNode>("K", q.options.sink_consumer);
  q.sink = sink;

  // Instance 1 body.
  Node* stage1_input = source;
  MultiplexNode* source_tap = nullptr;
  if (q.options.mode == ProvenanceMode::kBaseline) {
    source_tap = topo1->Add<MultiplexNode>("bl.source_tap");
    topo1->Connect(source, source_tap);
    stage1_input = source_tap;
  }
  std::vector<Node*> exits = spec.build_stage1(*topo1, stage1_input);

  // Instance 2 body.
  Stage2 stage2 = spec.build_stage2(*topo2);

  switch (q.options.mode) {
    case ProvenanceMode::kNone: {
      // Data channels only: exit_i -> Send ~~> Receive -> entry_i.
      for (size_t i = 0; i < exits.size(); ++i) {
        ChannelEnds ch = AddChannel(q);
        auto* send = AddSend(q, *topo1, "send.data" + std::to_string(i), ch.send);
        auto* recv = topo2->Add<ReceiveNode>("recv.data" + std::to_string(i),
                                             ch.recv);
        topo1->Connect(exits[i], send);
        topo2->Connect(recv, stage2.entries[i]);
      }
      topo2->Connect(stage2.exit, sink);
      q.n_instances = 2;
      break;
    }
    case ProvenanceMode::kGenealog: {
      topo3 = std::make_unique<Topology>(3, q.options.mode);
      ApplyDataPlane(*topo3, q.options);
      auto* psink = topo3->Add<ProvenanceSinkNode>(
          "K2", MakeProvenanceSinkSpec(spec, q));
      q.provenance_sink = psink;
      MuHandles mu = AddMu(q, *topo3, "MU", spec.mu_ws, psink);

      // Derived stream first: SU before the Sink at instance 2, its U sent to
      // the MU's derived port (port 0).
      ChannelEnds ch_derived = AddChannel(q);
      auto* send_derived = AddSend(q, *topo2, "send.U_sink", ch_derived.send);
      auto* recv_derived = topo3->Add<ReceiveNode>("recv.U_sink",
                                                   ch_derived.recv);
      Node* su2 = AddSu(q, *topo2, "SU.sink", sink, send_derived);
      topo2->Connect(stage2.exit, su2);
      topo3->Connect(recv_derived, mu.derived_entry);  // MU port 0

      // One SU before each Send at instance 1; each U stream becomes an MU
      // upstream port.
      for (size_t i = 0; i < exits.size(); ++i) {
        ChannelEnds ch_data = AddChannel(q);
        auto* send_data = AddSend(q, *topo1, "send.data" + std::to_string(i), ch_data.send);
        auto* recv_data = topo2->Add<ReceiveNode>(
            "recv.data" + std::to_string(i), ch_data.recv);
        ChannelEnds ch_u = AddChannel(q);
        auto* send_u = AddSend(q, *topo1, "send.U" + std::to_string(i), ch_u.send);
        auto* recv_u = topo3->Add<ReceiveNode>("recv.U" + std::to_string(i),
                                               ch_u.recv);
        Node* su1 = AddSu(q, *topo1, "SU.send" + std::to_string(i), send_data,
                          send_u);
        topo1->Connect(exits[i], su1);
        topo2->Connect(recv_data, stage2.entries[i]);
        topo3->Connect(recv_u, mu.upstream_entry);  // MU ports 1..
      }
      q.n_instances = 3;
      break;
    }
    case ProvenanceMode::kBaseline: {
      topo3 = std::make_unique<Topology>(3, q.options.mode);
      ApplyDataPlane(*topo3, q.options);
      auto* resolver = topo3->Add<BaselineResolverNode>(
          "bl.resolver", MakeResolverOptions(spec, q.options));
      q.baseline_resolver = resolver;

      // Annotated sink stream to the resolver (port 0).
      ChannelEnds ch_sink = AddChannel(q);
      auto* send_sink = AddSend(q, *topo2, "send.sink_ann", ch_sink.send);
      auto* recv_sink = topo3->Add<ReceiveNode>("recv.sink_ann", ch_sink.recv);
      auto* sink_tap = topo2->Add<MultiplexNode>("bl.sink_tap");
      topo2->Connect(stage2.exit, sink_tap);
      topo2->Connect(sink_tap, sink);
      topo2->Connect(sink_tap, send_sink);
      topo3->Connect(recv_sink, resolver);  // port 0

      // The whole source stream shipped to the provenance node (port 1) —
      // the network cost §7 observes sinking the distributed baseline.
      ChannelEnds ch_src = AddChannel(q);
      auto* send_src = AddSend(q, *topo1, "send.source_copy", ch_src.send);
      auto* recv_src = topo3->Add<ReceiveNode>("recv.source_copy", ch_src.recv);
      topo1->Connect(source_tap, send_src);
      topo3->Connect(recv_src, resolver);  // port 1

      // Data channels.
      for (size_t i = 0; i < exits.size(); ++i) {
        ChannelEnds ch_data = AddChannel(q);
        auto* send = AddSend(q, *topo1, "send.data" + std::to_string(i), ch_data.send);
        auto* recv = topo2->Add<ReceiveNode>("recv.data" + std::to_string(i),
                                             ch_data.recv);
        topo1->Connect(exits[i], send);
        topo2->Connect(recv, stage2.entries[i]);
      }
      q.n_instances = 3;
      break;
    }
  }

  q.topologies.push_back(std::move(topo1));
  q.topologies.push_back(std::move(topo2));
  if (topo3 != nullptr) q.topologies.push_back(std::move(topo3));
}

}  // namespace

BuiltQuery Assemble(const QuerySpec& spec, QueryBuildOptions options) {
  BuiltQuery q;
  q.options = std::move(options);
  q.name = spec.name;
  q.total_window_span = spec.total_window_span;
  // The live lineage index is created before assembly so the provenance sink
  // can be handed its pointer; GL only (BL records resolve through the
  // resolver path, NP records nothing). A serve address implies the store —
  // there is nothing to serve without one.
  if (q.options.mode == ProvenanceMode::kGenealog &&
      (q.options.lineage_store || !q.options.lineage_serve_addr.empty())) {
    q.lineage_store =
        std::make_shared<LineageStore>(MakeLineageOptions(q.options.engine()));
  }
  if (q.options.distributed) {
    AssembleDistributed(spec, q);
  } else {
    AssembleIntra(spec, q);
  }
  // Remote lineage serving rides on the store: bind the endpoint before the
  // caller runs the query so a console can attach from the first record.
  if (q.lineage_store != nullptr && !q.options.lineage_serve_addr.empty()) {
    q.lineage_service = std::make_shared<LineageService>(
        q.lineage_store, ParseServeAddr(q.options.lineage_serve_addr));
    q.lineage_service->Start();
  }
  return q;
}

}  // namespace genealog::queries
