// Q3 — Long-term blackout detection (smart grid, Figure 10).
//
//   Source -> Aggregate(sum(cons); WS = WA = 1 day, group-by meter_id)
//          -> Filter(cons_sum == 0)
//          -> Aggregate(count(); WS = WA = 1 day)
//          -> Filter(count > 7) -> Sink
//
// The daily sums are emitted at window end (ts = midnight closing the day),
// so all zero-day tuples of one day share a timestamp and land in a single
// counting window. With the paper's parameters, 8 blacked-out meters × 24
// hourly readings = 192 source tuples contribute to each sink tuple.
//
// Distributed split (Figure 10C): instance 1 = Source + Aggregate + Filter,
// instance 2 = Aggregate + Filter + Sink.
#include "queries/assemble.h"
#include "queries/queries.h"

namespace genealog::queries {

using sg::DailyConsumption;
using sg::MeterReading;
using sg::ZeroDayCount;

// Shared with q4.cc's fluent builder (both queries open with the daily sum).
AggregateCombiner<MeterReading, DailyConsumption, int64_t> DailySumCombiner() {
  return [](const WindowView<MeterReading, int64_t>& w) {
    double sum = 0.0;
    for (const auto& t : w.tuples) sum += t->cons;
    return MakeTuple<DailyConsumption>(/*ts=*/0, /*meter_id=*/w.key, sum);
  };
}

// Shared with q4.cc.
AggregateNode<MeterReading, DailyConsumption>* AddDailySumAggregate(
    Topology& topo, const std::string& name) {
  return topo.Add<AggregateNode<MeterReading, DailyConsumption>>(
      name,
      AggregateOptions{kDayHours, kDayHours, WindowBounds::kLeftClosedRightOpen,
                       EmitAt::kWindowEnd},
      [](const MeterReading& t) { return t.meter_id; }, DailySumCombiner());
}

BuiltQuery BuildQ3(const sg::SmartGridData& data, QueryBuildOptions options) {
  QuerySpec spec;
  spec.name = "Q3";
  spec.total_window_span = kDayHours + kDayHours;
  spec.mu_ws = kDayHours;  // instance 2 holds the counting day-Aggregate
  spec.make_source = [&data](Topology& topo, const SourceOptions& so) {
    return topo.Add<VectorSourceNode<MeterReading>>("source", data.readings,
                                                    so);
  };
  spec.build_stage1 = [](Topology& topo, Node* input) {
    auto* agg = AddDailySumAggregate(topo, "agg.daily_sum");
    auto* f_zero = topo.Add<FilterNode<DailyConsumption>>(
        "filter.zero_sum",
        [](const DailyConsumption& t) { return t.cons_sum == 0.0; });
    topo.Connect(input, agg);
    topo.Connect(agg, f_zero);
    return std::vector<Node*>{f_zero};
  };
  spec.build_stage2 = [](Topology& topo) {
    auto* agg = topo.Add<AggregateNode<DailyConsumption, ZeroDayCount>>(
        "agg.zero_count",
        AggregateOptions{kDayHours, kDayHours,
                         WindowBounds::kLeftClosedRightOpen,
                         EmitAt::kWindowStart},
        [](const DailyConsumption&) { return int64_t{0}; },
        [](const WindowView<DailyConsumption, int64_t>& w) {
          return MakeTuple<ZeroDayCount>(
              /*ts=*/0, static_cast<int64_t>(w.tuples.size()));
        });
    auto* f_alert = topo.Add<FilterNode<ZeroDayCount>>(
        "filter.blackout",
        [](const ZeroDayCount& t) { return t.count > kQ3ZeroMeterThreshold; });
    topo.Connect(agg, f_alert);
    return Stage2{{agg}, f_alert};
  };
  return Assemble(spec, std::move(options));
}

// Q3 on the fluent builder; Figure 10C's split cuts between the zero-sum
// filter (instance 1) and the counting day-aggregate (instance 2).
BuiltDataflow BuildQ3Fluent(const sg::SmartGridData& data,
                            QueryBuildOptions options) {
  Dataflow df(ToDataflowOptions(options));

  Stream<DailyConsumption> zero_days =
      df.Source<MeterReading>("source", data.readings, options.source)
          .Aggregate<DailyConsumption>(
              "agg.daily_sum",
              AggregateOptions{kDayHours, kDayHours,
                               WindowBounds::kLeftClosedRightOpen,
                               EmitAt::kWindowEnd},
              [](const MeterReading& t) { return t.meter_id; },
              DailySumCombiner())
          .Filter("filter.zero_sum", [](const DailyConsumption& t) {
            return t.cons_sum == 0.0;
          });
  if (options.distributed) zero_days = zero_days.At(2);
  zero_days
      .Aggregate<ZeroDayCount>(
          "agg.zero_count",
          AggregateOptions{kDayHours, kDayHours,
                           WindowBounds::kLeftClosedRightOpen,
                           EmitAt::kWindowStart},
          [](const DailyConsumption&) { return int64_t{0}; },
          [](const WindowView<DailyConsumption, int64_t>& w) {
            return MakeTuple<ZeroDayCount>(
                /*ts=*/0, static_cast<int64_t>(w.tuples.size()));
          })
      .Filter("filter.blackout",
              [](const ZeroDayCount& t) {
                return t.count > kQ3ZeroMeterThreshold;
              })
      .Sink("K", options.sink_consumer);
  return df.Build();
}

}  // namespace genealog::queries
