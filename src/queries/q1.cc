// Q1 — Detecting broken-down cars (Linear Road, Figure 1).
//
//   Source -> Filter(speed == 0)
//          -> Aggregate(count(), distinct(pos), last(pos);
//                       WS = 120 s, WA = 30 s, group-by car_id)
//          -> Filter(count == 4 AND dist_pos == 1) -> Sink
//
// A car is stopped when at least four consecutive position reports (one
// every 30 s) have zero speed and the same position: a [s, s+120) window
// holds exactly four reports of a car, so count == 4 with one distinct
// position is precisely that condition. Four source tuples contribute to
// each sink tuple. The distributed split (Figure 7) places Source+Filter on
// instance 1 and Aggregate+Filter+Sink on instance 2.
#include <set>

#include "queries/assemble.h"
#include "queries/queries.h"

namespace genealog::queries {

using lr::PositionReport;
using lr::StoppedCarStats;

// Shared with q2.cc's fluent builder (the Q2 plan starts with the whole Q1
// chain).
AggregateCombiner<PositionReport, StoppedCarStats, int64_t>
StoppedCarCombiner() {
  return [](const WindowView<PositionReport, int64_t>& w) {
    std::set<int64_t> positions;
    for (const auto& t : w.tuples) positions.insert(t->pos);
    return MakeTuple<StoppedCarStats>(
        /*ts=*/0, /*car_id=*/w.key, static_cast<int64_t>(w.tuples.size()),
        static_cast<int64_t>(positions.size()), w.tuples.back()->pos);
  };
}

// Shared with q2.cc: builds Filter(speed==0) -> Aggregate -> Filter(stopped)
// and returns the final node.
Node* BuildStoppedCarChain(Topology& topo, Node* input,
                           const std::string& prefix) {
  auto* f_zero = topo.Add<FilterNode<PositionReport>>(
      prefix + "filter.speed0",
      [](const PositionReport& t) { return t.speed == 0.0; });
  auto* agg = topo.Add<AggregateNode<PositionReport, StoppedCarStats>>(
      prefix + "agg.stopped",
      AggregateOptions{kQ1WindowSize, kQ1WindowAdvance,
                       WindowBounds::kLeftClosedRightOpen,
                       EmitAt::kWindowStart},
      [](const PositionReport& t) { return t.car_id; }, StoppedCarCombiner());
  auto* f_stopped = topo.Add<FilterNode<StoppedCarStats>>(
      prefix + "filter.stopped", [](const StoppedCarStats& t) {
        return t.count == kQ1StopCount && t.dist_pos == 1;
      });
  topo.Connect(input, f_zero);
  topo.Connect(f_zero, agg);
  topo.Connect(agg, f_stopped);
  return f_stopped;
}

BuiltQuery BuildQ1(const lr::LinearRoadData& data, QueryBuildOptions options) {
  QuerySpec spec;
  spec.name = "Q1";
  spec.total_window_span = kQ1WindowSize;
  spec.mu_ws = kQ1WindowSize;  // instance 2 holds the 120 s Aggregate
  spec.make_source = [&data](Topology& topo, const SourceOptions& so) {
    return topo.Add<VectorSourceNode<PositionReport>>("source", data.reports,
                                                      so);
  };
  // Figure 7: instance 1 = Source + Filter; instance 2 = Aggregate + Filter.
  spec.build_stage1 = [](Topology& topo, Node* input) {
    auto* f_zero = topo.Add<FilterNode<PositionReport>>(
        "filter.speed0",
        [](const PositionReport& t) { return t.speed == 0.0; });
    topo.Connect(input, f_zero);
    return std::vector<Node*>{f_zero};
  };
  spec.build_stage2 = [](Topology& topo) {
    auto* agg = topo.Add<AggregateNode<PositionReport, StoppedCarStats>>(
        "agg.stopped",
        AggregateOptions{kQ1WindowSize, kQ1WindowAdvance,
                         WindowBounds::kLeftClosedRightOpen,
                         EmitAt::kWindowStart},
        [](const PositionReport& t) { return t.car_id; },
        StoppedCarCombiner());
    auto* f_stopped = topo.Add<FilterNode<StoppedCarStats>>(
        "filter.stopped", [](const StoppedCarStats& t) {
          return t.count == kQ1StopCount && t.dist_pos == 1;
        });
    topo.Connect(agg, f_stopped);
    return Stage2{{agg}, f_stopped};
  };
  return Assemble(spec, std::move(options));
}

// The same query on the fluent builder: the logical plan is the Figure 1
// chain plus a deployment cut (Figure 7) when distributed; everything the
// hand-wired builder spells out — SU/MU placement, provenance sink,
// channels, ports — is woven by Dataflow::Build from options.mode. With
// options.parallelism > 1 the aggregate runs as a key-partitioned parallel
// stage (the Aggregate shorthand for .KeyBy(car_id).Parallel(n)); output and
// provenance are identical to the single-instance build either way.
BuiltDataflow BuildQ1Fluent(const lr::LinearRoadData& data,
                            QueryBuildOptions options) {
  Dataflow df(ToDataflowOptions(options));

  Stream<PositionReport> reports =
      df.Source<PositionReport>("source", data.reports, options.source)
          .Filter("filter.speed0",
                  [](const PositionReport& t) { return t.speed == 0.0; });
  // Figure 7: Source + Filter on instance 1, the rest on instance 2.
  if (options.distributed) reports = reports.At(2);
  const AggregateOptions agg_options{kQ1WindowSize, kQ1WindowAdvance,
                                     WindowBounds::kLeftClosedRightOpen,
                                     EmitAt::kWindowStart};
  const auto key_fn = [](const PositionReport& t) { return t.car_id; };
  Stream<StoppedCarStats> stats =
      options.parallelism > 1
          ? reports.Aggregate<StoppedCarStats>("agg.stopped", agg_options,
                                               key_fn, StoppedCarCombiner(),
                                               options.parallelism)
          : reports.Aggregate<StoppedCarStats>("agg.stopped", agg_options,
                                               key_fn, StoppedCarCombiner());
  stats
      .Filter("filter.stopped",
              [](const StoppedCarStats& t) {
                return t.count == kQ1StopCount && t.dist_pos == 1;
              })
      .Sink("K", options.sink_consumer);
  return df.Build();
}

}  // namespace genealog::queries
