// Polymorphic tuple (de)serialization.
//
// A tuple crossing a Send/Receive boundary is flattened to bytes:
//   u16 type_tag | u8 kind | i64 ts | u64 id | i64 stimulus | payload...
// and rebuilt on the receiving side as a *fresh object* whose meta-attribute
// pointers are null — exactly the property §6 builds on (pointers cannot
// cross processes; only SOURCE/REMOTE typing, ids and payloads survive).
//
// Concrete tuple types self-register via RegisterTupleType, typically through
// an inline namespace-scope registration constant in the schema header, so
// any binary that can name the type can also deserialize it.
#ifndef GENEALOG_CORE_TYPE_REGISTRY_H_
#define GENEALOG_CORE_TYPE_REGISTRY_H_

#include <cstdint>
#include <functional>

#include "common/serialize.h"
#include "core/tuple.h"

namespace genealog {

// Reads the payload (everything after the common header) and returns a fresh
// tuple of the registered type with ts 0; header fields are applied by
// DeserializeTuple.
using PayloadDeserializer = TuplePtr (*)(ByteReader& r, int64_t ts);

// Registers `tag`. Re-registering the same tag with the same name is a no-op
// (inline registration constants are emitted once per translation unit);
// conflicting registrations abort.
bool RegisterTupleType(uint16_t tag, const char* name, PayloadDeserializer fn);

void SerializeTuple(const Tuple& t, ByteWriter& w);

// Serializes with the kind GeneaLog's instrumented Send uses on the wire:
// REMOTE unless the tuple is a SOURCE tuple (§4.1, Send). The local object is
// left untouched because local provenance graphs may still reference it.
void SerializeTupleForSend(const Tuple& t, ByteWriter& w);

TuplePtr DeserializeTuple(ByteReader& r);

// Well-known type tags. Tests use tags >= 0x7000.
namespace tags {
inline constexpr uint16_t kPositionReport = 1;
inline constexpr uint16_t kStoppedCarStats = 2;
inline constexpr uint16_t kAccidentStats = 3;
inline constexpr uint16_t kMeterReading = 4;
inline constexpr uint16_t kDailyConsumption = 5;
inline constexpr uint16_t kZeroDayCount = 6;
inline constexpr uint16_t kConsumptionDiff = 7;
inline constexpr uint16_t kUnfolded = 8;
inline constexpr uint16_t kBaselineSinkReport = 9;
}  // namespace tags

}  // namespace genealog

#endif  // GENEALOG_CORE_TYPE_REGISTRY_H_
