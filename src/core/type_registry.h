// Polymorphic tuple (de)serialization.
//
// A tuple crossing a Send/Receive boundary is flattened to bytes:
//   u16 type_tag | u8 kind | i64 ts | u64 id | i64 stimulus | payload...
// and rebuilt on the receiving side as a *fresh object* whose meta-attribute
// pointers are null — exactly the property §6 builds on (pointers cannot
// cross processes; only SOURCE/REMOTE typing, ids and payloads survive).
//
// Concrete tuple types self-register via RegisterTupleType, typically through
// an inline namespace-scope registration constant in the schema header, so
// any binary that can name the type can also deserialize it.
#ifndef GENEALOG_CORE_TYPE_REGISTRY_H_
#define GENEALOG_CORE_TYPE_REGISTRY_H_

#include <cstdint>
#include <functional>

#include "common/serialize.h"
#include "core/tuple.h"

namespace genealog {

// Reads the payload (everything after the common header) and returns a fresh
// tuple of the registered type with ts 0; header fields are applied by
// DeserializeTuple.
using PayloadDeserializer = TuplePtr (*)(ByteReader& r, int64_t ts);

// Clones `t`, whose dynamic type is the registered type, without virtual
// dispatch (the CRTP base supplies the implementation: a statically-typed
// copy construction through MakeTuple, with the pool size class resolved at
// compile time). Same contract as Tuple::CloneTuple.
using TupleCloner = TuplePtr (*)(const Tuple& t);

// Registers `tag`. Re-registering the same tag with the same name is a no-op
// (inline registration constants are emitted once per translation unit);
// conflicting registrations abort.
bool RegisterTupleType(uint16_t tag, const char* name, PayloadDeserializer fn,
                       TupleCloner cloner = nullptr);

// The registered same-class cloner for `tag`; null when the tag is unknown
// or was registered without one.
TupleCloner ClonerForTag(uint16_t tag);

// The registered payload deserializer for `tag`; null when the tag is
// unknown. The compact wire codec (net/frame.h) reconstructs tuple headers
// itself and needs direct payload access, where DeserializeTuple expects the
// raw header-plus-payload layout.
PayloadDeserializer DeserializerForTag(uint16_t tag);

// Same-class CloneTuple fast path. Cloning runs of same-typed tuples — a
// Multiplex output chunk, a Router fan-out — normally pays two virtual
// dispatches per copy (type_tag via clone). The cache keys the registered
// direct-call cloner on the tag MakeTuple stamped into the tuple header
// (Tuple::fast_type_tag), resolving it once per distinct tag and reusing it
// while the type stays the same, and falls back to the virtual CloneTuple
// for unstamped or unregistered types. Not thread-safe; keep one per
// operator (operators are single-threaded).
class CloneCache {
 public:
  TuplePtr Clone(const Tuple& t) {
    const uint16_t tag = t.fast_type_tag();
    if (tag == 0) return t.CloneTuple();
    if (tag != tag_) {
      tag_ = tag;
      cloner_ = ClonerForTag(tag);
    }
    return cloner_ != nullptr ? cloner_(t) : t.CloneTuple();
  }

 private:
  uint16_t tag_ = 0;
  TupleCloner cloner_ = nullptr;
};

void SerializeTuple(const Tuple& t, ByteWriter& w);

// Serializes with the kind GeneaLog's instrumented Send uses on the wire:
// REMOTE unless the tuple is a SOURCE tuple (§4.1, Send). The local object is
// left untouched because local provenance graphs may still reference it.
void SerializeTupleForSend(const Tuple& t, ByteWriter& w);

TuplePtr DeserializeTuple(ByteReader& r);

// Well-known type tags. Tests use tags >= 0x7000.
namespace tags {
inline constexpr uint16_t kPositionReport = 1;
inline constexpr uint16_t kStoppedCarStats = 2;
inline constexpr uint16_t kAccidentStats = 3;
inline constexpr uint16_t kMeterReading = 4;
inline constexpr uint16_t kDailyConsumption = 5;
inline constexpr uint16_t kZeroDayCount = 6;
inline constexpr uint16_t kConsumptionDiff = 7;
inline constexpr uint16_t kUnfolded = 8;
inline constexpr uint16_t kBaselineSinkReport = 9;
}  // namespace tags

}  // namespace genealog

#endif  // GENEALOG_CORE_TYPE_REGISTRY_H_
