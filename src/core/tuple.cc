#include "core/tuple.h"

#include <cassert>
#include <vector>

namespace genealog {

const char* ToString(TupleKind kind) {
  switch (kind) {
    case TupleKind::kSource:
      return "SOURCE";
    case TupleKind::kMap:
      return "MAP";
    case TupleKind::kMultiplex:
      return "MULTIPLEX";
    case TupleKind::kJoin:
      return "JOIN";
    case TupleKind::kAggregate:
      return "AGGREGATE";
    case TupleKind::kRemote:
      return "REMOTE";
  }
  return "?";
}

Tuple::~Tuple() {
  // Meta pointers are detached by the release cascade before deletion; a
  // tuple destroyed with pointers still set would leak its references.
  assert(u1_ == nullptr && u2_ == nullptr &&
         next_.load(std::memory_order_relaxed) == nullptr);
}

void Tuple::set_u1(Tuple* t) {
  Tuple* old = u1_;
  if (t != nullptr) intrusive_ref(t);
  u1_ = t;
  if (old != nullptr) intrusive_unref(old);
}

void Tuple::set_u2(Tuple* t) {
  Tuple* old = u2_;
  if (t != nullptr) intrusive_ref(t);
  u2_ = t;
  if (old != nullptr) intrusive_unref(old);
}

bool Tuple::try_set_next(Tuple* t) {
  if (t == nullptr) return false;
  intrusive_ref(t);
  Tuple* expected = nullptr;
  if (next_.compare_exchange_strong(expected, t, std::memory_order_release,
                                    std::memory_order_acquire)) {
    return true;
  }
  // Already linked. Sliding windows re-link the same successor; anything else
  // would mean one tuple object was consumed into the state of two different
  // stateful operators, which the topology rules out.
  intrusive_unref(t);
  assert(expected == t);
  return expected == t;
}

void Tuple::set_baseline_annotation(std::vector<uint64_t> ids) {
  const int64_t bytes =
      static_cast<int64_t>(ids.capacity() * sizeof(uint64_t)) +
      static_cast<int64_t>(sizeof(std::vector<uint64_t>));
  bl_ = std::make_unique<std::vector<uint64_t>>(std::move(ids));
  accounted_bytes_ += bytes;
  mem::Add(owner_instance_, bytes);
}

void Tuple::FinishAccounting() {
  owner_instance_ = mem::CurrentInstance();
  accounted_bytes_ =
      static_cast<int64_t>(SelfBytes()) + static_cast<int64_t>(DynamicBytes());
  mem::Add(owner_instance_, accounted_bytes_);
  mem::AddTupleCount(1);
}

void intrusive_unref(const Tuple* tc) noexcept {
  Tuple* t = const_cast<Tuple*>(tc);
  if (t->refs_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  // Iterative cascade: releasing a sink tuple reclaims its whole contribution
  // graph. Children are detached before destruction so ~Tuple never recurses
  // through U1/U2/N (an Aggregate N-chain can be arbitrarily long). Storage
  // is recycled into the tuple pool under the size class stamped at
  // MakeTuple time — the releasing thread's cache, which keeps cross-thread
  // release (producer allocates, downstream drops the last ref) a local
  // operation.
  std::vector<Tuple*> dead;
  dead.push_back(t);
  while (!dead.empty()) {
    Tuple* d = dead.back();
    dead.pop_back();
    Tuple* children[3] = {d->u1_, d->u2_,
                          d->next_.load(std::memory_order_acquire)};
    d->u1_ = nullptr;
    d->u2_ = nullptr;
    d->next_.store(nullptr, std::memory_order_relaxed);
    mem::Sub(d->owner_instance_, d->accounted_bytes_);
    mem::AddTupleCount(-1);
    const uint8_t pool_class = d->pool_class_;
    d->~Tuple();  // virtual: destroys the most-derived tuple
    pool::Deallocate(d, pool_class);
    for (Tuple* child : children) {
      if (child != nullptr &&
          child->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        dead.push_back(child);
      }
    }
  }
}

}  // namespace genealog
