// CRTP convenience base implementing the boilerplate of the Tuple interface
// (type tag, clone, static size) for concrete schema types. A schema type is
// declared as:
//
//   struct PositionReport final
//       : TupleCrtp<PositionReport, tags::kPositionReport> {
//     PositionReport(int64_t ts, int64_t car_id, double speed, int64_t pos);
//     int64_t car_id; double speed; int64_t pos;
//     void SerializePayload(ByteWriter&) const override;
//     static TuplePtr Deserialize(ByteReader&, int64_t ts);
//     ...
//   };
//   GENEALOG_REGISTER_TUPLE(PositionReport);
#ifndef GENEALOG_CORE_TUPLE_CRTP_H_
#define GENEALOG_CORE_TUPLE_CRTP_H_

#include <type_traits>

#include "core/tuple.h"
#include "core/type_registry.h"

namespace genealog {

template <typename Derived, uint16_t Tag>
class TupleCrtp : public Tuple {
 public:
  static constexpr uint16_t kTypeTag = Tag;

  using Tuple::Tuple;

  uint16_t type_tag() const final { return Tag; }

  size_t SelfBytes() const final { return sizeof(Derived); }

  TuplePtr CloneTuple() const final {
    // Schema types must be final: clone and the pool both size storage as
    // sizeof(Derived), so an object more derived than Derived would be
    // sliced into a too-small size class.
    static_assert(std::is_final_v<Derived>,
                  "tuple schema types must be declared final");
    return MakeTuple<Derived>(static_cast<const Derived&>(*this));
  }

  // The registered same-class cloner (see CloneCache in type_registry.h):
  // identical to CloneTuple, but reached through a plain function pointer
  // keyed on the tuple's stamped tag, so hot cloning paths skip virtual
  // dispatch. The caller guarantees t's dynamic type is Derived.
  static TuplePtr CloneFromBase(const Tuple& t) {
    return MakeTuple<Derived>(static_cast<const Derived&>(t));
  }

 protected:
  TupleCrtp(const TupleCrtp&) = default;
};

// Emits a registration constant; place at namespace scope in the header
// declaring `Type`, after the type definition. `Type` must provide
// `static TuplePtr Deserialize(ByteReader&, int64_t ts)` and `kTypeName`.
#define GENEALOG_REGISTER_TUPLE(Type)                                 \
  inline const bool kTupleRegistration_##Type =                       \
      ::genealog::RegisterTupleType(Type::kTypeTag, Type::kTypeName,  \
                                    &Type::Deserialize,               \
                                    &Type::CloneFromBase)

}  // namespace genealog

#endif  // GENEALOG_CORE_TUPLE_CRTP_H_
