// The tuple model.
//
// Every tuple flowing through the engine derives from Tuple, which carries:
//  * ts        — the application timestamp (§2: attribute ts);
//  * id        — a 64-bit unique id (producer node uid + sequence, §6);
//  * stimulus  — wall-clock ns of the latest contributing source tuple,
//                maintained for the paper's latency metric;
//  * the four GeneaLog meta-attributes (§4): kind (T), u1 (U1), u2 (U2) and
//    next (N), the latter three being *owning* references into the
//    contribution graph;
//  * an optional baseline (Ariadne-style) variable-length annotation.
//
// Reclamation reproduces the paper's C2 property: the JVM's reachability-based
// garbage collection is replaced by intrusive reference counting. A source
// tuple stays alive exactly as long as some downstream tuple (transitively)
// references it through U1/U2/N; dropping the last reference reclaims the
// whole contribution graph via an iterative cascade (never recursive, so
// arbitrarily long Aggregate N-chains cannot overflow the stack). The cascade
// does not free storage to the OS: blocks recycle into the tuple pool
// (common/tuple_pool.h) the next MakeTuple draws from.
#ifndef GENEALOG_CORE_TUPLE_H_
#define GENEALOG_CORE_TUPLE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/intrusive_ptr.h"
#include "common/memory_accounting.h"
#include "common/serialize.h"
#include "common/tuple_pool.h"

namespace genealog {

// The GeneaLog Type (T) meta-attribute (§4): which operator created the tuple.
// Forwarding operators (Filter, Union) define no value, per the paper.
enum class TupleKind : uint8_t {
  kSource = 0,
  kMap = 1,
  kMultiplex = 2,
  kJoin = 3,
  kAggregate = 4,
  kRemote = 5,
};

const char* ToString(TupleKind kind);

class Tuple;
using TuplePtr = IntrusivePtr<Tuple>;

void intrusive_ref(const Tuple* t) noexcept;
void intrusive_unref(const Tuple* t) noexcept;

class Tuple {
 public:
  explicit Tuple(int64_t ts) : ts(ts) {}
  virtual ~Tuple();

  Tuple& operator=(const Tuple&) = delete;

  int64_t ts = 0;
  uint64_t id = 0;
  int64_t stimulus = 0;
  TupleKind kind = TupleKind::kSource;

  // --- GeneaLog meta-attribute accessors -----------------------------------
  Tuple* u1() const { return u1_; }
  Tuple* u2() const { return u2_; }
  Tuple* next() const { return next_.load(std::memory_order_acquire); }

  // Owning setters; a previously set pointer is released. Set by the operator
  // that creates the tuple, before the tuple is emitted downstream.
  void set_u1(Tuple* t);
  void set_u2(Tuple* t);

  // Set-once CAS for the Aggregate N-chain. Sliding windows legitimately
  // re-link the same successor; the CAS makes the second attempt a no-op.
  // Returns true if `t` is the link after the call (set now or already equal).
  bool try_set_next(Tuple* t);

  // --- Baseline (Ariadne-style) annotation ----------------------------------
  // Sorted, deduplicated list of contributing source-tuple ids. Immutable once
  // set. Null unless the query runs in baseline provenance mode.
  const std::vector<uint64_t>* baseline_annotation() const { return bl_.get(); }
  void set_baseline_annotation(std::vector<uint64_t> ids);

  // --- Polymorphic payload interface ----------------------------------------
  virtual uint16_t type_tag() const = 0;
  virtual const char* type_name() const = 0;
  // Copies ts, stimulus and the payload into a fresh tuple; id, kind and all
  // meta-attributes are left at their defaults (the creating operator
  // instruments the clone). Used by Multiplex.
  virtual TuplePtr CloneTuple() const = 0;
  virtual void SerializePayload(ByteWriter& w) const = 0;
  // Static footprint of the object, for memory accounting.
  virtual size_t SelfBytes() const = 0;
  // Dynamic payload bytes (strings, vectors); default none.
  virtual size_t DynamicBytes() const { return 0; }
  // Human-readable payload, for examples and debugging.
  virtual std::string DebugPayload() const { return ""; }

  int owner_instance() const { return owner_instance_; }

  // The dynamic type tag without virtual dispatch: MakeTuple stamps
  // T::kTypeTag into the header at construction time, so hot cloning paths
  // (Multiplex/Router chunks) can key a cached direct-call cloner on it
  // instead of paying the type_tag()/CloneTuple() vtable pair per tuple (see
  // CloneCache in core/type_registry.h). 0 = unknown (a type built outside
  // the CRTP that declares no kTypeTag); callers must fall back to the
  // virtual CloneTuple then.
  uint16_t fast_type_tag() const { return fast_tag_; }

  // Traversal mark word (genealog/traversal.cc): the epoch fast path of
  // FindProvenance stamps a per-traversal ticket here with a relaxed CAS, so
  // the visited check touches only the cache line of the tuple already being
  // walked instead of a side hash table. 0 = never visited; any other value
  // is the ticket of the (unique, monotonically drawn) traversal that last
  // claimed this tuple. Stale tickets are harmless — a new traversal's ticket
  // can never equal one already stamped.
  std::atomic<uint64_t>& traversal_mark() const { return mark_; }

 protected:
  // Clone/copy support: copies ts and stimulus only. Reference count, meta
  // pointers, id, kind and annotation all start fresh.
  Tuple(const Tuple& other)
      : ts(other.ts), stimulus(other.stimulus) {}

 private:
  friend void intrusive_ref(const Tuple* t) noexcept;
  friend void intrusive_unref(const Tuple* t) noexcept;
  template <typename T, typename... Args>
  friend IntrusivePtr<T> MakeTuple(Args&&... args);

  void FinishAccounting();

  mutable std::atomic<uint32_t> refs_{0};
  // Size class the object's storage came from (pool::kHeapClass when heap
  // allocated); stamped by MakeTuple, consumed by the release cascade so the
  // block is recycled into the pool it was carved from. Lives in the padding
  // after refs_, so provenance storage stays the paper's constant size.
  uint8_t pool_class_ = pool::kHeapClass;
  // Cached type_tag(), stamped by MakeTuple (see fast_type_tag()). Shares
  // the same padding bytes as pool_class_ — no size growth.
  uint16_t fast_tag_ = 0;
  mutable std::atomic<uint64_t> mark_{0};
  std::atomic<Tuple*> next_{nullptr};
  Tuple* u1_ = nullptr;
  Tuple* u2_ = nullptr;
  std::unique_ptr<std::vector<uint64_t>> bl_;
  int owner_instance_ = 0;
  int64_t accounted_bytes_ = 0;
};

// Creates a tuple attributed to the calling thread's SPE instance. All tuple
// creation must go through this helper so memory accounting stays exact and
// storage comes from the recycling pool (see common/tuple_pool.h); placement
// construction runs every member initializer, so a recycled block can never
// leak stale provenance pointers into a new tuple.
template <typename T, typename... Args>
IntrusivePtr<T> MakeTuple(Args&&... args) {
  static_assert(alignof(T) <= pool::kBlockAlign,
                "over-aligned tuple types need a pool size-class redesign");
  uint8_t size_class = pool::kHeapClass;
  void* mem = pool::Allocate(sizeof(T), size_class);
  T* t;
  try {
    t = new (mem) T(std::forward<Args>(args)...);
  } catch (...) {
    pool::Deallocate(mem, size_class);
    throw;
  }
  // The release cascade recycles through a Tuple*, so the base subobject must
  // sit at the block start (single-inheritance tuples always satisfy this).
  assert(static_cast<void*>(static_cast<Tuple*>(t)) == mem);
  t->pool_class_ = size_class;
  // Cache the dynamic tag for the same-class clone fast path. A compile-time
  // constant for CRTP schema types; types without a static tag keep 0 and
  // cloners fall back to virtual dispatch.
  if constexpr (requires { T::kTypeTag; }) {
    t->fast_tag_ = T::kTypeTag;
  }
  t->FinishAccounting();
  return IntrusivePtr<T>(t);
}

inline void intrusive_ref(const Tuple* t) noexcept {
  t->refs_.fetch_add(1, std::memory_order_relaxed);
}

// Defined out of line: runs the iterative cascade.
void intrusive_unref(const Tuple* t) noexcept;

}  // namespace genealog

#endif  // GENEALOG_CORE_TUPLE_H_
