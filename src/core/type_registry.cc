#include "core/type_registry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>

namespace genealog {
namespace {

struct Entry {
  const char* name;
  PayloadDeserializer fn;
  TupleCloner cloner;
};

std::map<uint16_t, Entry>& registry() {
  static std::map<uint16_t, Entry> r;
  return r;
}

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

bool RegisterTupleType(uint16_t tag, const char* name, PayloadDeserializer fn,
                       TupleCloner cloner) {
  std::lock_guard lock(registry_mutex());
  auto [it, inserted] = registry().emplace(tag, Entry{name, fn, cloner});
  if (!inserted && std::strcmp(it->second.name, name) != 0) {
    std::fprintf(stderr, "tuple type tag %u registered twice: %s vs %s\n", tag,
                 it->second.name, name);
    std::abort();
  }
  return true;
}

TupleCloner ClonerForTag(uint16_t tag) {
  std::lock_guard lock(registry_mutex());
  auto it = registry().find(tag);
  return it == registry().end() ? nullptr : it->second.cloner;
}

PayloadDeserializer DeserializerForTag(uint16_t tag) {
  std::lock_guard lock(registry_mutex());
  auto it = registry().find(tag);
  return it == registry().end() ? nullptr : it->second.fn;
}

namespace {

void SerializeHeaderAndPayload(const Tuple& t, TupleKind kind, ByteWriter& w) {
  w.PutU16(t.type_tag());
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutI64(t.ts);
  w.PutU64(t.id);
  w.PutI64(t.stimulus);
  // Baseline annotations travel with the tuple — the variable-length
  // per-tuple wire cost that §7 observes drowning the distributed baseline.
  if (const auto* ann = t.baseline_annotation()) {
    w.PutU8(1);
    w.PutU32(static_cast<uint32_t>(ann->size()));
    for (uint64_t id : *ann) w.PutU64(id);
  } else {
    w.PutU8(0);
  }
  t.SerializePayload(w);
}

}  // namespace

void SerializeTuple(const Tuple& t, ByteWriter& w) {
  SerializeHeaderAndPayload(t, t.kind, w);
}

void SerializeTupleForSend(const Tuple& t, ByteWriter& w) {
  const TupleKind wire_kind =
      t.kind == TupleKind::kSource ? TupleKind::kSource : TupleKind::kRemote;
  SerializeHeaderAndPayload(t, wire_kind, w);
}

TuplePtr DeserializeTuple(ByteReader& r) {
  const uint16_t tag = r.GetU16();
  const auto kind = static_cast<TupleKind>(r.GetU8());
  const int64_t ts = r.GetI64();
  const uint64_t id = r.GetU64();
  const int64_t stimulus = r.GetI64();
  std::vector<uint64_t> annotation;
  bool has_annotation = false;
  if (r.GetU8() != 0) {
    has_annotation = true;
    const uint32_t n = r.GetU32();
    annotation.reserve(n);
    for (uint32_t i = 0; i < n; ++i) annotation.push_back(r.GetU64());
  }
  PayloadDeserializer fn = nullptr;
  {
    std::lock_guard lock(registry_mutex());
    auto it = registry().find(tag);
    if (it == registry().end()) {
      throw std::runtime_error("unregistered tuple type tag " +
                               std::to_string(tag));
    }
    fn = it->second.fn;
  }
  TuplePtr t = fn(r, ts);
  t->kind = kind;
  t->id = id;
  t->stimulus = stimulus;
  if (has_annotation) t->set_baseline_annotation(std::move(annotation));
  return t;
}

}  // namespace genealog
