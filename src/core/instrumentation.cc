#include "core/instrumentation.h"

#include <algorithm>

namespace genealog {

const char* ToString(ProvenanceMode mode) {
  switch (mode) {
    case ProvenanceMode::kNone:
      return "NP";
    case ProvenanceMode::kGenealog:
      return "GL";
    case ProvenanceMode::kBaseline:
      return "BL";
  }
  return "?";
}

std::vector<uint64_t> MergeAnnotations(const std::vector<uint64_t>* a,
                                       const std::vector<uint64_t>* b) {
  if (a == nullptr || a->empty()) return b != nullptr ? *b : std::vector<uint64_t>{};
  if (b == nullptr || b->empty()) return *a;
  std::vector<uint64_t> out;
  out.reserve(a->size() + b->size());
  std::set_union(a->begin(), a->end(), b->begin(), b->end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace genealog
