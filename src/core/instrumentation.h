// Operator instrumentation (§4.1), factored as a policy consulted by every
// standard operator at tuple-creation points.
//
//  * kNone     — the plain query (the paper's NP configuration);
//  * kGenealog — sets the four fixed-size meta-attributes T/U1/U2/N (GL);
//  * kBaseline — Ariadne-style variable-length annotations: every tuple
//    carries the sorted id-set of the source tuples contributing to it (BL).
//
// Keeping all three behind one interface mirrors the paper's framing: the
// *same* standard operators run the analysis; only the instrumentation
// changes.
#ifndef GENEALOG_CORE_INSTRUMENTATION_H_
#define GENEALOG_CORE_INSTRUMENTATION_H_

#include <span>
#include <vector>

#include "core/tuple.h"

namespace genealog {

enum class ProvenanceMode : uint8_t {
  kNone = 0,      // NP
  kGenealog = 1,  // GL
  kBaseline = 2,  // BL
};

const char* ToString(ProvenanceMode mode);

// Merges sorted, deduplicated annotation vectors.
std::vector<uint64_t> MergeAnnotations(const std::vector<uint64_t>* a,
                                       const std::vector<uint64_t>* b);

// Source (§4.1): T = SOURCE, no pointers. BL seeds the annotation with the
// tuple's own id.
inline void InstrumentSource(ProvenanceMode mode, Tuple& t) {
  t.kind = TupleKind::kSource;
  if (mode == ProvenanceMode::kBaseline) {
    t.set_baseline_annotation({t.id});
  }
}

// Map / Multiplex (§4.1): the output points to its single contributing input
// through U1.
inline void InstrumentUnary(ProvenanceMode mode, Tuple& out, TupleKind kind,
                            Tuple& in) {
  out.kind = kind;
  switch (mode) {
    case ProvenanceMode::kNone:
      break;
    case ProvenanceMode::kGenealog:
      out.set_u1(&in);
      break;
    case ProvenanceMode::kBaseline:
      if (const auto* ann = in.baseline_annotation()) {
        out.set_baseline_annotation(*ann);
      }
      break;
  }
}

// Join (§4.1): U1 = the more recent contributing tuple, U2 = the older one.
inline void InstrumentJoin(ProvenanceMode mode, Tuple& out, Tuple& newer,
                           Tuple& older) {
  out.kind = TupleKind::kJoin;
  switch (mode) {
    case ProvenanceMode::kNone:
      break;
    case ProvenanceMode::kGenealog:
      out.set_u1(&newer);
      out.set_u2(&older);
      break;
    case ProvenanceMode::kBaseline:
      out.set_baseline_annotation(MergeAnnotations(newer.baseline_annotation(),
                                                   older.baseline_annotation()));
      break;
  }
}

// Aggregate (§4.1): with window tuples t1..tn in timestamp order, U2 = t1,
// U1 = tn, and the N-chain links ti -> ti+1. Sliding windows re-link the same
// successors; try_set_next makes that idempotent.
template <typename TuplePtrLike>
void InstrumentAggregate(ProvenanceMode mode, Tuple& out,
                         std::span<const TuplePtrLike> window) {
  out.kind = TupleKind::kAggregate;
  switch (mode) {
    case ProvenanceMode::kNone:
      break;
    case ProvenanceMode::kGenealog: {
      out.set_u2(window.front().get());
      out.set_u1(window.back().get());
      for (size_t i = 0; i + 1 < window.size(); ++i) {
        window[i]->try_set_next(window[i + 1].get());
      }
      break;
    }
    case ProvenanceMode::kBaseline: {
      std::vector<uint64_t> merged;
      for (const auto& t : window) {
        merged = MergeAnnotations(&merged, t->baseline_annotation());
      }
      out.set_baseline_annotation(std::move(merged));
      break;
    }
  }
}

}  // namespace genealog

#endif  // GENEALOG_CORE_INSTRUMENTATION_H_
