// Linear Road workload (§7, Q1/Q2): vehicular position reports.
//
// Cars on a highway emit a position report every 30 seconds with schema
// ⟨ts, car_id, speed, pos⟩ (the benchmark's multi-attribute position is
// collapsed to one attribute, as in the paper's exposition). The generator
// plants breakdowns (>= 4 consecutive zero-speed reports at a fixed position)
// and accidents (two cars stopped at the same position at the same time) and
// exports the planted events; independent brute-force reference detectors
// provide the oracle for query-correctness tests.
#ifndef GENEALOG_LR_LINEAR_ROAD_H_
#define GENEALOG_LR_LINEAR_ROAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/tuple_crtp.h"

namespace genealog::lr {

struct PositionReport final : TupleCrtp<PositionReport, tags::kPositionReport> {
  static constexpr const char* kTypeName = "lr.PositionReport";

  PositionReport(int64_t ts, int64_t car_id, double speed, int64_t pos)
      : TupleCrtp(ts), car_id(car_id), speed(speed), pos(pos) {}

  int64_t car_id;
  double speed;
  int64_t pos;

  const char* type_name() const override { return kTypeName; }
  void SerializePayload(ByteWriter& w) const override;
  static TuplePtr Deserialize(ByteReader& r, int64_t ts);
  std::string DebugPayload() const override;
};

GENEALOG_REGISTER_TUPLE(PositionReport);

// Output of Q1's Aggregate: per-car zero-speed statistics over one window,
// with the extra last_pos field Q2 builds on (§7, footnote 4).
struct StoppedCarStats final : TupleCrtp<StoppedCarStats, tags::kStoppedCarStats> {
  static constexpr const char* kTypeName = "lr.StoppedCarStats";

  StoppedCarStats(int64_t ts, int64_t car_id, int64_t count, int64_t dist_pos,
                  int64_t last_pos)
      : TupleCrtp(ts),
        car_id(car_id),
        count(count),
        dist_pos(dist_pos),
        last_pos(last_pos) {}

  int64_t car_id;
  int64_t count;
  int64_t dist_pos;
  int64_t last_pos;

  const char* type_name() const override { return kTypeName; }
  void SerializePayload(ByteWriter& w) const override;
  static TuplePtr Deserialize(ByteReader& r, int64_t ts);
  std::string DebugPayload() const override;
};

GENEALOG_REGISTER_TUPLE(StoppedCarStats);

// Output of Q2's second Aggregate: stopped-vehicle count per position.
struct AccidentStats final : TupleCrtp<AccidentStats, tags::kAccidentStats> {
  static constexpr const char* kTypeName = "lr.AccidentStats";

  AccidentStats(int64_t ts, int64_t pos, int64_t count)
      : TupleCrtp(ts), pos(pos), count(count) {}

  int64_t pos;
  int64_t count;

  const char* type_name() const override { return kTypeName; }
  void SerializePayload(ByteWriter& w) const override;
  static TuplePtr Deserialize(ByteReader& r, int64_t ts);
  std::string DebugPayload() const override;
};

GENEALOG_REGISTER_TUPLE(AccidentStats);

// --- generator ---------------------------------------------------------------

struct LinearRoadConfig {
  int n_cars = 200;
  int64_t duration_s = 3600;        // logical span of the trace
  int64_t report_period_s = 30;     // paper: reports every 30 seconds
  int64_t highway_length = 528000;  // positions are integers in [0, length)
  // Per report, probability that a healthy car breaks down.
  double stop_probability = 0.01;
  // Breakdown length in reports, uniform in [min, max]; >= 4 triggers Q1.
  int min_stop_reports = 4;
  int max_stop_reports = 8;
  // Per report, probability that a *pair* of cars is stopped together at the
  // same position (an accident for Q2).
  double accident_probability = 0.002;
  // Report ticks at which an accident is planted regardless of the
  // probability draw (deterministic event planting for tests and benches).
  std::vector<int64_t> forced_accident_ticks;
  uint64_t seed = 42;
};

struct PlantedStop {
  int64_t car_id;
  int64_t pos;
  int64_t first_report_ts;  // ts of the first zero-speed report
  int n_reports;
};

struct LinearRoadData {
  std::vector<IntrusivePtr<PositionReport>> reports;  // timestamp-sorted
  std::vector<PlantedStop> planted_stops;
};

LinearRoadData GenerateLinearRoad(const LinearRoadConfig& config);

// --- reference (oracle) detectors --------------------------------------------

// A Q1 event: in window [window_start, window_start+ws) car `car_id` had
// exactly `zero_reports`==4 zero-speed reports, all at position `pos`.
struct ReferenceStoppedEvent {
  int64_t window_start;
  int64_t car_id;
  int64_t pos;
  bool operator==(const ReferenceStoppedEvent&) const = default;
  auto operator<=>(const ReferenceStoppedEvent&) const = default;
};

// Brute-force re-implementation of Q1's semantics (independent of the SPE):
// slide [s, s+ws) by wa over all aligned starts; report (s, car, pos) when
// the car has exactly `required_count` zero-speed reports, all at one pos.
std::vector<ReferenceStoppedEvent> ReferenceStoppedCars(
    const std::vector<IntrusivePtr<PositionReport>>& reports, int64_t ws,
    int64_t wa, int64_t required_count);

struct ReferenceAccidentEvent {
  int64_t window_start;  // Q1 window start == Q2 window start
  int64_t pos;
  int64_t car_count;
  bool operator==(const ReferenceAccidentEvent&) const = default;
  auto operator<=>(const ReferenceAccidentEvent&) const = default;
};

// Q2 semantics on top of the Q1 reference: >= 2 distinct stopped cars at the
// same position in the same window.
std::vector<ReferenceAccidentEvent> ReferenceAccidents(
    const std::vector<ReferenceStoppedEvent>& stopped);

}  // namespace genealog::lr

#endif  // GENEALOG_LR_LINEAR_ROAD_H_
