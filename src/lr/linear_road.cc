#include "lr/linear_road.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/int_math.h"
#include "common/rng.h"

namespace genealog::lr {

void PositionReport::SerializePayload(ByteWriter& w) const {
  w.PutI64(car_id);
  w.PutDouble(speed);
  w.PutI64(pos);
}

TuplePtr PositionReport::Deserialize(ByteReader& r, int64_t ts) {
  const int64_t car_id = r.GetI64();
  const double speed = r.GetDouble();
  const int64_t pos = r.GetI64();
  return MakeTuple<PositionReport>(ts, car_id, speed, pos);
}

std::string PositionReport::DebugPayload() const {
  return "car=" + std::to_string(car_id) + " speed=" + std::to_string(speed) +
         " pos=" + std::to_string(pos);
}

void StoppedCarStats::SerializePayload(ByteWriter& w) const {
  w.PutI64(car_id);
  w.PutI64(count);
  w.PutI64(dist_pos);
  w.PutI64(last_pos);
}

TuplePtr StoppedCarStats::Deserialize(ByteReader& r, int64_t ts) {
  const int64_t car_id = r.GetI64();
  const int64_t count = r.GetI64();
  const int64_t dist_pos = r.GetI64();
  const int64_t last_pos = r.GetI64();
  return MakeTuple<StoppedCarStats>(ts, car_id, count, dist_pos, last_pos);
}

std::string StoppedCarStats::DebugPayload() const {
  return "car=" + std::to_string(car_id) + " count=" + std::to_string(count) +
         " dist_pos=" + std::to_string(dist_pos) +
         " last_pos=" + std::to_string(last_pos);
}

void AccidentStats::SerializePayload(ByteWriter& w) const {
  w.PutI64(pos);
  w.PutI64(count);
}

TuplePtr AccidentStats::Deserialize(ByteReader& r, int64_t ts) {
  const int64_t pos = r.GetI64();
  const int64_t count = r.GetI64();
  return MakeTuple<AccidentStats>(ts, pos, count);
}

std::string AccidentStats::DebugPayload() const {
  return "pos=" + std::to_string(pos) + " count=" + std::to_string(count);
}

namespace {

struct CarState {
  int64_t pos = 0;
  double speed = 25.0;        // meters per second
  int stopped_reports_left = 0;
};

}  // namespace

LinearRoadData GenerateLinearRoad(const LinearRoadConfig& config) {
  SplitMix64 rng(config.seed);
  LinearRoadData data;

  std::vector<CarState> cars(static_cast<size_t>(config.n_cars));
  for (CarState& car : cars) {
    car.pos = rng.UniformInt(0, config.highway_length - 1);
    car.speed = 18.0 + rng.UniformDouble() * 17.0;  // 18..35 m/s
  }

  // Cars are phase-aligned to the report period: car i reports at
  // phase_i + k * period, giving exactly ws/period reports per window.
  std::vector<int64_t> phases(static_cast<size_t>(config.n_cars));
  for (auto& phase : phases) phase = rng.UniformInt(0, config.report_period_s - 1);

  for (int64_t tick = 0; tick * config.report_period_s < config.duration_s;
       ++tick) {
    const int64_t base_ts = tick * config.report_period_s;
    // Plant an accident: stop two distinct moving cars at one position.
    const bool forced_accident =
        std::find(config.forced_accident_ticks.begin(),
                  config.forced_accident_ticks.end(),
                  tick) != config.forced_accident_ticks.end();
    if (config.n_cars >= 2 &&
        (forced_accident || rng.Bernoulli(config.accident_probability))) {
      // Pick a pair of currently moving cars (retrying a few times so forced
      // accidents reliably land even when random breakdowns are active).
      for (int attempt = 0; attempt < 8; ++attempt) {
        const auto a = static_cast<size_t>(rng.UniformInt(0, config.n_cars - 1));
        size_t b = static_cast<size_t>(rng.UniformInt(0, config.n_cars - 1));
        if (b == a) b = (b + 1) % cars.size();
        if (cars[a].stopped_reports_left != 0 ||
            cars[b].stopped_reports_left != 0) {
          continue;
        }
        const int n_reports = static_cast<int>(
            rng.UniformInt(config.min_stop_reports, config.max_stop_reports));
        const int64_t crash_pos = rng.UniformInt(0, config.highway_length - 1);
        for (size_t car_idx : {a, b}) {
          cars[car_idx].pos = crash_pos;
          cars[car_idx].stopped_reports_left = n_reports;
          data.planted_stops.push_back(
              PlantedStop{static_cast<int64_t>(car_idx), crash_pos,
                          base_ts + phases[car_idx], n_reports});
        }
        break;
      }
    }

    for (size_t i = 0; i < cars.size(); ++i) {
      CarState& car = cars[i];
      const int64_t ts = base_ts + phases[i];
      if (ts >= config.duration_s) continue;
      if (car.stopped_reports_left == 0 &&
          rng.Bernoulli(config.stop_probability)) {
        const int n_reports = static_cast<int>(
            rng.UniformInt(config.min_stop_reports, config.max_stop_reports));
        car.stopped_reports_left = n_reports;
        data.planted_stops.push_back(
            PlantedStop{static_cast<int64_t>(i), car.pos, ts, n_reports});
      }
      double speed = car.speed;
      if (car.stopped_reports_left > 0) {
        speed = 0.0;
        --car.stopped_reports_left;
      } else {
        car.pos = (car.pos + static_cast<int64_t>(car.speed) *
                                 config.report_period_s) %
                  config.highway_length;
      }
      data.reports.push_back(MakeTuple<PositionReport>(
          ts, static_cast<int64_t>(i), speed, car.pos));
    }
  }

  std::stable_sort(data.reports.begin(), data.reports.end(),
                   [](const auto& a, const auto& b) { return a->ts < b->ts; });
  return data;
}

std::vector<ReferenceStoppedEvent> ReferenceStoppedCars(
    const std::vector<IntrusivePtr<PositionReport>>& reports, int64_t ws,
    int64_t wa, int64_t required_count) {
  // Zero-speed reports per car, in ts order (input is sorted).
  std::map<int64_t, std::vector<const PositionReport*>> zero_by_car;
  for (const auto& r : reports) {
    if (r->speed == 0.0) zero_by_car[r->car_id].push_back(r.get());
  }

  std::vector<ReferenceStoppedEvent> events;
  for (const auto& [car_id, zeros] : zero_by_car) {
    const int64_t first_ts = zeros.front()->ts;
    const int64_t last_ts = zeros.back()->ts;
    // Aligned window starts that could contain any zero report of this car.
    for (int64_t start = FloorAlign(first_ts - ws + 1, wa); start <= last_ts;
         start += wa) {
      if (start + ws <= first_ts) continue;
      int64_t count = 0;
      std::set<int64_t> positions;
      int64_t pos = 0;
      for (const PositionReport* r : zeros) {
        if (r->ts >= start && r->ts < start + ws) {
          ++count;
          positions.insert(r->pos);
          pos = r->pos;
        }
      }
      if (count == required_count && positions.size() == 1) {
        events.push_back(ReferenceStoppedEvent{start, car_id, pos});
      }
    }
  }
  std::sort(events.begin(), events.end());
  return events;
}

std::vector<ReferenceAccidentEvent> ReferenceAccidents(
    const std::vector<ReferenceStoppedEvent>& stopped) {
  std::map<std::pair<int64_t, int64_t>, std::set<int64_t>> cars_at;
  for (const auto& e : stopped) {
    cars_at[{e.window_start, e.pos}].insert(e.car_id);
  }
  std::vector<ReferenceAccidentEvent> events;
  for (const auto& [key, cars] : cars_at) {
    if (cars.size() >= 2) {
      events.push_back(ReferenceAccidentEvent{
          key.first, key.second, static_cast<int64_t>(cars.size())});
    }
  }
  std::sort(events.begin(), events.end());
  return events;
}

}  // namespace genealog::lr
