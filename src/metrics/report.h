// Result aggregation and table rendering for the benchmark harnesses.
//
// The benches reproduce the *rows* behind the paper's bar charts: for each
// (query, variant) cell they print the metric value and the percentage delta
// against the NP (no-provenance) reference, matching the annotations in
// Figures 12 and 13.
#ifndef GENEALOG_METRICS_REPORT_H_
#define GENEALOG_METRICS_REPORT_H_

#include <optional>
#include <string>
#include <vector>

#include "genealog/lineage_store.h"

namespace genealog {
struct ServeStats;  // genealog/lineage_service.h
struct WireStats;   // net/frame.h
}  // namespace genealog

namespace genealog::metrics {

// One experiment cell, averaged over repetitions.
struct CellStats {
  double mean = 0;
  double ci95 = 0;
  int runs = 0;
};

struct QueryVariantResult {
  std::string query;    // "Q1".."Q4"
  std::string variant;  // "NP" / "GL" / "BL"
  CellStats throughput_tps;
  CellStats latency_ms;
  CellStats avg_mem_mb;
  CellStats max_mem_mb;
  // Extras (zero when not applicable):
  CellStats provenance_records;
  CellStats provenance_bytes;
  CellStats source_bytes;
  CellStats network_bytes;
  // Wire-codec accounting over every inter-instance channel: frames shipped,
  // the bytes the raw codec would have cost, and the bytes actually shipped
  // (net/frame.h WireStats). raw == encoded under the raw codec.
  CellStats wire_frames;
  CellStats wire_raw_bytes;
  CellStats wire_encoded_bytes;
  std::vector<CellStats> per_instance_avg_mem_mb;
  std::vector<CellStats> per_instance_max_mem_mb;
};

// Renders the Figure-12/13-style table: one block per query, one row per
// variant, columns throughput / latency / avg mem / max mem with % deltas
// against the NP row of the same query.
std::string RenderOverheadTable(const std::vector<QueryVariantResult>& rows,
                                const std::string& title);

// Renders the provenance-volume ratio (provenance bytes vs source bytes, §7:
// "ranging from 0.003% to 0.5%").
std::string RenderProvenanceVolumeTable(
    const std::vector<QueryVariantResult>& rows);

// Renders the per-variant wire-codec accounting: frames, raw vs encoded
// bytes-on-wire and the compression ratio. Rows that shipped nothing are
// skipped.
std::string RenderWireTable(const std::vector<QueryVariantResult>& rows);

// Helper: percentage delta string like "-3.7%" (empty for the reference row).
std::string FormatDelta(double value, std::optional<double> reference,
                        bool higher_is_worse);

// --- counter tables ---------------------------------------------------------
// The one rendering idiom for the engine's counter bundles — lineage-store
// stats, wire-codec accounting and the lineage service's ServeStats all go
// through RenderCounterTable instead of each growing its own printf block.
// Values are preformatted strings so every caller controls its own units.

struct CounterRow {
  std::string label;
  std::string value;
};

// Renders `rows` as an aligned two-column block under `title`.
std::string RenderCounterTable(const std::string& title,
                               const std::vector<CounterRow>& rows);

// Row builders for the shared renderer.
std::vector<CounterRow> LineageStatsRows(const LineageStore::Stats& s);
std::vector<CounterRow> WireStatsRows(const WireStats& s);
std::vector<CounterRow> ServeStatsRows(const ServeStats& s);

}  // namespace genealog::metrics

#endif  // GENEALOG_METRICS_REPORT_H_
