#include "metrics/report.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>

#include "genealog/lineage_service.h"
#include "net/frame.h"

namespace genealog::metrics {
namespace {

std::string FmtU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FmtI64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

std::string FmtCell(const CellStats& c, const char* format) {
  std::string s = Fmt(format, c.mean);
  if (c.runs > 1 && c.ci95 > 0) {
    s += " ±" + Fmt(format, c.ci95);
  }
  return s;
}

}  // namespace

std::string FormatDelta(double value, std::optional<double> reference,
                        bool /*higher_is_worse*/) {
  if (!reference.has_value() || *reference == 0.0) return "";
  const double delta = (value - *reference) / *reference * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", delta);
  return buf;
}

std::string RenderOverheadTable(const std::vector<QueryVariantResult>& rows,
                                const std::string& title) {
  // Index NP references per query.
  std::map<std::string, const QueryVariantResult*> np;
  for (const auto& r : rows) {
    if (r.variant == "NP") np[r.query] = &r;
  }

  std::string out;
  out += title + "\n";
  out += std::string(title.size(), '=') + "\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-4s %-3s | %15s %8s | %12s %8s | %11s %8s | %11s %8s\n",
                "qry", "var", "tput(t/s)", "d%", "latency(ms)", "d%",
                "avg_mem(MB)", "d%", "max_mem(MB)", "d%");
  out += line;
  out += std::string(120, '-') + "\n";

  for (const auto& r : rows) {
    const QueryVariantResult* ref =
        np.count(r.query) != 0 && r.variant != "NP" ? np[r.query] : nullptr;
    std::snprintf(
        line, sizeof(line),
        "%-4s %-3s | %15s %8s | %12s %8s | %11s %8s | %11s %8s\n",
        r.query.c_str(), r.variant.c_str(),
        FmtCell(r.throughput_tps, "%.0f").c_str(),
        ref != nullptr
            ? FormatDelta(r.throughput_tps.mean, ref->throughput_tps.mean, false)
                  .c_str()
            : "",
        FmtCell(r.latency_ms, "%.2f").c_str(),
        ref != nullptr
            ? FormatDelta(r.latency_ms.mean, ref->latency_ms.mean, true).c_str()
            : "",
        FmtCell(r.avg_mem_mb, "%.2f").c_str(),
        ref != nullptr
            ? FormatDelta(r.avg_mem_mb.mean, ref->avg_mem_mb.mean, true).c_str()
            : "",
        FmtCell(r.max_mem_mb, "%.2f").c_str(),
        ref != nullptr
            ? FormatDelta(r.max_mem_mb.mean, ref->max_mem_mb.mean, true).c_str()
            : "");
    out += line;
  }
  return out;
}

std::string RenderProvenanceVolumeTable(
    const std::vector<QueryVariantResult>& rows) {
  std::string out;
  out += "Provenance volume vs. source volume (paper: 0.003%..0.5%)\n";
  out += "----------------------------------------------------------\n";
  char line[256];
  for (const auto& r : rows) {
    if (r.provenance_bytes.mean <= 0 || r.source_bytes.mean <= 0) continue;
    std::snprintf(line, sizeof(line),
                  "%-4s %-3s | provenance %10.0f B | source %12.0f B | ratio %8.4f%%\n",
                  r.query.c_str(), r.variant.c_str(), r.provenance_bytes.mean,
                  r.source_bytes.mean,
                  r.provenance_bytes.mean / r.source_bytes.mean * 100.0);
    out += line;
  }
  return out;
}

std::string RenderWireTable(const std::vector<QueryVariantResult>& rows) {
  std::string out;
  out += "Bytes-on-wire per variant (raw-codec equivalent vs shipped)\n";
  out += "-----------------------------------------------------------\n";
  char line[256];
  for (const auto& r : rows) {
    if (r.wire_encoded_bytes.mean <= 0) continue;
    std::snprintf(line, sizeof(line),
                  "%-4s %-3s | frames %10.0f | raw %12.0f B | wire %12.0f B "
                  "| ratio %6.2fx\n",
                  r.query.c_str(), r.variant.c_str(), r.wire_frames.mean,
                  r.wire_raw_bytes.mean, r.wire_encoded_bytes.mean,
                  r.wire_raw_bytes.mean / r.wire_encoded_bytes.mean);
    out += line;
  }
  return out;
}

std::string RenderCounterTable(const std::string& title,
                               const std::vector<CounterRow>& rows) {
  size_t width = 0;
  for (const auto& row : rows) width = std::max(width, row.label.size());
  std::string out;
  out += title + "\n";
  out += std::string(title.size(), '-') + "\n";
  char line[256];
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "%-*s  %s\n", static_cast<int>(width),
                  row.label.c_str(), row.value.c_str());
    out += line;
  }
  return out;
}

std::vector<CounterRow> LineageStatsRows(const LineageStore::Stats& s) {
  std::vector<CounterRow> rows = {
      {"records ingested", FmtU64(s.records_ingested)},
      {"records retained", FmtU64(s.records_retained)},
      {"records evicted", FmtU64(s.records_evicted)},
      {"tuples retained", FmtU64(s.tuples_retained)},
      {"edges retained", FmtU64(s.edges_retained)},
      {"bytes retained", FmtU64(s.bytes_retained)},
      {"node uids", FmtU64(s.node_uids)},
      {"epochs evicted", FmtU64(s.epochs_evicted)},
  };
  if (s.min_retained_ts <= s.max_retained_ts) {
    rows.push_back({"min retained ts", FmtI64(s.min_retained_ts)});
    rows.push_back({"max retained ts", FmtI64(s.max_retained_ts)});
  }
  return rows;
}

std::vector<CounterRow> WireStatsRows(const WireStats& s) {
  std::vector<CounterRow> rows = {
      {"frames", FmtU64(s.frames)},
      {"raw bytes", FmtU64(s.raw_bytes)},
      {"encoded bytes", FmtU64(s.encoded_bytes)},
  };
  if (s.encoded_bytes > 0) {
    rows.push_back(
        {"ratio", Fmt("%.2fx", static_cast<double>(s.raw_bytes) /
                                   static_cast<double>(s.encoded_bytes))});
  }
  return rows;
}

std::vector<CounterRow> ServeStatsRows(const ServeStats& s) {
  return {
      {"connections", FmtU64(s.connections)},
      {"requests", FmtU64(s.requests)},
      {"errors", FmtU64(s.errors)},
      {"bytes received", FmtU64(s.bytes_received)},
      {"bytes sent", FmtU64(s.bytes_sent)},
      {"latency p50 (us)", Fmt("%.1f", s.latency_p50_us)},
      {"latency p99 (us)", Fmt("%.1f", s.latency_p99_us)},
  };
}

}  // namespace genealog::metrics
