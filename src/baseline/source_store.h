// Temporary store of source tuples for the Ariadne-style baseline (§7, [16]).
//
// BL annotates tuples with variable-length id lists and must keep the source
// streams around until annotated sink tuples are joined against them — the
// storage behaviour whose cost the paper contrasts with GeneaLog's
// reachability-based reclamation. The store is unbounded by default (the
// paper's observed behaviour); an optional event-time eviction horizon is
// provided for the ablation bench.
#ifndef GENEALOG_BASELINE_SOURCE_STORE_H_
#define GENEALOG_BASELINE_SOURCE_STORE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "core/tuple.h"

namespace genealog {

class BaselineSourceStore {
 public:
  void Insert(TuplePtr t) {
    const uint64_t id = t->id;
    order_.emplace_back(t->ts, id);
    by_id_.emplace(id, std::move(t));
    if (by_id_.size() > peak_size_) peak_size_ = by_id_.size();
  }

  // Null if the id was never stored or was already evicted.
  TuplePtr Lookup(uint64_t id) const {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? TuplePtr() : it->second;
  }

  // Drops tuples with ts < horizon (insertion is in ts order).
  void EvictBefore(int64_t horizon_ts) {
    while (!order_.empty() && order_.front().first < horizon_ts) {
      by_id_.erase(order_.front().second);
      order_.pop_front();
    }
  }

  size_t size() const { return by_id_.size(); }
  size_t peak_size() const { return peak_size_; }

 private:
  std::unordered_map<uint64_t, TuplePtr> by_id_;
  std::deque<std::pair<int64_t, uint64_t>> order_;
  size_t peak_size_ = 0;
};

}  // namespace genealog

#endif  // GENEALOG_BASELINE_SOURCE_STORE_H_
