// Baseline provenance resolution: joins annotated sink tuples with the
// temporarily stored source streams to materialize ProvenanceRecords
// ("source streams are temporarily maintained and later joined with the
// annotated output streams", §7).
//
// Port 0 carries the annotated sink stream; ports 1..k carry (copies of) the
// source streams. The node buffers sink tuples until the merged watermark
// guarantees all their contributing source tuples have arrived (contributing
// tuples can be up to the query's total stateful window span away in event
// time, in either direction), then resolves each annotation id against the
// store. In the distributed deployment the source-stream ports are fed by
// Receive operators, which is exactly the full-stream network shipping whose
// cost Figure 13 shows.
#ifndef GENEALOG_BASELINE_RESOLVER_H_
#define GENEALOG_BASELINE_RESOLVER_H_

#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "baseline/source_store.h"
#include "common/int_math.h"
#include "core/type_registry.h"
#include "genealog/provenance_record.h"
#include "spe/node.h"

namespace genealog {

struct BaselineResolverOptions {
  // Total stateful window span of the query (same figure the MU join uses).
  int64_t slack = 0;
  // If true, the store evicts tuples that can no longer contribute
  // (ts < watermark - 2*slack): the "oracle eviction" ablation. The default
  // (false) reproduces the paper's unbounded-store behaviour.
  bool evict = false;
  // If non-empty, serialized records are appended to this file.
  std::string file_path;
  std::function<void(const ProvenanceRecord&)> consumer;
};

class BaselineResolverNode final : public MergingNode {
 public:
  BaselineResolverNode(std::string name, BaselineResolverOptions options);
  ~BaselineResolverNode() override;

  uint64_t records() const { return records_; }
  uint64_t origin_tuples() const { return origin_tuples_; }
  uint64_t missing_ids() const { return missing_ids_; }
  uint64_t bytes_written() const { return bytes_written_; }
  size_t store_peak_size() const { return store_.peak_size(); }
  double mean_origins_per_record() const {
    return records_ == 0 ? 0.0
                         : static_cast<double>(origin_tuples_) /
                               static_cast<double>(records_);
  }

 protected:
  void OnMergedTuple(size_t port, TuplePtr t) override;
  void OnMergedWatermark(int64_t wm) override;
  void OnAllFlushed() override;

 private:
  void ResolveBefore(int64_t ts_horizon);
  void Resolve(const TuplePtr& sink_tuple);

  BaselineResolverOptions options_;
  std::FILE* file_ = nullptr;
  BaselineSourceStore store_;
  std::deque<TuplePtr> pending_sinks_;
  ByteWriter scratch_;
  uint64_t records_ = 0;
  uint64_t origin_tuples_ = 0;
  uint64_t missing_ids_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace genealog

#endif  // GENEALOG_BASELINE_RESOLVER_H_
