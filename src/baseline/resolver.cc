#include "baseline/resolver.h"

#include <stdexcept>

namespace genealog {

BaselineResolverNode::BaselineResolverNode(std::string name,
                                           BaselineResolverOptions options)
    : MergingNode(std::move(name)), options_(std::move(options)) {
  if (!options_.file_path.empty()) {
    file_ = std::fopen(options_.file_path.c_str(), "wb");
    if (file_ == nullptr) {
      throw std::runtime_error("cannot open baseline provenance file " +
                               options_.file_path);
    }
  }
}

BaselineResolverNode::~BaselineResolverNode() {
  if (file_ != nullptr) std::fclose(file_);
}

void BaselineResolverNode::OnMergedTuple(size_t port, TuplePtr t) {
  if (port == 0) {
    pending_sinks_.push_back(std::move(t));
  } else {
    store_.Insert(std::move(t));
  }
}

void BaselineResolverNode::OnMergedWatermark(int64_t wm) {
  ResolveBefore(SatSub(wm, options_.slack));
  if (options_.evict) {
    // A source tuple can contribute to sink tuples up to `slack` away; the
    // oldest unresolved sink has ts >= wm - slack, so anything older than
    // wm - 2*slack can never be needed again.
    store_.EvictBefore(SatSub(wm, SatAdd(options_.slack, options_.slack)));
  }
}

void BaselineResolverNode::OnAllFlushed() { ResolveBefore(kWatermarkMax); }

void BaselineResolverNode::ResolveBefore(int64_t ts_horizon) {
  // The merged stream delivers sink tuples in ts order, so pending_sinks_ is
  // sorted and a prefix scan suffices.
  while (!pending_sinks_.empty() && pending_sinks_.front()->ts < ts_horizon) {
    Resolve(pending_sinks_.front());
    pending_sinks_.pop_front();
  }
}

void BaselineResolverNode::Resolve(const TuplePtr& sink_tuple) {
  ProvenanceRecord record;
  record.derived = sink_tuple;
  record.derived_id = sink_tuple->id;
  record.derived_ts = sink_tuple->ts;
  if (const auto* ann = sink_tuple->baseline_annotation()) {
    record.origins.reserve(ann->size());
    for (uint64_t id : *ann) {
      if (TuplePtr origin = store_.Lookup(id)) {
        record.origins.push_back(std::move(origin));
      } else {
        ++missing_ids_;
      }
    }
  }
  ++records_;
  origin_tuples_ += record.origins.size();

  scratch_.Clear();
  SerializeTuple(*record.derived, scratch_);
  scratch_.PutU32(static_cast<uint32_t>(record.origins.size()));
  for (const TuplePtr& o : record.origins) SerializeTuple(*o, scratch_);
  bytes_written_ += scratch_.size();
  if (file_ != nullptr) {
    std::fwrite(scratch_.bytes().data(), 1, scratch_.size(), file_);
  }
  if (options_.consumer) options_.consumer(record);
}

}  // namespace genealog
