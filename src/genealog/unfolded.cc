#include "genealog/unfolded.h"

namespace genealog {

void UnfoldedTuple::SerializePayload(ByteWriter& w) const {
  w.PutU64(derived_id);
  w.PutI64(derived_ts);
  w.PutU64(origin_id);
  w.PutI64(origin_ts);
  w.PutU8(static_cast<uint8_t>(origin_kind));
  SerializeTuple(*derived, w);
  SerializeTuple(*origin, w);
}

TuplePtr UnfoldedTuple::Deserialize(ByteReader& r, int64_t ts) {
  auto t = MakeTuple<UnfoldedTuple>(ts);
  t->derived_id = r.GetU64();
  t->derived_ts = r.GetI64();
  t->origin_id = r.GetU64();
  t->origin_ts = r.GetI64();
  t->origin_kind = static_cast<TupleKind>(r.GetU8());
  t->derived = DeserializeTuple(r);
  t->origin = DeserializeTuple(r);
  return t;
}

std::string UnfoldedTuple::DebugPayload() const {
  std::string s = "derived{";
  s += derived != nullptr ? derived->DebugPayload() : "?";
  s += "} origin{";
  s += origin != nullptr ? origin->DebugPayload() : "?";
  s += "}";
  return s;
}

}  // namespace genealog
