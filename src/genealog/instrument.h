// Provenance weaving for the fluent dataflow builder (spe/dataflow.h).
//
// LowerDataflow turns a recorded logical plan into runnable topologies,
// inserting the GeneaLog machinery the paper derives instead of making the
// query author wire it:
//
//  * kNone — operators are wired as declared; edges crossing deployment
//    instances become Send ~channel~ Receive pairs.
//  * kGenealog — per Theorem 5.3 an SU is interposed before the sink: its SO
//    output feeds the sink unchanged, its U (unfolded) output feeds the
//    provenance sink. Intra-process, the provenance sink lives in the same
//    instance. Across instances (§6, Figure 7): a dedicated provenance
//    instance (max user instance + 1) hosts an MU + the provenance sink; the
//    sink-side SU's U stream is sent to the MU's derived port (port 0), and
//    every instance-crossing data edge gets its own SU whose SO continues to
//    the consumer over the data channel while its U stream feeds the next MU
//    upstream port (ports 1..). The MU join window is the stateful window
//    span of the sink's instance (§6.1); the finalize slack is the plan's
//    total stateful span.
//  * kBaseline — every source is tapped (Multiplex) and a tap copy of the
//    annotated sink stream plus every source stream feed the baseline
//    resolver (port 0 = sink stream, ports 1.. = source streams, the order
//    BaselineResolverNode requires); in distributed deployments the resolver
//    lives on the provenance instance and the source streams ship whole over
//    channels — the paper's §7 baseline network cost.
//
// EngineOptions::composed_unfolders swaps the fused SU/MU operators for the
// literal Figure 5B / Figure 8 constructions, exactly like the hand-wired
// deployments.
#ifndef GENEALOG_GENEALOG_INSTRUMENT_H_
#define GENEALOG_GENEALOG_INSTRUMENT_H_

#include "spe/dataflow.h"

namespace genealog {

// Lowers `plan` into `out` (empty on entry). Called by Dataflow::Build after
// validation; the plan is structurally sound by the time it gets here.
void LowerDataflow(const dataflow_internal::Plan& plan, BuiltDataflow& out);

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_INSTRUMENT_H_
