// The final provenance artifact: one sink tuple together with the source
// tuples contributing to it. Produced by GeneaLog's provenance sink and by
// the baseline resolver, so equivalence tests can compare the two techniques
// record-by-record.
#ifndef GENEALOG_GENEALOG_PROVENANCE_RECORD_H_
#define GENEALOG_GENEALOG_PROVENANCE_RECORD_H_

#include <cstdint>
#include <vector>

#include "core/tuple.h"

namespace genealog {

struct ProvenanceRecord {
  TuplePtr derived;  // the sink tuple's payload
  uint64_t derived_id = 0;
  int64_t derived_ts = 0;
  std::vector<TuplePtr> origins;  // contributing source tuples
};

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_PROVENANCE_RECORD_H_
