#include "genealog/su.h"

namespace genealog {
namespace {

// One tuple of the unfolded stream (Def. 5.1): `derived` paired with the
// originating tuple `o`. The id is left to the caller (SuNode stamps its
// own sequence; the composed path's MapCollector stamps on emit).
IntrusivePtr<UnfoldedTuple> MakeUnfolded(const TuplePtr& derived, Tuple* o) {
  auto u = MakeTuple<UnfoldedTuple>(derived->ts);
  u->stimulus = derived->stimulus;
  u->derived = derived;
  u->derived_id = derived->id;
  u->derived_ts = derived->ts;
  u->origin = TuplePtr(o);
  u->origin_id = o->id;
  u->origin_ts = o->ts;
  u->origin_kind = o->kind;
  return u;
}

}  // namespace

void UnfoldInto(const TuplePtr& derived, std::vector<Tuple*>& origins,
                TraversalScratch& scratch,
                std::vector<IntrusivePtr<UnfoldedTuple>>& out) {
  origins.clear();
  FindProvenance(derived.get(), origins, scratch);
  out.reserve(out.size() + origins.size());
  for (Tuple* o : origins) {
    out.push_back(MakeUnfolded(derived, o));
  }
}

void SuNode::UnfoldOne(const TuplePtr& t, StreamBatch& u_chunk) {
  // The traversal itself is the per-sink-tuple cost the paper studies in
  // Figure 14, so it is timed per tuple even when the batch amortizes
  // everything around it.
  const int64_t t0 = NowNanos();
  result_.clear();
  FindProvenance(t.get(), result_, scratch_);
  const int64_t elapsed = NowNanos() - t0;
  pending_samples_.emplace_back(NanosToMillis(elapsed),
                                static_cast<double>(result_.size()));
  if (pending_samples_.size() >= kPublishEvery) PublishStats();

  // One unfolded tuple per originating tuple, created straight into the
  // outgoing chunk — the whole batch's unfolded tuples travel in one queue
  // handover, and the pool hands their storage back from the previous
  // graph's reclamation. No reserve: SmallVec::reserve sizes exactly, so
  // per-tuple reserves would re-copy the chunk per input tuple; push_back
  // grows geometrically.
  for (Tuple* o : result_) {
    auto u = MakeUnfolded(t, o);
    u->id = NextTupleId();
    u_chunk.tuples.push_back(std::move(u));
  }
}

void SuNode::OnBatch(StreamBatch& batch) {
  if (!batch.tuples.empty()) {
    // U first: unfolding borrows the delivering tuples before their handles
    // move into the SO chunk. Both outputs still observe their own streams in
    // order; only the interleaving across the two (independent) queues
    // changes, which no consumer can see.
    StreamBatch u_chunk;
    for (const TuplePtr& t : batch.tuples) UnfoldOne(t, u_chunk);

    // SO: the delivering stream passes through unchanged, as one chunk.
    StreamBatch so_chunk;
    so_chunk.tuples = std::move(batch.tuples);
    if (!EmitBatchTo(0, std::move(so_chunk))) return;
    if (!EmitBatchTo(1, std::move(u_chunk))) return;
  }
  if (batch.has_watermark()) OnWatermark(batch.watermark);
}

void SuNode::OnTuple(TuplePtr t) {
  // Run() dispatches whole batches to OnBatch; this exists for the
  // SingleInputNode contract (and direct per-tuple drivers in tests).
  StreamBatch batch = StreamBatch::MakeTuple(std::move(t));
  OnBatch(batch);
}

void SuNode::OnFlush() { PublishStats(); }

void SuNode::PublishStats() {
  if (pending_samples_.empty()) return;
  std::lock_guard lock(stats_mu_);
  for (const auto& [ms, graph_size] : pending_samples_) {
    traversal_ms_.Add(ms);
    graph_size_.Add(graph_size);
  }
  pending_samples_.clear();
}

double SuNode::mean_traversal_ms() const {
  std::lock_guard lock(stats_mu_);
  return traversal_ms_.mean();
}

uint64_t SuNode::traversal_count() const {
  std::lock_guard lock(stats_mu_);
  return traversal_ms_.count();
}

double SuNode::traversal_percentile_ms(double pct) const {
  std::lock_guard lock(stats_mu_);
  return traversal_ms_.percentile(pct);
}

double SuNode::mean_graph_size() const {
  std::lock_guard lock(stats_mu_);
  return graph_size_.mean();
}

ComposedSu BuildComposedSu(Topology& topology, const std::string& name) {
  auto* mux = topology.Add<MultiplexNode>(name + ".multiplex");
  auto* map = topology.Add<MapNode<Tuple, UnfoldedTuple>>(
      name + ".unfold",
      [scratch = std::make_shared<TraversalScratch>(),
       origins = std::make_shared<std::vector<Tuple*>>(),
       buffer = std::make_shared<std::vector<IntrusivePtr<UnfoldedTuple>>>()](
          const Tuple& in, MapCollector<UnfoldedTuple>& collector) {
        // Multiplex copies preserve the delivering tuple's id (they are
        // copies), so unfolding the SM copy carries the ids Def. 6.2 needs.
        buffer->clear();
        // The tuple is intrusively ref-counted; materializing a new handle
        // from the reference is safe.
        TuplePtr derived(const_cast<Tuple*>(&in));
        UnfoldInto(derived, *origins, *scratch, *buffer);
        for (auto& u : *buffer) collector.Emit(std::move(u));
        buffer->clear();
      });
  // Build-time wiring: SM = multiplex output 0 feeds the Map. The caller
  // connects multiplex -> sink (SO, output 1) and map -> consumer (U); for a
  // Multiplex every output receives a copy, so output order is immaterial.
  topology.Connect(mux, map);
  return ComposedSu{mux, mux, map};
}

}  // namespace genealog
