#include "genealog/su.h"

namespace genealog {

void UnfoldInto(const TuplePtr& derived, std::vector<Tuple*>& origins,
                TraversalScratch& scratch,
                std::vector<IntrusivePtr<UnfoldedTuple>>& out) {
  origins.clear();
  FindProvenance(derived.get(), origins, scratch);
  out.reserve(out.size() + origins.size());
  for (Tuple* o : origins) {
    auto u = MakeTuple<UnfoldedTuple>(derived->ts);
    u->stimulus = derived->stimulus;
    u->derived = derived;
    u->derived_id = derived->id;
    u->derived_ts = derived->ts;
    u->origin = TuplePtr(o);
    u->origin_id = o->id;
    u->origin_ts = o->ts;
    u->origin_kind = o->kind;
    out.push_back(std::move(u));
  }
}

void SuNode::OnTuple(TuplePtr t) {
  // SO: the delivering stream passes through unchanged.
  if (!EmitTupleTo(0, t)) return;

  // U: one unfolded tuple per originating tuple. The traversal itself is the
  // per-sink-tuple cost the paper studies in Figure 14.
  const int64_t t0 = NowNanos();
  result_.clear();
  FindProvenance(t.get(), result_, scratch_);
  const int64_t elapsed = NowNanos() - t0;
  {
    std::lock_guard lock(mu_);
    traversal_ms_.Add(NanosToMillis(elapsed));
    graph_size_.Add(static_cast<double>(result_.size()));
  }

  // The unfolded tuples of one sink tuple are created straight into a single
  // outgoing chunk — they share a timestamp, so no watermark can separate
  // them, and the pool hands their storage back from the previous graph's
  // reclamation.
  StreamBatch chunk;
  for (Tuple* o : result_) {
    auto u = MakeTuple<UnfoldedTuple>(t->ts);
    u->stimulus = t->stimulus;
    u->id = NextTupleId();
    u->derived = t;
    u->derived_id = t->id;
    u->derived_ts = t->ts;
    u->origin = TuplePtr(o);
    u->origin_id = o->id;
    u->origin_ts = o->ts;
    u->origin_kind = o->kind;
    chunk.tuples.push_back(std::move(u));
  }
  EmitBatchTo(1, std::move(chunk));
}

ComposedSu BuildComposedSu(Topology& topology, const std::string& name) {
  auto* mux = topology.Add<MultiplexNode>(name + ".multiplex");
  auto* map = topology.Add<MapNode<Tuple, UnfoldedTuple>>(
      name + ".unfold",
      [scratch = std::make_shared<TraversalScratch>(),
       origins = std::make_shared<std::vector<Tuple*>>(),
       buffer = std::make_shared<std::vector<IntrusivePtr<UnfoldedTuple>>>()](
          const Tuple& in, MapCollector<UnfoldedTuple>& collector) {
        // Multiplex copies preserve the delivering tuple's id (they are
        // copies), so unfolding the SM copy carries the ids Def. 6.2 needs.
        buffer->clear();
        // The tuple is intrusively ref-counted; materializing a new handle
        // from the reference is safe.
        TuplePtr derived(const_cast<Tuple*>(&in));
        UnfoldInto(derived, *origins, *scratch, *buffer);
        for (auto& u : *buffer) collector.Emit(std::move(u));
        buffer->clear();
      });
  // Build-time wiring: SM = multiplex output 0 feeds the Map. The caller
  // connects multiplex -> sink (SO, output 1) and map -> consumer (U); for a
  // Multiplex every output receives a copy, so output order is immaterial.
  topology.Connect(mux, map);
  return ComposedSu{mux, mux, map};
}

}  // namespace genealog
