// Remote lineage serving: LineageQuery over TCP, and its client mirror.
//
// A LineageService binds a loopback/LAN endpoint and answers the full
// LineageQuery surface (Contributors, DerivedFrom, Expand, Lookup,
// RetainedRecordIds, Stats, Select) against a shared LineageStore — the one a
// running BuiltQuery/BuiltDataflow maintains online, or one rebuilt offline
// by ReplayProvenanceFile / LoadSnapshot. Wire format:
// net/lineage_protocol.h over the same length-prefixed TcpChannel framing the
// data plane uses, so the transport-level hostile-input guards (frame bound,
// malformed-length rejection) apply unchanged.
//
// Threading. One accept thread plus one thread per live connection, bounded
// by LineageServiceOptions::max_connections — the accept loop parks until a
// slot frees instead of spawning unboundedly. Every request executes under
// the store's shared lock (queries run concurrently with ingest, exactly
// like in-process callers), so serving while the topology runs is the
// normal case, not a special one. Stop() aborts the listener and every live
// channel, then joins all threads; a request that decodes but fails executes
// answers a named error response, while an undecodable frame gets a
// best-effort error response and a disconnect (the byte stream can no longer
// be trusted).
//
// The client is deliberately synchronous and single-stream: one request in
// flight per LineageClient, methods mirroring LineageQuery one for one. Not
// thread-safe — give each thread its own client (connections are cheap;
// every request is self-contained, see the protocol header).
#ifndef GENEALOG_GENEALOG_LINEAGE_SERVICE_H_
#define GENEALOG_GENEALOG_LINEAGE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "genealog/lineage_store.h"
#include "net/channel.h"
#include "net/lineage_protocol.h"

namespace genealog {

// Per-service request accounting, exposed while serving and after Stop().
struct ServeStats {
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;  // malformed frames + failed executions
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  // Request handling latency (decode -> response encoded), microseconds.
  double latency_p50_us = 0;
  double latency_p99_us = 0;
};

struct LineageServiceOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; see LineageService::port()
  // Upper bound on concurrent connection-serving threads; the accept loop
  // parks when every slot is busy.
  size_t max_connections = 4;
  // LZ-compress response bodies when that wins (protocol flag bit 0).
  bool compress_responses = true;
  // Honor the kShutdown op (CLI serve/connect pairs and tests use it for
  // deterministic teardown); off by default — a remote peer must not be able
  // to stop an operator console's service unasked.
  bool allow_remote_shutdown = false;
};

// Splits "host:port" (e.g. "127.0.0.1:7841"); host defaults to 127.0.0.1
// when the string is just ":port" or a bare port. Throws std::runtime_error
// on an unparseable address.
LineageServiceOptions ParseServeAddr(const std::string& addr);

class LineageService {
 public:
  explicit LineageService(std::shared_ptr<const LineageStore> store,
                          LineageServiceOptions options = {});
  ~LineageService();  // Stop()s if still running

  LineageService(const LineageService&) = delete;
  LineageService& operator=(const LineageService&) = delete;

  // Binds, listens and starts the accept thread. Throws std::runtime_error
  // if the endpoint cannot be bound.
  void Start();
  // Idempotent: aborts the listener and every live connection, joins all
  // threads.
  void Stop();
  // Blocks until Stop() is called or a remote shutdown request is honored.
  // Does not itself stop the service — the owner calls Stop() (or destroys
  // the service) afterwards.
  void Wait();

  bool running() const;
  // The bound port (the ephemeral choice when options.port was 0); valid
  // after Start().
  uint16_t port() const;
  // "host:port" with the bound port.
  std::string address() const;
  ServeStats stats() const;

 private:
  void AcceptLoop(int listen_fd);
  void ServeConnection(std::shared_ptr<TcpChannel> channel);
  LineageResponse Execute(const LineageRequest& req);
  void RecordRequest(size_t in_bytes, size_t out_bytes, bool error,
                     double latency_us);

  struct Conn {
    std::thread thread;
    std::shared_ptr<TcpChannel> channel;
    std::shared_ptr<std::atomic<bool>> done;
  };

  const std::shared_ptr<const LineageStore> store_;
  const LineageServiceOptions options_;
  const uint8_t generation_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool started_ = false;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  std::list<Conn> conns_;

  mutable std::mutex stats_mu_;
  ServeStats counters_;
  SampleStats latency_us_;
};

// Synchronous remote mirror of LineageQuery. The constructor connects and
// validates the server hello (magic + version); every method round-trips one
// request. A server-side failure or protocol violation throws
// std::runtime_error — a missing tuple id is not a failure (empty result /
// nullopt, same as in-process).
class LineageClient {
 public:
  using Entry = LineageStore::Entry;

  // `addr` is "host:port" as for ParseServeAddr.
  explicit LineageClient(const std::string& addr);

  // The server's generation byte from the hello — changes when the service
  // restarts, letting a reconnecting console detect it is no longer talking
  // to the incarnation it first attached to.
  uint8_t server_generation() const { return generation_; }

  std::vector<Entry> Contributors(uint64_t sink_tuple_id);
  std::vector<Entry> DerivedFrom(uint64_t source_tuple_id);
  std::vector<Entry> Expand(uint64_t tuple_id, int hops);
  std::optional<Entry> Lookup(uint64_t tuple_id);
  std::vector<uint64_t> RetainedRecordIds();
  std::vector<Entry> Select(const LineagePredicate& p);
  LineageStore::Stats Stats();
  // Asks the server to stop serving (requires
  // LineageServiceOptions::allow_remote_shutdown; throws otherwise).
  void Shutdown();

 private:
  LineageResponse RoundTrip(LineageRequest req);

  std::unique_ptr<TcpChannel> channel_;
  uint64_t next_request_id_ = 1;
  uint8_t generation_ = 0;
};

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_LINEAGE_SERVICE_H_
