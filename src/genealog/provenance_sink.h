// Terminal consumer of a (completely) unfolded delivering stream: groups the
// per-origin tuples back into one record per sink tuple and hands each record
// to a writer (the paper stores provenance on disk; the evaluation notes its
// volume is 0.003%–0.5% of the source data, a ratio the benches also report).
//
// Unfolded tuples of one sink tuple arrive within a bounded event-time
// horizon (the MU join window); a group is finalized once the watermark
// passes derived_ts + finalize_slack, and all groups finalize at flush.
//
// File output is double-buffered and asynchronous by default
// (GENEALOG_ASYNC_PROV_SINK, common/async_writer.h): records serialize into
// an in-memory buffer a background thread flushes, so disk latency leaves
// the operator thread — with bounded buffering, and file contents
// byte-identical to the synchronous path.
#ifndef GENEALOG_GENEALOG_PROVENANCE_SINK_H_
#define GENEALOG_GENEALOG_PROVENANCE_SINK_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/async_writer.h"
#include "common/engine_options.h"
#include "common/int_math.h"
#include "core/type_registry.h"
#include "genealog/provenance_record.h"
#include "genealog/unfolded.h"
#include "spe/node.h"

namespace genealog {

class LineageStore;

// Process-wide default for the asynchronous provenance writer, read from the
// environment once (on unless GENEALOG_ASYNC_PROV_SINK=0).
bool DefaultAsyncProvSink();

// What a provenance sink does with finalized records. Engine-wide knobs
// (async writer on/off, writer buffer size) live in the embedded
// EngineOptions — one struct, one FromEnv() — so this spec only adds the
// sink-specific wiring: where the file goes, who consumes records in
// process, and which lineage store (if any) indexes them.
struct ProvenanceSinkSpec {
  // Event-time slack before a group is considered complete; pass the total
  // stateful window span of the deployment (0 is fine for intra-process SU
  // streams, whose groups arrive contiguously).
  int64_t finalize_slack = 0;
  // If non-empty, records are serialized and appended to this file, like the
  // paper's on-disk provenance store.
  std::string file_path;
  // Optional in-process consumer, called per finalized record.
  std::function<void(const ProvenanceRecord&)> consumer;
  // Optional live lineage index (genealog/lineage_store.h): each finalized
  // record is Ingest()ed after it is written. Not owned; must outlive the
  // node. Null (the default) costs one pointer check per record.
  LineageStore* lineage = nullptr;
  // Engine knobs the sink honors: async_prov_sink (double-buffered
  // asynchronous file writing — ignored without file_path, output bytes
  // identical either way) and prov_buffer_bytes (writer buffer swap
  // threshold). A default-constructed EngineOptions carries the GENEALOG_*
  // environment defaults.
  EngineOptions engine;
};

class ProvenanceSinkNode final : public SingleInputNode {
 public:
  ProvenanceSinkNode(std::string name, ProvenanceSinkSpec options);
  ~ProvenanceSinkNode() override;

  uint64_t records() const { return records_; }
  uint64_t origin_tuples() const { return origin_tuples_; }
  uint64_t bytes_written() const { return bytes_written_; }
  double mean_origins_per_record() const {
    return records_ == 0 ? 0.0
                         : static_cast<double>(origin_tuples_) /
                               static_cast<double>(records_);
  }
  bool async() const { return writer_ != nullptr; }
  // True once the background writer reported a short write (disk full, I/O
  // error): the file is truncated even though bytes_written_ counts the
  // serialized volume. Also surfaced as a one-shot stderr warning at flush
  // and teardown.
  bool write_error() const;

 protected:
  void OnTuple(TuplePtr t) override;
  void OnWatermark(int64_t wm) override;
  void OnFlush() override;

 private:
  struct Group {
    ProvenanceRecord record;
    std::unordered_set<uint64_t> seen_origin_ids;
  };

  void FinalizeBefore(int64_t ts_horizon);
  void Finalize(Group& group);
  void WarnOnWriteError();

  ProvenanceSinkSpec options_;
  std::FILE* file_ = nullptr;
  std::unique_ptr<AsyncFileWriter> writer_;  // null in synchronous mode
  // Groups in creation (= derived ts) order, with an id index.
  std::list<Group> groups_;
  std::unordered_map<uint64_t, std::list<Group>::iterator> by_id_;
  ByteWriter scratch_;
  bool write_error_warned_ = false;
  uint64_t records_ = 0;
  uint64_t origin_tuples_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_PROVENANCE_SINK_H_
