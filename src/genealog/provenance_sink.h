// Terminal consumer of a (completely) unfolded delivering stream: groups the
// per-origin tuples back into one record per sink tuple and hands each record
// to a writer (the paper stores provenance on disk; the evaluation notes its
// volume is 0.003%–0.5% of the source data, a ratio the benches also report).
//
// Unfolded tuples of one sink tuple arrive within a bounded event-time
// horizon (the MU join window); a group is finalized once the watermark
// passes derived_ts + finalize_slack, and all groups finalize at flush.
#ifndef GENEALOG_GENEALOG_PROVENANCE_SINK_H_
#define GENEALOG_GENEALOG_PROVENANCE_SINK_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/int_math.h"
#include "core/type_registry.h"
#include "genealog/provenance_record.h"
#include "genealog/unfolded.h"
#include "spe/node.h"

namespace genealog {

struct ProvenanceSinkOptions {
  // Event-time slack before a group is considered complete; pass the total
  // stateful window span of the deployment (0 is fine for intra-process SU
  // streams, whose groups arrive contiguously).
  int64_t finalize_slack = 0;
  // If non-empty, records are serialized and appended to this file, like the
  // paper's on-disk provenance store.
  std::string file_path;
  // Optional in-process consumer, called per finalized record.
  std::function<void(const ProvenanceRecord&)> consumer;
};

class ProvenanceSinkNode final : public SingleInputNode {
 public:
  ProvenanceSinkNode(std::string name, ProvenanceSinkOptions options);
  ~ProvenanceSinkNode() override;

  uint64_t records() const { return records_; }
  uint64_t origin_tuples() const { return origin_tuples_; }
  uint64_t bytes_written() const { return bytes_written_; }
  double mean_origins_per_record() const {
    return records_ == 0 ? 0.0
                         : static_cast<double>(origin_tuples_) /
                               static_cast<double>(records_);
  }

 protected:
  void OnTuple(TuplePtr t) override;
  void OnWatermark(int64_t wm) override;
  void OnFlush() override;

 private:
  struct Group {
    ProvenanceRecord record;
    std::unordered_set<uint64_t> seen_origin_ids;
  };

  void FinalizeBefore(int64_t ts_horizon);
  void Finalize(Group& group);

  ProvenanceSinkOptions options_;
  std::FILE* file_ = nullptr;
  // Groups in creation (= derived ts) order, with an id index.
  std::list<Group> groups_;
  std::unordered_map<uint64_t, std::list<Group>::iterator> by_id_;
  ByteWriter scratch_;
  uint64_t records_ = 0;
  uint64_t origin_tuples_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_PROVENANCE_SINK_H_
