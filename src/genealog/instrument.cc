#include "genealog/instrument.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "baseline/resolver.h"
#include "genealog/mu.h"
#include "genealog/provenance_sink.h"
#include "genealog/su.h"
#include "net/send_receive.h"
#include "spe/parallel.h"

namespace genealog {
namespace {

using dataflow_internal::OpKind;
using dataflow_internal::Plan;
using dataflow_internal::PlanInput;
using dataflow_internal::PlanOp;

ChannelEnds AddChannel(BuiltDataflow& out, bool use_tcp) {
  return AddChannelTo(out.channels, use_tcp);
}

// Adds a Send node carrying the engine's wire-codec knobs and registers it
// for BuiltDataflow::wire_stats(). Mirrors queries::AddSend.
SendNode* WeaveSend(BuiltDataflow& out, Topology& topo,
                    const std::string& name, ByteChannel* channel,
                    const EngineOptions& engine) {
  auto* send = topo.Add<SendNode>(name, channel, WireCodecFrom(engine));
  out.send_nodes.push_back(send);
  return send;
}

// Inserts an SU (fused, or the composed Figure 5B construction) whose SO
// output feeds `so_consumer` and U output feeds `u_consumer`; returns the
// node the delivering stream connects to. Mirrors queries::AddSu.
Node* WeaveSu(BuiltDataflow& out, Topology& topo, bool composed,
              const std::string& name, Node* so_consumer, Node* u_consumer) {
  if (composed) {
    ComposedSu su = BuildComposedSu(topo, name);
    topo.Connect(su.so_node, so_consumer);
    topo.Connect(su.u_node, u_consumer);
    return su.entry;
  }
  auto* su = topo.Add<SuNode>(name);
  topo.Connect(su, so_consumer);  // output 0 = SO
  topo.Connect(su, u_consumer);   // output 1 = U
  out.su_nodes.push_back(su);
  return su;
}

struct MuEnds {
  Node* derived_entry;
  Node* upstream_entry;
};

MuEnds WeaveMu(Topology& topo, bool composed, const std::string& name,
               int64_t ws, Node* consumer) {
  if (composed) {
    ComposedMu mu = BuildComposedMu(topo, name, ws);
    topo.Connect(mu.output, consumer);
    return {mu.derived_entry, mu.upstream_entry};
  }
  auto* mu = topo.Add<MuNode>(name, ws);
  topo.Connect(mu, consumer);
  return {mu, mu};
}

}  // namespace

void LowerDataflow(const Plan& plan, BuiltDataflow& out) {
  const DataflowOptions& opts = plan.options;
  const EngineOptions& engine = opts.engine;
  const ProvenanceMode mode = opts.mode;

  // --- instances, topologies, window spans ---------------------------------
  std::map<int, Topology*> topo_of;  // instance id -> topology, ascending
  std::map<int, int64_t> span_of;    // stateful window span per instance
  int64_t total_span = 0;
  for (const PlanOp& op : plan.ops) {
    topo_of[op.instance] = nullptr;
    span_of[op.instance] += op.window_span;
    total_span += op.window_span;
  }
  out.total_window_span = total_span;
  const bool distributed = topo_of.size() > 1;
  const int max_instance = topo_of.rbegin()->first;

  for (auto& [instance, topo] : topo_of) {
    auto owned = std::make_unique<Topology>(instance, mode);
    owned->Configure(engine);
    topo = owned.get();
    out.topologies.push_back(std::move(owned));
  }
  // Distributed GL/BL record provenance on a dedicated instance (§6).
  Topology* prov_topo = nullptr;
  if (distributed && mode != ProvenanceMode::kNone) {
    auto owned = std::make_unique<Topology>(max_instance + 1, mode);
    owned->Configure(engine);
    prov_topo = owned.get();
    out.topologies.push_back(std::move(owned));
  }
  out.n_instances = static_cast<int>(out.topologies.size());

  const int64_t slack = opts.finalize_slack.value_or(total_span);

  // --- operator nodes -------------------------------------------------------
  // entry_of[i] = the node producers of op i connect into; exit_of[i] = the
  // node producing op i's output. They diverge from the operator node itself
  // exactly where the weaving interposes machinery: BL source taps on the
  // exit side, SUs / BL sink taps on the sink's entry side.
  std::vector<Node*> node_of(plan.ops.size(), nullptr);
  std::vector<Node*> entry_of(plan.ops.size(), nullptr);
  std::vector<Node*> exit_of(plan.ops.size(), nullptr);
  std::vector<std::pair<Topology*, Node*>> source_taps;  // BL, plan order
  size_t sink_op = plan.ops.size();
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    if (plan.ops[i].kind == OpKind::kSink) sink_op = i;
  }
  // U-stream exit of a parallel stage whose replicas got their own SUs (set
  // below); the GL sink weaving routes it into the provenance sink instead
  // of interposing another SU.
  Node* parallel_u_exit = nullptr;
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    const PlanOp& op = plan.ops[i];
    Topology& topo = *topo_of.at(op.instance);
    if (op.is_parallel_stage()) {
      // Key-partitioned stage: partition -> N replicas -> keyed merge. The
      // stage is atomic on one instance; producers connect into the
      // partition, consumers read the merge.
      //
      // Parallel-SU placement: when the merged stream feeds the sink
      // directly (same process, same instance, fused unfolders), each
      // replica gets its own SU so the per-sink-tuple provenance traversal
      // (the Figure 14 cost) runs inside the shards, in parallel, instead
      // of serializing after the merge. SO streams keep flowing into the
      // merge — the fused SU forwards the same tuple objects, so the
      // merge's order-token handshake is unaffected — and the U streams
      // union into the provenance sink. Every merged tuple reaches the sink
      // (the merge filters nothing), so the record set is exactly the
      // single-SU set. The composed (Figure 5B) SU clones tuples instead of
      // forwarding them, which would break the token handshake: those
      // builds keep the single SU after the merge.
      const bool parallel_su =
          mode == ProvenanceMode::kGenealog && !distributed &&
          !engine.composed_unfolders && sink_op < plan.ops.size() &&
          plan.ops[sink_op].inputs.size() == 1 &&
          plan.ops[sink_op].inputs[0].op == i &&
          plan.ops[sink_op].instance == op.instance;
      auto* partition = op.make_partition(topo);
      auto* merge = topo.Add<KeyedMergeNode>(op.name + ".merge");
      Node* u_merge = parallel_su
                          ? topo.Add<UnionNode>(op.name + ".u_merge")
                          : nullptr;
      for (int r = 0; r < op.parallelism; ++r) {
        Node* replica = op.make_replica(topo, merge, r);
        topo.Connect(partition, replica);
        if (parallel_su) {
          auto* su = topo.Add<SuNode>("SU.par" + std::to_string(r));
          topo.Connect(replica, su);
          topo.Connect(su, merge);    // output 0 = SO
          topo.Connect(su, u_merge);  // output 1 = U
          out.su_nodes.push_back(su);
        } else {
          topo.Connect(replica, merge);
        }
      }
      if (parallel_su) parallel_u_exit = u_merge;
      node_of[i] = merge;
      entry_of[i] = partition;
      exit_of[i] = merge;
      if (op.kind == OpKind::kSink) {
        throw std::logic_error("Dataflow: a Sink cannot be a parallel stage");
      }
      continue;
    }
    node_of[i] = op.make(topo);
    entry_of[i] = exit_of[i] = node_of[i];
    switch (op.kind) {
      case OpKind::kSource: {
        out.sources.push_back(static_cast<SourceNodeBase*>(node_of[i]));
        if (mode == ProvenanceMode::kBaseline) {
          // BL ships (a copy of) every source stream to the resolver.
          auto* tap = topo.Add<MultiplexNode>("bl.source_tap." + op.name);
          topo.Connect(node_of[i], tap);
          exit_of[i] = tap;
          source_taps.emplace_back(&topo, tap);
        }
        break;
      }
      case OpKind::kSink:
        out.sinks.push_back(static_cast<SinkNode*>(node_of[i]));
        sink_op = i;
        break;
      case OpKind::kOperator:
        break;
    }
  }

  // --- provenance weaving around the sink -----------------------------------
  MuEnds mu{nullptr, nullptr};
  if (mode == ProvenanceMode::kGenealog) {
    ProvenanceSinkSpec pso;
    pso.finalize_slack = slack;
    pso.file_path = opts.provenance_file;
    pso.consumer = opts.provenance_consumer;
    pso.engine = engine;
    if (engine.lineage_store || !engine.lineage_serve_addr.empty()) {
      // A serve address implies the store — nothing to serve without one.
      out.lineage_store =
          std::make_shared<LineageStore>(MakeLineageOptions(engine));
    }
    pso.lineage = out.lineage_store.get();
    Topology& sink_topo = *topo_of.at(plan.ops[sink_op].instance);
    Node* sink_node = node_of[sink_op];
    if (!distributed) {
      // Theorem 5.3: one SU before the sink; U feeds the provenance sink.
      // With parallel-SU placement the unfolding already happened inside
      // the shards — route the unioned U streams straight in.
      auto* psink = sink_topo.Add<ProvenanceSinkNode>("K2", pso);
      out.provenance_sink = psink;
      if (parallel_u_exit != nullptr) {
        sink_topo.Connect(parallel_u_exit, psink);
      } else {
        entry_of[sink_op] = WeaveSu(out, sink_topo, engine.composed_unfolders,
                                    "SU", sink_node, psink);
      }
    } else {
      auto* psink = prov_topo->Add<ProvenanceSinkNode>("K2", pso);
      out.provenance_sink = psink;
      // MU join window: the stateful window span of the instance producing
      // the derived (sink-side) stream (§6.1).
      mu = WeaveMu(*prov_topo, engine.composed_unfolders, "MU",
                   span_of.at(plan.ops[sink_op].instance), psink);
      ChannelEnds ch = AddChannel(out, engine.use_tcp);
      auto* send_derived = WeaveSend(out, sink_topo, "send.U_sink", ch.send, engine);
      auto* recv_derived =
          prov_topo->Add<ReceiveNode>("recv.U_sink", ch.recv);
      entry_of[sink_op] = WeaveSu(out, sink_topo, engine.composed_unfolders,
                                  "SU.sink", sink_node, send_derived);
      prov_topo->Connect(recv_derived, mu.derived_entry);  // MU port 0
    }
  } else if (mode == ProvenanceMode::kBaseline) {
    BaselineResolverOptions bro;
    bro.slack = slack;
    bro.evict = opts.baseline_oracle_eviction;
    bro.file_path = opts.provenance_file;
    bro.consumer = opts.provenance_consumer;
    Topology& sink_topo = *topo_of.at(plan.ops[sink_op].instance);
    Node* sink_node = node_of[sink_op];
    auto* sink_tap = sink_topo.Add<MultiplexNode>("bl.sink_tap");
    sink_topo.Connect(sink_tap, sink_node);
    entry_of[sink_op] = sink_tap;
    if (!distributed) {
      auto* resolver =
          sink_topo.Add<BaselineResolverNode>("bl.resolver", bro);
      out.baseline_resolver = resolver;
      // Resolver port order matters: 0 = annotated sink stream, 1.. = source
      // streams.
      sink_topo.Connect(sink_tap, resolver);
      for (auto& [topo, tap] : source_taps) topo->Connect(tap, resolver);
    } else {
      auto* resolver =
          prov_topo->Add<BaselineResolverNode>("bl.resolver", bro);
      out.baseline_resolver = resolver;
      ChannelEnds ch = AddChannel(out, engine.use_tcp);
      auto* send_ann = WeaveSend(out, sink_topo, "send.sink_ann", ch.send, engine);
      auto* recv_ann = prov_topo->Add<ReceiveNode>("recv.sink_ann", ch.recv);
      sink_topo.Connect(sink_tap, send_ann);
      prov_topo->Connect(recv_ann, resolver);  // port 0
      // Whole source streams shipped to the provenance instance — the
      // network cost §7 observes sinking the distributed baseline.
      for (size_t s = 0; s < source_taps.size(); ++s) {
        auto& [src_topo, tap] = source_taps[s];
        ChannelEnds ch_src = AddChannel(out, engine.use_tcp);
        auto* send_src = WeaveSend(out, *src_topo, "send.source_copy" + std::to_string(s), ch_src.send, engine);
        auto* recv_src = prov_topo->Add<ReceiveNode>(
            "recv.source_copy" + std::to_string(s), ch_src.recv);
        src_topo->Connect(tap, send_src);
        prov_topo->Connect(recv_src, resolver);  // ports 1..
      }
    }
  }

  // --- data edges -----------------------------------------------------------
  // Consumers in plan order, input ports in declared order: input port
  // indices (Join left/right, Union/MU merge order) are a pure function of
  // the plan. Same-instance edges connect directly; instance-crossing edges
  // get a serializing channel — and, under GL, the per-delivering-stream SU
  // whose U feeds the next MU upstream port.
  size_t n_cross = 0;
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    const PlanOp& op = plan.ops[i];
    for (const PlanInput& in : op.inputs) {
      const PlanOp& producer = plan.ops[in.op];
      Topology& from_topo = *topo_of.at(producer.instance);
      Topology& to_topo = *topo_of.at(op.instance);
      Node* from = exit_of[in.op];
      Node* to = entry_of[i];
      if (producer.instance == op.instance) {
        from_topo.Connect(from, to);
        continue;
      }
      const std::string tag = std::to_string(n_cross++);
      ChannelEnds ch = AddChannel(out, engine.use_tcp);
      auto* send = WeaveSend(out, from_topo, "send.data" + tag, ch.send, engine);
      auto* recv = to_topo.Add<ReceiveNode>("recv.data" + tag, ch.recv);
      if (mode == ProvenanceMode::kGenealog) {
        ChannelEnds ch_u = AddChannel(out, engine.use_tcp);
        auto* send_u = WeaveSend(out, from_topo, "send.U" + tag, ch_u.send, engine);
        auto* recv_u = prov_topo->Add<ReceiveNode>("recv.U" + tag, ch_u.recv);
        Node* su = WeaveSu(out, from_topo, engine.composed_unfolders,
                           "SU.send" + tag, send, send_u);
        from_topo.Connect(from, su);
        prov_topo->Connect(recv_u, mu.upstream_entry);  // MU ports 1..
      } else {
        from_topo.Connect(from, send);
      }
      to_topo.Connect(recv, to);
    }
  }

  // Remote lineage serving rides on the store: bind the endpoint at Build()
  // so a console can attach before (and while) the dataflow runs.
  if (out.lineage_store != nullptr && !engine.lineage_serve_addr.empty()) {
    out.lineage_service = std::make_shared<LineageService>(
        out.lineage_store, ParseServeAddr(engine.lineage_serve_addr));
    out.lineage_service->Start();
  }
}

uint64_t BuiltDataflow::provenance_records() const {
  if (provenance_sink != nullptr) return provenance_sink->records();
  if (baseline_resolver != nullptr) return baseline_resolver->records();
  return 0;
}

double BuiltDataflow::mean_origins_per_record() const {
  if (provenance_sink != nullptr) {
    return provenance_sink->mean_origins_per_record();
  }
  if (baseline_resolver != nullptr) {
    return baseline_resolver->mean_origins_per_record();
  }
  return 0.0;
}

}  // namespace genealog
