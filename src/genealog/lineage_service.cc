#include "genealog/lineage_service.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace genealog {
namespace {

// Generation bytes distinguish service incarnations across restarts; a
// process-wide counter is enough (the hello only needs to *change* when the
// serving store may have).
std::atomic<uint8_t> g_generation{0};

sockaddr_in MakeSockaddr(const std::string& host, uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    throw std::runtime_error("lineage service: bad host address '" + host +
                             "' (want a dotted IPv4 address)");
  }
  return sa;
}

}  // namespace

LineageServiceOptions ParseServeAddr(const std::string& addr) {
  LineageServiceOptions o;
  const size_t colon = addr.rfind(':');
  std::string port_str;
  if (colon == std::string::npos) {
    port_str = addr;
  } else {
    if (colon > 0) o.host = addr.substr(0, colon);
    port_str = addr.substr(colon + 1);
  }
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (port_str.empty() || end == port_str.c_str() || *end != '\0' ||
      port < 0 || port > 65535) {
    throw std::runtime_error("lineage service: bad address '" + addr +
                             "' (want host:port)");
  }
  o.port = static_cast<uint16_t>(port);
  return o;
}

LineageService::LineageService(std::shared_ptr<const LineageStore> store,
                               LineageServiceOptions options)
    : store_(std::move(store)),
      options_(std::move(options)),
      generation_(static_cast<uint8_t>(
          g_generation.fetch_add(1, std::memory_order_relaxed) + 1)) {
  if (store_ == nullptr) {
    throw std::logic_error("LineageService: no lineage store to serve");
  }
}

LineageService::~LineageService() { Stop(); }

void LineageService::Start() {
  std::unique_lock lock(mu_);
  if (started_) throw std::logic_error("LineageService: already started");
  sockaddr_in sa = MakeSockaddr(options_.host, options_.port);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("LineageService: socket() failed");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("LineageService: cannot bind " + options_.host +
                             ":" + std::to_string(options_.port));
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("LineageService: getsockname failed");
  }
  port_ = ntohs(sa.sin_port);
  started_ = true;
  stopping_ = false;
  // The fd goes in by value: the thread's copy is immutable while it runs
  // (Stop() clears the member under mu_, which this thread must not touch).
  accept_thread_ = std::thread([this, fd = listen_fd_] { AcceptLoop(fd); });
}

void LineageService::AcceptLoop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down by Stop()
    }
    auto channel = std::make_shared<TcpChannel>(fd);
    std::unique_lock lock(mu_);
    // Reap finished connection threads so the list stays bounded.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    // Bounded-thread serving: park until a connection slot frees.
    cv_.wait(lock, [this] {
      size_t active = 0;
      for (const Conn& c : conns_) {
        if (!c.done->load(std::memory_order_acquire)) ++active;
      }
      return stopping_ || active < options_.max_connections;
    });
    if (stopping_) return;  // channel destructor closes the accepted fd
    conns_.emplace_back();
    Conn& conn = conns_.back();
    conn.channel = channel;
    conn.done = std::make_shared<std::atomic<bool>>(false);
    auto done = conn.done;
    conn.thread = std::thread([this, channel, done] {
      ServeConnection(channel);
      // Shut the socket down now: the Conn entry (and its fd) is only reaped
      // on a later accept, and a peer draining until close must not wait for
      // that.
      channel->Abort();
      done->store(true, std::memory_order_release);
      cv_.notify_all();
    });
  }
}

void LineageService::ServeConnection(std::shared_ptr<TcpChannel> channel) {
  {
    std::lock_guard lock(stats_mu_);
    ++counters_.connections;
  }
  LineageHello hello;
  hello.generation = generation_;
  if (!channel->SendFrame(EncodeLineageHello(hello))) return;

  std::vector<uint8_t> frame;
  for (;;) {
    try {
      if (!channel->RecvFrame(frame)) return;  // orderly close
    } catch (const std::exception&) {
      // Malformed length prefix: the stream is corrupt — disconnect.
      std::lock_guard lock(stats_mu_);
      ++counters_.errors;
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    LineageResponse resp;
    bool stream_ok = true;
    try {
      resp = Execute(DecodeLineageRequest(frame));
    } catch (const std::exception& e) {
      // Undecodable request: answer a named error (request id unknowable),
      // then drop the connection — the byte stream may be out of sync.
      resp.ok = false;
      resp.error = e.what();
      stream_ok = false;
    }
    std::vector<uint8_t> out =
        EncodeLineageResponse(resp, options_.compress_responses);
    const size_t out_bytes = out.size();
    const bool sent = channel->SendFrame(std::move(out));
    const double latency_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    RecordRequest(frame.size(), out_bytes, !resp.ok, latency_us);
    if (!sent || !stream_ok) return;
    if (resp.ok && resp.op == LineageOp::kShutdown) {
      // Honored remote shutdown: wake Wait(); the owner performs the Stop().
      std::lock_guard lock(mu_);
      shutdown_requested_ = true;
      cv_.notify_all();
      return;
    }
  }
}

LineageResponse LineageService::Execute(const LineageRequest& req) {
  LineageResponse resp;
  resp.op = req.op;
  resp.request_id = req.request_id;
  try {
    switch (req.op) {
      case LineageOp::kContributors:
        resp.entries = store_->Contributors(req.tuple_id);
        break;
      case LineageOp::kDerivedFrom:
        resp.entries = store_->DerivedFrom(req.tuple_id);
        break;
      case LineageOp::kExpand:
        resp.entries = store_->Expand(req.tuple_id, req.hops);
        break;
      case LineageOp::kLookup: {
        auto e = store_->Lookup(req.tuple_id);
        if (e.has_value()) resp.entries.push_back(std::move(*e));
        break;
      }
      case LineageOp::kRetainedRecordIds:
        resp.ids = store_->RetainedRecordIds();
        break;
      case LineageOp::kStats:
        resp.stats = store_->stats();
        break;
      case LineageOp::kSelect:
        resp.entries = store_->Select(req.predicate);
        break;
      case LineageOp::kShutdown:
        if (!options_.allow_remote_shutdown) {
          resp.ok = false;
          resp.error = "lineage service: remote shutdown disabled";
        }
        break;
    }
  } catch (const std::exception& e) {
    resp.entries.clear();
    resp.ids.clear();
    resp.ok = false;
    resp.error = e.what();
  }
  return resp;
}

void LineageService::RecordRequest(size_t in_bytes, size_t out_bytes,
                                   bool error, double latency_us) {
  std::lock_guard lock(stats_mu_);
  ++counters_.requests;
  if (error) ++counters_.errors;
  counters_.bytes_received += in_bytes;
  counters_.bytes_sent += out_bytes;
  latency_us_.Add(latency_us);
}

void LineageService::Stop() {
  std::list<Conn> conns;
  std::thread accept_thread;
  int fd = -1;
  {
    std::unique_lock lock(mu_);
    if (!started_) return;
    if (!stopping_) {
      stopping_ = true;
      if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
      for (Conn& c : conns_) c.channel->Abort();
      cv_.notify_all();
    }
    accept_thread = std::move(accept_thread_);
    conns = std::move(conns_);
    conns_.clear();
    fd = listen_fd_;
    listen_fd_ = -1;
  }
  if (accept_thread.joinable()) accept_thread.join();
  for (Conn& c : conns) {
    if (c.thread.joinable()) c.thread.join();
  }
  if (fd >= 0) ::close(fd);
}

void LineageService::Wait() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return stopping_ || shutdown_requested_; });
}

bool LineageService::running() const {
  std::lock_guard lock(mu_);
  return started_ && !stopping_;
}

uint16_t LineageService::port() const {
  std::lock_guard lock(mu_);
  return port_;
}

std::string LineageService::address() const {
  return options_.host + ":" + std::to_string(port());
}

ServeStats LineageService::stats() const {
  std::lock_guard lock(stats_mu_);
  ServeStats s = counters_;
  if (latency_us_.count() > 0) {
    s.latency_p50_us = latency_us_.percentile(50);
    s.latency_p99_us = latency_us_.percentile(99);
  }
  return s;
}

LineageClient::LineageClient(const std::string& addr) {
  const LineageServiceOptions target = ParseServeAddr(addr);
  sockaddr_in sa = MakeSockaddr(target.host, target.port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("lineage client: socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    throw std::runtime_error("lineage client: cannot connect to " + addr);
  }
  channel_ = std::make_unique<TcpChannel>(fd);
  std::vector<uint8_t> frame;
  if (!channel_->RecvFrame(frame)) {
    throw std::runtime_error("lineage client: connection closed before hello");
  }
  generation_ = DecodeLineageHello(frame).generation;
}

LineageResponse LineageClient::RoundTrip(LineageRequest req) {
  req.request_id = next_request_id_++;
  if (!channel_->SendFrame(EncodeLineageRequest(req))) {
    throw std::runtime_error("lineage client: connection lost while sending");
  }
  std::vector<uint8_t> frame;
  if (!channel_->RecvFrame(frame)) {
    throw std::runtime_error("lineage client: connection lost while waiting "
                             "for a response");
  }
  LineageResponse resp = DecodeLineageResponse(frame);
  if (!resp.ok) {
    throw std::runtime_error(
        std::string("lineage service error (") +
        LineageOpName(static_cast<uint8_t>(req.op)) + "): " + resp.error);
  }
  if (resp.request_id != req.request_id || resp.op != req.op) {
    throw std::runtime_error(
        "lineage client: response does not match the request in flight");
  }
  return resp;
}

std::vector<LineageClient::Entry> LineageClient::Contributors(
    uint64_t sink_tuple_id) {
  LineageRequest req;
  req.op = LineageOp::kContributors;
  req.tuple_id = sink_tuple_id;
  return RoundTrip(req).entries;
}

std::vector<LineageClient::Entry> LineageClient::DerivedFrom(
    uint64_t source_tuple_id) {
  LineageRequest req;
  req.op = LineageOp::kDerivedFrom;
  req.tuple_id = source_tuple_id;
  return RoundTrip(req).entries;
}

std::vector<LineageClient::Entry> LineageClient::Expand(uint64_t tuple_id,
                                                        int hops) {
  LineageRequest req;
  req.op = LineageOp::kExpand;
  req.tuple_id = tuple_id;
  req.hops = hops;
  return RoundTrip(req).entries;
}

std::optional<LineageClient::Entry> LineageClient::Lookup(uint64_t tuple_id) {
  LineageRequest req;
  req.op = LineageOp::kLookup;
  req.tuple_id = tuple_id;
  LineageResponse resp = RoundTrip(req);
  if (resp.entries.empty()) return std::nullopt;
  return std::move(resp.entries.front());
}

std::vector<uint64_t> LineageClient::RetainedRecordIds() {
  LineageRequest req;
  req.op = LineageOp::kRetainedRecordIds;
  return RoundTrip(req).ids;
}

std::vector<LineageClient::Entry> LineageClient::Select(
    const LineagePredicate& p) {
  LineageRequest req;
  req.op = LineageOp::kSelect;
  req.predicate = p;
  return RoundTrip(req).entries;
}

LineageStore::Stats LineageClient::Stats() {
  LineageRequest req;
  req.op = LineageOp::kStats;
  return RoundTrip(req).stats;
}

void LineageClient::Shutdown() {
  LineageRequest req;
  req.op = LineageOp::kShutdown;
  RoundTrip(req);
}

}  // namespace genealog
