#include "genealog/mu.h"

#include <algorithm>

#include "common/int_math.h"

namespace genealog {
namespace {

uint64_t OriginKey(const UnfoldedTuple& u) { return u.origin_id; }
uint64_t DerivedKey(const UnfoldedTuple& u) { return u.derived_id; }

}  // namespace

void MuNode::IndexedWindow::Insert(uint64_t key, UnfoldedPtr u) {
  by_id[key].push_back(u.get());
  order.push_back(std::move(u));
}

void MuNode::IndexedWindow::PurgeBefore(int64_t horizon_ts,
                                        uint64_t (*key_of)(const UnfoldedTuple&)) {
  while (!order.empty() && order.front()->ts < horizon_ts) {
    UnfoldedTuple* victim = order.front().get();
    const uint64_t key = key_of(*victim);
    auto it = by_id.find(key);
    // Entries per id are in arrival (= ts) order, so the victim is first.
    auto& vec = it->second;
    vec.erase(std::find(vec.begin(), vec.end(), victim));
    if (vec.empty()) by_id.erase(it);
    order.pop_front();
  }
}

void MuNode::OnMergedTuple(size_t port, TuplePtr t) {
  auto u = StaticPointerCast<UnfoldedTuple>(std::move(t));
  if (port == 0) {
    // Derived stream (Def. 6.4): SOURCE-originating tuples pass through.
    if (u->origin_kind == TupleKind::kSource) {
      EmitTupleAll(u);
      return;
    }
    if (auto it = upstream_.by_id.find(u->origin_id);
        it != upstream_.by_id.end()) {
      for (UnfoldedTuple* v : it->second) {
        if (u->ts - v->ts <= ws_) EmitRewrite(*u, *v);
      }
    }
    const uint64_t key = u->origin_id;  // read before the move below
    derived_.Insert(key, std::move(u));
  } else {
    if (auto it = derived_.by_id.find(u->derived_id);
        it != derived_.by_id.end()) {
      for (UnfoldedTuple* d : it->second) {
        if (u->ts - d->ts <= ws_) EmitRewrite(*d, *u);
      }
    }
    const uint64_t key = u->derived_id;  // read before the move below
    upstream_.Insert(key, std::move(u));
  }
}

void MuNode::OnMergedWatermark(int64_t wm) {
  const int64_t horizon = SatSub(wm, ws_);
  derived_.PurgeBefore(horizon, &OriginKey);
  upstream_.PurgeBefore(horizon, &DerivedKey);
  ForwardWatermark(wm);
}

void MuNode::EmitRewrite(const UnfoldedTuple& derived,
                         const UnfoldedTuple& upstream) {
  auto out = MakeTuple<UnfoldedTuple>(std::max(derived.ts, upstream.ts));
  out->stimulus = std::max(derived.stimulus, upstream.stimulus);
  out->id = NextTupleId();
  out->derived = derived.derived;
  out->derived_id = derived.derived_id;
  out->derived_ts = derived.derived_ts;
  out->origin = upstream.origin;
  out->origin_id = upstream.origin_id;
  out->origin_ts = upstream.origin_ts;
  out->origin_kind = upstream.origin_kind;
  EmitTupleAll(out);
}

ComposedMu BuildComposedMu(Topology& topology, const std::string& name,
                           int64_t ws) {
  auto* upstream_union = topology.Add<UnionNode>(name + ".upstream_union");
  auto* mux = topology.Add<MultiplexNode>(name + ".multiplex");
  auto* f_remote = topology.Add<FilterNode<UnfoldedTuple>>(
      name + ".not_source",
      [](const UnfoldedTuple& u) { return u.origin_kind != TupleKind::kSource; });
  auto* f_source = topology.Add<FilterNode<UnfoldedTuple>>(
      name + ".source",
      [](const UnfoldedTuple& u) { return u.origin_kind == TupleKind::kSource; });
  auto* join = topology.Add<JoinNode<UnfoldedTuple, UnfoldedTuple, UnfoldedTuple>>(
      name + ".join", JoinOptions{ws},
      // Left = upstream unfolded stream, right = derived unfolded stream:
      // match ti.ID = t.IDO (Def. 6.4).
      [](const UnfoldedTuple& up, const UnfoldedTuple& d) {
        return up.derived_id == d.origin_id;
      },
      [](const UnfoldedTuple& up, const UnfoldedTuple& d) {
        auto out = MakeTuple<UnfoldedTuple>(0);  // ts set by the Join node
        out->derived = d.derived;
        out->derived_id = d.derived_id;
        out->derived_ts = d.derived_ts;
        out->origin = up.origin;
        out->origin_id = up.origin_id;
        out->origin_ts = up.origin_ts;
        out->origin_kind = up.origin_kind;
        return out;
      });
  auto* out_union = topology.Add<UnionNode>(name + ".out_union");

  topology.Connect(upstream_union, join);  // join port 0 (left)
  topology.Connect(mux, f_remote);
  topology.Connect(mux, f_source);
  topology.Connect(f_remote, join);  // join port 1 (right)
  topology.Connect(join, out_union);
  topology.Connect(f_source, out_union);

  return ComposedMu{mux, upstream_union, out_union};
}

}  // namespace genealog
