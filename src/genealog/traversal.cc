#include "genealog/traversal.h"

#include <atomic>

#include "common/engine_options.h"

namespace genealog {
namespace {

std::atomic<bool>& EpochFlag() {
  static std::atomic<bool> enabled{
      engine_defaults::EpochTraversal()};
  return enabled;
}

// Tickets are globally unique, so a stale mark left on a tuple by a finished
// traversal can never alias a live one. 0 is the "never visited" initializer
// stamped by the Tuple constructor (the counter starts past it and only
// grows). Marks are equality-compared only, so uniqueness is the whole
// contract — global monotonicity is not needed, which lets each thread draw
// tickets from a private block and touch the shared counter once per
// kTicketBlock traversals instead of once per traversal. Under the pool
// scheduler every SU in the process funnels through a handful of worker
// threads, so the shared fetch_add would otherwise become a per-traversal
// contention point.
std::atomic<uint64_t> g_next_ticket{1};

constexpr uint64_t kTicketBlock = 256;

struct TicketBlock {
  uint64_t next = 0;
  uint64_t end = 0;
};
thread_local TicketBlock t_ticket_block;

uint64_t DrawTicket() {
  TicketBlock& block = t_ticket_block;
  if (block.next == block.end) {
    block.next =
        g_next_ticket.fetch_add(kTicketBlock, std::memory_order_relaxed);
    block.end = block.next + kTicketBlock;
  }
  return block.next++;
}

// Number of epoch traversals in flight. The fast path requires exclusive
// ownership of the mark words it stamps; the counter hands that ownership to
// at most one traversal at a time (acq_rel on both ends makes the previous
// owner's relaxed mark writes visible to the next owner). A traversal that
// loses the race — two SUs walking concurrently, overlapping or not — takes
// the pointer-set path, whose scratch it owns exclusively.
std::atomic<uint32_t> g_active_epoch_walkers{0};

// Visited policies. Both claim nodes in identical order, so the BFS discovery
// sequence — and therefore every downstream provenance artifact — is byte
// identical across paths.
struct HashVisited {
  traversal_internal::PointerSet& set;
  static constexpr bool failed = false;  // the side table cannot collide

  bool TryClaimRoot(Tuple* t) { return set.Insert(t); }
  bool TryClaim(Tuple* t) { return set.Insert(t); }
};

struct EpochVisited {
  uint64_t ticket;
  bool failed = false;

  // Root claim: a relaxed CAS — the one place where a claim collision
  // (another actor writing mark words despite the walker token) can surface;
  // failure falls the whole traversal back to the pointer-set path.
  bool TryClaimRoot(Tuple* t) {
    std::atomic<uint64_t>& mark = t->traversal_mark();
    uint64_t cur = mark.load(std::memory_order_relaxed);
    if (cur == ticket) return false;  // already claimed by this traversal
    if (!mark.compare_exchange_strong(cur, ticket, std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
      failed = true;
      return false;
    }
    return true;
  }

  // Interior claims: the walker token grants exclusive ownership of every
  // mark word for the duration of the walk (hash-path traversers never touch
  // them, other epoch traversers fell back at entry), so a relaxed
  // load + store pair suffices — a locked CAS here costs ~20x the store
  // (measured) for a race the token already excludes. TSan plus the
  // concurrent-traversal stress gate the exclusivity invariant.
  bool TryClaim(Tuple* t) {
    std::atomic<uint64_t>& mark = t->traversal_mark();
    if (mark.load(std::memory_order_relaxed) == ticket) return false;
    mark.store(ticket, std::memory_order_relaxed);
    return true;
  }
};

// A claim collision can only surface at the root claim (interior claims
// cannot fail), so a failed Walk returns before appending anything and the
// caller can simply rerun on the pointer-set path.
template <typename Visited>
void Walk(Tuple* root, std::vector<Tuple*>& result,
          traversal_internal::WorkRing& ring, Visited& visited) {
  ring.Clear();
  if (!visited.TryClaimRoot(root)) return;
  ring.Push(root);
  while (!ring.Empty()) {
    Tuple* t = ring.Pop();
    auto enqueue = [&](Tuple* c) {
      if (c != nullptr && visited.TryClaim(c)) ring.Push(c);
    };
    switch (t->kind) {
      case TupleKind::kSource:
      case TupleKind::kRemote:
        result.push_back(t);
        break;
      case TupleKind::kMap:
      case TupleKind::kMultiplex:
        enqueue(t->u1());
        break;
      case TupleKind::kJoin:
        enqueue(t->u1());
        enqueue(t->u2());
        break;
      case TupleKind::kAggregate: {
        // Window tuples are linked U2 -> N -> ... -> U1 (inclusive). Note a
        // deliberate deviation from the paper's Listing 1, which starts the
        // walk at U2.N and stops at U1: for a single-tuple window U1 == U2,
        // and if that tuple's N was already set by an overlapping later
        // window, Listing 1 as printed walks past U1 through the rest of the
        // chain. Walking from U2 itself with the same U1 termination is
        // equivalent for U1 != U2 and correct for U1 == U2 (found by the
        // random-pipeline provenance fuzzer on stacked sliding aggregates).
        Tuple* temp = t->u2();
        while (temp != nullptr && temp != t->u1()) {
          enqueue(temp);
          temp = temp->next();
        }
        enqueue(t->u1());
        break;
      }
    }
  }
}

}  // namespace

namespace traversal_internal {

void PointerSet::Grow() {
  const size_t new_capacity = capacity_ * 2;
  Slot* new_slots = new Slot[new_capacity]();
  mem::AddTraversalScratchBytes(
      static_cast<int64_t>(new_capacity * sizeof(Slot)));
  const size_t mask = new_capacity - 1;
  for (size_t i = 0; i < capacity_; ++i) {
    if (slots_[i].gen != gen_) continue;
    size_t j = Hash(slots_[i].ptr) & mask;
    while (new_slots[j].gen == gen_) j = (j + 1) & mask;
    new_slots[j] = slots_[i];
  }
  if (slots_ != inline_) {
    delete[] slots_;
    mem::AddTraversalScratchBytes(
        -static_cast<int64_t>(capacity_ * sizeof(Slot)));
  }
  slots_ = new_slots;
  capacity_ = new_capacity;
  ++grows_;
}

void WorkRing::Grow() {
  const size_t new_capacity = capacity_ * 2;
  Tuple** new_data = new Tuple*[new_capacity];
  mem::AddTraversalScratchBytes(
      static_cast<int64_t>(new_capacity * sizeof(Tuple*)));
  // Unwrap the live window [head_, tail_) to the front of the new buffer.
  const size_t n = tail_ - head_;
  for (size_t i = 0; i < n; ++i) {
    new_data[i] = data_[(head_ + i) & (capacity_ - 1)];
  }
  if (data_ != inline_) {
    delete[] data_;
    mem::AddTraversalScratchBytes(
        -static_cast<int64_t>(capacity_ * sizeof(Tuple*)));
  }
  data_ = new_data;
  capacity_ = new_capacity;
  head_ = 0;
  tail_ = n;
  ++grows_;
}

}  // namespace traversal_internal

bool EpochTraversalEnabled() {
  return EpochFlag().load(std::memory_order_relaxed);
}

void SetEpochTraversal(bool enabled) {
  EpochFlag().store(enabled, std::memory_order_relaxed);
}

void FindProvenance(Tuple* root, std::vector<Tuple*>& result,
                    TraversalScratch& scratch, TraversalPath path) {
  if (root == nullptr) return;
  if (path == TraversalPath::kAuto && EpochTraversalEnabled()) {
    if (g_active_epoch_walkers.fetch_add(1, std::memory_order_acq_rel) == 0) {
      EpochVisited visited{DrawTicket()};
      Walk(root, result, scratch.ring_, visited);
      g_active_epoch_walkers.fetch_sub(1, std::memory_order_acq_rel);
      // A root-claim collision aborts before anything was appended; redo on
      // the pointer-set path.
      if (!visited.failed) return;
    } else {
      // Another epoch traversal is in flight: it owns the mark words, so
      // this call falls back to the pointer set it owns exclusively.
      g_active_epoch_walkers.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  scratch.visited_.Clear();
  HashVisited visited{scratch.visited_};
  Walk(root, result, scratch.ring_, visited);
}

std::vector<Tuple*> FindProvenance(Tuple* root) {
  std::vector<Tuple*> result;
  TraversalScratch scratch;
  FindProvenance(root, result, scratch);
  return result;
}

}  // namespace genealog
