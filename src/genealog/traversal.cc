#include "genealog/traversal.h"

namespace genealog {
namespace {

void EnqueueIfNotVisited(Tuple* t, std::deque<Tuple*>& queue,
                         std::unordered_set<const Tuple*>& visited) {
  if (t == nullptr) return;
  if (visited.insert(t).second) {
    queue.push_back(t);
  }
}

}  // namespace

void FindProvenance(Tuple* root, std::vector<Tuple*>& result,
                    TraversalScratch& scratch) {
  if (root == nullptr) return;
  auto& queue = scratch.queue_;
  auto& visited = scratch.visited_;
  scratch.Clear();

  visited.insert(root);
  queue.push_back(root);
  while (!queue.empty()) {
    Tuple* t = queue.front();
    queue.pop_front();
    switch (t->kind) {
      case TupleKind::kSource:
      case TupleKind::kRemote:
        result.push_back(t);
        break;
      case TupleKind::kMap:
      case TupleKind::kMultiplex:
        EnqueueIfNotVisited(t->u1(), queue, visited);
        break;
      case TupleKind::kJoin:
        EnqueueIfNotVisited(t->u1(), queue, visited);
        EnqueueIfNotVisited(t->u2(), queue, visited);
        break;
      case TupleKind::kAggregate: {
        // Window tuples are linked U2 -> N -> ... -> U1 (inclusive). Note a
        // deliberate deviation from the paper's Listing 1, which starts the
        // walk at U2.N and stops at U1: for a single-tuple window U1 == U2,
        // and if that tuple's N was already set by an overlapping later
        // window, Listing 1 as printed walks past U1 through the rest of the
        // chain. Walking from U2 itself with the same U1 termination is
        // equivalent for U1 != U2 and correct for U1 == U2 (found by the
        // random-pipeline provenance fuzzer on stacked sliding aggregates).
        Tuple* temp = t->u2();
        while (temp != nullptr && temp != t->u1()) {
          EnqueueIfNotVisited(temp, queue, visited);
          temp = temp->next();
        }
        EnqueueIfNotVisited(t->u1(), queue, visited);
        break;
      }
    }
  }
}

std::vector<Tuple*> FindProvenance(Tuple* root) {
  std::vector<Tuple*> result;
  TraversalScratch scratch;
  FindProvenance(root, result, scratch);
  return result;
}

}  // namespace genealog
