// MU — the multi-stream unfolder (Definition 6.4, Figures 6 and 8).
//
// Inputs: one *derived* unfolded delivering stream (port 0) and any number of
// *upstream* unfolded delivering streams (ports 1..k). A derived tuple whose
// originating part is of type SOURCE is forwarded as-is; one whose
// originating part is REMOTE is replaced by the upstream tuples whose
// delivering id equals its originating id (ti.ID = t.IDO), rewritten to carry
// the derived (sink-side) attributes with the upstream originating part.
//
// The match is a windowed equi-join on ids: matching tuples can be up to the
// sum of the window sizes of the stateful operators of the instance producing
// the derived stream apart in event time (§6.1), which is the `ws` the
// deployment passes here.
//
// Two implementations:
//  * MuNode — fused operator with hash-indexed windows;
//  * BuildComposedMu — the literal Figure 8 construction from standard
//    operators: Union (upstreams) -> Join <- Filter(not SOURCE) <- Multiplex
//    <- derived, plus Filter(SOURCE) -> Union -> output.
#ifndef GENEALOG_GENEALOG_MU_H_
#define GENEALOG_GENEALOG_MU_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "genealog/unfolded.h"
#include "spe/join.h"
#include "spe/node.h"
#include "spe/stateless.h"
#include "spe/topology.h"

namespace genealog {

class MuNode final : public MergingNode {
 public:
  MuNode(std::string name, int64_t ws)
      : MergingNode(std::move(name)), ws_(ws) {}

 protected:
  void OnMergedTuple(size_t port, TuplePtr t) override;
  void OnMergedWatermark(int64_t wm) override;

 private:
  using UnfoldedPtr = IntrusivePtr<UnfoldedTuple>;
  // Window buffer with a hash index: arrival-ordered deque for purging plus
  // id -> tuples (arrival order) for matching.
  struct IndexedWindow {
    std::deque<UnfoldedPtr> order;
    std::unordered_map<uint64_t, std::vector<UnfoldedTuple*>> by_id;

    void Insert(uint64_t key, UnfoldedPtr u);
    void PurgeBefore(int64_t horizon_ts,
                     uint64_t (*key_of)(const UnfoldedTuple&));
  };

  void EmitRewrite(const UnfoldedTuple& derived, const UnfoldedTuple& upstream);

  int64_t ws_;
  IndexedWindow derived_;   // keyed by origin_id
  IndexedWindow upstream_;  // keyed by derived_id
};

// The Figure 8 construction. The caller connects:
//   * the derived stream to `derived_entry`,
//   * each upstream stream to `upstream_entry` (a Union; with one upstream it
//     degenerates to a forwarding merge, which the paper notes is optional),
//   * `output` to the consumer.
struct ComposedMu {
  Node* derived_entry;
  Node* upstream_entry;
  Node* output;
};
ComposedMu BuildComposedMu(Topology& topology, const std::string& name,
                           int64_t ws);

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_MU_H_
