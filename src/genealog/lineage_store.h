// Live, compact, queryable lineage index over finalized provenance records.
//
// The provenance plane used to terminate in a flat file: answering "where did
// this alert come from" meant stopping the world and replaying bytes. The
// LineageStore turns the same finalized records the sink writes into a
// serving structure maintained *online*: the provenance consumer
// (ProvenanceSinkNode in intra mode, the MU-fed sink instance in distributed
// mode) calls Ingest() per finalized record, off the emit path — the file
// bytes are untouched and a disabled store costs the sink one null-pointer
// check.
//
// Index layout. Every distinct tuple id maps to one interned slot holding the
// tuple's serialized bytes (header + payload; storing TuplePtrs would pin
// whole contribution graphs through their U1/U2/N references) plus forward
// and backward adjacency as u32 slot lists:
//   * bwd — the origins of this record (non-empty only for derived/sink
//     tuples; this *is* the provenance record);
//   * fwd — the derived records this tuple contributed to (the mirror).
// Node uids (the high 24 bits of every tuple id — see Node::NextTupleId) are
// dictionary-coded: each slot stores a u16 code into a per-store uid table,
// so per-slot key overhead stays flat no matter how wide the topology is.
//
// Retention. Records append to the current epoch; once it holds
// epoch_records records it is sealed and a new one opens. Whole epochs are
// evicted ring-buffer style from the front when either bound trips: more
// than retain_records records retained, or the epoch's newest derived
// event-time falling more than retain_span behind the newest ingested
// record. Eviction unlinks each record's edges and drops slots whose
// reference count (1 per live record + 1 per appearance in a live record's
// origin list) reaches zero — memory stays flat under millions of alerts,
// and queries over evicted ids answer truncated-but-correct.
//
// Concurrency contract. One std::shared_mutex: Ingest takes it exclusively
// for an O(origins) critical section per record; every query takes it shared,
// so lookups run concurrently with each other and interleave with ingestion
// while the topology executes. Materialized results (fresh TuplePtrs
// deserialized from the stored bytes) are snapshots — safe to hold after the
// lock drops, unaffected by later eviction.
#ifndef GENEALOG_GENEALOG_LINEAGE_STORE_H_
#define GENEALOG_GENEALOG_LINEAGE_STORE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/engine_options.h"
#include "core/tuple.h"
#include "genealog/provenance_record.h"

namespace genealog {

struct LineageOptions {
  // Evict whole epochs once more than this many records are retained
  // (0 = unbounded).
  size_t retain_records = 1 << 20;
  // Evict epochs whose newest derived event-time falls more than this many
  // time units behind the newest ingested record (0 = no horizon).
  int64_t retain_span = 0;
  // Records per epoch — the eviction granularity. Smaller epochs track a
  // tight retain_records bound more closely at the cost of more bookkeeping.
  size_t epoch_records = 1024;
};

// The lineage subset of EngineOptions, spelled as store options.
inline LineageOptions MakeLineageOptions(const EngineOptions& engine) {
  LineageOptions o;
  o.retain_records = engine.lineage_retain_records;
  o.retain_span = engine.lineage_retain_span;
  return o;
}

// Predicate for LineageStore::Select — an event-time-range scan over the
// interned index, optionally narrowed to one producing node and/or to record
// roots. Serves both in-process callers and the wire protocol
// (net/lineage_protocol.h), which is why it is plain data.
struct LineagePredicate {
  int64_t min_ts = INT64_MIN;  // inclusive event-time range
  int64_t max_ts = INT64_MAX;
  // When set, only tuples produced by this node uid (the high 24 bits of a
  // tuple id — see Node::NextTupleId) match.
  bool has_node_uid = false;
  uint64_t node_uid = 0;
  // Only record roots (derived/sink tuples heading a provenance record).
  bool records_only = false;
  // Truncate the (ts, id)-ordered result to the first `limit` entries
  // (0 = unlimited).
  uint64_t limit = 0;
};

class LineageStore {
 public:
  // A materialized tuple: the interned key fields plus a fresh TuplePtr
  // deserialized from the stored bytes (meta-attribute pointers null, same as
  // any tuple rebuilt from the wire).
  struct Entry {
    uint64_t id = 0;
    int64_t ts = 0;
    uint16_t type_tag = 0;
    TuplePtr tuple;
  };

  struct Stats {
    uint64_t records_ingested = 0;
    uint64_t records_retained = 0;
    uint64_t tuples_retained = 0;  // interned slots (derived + origins)
    uint64_t edges_retained = 0;   // origin links (fwd mirrors not counted)
    uint64_t records_evicted = 0;
    uint64_t epochs_evicted = 0;
    uint64_t bytes_retained = 0;  // serialized tuple payload bytes
    uint64_t node_uids = 0;       // dictionary-coded node uid count
    // Derived event-time span currently retained; min > max when empty.
    int64_t min_retained_ts = 0;
    int64_t max_retained_ts = -1;
  };

  explicit LineageStore(LineageOptions options = {});

  LineageStore(const LineageStore&) = delete;
  LineageStore& operator=(const LineageStore&) = delete;

  // Indexes one finalized record. A second record for the same derived id
  // merges its origins into the first (distributed re-finalization safety).
  void Ingest(const ProvenanceRecord& record);

  // Backward closure: every retained tuple the given sink/derived tuple
  // transitively derives from, excluding the key itself. For a fully
  // unfolded GeneaLog record this is the contributing source-tuple set.
  std::vector<Entry> Contributors(uint64_t sink_tuple_id) const;

  // Forward closure: every retained derived tuple the given source tuple
  // transitively contributed to, excluding the key itself.
  std::vector<Entry> DerivedFrom(uint64_t source_tuple_id) const;

  // k-hop neighborhood over forward and backward edges combined, excluding
  // the key itself.
  std::vector<Entry> Expand(uint64_t tuple_id, int hops) const;

  // Point lookup of one interned tuple.
  std::optional<Entry> Lookup(uint64_t tuple_id) const;

  // Ids of every retained record's derived tuple, oldest epoch first.
  std::vector<uint64_t> RetainedRecordIds() const;

  // Predicate scan over the retained index: every live interned tuple whose
  // event time falls in [p.min_ts, p.max_ts], optionally restricted to one
  // producing node uid and/or to record roots, sorted by (ts, id) and
  // truncated to p.limit when nonzero.
  std::vector<Entry> Select(const LineagePredicate& p) const;

  // Persists the retained window to `path`: the snapshot is written to
  // `path + ".tmp"` and atomically renamed into place, led by a versioned
  // header (magic, version, payload size, FNV-1a checksum) so a restarted
  // node can reject torn or corrupted files instead of loading them. Safe to
  // call while ingestion runs (takes the shared lock, like a query).
  void SaveSnapshot(const std::string& path) const;

  // Rebuilds a snapshot into this store through the same Ingest path the
  // live consumer uses, preserving epoch boundaries and the history counters
  // (records_ingested / evicted) of the saving store. The store must be
  // empty. Returns the number of records restored. Throws std::runtime_error
  // on bad magic/version/checksum or structural mismatch and
  // std::out_of_range on truncation — a corrupt snapshot never half-loads.
  uint64_t LoadSnapshot(const std::string& path);

  Stats stats() const;
  const LineageOptions& options() const { return options_; }

 private:
  struct Slot {
    uint64_t id = 0;
    int64_t ts = 0;
    uint16_t type_tag = 0;
    uint16_t node_code = 0;
    // 1 per live record rooted here + 1 per appearance in a live record's
    // origin list; the slot is freed when this reaches zero.
    uint32_t refs = 0;
    bool live = false;
    bool is_record = false;
    std::vector<uint8_t> bytes;
    std::vector<uint32_t> fwd;
    std::vector<uint32_t> bwd;
  };

  struct Epoch {
    std::vector<uint32_t> records;  // derived slots, ingest order
    int64_t min_ts = 0;
    int64_t max_ts = 0;
    bool sealed = false;
  };

  uint32_t InternLocked(uint64_t id, int64_t ts, const Tuple& tuple);
  void DerefLocked(uint32_t slot);
  void EvictFrontLocked();
  void MaybeEvictLocked();
  Entry MaterializeLocked(uint32_t slot) const;
  template <typename Neighbors>
  std::vector<Entry> ClosureLocked(uint64_t root_id, int max_hops,
                                   Neighbors neighbors) const;

  const LineageOptions options_;

  mutable std::shared_mutex mu_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  std::unordered_map<uint64_t, uint32_t> id_index_;
  std::unordered_map<uint64_t, uint16_t> node_code_;
  std::deque<Epoch> epochs_;
  int64_t latest_ts_ = 0;
  bool any_ingested_ = false;

  uint64_t records_ingested_ = 0;
  uint64_t records_retained_ = 0;
  uint64_t tuples_retained_ = 0;
  uint64_t edges_retained_ = 0;
  uint64_t records_evicted_ = 0;
  uint64_t epochs_evicted_ = 0;
  uint64_t bytes_retained_ = 0;
};

// Replays a provenance file (the sink's on-disk format: serialized derived
// tuple | u32 origin count | serialized origins, repeated) into `store`,
// reconstructing each record through the same Ingest path the live consumer
// uses. Returns the number of records replayed. Throws std::runtime_error on
// unreadable files and std::out_of_range on truncated ones.
uint64_t ReplayProvenanceFile(const std::string& path, LineageStore& store);

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_LINEAGE_STORE_H_
