#include "genealog/provenance_sink.h"

#include <stdexcept>

#include "common/engine_options.h"
#include "genealog/lineage_store.h"

namespace genealog {

bool DefaultAsyncProvSink() {
  const bool enabled = engine_defaults::AsyncProvSink();
  return enabled;
}

ProvenanceSinkNode::ProvenanceSinkNode(std::string name,
                                       ProvenanceSinkSpec options)
    : SingleInputNode(std::move(name)), options_(std::move(options)) {
  if (!options_.file_path.empty()) {
    file_ = std::fopen(options_.file_path.c_str(), "wb");
    if (file_ == nullptr) {
      throw std::runtime_error("cannot open provenance file " +
                               options_.file_path);
    }
    if (options_.engine.async_prov_sink) {
      writer_ = std::make_unique<AsyncFileWriter>(
          file_, options_.engine.prov_buffer_bytes);
    }
  }
}

ProvenanceSinkNode::~ProvenanceSinkNode() {
  if (writer_ != nullptr) {
    // Teardown after an aborted run reaches here without OnFlush: drain what
    // is buffered (a partial-but-well-formed prefix, same as the sync path
    // would leave), surface any write error, then join the writer thread.
    writer_->Flush();
    WarnOnWriteError();
    writer_.reset();
  }
  if (file_ != nullptr) std::fclose(file_);
}

bool ProvenanceSinkNode::write_error() const {
  return writer_ != nullptr && writer_->write_error();
}

void ProvenanceSinkNode::WarnOnWriteError() {
  if (!write_error() || write_error_warned_) return;
  write_error_warned_ = true;
  std::fprintf(stderr,
               "ProvenanceSinkNode %s: background write to %s failed "
               "(disk full / I/O error); the provenance file is truncated\n",
               name().c_str(), options_.file_path.c_str());
}

void ProvenanceSinkNode::OnTuple(TuplePtr t) {
  auto u = StaticPointerCast<UnfoldedTuple>(std::move(t));
  auto it = by_id_.find(u->derived_id);
  if (it == by_id_.end()) {
    groups_.emplace_back();
    auto group_it = std::prev(groups_.end());
    group_it->record.derived = u->derived;
    group_it->record.derived_id = u->derived_id;
    group_it->record.derived_ts = u->derived_ts;
    it = by_id_.emplace(u->derived_id, group_it).first;
  }
  Group& group = *it->second;
  // The same source tuple can reach a sink tuple over two paths that split
  // across SPE instances (it is deduplicated within one instance by the
  // traversal's visited set, but not across MU rewrites); dedup by id here.
  if (group.seen_origin_ids.insert(u->origin_id).second) {
    group.record.origins.push_back(u->origin);
  }
}

void ProvenanceSinkNode::OnWatermark(int64_t wm) {
  FinalizeBefore(SatSub(wm, options_.finalize_slack));
}

void ProvenanceSinkNode::OnFlush() {
  FinalizeBefore(kWatermarkMax);
  // End-of-stream: everything buffered must be in the file before the node
  // reports done, in either mode — probes may read the file while the node
  // (and its FILE*) is still alive.
  if (writer_ != nullptr) {
    writer_->Flush();
    WarnOnWriteError();
  } else if (file_ != nullptr) {
    std::fflush(file_);
  }
}

void ProvenanceSinkNode::FinalizeBefore(int64_t ts_horizon) {
  // Groups are in first-appearance order, which for MU outputs is not always
  // derived_ts order; scan the whole (small) list.
  for (auto it = groups_.begin(); it != groups_.end();) {
    if (it->record.derived_ts < ts_horizon) {
      Finalize(*it);
      by_id_.erase(it->record.derived_id);
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
}

void ProvenanceSinkNode::Finalize(Group& group) {
  ++records_;
  origin_tuples_ += group.record.origins.size();

  scratch_.Clear();
  SerializeTuple(*group.record.derived, scratch_);
  scratch_.PutU32(static_cast<uint32_t>(group.record.origins.size()));
  for (const TuplePtr& o : group.record.origins) {
    SerializeTuple(*o, scratch_);
  }
  bytes_written_ += scratch_.size();
  if (writer_ != nullptr) {
    writer_->Append(scratch_.bytes().data(), scratch_.size());
  } else if (file_ != nullptr) {
    std::fwrite(scratch_.bytes().data(), 1, scratch_.size(), file_);
  }
  if (options_.lineage != nullptr) {
    options_.lineage->Ingest(group.record);
  }
  if (options_.consumer) {
    options_.consumer(group.record);
  }
}

}  // namespace genealog
