#include "genealog/lineage_store.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

#include "common/int_math.h"
#include "core/type_registry.h"

namespace genealog {

namespace {

// Tuple ids carry the producing node's uid in the high bits (Node::NextTupleId
// packs a 40-bit sequence below it); the store dictionary-codes that uid so
// each slot stores a u16 code instead of repeating the wide prefix.
constexpr int kNodeUidShift = 40;

bool Contains(const std::vector<uint32_t>& v, uint32_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

void EraseOne(std::vector<uint32_t>& v, uint32_t x) {
  auto it = std::find(v.begin(), v.end(), x);
  assert(it != v.end() && "lineage adjacency mirror out of sync");
  if (it != v.end()) {
    *it = v.back();
    v.pop_back();
  }
}

}  // namespace

LineageStore::LineageStore(LineageOptions options) : options_(options) {
  assert(options_.epoch_records > 0);
}

uint32_t LineageStore::InternLocked(uint64_t id, int64_t ts,
                                    const Tuple& tuple) {
  auto it = id_index_.find(id);
  if (it != id_index_.end()) return it->second;

  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.id = id;
  s.ts = ts;
  s.type_tag = tuple.type_tag();
  s.refs = 0;
  s.live = true;
  s.is_record = false;

  const uint64_t uid = id >> kNodeUidShift;
  auto [code_it, inserted] =
      node_code_.emplace(uid, static_cast<uint16_t>(node_code_.size()));
  if (inserted && node_code_.size() > 65536) {
    throw std::length_error("LineageStore: node uid dictionary overflow");
  }
  s.node_code = code_it->second;

  ByteWriter w;
  SerializeTuple(tuple, w);
  s.bytes = w.TakeBytes();
  bytes_retained_ += s.bytes.size();
  ++tuples_retained_;

  id_index_.emplace(id, slot);
  return slot;
}

void LineageStore::DerefLocked(uint32_t slot) {
  Slot& s = slots_[slot];
  assert(s.refs > 0);
  if (--s.refs != 0) return;
  // No record roots here and no live record lists it as an origin; the
  // adjacency invariant guarantees both lists are already empty.
  assert(s.fwd.empty() && s.bwd.empty());
  id_index_.erase(s.id);
  bytes_retained_ -= s.bytes.size();
  --tuples_retained_;
  s.live = false;
  s.bytes.clear();
  s.bytes.shrink_to_fit();
  s.fwd.clear();
  s.fwd.shrink_to_fit();
  s.bwd.clear();
  s.bwd.shrink_to_fit();
  free_slots_.push_back(slot);
}

void LineageStore::EvictFrontLocked() {
  Epoch epoch = std::move(epochs_.front());
  epochs_.pop_front();
  for (uint32_t d : epoch.records) {
    // Unlink the record's origin edges, then drop the record root itself.
    // The derived slot may survive as an origin of newer records; only its
    // record-ness (and bwd list) goes away.
    std::vector<uint32_t> origins = std::move(slots_[d].bwd);
    slots_[d].bwd.clear();
    for (uint32_t o : origins) {
      EraseOne(slots_[o].fwd, d);
      --edges_retained_;
      DerefLocked(o);
    }
    slots_[d].is_record = false;
    --records_retained_;
    ++records_evicted_;
    DerefLocked(d);
  }
  ++epochs_evicted_;
}

void LineageStore::MaybeEvictLocked() {
  // Whole-epoch granularity, and never the epoch still accepting records:
  // the bound may overshoot by up to one epoch, but the just-ingested record
  // always survives its own Ingest.
  while (epochs_.size() > 1) {
    const bool over_count = options_.retain_records > 0 &&
                            records_retained_ > options_.retain_records;
    const bool over_span =
        options_.retain_span > 0 &&
        epochs_.front().max_ts < SatSub(latest_ts_, options_.retain_span);
    if (!over_count && !over_span) break;
    EvictFrontLocked();
  }
}

void LineageStore::Ingest(const ProvenanceRecord& record) {
  std::unique_lock lock(mu_);
  ++records_ingested_;
  if (!any_ingested_ || record.derived_ts > latest_ts_) {
    latest_ts_ = record.derived_ts;
    any_ingested_ = true;
  }

  const uint32_t d =
      InternLocked(record.derived_id, record.derived_ts, *record.derived);
  if (!slots_[d].is_record) {
    slots_[d].is_record = true;
    ++slots_[d].refs;
    ++records_retained_;
    if (epochs_.empty() || epochs_.back().sealed) {
      epochs_.emplace_back();
      epochs_.back().min_ts = record.derived_ts;
      epochs_.back().max_ts = record.derived_ts;
    }
    Epoch& epoch = epochs_.back();
    epoch.min_ts = std::min(epoch.min_ts, record.derived_ts);
    epoch.max_ts = std::max(epoch.max_ts, record.derived_ts);
    epoch.records.push_back(d);
    if (epoch.records.size() >= options_.epoch_records) epoch.sealed = true;
  }
  // else: a second record for the same derived id (distributed
  // re-finalization) merges origins below; epoch membership stays put.

  for (const TuplePtr& origin : record.origins) {
    // InternLocked may grow slots_, so re-index through slots_[d] each time.
    const uint32_t o = InternLocked(origin->id, origin->ts, *origin);
    if (o == d || Contains(slots_[d].bwd, o)) continue;
    slots_[d].bwd.push_back(o);
    slots_[o].fwd.push_back(d);
    ++slots_[o].refs;
    ++edges_retained_;
  }

  MaybeEvictLocked();
}

LineageStore::Entry LineageStore::MaterializeLocked(uint32_t slot) const {
  const Slot& s = slots_[slot];
  ByteReader r(s.bytes);
  Entry e;
  e.id = s.id;
  e.ts = s.ts;
  e.type_tag = s.type_tag;
  e.tuple = DeserializeTuple(r);
  return e;
}

template <typename Neighbors>
std::vector<LineageStore::Entry> LineageStore::ClosureLocked(
    uint64_t root_id, int max_hops, Neighbors neighbors) const {
  std::vector<Entry> out;
  auto it = id_index_.find(root_id);
  if (it == id_index_.end()) return out;

  std::unordered_set<uint32_t> visited{it->second};
  std::vector<uint32_t> frontier{it->second};
  std::vector<uint32_t> next;
  for (int hop = 0; max_hops < 0 || hop < max_hops; ++hop) {
    if (frontier.empty()) break;
    next.clear();
    for (uint32_t slot : frontier) {
      neighbors(slots_[slot], [&](uint32_t n) {
        if (visited.insert(n).second) {
          next.push_back(n);
          out.push_back(MaterializeLocked(n));
        }
      });
    }
    frontier.swap(next);
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  return out;
}

std::vector<LineageStore::Entry> LineageStore::Contributors(
    uint64_t sink_tuple_id) const {
  std::shared_lock lock(mu_);
  return ClosureLocked(sink_tuple_id, -1, [](const Slot& s, auto&& visit) {
    for (uint32_t n : s.bwd) visit(n);
  });
}

std::vector<LineageStore::Entry> LineageStore::DerivedFrom(
    uint64_t source_tuple_id) const {
  std::shared_lock lock(mu_);
  return ClosureLocked(source_tuple_id, -1, [](const Slot& s, auto&& visit) {
    for (uint32_t n : s.fwd) visit(n);
  });
}

std::vector<LineageStore::Entry> LineageStore::Expand(uint64_t tuple_id,
                                                      int hops) const {
  std::shared_lock lock(mu_);
  return ClosureLocked(tuple_id, hops < 0 ? 0 : hops,
                       [](const Slot& s, auto&& visit) {
                         for (uint32_t n : s.bwd) visit(n);
                         for (uint32_t n : s.fwd) visit(n);
                       });
}

std::optional<LineageStore::Entry> LineageStore::Lookup(
    uint64_t tuple_id) const {
  std::shared_lock lock(mu_);
  auto it = id_index_.find(tuple_id);
  if (it == id_index_.end()) return std::nullopt;
  return MaterializeLocked(it->second);
}

std::vector<uint64_t> LineageStore::RetainedRecordIds() const {
  std::shared_lock lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(records_retained_);
  for (const Epoch& epoch : epochs_) {
    for (uint32_t d : epoch.records) out.push_back(slots_[d].id);
  }
  return out;
}

LineageStore::Stats LineageStore::stats() const {
  std::shared_lock lock(mu_);
  Stats s;
  s.records_ingested = records_ingested_;
  s.records_retained = records_retained_;
  s.tuples_retained = tuples_retained_;
  s.edges_retained = edges_retained_;
  s.records_evicted = records_evicted_;
  s.epochs_evicted = epochs_evicted_;
  s.bytes_retained = bytes_retained_;
  s.node_uids = node_code_.size();
  if (records_retained_ > 0) {
    s.min_retained_ts = epochs_.front().min_ts;
    s.max_retained_ts = epochs_.front().max_ts;
    for (const Epoch& epoch : epochs_) {
      s.min_retained_ts = std::min(s.min_retained_ts, epoch.min_ts);
      s.max_retained_ts = std::max(s.max_retained_ts, epoch.max_ts);
    }
  }
  return s;
}

std::vector<LineageStore::Entry> LineageStore::Select(
    const LineagePredicate& p) const {
  std::shared_lock lock(mu_);
  std::vector<Entry> out;
  int node_code = -1;
  if (p.has_node_uid) {
    auto it = node_code_.find(p.node_uid);
    if (it == node_code_.end()) return out;  // uid never interned
    node_code = it->second;
  }
  std::vector<uint32_t> matches;
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (!s.live) continue;
    if (s.ts < p.min_ts || s.ts > p.max_ts) continue;
    if (node_code >= 0 && s.node_code != node_code) continue;
    if (p.records_only && !s.is_record) continue;
    matches.push_back(i);
  }
  std::sort(matches.begin(), matches.end(), [this](uint32_t a, uint32_t b) {
    return slots_[a].ts != slots_[b].ts ? slots_[a].ts < slots_[b].ts
                                        : slots_[a].id < slots_[b].id;
  });
  if (p.limit > 0 && matches.size() > p.limit) matches.resize(p.limit);
  out.reserve(matches.size());
  for (uint32_t slot : matches) out.push_back(MaterializeLocked(slot));
  return out;
}

namespace {

// Snapshot file layout:
//   u32 magic "GLSN" | u32 version | u64 payload size | u64 FNV-1a(payload)
//   payload: u64 records_ingested | u64 records_retained | u64 records_evicted
//            | u64 epochs_evicted | i64 latest_ts | u8 any_ingested
//            | u32 epoch count
//            | per epoch: u8 sealed | u32 record count
//              | per record: serialized derived tuple | u32 origin count
//                            | serialized origin tuples
// Records use the provenance-file record shape so a snapshot restores through
// the exact Ingest path the live consumer exercises; the leading checksum is
// what turns torn writes and bit flips into a load-time rejection.
constexpr uint32_t kSnapshotMagic = 0x4E534C47;  // "GLSN" little-endian
constexpr uint32_t kSnapshotVersion = 1;

uint64_t Fnv1a(const uint8_t* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path,
                                   const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error(std::string("cannot open ") + what + " " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

void LineageStore::SaveSnapshot(const std::string& path) const {
  ByteWriter payload;
  {
    std::shared_lock lock(mu_);
    payload.PutU64(records_ingested_);
    payload.PutU64(records_retained_);
    payload.PutU64(records_evicted_);
    payload.PutU64(epochs_evicted_);
    payload.PutI64(latest_ts_);
    payload.PutU8(any_ingested_ ? 1 : 0);
    payload.PutU32(static_cast<uint32_t>(epochs_.size()));
    for (const Epoch& epoch : epochs_) {
      payload.PutU8(epoch.sealed ? 1 : 0);
      payload.PutU32(static_cast<uint32_t>(epoch.records.size()));
      for (uint32_t d : epoch.records) {
        const Slot& derived = slots_[d];
        payload.PutBytes(derived.bytes.data(), derived.bytes.size());
        payload.PutU32(static_cast<uint32_t>(derived.bwd.size()));
        for (uint32_t o : derived.bwd) {
          const Slot& origin = slots_[o];
          payload.PutBytes(origin.bytes.data(), origin.bytes.size());
        }
      }
    }
  }

  ByteWriter header;
  header.PutU32(kSnapshotMagic);
  header.PutU32(kSnapshotVersion);
  header.PutU64(payload.size());
  header.PutU64(Fnv1a(payload.bytes().data(), payload.size()));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("LineageStore: cannot write snapshot " + tmp);
  }
  const bool wrote =
      std::fwrite(header.bytes().data(), 1, header.size(), f) ==
          header.size() &&
      std::fwrite(payload.bytes().data(), 1, payload.size(), f) ==
          payload.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("LineageStore: snapshot write failed for " +
                             path);
  }
}

uint64_t LineageStore::LoadSnapshot(const std::string& path) {
  {
    std::shared_lock lock(mu_);
    if (any_ingested_) {
      throw std::logic_error(
          "LineageStore: LoadSnapshot requires an empty store");
    }
  }
  const std::vector<uint8_t> bytes = ReadFileBytes(path, "lineage snapshot");
  // magic + version + payload size + checksum
  constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;
  if (bytes.size() < kHeaderBytes) {
    throw std::runtime_error("LineageStore: snapshot truncated before header");
  }
  ByteReader header(bytes);
  if (header.GetU32() != kSnapshotMagic) {
    throw std::runtime_error("LineageStore: " + path +
                             " is not a lineage snapshot (bad magic)");
  }
  const uint32_t version = header.GetU32();
  if (version != kSnapshotVersion) {
    throw std::runtime_error("LineageStore: unsupported snapshot version " +
                             std::to_string(version));
  }
  const uint64_t payload_size = header.GetU64();
  const uint64_t checksum = header.GetU64();
  if (payload_size != header.remaining()) {
    throw std::runtime_error(
        "LineageStore: snapshot payload size mismatch (truncated or trailing "
        "bytes)");
  }
  const uint8_t* payload = bytes.data() + (bytes.size() - payload_size);
  if (Fnv1a(payload, payload_size) != checksum) {
    throw std::runtime_error("LineageStore: snapshot checksum mismatch");
  }

  ByteReader r(payload, payload_size);
  const uint64_t saved_ingested = r.GetU64();
  const uint64_t saved_retained = r.GetU64();
  const uint64_t saved_evicted = r.GetU64();
  const uint64_t saved_epochs_evicted = r.GetU64();
  const int64_t saved_latest_ts = r.GetI64();
  const bool saved_any = r.GetU8() != 0;
  const uint32_t epoch_count = r.GetU32();

  uint64_t restored = 0;
  for (uint32_t e = 0; e < epoch_count; ++e) {
    const bool sealed = r.GetU8() != 0;
    const uint32_t record_count = r.GetU32();
    if (record_count > r.remaining()) {
      throw std::runtime_error(
          "LineageStore: snapshot record count exceeds payload");
    }
    for (uint32_t i = 0; i < record_count; ++i) {
      ProvenanceRecord rec;
      rec.derived = DeserializeTuple(r);
      rec.derived_id = rec.derived->id;
      rec.derived_ts = rec.derived->ts;
      const uint32_t origin_count = r.GetU32();
      if (origin_count > r.remaining()) {
        throw std::runtime_error(
            "LineageStore: snapshot origin count exceeds payload");
      }
      rec.origins.reserve(origin_count);
      for (uint32_t o = 0; o < origin_count; ++o) {
        rec.origins.push_back(DeserializeTuple(r));
      }
      Ingest(rec);
      ++restored;
    }
    // Preserve the saving store's epoch boundaries: every group but possibly
    // the last was sealed, and the next group must open a fresh epoch.
    if (sealed) {
      std::unique_lock lock(mu_);
      if (!epochs_.empty()) epochs_.back().sealed = true;
    }
  }
  if (!r.AtEnd()) {
    throw std::runtime_error("LineageStore: snapshot has trailing bytes");
  }
  if (restored != saved_retained) {
    throw std::runtime_error(
        "LineageStore: snapshot retained-record count mismatch");
  }

  // The replay recreated the retained window; the history counters carry over
  // from the saving store (plus any eviction the replay itself performed
  // under tighter retention options).
  std::unique_lock lock(mu_);
  records_ingested_ = saved_ingested;
  records_evicted_ += saved_evicted;
  epochs_evicted_ += saved_epochs_evicted;
  if (saved_any && (!any_ingested_ || saved_latest_ts > latest_ts_)) {
    latest_ts_ = saved_latest_ts;
  }
  any_ingested_ = any_ingested_ || saved_any;
  return restored;
}

uint64_t ReplayProvenanceFile(const std::string& path, LineageStore& store) {
  const std::vector<uint8_t> bytes = ReadFileBytes(path, "provenance file");
  ByteReader r(bytes);
  uint64_t records = 0;
  while (!r.AtEnd()) {
    ProvenanceRecord rec;
    rec.derived = DeserializeTuple(r);
    rec.derived_id = rec.derived->id;
    rec.derived_ts = rec.derived->ts;
    const uint32_t origin_count = r.GetU32();
    rec.origins.reserve(origin_count);
    for (uint32_t i = 0; i < origin_count; ++i) {
      rec.origins.push_back(DeserializeTuple(r));
    }
    store.Ingest(rec);
    ++records;
  }
  return records;
}

}  // namespace genealog
