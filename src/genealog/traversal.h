// Contribution-graph traversal — the paper's Listing 1.
//
// Starting from a tuple (usually a sink tuple), performs a breadth-first
// search over the U1/U2/N meta-attributes and returns the *originating*
// tuples (Def. 4.1): tuples of type SOURCE, or REMOTE when part of the graph
// lives in another SPE instance.
//
// The traversal is the per-sink-tuple cost the paper studies in Figure 14 and
// sits on the SU hot path, so it is engineered to touch no allocator in
// steady state. Two interchangeable visited-tracking implementations exist,
// both producing byte-identical BFS discovery order:
//
//  * epoch fast path (default, GENEALOG_EPOCH_TRAVERSAL) — each traversal
//    draws a unique 64-bit ticket and stamps it into the Tuple header's mark
//    word, so the visited check is one cache-line touch on the tuple already
//    being walked. Only one epoch traversal may be in flight at a time: a
//    second concurrent traverser (parallel SUs, multiple queries) detects
//    the claim collision on entry — or on the root claim's relaxed CAS, the
//    defensive canary — and falls back to the hash-set path, whose side
//    table it owns exclusively. The exclusivity token is what lets interior
//    claims be a relaxed load + store instead of a (~20x dearer) locked CAS
//    per node.
//  * pointer-set path — an open-addressing identity-hash set of tuple
//    pointers (traversal_internal::PointerSet below): power-of-two capacity,
//    inline small-buffer sized for the common ≤32-node graph, geometric
//    growth, generation-tagged slots so Clear() is O(1) instead of a rehash
//    or a memset.
#ifndef GENEALOG_GENEALOG_TRAVERSAL_H_
#define GENEALOG_GENEALOG_TRAVERSAL_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/memory_accounting.h"
#include "core/tuple.h"

namespace genealog {

// Process-wide default for the epoch fast path, read from the environment
// once (on unless GENEALOG_EPOCH_TRAVERSAL=0). SetEpochTraversal overrides at
// runtime — used by the determinism sweeps and fuzz suites to pin a path.
bool EpochTraversalEnabled();
void SetEpochTraversal(bool enabled);

// Which visited-tracking implementation FindProvenance uses. kAuto takes the
// epoch fast path when it is enabled and no other epoch traversal is in
// flight; kHashSet pins the pointer-set path (tests and equivalence fuzzing).
enum class TraversalPath : uint8_t { kAuto, kHashSet };

namespace traversal_internal {

// Open-addressing identity-hash set of tuple pointers. Linear probing over a
// power-of-two slot array; a slot is live iff its generation tag equals the
// set's current generation, so Clear() only bumps a counter (the wrap-around
// every 2^32 clears pays one memset). The first kInlineSlots live inline —
// with the 0.5 maximum load factor that covers the common ≤32-node
// contribution graph without ever touching the heap; larger graphs grow the
// table geometrically and the buffer is recycled across calls, so steady
// state allocates nothing regardless of graph size.
class PointerSet {
 public:
  static constexpr size_t kInlineSlots = 64;

  PointerSet() { std::memset(inline_, 0, sizeof(inline_)); }
  ~PointerSet() {
    if (slots_ != inline_) {
      delete[] slots_;
      mem::AddTraversalScratchBytes(
          -static_cast<int64_t>(capacity_ * sizeof(Slot)));
    }
  }
  PointerSet(const PointerSet&) = delete;
  PointerSet& operator=(const PointerSet&) = delete;

  void Clear() {
    size_ = 0;
    if (++gen_ == 0) {  // generation wrap: one-off full reset
      std::memset(slots_, 0, capacity_ * sizeof(Slot));
      gen_ = 1;
    }
  }

  // Inserts p; returns true when it was not yet in the set.
  bool Insert(const Tuple* p) {
    if ((size_ + 1) * 2 > capacity_) Grow();
    const size_t mask = capacity_ - 1;
    size_t i = Hash(p) & mask;
    while (slots_[i].gen == gen_) {
      if (slots_[i].ptr == p) return false;
      i = (i + 1) & mask;
    }
    slots_[i].ptr = p;
    slots_[i].gen = gen_;
    ++size_;
    return true;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  // Heap growths since construction — pinned by the zero-steady-state-
  // allocation regression test.
  uint64_t grows() const { return grows_; }

 private:
  struct Slot {
    const Tuple* ptr;
    uint32_t gen;
  };

  static size_t Hash(const Tuple* p) {
    // Identity hash: tuples are pool blocks ≥64B apart, so the low bits carry
    // no entropy; a 64-bit odd-constant multiply mixes the rest, and the high
    // half indexes the (power-of-two) table.
    uint64_t x = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(p)) >> 4;
    x *= 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(x >> 32);
  }

  void Grow();

  Slot inline_[kInlineSlots];
  Slot* slots_ = inline_;
  size_t capacity_ = kInlineSlots;
  size_t size_ = 0;
  uint32_t gen_ = 1;  // inline_ memset to gen 0 == all empty
  uint64_t grows_ = 0;
};

// Flat FIFO for the BFS frontier: a power-of-two ring over a contiguous
// buffer, indices monotonically increasing and masked on access. Grows
// geometrically when the in-flight frontier outruns the capacity; the buffer
// is recycled across calls. The inline buffer covers the common small graph.
class WorkRing {
 public:
  static constexpr size_t kInlineCap = 32;

  WorkRing() = default;
  ~WorkRing() {
    if (data_ != inline_) {
      delete[] data_;
      mem::AddTraversalScratchBytes(
          -static_cast<int64_t>(capacity_ * sizeof(Tuple*)));
    }
  }
  WorkRing(const WorkRing&) = delete;
  WorkRing& operator=(const WorkRing&) = delete;

  void Clear() { head_ = tail_ = 0; }
  bool Empty() const { return head_ == tail_; }

  void Push(Tuple* t) {
    if (tail_ - head_ == capacity_) Grow();
    data_[tail_++ & (capacity_ - 1)] = t;
  }

  Tuple* Pop() { return data_[head_++ & (capacity_ - 1)]; }

  size_t capacity() const { return capacity_; }
  uint64_t grows() const { return grows_; }

 private:
  void Grow();

  Tuple* inline_[kInlineCap];
  Tuple** data_ = inline_;
  size_t capacity_ = kInlineCap;
  size_t head_ = 0;
  size_t tail_ = 0;
  uint64_t grows_ = 0;
};

}  // namespace traversal_internal

// Reusable scratch space: the BFS frontier ring plus the pointer-set fallback
// for the visited check. Both structures keep their buffers across calls, so
// after warm-up to the workload's largest graph a traversal performs zero
// allocations on either path (the epoch fast path does not even read the
// pointer set).
class TraversalScratch {
 public:
  void Clear() {
    ring_.Clear();
    visited_.Clear();
  }

  // Introspection for the allocation-regression test: cumulative heap growths
  // across both structures. Flat after warm-up.
  uint64_t grows() const { return ring_.grows() + visited_.grows(); }
  size_t visited_capacity() const { return visited_.capacity(); }
  size_t ring_capacity() const { return ring_.capacity(); }

 private:
  friend void FindProvenance(Tuple* root, std::vector<Tuple*>& result,
                             TraversalScratch& scratch, TraversalPath path);
  traversal_internal::WorkRing ring_;
  traversal_internal::PointerSet visited_;
};

// Appends the originating tuples of `root` to `result` in BFS discovery
// order (deterministic for a given contribution graph, identical across
// traversal paths). The caller must keep `root` alive; returned pointers are
// valid as long as `root` is.
void FindProvenance(Tuple* root, std::vector<Tuple*>& result,
                    TraversalScratch& scratch,
                    TraversalPath path = TraversalPath::kAuto);

// Convenience overload for tests and examples.
std::vector<Tuple*> FindProvenance(Tuple* root);

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_TRAVERSAL_H_
