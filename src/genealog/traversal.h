// Contribution-graph traversal — the paper's Listing 1.
//
// Starting from a tuple (usually a sink tuple), performs a breadth-first
// search over the U1/U2/N meta-attributes and returns the *originating*
// tuples (Def. 4.1): tuples of type SOURCE, or REMOTE when part of the graph
// lives in another SPE instance.
#ifndef GENEALOG_GENEALOG_TRAVERSAL_H_
#define GENEALOG_GENEALOG_TRAVERSAL_H_

#include <deque>
#include <unordered_set>
#include <vector>

#include "core/tuple.h"

namespace genealog {

// Reusable scratch space: traversal is on the hot path of the SU operator,
// so the queue and visited set are recycled across calls.
class TraversalScratch {
 public:
  void Clear() {
    queue_.clear();
    visited_.clear();
  }

 private:
  friend void FindProvenance(Tuple* root, std::vector<Tuple*>& result,
                             TraversalScratch& scratch);
  std::deque<Tuple*> queue_;
  std::unordered_set<const Tuple*> visited_;
};

// Appends the originating tuples of `root` to `result` in BFS discovery
// order (deterministic for a given contribution graph). The caller must keep
// `root` alive; returned pointers are valid as long as `root` is.
void FindProvenance(Tuple* root, std::vector<Tuple*>& result,
                    TraversalScratch& scratch);

// Convenience overload for tests and examples.
std::vector<Tuple*> FindProvenance(Tuple* root);

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_TRAVERSAL_H_
