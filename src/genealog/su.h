// SU — the single-stream unfolder (Definition 5.2, Figure 5).
//
// One input SI, two outputs: SO (output 0, an exact copy of SI) and U
// (output 1, the unfolded stream of SI). Per Theorem 5.3, adding an SU before
// each Sink provides intra-process fine-grained provenance through U.
//
// Two implementations are provided:
//  * SuNode — the efficient fused operator (the paper notes SU's semantics
//    can be assigned to one thread / a single user-defined operator);
//  * BuildComposedSu — the literal Figure 5B construction from standard
//    instrumented operators (Multiplex + Map), demonstrating challenge C3.
// Equivalence of the two is covered by tests and an ablation bench.
//
// SuNode is batch-aware: one activation processes a whole StreamBatch,
// forwarding the SO copy as a single chunk, reusing the traversal scratch and
// origin buffer across the batch, and building every unfolded tuple of the
// batch straight into one outgoing U chunk (EmitBatchTo), so per-tuple queue
// handovers disappear at batch sizes > 1.
#ifndef GENEALOG_GENEALOG_SU_H_
#define GENEALOG_GENEALOG_SU_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/wall_clock.h"
#include "genealog/traversal.h"
#include "genealog/unfolded.h"
#include "spe/node.h"
#include "spe/stateless.h"
#include "spe/topology.h"

namespace genealog {

class SuNode final : public SingleInputNode {
 public:
  explicit SuNode(std::string name) : SingleInputNode(std::move(name)) {
    pending_samples_.reserve(kPublishEvery);
  }

  // --- contribution-graph traversal cost (Figure 14) -----------------------
  //
  // Merge-on-read semantics: the hot path appends each traversal's sample to
  // a buffer confined to the node's processing thread — no lock, no shared
  // write — and publishes the buffer into the mutex-protected stats every
  // kPublishEvery samples and at flush. The accessors below merge what has
  // been published: once the node has flushed (RunToCompletion / Runner::Join
  // provide the happens-before), they are exact and account for every tuple;
  // called mid-run they are safe but may trail the hot path by up to
  // kPublishEvery samples. Samples are published in processing order, so the
  // resulting statistics are identical to the former per-tuple locked Adds.
  double mean_traversal_ms() const;
  uint64_t traversal_count() const;
  double traversal_percentile_ms(double pct) const;
  double mean_graph_size() const;

 protected:
  void OnTuple(TuplePtr t) override;
  void OnBatch(StreamBatch& batch) override;
  void OnFlush() override;

 private:
  static constexpr size_t kPublishEvery = 256;

  // Traverses `t`, records the traversal sample, and appends one unfolded
  // tuple per origin to `u_chunk`.
  void UnfoldOne(const TuplePtr& t, StreamBatch& u_chunk);
  void PublishStats();

  // --- node-thread state (never touched by readers) ------------------------
  TraversalScratch scratch_;
  std::vector<Tuple*> result_;
  std::vector<std::pair<double, double>> pending_samples_;  // (ms, graph size)

  // --- published stats (any thread, under stats_mu_) ------------------------
  mutable std::mutex stats_mu_;
  SampleStats traversal_ms_;
  SampleStats graph_size_;
};

// Builds one UnfoldedTuple for each originating tuple of `derived`.
// Shared by SuNode and the composed Figure 5B Map function.
void UnfoldInto(const TuplePtr& derived, std::vector<Tuple*>& origins,
                TraversalScratch& scratch,
                std::vector<IntrusivePtr<UnfoldedTuple>>& out);

// The Figure 5B construction: SI -> Multiplex -> {SO, SM}, SM -> Map -> U.
// Returns the entry node (connect the delivering stream to it), the node
// whose output 0 is SO, and the node producing U.
struct ComposedSu {
  Node* entry;    // receives SI
  Node* so_node;  // its (only) output is SO
  Node* u_node;   // its (only) output is U
};
ComposedSu BuildComposedSu(Topology& topology, const std::string& name);

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_SU_H_
