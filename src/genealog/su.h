// SU — the single-stream unfolder (Definition 5.2, Figure 5).
//
// One input SI, two outputs: SO (output 0, an exact copy of SI) and U
// (output 1, the unfolded stream of SI). Per Theorem 5.3, adding an SU before
// each Sink provides intra-process fine-grained provenance through U.
//
// Two implementations are provided:
//  * SuNode — the efficient fused operator (the paper notes SU's semantics
//    can be assigned to one thread / a single user-defined operator);
//  * BuildComposedSu — the literal Figure 5B construction from standard
//    instrumented operators (Multiplex + Map), demonstrating challenge C3.
// Equivalence of the two is covered by tests and an ablation bench.
#ifndef GENEALOG_GENEALOG_SU_H_
#define GENEALOG_GENEALOG_SU_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/wall_clock.h"
#include "genealog/traversal.h"
#include "genealog/unfolded.h"
#include "spe/node.h"
#include "spe/stateless.h"
#include "spe/topology.h"

namespace genealog {

class SuNode final : public SingleInputNode {
 public:
  explicit SuNode(std::string name) : SingleInputNode(std::move(name)) {}

  // --- contribution-graph traversal cost (Figure 14) -----------------------
  double mean_traversal_ms() const {
    std::lock_guard lock(mu_);
    return traversal_ms_.mean();
  }
  uint64_t traversal_count() const {
    std::lock_guard lock(mu_);
    return traversal_ms_.count();
  }
  double traversal_percentile_ms(double pct) const {
    std::lock_guard lock(mu_);
    return traversal_ms_.percentile(pct);
  }
  double mean_graph_size() const {
    std::lock_guard lock(mu_);
    return graph_size_.mean();
  }

 protected:
  void OnTuple(TuplePtr t) override;

 private:
  TraversalScratch scratch_;
  std::vector<Tuple*> result_;
  mutable std::mutex mu_;
  SampleStats traversal_ms_;
  SampleStats graph_size_;
};

// Builds one UnfoldedTuple for each originating tuple of `derived`.
// Shared by SuNode and the composed Figure 5B Map function.
void UnfoldInto(const TuplePtr& derived, std::vector<Tuple*>& origins,
                TraversalScratch& scratch,
                std::vector<IntrusivePtr<UnfoldedTuple>>& out);

// The Figure 5B construction: SI -> Multiplex -> {SO, SM}, SM -> Map -> U.
// Returns the entry node (connect the delivering stream to it), the node
// whose output 0 is SO, and the node producing U.
struct ComposedSu {
  Node* entry;    // receives SI
  Node* so_node;  // its (only) output is SO
  Node* u_node;   // its (only) output is U
};
ComposedSu BuildComposedSu(Topology& topology, const std::string& name);

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_SU_H_
