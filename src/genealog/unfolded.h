// The tuple schema of unfolded (delivering) streams — Definitions 5.1 / 6.2.
//
// Each tuple of an unfolded stream pairs one *derived* (delivering) tuple
// with one of its *originating* tuples, and carries the originating tuple's
// ts and ID (the paper's tsO/IDO) so that MU operators in downstream SPE
// instances can stitch contribution graphs across process boundaries by
// joining on ids.
//
// Crossing a Send/Receive boundary serializes both nested payloads inline;
// the receiving side rebuilds fresh payload objects (pointers never cross).
#ifndef GENEALOG_GENEALOG_UNFOLDED_H_
#define GENEALOG_GENEALOG_UNFOLDED_H_

#include <string>

#include "core/tuple_crtp.h"

namespace genealog {

struct UnfoldedTuple final : TupleCrtp<UnfoldedTuple, tags::kUnfolded> {
  static constexpr const char* kTypeName = "Unfolded";

  explicit UnfoldedTuple(int64_t ts) : TupleCrtp(ts) {}

  // The delivering tuple (sink tuple for SU-before-Sink, sent tuple for
  // SU-before-Send) and its identifying attributes.
  TuplePtr derived;
  uint64_t derived_id = 0;
  int64_t derived_ts = 0;

  // One originating tuple (Def. 4.1) and the tsO/IDO attributes.
  TuplePtr origin;
  uint64_t origin_id = 0;
  int64_t origin_ts = 0;
  TupleKind origin_kind = TupleKind::kSource;

  const char* type_name() const override { return kTypeName; }

  void SerializePayload(ByteWriter& w) const override;
  static TuplePtr Deserialize(ByteReader& r, int64_t ts);

  std::string DebugPayload() const override;
};

GENEALOG_REGISTER_TUPLE(UnfoldedTuple);

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_UNFOLDED_H_
