// First-class lineage query handle — the public face of the LineageStore.
//
// A running topology built with EngineOptions::lineage_store = true (env:
// GENEALOG_LINEAGE_STORE=1) owns a store fed by its provenance consumer;
// `BuiltQuery::lineage()` / `BuiltDataflow::lineage()` hand out a
// LineageQuery over it, usable while the topology runs (the store's
// shared-mutex contract: queries share, ingestion briefly excludes). The
// handle shares ownership, so it stays valid after the topology is torn
// down — the retained window remains queryable post-run, which is also how
// tools/genealog_query serves offline files: ReplayProvenanceFile into a
// fresh store, then query through this same API.
#ifndef GENEALOG_GENEALOG_LINEAGE_QUERY_H_
#define GENEALOG_GENEALOG_LINEAGE_QUERY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "genealog/lineage_store.h"

namespace genealog {

class LineageQuery {
 public:
  using Entry = LineageStore::Entry;

  // An empty handle; valid() is false and every query throws.
  LineageQuery() = default;
  explicit LineageQuery(std::shared_ptr<const LineageStore> store)
      : store_(std::move(store)) {}

  bool valid() const { return store_ != nullptr; }
  explicit operator bool() const { return valid(); }

  // Backward closure: the retained tuples this sink tuple derives from — for
  // a fully unfolded GeneaLog record, its contributing source tuples.
  std::vector<Entry> Contributors(uint64_t sink_tuple_id) const {
    return Store().Contributors(sink_tuple_id);
  }
  // Forward closure: the retained derived tuples this source tuple
  // contributed to.
  std::vector<Entry> DerivedFrom(uint64_t source_tuple_id) const {
    return Store().DerivedFrom(source_tuple_id);
  }
  // k-hop neighborhood over forward and backward edges combined.
  std::vector<Entry> Expand(uint64_t tuple_id, int hops) const {
    return Store().Expand(tuple_id, hops);
  }
  std::optional<Entry> Lookup(uint64_t tuple_id) const {
    return Store().Lookup(tuple_id);
  }
  std::vector<uint64_t> RetainedRecordIds() const {
    return Store().RetainedRecordIds();
  }
  // Predicate scan: event-time range, node-uid and record-root filters over
  // the retained index (see LineagePredicate).
  std::vector<Entry> Select(const LineagePredicate& p) const {
    return Store().Select(p);
  }
  // Retained span, eviction counters, index size — see LineageStore::Stats.
  LineageStore::Stats Stats() const { return Store().stats(); }

 private:
  const LineageStore& Store() const {
    if (store_ == nullptr) {
      throw std::logic_error(
          "LineageQuery: no lineage store attached (build the query with "
          "EngineOptions::lineage_store / GENEALOG_LINEAGE_STORE=1)");
    }
    return *store_;
  }

  std::shared_ptr<const LineageStore> store_;
};

}  // namespace genealog

#endif  // GENEALOG_GENEALOG_LINEAGE_QUERY_H_
