#include "spe/node.h"

#include <atomic>

#include "common/engine_options.h"

namespace genealog {
namespace {

std::atomic<uint64_t> g_next_node_uid{1};

}  // namespace

bool DefaultSpscEdges() { return engine_defaults::SpscEdges(); }

bool DefaultAdaptiveBatch() { return engine_defaults::AdaptiveBatch(); }

Node::Node(std::string name)
    : name_(std::move(name)),
      uid_(g_next_node_uid.fetch_add(1, std::memory_order_relaxed)) {}

Endpoint Node::AddInput(size_t capacity) {
  if (in_queue_ == nullptr) {
    in_queue_ = std::make_unique<StreamQueue>(capacity);
  }
  return Endpoint{in_queue_.get(), static_cast<uint16_t>(num_ports_++)};
}

void Node::AbortQueues() {
  if (in_queue_ != nullptr) in_queue_->Abort();
}

bool Node::EmitTupleAll(const TuplePtr& t) {
  for (Endpoint& e : outputs_) {
    if (!e.PushTuple(t)) return false;
  }
  return true;
}

bool Node::ForwardWatermark(int64_t wm) {
  if (wm <= last_forwarded_wm_ || wm == kWatermarkMax) return true;
  last_forwarded_wm_ = wm;
  for (Endpoint& e : outputs_) {
    if (!e.PushWatermark(wm)) return false;
  }
  return true;
}

void Node::EmitFlushAll() {
  for (Endpoint& e : outputs_) {
    e.PushFlush();
  }
}

bool Node::ForwardBatchAll(StreamBatch&& batch) {
  if (batch.has_watermark()) {
    if (batch.watermark <= last_forwarded_wm_ ||
        batch.watermark == kWatermarkMax) {
      batch.watermark = kNoWatermark;
    } else {
      last_forwarded_wm_ = batch.watermark;
    }
  }
  if (batch.tuples.empty() && !batch.has_watermark()) return true;
  if (outputs_.size() == 1) {
    return outputs_[0].ForwardBatch(std::move(batch));
  }
  for (Endpoint& e : outputs_) {
    for (const TuplePtr& t : batch.tuples) {
      if (!e.PushTuple(t)) return false;
    }
    if (batch.has_watermark() && !e.PushWatermark(batch.watermark)) {
      return false;
    }
  }
  return true;
}

StepResult Node::Step(size_t /*max_batches*/) {
  // Schedulable node types override this; pinned nodes (the base default of
  // NeedsDedicatedThread) are never stepped.
  assert(false && "Step() called on a node without a step implementation");
  return StepResult::kDone;
}

bool SingleInputNode::ProcessBatch(StreamBatch& batch) {
  CountProcessed(batch.tuples.size());
  const bool flush = batch.flush;
  batch.flush = false;  // Run/Step own end-of-stream, OnBatch never sees it
  OnBatch(batch);
  if (flush) {
    OnFlush();
    EmitFlushAll();
    return true;
  }
  return false;
}

void SingleInputNode::Run() {
  StreamQueue* in = input_queue();
  std::vector<StreamBatch> burst;
  for (;;) {
    burst.clear();
    if (!in->PopMany(burst)) return;  // aborted
    for (StreamBatch& batch : burst) {
      if (ProcessBatch(batch)) return;
    }
  }
}

StepResult SingleInputNode::Step(size_t max_batches) {
  // Poll until the queue reports empty/aborted or the budget runs out. A
  // quantum must never park after an underfull drain without re-polling: an
  // abort that lands between two drains leaves a residue whose one DataReady
  // signal was already consumed, and the kAborted verdict only shows once
  // the residue is gone (the abort-then-drain contract).
  size_t remaining = max_batches;
  while (remaining > 0) {
    step_burst_.clear();
    switch (input_queue()->TryPopSome(step_burst_, remaining)) {
      case PopStatus::kAborted:
        return StepResult::kDone;
      case PopStatus::kEmpty:
        // Parking is safe: any push or abort after this observation fires
        // DataReady at the task.
        return StepResult::kIdle;
      case PopStatus::kPopped:
        break;
    }
    remaining -= std::min(remaining, step_burst_.size());
    for (StreamBatch& batch : step_burst_) {
      if (ProcessBatch(batch)) return StepResult::kDone;
    }
  }
  return StepResult::kReady;
}

int64_t MergingNode::MinWatermark() const {
  int64_t min_wm = kWatermarkMax;
  for (const PortState& p : ports_) {
    if (!p.flushed && p.wm < min_wm) min_wm = p.wm;
  }
  return min_wm;
}

void MergingNode::ReleaseReady() {
  const int64_t min_wm = MinWatermark();
  for (;;) {
    size_t best = ports_.size();
    int64_t best_ts = 0;
    for (size_t i = 0; i < ports_.size(); ++i) {
      if (ports_[i].buffer.empty()) continue;
      const int64_t head_ts = ports_[i].buffer.front()->ts;
      if (head_ts >= min_wm) continue;
      if (best == ports_.size() || head_ts < best_ts) {
        best = i;
        best_ts = head_ts;
      }
    }
    if (best == ports_.size()) break;
    TuplePtr t = std::move(ports_[best].buffer.front());
    ports_[best].buffer.pop_front();
    CountProcessed();
    OnMergedTuple(best, std::move(t));
  }
  if (min_wm > last_merged_wm_) {
    last_merged_wm_ = min_wm;
    OnMergedWatermark(min_wm);
  }
}

void MergingNode::EnsureMergeState() {
  if (merge_state_ready_) return;
  merge_state_ready_ = true;
  ports_.resize(num_inputs());
}

void MergingNode::ConsumeBatch(StreamBatch& batch) {
  PortState& port = ports_[batch.port];
  for (TuplePtr& t : batch.tuples) {
    // A sorted stream implies future ts on this port are >= this ts, so
    // the tuple itself raises the port watermark to its own ts.
    const int64_t ts = t->ts;
    port.buffer.push_back(std::move(t));
    if (ts > port.wm) port.wm = ts;
  }
  if (batch.watermark > port.wm) port.wm = batch.watermark;
  if (batch.flush) {
    port.flushed = true;
    ++flushed_ports_;
  }
  // Once per batch (not per tuple): the release order is a pure function
  // of the buffered data, so chunked releases are correct — and at batch
  // size 1 this is exactly the unbatched engine's per-item cadence of
  // merged-watermark forwarding.
  ReleaseReady();
}

void MergingNode::Run() {
  EnsureMergeState();
  std::vector<StreamBatch> burst;
  while (flushed_ports_ < ports_.size()) {
    burst.clear();
    if (!input_queue()->PopMany(burst)) return;  // aborted
    for (StreamBatch& batch : burst) ConsumeBatch(batch);
  }
  // All inputs flushed: the merged watermark is +inf and ReleaseReady above
  // already drained the buffers in order.
  OnAllFlushed();
  EmitFlushAll();
}

StepResult MergingNode::Step(size_t max_batches) {
  EnsureMergeState();
  if (flushed_ports_ >= ports_.size()) {
    // A previous quantum saw the last flush mid-burst; finish now.
    OnAllFlushed();
    EmitFlushAll();
    return StepResult::kDone;
  }
  // Same polling discipline as SingleInputNode::Step: never park after an
  // underfull drain without re-polling, or an abort residue strands the task.
  size_t remaining = max_batches;
  while (remaining > 0) {
    step_burst_.clear();
    switch (input_queue()->TryPopSome(step_burst_, remaining)) {
      case PopStatus::kAborted:
        return StepResult::kDone;
      case PopStatus::kEmpty:
        return StepResult::kIdle;
      case PopStatus::kPopped:
        break;
    }
    remaining -= std::min(remaining, step_burst_.size());
    for (StreamBatch& batch : step_burst_) ConsumeBatch(batch);
    if (flushed_ports_ >= ports_.size()) {
      OnAllFlushed();
      EmitFlushAll();
      return StepResult::kDone;
    }
  }
  return StepResult::kReady;
}

}  // namespace genealog
