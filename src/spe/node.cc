#include "spe/node.h"

#include <atomic>

namespace genealog {
namespace {

std::atomic<uint64_t> g_next_node_uid{1};

}  // namespace

Node::Node(std::string name)
    : name_(std::move(name)),
      uid_(g_next_node_uid.fetch_add(1, std::memory_order_relaxed)) {}

Endpoint Node::AddInput(size_t capacity) {
  if (in_queue_ == nullptr) {
    in_queue_ = std::make_unique<StreamQueue>(capacity);
  }
  return Endpoint{in_queue_.get(), static_cast<uint16_t>(num_ports_++)};
}

void Node::AbortQueues() {
  if (in_queue_ != nullptr) in_queue_->Abort();
}

bool Node::EmitTupleAll(const TuplePtr& t) {
  for (const Endpoint& e : outputs_) {
    if (!e.Push(StreamItem::MakeTuple(t))) return false;
  }
  return true;
}

bool Node::ForwardWatermark(int64_t wm) {
  if (wm <= last_forwarded_wm_ || wm == kWatermarkMax) return true;
  last_forwarded_wm_ = wm;
  for (const Endpoint& e : outputs_) {
    if (!e.Push(StreamItem::MakeWatermark(wm))) return false;
  }
  return true;
}

void Node::EmitFlushAll() {
  for (const Endpoint& e : outputs_) {
    e.Push(StreamItem::MakeFlush());
  }
}

void SingleInputNode::Run() {
  StreamQueue* in = input_queue();
  for (;;) {
    std::optional<StreamItem> item = in->Pop();
    if (!item.has_value()) return;  // aborted
    switch (item->kind) {
      case StreamItem::Kind::kTuple:
        CountProcessed();
        OnTuple(std::move(item->tuple));
        break;
      case StreamItem::Kind::kWatermark:
        OnWatermark(item->watermark);
        break;
      case StreamItem::Kind::kFlush:
        OnFlush();
        EmitFlushAll();
        return;
    }
  }
}

int64_t MergingNode::MinWatermark(const std::vector<PortState>& ports) const {
  int64_t min_wm = kWatermarkMax;
  for (const PortState& p : ports) {
    if (!p.flushed && p.wm < min_wm) min_wm = p.wm;
  }
  return min_wm;
}

void MergingNode::ReleaseReady(std::vector<PortState>& ports) {
  const int64_t min_wm = MinWatermark(ports);
  for (;;) {
    size_t best = ports.size();
    int64_t best_ts = 0;
    for (size_t i = 0; i < ports.size(); ++i) {
      if (ports[i].buffer.empty()) continue;
      const int64_t head_ts = ports[i].buffer.front()->ts;
      if (head_ts >= min_wm) continue;
      if (best == ports.size() || head_ts < best_ts) {
        best = i;
        best_ts = head_ts;
      }
    }
    if (best == ports.size()) break;
    TuplePtr t = std::move(ports[best].buffer.front());
    ports[best].buffer.pop_front();
    CountProcessed();
    OnMergedTuple(best, std::move(t));
  }
  if (min_wm > last_merged_wm_) {
    last_merged_wm_ = min_wm;
    OnMergedWatermark(min_wm);
  }
}

void MergingNode::Run() {
  std::vector<PortState> ports(num_inputs());
  size_t flushed_ports = 0;
  while (flushed_ports < ports.size()) {
    std::optional<StreamItem> item = input_queue()->Pop();
    if (!item.has_value()) return;  // aborted
    PortState& port = ports[item->port];
    switch (item->kind) {
      case StreamItem::Kind::kTuple: {
        // A sorted stream implies future ts on this port are >= this ts, so
        // the tuple itself raises the port watermark to its own ts.
        const int64_t ts = item->tuple->ts;
        port.buffer.push_back(std::move(item->tuple));
        if (ts > port.wm) port.wm = ts;
        break;
      }
      case StreamItem::Kind::kWatermark:
        if (item->watermark > port.wm) port.wm = item->watermark;
        break;
      case StreamItem::Kind::kFlush:
        port.flushed = true;
        ++flushed_ports;
        break;
    }
    ReleaseReady(ports);
  }
  // All inputs flushed: the merged watermark is +inf and ReleaseReady above
  // already drained the buffers in order.
  OnAllFlushed();
  EmitFlushAll();
}

}  // namespace genealog
