#include "spe/node.h"

#include <atomic>

#include "common/engine_options.h"

namespace genealog {
namespace {

std::atomic<uint64_t> g_next_node_uid{1};

}  // namespace

bool DefaultSpscEdges() { return engine_defaults::SpscEdges(); }

bool DefaultAdaptiveBatch() { return engine_defaults::AdaptiveBatch(); }

Node::Node(std::string name)
    : name_(std::move(name)),
      uid_(g_next_node_uid.fetch_add(1, std::memory_order_relaxed)) {}

Endpoint Node::AddInput(size_t capacity) {
  if (in_queue_ == nullptr) {
    in_queue_ = std::make_unique<StreamQueue>(capacity);
  }
  return Endpoint{in_queue_.get(), static_cast<uint16_t>(num_ports_++)};
}

void Node::AbortQueues() {
  if (in_queue_ != nullptr) in_queue_->Abort();
}

bool Node::EmitTupleAll(const TuplePtr& t) {
  for (Endpoint& e : outputs_) {
    if (!e.PushTuple(t)) return false;
  }
  return true;
}

bool Node::ForwardWatermark(int64_t wm) {
  if (wm <= last_forwarded_wm_ || wm == kWatermarkMax) return true;
  last_forwarded_wm_ = wm;
  for (Endpoint& e : outputs_) {
    if (!e.PushWatermark(wm)) return false;
  }
  return true;
}

void Node::EmitFlushAll() {
  for (Endpoint& e : outputs_) {
    e.PushFlush();
  }
}

bool Node::ForwardBatchAll(StreamBatch&& batch) {
  if (batch.has_watermark()) {
    if (batch.watermark <= last_forwarded_wm_ ||
        batch.watermark == kWatermarkMax) {
      batch.watermark = kNoWatermark;
    } else {
      last_forwarded_wm_ = batch.watermark;
    }
  }
  if (batch.tuples.empty() && !batch.has_watermark()) return true;
  if (outputs_.size() == 1) {
    return outputs_[0].ForwardBatch(std::move(batch));
  }
  for (Endpoint& e : outputs_) {
    for (const TuplePtr& t : batch.tuples) {
      if (!e.PushTuple(t)) return false;
    }
    if (batch.has_watermark() && !e.PushWatermark(batch.watermark)) {
      return false;
    }
  }
  return true;
}

void SingleInputNode::Run() {
  StreamQueue* in = input_queue();
  std::vector<StreamBatch> burst;
  for (;;) {
    burst.clear();
    if (!in->PopMany(burst)) return;  // aborted
    for (StreamBatch& batch : burst) {
      CountProcessed(batch.tuples.size());
      const bool flush = batch.flush;
      batch.flush = false;  // Run owns end-of-stream, OnBatch never sees it
      OnBatch(batch);
      if (flush) {
        OnFlush();
        EmitFlushAll();
        return;
      }
    }
  }
}

int64_t MergingNode::MinWatermark(const std::vector<PortState>& ports) const {
  int64_t min_wm = kWatermarkMax;
  for (const PortState& p : ports) {
    if (!p.flushed && p.wm < min_wm) min_wm = p.wm;
  }
  return min_wm;
}

void MergingNode::ReleaseReady(std::vector<PortState>& ports) {
  const int64_t min_wm = MinWatermark(ports);
  for (;;) {
    size_t best = ports.size();
    int64_t best_ts = 0;
    for (size_t i = 0; i < ports.size(); ++i) {
      if (ports[i].buffer.empty()) continue;
      const int64_t head_ts = ports[i].buffer.front()->ts;
      if (head_ts >= min_wm) continue;
      if (best == ports.size() || head_ts < best_ts) {
        best = i;
        best_ts = head_ts;
      }
    }
    if (best == ports.size()) break;
    TuplePtr t = std::move(ports[best].buffer.front());
    ports[best].buffer.pop_front();
    CountProcessed();
    OnMergedTuple(best, std::move(t));
  }
  if (min_wm > last_merged_wm_) {
    last_merged_wm_ = min_wm;
    OnMergedWatermark(min_wm);
  }
}

void MergingNode::Run() {
  std::vector<PortState> ports(num_inputs());
  size_t flushed_ports = 0;
  std::vector<StreamBatch> burst;
  while (flushed_ports < ports.size()) {
    burst.clear();
    if (!input_queue()->PopMany(burst)) return;  // aborted
    for (StreamBatch& batch : burst) {
      PortState& port = ports[batch.port];
      for (TuplePtr& t : batch.tuples) {
        // A sorted stream implies future ts on this port are >= this ts, so
        // the tuple itself raises the port watermark to its own ts.
        const int64_t ts = t->ts;
        port.buffer.push_back(std::move(t));
        if (ts > port.wm) port.wm = ts;
      }
      if (batch.watermark > port.wm) port.wm = batch.watermark;
      if (batch.flush) {
        port.flushed = true;
        ++flushed_ports;
      }
      // Once per batch (not per tuple): the release order is a pure function
      // of the buffered data, so chunked releases are correct — and at batch
      // size 1 this is exactly the unbatched engine's per-item cadence of
      // merged-watermark forwarding.
      ReleaseReady(ports);
    }
  }
  // All inputs flushed: the merged watermark is +inf and ReleaseReady above
  // already drained the buffers in order.
  OnAllFlushed();
  EmitFlushAll();
}

}  // namespace genealog
