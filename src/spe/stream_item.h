// The unit flowing over a stream between two operator nodes.
//
// Watermark semantics: after Watermark(w), every future tuple t on this
// stream satisfies t.ts >= w. Sources emit watermarks as their (sorted)
// streams advance; multi-input operators use them to merge deterministically
// (§2's determinism requirement). Flush marks end-of-stream and implies an
// infinite watermark.
//
// Every node owns a single physical input queue; logical input ports are
// distinguished by the `port` tag stamped by the producing endpoint. This
// keeps multi-input nodes deadlock-free in diamond topologies (e.g. Q4's
// Multiplex -> {Aggregate, Filter} -> Join): the consumer can always drain
// whichever upstream is ready, while the deterministic merge order is
// reconstructed from per-port buffers and watermarks, not arrival order.
#ifndef GENEALOG_SPE_STREAM_ITEM_H_
#define GENEALOG_SPE_STREAM_ITEM_H_

#include <cstdint>

#include "core/tuple.h"

namespace genealog {

struct StreamItem {
  enum class Kind : uint8_t { kTuple, kWatermark, kFlush };

  Kind kind = Kind::kFlush;
  uint16_t port = 0;       // logical input port at the consumer
  TuplePtr tuple;          // kTuple only
  int64_t watermark = 0;   // kWatermark only

  static StreamItem MakeTuple(TuplePtr t) {
    StreamItem item;
    item.kind = Kind::kTuple;
    item.tuple = std::move(t);
    return item;
  }

  static StreamItem MakeWatermark(int64_t wm) {
    StreamItem item;
    item.kind = Kind::kWatermark;
    item.watermark = wm;
    return item;
  }

  static StreamItem MakeFlush() { return StreamItem{}; }
};

}  // namespace genealog

#endif  // GENEALOG_SPE_STREAM_ITEM_H_
