// Query topology and execution.
//
// A Topology owns the operator nodes of one SPE instance and wires streams
// between them; a Runner executes one or more topologies, one thread per node
// (the Liebre model), propagating the first failure by aborting all queues.
#ifndef GENEALOG_SPE_TOPOLOGY_H_
#define GENEALOG_SPE_TOPOLOGY_H_

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/engine_options.h"
#include "spe/node.h"

namespace genealog {

// Anything with an Abort() that unblocks waiters — ByteChannel implements
// this so failing runs can tear down network waits, not just queues.
class Abortable {
 public:
  virtual ~Abortable() = default;
  virtual void Abort() = 0;
};

class Topology {
 public:
  explicit Topology(int instance_id = 0, ProvenanceMode mode = ProvenanceMode::kNone)
      : instance_id_(instance_id), mode_(mode) {}

  int instance_id() const { return instance_id_; }
  ProvenanceMode mode() const { return mode_; }

  // Batch size stamped on every stream wired by Connect (unless overridden
  // per edge). 1 = unbatched item-at-a-time handover, the seed behavior.
  size_t default_batch_size() const { return default_batch_size_; }
  void set_default_batch_size(size_t n) {
    default_batch_size_ = n == 0 ? 1 : n;
  }

  // Edge implementation policy: when true (default unless
  // GENEALOG_SPSC_RING=0), Connect upgrades single-producer edges to the
  // lock-free SPSC ring; multi-producer edges always keep the mutex
  // BatchQueue. When false, every edge uses the mutex queue.
  bool spsc_edges() const { return spsc_edges_; }
  void set_spsc_edges(bool enabled) { spsc_edges_ = enabled; }

  // Adaptive batch sizing policy stamped on every endpoint wired by Connect
  // (default unless GENEALOG_ADAPTIVE_BATCH=0): endpoints steer their flush
  // threshold within [1, batch_size] from consumer-side queue depth. A no-op
  // at batch size 1.
  bool adaptive_batch() const { return adaptive_batch_; }
  void set_adaptive_batch(bool enabled) { adaptive_batch_ = enabled; }

  // Execution model requested for this topology (default from
  // GENEALOG_SCHEDULER): thread-per-node, or the shared morsel-driven worker
  // pool. The Runner resolves the effective mode across all its topologies
  // (see RunnerOptions).
  SchedulerMode scheduler() const { return scheduler_; }
  void set_scheduler(SchedulerMode mode) { scheduler_ = mode; }

  // Worker threads for pool mode; 0 = auto (one per hardware thread, capped
  // by the task count). Default from GENEALOG_WORKERS.
  size_t workers() const { return workers_; }
  void set_workers(size_t n) { workers_ = n; }

  // Stamps the data-plane subset of a unified EngineOptions (batch size, edge
  // implementation, adaptive batching, scheduler) in one call; the per-knob
  // setters above remain for targeted overrides. The process-wide knobs
  // (tuple_pool, epoch_traversal) and the provenance-sink policy are not
  // topology state and are ignored here.
  void Configure(const EngineOptions& engine) {
    set_default_batch_size(engine.batch_size);
    set_spsc_edges(engine.spsc_edges);
    set_adaptive_batch(engine.adaptive_batch);
    set_scheduler(engine.scheduler);
    set_workers(engine.workers);
  }

  // Constructs a node in this topology; instance id and provenance mode are
  // inherited. Returns a non-owning pointer valid for the topology's life.
  template <typename N, typename... Args>
  N* Add(Args&&... args) {
    auto node = std::make_unique<N>(std::forward<Args>(args)...);
    node->set_instance_id(instance_id_);
    node->set_mode(mode_);
    N* raw = node.get();
    nodes_.push_back(std::move(node));
    return raw;
  }

  // Wires a stream from `from` to a fresh input port of `to`. The order of
  // Connect calls defines output indices on `from` (meaningful for Multiplex
  // and SU) and input ports on `to` (meaningful for Join: 0 = left,
  // 1 = right; and MU: 0 = derived, 1.. = upstream).
  // Returns the input port index on `to`. `batch_size` overrides the
  // topology default for this edge (0 = use the default).
  size_t Connect(Node* from, Node* to,
                 size_t capacity = kDefaultQueueCapacity,
                 size_t batch_size = 0);

  // Registers an external resource (e.g. a channel a Receive node blocks on)
  // to be aborted together with the node queues when a run fails.
  void RegisterAbortable(Abortable* resource) {
    abortables_.push_back(resource);
  }

  void AbortAll();

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }

 private:
  int instance_id_;
  ProvenanceMode mode_;
  size_t default_batch_size_ = kDefaultBatchSize;
  bool spsc_edges_ = DefaultSpscEdges();
  bool adaptive_batch_ = DefaultAdaptiveBatch();
  SchedulerMode scheduler_ = engine_defaults::Scheduler();
  size_t workers_ = engine_defaults::Workers();
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Abortable*> abortables_;
};

class WorkerPool;

// Execution overrides a harness can impose on a Runner regardless of what the
// individual topologies were configured with (benches compare modes on the
// same topology objects this way).
struct RunnerOptions {
  // Unset: pool mode iff every topology asked for it (mixed requests fall
  // back to thread-per-node, the conservative mode).
  std::optional<SchedulerMode> scheduler;
  // Unset: the max of the topologies' nonzero worker counts (0 = auto).
  std::optional<size_t> workers;
};

// Runs topologies to completion. Usage:
//   Runner runner({&t1, &t2});
//   runner.Start();
//   runner.Join();   // rethrows the first node failure, if any
//
// Thread-per-node mode gives every node its own thread (the Liebre model).
// Pool mode hands schedulable nodes to one shared morsel-driven WorkerPool
// (see spe/scheduler.h) keyed by topology index for fairness; nodes that
// report NeedsDedicatedThread() keep a thread of their own either way.
class Runner {
 public:
  explicit Runner(std::vector<Topology*> topologies, RunnerOptions options = {});
  ~Runner();
  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  void Start();
  void Join();

  // Cooperative teardown: aborts every queue; nodes unwind promptly.
  void Abort();

  // Effective mode after resolving overrides (valid after Start).
  SchedulerMode scheduler() const { return scheduler_; }
  const WorkerPool* pool() const { return pool_.get(); }

 private:
  void RecordFailure(std::exception_ptr error);

  std::vector<Topology*> topologies_;
  RunnerOptions options_;
  SchedulerMode scheduler_ = SchedulerMode::kThreadPerNode;
  std::vector<std::thread> threads_;
  std::unique_ptr<WorkerPool> pool_;
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_;
  std::mutex error_mu_;
  bool started_ = false;
  bool joined_ = false;
};

// Convenience: run a single topology to completion, rethrowing failures.
void RunToCompletion(Topology& topology);

}  // namespace genealog

#endif  // GENEALOG_SPE_TOPOLOGY_H_
