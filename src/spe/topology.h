// Query topology and execution.
//
// A Topology owns the operator nodes of one SPE instance and wires streams
// between them; a Runner executes one or more topologies, one thread per node
// (the Liebre model), propagating the first failure by aborting all queues.
#ifndef GENEALOG_SPE_TOPOLOGY_H_
#define GENEALOG_SPE_TOPOLOGY_H_

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/engine_options.h"
#include "spe/node.h"

namespace genealog {

// Anything with an Abort() that unblocks waiters — ByteChannel implements
// this so failing runs can tear down network waits, not just queues.
class Abortable {
 public:
  virtual ~Abortable() = default;
  virtual void Abort() = 0;
};

class Topology {
 public:
  explicit Topology(int instance_id = 0, ProvenanceMode mode = ProvenanceMode::kNone)
      : instance_id_(instance_id), mode_(mode) {}

  int instance_id() const { return instance_id_; }
  ProvenanceMode mode() const { return mode_; }

  // Batch size stamped on every stream wired by Connect (unless overridden
  // per edge). 1 = unbatched item-at-a-time handover, the seed behavior.
  size_t default_batch_size() const { return default_batch_size_; }
  void set_default_batch_size(size_t n) {
    default_batch_size_ = n == 0 ? 1 : n;
  }

  // Edge implementation policy: when true (default unless
  // GENEALOG_SPSC_RING=0), Connect upgrades single-producer edges to the
  // lock-free SPSC ring; multi-producer edges always keep the mutex
  // BatchQueue. When false, every edge uses the mutex queue.
  bool spsc_edges() const { return spsc_edges_; }
  void set_spsc_edges(bool enabled) { spsc_edges_ = enabled; }

  // Adaptive batch sizing policy stamped on every endpoint wired by Connect
  // (default unless GENEALOG_ADAPTIVE_BATCH=0): endpoints steer their flush
  // threshold within [1, batch_size] from consumer-side queue depth. A no-op
  // at batch size 1.
  bool adaptive_batch() const { return adaptive_batch_; }
  void set_adaptive_batch(bool enabled) { adaptive_batch_ = enabled; }

  // Stamps the data-plane subset of a unified EngineOptions (batch size, edge
  // implementation, adaptive batching) in one call; the per-knob setters
  // above remain for targeted overrides. The process-wide knobs
  // (tuple_pool, epoch_traversal) and the provenance-sink policy are not
  // topology state and are ignored here.
  void Configure(const EngineOptions& engine) {
    set_default_batch_size(engine.batch_size);
    set_spsc_edges(engine.spsc_edges);
    set_adaptive_batch(engine.adaptive_batch);
  }

  // Constructs a node in this topology; instance id and provenance mode are
  // inherited. Returns a non-owning pointer valid for the topology's life.
  template <typename N, typename... Args>
  N* Add(Args&&... args) {
    auto node = std::make_unique<N>(std::forward<Args>(args)...);
    node->set_instance_id(instance_id_);
    node->set_mode(mode_);
    N* raw = node.get();
    nodes_.push_back(std::move(node));
    return raw;
  }

  // Wires a stream from `from` to a fresh input port of `to`. The order of
  // Connect calls defines output indices on `from` (meaningful for Multiplex
  // and SU) and input ports on `to` (meaningful for Join: 0 = left,
  // 1 = right; and MU: 0 = derived, 1.. = upstream).
  // Returns the input port index on `to`. `batch_size` overrides the
  // topology default for this edge (0 = use the default).
  size_t Connect(Node* from, Node* to,
                 size_t capacity = kDefaultQueueCapacity,
                 size_t batch_size = 0);

  // Registers an external resource (e.g. a channel a Receive node blocks on)
  // to be aborted together with the node queues when a run fails.
  void RegisterAbortable(Abortable* resource) {
    abortables_.push_back(resource);
  }

  void AbortAll();

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }

 private:
  int instance_id_;
  ProvenanceMode mode_;
  size_t default_batch_size_ = kDefaultBatchSize;
  bool spsc_edges_ = DefaultSpscEdges();
  bool adaptive_batch_ = DefaultAdaptiveBatch();
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Abortable*> abortables_;
};

// Runs topologies to completion. Usage:
//   Runner runner({&t1, &t2});
//   runner.Start();
//   runner.Join();   // rethrows the first node failure, if any
class Runner {
 public:
  explicit Runner(std::vector<Topology*> topologies)
      : topologies_(std::move(topologies)) {}
  ~Runner();
  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  void Start();
  void Join();

  // Cooperative teardown: aborts every queue; nodes unwind promptly.
  void Abort();

 private:
  std::vector<Topology*> topologies_;
  std::vector<std::thread> threads_;
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_;
  std::mutex error_mu_;
  bool joined_ = false;
};

// Convenience: run a single topology to completion, rethrowing failures.
void RunToCompletion(Topology& topology);

}  // namespace genealog

#endif  // GENEALOG_SPE_TOPOLOGY_H_
