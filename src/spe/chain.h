// Operator chaining (§2): "when a query defines three consecutive Filter
// operators, their conditions can be checked at the same time by a single
// thread chaining the operators ... rather than by three dedicated threads
// whose per-tuple communication costs could be higher than the processing
// ones."
//
// A ChainNode hosts a pipeline of inline stages executed synchronously in
// one thread, with no queues between them. Stages carry the same semantics
// and provenance instrumentation as their stand-alone operator counterparts
// (equivalence is test-enforced); the fused SU/MU operators in src/genealog
// are the same idea applied to the provenance pipeline.
#ifndef GENEALOG_SPE_CHAIN_H_
#define GENEALOG_SPE_CHAIN_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "spe/node.h"
#include "spe/stateless.h"
#include "spe/topology.h"

namespace genealog {

class ChainNode;

// One synchronous stage of a chain. Stages are stateless-operator analogues;
// stateful operators (windows) keep dedicated nodes.
class InlineStage {
 public:
  virtual ~InlineStage() = default;
  using Emit = std::function<void(TuplePtr)>;
  virtual void Process(TuplePtr t, ChainNode& host, const Emit& emit) = 0;
};

class ChainNode final : public SingleInputNode {
 public:
  ChainNode(std::string name, std::vector<std::unique_ptr<InlineStage>> stages)
      : SingleInputNode(std::move(name)), stages_(std::move(stages)) {}

  // Id allocation for tuple-creating stages (same id space as dedicated
  // operator nodes).
  uint64_t AllocateTupleId() { return NextTupleId(); }

 protected:
  void OnTuple(TuplePtr t) override { ProcessFrom(0, std::move(t)); }

 private:
  void ProcessFrom(size_t stage_index, TuplePtr t) {
    if (stage_index == stages_.size()) {
      EmitTupleAll(t);
      return;
    }
    stages_[stage_index]->Process(
        std::move(t), *this,
        [this, stage_index](TuplePtr out) {
          ProcessFrom(stage_index + 1, std::move(out));
        });
  }

  std::vector<std::unique_ptr<InlineStage>> stages_;
};

// Filter stage: forwards tuples satisfying the condition (no new objects, no
// instrumentation — §4.1).
template <typename T>
class InlineFilter final : public InlineStage {
 public:
  using Predicate = std::function<bool(const T&)>;
  explicit InlineFilter(Predicate pred) : pred_(std::move(pred)) {}

  void Process(TuplePtr t, ChainNode&, const Emit& emit) override {
    if (pred_(static_cast<const T&>(*t))) emit(std::move(t));
  }

 private:
  Predicate pred_;
};

// Map stage: creates output tuples; enforces the timestamp contract and
// applies the same instrumentation as MapNode.
template <typename In, typename Out>
class InlineMap final : public InlineStage {
 public:
  using Fn = std::function<void(const In&, MapCollector<Out>&)>;
  explicit InlineMap(Fn fn) : fn_(std::move(fn)) {}

  void Process(TuplePtr t, ChainNode& host, const Emit& emit) override {
    collector_outs_.clear();
    MapCollector<Out> collector;
    fn_(static_cast<const In&>(*t), collector);
    for (auto& out : MapOutputs(collector)) {
      out->ts = t->ts;
      out->stimulus = t->stimulus;
      out->id = host.AllocateTupleId();
      InstrumentUnary(host.mode(), *out, TupleKind::kMap, *t);
      emit(std::move(out));
    }
  }

 private:
  // MapCollector's storage is private to MapNode; mirror access here.
  static std::vector<IntrusivePtr<Out>>& MapOutputs(MapCollector<Out>& c) {
    return c.outs_;
  }

  Fn fn_;
  std::vector<IntrusivePtr<Out>> collector_outs_;
};

// Fluent builder:
//   ChainBuilder("validate")
//       .Filter<Reading>([](auto& r) { return r.celsius > -50; })
//       .Map<Reading, Reading>(normalize)
//       .Filter<Reading>(in_service)
//       .AddTo(topology);
class ChainBuilder {
 public:
  explicit ChainBuilder(std::string name) : name_(std::move(name)) {}

  template <typename T>
  ChainBuilder& Filter(typename InlineFilter<T>::Predicate pred) {
    stages_.push_back(std::make_unique<InlineFilter<T>>(std::move(pred)));
    return *this;
  }

  template <typename In, typename Out>
  ChainBuilder& Map(typename InlineMap<In, Out>::Fn fn) {
    stages_.push_back(std::make_unique<InlineMap<In, Out>>(std::move(fn)));
    return *this;
  }

  ChainNode* AddTo(Topology& topology) {
    return topology.Add<ChainNode>(std::move(name_), std::move(stages_));
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<InlineStage>> stages_;
};

}  // namespace genealog

#endif  // GENEALOG_SPE_CHAIN_H_
