// Morsel-driven worker-pool scheduler (the Leis et al. execution model
// adapted to the streaming engine): thousands of queries on a handful of
// threads.
//
// Thread-per-node (the Liebre model the paper inherits) burns one OS thread
// per operator, which is fine for four evaluation queries and fatal for the
// multi-tenant north star. The pool turns every schedulable node into a
// *task*:
//
//  * Readiness is batch arrival. Every StreamEdge push fires a DataReady
//    signal that enqueues the consuming task (if it was parked); every pop
//    fires RoomFreed toward producers that spilled against a full edge.
//  * A task quantum (Node::Step) drains up to a morsel budget of input
//    batches, emits downstream without ever blocking (full edges absorb the
//    overflow into per-endpoint spill buffers, bounded per quantum), and
//    yields.
//  * Sources are re-armable tasks: each quantum emits a bounded chunk and
//    re-enqueues through the injector instead of looping in a thread.
//  * Each worker owns a Chase–Lev work-stealing deque; signals raised *by* a
//    worker land in its own deque (producer–consumer cache locality), while
//    external threads and budget-exhausted tasks go through a global
//    injector whose per-query FIFO buckets are served round-robin — the
//    fairness device that keeps one hot tenant from starving the rest.
//  * Idle workers park on an eventcount (epoch + condvar) and are woken by
//    the first enqueue; teardown and first-failure propagation reuse the
//    engine's abort protocol (aborting the queues retires every task).
//
// Nodes that legitimately block on non-queue resources (network channels,
// rate-limiter clocks) report NeedsDedicatedThread() and keep their thread
// even in pool mode; the edge signals still fire on their pushes and pops,
// so readiness crosses the boundary in both directions.
//
// SPSC rings under the pool: "single producer/single consumer" becomes
// producer-at-a-time/consumer-at-a-time. The task state machine guarantees a
// node is executed by at most one worker and hands it between workers with
// seq_cst transitions, which carry the happens-before edge the ring's
// single-threaded counters need.
#ifndef GENEALOG_SPE_SCHEDULER_H_
#define GENEALOG_SPE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "spe/node.h"

namespace genealog {

class WorkerPool;

namespace scheduler_internal {

// One schedulable node. The state machine makes wakeups lossless without a
// lock:
//
//   kIdle ──Notify──▶ kQueued ──dequeue──▶ kRunning ──step──▶ kIdle/kQueued
//                                             │ Notify
//                                             ▼
//                                          kNotified ──step end──▶ kQueued
//
// A Notify on an idle task enqueues it; on a running task it flips the state
// to kNotified so the executing worker re-enqueues after its quantum instead
// of parking — the signal can never fall between "saw the queue empty" and
// "went idle". kFinished is terminal (stream done, spills drained).
struct NodeTask {
  enum State : uint32_t { kIdle, kQueued, kRunning, kNotified, kFinished };

  Node* node = nullptr;
  uint32_t query = 0;  // fairness bucket (one per topology)
  std::atomic<uint32_t> state{kIdle};
  // Step reported kDone but spills were still out; retire once they drain.
  // Touched only by the executing worker.
  bool stream_done = false;
};

// Fixed-capacity Chase–Lev work-stealing deque. The owner pushes and pops at
// the bottom (LIFO — the task it just made runnable is cache-hot); thieves
// take from the top. Capacity is sized to the total task count: a task is in
// at most one queue at a time (the kQueued state is that exclusivity), so
// the buffer can never overflow and never needs to grow. Orderings are the
// seq_cst variant of the deque (no standalone fences — TSan does not model
// them) with release/acquire slot handoff.
class TaskDeque {
 public:
  explicit TaskDeque(size_t capacity);

  TaskDeque(const TaskDeque&) = delete;
  TaskDeque& operator=(const TaskDeque&) = delete;

  void Push(NodeTask* task);  // owner only
  NodeTask* Pop();            // owner only
  NodeTask* Steal();          // any thief
  bool LooksEmpty() const;    // racy probe for the park re-check

 private:
  const uint64_t mask_;
  std::unique_ptr<std::atomic<NodeTask*>[]> slots_;
  alignas(64) std::atomic<int64_t> top_{0};
  alignas(64) std::atomic<int64_t> bottom_{0};
};

// Eventcount: Notify bumps the epoch and wakes a sleeper only when one is
// parked; Wait sleeps only while the epoch is unchanged from the caller's
// pre-re-check read. The seq_cst epoch bump after an enqueue and the seq_cst
// epoch read before the re-check give the Dekker-style guarantee that either
// the parker's re-check sees the enqueued work or the enqueuer sees a moved
// epoch waiter — no lost wakeups (the same protocol SpscRing uses for its
// producer/consumer parking, lifted to the pool).
class EventCount {
 public:
  uint64_t Epoch() const { return epoch_.load(std::memory_order_seq_cst); }
  void Notify(bool all = false);
  void Wait(uint64_t epoch);

 private:
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> parked_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace scheduler_internal

struct WorkerPoolOptions {
  // Worker threads; 0 = one per hardware thread. Always capped by the task
  // count (extra workers would only spin on empty deques).
  size_t workers = 0;
  // Input batches one task quantum may drain before yielding.
  size_t morsel_batches = 32;
};

// The shared worker pool executing one Runner's schedulable nodes. Lifecycle:
// AddNode for every pool node, Start (wires edge signals, seeds tasks,
// launches workers), Join (blocks until every task retired). Thread-safe
// toward concurrent edge signals and Kick from any thread.
class WorkerPool {
 public:
  explicit WorkerPool(WorkerPoolOptions options = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Registers a schedulable node under fairness bucket `query` (its
  // topology's index). Build-time only, before Start.
  void AddNode(Node* node, uint32_t query);

  // Flips nodes to pool mode, attaches edge signals, seeds every task
  // round-robin into the injector, and launches the workers. `on_error`
  // receives the first task failure exactly once; it must abort the
  // topologies (which retires every remaining task through the queues'
  // abort-then-drain protocol).
  void Start(std::function<void(std::exception_ptr)> on_error);

  // Blocks until every task retired, stops the workers, detaches signals.
  void Join();

  // Wakes every parked worker (teardown aid alongside queue aborts).
  void Kick();

  size_t worker_count() const { return workers_.size(); }
  size_t task_count() const { return tasks_.size(); }

 private:
  using NodeTask = scheduler_internal::NodeTask;

  struct Worker {
    std::unique_ptr<scheduler_internal::TaskDeque> deque;
    std::thread thread;
    uint64_t victim_seed = 0;
  };

  // Relays one edge's readiness signals into task notifications.
  struct EdgeSignal final : StreamEdge::Signal {
    WorkerPool* pool = nullptr;
    StreamEdge* edge = nullptr;
    NodeTask* consumer = nullptr;       // null: pinned (blocking) consumer
    std::vector<NodeTask*> producers;   // pool tasks producing into the edge

    void DataReady() override {
      if (consumer != nullptr) pool->Notify(consumer);
    }
    void RoomFreed() override {
      for (NodeTask* p : producers) pool->Notify(p);
    }
  };

  // Makes `task` runnable if it is not already queued/running-with-notice.
  void Notify(NodeTask* task);
  // Puts a kQueued task where it runs soonest: the calling worker's own
  // deque, or the injector from foreign threads.
  void Enqueue(NodeTask* task);
  void InjectorPush(NodeTask* task);
  NodeTask* InjectorPop();
  NodeTask* TrySteal(Worker& self);
  bool AnyWorkVisible() const;
  void WorkerLoop(size_t index);
  void Execute(NodeTask* task);
  void Retire(NodeTask* task);
  void Fail(std::exception_ptr error);

  WorkerPoolOptions options_;
  std::vector<std::unique_ptr<NodeTask>> tasks_;
  std::vector<std::unique_ptr<EdgeSignal>> signals_;
  std::vector<Worker> workers_;

  // Injector: per-query FIFO buckets served round-robin, so a tenant's
  // runnable backlog advances at the same cadence regardless of how hot its
  // neighbors are.
  std::mutex inject_mu_;
  std::vector<std::deque<NodeTask*>> inject_buckets_;
  size_t inject_cursor_ = 0;
  std::atomic<size_t> inject_size_{0};

  scheduler_internal::EventCount ec_;
  std::atomic<size_t> live_tasks_{0};
  std::atomic<bool> done_{false};
  std::atomic<bool> failed_{false};
  std::function<void(std::exception_ptr)> on_error_;
  bool started_ = false;
};

}  // namespace genealog

#endif  // GENEALOG_SPE_SCHEDULER_H_
