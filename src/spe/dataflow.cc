#include "spe/dataflow.h"

#include "genealog/instrument.h"

namespace genealog {

using dataflow_internal::OpKind;
using dataflow_internal::PlanInput;
using dataflow_internal::PlanOp;

namespace {

// The N-chain safety argument for key-partitioned stages (Challenge C3)
// needs every per-key window to live inside exactly one replica, and the
// downstream plan to be insensitive to how the N shard outputs were merged.
// The KeyedMergeNode restores the single-instance emission order for the
// merged stream itself, but a *second* stateful consumer downstream would
// window the merged stream again — its window contents would then hinge on
// the merge's reordering guarantees composing across stages, which is
// exactly the shape the paper's safety argument does not cover. Reject it:
// aggregate inside one (possibly parallel) stage, or drop the Parallel().
void ValidateParallelStages(const dataflow_internal::Plan& plan) {
  const auto& ops = plan.ops;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].is_parallel_stage()) continue;
    if (ops[i].parallelism < 1 || ops[i].make_replica == nullptr) {
      throw std::logic_error("Dataflow: parallel stage '" + ops[i].name +
                             "' is malformed (shards < 1 or no replica "
                             "factory)");
    }
    // Walk everything reachable downstream of the stage's merged output.
    std::vector<bool> reached(ops.size(), false);
    std::vector<size_t> frontier{i};
    reached[i] = true;
    while (!frontier.empty()) {
      const size_t cur = frontier.back();
      frontier.pop_back();
      for (size_t j = 0; j < ops.size(); ++j) {
        if (reached[j]) continue;
        bool consumes = false;
        for (const PlanInput& in : ops[j].inputs) {
          if (in.op == cur) {
            consumes = true;
            break;
          }
        }
        if (!consumes) continue;
        if (ops[j].stateful) {
          throw std::logic_error(
              "Dataflow: parallel stage '" + ops[i].name +
              "' feeds the stateful operator '" + ops[j].name +
              "' — a key-partitioned stage must be the last stateful step on "
              "its path to the Sink (fold the aggregation into the parallel "
              "stage, or remove Parallel())");
        }
        reached[j] = true;
        frontier.push_back(j);
      }
    }
  }
}

// Structural validation before lowering: every stream consumed exactly once,
// sources and sinks present, provenance modes single-sink.
void Validate(const dataflow_internal::Plan& plan) {
  const auto& ops = plan.ops;
  if (ops.empty()) {
    throw std::logic_error("Dataflow: empty plan");
  }
  size_t n_sources = 0;
  size_t n_sinks = 0;
  // consumers[op] counts, per output index, how often that tap is consumed.
  std::vector<std::vector<int>> consumed(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    consumed[i].assign(ops[i].n_outputs, 0);
  }
  for (const PlanOp& op : ops) {
    if (op.kind == OpKind::kSource) ++n_sources;
    if (op.kind == OpKind::kSink) ++n_sinks;
    for (const PlanInput& in : op.inputs) {
      if (in.op >= ops.size() || in.out >= ops[in.op].n_outputs) {
        throw std::logic_error("Dataflow: '" + op.name +
                               "' consumes a stream that does not exist");
      }
      ++consumed[in.op][in.out];
    }
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t out = 0; out < consumed[i].size(); ++out) {
      if (consumed[i][out] == 0) {
        throw std::logic_error(
            "Dataflow: output of '" + ops[i].name +
            "' is never consumed (terminate every stream in a Sink)");
      }
      if (consumed[i][out] > 1) {
        throw std::logic_error("Dataflow: output of '" + ops[i].name +
                               "' is consumed more than once (streams are "
                               "single-consumer; use Multiplex to fan out)");
      }
    }
  }
  if (n_sources == 0) throw std::logic_error("Dataflow: no Source");
  if (n_sinks == 0) throw std::logic_error("Dataflow: no Sink");
  if (plan.options.mode != ProvenanceMode::kNone && n_sinks != 1) {
    throw std::logic_error(
        "Dataflow: provenance modes support exactly one Sink (the paper's "
        "per-sink provenance construction); found " +
        std::to_string(n_sinks));
  }
  ValidateParallelStages(plan);
}

}  // namespace

BuiltDataflow Dataflow::Build() {
  if (plan_->built) {
    throw std::logic_error("Dataflow: Build() called twice");
  }
  Validate(*plan_);
  plan_->built = true;
  BuiltDataflow out;
  LowerDataflow(*plan_, out);
  return out;
}

void BuiltDataflow::Run() { RunTopologies(topologies, channels); }

}  // namespace genealog
