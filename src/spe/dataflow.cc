#include "spe/dataflow.h"

#include "genealog/instrument.h"

namespace genealog {

using dataflow_internal::OpKind;
using dataflow_internal::PlanInput;
using dataflow_internal::PlanOp;

namespace {

// Structural validation before lowering: every stream consumed exactly once,
// sources and sinks present, provenance modes single-sink.
void Validate(const dataflow_internal::Plan& plan) {
  const auto& ops = plan.ops;
  if (ops.empty()) {
    throw std::logic_error("Dataflow: empty plan");
  }
  size_t n_sources = 0;
  size_t n_sinks = 0;
  // consumers[op] counts, per output index, how often that tap is consumed.
  std::vector<std::vector<int>> consumed(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    consumed[i].assign(ops[i].n_outputs, 0);
  }
  for (const PlanOp& op : ops) {
    if (op.kind == OpKind::kSource) ++n_sources;
    if (op.kind == OpKind::kSink) ++n_sinks;
    for (const PlanInput& in : op.inputs) {
      if (in.op >= ops.size() || in.out >= ops[in.op].n_outputs) {
        throw std::logic_error("Dataflow: '" + op.name +
                               "' consumes a stream that does not exist");
      }
      ++consumed[in.op][in.out];
    }
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t out = 0; out < consumed[i].size(); ++out) {
      if (consumed[i][out] == 0) {
        throw std::logic_error(
            "Dataflow: output of '" + ops[i].name +
            "' is never consumed (terminate every stream in a Sink)");
      }
      if (consumed[i][out] > 1) {
        throw std::logic_error("Dataflow: output of '" + ops[i].name +
                               "' is consumed more than once (streams are "
                               "single-consumer; use Multiplex to fan out)");
      }
    }
  }
  if (n_sources == 0) throw std::logic_error("Dataflow: no Source");
  if (n_sinks == 0) throw std::logic_error("Dataflow: no Sink");
  if (plan.options.mode != ProvenanceMode::kNone && n_sinks != 1) {
    throw std::logic_error(
        "Dataflow: provenance modes support exactly one Sink (the paper's "
        "per-sink provenance construction); found " +
        std::to_string(n_sinks));
  }
}

}  // namespace

BuiltDataflow Dataflow::Build() {
  if (plan_->built) {
    throw std::logic_error("Dataflow: Build() called twice");
  }
  Validate(*plan_);
  plan_->built = true;
  BuiltDataflow out;
  LowerDataflow(*plan_, out);
  return out;
}

void BuiltDataflow::Run() { RunTopologies(topologies, channels); }

}  // namespace genealog
